// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each regenerating its artifact end to end — synthesize the
// calibrated campaign, run it through the Darshan runtime against the
// simulated I/O subsystems, analyze the logs, and render the rows the paper
// reports. Run with
//
//	go test -bench=. -benchmem
//
// and pass -v to see the rendered artifacts (logged once per benchmark).
// Absolute totals scale with the benchmark campaign size; the reproduction
// targets are the ratios, orderings, and distribution shapes (DESIGN.md §5,
// EXPERIMENTS.md).
//
// The Ablation benchmarks at the bottom quantify the design choices
// DESIGN.md §6 calls out; they report modeled (simulated) seconds per
// operation via the "sim-s/op" metric alongside host wall time.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/hlio"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/datawarp"
	"iolayers/internal/iosim/lustre"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/probes"
	"iolayers/internal/report"
	"iolayers/internal/sched"
	"iolayers/internal/units"
	"iolayers/internal/workload"
)

// benchConfig sizes the per-iteration campaigns: big enough for stable
// shapes, small enough that every benchmark iterates in well under a second.
var benchConfig = workload.Config{Seed: 11, JobScale: 0.0005, FileScale: 0.02}

// perfConfig is larger, for the performance figures that need a populated
// shared-file sample in every (interface, direction, size-bin) cell.
var perfConfig = workload.Config{Seed: 11, JobScale: 0.002, FileScale: 0.05}

var (
	studyOnce    sync.Once
	studyReports map[string]*analysis.Report
	perfOnce     sync.Once
	perfReports  map[string]*analysis.Report
)

// study returns cached campaign reports so each benchmark times one clean
// regeneration pass over a warmed build rather than paying the shared
// campaign cost b.N times.
func study(b *testing.B) map[string]*analysis.Report {
	b.Helper()
	studyOnce.Do(func() {
		var err error
		studyReports, err = core.RunStudy(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
	})
	return studyReports
}

func perfStudy(b *testing.B) map[string]*analysis.Report {
	b.Helper()
	perfOnce.Do(func() {
		var err error
		perfReports, err = core.RunStudy(perfConfig)
		if err != nil {
			b.Fatal(err)
		}
	})
	return perfReports
}

// runCampaign regenerates one system's campaign end to end; this is the
// timed body shared by the table/figure benchmarks.
func runCampaign(b *testing.B, system string, cfg workload.Config) *analysis.Report {
	b.Helper()
	campaign, err := core.NewCampaign(system, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := campaign.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// benchArtifact times the end-to-end regeneration of one artifact and logs
// the rendered result once.
func benchArtifact(b *testing.B, cfg workload.Config, render func(summit, cori *analysis.Report) string) {
	var out string
	for i := 0; i < b.N; i++ {
		summit := runCampaign(b, "Summit", cfg)
		cori := runCampaign(b, "Cori", cfg)
		out = render(summit, cori)
	}
	b.Log("\n" + out)
}

func BenchmarkTable2_CampaignSummary(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Table2(s, c)
	})
}

func BenchmarkTable3_LayerTotals(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Table3(s) + "\n" + report.Table3(c)
	})
}

func BenchmarkTable4_LargeFiles(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Table4(s) + "\n" + report.Table4(c)
	})
}

func BenchmarkTable5_JobExclusivity(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Table5(s) + "\n" + report.Table5(c)
	})
}

func BenchmarkTable6_InterfaceUsage(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Table6(s) + "\n" + report.Table6(c)
	})
}

func BenchmarkFigure3_TransferSizeCDF(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure3(s) + "\n" + report.Figure3(c)
	})
}

func BenchmarkFigure4_RequestSizeCDF(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure4(s, false) + "\n" + report.Figure4(c, false)
	})
}

func BenchmarkFigure5_LargeJobRequestCDF(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure4(s, true) + "\n" + report.Figure4(c, true)
	})
}

func BenchmarkFigure6_FileClassification(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure6(s, false) + "\n" + report.Figure6(c, false)
	})
}

func BenchmarkFigure7_DomainUsage(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure7(s) + "\n" + report.Figure7(c)
	})
}

func BenchmarkFigure8_STDIOClassification(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure6(s, true) + "\n" + report.Figure6(c, true)
	})
}

func BenchmarkFigure9_InterfaceTransferCDF(b *testing.B) {
	// Figure 9 is a Summit-only figure in the paper.
	var out string
	for i := 0; i < b.N; i++ {
		summit := runCampaign(b, "Summit", benchConfig)
		out = report.Figure9(summit)
	}
	b.Log("\n" + out)
}

func BenchmarkFigure10_STDIODomains(b *testing.B) {
	benchArtifact(b, benchConfig, func(s, c *analysis.Report) string {
		return report.Figure10(s) + "\n" + report.Figure10(c)
	})
}

func BenchmarkFigure11_SummitPerf(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		summit := runCampaign(b, "Summit", perfConfig)
		out = report.Figure11(summit)
	}
	b.Log("\n" + out)
}

func BenchmarkFigure12_CoriPerf(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		cori := runCampaign(b, "Cori", perfConfig)
		out = report.Figure11(cori)
	}
	b.Log("\n" + out)
}

// --- Component benchmarks: the pipeline stages in isolation ---

func BenchmarkGenerateJob(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Summit(), systems.NewSummit(), benchConfig)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.GenerateJob(i % gen.Jobs())
	}
}

func BenchmarkAnalyzeLog(b *testing.B) {
	sys := systems.NewSummit()
	gen, err := workload.NewGenerator(workload.Summit(), sys, benchConfig)
	if err != nil {
		b.Fatal(err)
	}
	logs := gen.GenerateJob(0)
	for len(logs) < 64 {
		logs = append(logs, gen.GenerateJob(len(logs)%gen.Jobs())...)
	}
	agg := analysis.NewAggregator(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.AddLog(logs[i%len(logs)])
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// reportSimSeconds attaches the modeled duration as a custom metric.
func reportSimSeconds(b *testing.B, total float64) {
	b.ReportMetric(total/float64(b.N), "sim-s/op")
}

// A1: Lustre stripe count for a large shared write (paper §5 future work).
func BenchmarkAblation_LustreStriping(b *testing.B) {
	for _, stripes := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			cfg := lustre.CoriScratch()
			cfg.Variability = iosim.Variability{}
			fs := lustre.New(cfg)
			path := "/global/cscratch1/ablate/wide.bin"
			fs.SetLayout(path, lustre.Layout{
				StripeSize: units.MiB, StripeCount: stripes, StartOST: 0,
			})
			r := rand.New(rand.NewPCG(1, 1))
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim += fs.Transfer(path, iosim.Write, 10*units.GiB, 256, r)
			}
			reportSimSeconds(b, sim)
		})
	}
}

// A2: STDIO buffer size vs delivered duration for a 1 GiB streamed read.
func BenchmarkAblation_STDIOBuffer(b *testing.B) {
	sys := systems.NewSummit()
	for _, buf := range []units.ByteSize{4 * units.KiB, 64 * units.KiB, units.MiB} {
		b.Run(fmt.Sprintf("buffer=%s", buf), func(b *testing.B) {
			cfg := iosim.DefaultSTDIO()
			cfg.BufferSize = buf
			r := rand.New(rand.NewPCG(2, 2))
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim += cfg.TransferDuration(sys.PFS, "/gpfs/alpine/a.rst",
					iosim.Read, units.GiB, 1, 0, false, r)
			}
			reportSimSeconds(b, sim)
		})
	}
}

// A3: MPI-IO collective aggregation on/off for a small-request workload
// (Recommendation 2: aggregation turns many small requests into few large).
// Run on Summit's GPFS: on Cori's Lustre the default stripe count of 1
// bottlenecks even a perfectly aggregated collective at one OST's bandwidth
// — itself a finding worth keeping (see Ablation A1 for the striping cure).
func BenchmarkAblation_CollectiveAggregation(b *testing.B) {
	sys := systems.NewSummit()
	const perRank = 256 * units.KiB
	const nprocs = 512
	for _, collective := range []bool{false, true} {
		name := "independent"
		if collective {
			name = "collective"
		}
		b.Run(name, func(b *testing.B) {
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt := darshan.NewRuntime(darshan.JobHeader{
					JobID: uint64(i + 1), NProcs: nprocs, StartTime: 0, EndTime: 3600,
				})
				c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(3, uint64(i))))
				path := "/gpfs/alpine/ablate/out.nc"
				if collective {
					// Two-phase collective buffering: the whole job's data
					// moves as few large well-formed requests.
					sim += c.SharedTransfer(darshan.ModuleMPIIO, path, iosim.Write,
						perRank*nprocs, true)
				} else {
					// Uncoordinated: the same volume arrives as nprocs
					// independent small requests, each paying full latency;
					// ranks overlap 64-wide, so wall time is the per-rank
					// chain times the remaining serialization.
					perRankOps := 8
					var chain float64
					for op := 0; op < perRankOps; op++ {
						chain += c.Write(darshan.ModuleMPIIO, path, 0,
							perRank/units.ByteSize(perRankOps), 0)
					}
					sim += chain * float64(nprocs) / 64
				}
			}
			reportSimSeconds(b, sim)
		})
	}
}

// A4: burst-buffer staging vs direct PFS for a re-read-heavy job
// (Recommendation 3).
func BenchmarkAblation_Staging(b *testing.B) {
	sys := systems.NewCori()
	cbb := sys.InSystem.(*datawarp.FS)
	const dataset = 100 * units.GiB
	const passes = 4
	for _, staged := range []bool{false, true} {
		name := "direct-pfs"
		if staged {
			name = "staged-cbb"
		}
		b.Run(name, func(b *testing.B) {
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt := darshan.NewRuntime(darshan.JobHeader{
					JobID: uint64(i + 1), NProcs: 128, StartTime: 0, EndTime: 86400,
				})
				rng := rand.New(rand.NewPCG(4, uint64(i)))
				if staged {
					bbNodes := cbb.AllocationFor(dataset)
					c := iosim.NewClient(sys, rt, rng, iosim.WithBurstBufferNodes(bbNodes))
					sim += cbb.Stage(sys.PFS, dataset, bbNodes, rng)
					for p := 0; p < passes; p++ {
						sim += c.SharedTransfer(darshan.ModulePOSIX,
							"/var/opt/cray/dws/job/data.bin", iosim.Read, dataset, false)
					}
				} else {
					c := iosim.NewClient(sys, rt, rng)
					for p := 0; p < passes; p++ {
						sim += c.SharedTransfer(darshan.ModulePOSIX,
							"/global/cscratch1/job/data.bin", iosim.Read, dataset, false)
					}
				}
			}
			reportSimSeconds(b, sim)
		})
	}
}

// A5: production contention level vs delivered per-file performance.
func BenchmarkAblation_Contention(b *testing.B) {
	for _, util := range []float64{0, 0.45, 0.80, 0.95} {
		b.Run(fmt.Sprintf("utilization=%.0f%%", util*100), func(b *testing.B) {
			cfg := lustre.CoriScratch()
			cfg.Variability = iosim.Variability{UtilizationMean: util, Sigma: 0.3}
			fs := lustre.New(cfg)
			r := rand.New(rand.NewPCG(5, 5))
			var sim float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim += fs.Transfer("/global/cscratch1/f", iosim.Read, units.GiB, 32, r)
			}
			reportSimSeconds(b, sim)
		})
	}
}

// A6: middleware optimizations (hlio) on/off for a small-write,
// rewrite-heavy application — Recommendations 2–4 quantified.
func BenchmarkAblation_Middleware(b *testing.B) {
	sys := systems.NewSummit()
	run := func(b *testing.B, opts hlio.Options) {
		var sim float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt := darshan.NewRuntime(darshan.JobHeader{
				JobID: uint64(i + 1), NProcs: 42, StartTime: 0, EndTime: 86400,
			})
			client := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(6, uint64(i))))
			lib := hlio.New(client, sys, opts)
			ds := lib.CreateDataset("out", hlio.Persistent, false, 0)
			for ts := 0; ts < 100; ts++ {
				sim += ds.Write(0, 64*units.KiB) // rewritten header
				sim += ds.Write(int64(64*units.KiB)+int64(ts)*32768, 32*units.KiB)
			}
			sim += ds.Close()
		}
		reportSimSeconds(b, sim)
	}
	b.Run("raw", func(b *testing.B) { run(b, hlio.Options{}) })
	b.Run("aggregated", func(b *testing.B) {
		run(b, hlio.Options{AggregationBuffer: 4 * units.MiB})
	})
	b.Run("aggregated+rewritecache", func(b *testing.B) {
		run(b, hlio.Options{AggregationBuffer: 4 * units.MiB, RewriteCache: true})
	})
}

// BenchmarkLogFormat measures the serialization substrate: write+parse of a
// representative log (one job, ~200 file records).
func BenchmarkLogFormat(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Summit(), systems.NewSummit(),
		workload.Config{Seed: 17, JobScale: 0.0005, FileScale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	logs := gen.GenerateJob(0)
	log := logs[0]
	for _, l := range logs {
		if len(l.Records) > len(log.Records) {
			log = l
		}
	}
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := logfmt.Write(&buf, log); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "bytes/log")
	})
	var buf bytes.Buffer
	if err := logfmt.Write(&buf, log); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := logfmt.Read(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkArchiveIngest measures the darshan-util half at campaign scale:
// one archive of several hundred logs, ingested sequentially (streaming
// iterator + one aggregator) versus through the parallel worker pool.
// Memory stays bounded in every variant — the archive is framed entry by
// entry and never materialized (see logfmt.ArchiveReader/core.IngestArchive).
//
// The parallel variants only show wall-clock speedup when GOMAXPROCS > 1:
// the dispatcher does the cheap framing walk while workers pay for inflate
// and decode, so on N cores the workers=N variant approaches N× until the
// dispatcher's read bandwidth saturates. On a single hardware thread the
// variants tie (modulo channel overhead) — compare ns/op here only on
// multi-core hosts, and rely on the -race determinism tests for the
// concurrency guarantees themselves.
func BenchmarkArchiveIngest(b *testing.B) {
	sys := systems.NewSummit()
	path, nLogs := buildBenchArchive(b)

	run := func(b *testing.B, workers int, metrics bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var m *obsv.Registry
			if metrics {
				m = obsv.New()
			}
			_, res, err := core.IngestArchive(context.Background(), sys, path,
				core.IngestOptions{Workers: workers, Metrics: m})
			if err != nil {
				b.Fatal(err)
			}
			if res.Parsed != nLogs || res.Failed != 0 {
				b.Fatalf("parsed %d failed %d, want %d/0", res.Parsed, res.Failed, nLogs)
			}
			if metrics && m.Counter("ingest.logs_parsed").Value() != int64(nLogs) {
				b.Fatal("metrics miscounted the pass")
			}
		}
		b.ReportMetric(float64(nLogs), "logs/op")
	}
	b.Run("sequential", func(b *testing.B) { run(b, 1, false) })
	b.Run("workers=4", func(b *testing.B) { run(b, 4, false) })
	// The metrics-on twin of workers=4: the observability contract says the
	// per-worker shard counters cost ≲2% wall and no extra steady-state
	// allocations — benchcheck holds this pair to the baseline.
	b.Run("workers=4+metrics", func(b *testing.B) { run(b, 4, true) })
	if n := runtime.GOMAXPROCS(0); n > 4 {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) { run(b, n, false) })
	}
}

// buildBenchArchive synthesizes the benchmark campaign once into a .dgar
// archive and returns its path and log count — the shared corpus for the
// archive-ingest and columnar benchmarks.
func buildBenchArchive(b *testing.B) (string, int) {
	b.Helper()
	campaign, err := core.NewCampaign("Summit", benchConfig)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.dgar")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		b.Fatal(err)
	}
	var mu sync.Mutex
	if _, err := campaign.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		mu.Lock()
		defer mu.Unlock()
		return aw.Append(log)
	}); err != nil {
		b.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, aw.Count()
}

// BenchmarkConvertArchive measures the one-time cost of converting a
// campaign archive to its columnar sibling — the price paid once so every
// later re-render runs an order of magnitude faster.
func BenchmarkConvertArchive(b *testing.B) {
	path, nLogs := buildBenchArchive(b)
	dir := b.TempDir()
	b.ReportAllocs()
	var res core.ConvertResult
	for i := 0; i < b.N; i++ {
		dst := filepath.Join(dir, fmt.Sprintf("bench%d.dgc", i))
		var err error
		res, err = core.ConvertArchive(context.Background(), path, dst, core.ConvertOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Logs != nLogs {
			b.Fatalf("converted %d of %d logs", res.Logs, nLogs)
		}
		os.Remove(dst)
	}
	b.ReportMetric(float64(nLogs), "logs/op")
	b.ReportMetric(float64(res.BytesOut), "bytes/file")
}

// BenchmarkColumnarRender measures re-rendering from a columnar campaign —
// the workload the format exists for. The narrow variants answer a
// ≤4-counter question (per-file volume totals) by decoding only the files
// group and skipping stats-pruned columns and segments; compare against
// BenchmarkArchiveIngest, which must re-inflate and re-decode every log to
// answer anything. The fold variants rebuild the full report through
// FoldBatch and are the re-render path ioanalyze/iostudy/ioserved use.
func BenchmarkColumnarRender(b *testing.B) {
	sys := systems.NewSummit()
	path, nLogs := buildBenchArchive(b)
	columnar := filepath.Join(b.TempDir(), "bench.dgc")
	if _, err := core.ConvertArchive(context.Background(), path, columnar, core.ConvertOptions{}); err != nil {
		b.Fatal(err)
	}

	narrow := func(b *testing.B, minBytes int64) {
		b.ReportAllocs()
		var tot core.ColumnarTotals
		for i := 0; i < b.N; i++ {
			var err error
			tot, err = core.QueryColumnarTotals(context.Background(), columnar,
				core.ColumnarQuery{MinFileBytes: minBytes})
			if err != nil {
				b.Fatal(err)
			}
			if tot.Files == 0 && minBytes == 0 {
				b.Fatal("scan saw no file rows")
			}
		}
		b.ReportMetric(float64(tot.SegmentsPruned), "segs-pruned/op")
	}
	b.Run("narrow-totals", func(b *testing.B) { narrow(b, 0) })
	b.Run("narrow-totals-tail", func(b *testing.B) { narrow(b, int64(units.TiB)+1) })

	fold := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, res, err := core.IngestColumnar(context.Background(), sys, columnar,
				core.IngestOptions{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if res.Parsed != nLogs {
				b.Fatalf("folded %d of %d logs", res.Parsed, nLogs)
			}
		}
		b.ReportMetric(float64(nLogs), "logs/op")
	}
	b.Run("fold/sequential", func(b *testing.B) { fold(b, 1) })
	b.Run("fold/workers=4", func(b *testing.B) { fold(b, 4) })
}

// BenchmarkScheduler measures the EASY-backfill scheduler on a month of the
// Cori job stream.
func BenchmarkScheduler(b *testing.B) {
	jobs := sched.FromProfile(workload.Cori(), sched.SourceConfig{
		Scale: 0.001, Seed: 19, PeriodSeconds: 30 * 86400,
		ProcsPerNode: 64, MachineNodes: 9688,
		BBFraction: 0.19,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Simulate(sched.Config{
			Nodes: 9688, BBNodes: 288, OverlapStaging: true,
		}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbes measures the TOKIO-style probe harness.
func BenchmarkProbes(b *testing.B) {
	h := probes.NewHarness(systems.NewSummit(), 23)
	var rows []probes.Variability
	for i := 0; i < b.N; i++ {
		rows = probes.Summarize(h.Run(100))
	}
	if b.N > 0 && len(rows) == 0 {
		b.Fatal("no variability rows")
	}
}

// BenchmarkStudyPipeline measures the full two-system study end to end —
// the cost of regenerating every artifact at the benchmark scale.
func BenchmarkStudyPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunStudy(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchCampaignsProduceAllArtifacts guards that every artifact renders
// non-trivially at the benchmark scale — so `go test` alone exercises the
// same paths the benchmarks do.
func TestBenchCampaignsProduceAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	reports, err := core.RunStudy(benchConfig)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range reports {
		out := report.Everything(rep)
		if len(out) < 2000 {
			t.Errorf("%s: implausibly small full report (%d bytes)", name, len(out))
		}
	}
	_ = study
	_ = perfStudy
}
