GO ?= go

.PHONY: check vet apilint staticcheck govulncheck build test race race-short bench benchcheck fuzz serve-smoke cluster-smoke load-smoke

## check: the full CI gate — vet, apilint, staticcheck + govulncheck
## (when installed), build, and the test suite under the race detector
check: vet apilint staticcheck govulncheck build race

vet:
	$(GO) vet ./...

## apilint: every error body the HTTP services write must go through the
## internal/httpapi envelope — ad-hoc http.Error calls and raw
## fmt.Fprint*(w, ...) writes in the serve and cluster handlers are how
## the error contract rots, so they are banned outright (test files may
## still fake misbehaving upstreams however they like)
apilint:
	@bad=$$(grep -rnE 'http\.Error\(|fmt\.Fprint(f|ln)?\(w[,)]' \
		internal/serve internal/cluster --include='*.go' \
		--exclude='*_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "apilint: ad-hoc HTTP error/body writes (use internal/httpapi):"; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	echo "apilint: ok"

## staticcheck: runs only when the binary is on PATH, so environments
## without it (e.g. hermetic containers) still pass `make check`
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## govulncheck: runs only when the binary is on PATH, same contract as
## staticcheck above
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-short: the fast half of the CI matrix — race detector over the
## tests that skip campaign generation
race-short:
	$(GO) test -race -short ./...

## bench: the paper-artifact and ingestion benchmarks with allocation stats
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

## benchcheck: allocation-regression gate — reruns the ingestion and
## observability benchmarks and compares allocs/op and B/op against
## bench_baseline.json (regenerate with `go run ./cmd/benchcheck -update`
## when a change moves the numbers on purpose)
benchcheck:
	$(GO) run ./cmd/benchcheck

## serve-smoke: end-to-end check of the ioserved query service — start it
## on a random port, ingest the golden log, diff /v1/report bytes against
## `ioanalyze -format json`, and require a graceful SIGTERM drain
serve-smoke:
	scripts/serve_smoke.sh

## cluster-smoke: end-to-end check of the iorouter cluster — three
## lake-backed replicas behind the router (rf=2, API keys), kill -9 each
## owner in turn while requiring byte-identical reports, restart killed
## replicas on their lakes, and require a graceful router drain
cluster-smoke:
	scripts/cluster_smoke.sh

## load-smoke: the SLO gate — three fixture-booted replicas behind the
## router, ioloadtest's open-loop 1k-client scenario checked against
## slo_baseline.json (zero byte-divergent 200s, bounded error rate), and
## a degraded replica that must FAIL the gate. Scale up with
## LOAD_SCALE=10 for a local 10k-client soak.
load-smoke:
	scripts/load_smoke.sh

## fuzz: short fuzzing smoke over the untrusted-input decoders; -fuzz must
## match exactly one target, hence two invocations
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=20s ./internal/darshan/logfmt
	$(GO) test -fuzz=FuzzArchiveReader -fuzztime=20s ./internal/darshan/logfmt
	$(GO) test -fuzz=FuzzColumnRead -fuzztime=20s ./internal/darshan/colfmt
