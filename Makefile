GO ?= go

.PHONY: check vet build test race bench

## check: the full CI gate — vet, build, and the test suite under the race detector
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper-artifact and ingestion benchmarks with allocation stats
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
