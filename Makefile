GO ?= go

.PHONY: check vet staticcheck build test race bench

## check: the full CI gate — vet, staticcheck (when installed), build, and
## the test suite under the race detector
check: vet staticcheck build race

vet:
	$(GO) vet ./...

## staticcheck: runs only when the binary is on PATH, so environments
## without it (e.g. hermetic containers) still pass `make check`
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper-artifact and ingestion benchmarks with allocation stats
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
