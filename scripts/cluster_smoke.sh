#!/usr/bin/env bash
# End-to-end smoke test for the iorouter cluster: three lake-backed
# ioserved replicas behind the router, replication 2, an API-keyed edge.
# The contract under test: every 200 the router serves is byte-identical
# to `ioanalyze -format json` over the same logs, even while replicas are
# being kill -9'd one at a time — and a killed replica restarted on its
# lake rejoins the cluster. Finally the router itself drains on SIGTERM
# with exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."
GOLDEN=internal/darshan/logfmt/testdata/golden_v1.darshan
TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for f in "$TMP"/*.err; do
        [ -f "$f" ] && sed "s|^|cluster-smoke:   $(basename "$f" .err): |" "$f" >&2
    done
    exit 1
}

fetch() { # fetch URL OUTFILE [HEADERFILE]
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -H 'X-API-Key: smoketest' -D "${3:-/dev/null}" -o "$2" "$1"
    else
        wget -q -S -O "$2" --header='X-API-Key: smoketest' "$1" 2>"${3:-/dev/null}"
    fi
}

post_json() { # post_json URL BODY OUTFILE
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H 'Content-Type: application/json' \
            -H 'X-API-Key: smoketest' -d "$2" -o "$3" "$1"
    else
        wget -q -O "$3" --header='Content-Type: application/json' \
            --header='X-API-Key: smoketest' --post-data="$2" "$1"
    fi
}

wait_addr() { # wait_addr ADDRFILE PID WHAT -> prints the address
    local i
    for i in $(seq 1 100); do
        [ -s "$1" ] && break
        kill -0 "$2" 2>/dev/null || fail "$3 died during startup"
        sleep 0.1
    done
    [ -s "$1" ] || fail "$3 never wrote its address file"
    head -n1 "$1"
}

echo "cluster-smoke: building ioserved, iorouter, and ioanalyze"
go build -o "$TMP/ioserved" ./cmd/ioserved
go build -o "$TMP/iorouter" ./cmd/iorouter
go build -o "$TMP/ioanalyze" ./cmd/ioanalyze

mkdir "$TMP/logs"
cp "$GOLDEN" "$TMP/logs/"

echo "cluster-smoke: rendering the reference report with ioanalyze"
"$TMP/ioanalyze" -dir "$TMP/logs" -format json >"$TMP/want.json" 2>/dev/null
[ -s "$TMP/want.json" ] || fail "ioanalyze produced no report"

start_replica() { # start_replica INDEX [LISTEN] -> appends to PIDS, sets R<i>_ADDR/PID
    local i=$1 listen=${2:-127.0.0.1:0}
    rm -f "$TMP/r$i.addr"
    "$TMP/ioserved" -listen "$listen" -addr-file "$TMP/r$i.addr" \
        -lake "$TMP/lake$i" 2>>"$TMP/replica$i.err" &
    local pid=$!
    PIDS+=("$pid")
    eval "R${i}_PID=$pid"
    REPLICA_ADDR=$(wait_addr "$TMP/r$i.addr" "$pid" "replica $i")
    eval "R${i}_ADDR=\$REPLICA_ADDR"
}

echo "cluster-smoke: starting 3 lake-backed replicas"
start_replica 0
start_replica 1
start_replica 2

echo "cluster-smoke: starting the router (rf=2, API key required)"
"$TMP/iorouter" -listen 127.0.0.1:0 -addr-file "$TMP/router.addr" \
    -replica "$R0_ADDR" -replica "$R1_ADDR" -replica "$R2_ADDR" \
    -replication 2 -probe-every 100ms -probe-timeout 500ms \
    -attempt-timeout 2s -breaker-threshold 2 -breaker-open 200ms \
    -apikey 'smoketest=smoke:1000:1000' 2>"$TMP/iorouter.err" &
ROUTER=$!
PIDS+=("$ROUTER")
ADDR=$(wait_addr "$TMP/router.addr" "$ROUTER" "iorouter")
echo "cluster-smoke: router up on $ADDR"

# The auth edge: a request without the key must be rejected with 401.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/datasets" 2>/dev/null \
    || wget -q -S -O /dev/null "http://$ADDR/v1/datasets" 2>&1 | awk '/HTTP\//{c=$2} END{print c}')
[ "$code" = "401" ] || fail "keyless request got $code, want 401"
echo "cluster-smoke: keyless request correctly rejected with 401"

echo "cluster-smoke: ingesting the golden campaign through the router"
post_json "http://$ADDR/v1/ingest" \
    "{\"dataset\":\"golden\",\"system\":\"summit\",\"source\":\"$TMP/logs\"}" \
    "$TMP/ingest.json" || fail "ingest through the router failed"
REPLICAS=$(grep -o '"replica"' "$TMP/ingest.json" | wc -l)
[ "$REPLICAS" -eq 2 ] || fail "ingest landed on $REPLICAS replicas, want 2 (rf=2)"

fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/got.json" \
    || fail "report fetch through the router failed"
diff -u "$TMP/want.json" "$TMP/got.json" \
    || fail "routed report drifted from ioanalyze output"
echo "cluster-smoke: routed report is byte-identical to ioanalyze"

# Find the dataset's owners so the kills target replicas that matter.
fetch "http://$ADDR/v1/cluster?dataset=golden" "$TMP/cluster.json" \
    || fail "cluster status fetch failed"

kill_of() { # kill_of ADDR -> the replica index serving that address
    for i in 0 1 2; do
        eval "a=\$R${i}_ADDR"
        [ "$a" = "$1" ] && { echo "$i"; return; }
    done
    fail "unknown replica address $1"
}

OWNERS=$(tr -d ' \n' <"$TMP/cluster.json" \
    | sed -n 's/.*"owners":\[\([^]]*\)\].*/\1/p' | tr -d '"' | tr ',' ' ')
[ -n "$OWNERS" ] || fail "cluster status reported no owners for golden"
echo "cluster-smoke: golden is owned by: $OWNERS"

# Failover leg: kill -9 each owner in turn; the report must keep serving
# byte-identically from the surviving owner, then the killed replica is
# restarted on its lake and rejoins before the next kill.
for OWNER_ADDR in $OWNERS; do
    i=$(kill_of "$OWNER_ADDR")
    eval "pid=\$R${i}_PID"
    echo "cluster-smoke: kill -9 owner replica $i ($OWNER_ADDR)"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true

    ok=
    for _ in $(seq 1 50); do
        if fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/during.json" 2>/dev/null \
            && cmp -s "$TMP/want.json" "$TMP/during.json"; then
            ok=1
            break
        fi
        sleep 0.1
    done
    [ -n "$ok" ] || fail "report unavailable or drifted with replica $i down"
    echo "cluster-smoke: report still byte-identical with replica $i down"

    # Restart on the SAME address (the router knows the fleet by address)
    # and the same lake: the replica must recover its shard and rejoin.
    echo "cluster-smoke: restarting replica $i on its lake at $OWNER_ADDR"
    start_replica "$i" "$OWNER_ADDR"
done

# Steady state after all the chaos: several consecutive clean, identical
# fetches — the cluster has fully recovered.
for _ in $(seq 1 5); do
    fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/steady.json" \
        || fail "steady-state fetch failed"
    cmp -s "$TMP/want.json" "$TMP/steady.json" || fail "steady-state report drifted"
done
echo "cluster-smoke: steady-state service is clean after recovery"

fetch "http://$ADDR/v1/datasets" "$TMP/datasets.json" || fail "datasets fetch failed"
grep -q '"golden"' "$TMP/datasets.json" || fail "dataset listing missing golden"

echo "cluster-smoke: draining the router with SIGTERM"
kill -TERM "$ROUTER"
code=0
wait "$ROUTER" || code=$?
[ "$code" -eq 0 ] || fail "iorouter exited $code after SIGTERM, want graceful 0"

echo "cluster-smoke: PASS"
