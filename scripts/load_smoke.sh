#!/usr/bin/env bash
# Load-test smoke + SLO gate: three fixture-booted ioserved replicas
# behind the router (replication 3, two API-keyed tenants), driven by
# ioloadtest's open-loop 1k-client scenario and gated against the
# committed slo_baseline.json. The run must stay inside the SLO bands
# with zero byte-divergent 200s; then a deliberately degraded single
# replica (-query-timeout 1ms) must FAIL the same gate — a gate that
# cannot fail is not a gate.
#
# Environment knobs:
#   LOAD_SCALE     multiply rate and clients (default 1; 10 = 10k soak)
#   LOAD_DURATION  override the scenario duration (e.g. 30s)
#   LOAD_SUMMARY   where to write the summary JSON (default $TMP)
set -euo pipefail

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

SCALE=${LOAD_SCALE:-1}
SUMMARY=${LOAD_SUMMARY:-$TMP/load_summary.json}
DURATION_FLAGS=()
[ -n "${LOAD_DURATION:-}" ] && DURATION_FLAGS=(-duration "$LOAD_DURATION")

fail() {
    echo "load-smoke: FAIL: $*" >&2
    for f in "$TMP"/*.err; do
        [ -f "$f" ] && tail -n 5 "$f" | sed "s|^|load-smoke:   $(basename "$f" .err): |" >&2
    done
    exit 1
}

wait_addr() { # wait_addr ADDRFILE PID WHAT -> prints the address
    local i
    for i in $(seq 1 200); do
        [ -s "$1" ] && break
        kill -0 "$2" 2>/dev/null || fail "$3 died during startup"
        sleep 0.1
    done
    [ -s "$1" ] || fail "$3 never wrote its address file"
    head -n1 "$1"
}

echo "load-smoke: building ioserved, iorouter, ioloadtest, and ioanalyze"
go build -o "$TMP/ioserved" ./cmd/ioserved
go build -o "$TMP/iorouter" ./cmd/iorouter
go build -o "$TMP/ioloadtest" ./cmd/ioloadtest
go build -o "$TMP/ioanalyze" ./cmd/ioanalyze

# The fixture corpus is a pure function of (system, logs, seed):
# -make-fixture here and -fixture golden:32:9 inside each replica write
# the same bytes, so ioanalyze over this directory is the ground truth
# for what every replica must serve.
echo "load-smoke: writing the deterministic fixture corpus"
"$TMP/ioloadtest" -make-fixture "$TMP/corpus" -fixture-logs 32 -fixture-seed 9 \
    2>>"$TMP/ioloadtest.err"
"$TMP/ioanalyze" -dir "$TMP/corpus" -format json >"$TMP/want.json" 2>/dev/null
[ -s "$TMP/want.json" ] || fail "ioanalyze produced no reference report"

echo "load-smoke: starting 3 fixture-booted replicas"
for i in 0 1 2; do
    rm -f "$TMP/r$i.addr"
    "$TMP/ioserved" -listen 127.0.0.1:0 -addr-file "$TMP/r$i.addr" \
        -fixture golden:32:9 -max-inflight 256 2>>"$TMP/replica$i.err" &
    pid=$!
    PIDS+=("$pid")
    addr=$(wait_addr "$TMP/r$i.addr" "$pid" "replica $i")
    eval "R${i}_ADDR=\$addr"
done

echo "load-smoke: starting the router (replication 3, two tenants)"
"$TMP/iorouter" -listen 127.0.0.1:0 -addr-file "$TMP/router.addr" \
    -replica "$R0_ADDR" -replica "$R1_ADDR" -replica "$R2_ADDR" \
    -replication 3 -probe-every 200ms -probe-timeout 1s \
    -apikey 'loadkey-a=alpha:5000:10000' -apikey 'loadkey-b=beta:5000:10000' \
    2>"$TMP/iorouter.err" &
ROUTER=$!
PIDS+=("$ROUTER")
ADDR=$(wait_addr "$TMP/router.addr" "$ROUTER" "iorouter")
echo "load-smoke: router up on $ADDR"

# Pre-flight byte-identity: the routed report must equal ioanalyze over
# the corpus before any load is offered.
curl -fsS -H 'X-API-Key: loadkey-a' -o "$TMP/got.json" \
    "http://$ADDR/v1/report/golden?format=json" || fail "pre-flight report fetch failed"
cmp -s "$TMP/want.json" "$TMP/got.json" \
    || fail "routed fixture report drifted from ioanalyze output"
echo "load-smoke: routed fixture report is byte-identical to ioanalyze"

# Pre-flight error contract: every error the cluster emits — relayed
# from a replica or synthesized at the edge — must be the structured
# envelope with the right code.
curl -sS -H 'X-API-Key: loadkey-a' "http://$ADDR/v1/report/nosuch" >"$TMP/err404.json"
grep -q '"code":"not_found"' "$TMP/err404.json" \
    || fail "routed 404 is not a not_found envelope: $(cat "$TMP/err404.json")"
curl -sS -H 'X-API-Key: loadkey-a' "http://$ADDR/v1/report/golden?frmt=json" >"$TMP/err400.json"
grep -q '"code":"bad_param"' "$TMP/err400.json" && grep -q 'frmt' "$TMP/err400.json" \
    || fail "unknown param is not a bad_param envelope naming the offender: $(cat "$TMP/err400.json")"
curl -sS "http://$ADDR/v1/predict/golden" >"$TMP/err401.json"
grep -q '"code":"unauthorized"' "$TMP/err401.json" \
    || fail "keyless request is not an unauthorized envelope: $(cat "$TMP/err401.json")"
echo "load-smoke: routed errors all speak the structured envelope"

# And the predict document itself must route: schema-versioned JSON,
# byte-identical across two fetches through the cluster.
curl -fsS -H 'X-API-Key: loadkey-a' "http://$ADDR/v1/predict/golden" >"$TMP/predict1.json" \
    || fail "pre-flight predict fetch failed"
grep -q '"schema_version"' "$TMP/predict1.json" \
    || fail "predict document is not schema-versioned: $(head -c 200 "$TMP/predict1.json")"
curl -fsS -H 'X-API-Key: loadkey-b' "http://$ADDR/v1/predict/golden" >"$TMP/predict2.json"
cmp -s "$TMP/predict1.json" "$TMP/predict2.json" \
    || fail "predict document differs across routed fetches"
echo "load-smoke: routed predict document is stable and schema-versioned"

echo "load-smoke: offering the smoke-1k scenario (scale $SCALE) and gating on slo_baseline.json"
"$TMP/ioloadtest" -target "http://$ADDR" -scenario scripts/scenarios/smoke_1k.toml \
    -scale "$SCALE" "${DURATION_FLAGS[@]}" \
    -apikey loadkey-a -apikey loadkey-b -ingest-source "$TMP/corpus" \
    -out "$SUMMARY" -check slo_baseline.json -q \
    || fail "smoke-1k violated the SLO baseline (summary: $SUMMARY)"
echo "load-smoke: SLO gate passed; summary at $SUMMARY"

# Negative leg: a replica whose query deadline is already expired on
# arrival (-query-timeout 1ns) 503s every render no matter how fast the
# host is, so the same scenario against it MUST fail the gate.
echo "load-smoke: starting a degraded replica (-query-timeout 1ns)"
rm -f "$TMP/bad.addr"
"$TMP/ioserved" -listen 127.0.0.1:0 -addr-file "$TMP/bad.addr" \
    -fixture golden:64:9 -query-timeout 1ns 2>>"$TMP/degraded.err" &
BAD=$!
PIDS+=("$BAD")
BAD_ADDR=$(wait_addr "$TMP/bad.addr" "$BAD" "degraded replica")

code=0
"$TMP/ioloadtest" -target "http://$BAD_ADDR" \
    -scenario scripts/scenarios/smoke_1k.toml -scale 0.1 -duration 3s \
    -ingest-source "$TMP/corpus" \
    -check slo_baseline.json -q >"$TMP/degraded.out" 2>&1 || code=$?
[ "$code" -eq 1 ] || fail "degraded run exited $code, want SLO failure (1); output: $(cat "$TMP/degraded.out")"
echo "load-smoke: degraded replica correctly failed the SLO gate"

echo "load-smoke: PASS"
