#!/usr/bin/env bash
# End-to-end smoke test for the ioserved query service: start it on a
# random port, ingest the golden log, and require that /v1/report serves
# byte-for-byte what `ioanalyze -format json` renders over the same logs —
# cached renders included. A second dataset is ingested from a columnar
# (.dgc) conversion of the same campaign and its report must match the
# row-oriented reference byte for byte too. Then SIGTERM it and require a
# graceful exit 0. Finally the durability leg: a lake-backed ioserved is
# killed with SIGKILL and restarted on the same -lake with no -ingest —
# the dataset must come back at the same generation (recovered, not
# re-ingested) serving a byte-identical report.
set -euo pipefail

cd "$(dirname "$0")/.."
GOLDEN=internal/darshan/logfmt/testdata/golden_v1.darshan
TMP=$(mktemp -d)
SERVED=
cleanup() {
    [ -n "$SERVED" ] && kill "$SERVED" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$TMP/ioserved.err" ] && sed 's/^/serve-smoke:   ioserved: /' "$TMP/ioserved.err" >&2
    exit 1
}

fetch() { # fetch URL OUTFILE [HEADERFILE]
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -D "${3:-/dev/null}" -o "$2" "$1"
    else
        wget -q -S -O "$2" "$1" 2>"${3:-/dev/null}"
    fi
}

post_json() { # post_json URL BODY OUTFILE
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H 'Content-Type: application/json' \
            -d "$2" -o "$3" "$1"
    else
        wget -q -O "$3" --header='Content-Type: application/json' \
            --post-data="$2" "$1"
    fi
}

echo "serve-smoke: building ioserved and ioanalyze"
go build -o "$TMP/ioserved" ./cmd/ioserved
go build -o "$TMP/ioanalyze" ./cmd/ioanalyze

mkdir "$TMP/logs"
cp "$GOLDEN" "$TMP/logs/"

echo "serve-smoke: rendering the reference report with ioanalyze"
"$TMP/ioanalyze" -dir "$TMP/logs" -format json >"$TMP/want.json" 2>/dev/null
[ -s "$TMP/want.json" ] || fail "ioanalyze produced no report"

echo "serve-smoke: starting ioserved on a random port"
"$TMP/ioserved" -listen 127.0.0.1:0 -addr-file "$TMP/addr" \
    -dataset golden -system summit -ingest "$TMP/logs" 2>"$TMP/ioserved.err" &
SERVED=$!

for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    kill -0 "$SERVED" 2>/dev/null || fail "ioserved died during startup"
    sleep 0.1
done
[ -s "$TMP/addr" ] || fail "ioserved never wrote its address file"
ADDR=$(head -n1 "$TMP/addr")
echo "serve-smoke: up on $ADDR"

fetch "http://$ADDR/healthz" "$TMP/health" || fail "healthz unreachable"

fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/got.json" "$TMP/h1" \
    || fail "report fetch failed"
diff -u "$TMP/want.json" "$TMP/got.json" \
    || fail "served report drifted from ioanalyze output"

# The second fetch comes from the render cache and must be identical bytes.
fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/got2.json" "$TMP/h2" \
    || fail "cached report fetch failed"
grep -qi 'x-cache: hit' "$TMP/h2" || fail "second fetch was not a cache hit"
cmp -s "$TMP/got.json" "$TMP/got2.json" || fail "cached render differs from first render"

fetch "http://$ADDR/v1/datasets" "$TMP/datasets.json" || fail "datasets fetch failed"
grep -q '"golden"' "$TMP/datasets.json" || fail "dataset listing missing the golden dataset"

# Columnar leg: convert the same campaign to a .dgc, ingest it as a second
# dataset over the API, and require its report to match the row-oriented
# reference byte for byte.
echo "serve-smoke: converting the campaign to a columnar file"
"$TMP/ioanalyze" -dir "$TMP/logs" -convert "$TMP/campaign.dgc" 2>/dev/null \
    || fail "columnar conversion failed"
[ -s "$TMP/campaign.dgc" ] || fail "conversion produced an empty .dgc"

echo "serve-smoke: ingesting the columnar campaign as a second dataset"
post_json "http://$ADDR/v1/ingest" \
    "{\"dataset\":\"columnar\",\"system\":\"summit\",\"source\":\"$TMP/campaign.dgc\"}" \
    "$TMP/ingest.json" || fail "columnar ingest over the API failed"

fetch "http://$ADDR/v1/report/columnar?format=json" "$TMP/got-col.json" \
    || fail "columnar report fetch failed"
diff -u "$TMP/want.json" "$TMP/got-col.json" \
    || fail "columnar dataset report drifted from the row-oriented reference"
echo "serve-smoke: columnar report is byte-identical to the row-oriented one"

echo "serve-smoke: draining with SIGTERM"
kill -TERM "$SERVED"
code=0
wait "$SERVED" || code=$?
SERVED=
[ "$code" -eq 0 ] || fail "ioserved exited $code after SIGTERM, want graceful 0"

# Durability leg: ingest into a lake-backed server, kill -9 it, restart on
# the same lake without any -ingest flag, and require the same generation
# back with byte-identical report bytes — recovery, not re-ingestion.
echo "serve-smoke: starting a lake-backed ioserved"
rm -f "$TMP/addr"
"$TMP/ioserved" -listen 127.0.0.1:0 -addr-file "$TMP/addr" -lake "$TMP/lake" \
    -dataset golden -system summit -ingest "$TMP/logs" 2>"$TMP/ioserved.err" &
SERVED=$!
for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    kill -0 "$SERVED" 2>/dev/null || fail "lake-backed ioserved died during startup"
    sleep 0.1
done
[ -s "$TMP/addr" ] || fail "lake-backed ioserved never wrote its address file"
ADDR=$(head -n1 "$TMP/addr")

fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/pre-kill.json" "$TMP/h-pre" \
    || fail "pre-kill report fetch failed"
diff -u "$TMP/want.json" "$TMP/pre-kill.json" \
    || fail "lake-backed report drifted from ioanalyze output"
PRE_GEN=$(grep -i '^x-dataset-generation:' "$TMP/h-pre" | tr -dc '0-9')
[ -n "$PRE_GEN" ] || fail "no generation header on the pre-kill report"

echo "serve-smoke: kill -9 and restart on the same lake"
kill -9 "$SERVED"
wait "$SERVED" 2>/dev/null || true
SERVED=

rm -f "$TMP/addr"
"$TMP/ioserved" -listen 127.0.0.1:0 -addr-file "$TMP/addr" -lake "$TMP/lake" \
    2>"$TMP/ioserved.err" &
SERVED=$!
for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    kill -0 "$SERVED" 2>/dev/null || fail "restarted ioserved died during recovery"
    sleep 0.1
done
[ -s "$TMP/addr" ] || fail "restarted ioserved never wrote its address file"
ADDR=$(head -n1 "$TMP/addr")

fetch "http://$ADDR/v1/report/golden?format=json" "$TMP/post-kill.json" "$TMP/h-post" \
    || fail "post-restart report fetch failed"
cmp -s "$TMP/pre-kill.json" "$TMP/post-kill.json" \
    || fail "report after kill -9 + lake recovery is not byte-identical"
POST_GEN=$(grep -i '^x-dataset-generation:' "$TMP/h-post" | tr -dc '0-9')
[ "$POST_GEN" = "$PRE_GEN" ] \
    || fail "generation changed across restart ($PRE_GEN -> $POST_GEN): dataset was re-ingested, not recovered"

fetch "http://$ADDR/metrics.json" "$TMP/metrics.json" || fail "metrics fetch failed"
RECOVERED=$(tr -d ' \n' <"$TMP/metrics.json" \
    | grep -o '"name":"serve.lake.recovered_datasets","value":[0-9]*' | tr -dc '0-9' || true)
[ -n "$RECOVERED" ] && [ "$RECOVERED" -gt 0 ] \
    || fail "recovery counter serve.lake.recovered_datasets not > 0 (got '$RECOVERED')"
echo "serve-smoke: recovered gen $POST_GEN byte-identical after kill -9"

echo "serve-smoke: draining the recovered server"
kill -TERM "$SERVED"
code=0
wait "$SERVED" || code=$?
SERVED=
[ "$code" -eq 0 ] || fail "recovered ioserved exited $code after SIGTERM, want graceful 0"

echo "serve-smoke: PASS"
