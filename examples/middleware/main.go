// Middleware: the optimizations the paper asks I/O libraries to provide —
// write aggregation (Recommendation 2), rewrite caching and static/dynamic
// separation (Recommendation 4), and automatic in-system placement
// (Recommendation 3) — applied to the same application, so their effect is
// a measurement instead of a suggestion.
//
// The application is a particle simulation writing small per-timestep
// updates, repeatedly overwriting a head(er) region, and keeping scratch
// state it never needs again after the run.
//
//	go run ./examples/middleware
package main

import (
	"fmt"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/hlio"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

const (
	timesteps  = 200
	updateSize = 32 * units.KiB // per-timestep append
	headerSize = 64 * units.KiB // rewritten every timestep
	scratchOps = 100
	scratchSz  = 2 * units.MiB
)

func runApp(name string, opts hlio.Options) hlio.Stats {
	sys := systems.NewSummit()
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 1, UserID: 9, NProcs: 42, StartTime: 0, EndTime: 86_400,
	})
	client := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(17, 17)))
	lib := hlio.New(client, sys, opts)

	traj := lib.CreateDataset("trajectory", hlio.Persistent, false, 0)
	scratch := lib.CreateDataset("neighbors", hlio.Scratch, false, 0)
	for ts := 0; ts < timesteps; ts++ {
		// Header rewritten in place every step: dynamic data.
		traj.Write(0, headerSize)
		// Then the step's new particles appended: static data.
		traj.Write(int64(headerSize)+int64(ts)*int64(updateSize), updateSize)
	}
	for i := 0; i < scratchOps; i++ {
		scratch.Write(int64(i)*int64(scratchSz), scratchSz)
		scratch.Read(int64(i)*int64(scratchSz), scratchSz)
	}
	traj.Close()
	scratch.Close()

	st := lib.Stats()
	fmt.Printf("%-28s %8.2f s   storage ops %5d   absorbed rewrites %s\n",
		name, st.SimSeconds, st.FlushedOps, human(st.AbsorbedRewriteBytes))
	return st
}

func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func main() {
	fmt.Printf("particle app: %d timesteps, %s header rewrites + %s appends, %d scratch ops\n\n",
		timesteps, headerSize, updateSize, scratchOps)

	raw := runApp("no middleware (as observed)", hlio.Options{})
	agg := runApp("+ write aggregation", hlio.Options{
		AggregationBuffer: 8 * units.MiB,
	})
	full := runApp("+ rewrite cache + placement", hlio.Options{
		AggregationBuffer: 8 * units.MiB,
		RewriteCache:      true,
		AutoPlacement:     true,
	})

	fmt.Println()
	fmt.Printf("aggregation alone:   %.1fx faster\n", raw.SimSeconds/agg.SimSeconds)
	fmt.Printf("all optimizations:   %.1fx faster, %s of flash writes avoided\n",
		raw.SimSeconds/full.SimSeconds, human(full.AbsorbedRewriteBytes))
	fmt.Println()
	fmt.Println("=> what Recommendations 2-4 buy when the middleware, not the user,")
	fmt.Println("   owns the optimization — the paper's core operational suggestion.")
}
