// Quickstart: instrument an application's I/O with the Darshan-equivalent
// runtime, run it against the simulated Summit I/O subsystem, write the
// resulting log in the self-describing compressed format, and parse it back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func main() {
	// 1. A "job" starts: the runtime plays the role of the Darshan core
	//    library loaded at MPI_Init.
	summit := systems.NewSummit()
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID:     424242,
		UserID:    1001,
		NProcs:    84, // two Summit nodes
		StartTime: 1_600_000_000,
		EndTime:   1_600_003_600,
		Exe:       "/sw/summit/quickstart/app.x",
		Metadata:  map[string]string{"domain": "Computer Science"},
	})

	// 2. The application does I/O through the instrumented client. Every
	//    operation's duration comes from the simulated storage layers.
	client := iosim.NewClient(summit, rt, rand.New(rand.NewPCG(42, 1)))

	// A config file read through STDIO on the parallel file system.
	cfgPath := "/gpfs/alpine/cs/proj/config.txt"
	client.Open(darshan.ModuleSTDIO, cfgPath, 0)
	client.Read(darshan.ModuleSTDIO, cfgPath, 0, 4*units.KiB, 0)
	client.Close(darshan.ModuleSTDIO, cfgPath, 0)

	// Input data read in 1 MiB chunks through POSIX.
	inPath := "/gpfs/alpine/cs/proj/input.h5"
	client.Open(darshan.ModulePOSIX, inPath, 0)
	for i := int64(0); i < 64; i++ {
		client.Read(darshan.ModulePOSIX, inPath, 0, units.MiB, i*int64(units.MiB))
	}
	client.Close(darshan.ModulePOSIX, inPath, 0)

	// Scratch written to the node-local NVMe layer (SCNL).
	tmpPath := "/mnt/bb/u1001/scratch.dat"
	client.Open(darshan.ModulePOSIX, tmpPath, 0)
	client.Write(darshan.ModulePOSIX, tmpPath, 0, 16*units.MiB, 0)
	client.Close(darshan.ModulePOSIX, tmpPath, 0)

	// A checkpoint written collectively by all ranks through MPI-IO.
	chkPath := "/gpfs/alpine/cs/proj/ckpt.0001.h5"
	client.SharedOpen(darshan.ModuleMPIIO, chkPath, true)
	client.SharedTransfer(darshan.ModuleMPIIO, chkPath, iosim.Write, 512*units.MiB, true)
	client.SharedClose(darshan.ModuleMPIIO, chkPath)

	// 3. The job ends: the runtime reduces shared files and seals the log.
	darshanLog := rt.Finalize()

	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "job424242.darshan")
	if err := logfmt.WriteFile(logPath, darshanLog); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(logPath)
	fmt.Printf("wrote %s (%d bytes)\n\n", logPath, info.Size())

	// 4. Parse it back, as an analysis tool would.
	parsed, err := logfmt.ReadFile(logPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %d: %d processes, %d file records\n",
		parsed.Job.JobID, parsed.Job.NProcs, len(parsed.Records))
	for _, rec := range parsed.Records {
		path := parsed.PathOf(rec.Record)
		switch rec.Module {
		case darshan.ModulePOSIX:
			fmt.Printf("  POSIX  rank %3d  %-36s reads=%-3d writes=%-3d bytes R/W=%d/%d\n",
				rec.Rank, path,
				rec.Counters[darshan.PosixReads], rec.Counters[darshan.PosixWrites],
				rec.Counters[darshan.PosixBytesRead], rec.Counters[darshan.PosixBytesWritten])
		case darshan.ModuleSTDIO:
			fmt.Printf("  STDIO  rank %3d  %-36s reads=%-3d writes=%-3d bytes R/W=%d/%d\n",
				rec.Rank, path,
				rec.Counters[darshan.StdioReads], rec.Counters[darshan.StdioWrites],
				rec.Counters[darshan.StdioBytesRead], rec.Counters[darshan.StdioBytesWritten])
		case darshan.ModuleMPIIO:
			fmt.Printf("  MPI-IO rank %3d  %-36s coll writes=%d bytes W=%d\n",
				rec.Rank, path,
				rec.Counters[darshan.MpiioCollWrites],
				rec.Counters[darshan.MpiioBytesWritten])
		}
	}
}
