// Checkpoint: the traditional bulk-synchronous HPC I/O pattern the paper's
// introduction starts from — a numerical simulation periodically dumping its
// state — run three ways on the simulated Summit subsystem:
//
//  1. every rank writes its own chunk to the parallel file system,
//
//  2. all ranks write one shared file collectively through MPI-IO, and
//
//  3. ranks write to the node-local NVMe layer (SCNL) and drain to the PFS
//     in the background (the Spectral/UnifyFS pattern, Recommendation 3).
//
//     go run ./examples/checkpoint
package main

import (
	"fmt"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

const (
	// A capability-class run: at 2048 of Summit's 4608 nodes the node-local
	// NVMe aggregate (≈4.3 TB/s write) exceeds what Alpine can deliver
	// under production load — the regime burst buffers exist for.
	nodes        = 2048
	procsPerNode = 42
	checkpoints  = 5
	perRankState = 128 * units.MiB
)

func newClient(sys *iosim.System, seed uint64) (*iosim.Client, *darshan.Runtime) {
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: seed, UserID: 1, NProcs: nodes * procsPerNode,
		StartTime: 0, EndTime: 86_400,
	})
	return iosim.NewClient(sys, rt, rand.New(rand.NewPCG(seed, 0))), rt
}

func main() {
	summit := systems.NewSummit()
	nprocs := nodes * procsPerNode
	total := units.ByteSize(nprocs) * perRankState
	fmt.Printf("checkpointing %d ranks × %s = %s per checkpoint, %d checkpoints\n\n",
		nprocs, perRankState, total, checkpoints)

	// Strategy 1: file-per-process on the PFS. All ranks write their own
	// files concurrently — the data moves at the job's aggregate delivered
	// bandwidth, but every checkpoint also pays an open storm: nprocs file
	// creations hammering the shared metadata service.
	c1, _ := newClient(summit, 1)
	const mdsConcurrency = 32 // parallel metadata service capacity
	var wall1 float64
	for ck := 0; ck < checkpoints; ck++ {
		openStorm := float64(nprocs) * summit.PFS.MetaLatency() / mdsConcurrency
		path := fmt.Sprintf("/gpfs/alpine/sim/ckpt%02d/rankfiles", ck)
		wall1 += openStorm
		wall1 += c1.SharedTransfer(darshan.ModulePOSIX, path, iosim.Write, total, false)
	}
	fmt.Printf("1. file-per-process on Alpine:        %8.2f s  (%s/s)\n",
		wall1, bw(total*checkpoints, wall1))

	// Strategy 2: single shared file through collective MPI-IO. Collective
	// buffering merges everything into large well-formed requests.
	c2, _ := newClient(summit, 2)
	var wall2 float64
	for ck := 0; ck < checkpoints; ck++ {
		path := fmt.Sprintf("/gpfs/alpine/sim/shared%02d.chk", ck)
		c2.SharedOpen(darshan.ModuleMPIIO, path, true)
		wall2 += c2.SharedTransfer(darshan.ModuleMPIIO, path, iosim.Write, total, true)
		c2.SharedClose(darshan.ModuleMPIIO, path)
	}
	fmt.Printf("2. collective shared file on Alpine:  %8.2f s  (%s/s)\n",
		wall2, bw(total*checkpoints, wall2))

	// Strategy 3: write to node-local NVMe, drain asynchronously. The
	// application only waits for the NVMe write; the drain overlaps
	// computation and only the final checkpoint's drain is exposed.
	c3, _ := newClient(summit, 3)
	var wall3, drain float64
	for ck := 0; ck < checkpoints; ck++ {
		path := fmt.Sprintf("/mnt/bb/sim/ckpt%02d.chk", ck)
		c3.SharedOpen(darshan.ModulePOSIX, path, false)
		wall3 += c3.SharedTransfer(darshan.ModulePOSIX, path, iosim.Write, total, false)
		c3.SharedClose(darshan.ModulePOSIX, path)
		// Background drain to the PFS at the PFS's streaming rate.
		drainPath := fmt.Sprintf("/gpfs/alpine/sim/drain%02d.chk", ck)
		drain = c3.SharedTransfer(darshan.ModulePOSIX, drainPath, iosim.Write, total, false)
	}
	wall3 += drain // the last drain cannot hide behind compute
	fmt.Printf("3. SCNL + async drain to Alpine:      %8.2f s  (%s/s, last drain exposed)\n\n",
		wall3, bw(total*checkpoints, wall3))

	switch {
	case wall3 < wall2 && wall3 < wall1:
		fmt.Println("=> the in-system layer absorbs checkpoints fastest — the deployment")
		fmt.Println("   rationale for SCNL, and why the paper flags its low utilization")
		fmt.Println("   (Table 3, Recommendation 3) as an efficiency gap.")
	default:
		fmt.Println("=> unexpected ordering; inspect the layer models")
	}
}

func bw(total units.ByteSize, secs float64) string {
	gb := float64(total) / 1e9 / secs
	return fmt.Sprintf("%.1f GB", gb)
}
