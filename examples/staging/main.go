// DataWarp staging: Cori's burst buffer integrates with the batch scheduler
// through #DW directives (paper §2.1.2) — a job declares capacity and
// stage_in/stage_out lists, and the system moves the data around the job's
// lifetime without the application doing anything. This example scripts that
// lifecycle against the simulated Cori subsystem and contrasts it with
// running the same analysis directly on the Lustre scratch system.
//
//	go run ./examples/staging
package main

import (
	"fmt"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/datawarp"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

const (
	datasetSize = 400 * units.GiB
	resultSize  = 40 * units.GiB
	passes      = 4 // analysis passes over the dataset
	nprocs      = 256
	chunk       = 4 * units.MiB
)

func main() {
	cori := systems.NewCori()
	cbb := cori.InSystem.(*datawarp.FS)

	// The job script declares its burst-buffer allocation and staging:
	//
	//   #DW jobdw capacity=500GiB access_mode=striped
	//   #DW stage_in  source=/global/cscratch1/sim/dataset dest=$DW_JOB type=directory
	//   #DW stage_out source=$DW_JOB/results dest=/global/cscratch1/sim type=directory
	directives := datawarp.Directives{
		Capacity: 500 * units.GiB,
		StageIn:  []string{"/global/cscratch1/sim/dataset"},
		StageOut: []string{"results"},
	}
	bbNodes := cbb.AllocationFor(directives.Capacity)
	fmt.Printf("#DW jobdw capacity=%s  => %d burst-buffer nodes\n\n", directives.Capacity, bbNodes)

	rng := rand.New(rand.NewPCG(9, 9))

	// --- With DataWarp staging ---
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 1, UserID: 3, NProcs: nprocs, StartTime: 0, EndTime: 86_400,
	})
	c := iosim.NewClient(cori, rt, rand.New(rand.NewPCG(1, 1)),
		iosim.WithBurstBufferNodes(bbNodes))

	// Scheduler-driven stage-in happens before the job's first timestep.
	stageIn := cbb.Stage(cori.PFS, datasetSize, bbNodes, rng)

	var compute float64
	for p := 0; p < passes; p++ {
		path := "/var/opt/cray/dws/job1/dataset.bin"
		for off := units.ByteSize(0); off < datasetSize; off += datasetSize / 64 {
			compute += c.SharedTransfer(darshan.ModulePOSIX, path, iosim.Read, datasetSize/64, false)
		}
	}
	compute += c.SharedTransfer(darshan.ModulePOSIX, "/var/opt/cray/dws/job1/results.h5",
		iosim.Write, resultSize, false)

	stageOut := cbb.Stage(cori.PFS, resultSize, bbNodes, rng)
	withBB := stageIn + compute + stageOut
	fmt.Printf("with DataWarp:   stage_in %6.1f s + job I/O %6.1f s + stage_out %5.1f s = %7.1f s\n",
		stageIn, compute, stageOut, withBB)

	// --- Direct on Lustre scratch ---
	rt2 := darshan.NewRuntime(darshan.JobHeader{
		JobID: 2, UserID: 3, NProcs: nprocs, StartTime: 0, EndTime: 86_400,
	})
	c2 := iosim.NewClient(cori, rt2, rand.New(rand.NewPCG(2, 2)))
	var direct float64
	for p := 0; p < passes; p++ {
		path := "/global/cscratch1/sim/dataset.bin"
		for off := units.ByteSize(0); off < datasetSize; off += datasetSize / 64 {
			direct += c2.SharedTransfer(darshan.ModulePOSIX, path, iosim.Read, datasetSize/64, false)
		}
	}
	direct += c2.SharedTransfer(darshan.ModulePOSIX, "/global/cscratch1/sim/results.h5",
		iosim.Write, resultSize, false)
	fmt.Printf("direct Lustre:   job I/O %6.1f s                                     = %7.1f s\n\n",
		direct, direct)

	fmt.Printf("speedup with staging: %.2fx over %d passes\n\n", direct/withBB, passes)
	fmt.Println("=> staging pays once and every pass reads at burst-buffer rates; the")
	fmt.Println("   14.38% of Cori jobs that ran CBB-exclusively (Table 5) were doing")
	fmt.Println("   exactly this, and Recommendation 3 asks for tools that make it easy.")
	_ = chunk
}
