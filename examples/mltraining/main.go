// ML training ingest: the read-intensive, small-request workload the paper
// identifies as the emerging load on supercomputer I/O (§1, Finding A). A
// training job reads a sharded dataset epoch after epoch; we run the same
// ingest through STDIO (the genomics/text-pipeline habit), plain POSIX, and
// staged onto the node-local NVMe layer, on the simulated Summit subsystem.
//
//	go run ./examples/mltraining
package main

import (
	"fmt"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

const (
	shards     = 256
	shardSize  = 64 * units.MiB
	sampleSize = 100 * units.KiB // one training sample per read
	epochs     = 3
)

func main() {
	summit := systems.NewSummit()
	samplesPerShard := int(shardSize / sampleSize)
	totalPerEpoch := units.ByteSize(shards) * shardSize
	fmt.Printf("dataset: %d shards × %s = %s, %s samples, %d epochs\n\n",
		shards, shardSize, totalPerEpoch, sampleSize, epochs)

	run := func(name string, seed uint64, ingest func(c *iosim.Client) float64) float64 {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: seed, UserID: 7, NProcs: 6 * 4, // 4 nodes × 6 GPU-feeding readers
			StartTime: 0, EndTime: 86_400,
		})
		c := iosim.NewClient(summit, rt, rand.New(rand.NewPCG(seed, 0)))
		secs := ingest(c)
		log := rt.Finalize()
		reads := int64(0)
		for _, rec := range log.Records {
			switch rec.Module {
			case darshan.ModulePOSIX:
				reads += rec.Counters[darshan.PosixReads]
			case darshan.ModuleSTDIO:
				reads += rec.Counters[darshan.StdioReads]
			}
		}
		fmt.Printf("%-34s %9.1f s   %6.2f GB/s   %d read calls\n",
			name, secs, float64(totalPerEpoch)*epochs/1e9/secs, reads)
		return secs
	}

	// 1. STDIO sample-by-sample from the PFS: each reader streams its
	//    shards through a FILE*, sample at a time.
	tStdio := run("STDIO sample reads from Alpine", 1, func(c *iosim.Client) float64 {
		var secs float64
		for e := 0; e < epochs; e++ {
			for s := 0; s < shards/8; s++ { // one reader's share, readers run in parallel
				path := fmt.Sprintf("/gpfs/alpine/ml/shard%04d.rst", s)
				c.Open(darshan.ModuleSTDIO, path, 0)
				for i := 0; i < samplesPerShard; i++ {
					secs += c.Read(darshan.ModuleSTDIO, path, 0, sampleSize, int64(i)*int64(sampleSize))
				}
				c.Close(darshan.ModuleSTDIO, path, 0)
			}
		}
		return secs
	})

	// 2. POSIX sample-by-sample from the PFS: the same access pattern
	//    through read(2).
	tPosix := run("POSIX sample reads from Alpine", 2, func(c *iosim.Client) float64 {
		var secs float64
		for e := 0; e < epochs; e++ {
			for s := 0; s < shards/8; s++ {
				path := fmt.Sprintf("/gpfs/alpine/ml/shard%04d.bin", s)
				c.Open(darshan.ModulePOSIX, path, 0)
				for i := 0; i < samplesPerShard; i++ {
					secs += c.Read(darshan.ModulePOSIX, path, 0, sampleSize, int64(i)*int64(sampleSize))
				}
				c.Close(darshan.ModulePOSIX, path, 0)
			}
		}
		return secs
	})

	// 3. Stage once to node-local NVMe, then read every epoch from SCNL.
	tStaged := run("stage to SCNL, then local reads", 3, func(c *iosim.Client) float64 {
		var secs float64
		// One-time stage-in: stream the shards across at large request size.
		for s := 0; s < shards/8; s++ {
			src := fmt.Sprintf("/gpfs/alpine/ml/shard%04d.bin", s)
			secs += c.Read(darshan.ModulePOSIX, src, 0, shardSize, 0)
			dst := fmt.Sprintf("/mnt/bb/ml/shard%04d.bin", s)
			secs += c.Write(darshan.ModulePOSIX, dst, 0, shardSize, 0)
		}
		for e := 0; e < epochs; e++ {
			for s := 0; s < shards/8; s++ {
				path := fmt.Sprintf("/mnt/bb/ml/shard%04d.bin", s)
				c.Open(darshan.ModulePOSIX, path, 0)
				for i := 0; i < samplesPerShard; i++ {
					secs += c.Read(darshan.ModulePOSIX, path, 0, sampleSize, int64(i)*int64(sampleSize))
				}
				c.Close(darshan.ModulePOSIX, path, 0)
			}
		}
		return secs
	})

	fmt.Println()
	fmt.Printf("POSIX vs STDIO on the PFS:   %.2fx\n", tStdio/tPosix)
	fmt.Printf("SCNL staging vs PFS POSIX:   %.2fx\n", tPosix/tStaged)
	fmt.Println()
	fmt.Println("=> STDIO underperforms POSIX for the same pattern (Recommendation 6),")
	fmt.Println("   and repeated epochs amortize one stage-in to the node-local layer —")
	fmt.Println("   the AI/ML usage the in-system layers were deployed for (§1).")
}
