package sched

import (
	"math"
	"testing"

	"iolayers/internal/dist"
	"iolayers/internal/workload"
)

func TestSimulateEmptyMachineRejected(t *testing.T) {
	if _, _, err := Simulate(Config{Nodes: 0}, nil); err == nil {
		t.Error("expected error for zero-node machine")
	}
}

func TestSimulateRejectsOversizedJobs(t *testing.T) {
	_, _, err := Simulate(Config{Nodes: 4}, []Job{{ID: 1, Nodes: 8, Runtime: 10}})
	if err == nil {
		t.Error("expected error for job larger than machine")
	}
	_, _, err = Simulate(Config{Nodes: 4, BBNodes: 0}, []Job{{ID: 1, Nodes: 1, BBNodes: 2, Runtime: 10}})
	if err == nil {
		t.Error("expected error for BB request on BB-less machine")
	}
}

func TestFIFOOnEmptyMachine(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 2, Runtime: 100},
		{ID: 2, Submit: 10, Nodes: 2, Runtime: 100},
	}
	place, m, err := Simulate(Config{Nodes: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(place) != 2 {
		t.Fatalf("placements = %d", len(place))
	}
	for _, p := range place {
		if p.Wait != 0 {
			t.Errorf("job %d waited %v on an empty machine", p.Job.ID, p.Wait)
		}
	}
	if m.Makespan != 110 {
		t.Errorf("makespan = %v, want 110", m.Makespan)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 100},
		{ID: 2, Submit: 0, Nodes: 4, Runtime: 50},
	}
	place, m, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range place {
		byID[p.Job.ID] = p
	}
	if byID[2].Start != 100 {
		t.Errorf("job 2 started at %v, want 100 (after job 1)", byID[2].Start)
	}
	if m.MaxWait != 100 {
		t.Errorf("max wait = %v", m.MaxWait)
	}
}

func TestEASYBackfill(t *testing.T) {
	// Machine: 4 nodes. J1 holds all 4 until t=100. J2 (head, 4 nodes)
	// must wait until 100. J3 (1 node, 50s) can backfill immediately
	// because it ends before J2's reservation.
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 100},
		{ID: 2, Submit: 1, Nodes: 4, Runtime: 100},
		{ID: 3, Submit: 2, Nodes: 1, Runtime: 50},
	}
	place, _, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range place {
		byID[p.Job.ID] = p
	}
	// No nodes free while J1 runs, so J3 backfills only at t=100 with J2?
	// No: zero nodes free until 100, so nothing can start before then; J2
	// (head) takes the machine at 100, J3 runs after it. Re-pose with free
	// nodes: see TestBackfillUsesIdleNodes.
	if byID[2].Start != 100 {
		t.Errorf("head started at %v, want 100", byID[2].Start)
	}
	if byID[3].Start < byID[2].Start {
		t.Errorf("J3 started %v before head %v with no free nodes", byID[3].Start, byID[2].Start)
	}
}

func TestBackfillUsesIdleNodes(t *testing.T) {
	// Machine: 4 nodes. J1 takes 2 nodes until t=100. J2 (head) wants 4 →
	// reserved at t=100. J3 wants 2 nodes for 50s: fits now AND ends at
	// ~50 ≤ 100, so EASY starts it immediately.
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 2, Runtime: 100},
		{ID: 2, Submit: 1, Nodes: 4, Runtime: 100},
		{ID: 3, Submit: 2, Nodes: 2, Runtime: 50},
	}
	place, _, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range place {
		byID[p.Job.ID] = p
	}
	if byID[3].Start != 2 {
		t.Errorf("backfill candidate started at %v, want 2 (immediately)", byID[3].Start)
	}
	if byID[2].Start != 100 {
		t.Errorf("head delayed to %v by backfill, want 100", byID[2].Start)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// J3 would fit now but runs 200s > head reservation at 100 → must not
	// start before the head.
	jobs := []Job{
		{ID: 1, Submit: 0, Nodes: 2, Runtime: 100},
		{ID: 2, Submit: 1, Nodes: 4, Runtime: 10},
		{ID: 3, Submit: 2, Nodes: 2, Runtime: 200},
	}
	place, _, err := Simulate(Config{Nodes: 4}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]Placement{}
	for _, p := range place {
		byID[p.Job.ID] = p
	}
	if byID[2].Start != 100 {
		t.Errorf("head start = %v, want 100 (not delayed by backfill)", byID[2].Start)
	}
	if byID[3].Start < byID[2].End {
		t.Errorf("long backfill candidate started at %v, delaying the head", byID[3].Start)
	}
}

func TestOverlappedStagingHidesBehindQueueWait(t *testing.T) {
	// The machine is busy for 500s; a BB job with 300s of staging submits
	// at t=0. With DataWarp overlap the stage is fully hidden; inline it
	// extends the job's occupancy.
	base := []Job{
		{ID: 1, Submit: 0, Nodes: 4, Runtime: 500},
		{ID: 2, Submit: 0, Nodes: 4, Runtime: 100, BBNodes: 2, StageInSeconds: 300},
	}
	overlapped, mo, err := Simulate(Config{Nodes: 4, BBNodes: 8, OverlapStaging: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	inline, mi, err := Simulate(Config{Nodes: 4, BBNodes: 8, OverlapStaging: false}, base)
	if err != nil {
		t.Fatal(err)
	}
	get := func(ps []Placement, id uint64) Placement {
		for _, p := range ps {
			if p.Job.ID == id {
				return p
			}
		}
		t.Fatalf("job %d missing", id)
		return Placement{}
	}
	ov, in := get(overlapped, 2), get(inline, 2)
	if ov.End >= in.End {
		t.Errorf("overlapped staging end %v not before inline %v", ov.End, in.End)
	}
	if math.Abs(ov.StageHidden-300) > 1e-9 {
		t.Errorf("hidden staging = %v, want 300 (fully hidden behind 500s wait)", ov.StageHidden)
	}
	if mi.StageHiddenTotal != 0 {
		t.Errorf("inline staging hid %v", mi.StageHiddenTotal)
	}
	if mo.StageHiddenTotal != 300 {
		t.Errorf("overlap metrics hid %v", mo.StageHiddenTotal)
	}
	// Inline staging occupies compute nodes: makespan grows.
	if mi.Makespan <= mo.Makespan {
		t.Errorf("inline makespan %v not above overlapped %v", mi.Makespan, mo.Makespan)
	}
}

func TestUtilizationBounded(t *testing.T) {
	jobs := FromProfile(workload.Cori(), SourceConfig{
		Scale: 0.0002, Seed: 3, PeriodSeconds: 30 * 86400,
		ProcsPerNode: 64, MachineNodes: 9688,
		BBFraction:   0.19,
		StageSeconds: dist.LogNormal{Median: 120, Sigma: 1},
	})
	if len(jobs) < 100 {
		t.Fatalf("job stream too small: %d", len(jobs))
	}
	_, m, err := Simulate(Config{Nodes: 9688, BBNodes: 288, OverlapStaging: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanUtilization <= 0 || m.MeanUtilization > 1 {
		t.Errorf("utilization = %v outside (0,1]", m.MeanUtilization)
	}
	if m.Jobs != len(jobs) {
		t.Errorf("completed %d of %d jobs", m.Jobs, len(jobs))
	}
	if m.P95Wait < m.MeanWait/10 || m.MaxWait < m.P95Wait {
		t.Errorf("wait stats inconsistent: mean %v p95 %v max %v", m.MeanWait, m.P95Wait, m.MaxWait)
	}
}

func TestFromProfileValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromProfile(workload.Cori(), SourceConfig{Scale: 0})
}

func TestDeterministicSchedule(t *testing.T) {
	mk := func() Metrics {
		jobs := FromProfile(workload.Summit(), SourceConfig{
			Scale: 0.0001, Seed: 5, PeriodSeconds: 7 * 86400,
			ProcsPerNode: 42, MachineNodes: 4608,
		})
		_, m, err := Simulate(Config{Nodes: 4608}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("schedules differ: %+v vs %+v", a, b)
	}
}
