package sched

import (
	"math"

	"iolayers/internal/dist"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/workload"
)

// SourceConfig controls job-stream synthesis from a workload profile.
type SourceConfig struct {
	// Scale multiplies the profile's full-scale job count.
	Scale float64
	// Seed drives all sampling.
	Seed uint64
	// PeriodSeconds is the submission window (a year by default).
	PeriodSeconds float64
	// ProcsPerNode converts sampled process counts to node requests.
	ProcsPerNode int
	// MachineNodes caps node requests.
	MachineNodes int
	// BBFraction is the share of jobs that request a burst-buffer
	// allocation (Cori's CBB-exclusive + both-layer jobs ≈ 19%).
	BBFraction float64
	// StageSeconds samples the stage-in duration of BB jobs.
	StageSeconds dist.Sampler
	// MaxWalltimeSeconds caps job runtimes, as production queue policies do
	// (0 = the conventional 48 h limit).
	MaxWalltimeSeconds float64
	// Faults, when non-nil, inflates the runtime of jobs submitted inside
	// the schedule's machine-wide slowdown windows: an I/O-degraded
	// interval stretches the job's I/O phases, which the scheduler sees as
	// longer occupancy. The walltime cap still applies afterwards.
	Faults *faults.Schedule
}

// FromProfile synthesizes a scheduler job stream matching the workload
// profile's job population: its process-count and runtime distributions,
// submitted uniformly over the period.
func FromProfile(p workload.Profile, cfg SourceConfig) []Job {
	if cfg.Scale <= 0 || cfg.ProcsPerNode <= 0 || cfg.MachineNodes <= 0 {
		panic("sched: SourceConfig needs positive Scale, ProcsPerNode, MachineNodes")
	}
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = 365 * 86400
	}
	if cfg.MaxWalltimeSeconds <= 0 {
		cfg.MaxWalltimeSeconds = 48 * 3600
	}
	n := int(math.Round(float64(p.Jobs) * cfg.Scale))
	if n < 1 {
		n = 1
	}
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		r := dist.Stream(cfg.Seed, uint64(i))
		procs := int(math.Round(p.NProcs.Sample(r)))
		if procs < 1 {
			procs = 1
		}
		nodes := (procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
		if nodes > cfg.MachineNodes {
			nodes = cfg.MachineNodes
		}
		// A scheduler job spans all of its application executions (logs),
		// so its wall time is the per-execution runtime times the
		// executions-per-job draw.
		nlogs := int(math.Round(p.LogsPerJob.Sample(r)))
		if nlogs < 1 {
			nlogs = 1
		}
		if nlogs > p.MaxLogsPerJob {
			nlogs = p.MaxLogsPerJob
		}
		runtime := p.RuntimeSeconds.Sample(r) * float64(nlogs)
		if runtime < 10 {
			runtime = 10
		}
		submit := r.Float64() * cfg.PeriodSeconds
		if cfg.Faults != nil {
			// A job running through a machine-wide I/O slowdown finishes
			// late: its I/O phases stretch by the inverse of the delivered
			// bandwidth fraction at submission time.
			if s := cfg.Faults.SlowdownAt(submit); s < 1 {
				runtime /= s
			}
		}
		if runtime > cfg.MaxWalltimeSeconds {
			runtime = cfg.MaxWalltimeSeconds
		}
		j := Job{
			ID:      uint64(i + 1),
			Submit:  submit,
			Nodes:   nodes,
			Runtime: runtime,
		}
		if cfg.BBFraction > 0 && dist.Bernoulli(r, cfg.BBFraction) {
			j.BBNodes = 1 + r.IntN(16)
			if cfg.StageSeconds != nil {
				j.StageInSeconds = cfg.StageSeconds.Sample(r)
			}
		}
		jobs = append(jobs, j)
	}
	return jobs
}
