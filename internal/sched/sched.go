// Package sched is a discrete-event batch scheduler for the simulated
// machines: jobs arrive over the campaign period, queue, and run under
// EASY backfill on a fixed node pool, with Cray DataWarp-style burst-buffer
// allocations whose stage-in copies overlap queue wait — the scheduler
// integration the paper's §2.1.2 credits for CBB's usability ("end users
// can define directives ... enabling end users to stage directories and
// files in/out CBB before a job starts ... without user involvement").
//
// The scheduler supplies the production-load context the paper's title
// refers to: machine utilization over time, queue statistics, and the
// measurable benefit of overlapping staging with queueing.
package sched

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
)

// Job is one batch job's resource request.
type Job struct {
	// ID is an arbitrary job identifier.
	ID uint64
	// Submit is the submission time in seconds since campaign start.
	Submit float64
	// Nodes is the compute-node request; must be positive.
	Nodes int
	// Runtime is the execution duration once started, in seconds.
	Runtime float64
	// BBNodes is the burst-buffer node allocation (0 = none requested).
	BBNodes int
	// StageInSeconds is the duration of the scheduler-driven stage-in copy
	// tied to the burst-buffer allocation (0 = nothing to stage).
	StageInSeconds float64
}

// Config describes the machine being scheduled.
type Config struct {
	// Nodes is the compute-node pool size.
	Nodes int
	// BBNodes is the burst-buffer node pool (0 = machine has none).
	BBNodes int
	// OverlapStaging selects DataWarp behavior: stage-in runs while the job
	// queues, holding only burst-buffer nodes. When false the stage-in runs
	// after allocation, holding the job's compute nodes idle — what a user
	// doing `cp` at the top of their job script gets.
	OverlapStaging bool
}

// Placement records one job's scheduling outcome.
type Placement struct {
	Job   Job
	Start float64 // compute start (after any inline staging)
	End   float64
	Wait  float64 // Start − Submit
	// StageHidden is the stage-in time that overlapped queue wait and so
	// cost the job nothing.
	StageHidden float64
}

// Metrics summarizes a schedule.
type Metrics struct {
	Jobs            int
	Makespan        float64
	MeanWait        float64
	P95Wait         float64
	MaxWait         float64
	MeanUtilization float64 // busy node-seconds / (nodes × makespan)
	PeakQueueDepth  int
	// StageHiddenTotal is the aggregate staging time hidden behind queue
	// wait (only nonzero with OverlapStaging).
	StageHiddenTotal float64
}

// event is a scheduler clock event.
type event struct {
	at   float64
	kind int // 0 = submit/ready, 1 = job end
	idx  int
}

type eventHeap []event

func (h eventHeap) Len() int      { return len(h) }
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].kind > h[j].kind // process ends before starts at equal times
}
func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate schedules jobs under EASY backfill and returns per-job
// placements (in completion order) and aggregate metrics. Jobs larger than
// the machine are rejected with an error.
func Simulate(cfg Config, jobs []Job) ([]Placement, Metrics, error) {
	return SimulateContext(context.Background(), cfg, jobs)
}

// cancelCheckInterval is how many clock events the simulation loop advances
// between context checks — often enough that cancellation lands promptly,
// rarely enough that the check costs nothing against heap operations.
const cancelCheckInterval = 1024

// SimulateContext is Simulate under a context: cancellation stops the event
// loop and returns the placements completed so far, metrics over them, and
// ctx's error. A partial schedule's metrics describe a truncated campaign
// and are not comparable to a complete run's.
func SimulateContext(ctx context.Context, cfg Config, jobs []Job) ([]Placement, Metrics, error) {
	if cfg.Nodes <= 0 {
		return nil, Metrics{}, fmt.Errorf("sched: machine needs nodes, got %d", cfg.Nodes)
	}
	for _, j := range jobs {
		if j.Nodes <= 0 || j.Nodes > cfg.Nodes {
			return nil, Metrics{}, fmt.Errorf("sched: job %d requests %d of %d nodes", j.ID, j.Nodes, cfg.Nodes)
		}
		if j.BBNodes > cfg.BBNodes {
			return nil, Metrics{}, fmt.Errorf("sched: job %d requests %d of %d BB nodes", j.ID, j.BBNodes, cfg.BBNodes)
		}
		if j.Runtime < 0 || j.Submit < 0 || j.StageInSeconds < 0 {
			return nil, Metrics{}, fmt.Errorf("sched: job %d has negative times", j.ID)
		}
	}

	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Submit < ordered[j].Submit })

	// ready[i]: earliest compute start permitted by staging.
	ready := make([]float64, len(ordered))
	for i, j := range ordered {
		ready[i] = j.Submit
		if cfg.OverlapStaging && j.BBNodes > 0 {
			// DataWarp: staging starts at submit, holds only BB nodes.
			ready[i] = j.Submit + j.StageInSeconds
		}
	}

	var (
		events    eventHeap
		queue     []int // indices into ordered, FIFO
		freeNodes = cfg.Nodes
		running   = map[int]float64{} // job idx → end time
		place     = make([]Placement, 0, len(ordered))
		busyNS    float64 // node-seconds of compute
		peakQ     int
		now       float64
	)
	for i := range ordered {
		heap.Push(&events, event{at: ready[i], kind: 0, idx: i})
	}

	startJob := func(i int, at float64) {
		j := ordered[i]
		inlineStage := 0.0
		if !cfg.OverlapStaging && j.BBNodes > 0 {
			// The stage runs on the job's allocation before compute.
			inlineStage = j.StageInSeconds
		}
		start := at + inlineStage
		end := start + j.Runtime
		freeNodes -= j.Nodes
		running[i] = end
		heap.Push(&events, event{at: end, kind: 1, idx: i})
		hidden := 0.0
		if cfg.OverlapStaging && j.BBNodes > 0 {
			// Staging time hidden = overlap with what the wait would have
			// been anyway; at minimum zero.
			hidden = minf(j.StageInSeconds, at-j.Submit)
		}
		place = append(place, Placement{
			Job: j, Start: start, End: end,
			Wait:        start - j.Submit,
			StageHidden: hidden,
		})
		busyNS += (end - at) * float64(j.Nodes) // inline staging holds nodes too
	}

	// trySchedule runs EASY backfill over the queue at the current time.
	trySchedule := func() {
		// Start the head while it fits.
		for len(queue) > 0 && ordered[queue[0]].Nodes <= freeNodes {
			startJob(queue[0], now)
			queue = queue[1:]
		}
		if len(queue) == 0 {
			return
		}
		// Head reservation: the earliest time enough nodes will be free.
		head := ordered[queue[0]]
		type rel struct {
			at    float64
			nodes int
		}
		var rels []rel
		for i, end := range running {
			rels = append(rels, rel{end, ordered[i].Nodes})
		}
		sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
		avail := freeNodes
		reserveAt := now
		for _, r := range rels {
			if avail >= head.Nodes {
				break
			}
			avail += r.nodes
			reserveAt = r.at
		}
		// Nodes free right now that the head cannot use until reserveAt may
		// backfill jobs that finish by then or fit beside the reservation.
		for qi := 1; qi < len(queue); {
			cand := ordered[queue[qi]]
			fits := cand.Nodes <= freeNodes
			endsInTime := now+backfillSpan(cfg, cand) <= reserveAt
			if fits && endsInTime {
				startJob(queue[qi], now)
				queue = append(queue[:qi], queue[qi+1:]...)
				continue
			}
			qi++
		}
	}

	var stopErr error
	for tick := 0; events.Len() > 0; tick++ {
		if tick%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				stopErr = err
				break
			}
		}
		ev := heap.Pop(&events).(event)
		now = ev.at
		switch ev.kind {
		case 0:
			queue = append(queue, ev.idx)
			if len(queue) > peakQ {
				peakQ = len(queue)
			}
		case 1:
			freeNodes += ordered[ev.idx].Nodes
			delete(running, ev.idx)
		}
		trySchedule()
	}

	m := Metrics{Jobs: len(place), PeakQueueDepth: peakQ}
	if len(place) > 0 {
		waits := make([]float64, len(place))
		var waitSum float64
		for i, p := range place {
			waits[i] = p.Wait
			waitSum += p.Wait
			if p.End > m.Makespan {
				m.Makespan = p.End
			}
			if p.Wait > m.MaxWait {
				m.MaxWait = p.Wait
			}
			m.StageHiddenTotal += p.StageHidden
		}
		m.MeanWait = waitSum / float64(len(place))
		sort.Float64s(waits)
		m.P95Wait = waits[int(0.95*float64(len(waits)-1))]
		if m.Makespan > 0 {
			m.MeanUtilization = busyNS / (float64(cfg.Nodes) * m.Makespan)
		}
	}
	return place, m, stopErr
}

// backfillSpan is the wall-clock a backfill candidate would occupy nodes:
// its runtime plus inline staging when staging is not overlapped.
func backfillSpan(cfg Config, j Job) float64 {
	span := j.Runtime
	if !cfg.OverlapStaging && j.BBNodes > 0 {
		span += j.StageInSeconds
	}
	return span
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
