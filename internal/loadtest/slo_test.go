package loadtest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iolayers/internal/obsv"
)

func cleanResult() *Result {
	return &Result{
		SchemaVersion: ResultSchemaVersion,
		Scenario:      "smoke",
		ElapsedSec:    10,
		Ops: map[string]*OpResult{
			"report": {
				Arrivals: 1000, OK: 990, Throttled: 10,
				Throughput: 99,
				LatencyUS:  obsv.HDRQuantiles{P50: 2000, P99: 9000, P999: 20000, Count: 1000},
			},
		},
		Totals: OpResult{
			Arrivals: 1000, OK: 990, Throttled: 10,
			Throughput: 99,
			LatencyUS:  obsv.HDRQuantiles{P50: 2000, P99: 9000, P999: 20000, Count: 1000},
		},
	}
}

func baselineFor(res *Result) *Baseline {
	b := &Baseline{}
	b.UpdateFrom(res)
	return b
}

func TestBaselineUpdateThenCheckPasses(t *testing.T) {
	res := cleanResult()
	b := baselineFor(res)
	if v := b.Check(res); len(v) != 0 {
		t.Fatalf("self-check violations: %v", v)
	}
	// The derived bands carry headroom.
	slo := b.Scenarios["smoke"]["report"]
	if slo.MaxP99US != 27000 || slo.MinThroughput != 49.5 || slo.MaxDivergent != 0 {
		t.Errorf("derived bands %+v", slo)
	}
	if slo.MaxErrorRate < 0.005 {
		t.Errorf("error-rate floor missing: %v", slo.MaxErrorRate)
	}
}

func TestBaselineCatchesRegressions(t *testing.T) {
	b := baselineFor(cleanResult())
	find := func(res *Result, want string) {
		t.Helper()
		vs := b.Check(res)
		for _, v := range vs {
			if strings.Contains(v.Detail, want) {
				return
			}
		}
		t.Errorf("no violation mentioning %q in %v", want, vs)
	}

	deg := cleanResult()
	deg.Ops["report"].ServerErrors = 200
	deg.Ops["report"].OK = 790
	finish(deg.Ops["report"], deg.ElapsedSec)
	find(deg, "error rate")

	slow := cleanResult()
	slow.Ops["report"].LatencyUS.P99 = 100000
	find(slow, "p99")

	starved := cleanResult()
	starved.Ops["report"].Throughput = 1
	find(starved, "throughput")

	split := cleanResult()
	split.Ops["report"].Divergent = 1
	find(split, "divergent")

	unknown := cleanResult()
	unknown.Scenario = "never-baselined"
	find(unknown, "no committed SLO baseline")

	missing := cleanResult()
	delete(missing.Ops, "report")
	find(missing, "never issued")
}

func TestBaselineToleranceSemantics(t *testing.T) {
	res := cleanResult()
	b := baselineFor(res)
	b.Tolerance = 2

	// 3x-band p99 is 27000; tolerance 2 admits up to 54000.
	res.Ops["report"].LatencyUS.P99 = 50000
	if v := b.Check(res); len(v) != 0 {
		t.Errorf("within-tolerance latency flagged: %v", v)
	}
	res.Ops["report"].LatencyUS.P99 = 60000
	if v := b.Check(res); len(v) == 0 {
		t.Error("beyond-tolerance latency passed")
	}

	// Tolerance never excuses errors or divergence.
	res = cleanResult()
	res.Ops["report"].Divergent = 1
	if v := b.Check(res); len(v) == 0 {
		t.Error("tolerance excused a divergent body")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := baselineFor(cleanResult())
	path := filepath.Join(t.TempDir(), "slo_baseline.json")
	if err := b.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tolerance != b.Tolerance || len(got.Scenarios) != 1 {
		t.Errorf("round-trip %+v", got)
	}
	if v := got.Check(cleanResult()); len(v) != 0 {
		t.Errorf("round-tripped baseline violations: %v", v)
	}

	// Version and parse failures are loud.
	if err := os.WriteFile(path, []byte(`{"schema_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("wrong schema_version accepted")
	}
	if err := os.WriteFile(path, []byte(`nope`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("garbage baseline accepted")
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestResultJSONAndRender(t *testing.T) {
	res := cleanResult()
	res.DivergenceSamples = []string{"u|1: body aa != bb"}
	path := filepath.Join(t.TempDir(), "summary.json")
	if err := res.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema_version": 2`, `"latency_us"`, `"error_rate"`, `"throughput_rps"`, `"non_envelope"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("summary JSON missing %s", want)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"scenario smoke", "TOTAL", "p999", "divergence samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}
