package loadtest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// BaselineSchemaVersion stamps slo_baseline.json.
const BaselineSchemaVersion = 1

// SLO is the committed service-level band for one operation class of one
// scenario. Zero-valued fields are unchecked, so a baseline can pin only
// what matters (CI pins error rate and throughput tightly but leaves
// latency bands generous — shared runners have terrible clocks).
type SLO struct {
	// MaxErrorRate caps OpResult.ErrorRate. Note 429s are throttles,
	// not errors — a tenant hitting its own limit is the router working.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinThroughput floors successful responses per second.
	MinThroughput float64 `json:"min_throughput_rps,omitempty"`
	// MaxP50US / MaxP99US / MaxP999US cap the latency quantiles, in
	// microseconds measured from scheduled arrival.
	MaxP50US  int64 `json:"max_p50_us,omitempty"`
	MaxP99US  int64 `json:"max_p99_us,omitempty"`
	MaxP999US int64 `json:"max_p999_us,omitempty"`
	// MaxDivergent caps byte-identity violations; it defaults to zero —
	// a single divergent 200 is a correctness bug, never acceptable.
	MaxDivergent uint64 `json:"max_divergent"`
	// MaxNonEnvelope caps error responses whose body is not the
	// structured httpapi envelope. Like divergence it defaults to zero:
	// the error contract either holds everywhere or it is broken.
	MaxNonEnvelope uint64 `json:"max_non_envelope"`
}

// Baseline is the committed SLO file: per-scenario, per-op bands plus a
// shared tolerance.
type Baseline struct {
	SchemaVersion int `json:"schema_version"`
	// Tolerance scales every latency and throughput band at check time:
	// a quantile passes while observed <= band * Tolerance, throughput
	// while observed >= floor / Tolerance. Error-rate and divergence
	// caps are absolute — tolerance does not excuse errors. Zero means
	// 1.0 (no slack).
	Tolerance float64 `json:"tolerance"`
	// Scenarios maps scenario name → op name (or "totals") → band.
	Scenarios map[string]map[string]SLO `json:"scenarios"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadtest: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("loadtest: parsing %s: %w", path, err)
	}
	if b.SchemaVersion != BaselineSchemaVersion {
		return nil, fmt.Errorf("loadtest: %s has schema_version %d, this binary expects %d",
			path, b.SchemaVersion, BaselineSchemaVersion)
	}
	return &b, nil
}

// Violation is one SLO breach, already formatted for humans.
type Violation struct {
	Scenario string `json:"scenario"`
	Op       string `json:"op"`
	Detail   string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Scenario, v.Op, v.Detail)
}

// Check compares a run against the baseline. A scenario missing from the
// baseline is itself a violation — an ungated scenario silently passing
// is how SLO gates rot. Ops present in the baseline but absent from the
// run are violations too (the load never exercised what the gate pins).
func (b *Baseline) Check(res *Result) []Violation {
	tol := b.Tolerance
	if tol <= 0 {
		tol = 1
	}
	bands, ok := b.Scenarios[res.Scenario]
	if !ok {
		return []Violation{{Scenario: res.Scenario, Op: "-",
			Detail: "scenario has no committed SLO baseline"}}
	}
	var out []Violation
	names := make([]string, 0, len(bands))
	for name := range bands {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		slo := bands[name]
		var o *OpResult
		if name == "totals" {
			o = &res.Totals
		} else {
			o = res.Ops[name]
		}
		add := func(format string, args ...any) {
			out = append(out, Violation{Scenario: res.Scenario, Op: name,
				Detail: fmt.Sprintf(format, args...)})
		}
		if o == nil || o.Arrivals == 0 {
			add("baseline pins this op but the run never issued it")
			continue
		}
		if o.ErrorRate > slo.MaxErrorRate {
			add("error rate %.4f exceeds max %.4f (%d hard errors / %d completed)",
				o.ErrorRate, slo.MaxErrorRate, o.HardErrors(), o.Completed())
		}
		if o.Divergent > slo.MaxDivergent {
			add("%d divergent 200s exceed max %d — replicas disagreed byte-for-byte",
				o.Divergent, slo.MaxDivergent)
		}
		if o.NonEnvelope > slo.MaxNonEnvelope {
			add("%d non-envelope error bodies exceed max %d — the error contract leaked",
				o.NonEnvelope, slo.MaxNonEnvelope)
		}
		if slo.MinThroughput > 0 && o.Throughput < slo.MinThroughput/tol {
			add("throughput %.1f ok/s below floor %.1f/tolerance %.2f = %.1f",
				o.Throughput, slo.MinThroughput, tol, slo.MinThroughput/tol)
		}
		lat := func(name string, got, band int64) {
			if band > 0 && float64(got) > float64(band)*tol {
				add("%s %dus exceeds band %dus x tolerance %.2f", name, got, band, tol)
			}
		}
		lat("p50", o.LatencyUS.P50, slo.MaxP50US)
		lat("p99", o.LatencyUS.P99, slo.MaxP99US)
		lat("p999", o.LatencyUS.P999, slo.MaxP999US)
	}
	return out
}

// UpdateFrom regenerates the baseline entry for res's scenario from its
// measured numbers, with headroom: latency bands at 3x observed,
// throughput floor at half observed, error-rate cap at twice observed
// (but at least 0.5%), divergence pinned to zero regardless. The
// headroom is what makes a regenerated baseline survive runner noise;
// the tolerance field then absorbs machine-to-machine spread.
func (b *Baseline) UpdateFrom(res *Result) {
	if b.SchemaVersion == 0 {
		b.SchemaVersion = BaselineSchemaVersion
	}
	if b.Tolerance == 0 {
		b.Tolerance = 1.5
	}
	if b.Scenarios == nil {
		b.Scenarios = map[string]map[string]SLO{}
	}
	bands := map[string]SLO{}
	derive := func(o *OpResult) SLO {
		rate := o.ErrorRate * 2
		if rate < 0.005 {
			rate = 0.005
		}
		return SLO{
			MaxErrorRate:   rate,
			MinThroughput:  o.Throughput / 2,
			MaxP50US:       o.LatencyUS.P50 * 3,
			MaxP99US:       o.LatencyUS.P99 * 3,
			MaxP999US:      o.LatencyUS.P999 * 3,
			MaxDivergent:   0,
			MaxNonEnvelope: 0,
		}
	}
	for name, o := range res.Ops {
		bands[name] = derive(o)
	}
	bands["totals"] = derive(&res.Totals)
	b.Scenarios[res.Scenario] = bands
}

// WriteJSON writes the baseline with stable formatting for committing.
func (b *Baseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteJSONFile writes the baseline to path.
func (b *Baseline) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("loadtest: writing %s: %w", path, err)
	}
	return f.Close()
}
