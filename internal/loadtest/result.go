package loadtest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"iolayers/internal/obsv"
)

// ResultSchemaVersion stamps the summary JSON so downstream tooling can
// detect shape changes. Version 2 added the non_envelope counter (error
// responses whose body is not the structured httpapi envelope).
const ResultSchemaVersion = 2

// OpResult is the measured outcome of one operation class (or, for
// Result.Totals, of everything). The taxonomy is deliberate:
//
//   - Shed requests never left the generator (every client was busy) —
//     offered load the service never saw.
//   - Throttled (429) responses are the service working as designed
//     under multi-tenant limits; they are not errors.
//   - Unauthorized / ClientErrors / ServerErrors / NetErrors / Divergent
//     are hard errors: ErrorRate counts exactly these.
//   - NonEnvelope rides alongside the status taxonomy the way Divergent
//     rides on 200s: a non-200 whose body is not the structured error
//     envelope is a contract violation on top of whatever outcome class
//     the status put it in. It is gated separately (SLO.MaxNonEnvelope),
//     not folded into ErrorRate — that would double-count 4xx/5xx.
type OpResult struct {
	Arrivals     uint64 `json:"arrivals"`
	Shed         uint64 `json:"shed"`
	OK           uint64 `json:"ok"`
	Throttled    uint64 `json:"throttled"`
	Unauthorized uint64 `json:"unauthorized"`
	ClientErrors uint64 `json:"client_errors"`
	ServerErrors uint64 `json:"server_errors"`
	NetErrors    uint64 `json:"net_errors"`
	Divergent    uint64 `json:"divergent"`
	NonEnvelope  uint64 `json:"non_envelope"`

	// ErrorRate is hard errors over completed (non-shed) requests.
	ErrorRate float64 `json:"error_rate"`
	// Throughput is successful (200) responses per wall-clock second.
	Throughput float64 `json:"throughput_rps"`
	// LatencyUS summarizes the operation's latency distribution in
	// microseconds, measured from each request's scheduled arrival.
	LatencyUS obsv.HDRQuantiles `json:"latency_us"`
}

// HardErrors is the error-taxonomy sum ErrorRate is computed over.
func (o *OpResult) HardErrors() uint64 {
	return o.Unauthorized + o.ClientErrors + o.ServerErrors + o.NetErrors + o.Divergent
}

// Completed is every arrival that actually ran: arrivals minus shed.
func (o *OpResult) Completed() uint64 { return o.Arrivals - o.Shed }

// Result is one load run's summary — what -out writes as JSON and what
// the SLO gate checks.
type Result struct {
	SchemaVersion int     `json:"schema_version"`
	Scenario      string  `json:"scenario"`
	Seed          uint64  `json:"seed"`
	Target        string  `json:"target"`
	RateOffered   float64 `json:"rate_offered_rps"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	ElapsedSec    float64 `json:"elapsed_sec"`

	Ops    map[string]*OpResult `json:"ops"`
	Totals OpResult             `json:"totals"`

	// DivergenceSamples holds the first few byte-identity violations,
	// for the human reading a failed run.
	DivergenceSamples []string `json:"divergence_samples,omitempty"`
}

// collect freezes the runner's counters into a Result.
func (r *runner) collect(elapsed time.Duration) *Result {
	res := &Result{
		SchemaVersion: ResultSchemaVersion,
		Scenario:      r.sc.Name,
		Seed:          r.sc.Seed,
		Target:        r.opts.Target,
		RateOffered:   r.sc.Rate,
		Clients:       r.sc.Clients,
		DurationSec:   r.sc.Duration.Seconds(),
		ElapsedSec:    elapsed.Seconds(),
		Ops:           map[string]*OpResult{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	total := &obsv.HDR{}
	for _, op := range Ops {
		oc := r.ops[op]
		if oc.arrivals == 0 {
			continue
		}
		o := &OpResult{
			Arrivals:     oc.arrivals,
			Shed:         oc.shed,
			OK:           oc.ok,
			Throttled:    oc.throttled,
			Unauthorized: oc.unauthorized,
			ClientErrors: oc.clientErrors,
			ServerErrors: oc.serverErrors,
			NetErrors:    oc.netErrors,
			Divergent:    oc.divergent,
			NonEnvelope:  oc.nonEnvelope,
			LatencyUS:    oc.latency.Quantiles(),
		}
		finish(o, res.ElapsedSec)
		res.Ops[string(op)] = o
		res.Totals.Arrivals += o.Arrivals
		res.Totals.Shed += o.Shed
		res.Totals.OK += o.OK
		res.Totals.Throttled += o.Throttled
		res.Totals.Unauthorized += o.Unauthorized
		res.Totals.ClientErrors += o.ClientErrors
		res.Totals.ServerErrors += o.ServerErrors
		res.Totals.NetErrors += o.NetErrors
		res.Totals.Divergent += o.Divergent
		res.Totals.NonEnvelope += o.NonEnvelope
		total.Merge(oc.latency)
	}
	res.Totals.LatencyUS = total.Quantiles()
	finish(&res.Totals, res.ElapsedSec)
	res.DivergenceSamples = append([]string(nil), r.samples...)
	return res
}

func finish(o *OpResult, elapsedSec float64) {
	if c := o.Completed(); c > 0 {
		o.ErrorRate = float64(o.HardErrors()) / float64(c)
	}
	if elapsedSec > 0 {
		o.Throughput = float64(o.OK) / elapsedSec
	}
}

// WriteJSON writes the summary with stable formatting (trailing newline,
// two-space indent) so committed artifacts diff cleanly.
func (res *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteJSONFile writes the summary to path.
func (res *Result) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	if err := res.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("loadtest: writing %s: %w", path, err)
	}
	return f.Close()
}

// Render writes the human summary table.
func (res *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "scenario %s  seed %d  target %s\n", res.Scenario, res.Seed, res.Target)
	fmt.Fprintf(w, "offered %.0f req/s x %.0fs, %d clients; ran %.1fs\n",
		res.RateOffered, res.DurationSec, res.Clients, res.ElapsedSec)
	fmt.Fprintf(w, "%-10s %9s %7s %9s %7s %7s %8s %10s %10s %10s\n",
		"op", "arrivals", "shed", "ok", "throttl", "errors", "err-rate", "p50(ms)", "p99(ms)", "p999(ms)")
	names := make([]string, 0, len(res.Ops))
	for name := range res.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	row := func(name string, o *OpResult) {
		fmt.Fprintf(w, "%-10s %9d %7d %9d %7d %7d %7.2f%% %10.2f %10.2f %10.2f\n",
			name, o.Arrivals, o.Shed, o.OK, o.Throttled, o.HardErrors(), o.ErrorRate*100,
			float64(o.LatencyUS.P50)/1000, float64(o.LatencyUS.P99)/1000, float64(o.LatencyUS.P999)/1000)
	}
	for _, name := range names {
		row(name, res.Ops[name])
	}
	row("TOTAL", &res.Totals)
	fmt.Fprintf(w, "throughput %.1f ok/s, error rate %.3f%%, %d divergent bodies, %d non-envelope errors\n",
		res.Totals.Throughput, res.Totals.ErrorRate*100, res.Totals.Divergent, res.Totals.NonEnvelope)
	if len(res.DivergenceSamples) > 0 {
		fmt.Fprintln(w, "divergence samples:")
		for _, s := range res.DivergenceSamples {
			fmt.Fprintf(w, "  %s\n", s)
		}
	}
}
