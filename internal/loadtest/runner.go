package loadtest

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"math/rand/v2"

	"iolayers/internal/httpapi"
	"iolayers/internal/obsv"
)

// Options configures a Run beyond the scenario itself.
type Options struct {
	// Target is the base URL of the service under test — a single
	// ioserved or an iorouter front-end; the generator cannot tell the
	// difference and should not be able to.
	Target string
	// Client overrides the HTTP client (nil builds one sized for the
	// scenario's client cap — the default transport's 2 idle conns per
	// host would serialize everything).
	Client *http.Client
	// Logf, when set, receives one progress line per second.
	Logf func(format string, args ...any)
}

// call is one planned arrival: everything random about it is decided by
// the scheduler goroutine, in schedule order, so the request sequence is
// a pure function of the scenario seed.
type call struct {
	op     Op
	url    string
	body   []byte // POST body; nil means GET
	apikey string
	sched  time.Time // the scheduled arrival instant — latency is measured from here
}

// opCounters accumulates one operation class's outcomes. Everything is
// under the runner's mutex except the histogram, which is internally
// atomic.
type opCounters struct {
	arrivals     uint64
	shed         uint64
	ok           uint64
	throttled    uint64
	unauthorized uint64
	clientErrors uint64
	serverErrors uint64
	netErrors    uint64
	divergent    uint64
	nonEnvelope  uint64
	latency      *obsv.HDR
}

// runner is the live state of one Run.
type runner struct {
	sc     Scenario
	opts   Options
	client *http.Client

	mu      sync.Mutex
	ops     map[Op]*opCounters
	bodies  map[string][32]byte // (path|generation) → first body digest
	samples []string            // first few divergence descriptions
}

// Run drives the scenario against opts.Target and returns the measured
// result. It returns early (with partial results discarded and an error)
// only for configuration problems; a misbehaving server shows up in the
// result's error taxonomy, not as a Go error. Cancelling ctx stops
// generating arrivals and drains in-flight requests.
func Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opts.Target == "" {
		return nil, fmt.Errorf("loadtest: no target")
	}
	base, err := url.Parse(opts.Target)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("loadtest: target %q is not an absolute URL", opts.Target)
	}
	r := &runner{
		sc:     sc,
		opts:   opts,
		client: opts.Client,
		ops:    map[Op]*opCounters{},
		bodies: map[string][32]byte{},
	}
	for _, op := range Ops {
		r.ops[op] = &opCounters{latency: &obsv.HDR{}}
	}
	if r.client == nil {
		tr := &http.Transport{
			MaxIdleConns:        sc.Clients,
			MaxIdleConnsPerHost: sc.Clients,
			MaxConnsPerHost:     0,
			IdleConnTimeout:     30 * time.Second,
		}
		r.client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}

	// The open loop: arrivals land on a precomputed Poisson timeline.
	// Falling behind schedule never drops or delays an arrival decision —
	// the dispatch just happens late, and the latency clock has already
	// started at the scheduled instant, so server-side stalls are charged
	// in full (no coordinated omission).
	rng := rand.New(rand.NewPCG(sc.Seed, 0x10ad7e57))
	sem := make(chan struct{}, sc.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	lastLog := start
	var offset time.Duration
	for {
		offset += time.Duration(rng.ExpFloat64() / sc.Rate * float64(time.Second))
		if offset >= sc.Duration || ctx.Err() != nil {
			break
		}
		c := r.plan(rng, base)
		c.sched = start.Add(offset)
		if d := time.Until(c.sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		oc := r.ops[c.op]
		r.mu.Lock()
		oc.arrivals++
		r.mu.Unlock()
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				r.execute(ctx, c, oc)
			}()
		default:
			// Every client is busy: the arrival is shed at the edge of the
			// generator, counted, and never retried. Queueing it would
			// hide server slowness inside generator queue depth.
			r.mu.Lock()
			oc.shed++
			r.mu.Unlock()
		}
		if r.opts.Logf != nil && time.Since(lastLog) >= time.Second {
			lastLog = time.Now()
			r.mu.Lock()
			var arr, shed uint64
			for _, oc := range r.ops {
				arr += oc.arrivals
				shed += oc.shed
			}
			r.mu.Unlock()
			r.opts.Logf("t=%v arrivals=%d shed=%d", offset.Round(time.Second), arr, shed)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	return r.collect(elapsed), nil
}

// plan decides everything random about the next arrival. It runs only on
// the scheduler goroutine: one rng, strict schedule order, deterministic
// sequence per seed.
func (r *runner) plan(rng *rand.Rand, base *url.URL) call {
	sc := &r.sc
	c := call{op: pickOp(rng, sc.Mix)}
	if len(sc.APIKeys) > 0 {
		c.apikey = sc.APIKeys[rng.IntN(len(sc.APIKeys))]
	}
	switch c.op {
	case OpReport:
		q := url.Values{}
		sec := sc.Sections[rng.IntN(len(sc.Sections))]
		format := sc.Formats[rng.IntN(len(sc.Formats))]
		// CSV renders the whole report only — the API 400s a
		// section-restricted CSV, so keep the plan legal by construction
		// (both rng draws still happen: the schedule stays seed-stable).
		if format == "csv" {
			sec = ""
		}
		if sec != "" {
			q.Set("section", sec)
		}
		q.Set("format", format)
		c.url = base.JoinPath("v1", "report", sc.Dataset).String() + "?" + q.Encode()
	case OpCompare:
		other := sc.CompareWith
		if other == "" {
			other = sc.Dataset
		}
		c.url = base.JoinPath("v1", "compare", sc.Dataset, other).String()
	case OpPredict:
		c.url = base.JoinPath("v1", "predict", sc.Dataset).String()
	case OpDatasets:
		c.url = base.JoinPath("v1", "datasets").String()
	case OpIngest:
		c.url = base.JoinPath("v1", "ingest").String()
		c.body = fmt.Appendf(nil, `{"dataset":%q,"system":%q,"source":%q}`,
			sc.IngestDataset, sc.IngestSystem, sc.IngestSource)
	}
	return c
}

// pickOp samples the mix by cumulative weight.
func pickOp(rng *rand.Rand, m Mix) Op {
	x := rng.Float64() * m.total()
	for _, op := range Ops {
		if w := m.weight(op); x < w {
			return op
		} else {
			x -= w
		}
	}
	return OpReport
}

// execute performs one call and classifies the outcome. The latency
// clock runs from the scheduled arrival, not the actual dispatch.
func (r *runner) execute(ctx context.Context, c call, oc *opCounters) {
	var req *http.Request
	var err error
	if c.body != nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(c.body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.url, nil)
	}
	if err != nil {
		r.count(oc, func(o *opCounters) { o.netErrors++ })
		return
	}
	if c.apikey != "" {
		req.Header.Set("X-API-Key", c.apikey)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		oc.latency.Observe(time.Since(c.sched).Microseconds())
		r.count(oc, func(o *opCounters) { o.netErrors++ })
		return
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	oc.latency.Observe(time.Since(c.sched).Microseconds())
	if rerr != nil {
		r.count(oc, func(o *opCounters) { o.netErrors++ })
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		diverged := r.checkDivergence(c, resp, body)
		r.count(oc, func(o *opCounters) {
			o.ok++
			if diverged {
				o.divergent++
			}
		})
		return
	case resp.StatusCode == http.StatusTooManyRequests:
		r.count(oc, func(o *opCounters) { o.throttled++ })
	case resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden:
		r.count(oc, func(o *opCounters) { o.unauthorized++ })
	case resp.StatusCode >= 500:
		r.count(oc, func(o *opCounters) { o.serverErrors++ })
	default:
		r.count(oc, func(o *opCounters) { o.clientErrors++ })
	}
	// Every non-200 the API family emits is a structured error envelope
	// (httpapi); a plain-text or ad-hoc body is a contract leak, counted
	// alongside the status-class outcome the way divergence rides on 200s.
	if _, ok := httpapi.DecodeError(body); !ok {
		r.count(oc, func(o *opCounters) { o.nonEnvelope++ })
	}
}

func (r *runner) count(oc *opCounters, f func(*opCounters)) {
	r.mu.Lock()
	f(oc)
	r.mu.Unlock()
}

// checkDivergence enforces the byte-identity contract on report,
// compare, and predict bodies: two 200s for the same URL at the same
// dataset generation must be byte-identical no matter which replica
// answered. The generation header keys the check, so legitimate
// re-ingest churn never counts as divergence — only replicas
// disagreeing about the same generation does.
func (r *runner) checkDivergence(c call, resp *http.Response, body []byte) bool {
	switch c.op {
	case OpReport, OpCompare, OpPredict:
	default:
		return false
	}
	gen := resp.Header.Get("X-Dataset-Generation")
	if gen == "" {
		return false
	}
	key := c.url + "|" + gen
	digest := sha256.Sum256(body)
	r.mu.Lock()
	defer r.mu.Unlock()
	first, seen := r.bodies[key]
	if !seen {
		r.bodies[key] = digest
		return false
	}
	if first == digest {
		return false
	}
	if len(r.samples) < 8 {
		r.samples = append(r.samples,
			fmt.Sprintf("%s gen %s: body %x != first-seen %x", c.url, gen, digest[:6], first[:6]))
	}
	return true
}
