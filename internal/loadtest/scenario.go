// Package loadtest is an open-loop load generator for the ioserved /
// iorouter HTTP API. Open-loop means arrivals are scheduled on a fixed
// timeline derived from a seeded RNG — a slow server does not slow the
// arrival rate down, it just accumulates latency — which is the only
// honest way to measure a queueing system (a closed loop that waits for
// each response before sending the next one hides every stall behind
// reduced offered load: coordinated omission).
//
// A Scenario declares the offered load: arrival rate, client cap,
// duration, the operation mix (report renders across sections and
// formats, compare scatter/gathers, predict documents, dataset
// listings, periodic ingest bursts), and the API keys to rotate
// through when the target enforces
// multi-tenant rate limits. Scenarios load from a small declarative TOML
// subset (see ParseScenario) or are built in code; either way the same
// seed replays the same arrival schedule and the same operation
// sequence, byte for byte.
package loadtest

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Op names one operation class in the mix. Ops key the per-endpoint
// latency histograms and the SLO baseline entries, so their names are
// part of the summary-JSON contract.
type Op string

const (
	OpReport   Op = "report"   // GET /v1/report/{dataset}?section&format
	OpCompare  Op = "compare"  // GET /v1/compare/{a}/{b}
	OpPredict  Op = "predict"  // GET /v1/predict/{dataset}
	OpDatasets Op = "datasets" // GET /v1/datasets
	OpIngest   Op = "ingest"   // POST /v1/ingest
)

// Ops lists every operation class in stable order (summary and baseline
// files iterate in this order).
var Ops = []Op{OpReport, OpCompare, OpPredict, OpDatasets, OpIngest}

// Mix holds the relative weight of each operation class. Weights are
// relative, not probabilities — {8,1,1,0} and {0.8,0.1,0.1,0} are the
// same mix. A weight of zero disables the class.
type Mix struct {
	Report   float64 `json:"report"`
	Compare  float64 `json:"compare"`
	Predict  float64 `json:"predict"`
	Datasets float64 `json:"datasets"`
	Ingest   float64 `json:"ingest"`
}

func (m Mix) weight(op Op) float64 {
	switch op {
	case OpReport:
		return m.Report
	case OpCompare:
		return m.Compare
	case OpPredict:
		return m.Predict
	case OpDatasets:
		return m.Datasets
	case OpIngest:
		return m.Ingest
	}
	return 0
}

func (m Mix) total() float64 {
	return m.Report + m.Compare + m.Predict + m.Datasets + m.Ingest
}

// Scenario is one declarative load shape.
type Scenario struct {
	// Name labels the run in summaries and keys the SLO baseline.
	Name string
	// Seed drives every random choice: inter-arrival times, operation
	// picks, section/format/key rotation. Same seed, same schedule.
	Seed uint64
	// Duration is how long arrivals are generated for.
	Duration time.Duration
	// Rate is the offered arrival rate in requests/second (a Poisson
	// process: exponential inter-arrival times).
	Rate float64
	// Clients caps concurrent in-flight requests. An arrival that finds
	// every client busy is counted as shed — never queued, which would
	// quietly turn the open loop into a closed one.
	Clients int
	// Dataset is the dataset queried by report and compare operations.
	Dataset string
	// CompareWith is the second dataset for /v1/compare; empty means
	// compare Dataset against itself (still a real scatter/gather).
	CompareWith string
	// Sections and Formats are rotated through by report operations.
	// Empty slices default to a representative spread.
	Sections []string
	Formats  []string
	// APIKeys, when non-empty, are rotated per request via X-API-Key —
	// this is what exercises the router's per-tenant token buckets.
	APIKeys []string
	// Mix weights the operation classes.
	Mix Mix
	// IngestSource is the corpus path POSTed by ingest operations
	// (required when Mix.Ingest > 0); IngestDataset names the dataset it
	// folds into (defaults to Dataset) and IngestSystem the system
	// profile (defaults to "summit").
	IngestSource  string
	IngestDataset string
	IngestSystem  string
}

// DefaultSections is the report-section spread scenarios get when they
// don't pick their own: the two heaviest tables plus a figure from each
// analysis family.
var DefaultSections = []string{"", "table2", "table4", "figure4", "figure7"}

// DefaultFormats mirrors the serve API's format parameter.
var DefaultFormats = []string{"json", "text", "csv"}

// Validate fills defaults and rejects contradictions. It is called by
// Run, but callers that mutate a parsed scenario may want it earlier.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadtest: scenario needs a name")
	}
	if s.Rate <= 0 {
		return fmt.Errorf("loadtest: scenario %q rate %v must be positive", s.Name, s.Rate)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("loadtest: scenario %q duration %v must be positive", s.Name, s.Duration)
	}
	if s.Clients <= 0 {
		return fmt.Errorf("loadtest: scenario %q clients %d must be positive", s.Name, s.Clients)
	}
	if s.Mix.total() <= 0 {
		return fmt.Errorf("loadtest: scenario %q has an all-zero mix", s.Name)
	}
	for _, w := range []float64{s.Mix.Report, s.Mix.Compare, s.Mix.Predict, s.Mix.Datasets, s.Mix.Ingest} {
		if w < 0 {
			return fmt.Errorf("loadtest: scenario %q has a negative mix weight", s.Name)
		}
	}
	if s.Mix.Ingest > 0 && s.IngestSource == "" {
		return fmt.Errorf("loadtest: scenario %q mixes ingest but sets no ingest_source", s.Name)
	}
	if s.Dataset == "" {
		s.Dataset = "default"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Sections) == 0 {
		s.Sections = append([]string(nil), DefaultSections...)
	}
	if len(s.Formats) == 0 {
		s.Formats = append([]string(nil), DefaultFormats...)
	}
	if s.IngestDataset == "" {
		s.IngestDataset = s.Dataset
	}
	if s.IngestSystem == "" {
		s.IngestSystem = "summit"
	}
	return nil
}

// Scale multiplies the offered load — rate and client cap — by f,
// leaving the mix and duration alone. This is how one committed scenario
// serves both the 1k-client CI gate and a 10k-client local soak.
func (s *Scenario) Scale(f float64) error {
	if f <= 0 {
		return fmt.Errorf("loadtest: scale %v must be positive", f)
	}
	s.Rate *= f
	clients := float64(s.Clients) * f
	s.Clients = int(clients)
	if s.Clients < 1 {
		s.Clients = 1
	}
	return nil
}

// ParseScenarioFile reads path with ParseScenario.
func ParseScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("loadtest: %w", err)
	}
	defer f.Close()
	s, err := ParseScenario(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("loadtest: %s: %w", path, err)
	}
	return s, nil
}

// ParseScenario reads a scenario from a small TOML subset — the repo
// takes no dependencies, so this is a hand-rolled reader of exactly the
// shapes scenario files use, not a general TOML parser:
//
//	# comment
//	name = "smoke-1k"          # quoted strings
//	rate = 2000                # numbers (float syntax accepted)
//	clients = 1000
//	duration = "10s"           # durations are quoted Go strings
//	sections = ["", "table2"]  # single-line string arrays
//
//	[mix]                      # the one recognized table
//	report = 8
//	compare = 1
//
// Unknown keys and tables are errors: a typo in a load scenario should
// fail loudly, not silently offer a different load.
func ParseScenario(r io.Reader) (Scenario, error) {
	var s Scenario
	data, err := io.ReadAll(r)
	if err != nil {
		return s, err
	}
	table := ""
	for ln, raw := range strings.Split(string(data), "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) (Scenario, error) {
			return Scenario{}, fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return fail("malformed table header %q", line)
			}
			table = strings.TrimSpace(line[1 : len(line)-1])
			if table != "mix" {
				return fail("unknown table [%s] (only [mix] exists)", table)
			}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return fail("expected key = value, got %q", line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if table == "mix" {
			w, err := parseNumber(val)
			if err != nil {
				return fail("mix weight %s: %v", key, err)
			}
			switch key {
			case "report":
				s.Mix.Report = w
			case "compare":
				s.Mix.Compare = w
			case "predict":
				s.Mix.Predict = w
			case "datasets":
				s.Mix.Datasets = w
			case "ingest":
				s.Mix.Ingest = w
			default:
				return fail("unknown mix weight %q", key)
			}
			continue
		}
		var perr error
		switch key {
		case "name":
			s.Name, perr = parseString(val)
		case "seed":
			var n float64
			if n, perr = parseNumber(val); perr == nil {
				if n < 0 || n != float64(uint64(n)) {
					perr = fmt.Errorf("%v is not a whole seed", n)
				} else {
					s.Seed = uint64(n)
				}
			}
		case "duration":
			var str string
			if str, perr = parseString(val); perr == nil {
				s.Duration, perr = time.ParseDuration(str)
			}
		case "rate":
			s.Rate, perr = parseNumber(val)
		case "clients":
			var n float64
			if n, perr = parseNumber(val); perr == nil {
				s.Clients = int(n)
			}
		case "dataset":
			s.Dataset, perr = parseString(val)
		case "compare_with":
			s.CompareWith, perr = parseString(val)
		case "sections":
			s.Sections, perr = parseStringArray(val)
		case "formats":
			s.Formats, perr = parseStringArray(val)
		case "apikeys":
			s.APIKeys, perr = parseStringArray(val)
		case "ingest_source":
			s.IngestSource, perr = parseString(val)
		case "ingest_dataset":
			s.IngestDataset, perr = parseString(val)
		case "ingest_system":
			s.IngestSystem, perr = parseString(val)
		default:
			return fail("unknown key %q", key)
		}
		if perr != nil {
			return fail("%s: %v", key, perr)
		}
	}
	return s, nil
}

// stripComment trims whitespace and a trailing # comment. The # is only
// a comment outside quotes — "a#b" stays intact.
func stripComment(line string) string {
	inString := false
	for i, c := range line {
		switch c {
		case '"':
			inString = !inString
		case '#':
			if !inString {
				return strings.TrimSpace(line[:i])
			}
		}
	}
	return strings.TrimSpace(line)
}

func parseString(val string) (string, error) {
	if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
		return "", fmt.Errorf("expected a quoted string, got %q", val)
	}
	inner := val[1 : len(val)-1]
	if strings.Contains(inner, `"`) {
		return "", fmt.Errorf("expected one quoted string, got %q", val)
	}
	return inner, nil
}

func parseNumber(val string) (float64, error) {
	n, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("expected a number, got %q", val)
	}
	return n, nil
}

func parseStringArray(val string) ([]string, error) {
	if len(val) < 2 || val[0] != '[' || val[len(val)-1] != ']' {
		return nil, fmt.Errorf("expected a [\"...\"] array, got %q", val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return []string{}, nil
	}
	var out []string
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue // tolerate a trailing comma
		}
		s, err := parseString(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
