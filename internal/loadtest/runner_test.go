package loadtest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"math/rand/v2"

	"iolayers/internal/httpapi"
)

// fakeAPI mimics just enough of the serve/router surface for the runner:
// per-path counters, a settable generation, and per-key behaviors.
type fakeAPI struct {
	mu       sync.Mutex
	hits     map[string]int // path → count
	gen      atomic.Int64
	diverge  atomic.Bool // serve alternating bodies at one generation
	throttle string      // API key that always gets 429
	alt      atomic.Int64
}

func newFakeAPI() *fakeAPI {
	f := &fakeAPI{hits: map[string]int{}}
	f.gen.Store(1)
	return f
}

func (f *fakeAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits[r.URL.Path]++
	f.mu.Unlock()
	if f.throttle != "" && r.Header.Get("X-API-Key") == f.throttle {
		httpapi.WriteErrorRetry(w, http.StatusTooManyRequests, httpapi.CodeRateLimited,
			"tenant over limit", time.Second)
		return
	}
	gen := f.gen.Load()
	w.Header().Set("X-Dataset-Generation", strconv.FormatInt(gen, 10))
	body := fmt.Sprintf(`{"path":%q,"gen":%d}`, r.URL.RequestURI(), gen)
	if f.diverge.Load() {
		body = fmt.Sprintf(`{"alt":%d}`, f.alt.Add(1))
	}
	fmt.Fprintln(w, body)
}

func testScenario() Scenario {
	return Scenario{
		Name:     "unit",
		Seed:     42,
		Duration: 300 * time.Millisecond,
		Rate:     400,
		Clients:  32,
		Dataset:  "golden",
		Mix:      Mix{Report: 8, Compare: 1, Datasets: 1},
	}
}

func TestRunAccountsEveryArrival(t *testing.T) {
	api := newFakeAPI()
	ts := httptest.NewServer(api)
	defer ts.Close()

	res, err := Run(context.Background(), testScenario(), Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	// Conservation: every arrival is exactly one of shed or completed,
	// and every completed request has exactly one outcome.
	to := res.Totals
	outcomes := to.OK + to.Throttled + to.Unauthorized + to.ClientErrors + to.ServerErrors + to.NetErrors
	if outcomes != to.Completed() {
		t.Errorf("outcomes %d != completed %d", outcomes, to.Completed())
	}
	var perOp uint64
	for _, o := range res.Ops {
		perOp += o.Arrivals
	}
	if perOp != to.Arrivals {
		t.Errorf("per-op arrivals %d != total %d", perOp, to.Arrivals)
	}
	if to.HardErrors() != 0 {
		t.Errorf("clean server produced %d hard errors", to.HardErrors())
	}
	if res.Ops[string(OpReport)] == nil || res.Ops[string(OpReport)].OK == 0 {
		t.Error("report op never succeeded")
	}
	// Latency quantiles are populated and ordered.
	if l := to.LatencyUS; l.Count == 0 || l.P50 <= 0 || l.P99 < l.P50 || l.P999 < l.P99 {
		t.Errorf("latency digest %+v", l)
	}
}

// The arrival schedule and operation sequence are a pure function of the
// seed: two runs against the same healthy server issue identical request
// multisets (same total, same per-op split).
func TestRunDeterministicSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("three full load runs; tier-2 (see DESIGN.md on test tiers)")
	}
	api := newFakeAPI()
	ts := httptest.NewServer(api)
	defer ts.Close()

	sc := testScenario()
	sc.Clients = 1 << 16 // nothing shed: shedding depends on server timing
	a, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if a.Totals.Arrivals != b.Totals.Arrivals {
		t.Errorf("arrival counts differ: %d vs %d", a.Totals.Arrivals, b.Totals.Arrivals)
	}
	for _, op := range Ops {
		var an, bn uint64
		if o := a.Ops[string(op)]; o != nil {
			an = o.Arrivals
		}
		if o := b.Ops[string(op)]; o != nil {
			bn = o.Arrivals
		}
		if an != bn {
			t.Errorf("op %s: %d vs %d arrivals", op, an, bn)
		}
	}
	// And a different seed offers a different sequence.
	sc.Seed = 43
	c, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if c.Totals.Arrivals == a.Totals.Arrivals &&
		c.Ops[string(OpReport)].Arrivals == a.Ops[string(OpReport)].Arrivals &&
		c.Ops[string(OpCompare)].Arrivals == a.Ops[string(OpCompare)].Arrivals {
		t.Error("seed 43 replayed seed 42's schedule exactly")
	}
}

// Saturating the client cap sheds instead of queueing: with 1 client and
// a slow server, almost everything is shed and nothing waits in line.
func TestRunShedsAtClientCap(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		fmt.Fprintln(w, "{}")
	}))
	defer slow.Close()

	sc := testScenario()
	sc.Clients = 1
	res, err := Run(context.Background(), sc, Options{Target: slow.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Shed == 0 {
		t.Fatal("slow single-client run shed nothing")
	}
	// ~120 arrivals land while at most ceil(300ms/50ms)+1 can complete.
	if res.Totals.Completed() > 10 {
		t.Errorf("%d requests completed through 1 client in 300ms of 50ms calls — arrivals queued",
			res.Totals.Completed())
	}
}

func TestRunTaxonomy(t *testing.T) {
	api := newFakeAPI()
	api.throttle = "key-b"
	ts := httptest.NewServer(api)
	defer ts.Close()

	sc := testScenario()
	sc.APIKeys = []string{"key-a", "key-b"}
	res, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Throttled == 0 {
		t.Error("throttling key never produced a 429")
	}
	if res.Totals.ErrorRate != 0 {
		t.Errorf("429s leaked into the error rate: %v", res.Totals.ErrorRate)
	}

	// 5xx and 404 land in the right buckets.
	codes := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/datasets" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer codes.Close()
	res2, err := Run(context.Background(), testScenario(), Options{Target: codes.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Totals.ServerErrors == 0 || res2.Totals.ClientErrors == 0 {
		t.Errorf("taxonomy: %+v", res2.Totals)
	}
	if res2.Totals.ErrorRate == 0 {
		t.Error("hard errors produced a zero error rate")
	}
}

// Error bodies are held to the envelope contract: a server whose errors
// speak the structured envelope counts zero non_envelope; one that
// writes plain text is caught, without disturbing the status taxonomy.
func TestRunEnvelopeClassification(t *testing.T) {
	sc := testScenario()
	sc.APIKeys = []string{"key-b"}

	// Leg 1: envelope-correct errors and throttles — no contract leaks.
	api := newFakeAPI()
	api.throttle = "key-b" // every request 429s with a structured envelope
	ts := httptest.NewServer(api)
	defer ts.Close()
	res, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Throttled == 0 {
		t.Fatal("throttling leg produced no 429s")
	}
	if res.Totals.NonEnvelope != 0 {
		t.Errorf("structured 429s counted as %d non-envelope bodies", res.Totals.NonEnvelope)
	}

	// Leg 2: ad-hoc plain-text errors — every one is a contract leak on
	// top of its status-class outcome.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal oops", http.StatusInternalServerError)
	}))
	defer plain.Close()
	res2, err := Run(context.Background(), testScenario(), Options{Target: plain.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Totals.ServerErrors == 0 {
		t.Fatal("plain-error leg produced no 5xx outcomes")
	}
	if res2.Totals.NonEnvelope != res2.Totals.ServerErrors {
		t.Errorf("non_envelope %d != server errors %d: plain bodies not all flagged",
			res2.Totals.NonEnvelope, res2.Totals.ServerErrors)
	}
	if got := res2.Ops[string(OpReport)]; got == nil || got.NonEnvelope == 0 {
		t.Error("per-op non_envelope counter not populated")
	}
}

// Predict operations plan the right URL and ride the same byte-identity
// check as reports.
func TestRunPredictOp(t *testing.T) {
	api := newFakeAPI()
	ts := httptest.NewServer(api)
	defer ts.Close()

	sc := testScenario()
	sc.Mix = Mix{Predict: 1}
	res, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Ops[string(OpPredict)]
	if o == nil || o.OK == 0 {
		t.Fatal("predict op never succeeded")
	}
	api.mu.Lock()
	hits := api.hits["/v1/predict/golden"]
	api.mu.Unlock()
	if hits == 0 {
		t.Error("no requests hit /v1/predict/golden")
	}
	if res.Totals.Divergent != 0 {
		t.Errorf("stable predict bodies misread as divergence: %d", res.Totals.Divergent)
	}

	// A server disagreeing with itself at one generation is caught on the
	// predict route too.
	api.diverge.Store(true)
	res2, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Totals.Divergent == 0 {
		t.Error("byte-divergent predict 200s went undetected")
	}
}

// The byte-identity check: same URL + same generation must yield the
// same body. A server alternating bodies at one generation is caught; a
// generation bump making bodies differ is not divergence.
func TestRunDivergenceDetection(t *testing.T) {
	api := newFakeAPI()
	ts := httptest.NewServer(api)
	defer ts.Close()

	sc := testScenario()
	sc.Mix = Mix{Report: 1} // only report bodies are identity-checked
	sc.Formats = []string{"json"}
	sc.Sections = []string{""}

	// Leg 1: generation churn mid-run — legitimate, no divergence.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			time.Sleep(40 * time.Millisecond)
			api.gen.Add(1)
		}
	}()
	res, err := Run(context.Background(), sc, Options{Target: ts.URL})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Divergent != 0 {
		t.Errorf("generation churn misread as divergence: %d (samples %v)",
			res.Totals.Divergent, res.DivergenceSamples)
	}

	// Leg 2: the server disagrees with itself at a fixed generation.
	api.diverge.Store(true)
	res2, err := Run(context.Background(), sc, Options{Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Totals.Divergent == 0 {
		t.Fatal("byte-divergent 200s went undetected")
	}
	if len(res2.DivergenceSamples) == 0 {
		t.Error("divergence produced no samples")
	}
	if res2.Totals.ErrorRate == 0 {
		t.Error("divergence not counted as a hard error")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	sc := testScenario()
	if _, err := Run(context.Background(), sc, Options{Target: ""}); err == nil {
		t.Error("empty target accepted")
	}
	if _, err := Run(context.Background(), sc, Options{Target: "not a url"}); err == nil {
		t.Error("relative target accepted")
	}
	bad := sc
	bad.Rate = -1
	if _, err := Run(context.Background(), bad, Options{Target: "http://localhost:1"}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestRunHonorsCancel(t *testing.T) {
	api := newFakeAPI()
	ts := httptest.NewServer(api)
	defer ts.Close()
	sc := testScenario()
	sc.Duration = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := Run(ctx, sc, Options{Target: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("cancelled run took %v", e)
	}
}

func TestPickOpRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := Mix{Report: 9, Datasets: 1}
	counts := map[Op]int{}
	for i := 0; i < 10000; i++ {
		counts[pickOp(rng, m)]++
	}
	if counts[OpCompare] != 0 || counts[OpIngest] != 0 {
		t.Errorf("zero-weight ops drawn: %v", counts)
	}
	ratio := float64(counts[OpReport]) / float64(counts[OpDatasets])
	if ratio < 7 || ratio > 12 {
		t.Errorf("9:1 mix drew %v (ratio %.1f)", counts, ratio)
	}
}
