package loadtest

import (
	"strings"
	"testing"
	"time"
)

const sampleScenario = `
# the CI smoke scenario
name = "smoke"          # trailing comments survive
seed = 7
duration = "2s"
rate = 500
clients = 100
dataset = "golden"
compare_with = "golden"
sections = ["", "table2", "figure4"]
formats = ["json", "text"]
apikeys = ["key-a", "key-b"]

[mix]
report = 8
compare = 1
predict = 2
datasets = 1
`

func TestParseScenario(t *testing.T) {
	s, err := ParseScenario(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "smoke" || s.Seed != 7 || s.Rate != 500 || s.Clients != 100 {
		t.Errorf("parsed %+v", s)
	}
	if s.Duration != 2*time.Second {
		t.Errorf("duration %v", s.Duration)
	}
	if len(s.Sections) != 3 || s.Sections[0] != "" || s.Sections[2] != "figure4" {
		t.Errorf("sections %q", s.Sections)
	}
	if len(s.APIKeys) != 2 || s.APIKeys[1] != "key-b" {
		t.Errorf("apikeys %q", s.APIKeys)
	}
	if s.Mix.Report != 8 || s.Mix.Compare != 1 || s.Mix.Predict != 2 || s.Mix.Datasets != 1 || s.Mix.Ingest != 0 {
		t.Errorf("mix %+v", s.Mix)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.IngestDataset != "golden" || s.IngestSystem != "summit" {
		t.Errorf("validate defaults: %+v", s)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown key":         `nmae = "typo"`,
		"unknown table":       "[mxi]\nreport = 1",
		"unknown mix weight":  "[mix]\nreprot = 1",
		"unquoted string":     `name = smoke`,
		"bad number":          `rate = fast`,
		"bad duration":        `duration = "10 parsecs"`,
		"bare line":           `just some words`,
		"malformed array":     `sections = ["a", 3]`,
		"unterminated header": `[mix`,
		"fractional seed":     `seed = 1.5`,
	}
	for name, input := range cases {
		if _, err := ParseScenario(strings.NewReader(input)); err == nil {
			t.Errorf("%s: %q accepted", name, input)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	base := func() Scenario {
		return Scenario{Name: "x", Rate: 10, Duration: time.Second, Clients: 4,
			Mix: Mix{Report: 1}}
	}
	if err := (&Scenario{}).Validate(); err == nil {
		t.Error("empty scenario accepted")
	}
	s := base()
	s.Rate = 0
	if err := s.Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	s = base()
	s.Mix = Mix{}
	if err := s.Validate(); err == nil {
		t.Error("all-zero mix accepted")
	}
	s = base()
	s.Mix.Compare = -1
	if err := s.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	s = base()
	s.Mix.Ingest = 1
	if err := s.Validate(); err == nil {
		t.Error("ingest mix without source accepted")
	}
	s = base()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Seed != 1 || s.Dataset != "default" || len(s.Sections) == 0 || len(s.Formats) == 0 {
		t.Errorf("defaults not filled: %+v", s)
	}
}

func TestScenarioScale(t *testing.T) {
	s := Scenario{Rate: 1000, Clients: 1000}
	if err := s.Scale(0.1); err != nil {
		t.Fatal(err)
	}
	if s.Rate != 100 || s.Clients != 100 {
		t.Errorf("scaled to %+v", s)
	}
	if err := s.Scale(0.001); err != nil {
		t.Fatal(err)
	}
	if s.Clients != 1 {
		t.Errorf("clients floor: %d", s.Clients)
	}
	if err := s.Scale(0); err == nil {
		t.Error("zero scale accepted")
	}
}
