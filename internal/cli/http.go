package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// HTTPService is a serving HTTP listener plus the drain discipline every
// long-running binary in this repo shares (ioserved, iorouter). It exists
// so the shutdown path — the code that only runs when something is
// already going wrong — is written once and regression-tested, instead of
// re-derived per binary. The historical failure mode it guards against:
// a drain that times out with requests still in flight must exit non-zero
// and must not print the clean-exit line, or supervisors restart nothing
// and operators trust a log that is lying to them.
type HTTPService struct {
	name   string
	srv    *http.Server
	errCh  chan error
	stderr io.Writer
}

// StartHTTP begins serving srv on ln in a background goroutine and
// returns the handle the caller waits on. The caller keeps ownership of
// srv's configuration; StartHTTP only runs it.
func StartHTTP(name string, srv *http.Server, ln net.Listener, stderr io.Writer) *HTTPService {
	h := &HTTPService{name: name, srv: srv, errCh: make(chan error, 1), stderr: stderr}
	go func() { h.errCh <- srv.Serve(ln) }()
	return h
}

// WaitAndDrain blocks until the context is cancelled (the signal path) or
// the server dies on its own (the crash path), then drains and returns
// the process exit code: 0 for a complete drain, 1 for anything less.
//
// On cancellation, beforeDrain (if non-nil) runs first — the hook where a
// server flips its /readyz to not-ready so load balancers stop sending
// traffic before the listener closes. Then in-flight requests get up to
// drain to finish; an incomplete drain reports "drain incomplete" on
// stderr and returns 1 without ever claiming a clean exit.
func (h *HTTPService) WaitAndDrain(ctx context.Context, drain time.Duration, beforeDrain func()) int {
	select {
	case err := <-h.errCh:
		// The listener died out from under us — a crash, not a drain.
		fmt.Fprintf(h.stderr, "%s: %v\n", h.name, err)
		return 1
	case <-ctx.Done():
	}
	if beforeDrain != nil {
		beforeDrain()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := h.srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(h.stderr, "%s: drain incomplete: %v\n", h.name, err)
		return 1
	}
	if err := <-h.errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(h.stderr, "%s: %v\n", h.name, err)
		return 1
	}
	return 0
}
