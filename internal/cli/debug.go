package cli

import (
	"fmt"
	"os"

	"iolayers/internal/obsv"
)

// StartDebug starts the opt-in observability endpoint every binary exposes
// behind -debug-addr: net/http/pprof, expvar, and the registry's /metrics
// views. An empty addr is a no-op (the common case — no listener, no
// goroutine). The returned function shuts the listener down.
func StartDebug(name, addr string, r *obsv.Registry) func() {
	if addr == "" {
		return func() {}
	}
	bound, shutdown, err := obsv.Serve(name, addr, r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: debug endpoint: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s (/debug/pprof, /debug/vars, /metrics)\n",
		name, bound)
	return shutdown
}

// WriteMetrics renders the registry's snapshot as schema-versioned JSON into
// path (the -metrics flag). Nil registry or empty path is a no-op.
func WriteMetrics(name, path string, r *obsv.Registry) {
	if path == "" || r == nil {
		return
	}
	if err := os.WriteFile(path, r.Snapshot().JSON(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: writing metrics: %v\n", name, err)
		os.Exit(1)
	}
}
