package cli

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// A clean drain — no requests in flight — exits 0 and reports nothing.
func TestWaitAndDrainClean(t *testing.T) {
	var stderr bytes.Buffer
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})}
	h := StartHTTP("svc", srv, ln, &stderr)
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	flipped := false
	if code := h.WaitAndDrain(ctx, time.Second, func() { flipped = true }); code != 0 {
		t.Fatalf("clean drain exit code = %d, stderr: %s", code, stderr.String())
	}
	if !flipped {
		t.Error("beforeDrain hook did not run")
	}
	if stderr.Len() != 0 {
		t.Errorf("clean drain wrote to stderr: %s", stderr.String())
	}
}

// Regression: a drain that times out with a request still in flight must
// exit non-zero and say so — not report success. (The failure mode this
// locks out: a supervisor sees exit 0, restarts nothing, and the hung
// request's caller waits forever against a half-dead process.)
func TestWaitAndDrainIncompleteExitsNonZero(t *testing.T) {
	var stderr bytes.Buffer
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var enterOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		enterOnce.Do(func() { close(entered) })
		<-release // stuck until the test lets go
		fmt.Fprintln(w, "late")
	})}
	h := StartHTTP("svc", srv, ln, &stderr)
	defer close(release)

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the stuck request is in flight

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code := h.WaitAndDrain(ctx, 50*time.Millisecond, nil)
	if code == 0 {
		t.Fatal("incomplete drain exited 0 — the regression this test exists to catch")
	}
	if !strings.Contains(stderr.String(), "drain incomplete") {
		t.Errorf("stderr = %q, want a drain-incomplete report", stderr.String())
	}
}

// The crash path: a listener dying on its own (not via Shutdown) is a
// non-zero exit.
func TestWaitAndDrainListenerDeath(t *testing.T) {
	var stderr bytes.Buffer
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.NewServeMux()}
	h := StartHTTP("svc", srv, ln, &stderr)
	ln.Close() // kill the listener out from under Serve
	if code := h.WaitAndDrain(context.Background(), time.Second, nil); code != 1 {
		t.Fatalf("listener death exit code = %d", code)
	}
	if stderr.Len() == 0 {
		t.Error("listener death reported nothing")
	}
}
