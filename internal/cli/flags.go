package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"iolayers/internal/iosim/faults"
	"iolayers/internal/obsv"
)

// FlagGroup selects which of the standard flag families a binary registers.
// Every binary shares one implementation of the shared surface — the debug
// endpoint, metrics snapshots, worker pools, fault schedules, and
// checkpoint/resume plumbing — instead of each main.go re-declaring its own
// copies.
type FlagGroup uint

// Flag families. Combine with |.
const (
	// FlagDebug registers -debug-addr and -metrics.
	FlagDebug FlagGroup = 1 << iota
	// FlagWorkers registers -workers.
	FlagWorkers
	// FlagFaults registers -faults and -faultseed.
	FlagFaults
	// FlagCheckpoint registers -checkpoint, -checkpoint-every, and -resume.
	FlagCheckpoint
	// FlagQuarantine registers -quarantine.
	FlagQuarantine

	// FlagsAll registers every family — the full standard surface.
	FlagsAll = FlagDebug | FlagWorkers | FlagFaults | FlagCheckpoint | FlagQuarantine
)

// CommonFlags is the flag plumbing shared across the cmd/ binaries: one
// Register call declares the chosen families on a FlagSet, and one Activate
// call turns the parsed values into running machinery (metrics registry,
// debug endpoint). Fields are exported so binaries read the parsed values
// directly.
type CommonFlags struct {
	// FlagDebug.
	DebugAddr  string
	MetricsOut string
	// FlagWorkers.
	Workers int
	// FlagFaults.
	FaultSpec string
	FaultSeed uint64
	// FlagCheckpoint.
	CheckpointPath  string
	CheckpointEvery int
	ResumePath      string
	// FlagQuarantine.
	QuarantineDir string

	groups FlagGroup
}

// Register declares the selected flag families on fs. Call once, before
// fs.Parse.
func (c *CommonFlags) Register(fs *flag.FlagSet, groups FlagGroup) {
	c.groups = groups
	if groups&FlagDebug != 0 {
		fs.StringVar(&c.DebugAddr, "debug-addr", "",
			"serve pprof, expvar, and /metrics on this address while running")
		fs.StringVar(&c.MetricsOut, "metrics", "",
			"write a metrics snapshot (JSON) to this file and print the observability section")
	}
	if groups&FlagWorkers != 0 {
		fs.IntVar(&c.Workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	}
	if groups&FlagFaults != 0 {
		fs.StringVar(&c.FaultSpec, "faults", "",
			`fault schedule: "production" or k=v list (slowdowns,outages,storms,frac,severity,latfactor,duration,errrate); empty = no faults`)
		fs.Uint64Var(&c.FaultSeed, "faultseed", 0, "fault-schedule seed (0 = primary seed)")
	}
	if groups&FlagCheckpoint != 0 {
		fs.StringVar(&c.CheckpointPath, "checkpoint", "",
			"persist resumable progress to this file")
		fs.IntVar(&c.CheckpointEvery, "checkpoint-every", 0,
			"work items between checkpoint writes (0 = default)")
		fs.StringVar(&c.ResumePath, "resume", "",
			"resume an interrupted run from this checkpoint file")
	}
	if groups&FlagQuarantine != 0 {
		fs.StringVar(&c.QuarantineDir, "quarantine", "",
			"move undecodable logs into this directory (with a MANIFEST.tsv)")
	}
}

// Activation is the running machinery behind a binary's common flags: the
// metrics registry (nil when observability is off) and the debug endpoint.
type Activation struct {
	// Name is the binary name, used as the error and log prefix.
	Name string
	// Metrics is the process registry; nil unless -debug-addr or -metrics
	// was given (nil is the zero-cost disabled state throughout the
	// pipeline).
	Metrics *obsv.Registry

	metricsOut string
	stopDebug  func()
	closeOnce  sync.Once
}

// Activate turns the parsed flags into running state: it builds the metrics
// registry when -debug-addr or -metrics asked for one and starts the debug
// endpoint. The endpoint is torn down when ctx is cancelled or Close is
// called, whichever comes first. Activate exits the process on a bind
// failure, the same contract as StartDebug.
func (c *CommonFlags) Activate(ctx context.Context, name string) *Activation {
	a := &Activation{Name: name, metricsOut: c.MetricsOut}
	if c.DebugAddr != "" || c.MetricsOut != "" {
		a.Metrics = obsv.New()
	}
	a.stopDebug = StartDebug(name, c.DebugAddr, a.Metrics)
	if ctx != nil && c.DebugAddr != "" {
		go func() {
			<-ctx.Done()
			a.Close()
		}()
	}
	return a
}

// Close shuts the debug endpoint down. Safe to call more than once (also
// concurrently with the ctx-cancellation teardown) and on an Activation
// whose endpoint never started.
func (a *Activation) Close() {
	a.closeOnce.Do(func() {
		if a.stopDebug != nil {
			a.stopDebug()
		}
	})
}

// WriteMetricsOut writes the registry snapshot to the -metrics path (no-op
// when either side is absent) — call once at exit, after the final
// PublishMetrics folds.
func (a *Activation) WriteMetricsOut() {
	WriteMetrics(a.Name, a.metricsOut, a.Metrics)
}

// FaultSchedule materializes the -faults/-faultseed pair into a schedule
// spanning periodSeconds, defaulting the seed to defaultSeed when
// -faultseed was 0. Returns (nil, nil) when no -faults spec was given.
func (c *CommonFlags) FaultSchedule(defaultSeed uint64, periodSeconds float64) (*faults.Schedule, error) {
	if c.FaultSpec == "" {
		return nil, nil
	}
	seed := c.FaultSeed
	if seed == 0 {
		seed = defaultSeed
	}
	gc, err := faults.ParseSpec(c.FaultSpec, seed, periodSeconds)
	if err != nil {
		return nil, err
	}
	return faults.Generate(gc), nil
}

// Fatal prints a name-prefixed error and exits with the usage status when
// usage is true, 1 otherwise — the shared error-exit convention of the
// binaries.
func Fatal(name string, usage bool, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if usage {
		os.Exit(2)
	}
	os.Exit(1)
}
