package cli

import (
	"context"
	"flag"
	"strings"
	"testing"
)

func parse(t *testing.T, groups FlagGroup, args ...string) *CommonFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c CommonFlags
	c.Register(fs, groups)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &c
}

func TestRegisterGroupsAreSelective(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c CommonFlags
	c.Register(fs, FlagDebug|FlagWorkers)
	for _, want := range []string{"debug-addr", "metrics", "workers"} {
		if fs.Lookup(want) == nil {
			t.Errorf("flag -%s not registered", want)
		}
	}
	for _, absent := range []string{"faults", "faultseed", "checkpoint", "resume", "quarantine"} {
		if fs.Lookup(absent) != nil {
			t.Errorf("flag -%s registered but its group was not requested", absent)
		}
	}
}

func TestRegisterAllParsesTheStandardSurface(t *testing.T) {
	c := parse(t, FlagsAll,
		"-debug-addr", "127.0.0.1:0", "-metrics", "m.json", "-workers", "3",
		"-faults", "production", "-faultseed", "7",
		"-checkpoint", "c.ckpt", "-checkpoint-every", "64", "-resume", "r.ckpt",
		"-quarantine", "qdir")
	if c.DebugAddr != "127.0.0.1:0" || c.MetricsOut != "m.json" || c.Workers != 3 ||
		c.FaultSpec != "production" || c.FaultSeed != 7 ||
		c.CheckpointPath != "c.ckpt" || c.CheckpointEvery != 64 || c.ResumePath != "r.ckpt" ||
		c.QuarantineDir != "qdir" {
		t.Errorf("parsed values wrong: %+v", c)
	}
}

func TestActivateWithoutObservabilityFlagsIsOff(t *testing.T) {
	c := parse(t, FlagsAll)
	a := c.Activate(context.Background(), "test")
	defer a.Close()
	if a.Metrics != nil {
		t.Errorf("Metrics registry created with neither -debug-addr nor -metrics")
	}
}

func TestActivateMetricsOnlyBuildsRegistryWithoutListener(t *testing.T) {
	c := parse(t, FlagDebug, "-metrics", t.TempDir()+"/out.json")
	a := c.Activate(context.Background(), "test")
	defer a.Close()
	if a.Metrics == nil {
		t.Fatalf("no registry despite -metrics")
	}
	a.Metrics.Counter("x").Add(2)
	a.WriteMetricsOut()
}

func TestActivateServesDebugEndpointAndClosesOnCtx(t *testing.T) {
	c := parse(t, FlagDebug, "-debug-addr", "127.0.0.1:0")
	ctx, cancel := context.WithCancel(context.Background())
	a := c.Activate(ctx, "test-flags")
	defer a.Close()
	if a.Metrics == nil {
		t.Fatalf("no registry despite -debug-addr")
	}
	cancel()
	// Close is idempotent and concurrent-safe with the ctx teardown.
	a.Close()
	a.Close()
}

func TestFaultSchedule(t *testing.T) {
	c := parse(t, FlagFaults)
	if s, err := c.FaultSchedule(1, 86400); err != nil || s != nil {
		t.Errorf("empty spec: got (%v, %v), want (nil, nil)", s, err)
	}
	c = parse(t, FlagFaults, "-faults", "production")
	s, err := c.FaultSchedule(13, 86400)
	if err != nil || s == nil {
		t.Fatalf("production spec: got (%v, %v)", s, err)
	}
	c = parse(t, FlagFaults, "-faults", "no-such-knob=1")
	if _, err := c.FaultSchedule(1, 86400); err == nil {
		t.Errorf("bad spec accepted")
	}
	if !strings.Contains(c.FaultSpec, "no-such-knob") {
		t.Errorf("spec not retained: %q", c.FaultSpec)
	}
}
