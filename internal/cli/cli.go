// Package cli holds plumbing shared by the command-line binaries.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the conventional exit status for a run that stopped on
// SIGINT (128 + SIGINT).
const ExitInterrupted = 130

// SignalContext returns a context cancelled by the first SIGINT or SIGTERM,
// announcing the graceful shutdown on stderr. After the first signal the
// handler is removed, so a second signal kills the process immediately — the
// escape hatch when a graceful stop is taking too long.
func SignalContext(name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "%s: %s — stopping gracefully, flushing partial results (signal again to abort)\n", name, sig)
			cancel()
		case <-ctx.Done():
		}
		signal.Stop(ch)
		signal.Reset(os.Interrupt, syscall.SIGTERM)
	}()
	return ctx, cancel
}

// Interrupted reports whether err is the context cancellation a
// SignalContext shutdown produces.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
