// Package dxtan analyzes Darshan eXtended Tracing records — the
// high-resolution per-operation traces the paper's §2.2 describes as the
// tool for "in-depth analysis of HPC I/O workloads" (and notes were
// disabled in both production collections). Given the segment lists the
// darshan runtime's EnableDXT produces, it classifies access patterns,
// detects I/O phases (bursts), and computes the per-trace statistics that
// counter-level Darshan records cannot express: exact burstiness, duty
// cycle, and inter-operation gaps.
package dxtan

import (
	"fmt"
	"sort"

	"iolayers/internal/darshan"
)

// Pattern classifies a trace's offset behavior.
type Pattern int

// Access patterns, from most to least storage-friendly.
const (
	// Consecutive: every operation starts exactly where the previous ended.
	Consecutive Pattern = iota
	// Sequential: offsets are monotone non-decreasing, possibly with holes.
	Sequential
	// Random: offsets move backwards at least once.
	Random
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Consecutive:
		return "consecutive"
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	default:
		return "pattern(?)"
	}
}

// Phase is one contiguous burst of I/O within a trace: operations separated
// by gaps no longer than the detector's threshold.
type Phase struct {
	Start, End float64
	Ops        int
	Bytes      int64
}

// Duration returns the phase's wall-clock span in seconds.
func (p Phase) Duration() float64 { return p.End - p.Start }

// TraceStats summarizes one DXT trace.
type TraceStats struct {
	Module darshan.ModuleID
	Record darshan.RecordID
	Rank   int32

	Ops        int
	ReadOps    int
	WriteOps   int
	Bytes      int64
	Span       float64 // first start to last end
	BusyTime   float64 // sum of segment durations
	DutyCycle  float64 // BusyTime / Span
	MeanGap    float64 // mean inter-operation gap
	MaxGap     float64
	Pattern    Pattern
	Phases     []Phase
	AvgOpBytes float64
}

// Analyze computes statistics for one trace. phaseGap is the idle-seconds
// threshold that splits I/O phases; values at or below zero use 1 second,
// a common burst-detection default.
func Analyze(tr darshan.DXTTrace, phaseGap float64) TraceStats {
	if phaseGap <= 0 {
		phaseGap = 1.0
	}
	st := TraceStats{Module: tr.Module, Record: tr.Record, Rank: tr.Rank}
	if len(tr.Segments) == 0 {
		return st
	}
	segs := append([]darshan.DXTSegment(nil), tr.Segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })

	st.Ops = len(segs)
	st.Span = segs[len(segs)-1].End - segs[0].Start
	st.Pattern = Consecutive

	var prevEnd float64
	var prevByteEnd int64
	cur := Phase{Start: segs[0].Start, End: segs[0].End}
	var gaps []float64
	for i, s := range segs {
		if s.Kind == darshan.OpRead {
			st.ReadOps++
		} else {
			st.WriteOps++
		}
		st.Bytes += s.Length
		st.BusyTime += s.End - s.Start

		if i > 0 {
			gap := s.Start - prevEnd
			if gap < 0 {
				gap = 0 // overlapping segments (concurrent ranks collapsed)
			}
			gaps = append(gaps, gap)
			if gap > st.MaxGap {
				st.MaxGap = gap
			}
			switch {
			case s.Offset == prevByteEnd:
				// still consecutive
			case s.Offset > prevByteEnd:
				if st.Pattern == Consecutive {
					st.Pattern = Sequential
				}
			default:
				st.Pattern = Random
			}
			if gap > phaseGap {
				st.Phases = append(st.Phases, cur)
				cur = Phase{Start: s.Start, End: s.End}
			} else {
				if s.End > cur.End {
					cur.End = s.End
				}
			}
		}
		cur.Ops++
		cur.Bytes += s.Length
		prevEnd = s.End
		prevByteEnd = s.Offset + s.Length
	}
	st.Phases = append(st.Phases, cur)

	if st.Span > 0 {
		st.DutyCycle = st.BusyTime / st.Span
		if st.DutyCycle > 1 {
			st.DutyCycle = 1 // concurrent segments can exceed the span
		}
	}
	if len(gaps) > 0 {
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		st.MeanGap = sum / float64(len(gaps))
	}
	st.AvgOpBytes = float64(st.Bytes) / float64(st.Ops)
	return st
}

// AnalyzeLog analyzes every trace in a log.
func AnalyzeLog(log *darshan.Log, phaseGap float64) []TraceStats {
	out := make([]TraceStats, 0, len(log.DXT))
	for _, tr := range log.DXT {
		out = append(out, Analyze(tr, phaseGap))
	}
	return out
}

// Render formats trace statistics with their resolved paths.
func Render(log *darshan.Log, stats []TraceStats) string {
	out := fmt.Sprintf("DXT analysis: %d traces\n", len(stats))
	for _, st := range stats {
		out += fmt.Sprintf("%s rank %d  %s\n", st.Module, st.Rank, log.PathOf(st.Record))
		out += fmt.Sprintf("  ops=%d (r=%d w=%d)  bytes=%d  avg op=%.0f B  pattern=%s\n",
			st.Ops, st.ReadOps, st.WriteOps, st.Bytes, st.AvgOpBytes, st.Pattern)
		out += fmt.Sprintf("  span=%.3fs busy=%.3fs duty=%.2f  phases=%d  mean gap=%.3fs max gap=%.3fs\n",
			st.Span, st.BusyTime, st.DutyCycle, len(st.Phases), st.MeanGap, st.MaxGap)
	}
	return out
}
