package dxtan

import (
	"math"
	"strings"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

func seg(kind darshan.OpKind, off, length int64, start, end float64) darshan.DXTSegment {
	return darshan.DXTSegment{Kind: kind, Offset: off, Length: length, Start: start, End: end}
}

func trace(segs ...darshan.DXTSegment) darshan.DXTTrace {
	return darshan.DXTTrace{Module: darshan.ModulePOSIX, Record: 1, Rank: 0, Segments: segs}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	st := Analyze(trace(), 1)
	if st.Ops != 0 || len(st.Phases) != 0 {
		t.Errorf("empty trace: %+v", st)
	}
}

func TestConsecutivePattern(t *testing.T) {
	st := Analyze(trace(
		seg(darshan.OpWrite, 0, 100, 0, 0.1),
		seg(darshan.OpWrite, 100, 100, 0.2, 0.3),
		seg(darshan.OpWrite, 200, 100, 0.4, 0.5),
	), 1)
	if st.Pattern != Consecutive {
		t.Errorf("pattern = %v, want consecutive", st.Pattern)
	}
	if st.Ops != 3 || st.WriteOps != 3 || st.Bytes != 300 {
		t.Errorf("counts: %+v", st)
	}
}

func TestSequentialWithHoles(t *testing.T) {
	st := Analyze(trace(
		seg(darshan.OpRead, 0, 100, 0, 0.1),
		seg(darshan.OpRead, 500, 100, 0.2, 0.3), // forward jump
	), 1)
	if st.Pattern != Sequential {
		t.Errorf("pattern = %v, want sequential", st.Pattern)
	}
}

func TestRandomPattern(t *testing.T) {
	st := Analyze(trace(
		seg(darshan.OpRead, 500, 100, 0, 0.1),
		seg(darshan.OpRead, 0, 100, 0.2, 0.3), // backwards
	), 1)
	if st.Pattern != Random {
		t.Errorf("pattern = %v, want random", st.Pattern)
	}
}

func TestPhaseDetection(t *testing.T) {
	// Two bursts of 2 ops separated by a 10-second gap.
	st := Analyze(trace(
		seg(darshan.OpWrite, 0, 100, 0, 0.1),
		seg(darshan.OpWrite, 100, 100, 0.2, 0.3),
		seg(darshan.OpWrite, 200, 100, 10.3, 10.4),
		seg(darshan.OpWrite, 300, 100, 10.5, 10.6),
	), 1.0)
	if len(st.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(st.Phases))
	}
	if st.Phases[0].Ops != 2 || st.Phases[1].Ops != 2 {
		t.Errorf("phase ops: %+v", st.Phases)
	}
	if st.Phases[0].Bytes != 200 || st.Phases[1].Bytes != 200 {
		t.Errorf("phase bytes: %+v", st.Phases)
	}
	if math.Abs(st.MaxGap-10.0) > 1e-9 {
		t.Errorf("max gap = %v, want 10", st.MaxGap)
	}
	if d := st.Phases[0].Duration(); math.Abs(d-0.3) > 1e-9 {
		t.Errorf("phase 0 duration = %v, want 0.3", d)
	}
}

func TestDutyCycle(t *testing.T) {
	// 0.2s busy within a 1.0s span.
	st := Analyze(trace(
		seg(darshan.OpWrite, 0, 100, 0, 0.1),
		seg(darshan.OpWrite, 100, 100, 0.9, 1.0),
	), 5)
	if math.Abs(st.DutyCycle-0.2) > 1e-9 {
		t.Errorf("duty cycle = %v, want 0.2", st.DutyCycle)
	}
	if math.Abs(st.MeanGap-0.8) > 1e-9 {
		t.Errorf("mean gap = %v, want 0.8", st.MeanGap)
	}
}

func TestUnsortedSegmentsHandled(t *testing.T) {
	// Segments arrive out of order; analysis must sort by start time.
	st := Analyze(trace(
		seg(darshan.OpWrite, 100, 100, 0.2, 0.3),
		seg(darshan.OpWrite, 0, 100, 0, 0.1),
	), 1)
	if st.Pattern != Consecutive {
		t.Errorf("pattern = %v, want consecutive after sorting", st.Pattern)
	}
}

func TestDefaultPhaseGap(t *testing.T) {
	st := Analyze(trace(
		seg(darshan.OpWrite, 0, 100, 0, 0.1),
		seg(darshan.OpWrite, 100, 100, 2.0, 2.1), // 1.9s gap > default 1s
	), 0)
	if len(st.Phases) != 2 {
		t.Errorf("phases = %d, want 2 with default gap", len(st.Phases))
	}
}

func TestAnalyzeLogEndToEnd(t *testing.T) {
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 1, NProcs: 1, StartTime: 0, EndTime: 100})
	rt.EnableDXT(32)
	p := "/gpfs/alpine/trace.bin"
	off := int64(0)
	for i := 0; i < 5; i++ {
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: p, Rank: 0,
			Kind: darshan.OpWrite, Size: units.MiB, Offset: off,
			Start: float64(i) * 5, End: float64(i)*5 + 0.5})
		off += int64(units.MiB)
	}
	log := rt.Finalize()
	stats := AnalyzeLog(log, 1.0)
	if len(stats) != 1 {
		t.Fatalf("stats = %d", len(stats))
	}
	st := stats[0]
	if st.Ops != 5 || st.Pattern != Consecutive {
		t.Errorf("end-to-end: %+v", st)
	}
	// 5 ops 4.5s apart: every op its own phase.
	if len(st.Phases) != 5 {
		t.Errorf("phases = %d, want 5 (checkpoint-like bursts)", len(st.Phases))
	}
	out := Render(log, stats)
	for _, want := range []string{"DXT analysis", p, "consecutive", "phases=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
