package checkpoint

// The journal is the second durability primitive this package provides,
// alongside Save/Load's whole-file atomic snapshots: an append-only record
// log for state that grows monotonically (a commit history) rather than
// being replaced wholesale. Each record is an independently-framed gob
// stream protected by a CRC-32; every append is fsynced before it returns,
// so a record that Append acknowledged survives any later crash. A crash
// *during* an append leaves a torn tail, which OpenJournal detects and
// truncates — replay never sees a partial record, and the journal's
// contents are always the exact prefix of acknowledged appends.
//
// Records are framed, not streamed through one gob encoder, deliberately:
// a single encoder carries type-definition state across records, so a
// truncated tail would poison decoding of everything after the first torn
// byte on the next open. Independent frames cost a few bytes of repeated
// type definitions per record and buy torn-tail recovery by simple
// truncation.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// journalMagic identifies a journal file and versions its envelope.
var journalMagic = [8]byte{'D', 'G', 'J', 'R', 'N', 'L', 0, 1}

// ErrNotJournal marks a file without the journal magic.
var ErrNotJournal = errors.New("checkpoint: not a journal file")

// MaxJournalRecord bounds one record's payload. A frame length beyond it
// is treated as corruption (the length field itself is untrusted bytes
// after a crash), not an allocation request.
const MaxJournalRecord = 64 << 20

// journalFrameHeader is u32 payload length + u32 CRC-32 (IEEE) of payload.
const journalFrameHeader = 8

// Journal is an open append-only record log. Append is not goroutine-safe;
// callers serialize (the serve lake holds a mutex across commits).
type Journal struct {
	path string
	f    *os.File
	off  int64 // offset after the last durable record
}

// OpenJournal opens the journal at path for appending, creating it if
// absent. Existing records are validated front to back; a torn tail — the
// residue of a crash mid-append — is truncated away so the file ends on a
// record boundary.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening journal: %w", err)
	}
	end, err := scanJournal(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seeking journal end: %w", err)
	}
	return &Journal{path: path, f: f, off: end}, nil
}

// scanJournal verifies the header (writing one into an empty file) and
// walks the frames, returning the offset just past the last valid record.
func scanJournal(f *os.File, path string) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("checkpoint: stat journal: %w", err)
	}
	size := fi.Size()
	if size < int64(len(journalMagic)) {
		// Empty, or a crash tore the header write itself. Either way no
		// record can exist yet; reset to a fresh header.
		var head [len(journalMagic)]byte
		n, _ := f.ReadAt(head[:], 0)
		if !bytes.HasPrefix(journalMagic[:], head[:n]) {
			return 0, fmt.Errorf("%w: %s", ErrNotJournal, path)
		}
		if err := f.Truncate(0); err != nil {
			return 0, fmt.Errorf("checkpoint: resetting journal: %w", err)
		}
		if _, err := f.WriteAt(journalMagic[:], 0); err != nil {
			return 0, fmt.Errorf("checkpoint: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			return 0, fmt.Errorf("checkpoint: syncing journal header: %w", err)
		}
		return int64(len(journalMagic)), nil
	}
	var head [len(journalMagic)]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return 0, fmt.Errorf("checkpoint: reading journal header: %w", err)
	}
	if head != journalMagic {
		return 0, fmt.Errorf("%w: %s", ErrNotJournal, path)
	}
	off := int64(len(journalMagic))
	var hdr [journalFrameHeader]byte
	for {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return off, nil // short header: torn tail
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxJournalRecord {
			return off, nil // corrupt length: treat as tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+journalFrameHeader, int64(length)), payload); err != nil {
			return off, nil // short payload: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil // torn or bit-flipped: stop at the last good record
		}
		off += journalFrameHeader + int64(length)
		if off >= size {
			return off, nil
		}
	}
}

// Append gob-encodes v as one record, writes its frame, and fsyncs before
// returning: once Append returns nil the record is durable. On a write
// error the journal rolls the file back to the last durable boundary so a
// failed append never leaves a torn middle.
func (j *Journal) Append(v any) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, journalFrameHeader)) // frame header placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encoding journal record: %w", err)
	}
	frame := buf.Bytes()
	payload := frame[journalFrameHeader:]
	if len(payload) > MaxJournalRecord {
		return fmt.Errorf("checkpoint: journal record of %d bytes exceeds limit", len(payload))
	}
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := j.f.WriteAt(frame, j.off); err != nil {
		j.f.Truncate(j.off) // best effort: restore the record boundary
		return fmt.Errorf("checkpoint: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.f.Truncate(j.off)
		return fmt.Errorf("checkpoint: syncing journal: %w", err)
	}
	j.off += int64(len(frame))
	return nil
}

// Size returns the journal's durable length in bytes.
func (j *Journal) Size() int64 { return j.off }

// Close releases the journal's file handle. Appends after Close fail.
func (j *Journal) Close() error { return j.f.Close() }

// ReplayJournal reads the journal at path front to back, calling decode
// once per complete record with a decoder positioned over that record's
// payload. A missing file is an empty journal (nil error); a torn tail
// ends the replay silently — exactly the records whose Append was
// acknowledged are delivered. Errors returned by decode abort the replay.
func ReplayJournal(path string, decode func(dec *gob.Decoder) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: opening journal: %w", err)
	}
	defer f.Close()
	var head [len(journalMagic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil // shorter than a header: nothing committed
	}
	if head != journalMagic {
		return fmt.Errorf("%w: %s", ErrNotJournal, path)
	}
	var hdr [journalFrameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxJournalRecord {
			return nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil
		}
		if err := decode(gob.NewDecoder(bytes.NewReader(payload))); err != nil {
			return fmt.Errorf("checkpoint: decoding journal record: %w", err)
		}
	}
}

// RewriteJournal atomically replaces the journal at path with the records
// the write callback emits through its append argument — the truncation
// half of a compaction. The replacement is built in a temp file in path's
// directory and committed with the same fsync+rename discipline as Save,
// so a crash at any instant leaves either the old journal or the complete
// new one. Any open Journal on path must be closed first and reopened
// after.
func RewriteJournal(path string, write func(append func(v any) error) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating journal temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(journalMagic[:]); err != nil {
		return fmt.Errorf("checkpoint: writing journal header: %w", err)
	}
	appendRec := func(v any) error {
		var buf bytes.Buffer
		buf.Write(make([]byte, journalFrameHeader))
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return fmt.Errorf("checkpoint: encoding journal record: %w", err)
		}
		frame := buf.Bytes()
		payload := frame[journalFrameHeader:]
		if len(payload) > MaxJournalRecord {
			return fmt.Errorf("checkpoint: journal record of %d bytes exceeds limit", len(payload))
		}
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		_, werr := tmp.Write(frame)
		return werr
	}
	if err = write(appendRec); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing journal temp: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing journal temp: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: renaming journal into place: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
