package checkpoint

import (
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

type testState struct {
	Name  string
	Count int64
	Vals  map[string]float64
}

func sampleState(i int) *testState {
	return &testState{
		Name:  "dataset",
		Count: int64(i),
		Vals:  map[string]float64{"pi": 3.14159, "logs": float64(i * 7)},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	want := sampleState(3)
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	var got testState
	if err := Load(path, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

// TestLoadTruncatedAtEveryByte cuts a saved checkpoint at every possible
// length: Load must return an error — never a panic, never a silently
// wrong value — at each of them.
func TestLoadTruncatedAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	if err := Save(full, sampleState(9)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ckpt")
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(cut, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		var got testState
		if err := Load(cut, &got); err == nil {
			t.Fatalf("truncation at byte %d of %d loaded without error", n, len(raw))
		}
	}
}

// TestSaveSweepsStaleTemps is the regression test for orphaned
// `<base>.tmp*` files: a crash between CreateTemp and rename used to leave
// them in the directory forever. Save must sweep aged orphans of its own
// base name — and must leave fresh temps and unrelated files alone.
func TestSaveSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	old := time.Now().Add(-2 * time.Hour)

	stale := filepath.Join(dir, "state.ckpt.tmp123456")
	fresh := filepath.Join(dir, "state.ckpt.tmp654321")
	other := filepath.Join(dir, "other.ckpt.tmp111111")
	for _, p := range []string{stale, fresh, other} {
		if err := os.WriteFile(p, []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{stale, other} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}

	if err := Save(path, sampleState(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp survived Save: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp was swept: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Errorf("another base's temp was swept by a scoped Save: %v", err)
	}

	// Recovery-time sweep: base "" and age 0 clears every temp.
	if n := SweepTemps(dir, "", 0); n != 2 {
		t.Errorf("unscoped sweep removed %d temps, want 2", n)
	}
	var got testState
	if err := Load(path, &got); err != nil {
		t.Errorf("checkpoint damaged by sweeping: %v", err)
	}
}

func appendRecords(t *testing.T, path string, from, to int) {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := from; i < to; i++ {
		if err := j.Append(sampleState(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, path string) []*testState {
	t.Helper()
	var got []*testState
	err := ReplayJournal(path, func(dec *gob.Decoder) error {
		var st testState
		if err := dec.Decode(&st); err != nil {
			return err
		}
		got = append(got, &st)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commits.journal")
	appendRecords(t, path, 0, 4)
	// Reopen and extend: the journal is append-only across opens.
	appendRecords(t, path, 4, 6)
	got := replayAll(t, path)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
	for i, st := range got {
		if !reflect.DeepEqual(st, sampleState(i)) {
			t.Errorf("record %d = %+v, want %+v", i, st, sampleState(i))
		}
	}
}

// TestJournalTruncatedAtEveryByte is the crash-window sweep: the journal
// cut at every possible byte must replay to some exact prefix of the
// appended records (a torn tail is silently discarded, an intact record is
// never lost or altered), and OpenJournal on the cut file must truncate to
// that same prefix and accept further appends.
func TestJournalTruncatedAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	const records = 5
	appendRecords(t, full, 0, records)

	// Record boundaries: replay offsets after each append.
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]int{} // byte length -> records fully contained
	probe := filepath.Join(dir, "probe.journal")
	for n := 0; n <= len(raw); n++ {
		if err := os.WriteFile(probe, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, probe)
		for i, st := range got {
			if !reflect.DeepEqual(st, sampleState(i)) {
				t.Fatalf("cut at %d: record %d = %+v, want %+v", n, i, st, sampleState(i))
			}
		}
		boundaries[n] = len(got)
		if n > 0 && boundaries[n] < boundaries[n-1] {
			t.Fatalf("cut at %d replayed %d records, shorter cut replayed %d",
				n, boundaries[n], boundaries[n-1])
		}

		// Reopening must truncate the torn tail and keep appending cleanly.
		j, err := OpenJournal(probe)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", n, err)
		}
		if err := j.Append(sampleState(100 + n)); err != nil {
			t.Fatalf("cut at %d: append after reopen: %v", n, err)
		}
		j.Close()
		again := replayAll(t, probe)
		if len(again) != boundaries[n]+1 {
			t.Fatalf("cut at %d: replay after reopen+append got %d records, want %d",
				n, len(again), boundaries[n]+1)
		}
		if !reflect.DeepEqual(again[len(again)-1], sampleState(100+n)) {
			t.Fatalf("cut at %d: appended record corrupted", n)
		}
	}
	if boundaries[len(raw)] != records {
		t.Fatalf("uncut journal replayed %d records, want %d", boundaries[len(raw)], records)
	}
}

// TestJournalBitFlip: corruption inside a committed record must not
// surface that record (CRC catches it); replay stops at the last record
// before the damage.
func TestJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.journal")
	appendRecords(t, path, 0, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the back third — inside the last record's payload.
	mut := append([]byte(nil), raw...)
	mut[len(mut)-3] ^= 0x40
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) >= 3 {
		t.Fatalf("bit-flipped record survived replay: %d records", len(got))
	}
	for i, st := range got {
		if !reflect.DeepEqual(st, sampleState(i)) {
			t.Errorf("record %d corrupted by later bit flip", i)
		}
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.journal")
	if err := os.WriteFile(path, []byte("PLAINTEXT, definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); !errors.Is(err, ErrNotJournal) {
		t.Errorf("OpenJournal on a foreign file: %v, want ErrNotJournal", err)
	}
	if err := ReplayJournal(path, func(*gob.Decoder) error { return nil }); !errors.Is(err, ErrNotJournal) {
		t.Errorf("ReplayJournal on a foreign file: %v, want ErrNotJournal", err)
	}
}

func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.journal")
	appendRecords(t, path, 0, 6)
	// Compaction: replace six records with one summary record.
	err := RewriteJournal(path, func(app func(v any) error) error {
		return app(sampleState(42))
	})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 || !reflect.DeepEqual(got[0], sampleState(42)) {
		t.Fatalf("rewritten journal replays %+v", got)
	}
	// And the rewritten journal accepts appends.
	appendRecords(t, path, 7, 8)
	if got := replayAll(t, path); len(got) != 2 {
		t.Fatalf("append after rewrite: %d records, want 2", len(got))
	}
}

func TestReplayMissingJournalIsEmpty(t *testing.T) {
	err := ReplayJournal(filepath.Join(t.TempDir(), "absent.journal"), func(*gob.Decoder) error {
		t.Error("decode called for a missing journal")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
