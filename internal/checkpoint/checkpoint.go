// Package checkpoint provides atomic, typed snapshot files for long-running
// pipeline stages. A checkpoint is a gob-encoded value written with the
// write-temp + fsync + rename discipline, so a crash at any instant leaves
// either the previous complete checkpoint or the new complete checkpoint on
// disk — never a torn file. gob is chosen over JSON deliberately: it
// round-trips float64 bit-exactly, which the resume-byte-identity guarantee
// depends on.
package checkpoint

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// magic identifies a checkpoint file and versions its envelope.
var magic = [8]byte{'D', 'G', 'C', 'K', 'P', 'T', 0, 1}

// ErrNotCheckpoint marks a file without the checkpoint magic.
var ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint file")

// staleTempAge is how old an abandoned temp file must be before Save
// sweeps it. A crash between CreateTemp and the rename orphans the temp;
// age-gating the sweep keeps Save from deleting a temp another in-flight
// writer of the same path created moments ago.
const staleTempAge = time.Hour

// SweepTemps removes abandoned checkpoint/journal temp files — the
// `<base>.tmp<random>` residue of a crash between CreateTemp and the
// rename — from dir, keeping only those younger than olderThan. An empty
// base sweeps temps of every base name in dir (recovery-time cleanup);
// olderThan 0 sweeps regardless of age. Returns how many were removed.
func SweepTemps(dir, base string, olderThan time.Duration) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if base != "" {
			if !strings.HasPrefix(name, base+".tmp") {
				continue
			}
		} else if !strings.Contains(name, ".tmp") {
			continue
		}
		if olderThan > 0 {
			fi, err := de.Info()
			if err != nil || fi.ModTime().After(cutoff) {
				continue
			}
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// Save atomically writes v (gob-encoded) to path. The temp file lives in
// path's directory so the rename cannot cross filesystems; it is fsynced
// before the rename, and the directory is fsynced after, so a crash
// immediately after Save returns still finds the new checkpoint. Stale
// temps a crashed predecessor left behind for the same path are swept
// first, so orphaned `<base>.tmp*` files cannot accumulate forever.
func Save(path string, v any) (err error) {
	dir := filepath.Dir(path)
	SweepTemps(dir, filepath.Base(path), staleTempAge)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(magic[:]); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	if err = gob.NewEncoder(tmp).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encoding: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: renaming into place: %w", err)
	}
	// Make the rename itself durable. Some filesystems don't support
	// fsync on directories; failure to sync is not failure to save.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads the checkpoint at path into v (a pointer to the same type
// Save was given).
func Load(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("%w: %s: short header", ErrNotCheckpoint, path)
	}
	if hdr != magic {
		return fmt.Errorf("%w: %s", ErrNotCheckpoint, path)
	}
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decoding %s: %w", path, err)
	}
	return nil
}
