// Package predict is the prescriptive layer over the analysis pipeline:
// it mines a dataset's frozen aggregate state into time series of I/O
// volume, detects bursts and the gaps between them, forecasts the next
// burst window with a confidence band, and emits per-app placement hints
// (burst-buffer staging vs PFS, stripe-count suggestions). For sub-hour
// resolution it scans columnar .dgc campaigns directly, pruning segments
// by their start-time stats (see ScanColumnar).
//
// Everything here is a pure, deterministic function of its inputs: the
// same report produces the same profile byte for byte, at any ingest
// worker count — every float that reaches a document is canonicalized to
// nine significant digits, far coarser than the partition-order noise in
// the aggregate sums and far finer than anything the models resolve.
package predict

import (
	"math"
	"time"

	"iolayers/internal/analysis"
)

// SchemaVersion identifies the shape of the predict JSON document. Bump
// whenever a field is added, removed, or changes meaning.
const SchemaVersion = 1

// BurstFactor is the burst threshold in multiples of the median active
// bucket: a window moving more than twice the typical volume is a burst.
const BurstFactor = 2.0

// canon rounds to nine significant digits so values derived from
// partition-order-sensitive float sums serialize identically at any
// worker count (the same contract as report.CanonicalNodeHours, applied
// relatively because byte volumes span fifteen orders of magnitude).
func canon(x float64) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	mag := math.Ceil(math.Log10(math.Abs(x)))
	scale := math.Pow(10, 9-mag)
	return math.Round(x*scale) / scale
}

// Bucket is one window of a volume series.
type Bucket struct {
	Index int     `json:"index"`
	Label string  `json:"label"`
	Logs  int64   `json:"logs"`
	Bytes float64 `json:"bytes"`
}

// Series is an ordered sequence of volume windows.
type Series struct {
	// Resolution names the window width: "month" for series mined from
	// aggregate state, "hour" for series mined from columnar segments.
	Resolution string   `json:"resolution"`
	Buckets    []Bucket `json:"buckets"`
}

// Volumes returns the series' byte volumes in bucket order.
func (s *Series) Volumes() []float64 {
	out := make([]float64, len(s.Buckets))
	for i, b := range s.Buckets {
		out[i] = b.Bytes
	}
	return out
}

// BurstModel describes the bursts found in one series.
type BurstModel struct {
	// ThresholdBytes is BurstFactor x the median active (non-zero) bucket.
	ThresholdBytes float64 `json:"threshold_bytes"`
	// BurstIndices lists the bucket indices at or above the threshold.
	BurstIndices []int `json:"burst_indices,omitempty"`
	// MeanVolume and VolumeStd summarize the burst buckets' volumes.
	MeanVolume float64 `json:"mean_volume_bytes"`
	VolumeStd  float64 `json:"volume_std_bytes"`
	// MeanGap and GapStd summarize the spacing (in buckets) between
	// consecutive burst starts; zero with fewer than two bursts.
	MeanGap float64 `json:"mean_gap"`
	GapStd  float64 `json:"gap_std"`
}

// Bursts is the number of burst buckets.
func (m *BurstModel) Bursts() int { return len(m.BurstIndices) }

// DetectBursts finds the buckets whose volume exceeds factor times the
// median active bucket and fits the inter-burst-gap model. A factor <= 0
// means BurstFactor.
func DetectBursts(vol []float64, factor float64) BurstModel {
	if factor <= 0 {
		factor = BurstFactor
	}
	active := make([]float64, 0, len(vol))
	for _, v := range vol {
		if v > 0 {
			active = append(active, v)
		}
	}
	var m BurstModel
	if len(active) == 0 {
		return m
	}
	m.ThresholdBytes = canon(factor * median(active))
	var volumes []float64
	for i, v := range vol {
		if v > 0 && v >= m.ThresholdBytes {
			m.BurstIndices = append(m.BurstIndices, i)
			volumes = append(volumes, v)
		}
	}
	if len(volumes) == 0 {
		return m
	}
	mv, sv := meanStd(volumes)
	m.MeanVolume, m.VolumeStd = canon(mv), canon(sv)
	if len(m.BurstIndices) >= 2 {
		gaps := make([]float64, len(m.BurstIndices)-1)
		for i := 1; i < len(m.BurstIndices); i++ {
			gaps[i-1] = float64(m.BurstIndices[i] - m.BurstIndices[i-1])
		}
		mg, sg := meanStd(gaps)
		m.MeanGap, m.GapStd = canon(mg), canon(sg)
	}
	return m
}

// Forecast is the model's answer to "when is the next burst, and how
// big": the predicted bucket index (relative to the series the model was
// fitted on), the expected volume, and a confidence band around it.
type Forecast struct {
	// NextIndex is the predicted bucket index of the next burst; -1 when
	// the series shows no bursts to extrapolate from.
	NextIndex int    `json:"next_index"`
	NextLabel string `json:"next_label,omitempty"`
	// ExpectedBytes is the forecast volume, with [LowBytes, HighBytes]
	// the confidence band (one volume-sigma wide, floored at a quarter of
	// the expectation so a two-burst series still gets an honest band).
	ExpectedBytes float64 `json:"expected_bytes"`
	LowBytes      float64 `json:"low_bytes"`
	HighBytes     float64 `json:"high_bytes"`
	// Confidence in (0, 1]: high when burst spacing is regular
	// (1 / (1 + gap coefficient of variation)), 0 with no bursts.
	Confidence float64 `json:"confidence"`
}

// ForecastNext extrapolates the burst model one step past the series:
// the next burst lands one mean gap after the last observed burst.
// label, when non-nil, names forecast bucket indices.
func ForecastNext(m BurstModel, label func(int) string) Forecast {
	if m.Bursts() == 0 {
		return Forecast{NextIndex: -1}
	}
	gap := int(math.Round(m.MeanGap))
	if gap < 1 {
		gap = 1
	}
	f := Forecast{NextIndex: m.BurstIndices[m.Bursts()-1] + gap}
	if label != nil {
		f.NextLabel = label(f.NextIndex)
	}
	f.ExpectedBytes = m.MeanVolume
	half := m.VolumeStd
	if floor := 0.25 * m.MeanVolume; half < floor {
		half = floor
	}
	f.LowBytes = canon(math.Max(0, m.MeanVolume-half))
	f.HighBytes = canon(m.MeanVolume + half)
	switch {
	case m.MeanGap > 0:
		f.Confidence = canon(1 / (1 + m.GapStd/m.MeanGap))
	case m.Bursts() >= 2:
		f.Confidence = 1 // bursts in adjacent buckets: perfectly regular
	default:
		f.Confidence = 0.5 // a single burst: direction without cadence
	}
	return f
}

// LayerMix is one layer's share of the campaign, the quantity the
// placement hints trade against.
type LayerMix struct {
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Files int64  `json:"files"`
	// ReadBytes/WriteBytes are the layer's transferred volume and
	// ReadShare the read fraction of it.
	ReadBytes  float64 `json:"read_bytes"`
	WriteBytes float64 `json:"write_bytes"`
	ReadShare  float64 `json:"read_share"`
	// BusySeconds is the layer's aggregate per-file I/O busy time — the
	// observed baseline the replay validation must beat.
	BusySeconds float64 `json:"busy_seconds"`
}

// AppProfile is one science domain's mined pattern and placement hint.
type AppProfile struct {
	Domain string `json:"domain"`
	Jobs   int64  `json:"jobs"`
	// ReadBytes/WriteBytes cover the traffic attributable to the domain
	// (in-system plus STDIO volume; the aggregate state keys no other
	// traffic by domain).
	ReadBytes  float64 `json:"read_bytes"`
	WriteBytes float64 `json:"write_bytes"`
	WriteShare float64 `json:"write_share"`
	// VolumeShare is the domain's fraction of all domain-attributed
	// traffic.
	VolumeShare float64 `json:"volume_share"`
	// Placement is "burst-buffer" (stage writes in-system, drain async)
	// or "pfs" (serve from the parallel file system).
	Placement string `json:"placement"`
	// StripeCount is the suggested PFS stripe width for the domain's
	// dominant transfer size.
	StripeCount int    `json:"stripe_count"`
	Reason      string `json:"reason"`
}

// Profile is the complete predictive-analytics result for one dataset.
type Profile struct {
	System string `json:"system"`
	// Monthly is the calendar-month volume series (January first) — the
	// finest temporal resolution the frozen aggregate state carries.
	Monthly  Series       `json:"monthly"`
	Burst    BurstModel   `json:"burst"`
	Forecast Forecast     `json:"forecast"`
	Layers   []LayerMix   `json:"layers"`
	Apps     []AppProfile `json:"apps"`
	// Replay is the closed-loop validation: the campaign re-costed under
	// the recommended placement. Nil until WithReplay attaches it.
	Replay *ReplayOutcome `json:"replay,omitempty"`
}

// monthLabel names a (possibly extrapolated) January-first month index.
func monthLabel(i int) string {
	name := time.Month(i%12 + 1).String()[:3]
	if i >= 12 {
		return name + "+1y"
	}
	return name
}

// writeHeavyShare is the write fraction above which a domain's traffic
// is staged on the in-system layer rather than aimed at the PFS.
const writeHeavyShare = 0.6

// FromReport mines a report into a Profile: the monthly series, its
// burst/gap model and forecast, the per-layer mix, and per-app placement
// hints. The result is deterministic and safe to cache by dataset
// generation.
func FromReport(r *analysis.Report) *Profile {
	p := &Profile{System: r.Summary.System}

	p.Monthly = Series{Resolution: "month", Buckets: make([]Bucket, 12)}
	for i := 0; i < 12; i++ {
		p.Monthly.Buckets[i] = Bucket{
			Index: i, Label: monthLabel(i),
			Logs: r.MonthlyLogs[i], Bytes: canon(r.MonthlyBytes[i]),
		}
	}
	p.Burst = DetectBursts(p.Monthly.Volumes(), BurstFactor)
	p.Forecast = ForecastNext(p.Burst, monthLabel)

	for _, lr := range r.Layers {
		read, write := lr.Stats.Bytes[analysis.Read], lr.Stats.Bytes[analysis.Write]
		mix := LayerMix{
			Layer: lr.Layer, Kind: lr.Kind.String(), Files: lr.Stats.Files,
			ReadBytes: canon(read), WriteBytes: canon(write),
			BusySeconds: canon(lr.Stats.IOTime[analysis.Read] + lr.Stats.IOTime[analysis.Write]),
		}
		if total := read + write; total > 0 {
			mix.ReadShare = canon(read / total)
		}
		p.Layers = append(p.Layers, mix)
	}

	baseStripes := stripesForBin(dominantPFSBin(r))
	var totalDomain float64
	for _, d := range r.Domains {
		totalDomain += d.InSystemBytes[0] + d.InSystemBytes[1] + d.StdioBytes[0] + d.StdioBytes[1]
	}
	shares := make([]float64, 0, len(r.Domains))
	for _, d := range r.Domains {
		if totalDomain > 0 {
			shares = append(shares, (d.InSystemBytes[0]+d.InSystemBytes[1]+d.StdioBytes[0]+d.StdioBytes[1])/totalDomain)
		} else {
			shares = append(shares, 0)
		}
	}
	medShare := 0.0
	if len(shares) > 0 {
		medShare = median(shares)
	}
	for i, d := range r.Domains {
		read := d.InSystemBytes[0] + d.StdioBytes[0]
		write := d.InSystemBytes[1] + d.StdioBytes[1]
		app := AppProfile{
			Domain: d.Domain, Jobs: d.Jobs,
			ReadBytes: canon(read), WriteBytes: canon(write),
			VolumeShare: canon(shares[i]),
		}
		if total := read + write; total > 0 {
			app.WriteShare = canon(write / total)
		}
		app.Placement, app.Reason = placementFor(app.WriteShare)
		app.StripeCount = baseStripes
		if shares[i] < medShare {
			// Light apps get narrower stripes: wide striping buys nothing
			// below the per-server transfer size and costs metadata.
			app.StripeCount = max(1, baseStripes/2)
		}
		p.Apps = append(p.Apps, app)
	}
	return p
}

func placementFor(writeShare float64) (string, string) {
	if writeShare >= writeHeavyShare {
		return "burst-buffer",
			"write-heavy: stage bursts on the in-system layer and drain to the PFS asynchronously"
	}
	return "pfs",
		"read-dominated: serve from the PFS; prewarm the in-system layer only for repeated hot files"
}

// median of a non-empty slice (input is copied, not mutated).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	// insertion sort: series are tiny and this avoids importing sort for
	// floats with a comparator allocation.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// MAPE is the mean absolute percentage error of pred against actual,
// skipping windows with zero actual volume (relative error is undefined
// there). Slices must be equal length; no comparable windows yields 0.
func MAPE(pred, actual []float64) float64 {
	var sum float64
	n := 0
	for i, a := range actual {
		if a == 0 {
			continue
		}
		sum += math.Abs(pred[i]-a) / a
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
