package predict

import (
	"fmt"
	"strings"

	"iolayers/internal/units"
)

// Document is the versioned /v1/predict wire envelope. Field order is
// fixed by the struct and the service marshals with deterministic
// indentation, so the same dataset generation always yields the same
// bytes — through a router, from any replica, at any worker count.
type Document struct {
	SchemaVersion int      `json:"schema_version"`
	Dataset       string   `json:"dataset"`
	System        string   `json:"system"`
	Generation    uint64   `json:"generation"`
	Profile       *Profile `json:"profile"`
}

// NewDocument wraps a profile in the wire envelope.
func NewDocument(dataset string, gen uint64, p *Profile) *Document {
	return &Document{
		SchemaVersion: SchemaVersion,
		Dataset:       dataset,
		System:        p.System,
		Generation:    gen,
		Profile:       p,
	}
}

func fmtBytes(v float64) string {
	if v < 0 {
		v = 0
	}
	return units.ByteSize(v).String()
}

// Text renders the profile as the human-readable "predict" report
// section. Output is a pure function of the profile.
func (p *Profile) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Predictive analytics — %s (schema v%d)\n", p.System, SchemaVersion)

	active := 0
	for _, bk := range p.Monthly.Buckets {
		if bk.Bytes > 0 {
			active++
		}
	}
	fmt.Fprintf(&b, "  monthly series: %d active of %d months, burst threshold %s (%.1fx median)\n",
		active, len(p.Monthly.Buckets), fmtBytes(p.Burst.ThresholdBytes), BurstFactor)
	if n := p.Burst.Bursts(); n > 0 {
		labels := make([]string, n)
		for i, idx := range p.Burst.BurstIndices {
			labels[i] = p.Monthly.Buckets[idx].Label
		}
		fmt.Fprintf(&b, "  bursts: %d (%s), mean volume %s, mean gap %.2f months (σ %.2f)\n",
			n, strings.Join(labels, ", "), fmtBytes(p.Burst.MeanVolume), p.Burst.MeanGap, p.Burst.GapStd)
		fmt.Fprintf(&b, "  next burst: %s — expected %s in [%s, %s], confidence %.2f\n",
			p.Forecast.NextLabel, fmtBytes(p.Forecast.ExpectedBytes),
			fmtBytes(p.Forecast.LowBytes), fmtBytes(p.Forecast.HighBytes), p.Forecast.Confidence)
	} else {
		b.WriteString("  bursts: none detected — volume is flat at this resolution\n")
	}

	b.WriteString("  layer mix:\n")
	for _, l := range p.Layers {
		fmt.Fprintf(&b, "    %-8s %-9s files %8d  read %s  write %s  read share %5.1f%%  busy %.2fs\n",
			l.Layer, "("+l.Kind+")", l.Files, fmtBytes(l.ReadBytes), fmtBytes(l.WriteBytes),
			l.ReadShare*100, l.BusySeconds)
	}

	if len(p.Apps) > 0 {
		b.WriteString("  placement hints:\n")
		for _, a := range p.Apps {
			fmt.Fprintf(&b, "    %-12s %-12s stripes %2d  write share %5.1f%%  volume share %5.1f%%  (%s)\n",
				a.Domain, a.Placement, a.StripeCount, a.WriteShare*100, a.VolumeShare*100, a.Reason)
		}
	}

	if rp := p.Replay; rp != nil {
		fmt.Fprintf(&b, "  replay validation: baseline %.3fs -> recommended %.3fs (%.1f%% better), %d files staged across %d moves\n",
			rp.BaselineSec, rp.RecommendedSec, rp.ImprovementFrac*100, rp.MovedFiles, len(rp.Moves))
	}
	return b.String()
}
