package predict

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/darshan/logfmt"
)

// ScanOptions configures a columnar miner pass.
type ScanOptions struct {
	// From/To bound the scan to logs whose start time falls in
	// [From, To] (unix seconds). A zero To leaves the window open above;
	// with both zero every log is scanned. Segments whose start-time
	// stats prove no log can fall inside the window are skipped without
	// decoding.
	From, To int64
	// Limits bounds decoder allocations; zero fields take
	// logfmt.DefaultLimits.
	Limits logfmt.DecodeLimits
}

// HourBucket is one hour's activity: the sub-month resolution the
// frozen aggregate state cannot provide and the seasonal model needs.
type HourBucket struct {
	// Hour is the unix hour index (start time / 3600).
	Hour       int64 `json:"hour"`
	Logs       int64 `json:"logs"`
	ReadBytes  int64 `json:"read_bytes"`
	WriteBytes int64 `json:"write_bytes"`
}

// Volume is the bucket's total transferred bytes.
func (h HourBucket) Volume() float64 { return float64(h.ReadBytes + h.WriteBytes) }

// DomainActivity is one domain's share of a scanned window.
type DomainActivity struct {
	Domain     string `json:"domain"`
	Logs       int64  `json:"logs"`
	ReadBytes  int64  `json:"read_bytes"`
	WriteBytes int64  `json:"write_bytes"`
}

// ScanResult is one columnar miner pass: the hourly series, per-domain
// totals, and how much work segment pruning saved.
type ScanResult struct {
	Hours   []HourBucket
	Domains []DomainActivity
	// SegmentsScanned/SegmentsPruned count decoded vs stats-skipped
	// segments.
	SegmentsScanned int64
	SegmentsPruned  int64
}

// HourlyVolumes returns the scan's per-bucket volumes in hour order.
func (sr *ScanResult) HourlyVolumes() []float64 {
	out := make([]float64, len(sr.Hours))
	for i, h := range sr.Hours {
		out[i] = h.Volume()
	}
	return out
}

// ScanColumnar mines a .dgc campaign into an hourly activity series and
// per-domain totals, using the same POSIX-preferred byte accounting as
// the aggregator so scanned totals reconcile exactly with the report.
// Segments are pruned by the start-time column's stats block before any
// column is decoded — the PeekSegment fast path.
func ScanColumnar(ctx context.Context, path string, opts ScanOptions) (*ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("predict: opening %s: %w", path, err)
	}
	defer f.Close()
	cr, err := colfmt.NewReaderWithLimits(f, opts.Limits)
	if err != nil {
		return nil, fmt.Errorf("predict: %s: %w", path, err)
	}

	res := &ScanResult{}
	hours := map[int64]*HourBucket{}
	domains := map[string]*DomainActivity{}
	windowed := opts.From != 0 || opts.To != 0
	for seg := 0; ; seg++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, err := cr.NextRaw()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("predict: %s segment %d: %w", path, seg, err)
		}
		if windowed {
			info, err := colfmt.PeekSegment(raw, opts.Limits)
			if err != nil {
				return nil, fmt.Errorf("predict: %s segment %d: %w", path, seg, err)
			}
			if min, max, ok := info.TimeRange(); ok {
				if (opts.To != 0 && min > opts.To) || max < opts.From {
					res.SegmentsPruned++
					continue
				}
			}
		}
		b, err := colfmt.DecodeSegment(raw, colfmt.GroupLogs|colfmt.GroupFiles, opts.Limits)
		if err != nil {
			return nil, fmt.Errorf("predict: %s segment %d: %w", path, seg, err)
		}
		res.SegmentsScanned++
		rowStart := 0
		for l := 0; l < b.NumLogs; l++ {
			rowEnd := int(colfmt.At(b.FileEnd, l))
			start := colfmt.At(b.StartTime, l)
			if start < opts.From || (opts.To != 0 && start > opts.To) {
				rowStart = rowEnd
				continue
			}
			var readB, writeB int64
			for r := rowStart; r < rowEnd; r++ {
				flags := colfmt.At(b.FileFlags, r)
				switch {
				case flags&colfmt.FlagPosix != 0:
					readB += colfmt.At(b.PosixReadB, r)
					writeB += colfmt.At(b.PosixWriteB, r)
				case flags&colfmt.FlagStdio != 0:
					readB += colfmt.At(b.StdioReadB, r)
					writeB += colfmt.At(b.StdioWriteB, r)
				default:
					readB += colfmt.At(b.MpiioReadB, r)
					writeB += colfmt.At(b.MpiioWriteB, r)
				}
			}
			rowStart = rowEnd

			hb := hours[start/3600]
			if hb == nil {
				hb = &HourBucket{Hour: start / 3600}
				hours[hb.Hour] = hb
			}
			hb.Logs++
			hb.ReadBytes += readB
			hb.WriteBytes += writeB

			name := ""
			if id := colfmt.At(b.Domain, l); id > 0 && int(id) < len(b.Dict) {
				name = b.Dict[id]
			}
			if name != "" {
				da := domains[name]
				if da == nil {
					da = &DomainActivity{Domain: name}
					domains[name] = da
				}
				da.Logs++
				da.ReadBytes += readB
				da.WriteBytes += writeB
			}
		}
	}

	res.Hours = make([]HourBucket, 0, len(hours))
	for _, hb := range hours {
		res.Hours = append(res.Hours, *hb)
	}
	sort.Slice(res.Hours, func(i, j int) bool { return res.Hours[i].Hour < res.Hours[j].Hour })
	res.Domains = make([]DomainActivity, 0, len(domains))
	for _, da := range domains {
		res.Domains = append(res.Domains, *da)
	}
	sort.Slice(res.Domains, func(i, j int) bool { return res.Domains[i].Domain < res.Domains[j].Domain })
	return res, nil
}

// Seasonal is the hour-of-day / day-of-week baseline: expected volume is
// the hour-of-day mean scaled by the day-of-week factor. It is the
// simplest model that captures diurnal shape and weekend dips, and being
// a pure average it is deterministic and cheap to refit.
type Seasonal struct {
	// HourOfDay[h] is the mean volume of observed buckets at hour-of-day
	// h (UTC).
	HourOfDay [24]float64 `json:"hour_of_day"`
	// DayFactor[d] scales by day-of-week (0 = Sunday, UTC); 1 means the
	// day moves average volume.
	DayFactor [7]float64 `json:"day_factor"`
	// Mean is the overall observed mean volume.
	Mean float64 `json:"mean"`
}

// dayOfWeek maps a unix hour index to 0=Sunday..6=Saturday (UTC; the
// epoch, hour 0, was a Thursday).
func dayOfWeek(hour int64) int {
	d := (hour/24 + 4) % 7
	if d < 0 {
		d += 7
	}
	return int(d)
}

// FitSeasonal fits the baseline to an hourly series.
func FitSeasonal(hours []HourBucket) *Seasonal {
	s := &Seasonal{}
	for i := range s.DayFactor {
		s.DayFactor[i] = 1
	}
	if len(hours) == 0 {
		return s
	}
	var hodSum [24]float64
	var hodN [24]int64
	var dowSum [7]float64
	var dowN [7]int64
	var total float64
	for _, h := range hours {
		v := h.Volume()
		hod := int(h.Hour % 24)
		hodSum[hod] += v
		hodN[hod]++
		dow := dayOfWeek(h.Hour)
		dowSum[dow] += v
		dowN[dow]++
		total += v
	}
	s.Mean = canon(total / float64(len(hours)))
	for i := range s.HourOfDay {
		if hodN[i] > 0 {
			s.HourOfDay[i] = canon(hodSum[i] / float64(hodN[i]))
		}
	}
	if s.Mean > 0 {
		for i := range s.DayFactor {
			if dowN[i] > 0 {
				s.DayFactor[i] = canon(dowSum[i] / float64(dowN[i]) / s.Mean)
			}
		}
	}
	return s
}

// Predict returns the baseline's expected volume for a unix hour index.
func (s *Seasonal) Predict(hour int64) float64 {
	return s.HourOfDay[hour%24] * s.DayFactor[dayOfWeek(hour)]
}

// HoldoutMAPE fits on the first train buckets of the series and scores
// the baseline's forecast error over the remainder — the held-out-window
// quality measure the predicttest tolerance bands pin.
func HoldoutMAPE(hours []HourBucket, train int) float64 {
	if train <= 0 || train >= len(hours) {
		return 0
	}
	s := FitSeasonal(hours[:train])
	holdout := hours[train:]
	pred := make([]float64, len(holdout))
	actual := make([]float64, len(holdout))
	for i, h := range holdout {
		pred[i] = s.Predict(h.Hour)
		actual[i] = h.Volume()
	}
	return MAPE(pred, actual)
}
