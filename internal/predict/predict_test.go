package predict

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

func TestCanonCollapsesPartitionNoise(t *testing.T) {
	// Two sums of the same values in different orders differ in the last
	// bits; canon must map both to the same number.
	a := 1e15 + 0.37
	b := a * (1 + 1e-13)
	if canon(a) != canon(b) {
		t.Errorf("canon(%v) = %v != canon(%v) = %v", a, canon(a), b, canon(b))
	}
	if canon(0) != 0 {
		t.Errorf("canon(0) = %v", canon(0))
	}
	if canon(123.456) != 123.456 {
		t.Errorf("canon(123.456) = %v, want unchanged", canon(123.456))
	}
	// Negative values round symmetrically.
	if canon(-a) != -canon(a) {
		t.Errorf("canon(-x) = %v, want %v", canon(-a), -canon(a))
	}
}

func TestDetectBurstsRegularCadence(t *testing.T) {
	// Quiet months of 1 GB with 10 GB bursts every three months.
	g := 1e9
	vol := []float64{g, g, g, 10 * g, g, g, 10 * g, g, g, 10 * g, g, g}
	m := DetectBursts(vol, BurstFactor)
	if want := canon(2 * g); m.ThresholdBytes != want {
		t.Errorf("threshold = %v, want %v", m.ThresholdBytes, want)
	}
	if len(m.BurstIndices) != 3 || m.BurstIndices[0] != 3 || m.BurstIndices[1] != 6 || m.BurstIndices[2] != 9 {
		t.Fatalf("burst indices = %v, want [3 6 9]", m.BurstIndices)
	}
	if m.MeanGap != 3 || m.GapStd != 0 {
		t.Errorf("gap model = (%v, %v), want (3, 0)", m.MeanGap, m.GapStd)
	}
	if m.MeanVolume != canon(10*g) || m.VolumeStd != 0 {
		t.Errorf("volume model = (%v, %v)", m.MeanVolume, m.VolumeStd)
	}

	f := ForecastNext(m, monthLabel)
	if f.NextIndex != 12 {
		t.Errorf("next index = %d, want 12", f.NextIndex)
	}
	if f.NextLabel != "Jan+1y" {
		t.Errorf("next label = %q, want Jan+1y", f.NextLabel)
	}
	if f.Confidence != 1 {
		t.Errorf("confidence = %v, want 1 for a perfectly regular cadence", f.Confidence)
	}
	if f.ExpectedBytes != canon(10*g) {
		t.Errorf("expected = %v", f.ExpectedBytes)
	}
	// Zero volume sigma still yields an honest band: a quarter of the mean.
	if f.LowBytes != canon(7.5*g) || f.HighBytes != canon(12.5*g) {
		t.Errorf("band = [%v, %v], want [7.5e9, 1.25e10]", f.LowBytes, f.HighBytes)
	}
}

func TestDetectBurstsEdgeCases(t *testing.T) {
	if m := DetectBursts(nil, 0); m.Bursts() != 0 {
		t.Errorf("empty series found bursts: %v", m.BurstIndices)
	}
	f := ForecastNext(BurstModel{}, nil)
	if f.NextIndex != -1 || f.Confidence != 0 {
		t.Errorf("no-burst forecast = %+v, want NextIndex -1", f)
	}

	// A single burst gives direction without cadence.
	m := DetectBursts([]float64{1, 1, 8}, BurstFactor)
	if m.Bursts() != 1 || m.BurstIndices[0] != 2 {
		t.Fatalf("burst indices = %v, want [2]", m.BurstIndices)
	}
	f = ForecastNext(m, nil)
	if f.NextIndex != 3 {
		t.Errorf("single-burst next index = %d, want 3 (one bucket on)", f.NextIndex)
	}
	if f.Confidence != 0.5 {
		t.Errorf("single-burst confidence = %v, want 0.5", f.Confidence)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	// Zero-actual windows are skipped, not divided by.
	if got := MAPE([]float64{5, 110}, []float64{0, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE with zero actual = %v, want 0.1", got)
	}
	if got := MAPE([]float64{5}, []float64{0}); got != 0 {
		t.Errorf("MAPE with no comparable windows = %v, want 0", got)
	}
}

// testReport builds a small but fully-populated report by hand: a PFS
// layer dominated by sub-100M writes (cheap to stage in-system) and two
// domains with opposite read/write balances.
func testReport() *analysis.Report {
	r := &analysis.Report{}
	r.Summary.System = "Summit"
	g := 1e9
	for i := range r.MonthlyBytes {
		r.MonthlyBytes[i] = g
		r.MonthlyLogs[i] = 10
	}
	r.MonthlyBytes[5] = 12 * g // one clear burst
	r.MonthlyLogs[5] = 40

	pfsHist := [2]*stats.Histogram{stats.NewHistogram(int(units.NumTransferBins)), stats.NewHistogram(int(units.NumTransferBins))}
	pfsHist[analysis.Write].Add(int(units.TransferTo100M), 500)
	pfsHist[analysis.Read].Add(int(units.TransferTo1G), 50)
	r.Layers[0] = analysis.LayerReport{
		Layer: "Alpine", Kind: iosim.ParallelFS,
		Stats: &analysis.LayerStats{
			Files:        550,
			Bytes:        [2]float64{5 * g, 20 * g},
			IOTime:       [2]float64{100, 900},
			TransferHist: pfsHist,
		},
	}
	insHist := [2]*stats.Histogram{stats.NewHistogram(int(units.NumTransferBins)), stats.NewHistogram(int(units.NumTransferBins))}
	insHist[analysis.Read].Add(int(units.TransferTo100M), 200)
	r.Layers[1] = analysis.LayerReport{
		Layer: "SCNL", Kind: iosim.InSystem,
		Stats: &analysis.LayerStats{
			Files:        200,
			Bytes:        [2]float64{2 * g, 0},
			IOTime:       [2]float64{10, 0},
			TransferHist: insHist,
		},
	}
	r.Domains = []analysis.DomainReport{
		{Domain: "Chemistry", Jobs: 30, InSystemBytes: [2]float64{9 * g, g}},
		{Domain: "Physics", Jobs: 50, InSystemBytes: [2]float64{g, 8 * g}, StdioBytes: [2]float64{0, g}},
	}
	return r
}

func TestFromReportPlacementAndStripes(t *testing.T) {
	p := FromReport(testReport())
	if p.System != "Summit" {
		t.Errorf("system = %q", p.System)
	}
	if len(p.Apps) != 2 {
		t.Fatalf("apps = %d, want 2", len(p.Apps))
	}
	byName := map[string]AppProfile{}
	for _, a := range p.Apps {
		byName[a.Domain] = a
	}
	if a := byName["Physics"]; a.Placement != "burst-buffer" {
		t.Errorf("write-heavy Physics placement = %q, want burst-buffer (write share %v)", a.Placement, a.WriteShare)
	}
	if a := byName["Chemistry"]; a.Placement != "pfs" {
		t.Errorf("read-heavy Chemistry placement = %q, want pfs", a.Placement)
	}
	// Dominant PFS bin is <100M -> base stripe suggestion of 1.
	for _, a := range p.Apps {
		if a.StripeCount != 1 {
			t.Errorf("%s stripes = %d, want 1 for sub-100M dominant transfers", a.Domain, a.StripeCount)
		}
	}
	if p.Burst.Bursts() != 1 || p.Burst.BurstIndices[0] != 5 {
		t.Errorf("burst indices = %v, want [5]", p.Burst.BurstIndices)
	}
	if p.Forecast.NextLabel != "Jul" {
		t.Errorf("next label = %q, want Jul", p.Forecast.NextLabel)
	}
	if len(p.Layers) != 2 || p.Layers[0].Layer != "Alpine" || p.Layers[1].Layer != "SCNL" {
		t.Errorf("layers = %+v", p.Layers)
	}
	if p.Layers[0].ReadShare != canon(5.0/25.0) {
		t.Errorf("Alpine read share = %v, want 0.2", p.Layers[0].ReadShare)
	}
}

func TestFromReportByteIdentityUnderPartitionNoise(t *testing.T) {
	r1, r2 := testReport(), testReport()
	// Simulate partition-order float noise: relative perturbations far
	// below canon's nine significant digits.
	for i := range r2.MonthlyBytes {
		r2.MonthlyBytes[i] *= 1 + 1e-13
	}
	for l := range r2.Layers {
		for d := 0; d < 2; d++ {
			r2.Layers[l].Stats.Bytes[d] *= 1 - 1e-13
			r2.Layers[l].Stats.IOTime[d] *= 1 + 1e-13
		}
	}
	sys := systems.NewSummit()
	j1, err := json.Marshal(FromReport(r1).WithReplay(sys, r1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(FromReport(r2).WithReplay(sys, r2))
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("profiles differ under sub-canon perturbation:\n%s\n%s", j1, j2)
	}
}

func TestReplayBeatsBaseline(t *testing.T) {
	r := testReport()
	sys := systems.NewSummit()
	out := Replay(sys, r)
	if out.BaselineSec <= 0 {
		t.Fatalf("baseline = %v, want > 0", out.BaselineSec)
	}
	if out.RecommendedSec > out.BaselineSec {
		t.Errorf("recommended %v > baseline %v: recommendations made things worse", out.RecommendedSec, out.BaselineSec)
	}
	// Summit's small PFS writes are strictly cheaper on SCNL, so moves
	// must exist and the win must be strict.
	if out.MovedFiles == 0 || len(out.Moves) == 0 {
		t.Fatalf("no moves recommended: %+v", out)
	}
	if out.RecommendedSec >= out.BaselineSec {
		t.Errorf("moves exist but no strict improvement: %v >= %v", out.RecommendedSec, out.BaselineSec)
	}
	if out.ImprovementFrac <= 0 || out.ImprovementFrac >= 1 {
		t.Errorf("improvement fraction = %v, want (0, 1)", out.ImprovementFrac)
	}
	for _, mv := range out.Moves {
		if mv.ToSec >= moveMargin*mv.FromSec {
			t.Errorf("move %+v violates the margin", mv)
		}
		if mv.From != sys.PFS.Name() || mv.To != sys.InSystem.Name() {
			t.Errorf("move endpoints = %s -> %s", mv.From, mv.To)
		}
	}
	// Determinism: the replay is a fixed-seed model.
	again := Replay(sys, r)
	if again.BaselineSec != out.BaselineSec || again.RecommendedSec != out.RecommendedSec {
		t.Errorf("replay not deterministic: %+v vs %+v", again, out)
	}
}

// diurnalHours builds a periodic hourly series: a fixed hour-of-day shape
// scaled by a day-of-week factor, exactly the model family Seasonal fits.
func diurnalHours(n int) []HourBucket {
	dow := [7]float64{0.5, 1, 1.2, 1.2, 1.2, 1, 0.6}
	out := make([]HourBucket, n)
	for i := range out {
		h := int64(i)
		shape := 100 + 50*float64((h%24+6)%24) // sawtooth over the day
		v := int64(shape * dow[dayOfWeek(h)] * 1e6)
		out[i] = HourBucket{Hour: h, Logs: 1, ReadBytes: v / 2, WriteBytes: v - v/2}
	}
	return out
}

func TestSeasonalHoldout(t *testing.T) {
	hours := diurnalHours(24 * 28) // four weeks
	train := 24 * 21               // three train, one holdout
	mape := HoldoutMAPE(hours, train)
	if mape > 0.01 {
		t.Errorf("holdout MAPE on an exactly-seasonal series = %v, want ~0", mape)
	}

	// Destroy the seasonality in the holdout window: error must blow up,
	// proving the measure can fail.
	broken := append([]HourBucket(nil), hours...)
	for i := train; i < len(broken); i++ {
		broken[i].ReadBytes *= 10
		broken[i].WriteBytes *= 10
	}
	if m := HoldoutMAPE(broken, train); m < 0.5 {
		t.Errorf("holdout MAPE on a broken series = %v, want large", m)
	}

	s := FitSeasonal(hours[:train])
	if s.Mean <= 0 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sunday (factor 0.5) must predict below the same hour on Wednesday.
	sunday := int64(3 * 24)    // hour 0 was Thursday; +3 days = Sunday
	wednesday := int64(6 * 24) // +6 days = Wednesday
	if s.Predict(sunday) >= s.Predict(wednesday) {
		t.Errorf("Sunday %v >= Wednesday %v: day factors not learned",
			s.Predict(sunday), s.Predict(wednesday))
	}
}

func TestBinSize(t *testing.T) {
	for b := units.TransferBin(0); b < units.NumTransferBins; b++ {
		sz := binSize(b)
		if sz <= 0 {
			t.Errorf("binSize(%v) = %v", b, sz)
		}
		if b > 0 && sz <= binSize(b-1) {
			t.Errorf("binSize not increasing at %v", b)
		}
	}
}

func TestProfileText(t *testing.T) {
	r := testReport()
	p := FromReport(r).WithReplay(systems.NewSummit(), r)
	text := p.Text()
	for _, want := range []string{"Predictive analytics", "bursts: 1", "next burst: Jul",
		"placement hints:", "burst-buffer", "replay validation:"} {
		if !strings.Contains(text, want) {
			t.Errorf("section missing %q:\n%s", want, text)
		}
	}
	if text != p.Text() {
		t.Error("Text() not deterministic")
	}
}
