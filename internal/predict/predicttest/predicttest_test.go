package predicttest

import (
	"context"
	"testing"

	"iolayers/internal/predict"
)

func TestClosedLoopBands(t *testing.T) {
	o, err := Run(context.Background(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Evaluate(o) {
		t.Log(r)
		if !r.OK {
			t.Errorf("out of band: %s", r)
		}
	}

	// The closed-loop property itself, independent of band placement:
	// recommended placement never loses to the observed baseline, and with
	// moves on the books the win is strict.
	rp := o.Profile.Replay
	if rp.RecommendedSec > rp.BaselineSec {
		t.Errorf("recommended %v > baseline %v", rp.RecommendedSec, rp.BaselineSec)
	}
	if rp.MovedFiles > 0 && rp.RecommendedSec >= rp.BaselineSec {
		t.Errorf("moves recorded but no strict improvement: %+v", rp)
	}
}

func TestRunDeterministic(t *testing.T) {
	ctx := context.Background()
	a, err := Run(ctx, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile.Replay.RecommendedSec != b.Profile.Replay.RecommendedSec ||
		a.Profile.Replay.BaselineSec != b.Profile.Replay.BaselineSec {
		t.Errorf("replay differs across runs: %+v vs %+v", a.Profile.Replay, b.Profile.Replay)
	}
	if a.HoldoutErr != b.HoldoutErr {
		t.Errorf("holdout error differs: %v vs %v", a.HoldoutErr, b.HoldoutErr)
	}
	if len(a.Scan.Hours) != len(b.Scan.Hours) {
		t.Errorf("scans differ: %d vs %d hours", len(a.Scan.Hours), len(b.Scan.Hours))
	}
}

// TestBandsCanFail perturbs the measured outcome and proves the tolerance
// bands are live checks, not decoration: a broken recommender and a
// scrambled forecast must both land outside their bands.
func TestBandsCanFail(t *testing.T) {
	o, err := Run(context.Background(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// A "recommender" that moved nothing and saved nothing.
	broken := *o
	brokenReplay := *o.Profile.Replay
	brokenReplay.RecommendedSec = brokenReplay.BaselineSec
	brokenReplay.ImprovementFrac = 0
	brokenReplay.MovedFiles = 0
	brokenProfile := *o.Profile
	brokenProfile.Replay = &brokenReplay
	broken.Profile = &brokenProfile
	if n := len(Failures(Evaluate(&broken))); n < 3 {
		t.Errorf("zero-improvement replay tripped %d checks, want >= 3 (improvement, ratio, moved files)", n)
	}

	// A forecast scored against a series whose holdout window abandons the
	// trained seasonality: the workload shifts 10x after week three, the
	// kind of regime change a fitted baseline cannot see coming.
	series := DiurnalSeries(24 * 28)
	for i := 24 * 21; i < len(series); i++ {
		series[i].ReadBytes *= 10
		series[i].WriteBytes *= 10
	}
	scrambled := *o
	scrambled.HoldoutErr = predict.HoldoutMAPE(series, 24*21)
	failed := false
	for _, r := range Evaluate(&scrambled) {
		if r.Check.Name == "seasonal holdout MAPE" && !r.OK {
			failed = true
		}
	}
	if !failed {
		t.Errorf("anti-seasonal holdout MAPE %v stayed in band; the check cannot fail", scrambled.HoldoutErr)
	}
}
