// Package predicttest is the closed-loop validation harness for the
// predict layer. It builds the deterministic fixture corpus, mines it
// through the same path /v1/predict serves, replays the recommendations
// against the iosim layer models, and pins the outcome — forecast error,
// replay improvement, columnar reconciliation — inside explicit tolerance
// bands, fidelity-style. A recommendation engine that cannot beat the
// observed baseline, or a forecast whose error drifts out of band, fails
// the suite rather than shipping silently.
package predicttest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/predict"
	"iolayers/internal/serve"
)

// Fixture parameters: enough logs for four domains, several transfer
// sizes, and — at SegmentLogs 16 — a multi-segment columnar file the
// pruning path can actually skip parts of.
const (
	FixtureLogs = 96
	FixtureSeed = 9
	SegmentLogs = 16
)

// Outcome is everything one harness run measures.
type Outcome struct {
	// Report is the ingested fixture corpus's analysis.
	Report *analysis.Report
	// Profile is the mined prediction profile with the replay attached.
	Profile *predict.Profile
	// Scan is the unwindowed columnar pass; WindowedScan covers only the
	// first half of the fixture's time range, forcing pruning.
	Scan, WindowedScan *predict.ScanResult
	// HourlyBurst and HourlyForecast come from the scanned hourly series —
	// the fixture spans days, not months, so the monthly model is
	// degenerate on it and the cadence lives at hour resolution.
	HourlyBurst    predict.BurstModel
	HourlyForecast predict.Forecast
	// HoldoutErr is the seasonal baseline's held-out MAPE on a synthetic
	// diurnal series (the fixture's one-log-per-hour cadence carries no
	// seasonality to learn, so the model is scored on its model family).
	HoldoutErr float64
}

// Run builds the corpus under dir (a scratch directory the caller owns),
// ingests it, converts it to columnar form, and measures everything the
// checks pin.
func Run(ctx context.Context, dir string) (*Outcome, error) {
	sys := systems.NewSummit()
	logs := filepath.Join(dir, "logs")
	if err := serve.WriteFixture(logs, sys, FixtureLogs, FixtureSeed); err != nil {
		return nil, err
	}
	report, _, err := core.IngestDir(ctx, sys, logs, core.IngestOptions{})
	if err != nil {
		return nil, err
	}

	out := &Outcome{Report: report}
	out.Profile = predict.FromReport(report).WithReplay(sys, report)

	dgc := filepath.Join(dir, "fixture.dgc")
	if _, err := core.ConvertDir(ctx, logs, dgc, core.ConvertOptions{SegmentLogs: SegmentLogs}); err != nil {
		return nil, err
	}
	if out.Scan, err = predict.ScanColumnar(ctx, dgc, predict.ScanOptions{}); err != nil {
		return nil, err
	}
	// The fixture's transfer-size rotation peaks at ~2x the median hour —
	// right at the default burst factor — so the hourly model uses 1.5 to
	// pick the cadence out cleanly.
	out.HourlyBurst = predict.DetectBursts(out.Scan.HourlyVolumes(), 1.5)
	out.HourlyForecast = predict.ForecastNext(out.HourlyBurst, nil)
	// Fixture log i starts at i*3600; a window over the first half leaves
	// the later segments provably disjoint.
	half := int64(FixtureLogs/2) * 3600
	if out.WindowedScan, err = predict.ScanColumnar(ctx, dgc, predict.ScanOptions{To: half - 1}); err != nil {
		return nil, err
	}

	out.HoldoutErr = predict.HoldoutMAPE(DiurnalSeries(24*28), 24*21)
	return out, nil
}

// RunTemp is Run in a fresh temporary directory, removed afterwards.
func RunTemp(ctx context.Context) (*Outcome, error) {
	dir, err := os.MkdirTemp("", "predicttest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	return Run(ctx, dir)
}

// DiurnalSeries synthesizes n hours of seasonal volume: an hour-of-day
// ramp scaled by a day-of-week factor with a deterministic ripple — the
// ground truth the seasonal baseline is scored against.
func DiurnalSeries(n int) []predict.HourBucket {
	dow := [7]float64{0.5, 1, 1.15, 1.2, 1.15, 1, 0.6}
	out := make([]predict.HourBucket, n)
	for i := range out {
		h := int64(i)
		day := int((h/24 + 4) % 7)
		shape := 80 + 40*float64(h%24)
		ripple := 1 + 0.02*float64((i*7)%5-2)/2 // ±2%, period 5, mean ~0
		v := int64(shape * dow[day] * ripple * 1e6)
		out[i] = predict.HourBucket{Hour: h, Logs: 1, ReadBytes: v / 2, WriteBytes: v - v/2}
	}
	return out
}

// Check pins one measured quantity inside [Low, High].
type Check struct {
	Name      string
	Low, High float64
	Value     func(*Outcome) float64
}

// Result is one evaluated check.
type Result struct {
	Check Check
	Got   float64
	OK    bool
}

func (r Result) String() string {
	status := "ok"
	if !r.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: got %.6g, band [%.4g, %.4g]: %s",
		r.Check.Name, r.Got, r.Check.Low, r.Check.High, status)
}

// Checks is the pinned tolerance suite. Bands are deliberately loose
// enough to survive model retuning but tight enough that a recommender
// that stops beating the baseline, a forecast that stops forecasting, or
// a scan that stops reconciling all land outside them.
func Checks() []Check {
	return []Check{
		{
			// The closed loop: replaying the recommended placement through
			// iosim must strictly beat the observed baseline.
			Name: "replay improvement fraction",
			Low:  0.05, High: 0.95,
			Value: func(o *Outcome) float64 { return o.Profile.Replay.ImprovementFrac },
		},
		{
			Name: "replay recommended/baseline ratio",
			Low:  0, High: 0.95,
			Value: func(o *Outcome) float64 {
				return o.Profile.Replay.RecommendedSec / o.Profile.Replay.BaselineSec
			},
		},
		{
			Name: "replay moved files",
			Low:  1, High: 1e9,
			Value: func(o *Outcome) float64 { return float64(o.Profile.Replay.MovedFiles) },
		},
		{
			// Forecast quality: held-out MAPE of the seasonal baseline on
			// its own model family plus ripple stays under 5%.
			Name: "seasonal holdout MAPE",
			Low:  0, High: 0.05,
			Value: func(o *Outcome) float64 { return o.HoldoutErr },
		},
		{
			// The hourly burst model must find a forecastable cadence in
			// the fixture (confidence 0 would mean no bursts at all; the
			// fixture's transfer-size rotation has period 5 hours).
			Name: "hourly forecast confidence",
			Low:  0.2, High: 1,
			Value: func(o *Outcome) float64 { return o.HourlyForecast.Confidence },
		},
		{
			// Columnar reconciliation: the scanner's byte accounting must
			// agree with the aggregator's to within float-sum noise.
			Name: "columnar/report byte ratio",
			Low:  0.999, High: 1.001,
			Value: func(o *Outcome) float64 {
				var scan float64
				for _, h := range o.Scan.Hours {
					scan += h.Volume()
				}
				var rep float64
				for _, lr := range o.Report.Layers {
					rep += lr.Stats.Bytes[analysis.Read] + lr.Stats.Bytes[analysis.Write]
				}
				return scan / rep
			},
		},
		{
			// The windowed scan must prove pruning works: at 16 logs per
			// segment and a half-range window, at least two segments are
			// provably disjoint and skipped without decoding.
			Name: "segments pruned by time window",
			Low:  2, High: float64(FixtureLogs / SegmentLogs),
			Value: func(o *Outcome) float64 { return float64(o.WindowedScan.SegmentsPruned) },
		},
	}
}

// Evaluate runs every check against one outcome.
func Evaluate(o *Outcome) []Result {
	checks := Checks()
	out := make([]Result, len(checks))
	for i, c := range checks {
		got := c.Value(o)
		out[i] = Result{Check: c, Got: got, OK: got >= c.Low && got <= c.High}
	}
	return out
}

// Failures filters evaluated results down to the out-of-band rows.
func Failures(results []Result) []Result {
	var bad []Result
	for _, r := range results {
		if !r.OK {
			bad = append(bad, r)
		}
	}
	return bad
}
