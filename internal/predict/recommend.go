package predict

import (
	"math"
	"math/rand/v2"

	"iolayers/internal/analysis"
	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

// replaySeed fixes the RNG stream the replay cost model draws layer
// variability from, so the same report and system always re-cost to the
// same seconds.
const replaySeed = 0x10c4572a9e3779b9

// replayDraws is how many variability draws each per-file cost averages
// over; enough to keep a marginal bin from flipping on noise.
const replayDraws = 16

// moveMargin: a bin only moves when the target layer beats the source by
// at least this factor, so recommendations survive the variability the
// cost model itself carries.
const moveMargin = 0.9

// Move is one placement decision of the recommender: every file in one
// (direction, transfer-size bin) cell relocating from one layer to
// another, with the modeled per-file costs that justify it.
type Move struct {
	Direction string `json:"direction"`
	Bin       string `json:"bin"`
	Files     uint64 `json:"files"`
	From      string `json:"from"`
	To        string `json:"to"`
	// FromSec/ToSec are the modeled per-file service times on each layer.
	FromSec float64 `json:"from_sec"`
	ToSec   float64 `json:"to_sec"`
	// GainSec is the aggregate time the move saves.
	GainSec float64 `json:"gain_sec"`
}

// ReplayOutcome is the closed-loop validation result: the observed file
// population re-costed through the iosim layer models under the original
// placement and under the recommended one.
type ReplayOutcome struct {
	// BaselineSec is the modeled aggregate I/O time with every file on
	// its observed layer; RecommendedSec with the Moves applied.
	BaselineSec    float64 `json:"baseline_sec"`
	RecommendedSec float64 `json:"recommended_sec"`
	// ImprovementFrac is (baseline - recommended) / baseline.
	ImprovementFrac float64 `json:"improvement_frac"`
	MovedFiles      uint64  `json:"moved_files"`
	Moves           []Move  `json:"moves,omitempty"`
}

// binSize returns the representative (geometric-mean) file size for a
// transfer bin; the unbounded top bin uses 2 TiB.
func binSize(b units.TransferBin) units.ByteSize {
	lo := float64(1)
	if b > 0 {
		lo = float64((b - 1).UpperEdge()) + 1
	}
	hi := float64(2 * units.TiB)
	if b < units.TransferOver1T {
		hi = float64(b.UpperEdge())
	}
	return units.ByteSize(math.Sqrt(lo * hi))
}

// costPerFile models one file's service time on a layer: the mean of
// replayDraws Transfer evaluations under a stream seeded by the cell
// identity, so the estimate is deterministic and layer-order independent.
func costPerFile(layer iosim.Layer, d analysis.Direction, b units.TransferBin, kind iosim.LayerKind) float64 {
	cell := uint64(d)<<8 | uint64(b)<<4 | uint64(kind)
	rng := rand.New(rand.NewPCG(replaySeed, cell))
	rw := iosim.Read
	if d == analysis.Write {
		rw = iosim.Write
	}
	path := layer.Mount() + "/predict/replay.dat"
	size := binSize(b)
	var sum float64
	for i := 0; i < replayDraws; i++ {
		sum += layer.Transfer(path, rw, size, 1, rng)
	}
	return sum / replayDraws
}

// Replay re-costs the report's observed per-layer file populations
// through the system's layer models, then applies the recommender's
// placement rule — move a PFS-resident (direction, bin) cell to the
// in-system layer when the modeled cost there beats the PFS by the move
// margin — and reports both totals. Bins above 1 TiB never move: staging
// capacity is finite and the paper's burst buffers are sized for bursts,
// not archives.
//
// Because a cell only moves when it is strictly cheaper, RecommendedSec
// <= BaselineSec always, and strictly less whenever any move exists —
// the property the predicttest harness pins.
func Replay(sys *iosim.System, r *analysis.Report) *ReplayOutcome {
	out := &ReplayOutcome{}
	layers := map[iosim.LayerKind]iosim.Layer{
		iosim.ParallelFS: sys.PFS,
		iosim.InSystem:   sys.InSystem,
	}
	for _, lr := range r.Layers {
		layer := layers[lr.Kind]
		for d := analysis.Read; d <= analysis.Write; d++ {
			hist := lr.Stats.TransferHist[d]
			if hist == nil {
				continue
			}
			for bi, n := range hist.Counts {
				if n == 0 {
					continue
				}
				bin := units.TransferBin(bi)
				base := costPerFile(layer, d, bin, lr.Kind)
				out.BaselineSec += base * float64(n)
				rec := base
				if lr.Kind == iosim.ParallelFS && bin < units.TransferOver1T {
					alt := costPerFile(sys.InSystem, d, bin, lr.Kind)
					if alt < moveMargin*base {
						rec = alt
						out.MovedFiles += n
						out.Moves = append(out.Moves, Move{
							Direction: d.String(),
							Bin:       bin.String(),
							Files:     n,
							From:      sys.PFS.Name(),
							To:        sys.InSystem.Name(),
							FromSec:   canon(base),
							ToSec:     canon(alt),
							GainSec:   canon((base - alt) * float64(n)),
						})
					}
				}
				out.RecommendedSec += rec * float64(n)
			}
		}
	}
	if out.BaselineSec > 0 {
		out.ImprovementFrac = canon((out.BaselineSec - out.RecommendedSec) / out.BaselineSec)
	}
	out.BaselineSec = canon(out.BaselineSec)
	out.RecommendedSec = canon(out.RecommendedSec)
	return out
}

// WithReplay attaches the closed-loop replay to the profile and returns
// it, for call sites that can name the system model.
func (p *Profile) WithReplay(sys *iosim.System, r *analysis.Report) *Profile {
	p.Replay = Replay(sys, r)
	return p
}

// dominantPFSBin finds the transfer bin holding the most PFS files
// (reads and writes combined) — the size the stripe suggestion targets.
func dominantPFSBin(r *analysis.Report) units.TransferBin {
	var counts [units.NumTransferBins]uint64
	for _, lr := range r.Layers {
		if lr.Kind != iosim.ParallelFS {
			continue
		}
		for d := analysis.Read; d <= analysis.Write; d++ {
			if h := lr.Stats.TransferHist[d]; h != nil {
				for i, n := range h.Counts {
					counts[i] += n
				}
			}
		}
	}
	best := units.TransferTo100M
	for b := units.TransferBin(1); b < units.NumTransferBins; b++ {
		if counts[b] > counts[best] {
			best = b
		}
	}
	return best
}

// stripesForBin maps a dominant transfer size to a stripe-count
// suggestion: one server per ~1 GiB of typical transfer, on the usual
// powers-of-two ladder.
func stripesForBin(b units.TransferBin) int {
	switch b {
	case units.TransferTo100M:
		return 1
	case units.TransferTo1G:
		return 4
	case units.TransferTo10G:
		return 8
	case units.TransferTo100G:
		return 16
	case units.TransferTo1T:
		return 32
	default:
		return 64
	}
}
