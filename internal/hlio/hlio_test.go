package hlio

import (
	"math/rand/v2"
	"strings"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func newLib(t *testing.T, opts Options) (*Library, *darshan.Runtime) {
	t.Helper()
	sys := systems.NewSummit()
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 1, UserID: 1, NProcs: 64, StartTime: 0, EndTime: 86400,
	})
	client := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(5, 5)))
	return New(client, sys, opts), rt
}

func TestPassThroughWithoutOptions(t *testing.T) {
	lib, rt := newLib(t, Options{})
	ds := lib.CreateDataset("raw", Persistent, false, 0)
	for i := 0; i < 10; i++ {
		ds.Write(int64(i)*4096, 4096)
	}
	ds.Close()
	log := rt.Finalize()
	rec := log.RecordsFor(darshan.ModulePOSIX)[0]
	if rec.Counters[darshan.PosixWrites] != 10 {
		t.Errorf("pass-through writes = %d, want 10 (no aggregation)", rec.Counters[darshan.PosixWrites])
	}
	st := lib.Stats()
	if st.AggregatedOps != 0 || st.AbsorbedRewriteBytes != 0 {
		t.Errorf("pass-through stats: %+v", st)
	}
}

func TestAggregationCoalescesSmallWrites(t *testing.T) {
	lib, rt := newLib(t, Options{AggregationBuffer: units.MiB})
	ds := lib.CreateDataset("agg", Persistent, false, 0)
	// 256 × 4 KiB = 1 MiB: exactly one flush.
	for i := 0; i < 256; i++ {
		ds.Write(int64(i)*4096, 4096)
	}
	ds.Close()
	log := rt.Finalize()
	rec := log.RecordsFor(darshan.ModulePOSIX)[0]
	if rec.Counters[darshan.PosixWrites] != 1 {
		t.Errorf("storage writes = %d, want 1 aggregated flush", rec.Counters[darshan.PosixWrites])
	}
	if rec.Counters[darshan.PosixBytesWritten] != 1<<20 {
		t.Errorf("bytes = %d, want 1 MiB", rec.Counters[darshan.PosixBytesWritten])
	}
	if lib.Stats().AggregatedOps != 256 {
		t.Errorf("aggregated ops = %d", lib.Stats().AggregatedOps)
	}
}

func TestAggregationIsFasterThanPassThrough(t *testing.T) {
	timeIt := func(opts Options) float64 {
		lib, _ := newLib(t, opts)
		ds := lib.CreateDataset("d", Persistent, false, 0)
		var total float64
		for i := 0; i < 512; i++ {
			total += ds.Write(int64(i)*8192, 8192)
		}
		total += ds.Close()
		return total
	}
	raw := timeIt(Options{})
	agg := timeIt(Options{AggregationBuffer: 4 * units.MiB})
	if agg >= raw/3 {
		t.Errorf("aggregation %v not ≫3× faster than raw %v (Recommendation 2)", agg, raw)
	}
}

func TestRewriteCacheAbsorbsOverwrites(t *testing.T) {
	lib, rt := newLib(t, Options{AggregationBuffer: 16 * units.MiB, RewriteCache: true})
	ds := lib.CreateDataset("ckpt", Persistent, false, 0)
	// Write the same 1 MiB region 8 times — dynamic data.
	for i := 0; i < 8; i++ {
		ds.Write(0, units.MiB)
	}
	ds.Close()
	log := rt.Finalize()
	rec := log.RecordsFor(darshan.ModulePOSIX)[0]
	if got := rec.Counters[darshan.PosixBytesWritten]; got != 1<<20 {
		t.Errorf("storage bytes = %d, want 1 MiB (7 MiB absorbed)", got)
	}
	if lib.Stats().AbsorbedRewriteBytes != 7<<20 {
		t.Errorf("absorbed = %d, want 7 MiB", lib.Stats().AbsorbedRewriteBytes)
	}
}

func TestRewriteCacheMergesOverlaps(t *testing.T) {
	lib, _ := newLib(t, Options{AggregationBuffer: 16 * units.MiB, RewriteCache: true})
	ds := lib.CreateDataset("ov", Persistent, false, 0)
	ds.Write(0, 1000)   // [0,1000): all new
	ds.Write(500, 1000) // [500,1500): 500 covered
	ds.Write(2000, 500) // [2000,2500): disjoint, all new
	ds.Write(0, 3000)   // [0,3000): covers [0,1500)+[2000,2500) = 2000
	st := lib.Stats()
	if st.AbsorbedRewriteBytes != 500+2000 {
		t.Errorf("absorbed = %d, want 2500", st.AbsorbedRewriteBytes)
	}
	ds.Close()
}

func TestAutoPlacementPutsScratchOnInSystem(t *testing.T) {
	lib, _ := newLib(t, Options{AutoPlacement: true})
	scratch := lib.CreateDataset("tmp", Scratch, false, 0)
	persist := lib.CreateDataset("results", Persistent, false, 0)
	if !strings.HasPrefix(scratch.Path(), "/mnt/bb") {
		t.Errorf("scratch path %q not on SCNL", scratch.Path())
	}
	if !strings.HasPrefix(persist.Path(), "/gpfs/alpine") {
		t.Errorf("persistent path %q not on PFS", persist.Path())
	}
	scratch.Close()
	persist.Close()
}

func TestScratchStaysOnPFSWithoutAutoPlacement(t *testing.T) {
	lib, _ := newLib(t, Options{})
	ds := lib.CreateDataset("tmp", Scratch, false, 0)
	if !strings.HasPrefix(ds.Path(), "/gpfs/alpine") {
		t.Errorf("without AutoPlacement scratch should stay on PFS, got %q", ds.Path())
	}
	ds.Close()
}

func TestCollectiveSharedDatasets(t *testing.T) {
	lib, rt := newLib(t, Options{Collective: true})
	ds := lib.CreateDataset("shared", Persistent, true, 0)
	ds.Write(0, 64*units.MiB)
	ds.Close()
	log := rt.Finalize()
	if n := len(log.RecordsFor(darshan.ModuleMPIIO)); n != 1 {
		t.Errorf("MPI-IO records = %d, want collective access", n)
	}
	recs := log.RecordsFor(darshan.ModuleMPIIO)
	if recs[0].Rank != darshan.SharedRank {
		t.Errorf("collective record rank = %d", recs[0].Rank)
	}
	if recs[0].Counters[darshan.MpiioCollWrites] != 1 {
		t.Errorf("collective writes = %d", recs[0].Counters[darshan.MpiioCollWrites])
	}
}

func TestReadsGoToStorage(t *testing.T) {
	lib, rt := newLib(t, Options{AggregationBuffer: units.MiB})
	ds := lib.CreateDataset("in", Persistent, false, 2)
	if dur := ds.Read(0, 8*units.MiB); dur <= 0 {
		t.Errorf("read duration = %v", dur)
	}
	ds.Close()
	rec := rt.Finalize().RecordsFor(darshan.ModulePOSIX)[0]
	if rec.Counters[darshan.PosixBytesRead] != 8<<20 {
		t.Errorf("read bytes = %d", rec.Counters[darshan.PosixBytesRead])
	}
}

func TestStatsAccounting(t *testing.T) {
	lib, _ := newLib(t, Options{AggregationBuffer: units.MiB, RewriteCache: true})
	ds := lib.CreateDataset("acct", Persistent, false, 0)
	ds.Write(0, 512*units.KiB)
	ds.Write(0, 512*units.KiB) // pure rewrite
	ds.Close()
	st := lib.Stats()
	if st.FlushedBytes != 512<<10 {
		t.Errorf("flushed bytes = %d, want 512 KiB", st.FlushedBytes)
	}
	if st.AbsorbedRewriteBytes != 512<<10 {
		t.Errorf("absorbed = %d, want 512 KiB", st.AbsorbedRewriteBytes)
	}
	if st.SimSeconds <= 0 {
		t.Errorf("sim seconds = %v", st.SimSeconds)
	}
}

func TestLibraryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil client", func() { New(nil, nil, Options{}) })
	lib, _ := newLib(t, Options{})
	mustPanic("empty name", func() { lib.CreateDataset("", Persistent, false, 0) })
	ds := lib.CreateDataset("dup", Persistent, false, 0)
	mustPanic("duplicate", func() { lib.CreateDataset("dup", Persistent, false, 0) })
	mustPanic("zero-size write", func() { ds.Write(0, 0) })
	ds.Close()
	mustPanic("write after close", func() { ds.Write(0, 100) })
	mustPanic("double close", func() { ds.Close() })
	// The name is free again after close.
	ds2 := lib.CreateDataset("dup", Persistent, false, 0)
	ds2.Close()
}
