// Package hlio is a high-level I/O middleware library in the spirit of HDF5
// or PnetCDF, built on the instrumented client. It exists to implement the
// optimizations the paper repeatedly asks middleware to provide, so their
// effect can be measured instead of hypothesized:
//
//   - write aggregation (Recommendation 2): small application writes are
//     absorbed into a buffer and flushed as large well-formed requests,
//     "seamlessly at the middleware level without imposing it on end users";
//   - rewrite caching and static/dynamic separation (Recommendation 4 and
//     the conclusions): overwrites of already-written ranges are absorbed
//     in memory and written once at close, sparing flash-backed layers the
//     write amplification;
//   - collective access (Recommendation 2): shared datasets move through
//     MPI-IO collective transfers;
//   - automatic placement (Recommendation 3): scratch datasets land on the
//     in-system layer without the application knowing the mount points.
//
// Every operation returns its modeled wall-clock cost in seconds, and the
// library reports what it saved, so the ablation benchmarks can quantify
// each knob.
package hlio

import (
	"fmt"
	"sort"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

// Options selects the middleware optimizations. The zero value disables all
// of them — every application call goes straight to the storage layer, which
// is how the paper's observed workloads behaved.
type Options struct {
	// AggregationBuffer, when positive, coalesces writes per dataset and
	// flushes them in buffer-sized requests.
	AggregationBuffer units.ByteSize
	// RewriteCache absorbs overwrites of already-buffered ranges so each
	// byte reaches storage once per flush epoch.
	RewriteCache bool
	// Collective routes shared-dataset transfers through MPI-IO collective
	// operations instead of independent POSIX calls.
	Collective bool
	// AutoPlacement puts datasets hinted as Scratch on the in-system layer.
	AutoPlacement bool
}

// Placement hints where a dataset's data lives.
type Placement int

// Placement hints.
const (
	// Persistent data lives on the parallel file system.
	Persistent Placement = iota
	// Scratch data may live on the in-system layer (with AutoPlacement).
	Scratch
)

// Library is one application's handle to the middleware. It is not safe for
// concurrent use, matching the single-logical-timeline client underneath.
type Library struct {
	client *iosim.Client
	sys    *iosim.System
	opts   Options

	// savings accounting
	absorbedBytes  int64 // write bytes never sent to storage (rewrites)
	aggregatedOps  int64 // application writes coalesced into flushes
	flushedOps     int64 // storage requests actually issued
	flushedBytes   int64
	totalSimSecs   float64
	openDatasets   map[string]*Dataset
	datasetCounter int
}

// New builds a Library on a client. The client's Darshan runtime observes
// every storage-level operation the middleware issues — so a campaign run
// through hlio produces logs whose counters show the *optimized* access
// pattern, exactly the effect Recommendation 2 predicts.
func New(client *iosim.Client, sys *iosim.System, opts Options) *Library {
	if client == nil || sys == nil {
		panic("hlio: nil client or system")
	}
	return &Library{
		client:       client,
		sys:          sys,
		opts:         opts,
		openDatasets: map[string]*Dataset{},
	}
}

// Stats reports what the middleware did on the application's behalf.
type Stats struct {
	// AbsorbedRewriteBytes never reached storage: they were overwritten in
	// the cache before a flush.
	AbsorbedRewriteBytes int64
	// AggregatedOps is how many application writes were coalesced.
	AggregatedOps int64
	// FlushedOps / FlushedBytes are the storage requests actually issued.
	FlushedOps   int64
	FlushedBytes int64
	// SimSeconds is the total modeled I/O time spent.
	SimSeconds float64
}

// Stats returns the library's running totals.
func (l *Library) Stats() Stats {
	return Stats{
		AbsorbedRewriteBytes: l.absorbedBytes,
		AggregatedOps:        l.aggregatedOps,
		FlushedOps:           l.flushedOps,
		FlushedBytes:         l.flushedBytes,
		SimSeconds:           l.totalSimSecs,
	}
}

// extent is a written byte range in the dataset's buffer.
type extent struct {
	off, end int64
}

// Dataset is one named array of bytes managed by the library.
type Dataset struct {
	lib    *Library
	name   string
	path   string
	shared bool
	rank   int32

	// Pending write state under aggregation.
	pending      []extent
	pendingBytes int64
	closed       bool
}

// CreateDataset opens a new dataset. Shared datasets are accessed by every
// rank of the job; rank selects the calling rank for private ones.
func (l *Library) CreateDataset(name string, placement Placement, shared bool, rank int32) *Dataset {
	if name == "" {
		panic("hlio: empty dataset name")
	}
	if _, exists := l.openDatasets[name]; exists {
		panic(fmt.Sprintf("hlio: dataset %q already open", name))
	}
	layer := l.sys.PFS
	if placement == Scratch && l.opts.AutoPlacement {
		layer = l.sys.InSystem
	}
	l.datasetCounter++
	ds := &Dataset{
		lib:    l,
		name:   name,
		path:   fmt.Sprintf("%s/hlio/ds%04d_%s.h5", layer.Mount(), l.datasetCounter, name),
		shared: shared,
		rank:   rank,
	}
	l.openDatasets[name] = ds

	iface := darshan.ModulePOSIX
	if shared && l.opts.Collective {
		iface = darshan.ModuleMPIIO
	}
	if shared {
		l.client.SharedOpen(iface, ds.path, iface == darshan.ModuleMPIIO)
	} else {
		l.client.Open(iface, ds.path, rank)
	}
	return ds
}

// Path returns the storage path the dataset landed on — tests and callers
// can check which layer AutoPlacement chose.
func (d *Dataset) Path() string { return d.path }

// Write stores size bytes at offset. Under aggregation the write lands in
// the buffer (deduplicated against already-pending ranges when the rewrite
// cache is on) and costs nothing until flush; otherwise it goes straight to
// storage. Returns the modeled seconds spent.
func (d *Dataset) Write(offset int64, size units.ByteSize) float64 {
	if d.closed {
		panic(fmt.Sprintf("hlio: write to closed dataset %q", d.name))
	}
	if size <= 0 {
		panic(fmt.Sprintf("hlio: write of %d bytes to %q", size, d.name))
	}
	l := d.lib
	if l.opts.AggregationBuffer <= 0 {
		// Pass-through: the un-optimized behavior the paper observed.
		dur := d.transfer(iosim.Write, size, offset)
		return dur
	}

	newBytes := int64(size)
	if l.opts.RewriteCache {
		newBytes = d.addExtent(offset, int64(size))
		l.absorbedBytes += int64(size) - newBytes
	} else {
		d.pending = append(d.pending, extent{offset, offset + int64(size)})
		d.pendingBytes += int64(size)
	}
	if l.opts.RewriteCache {
		d.pendingBytes += newBytes
	}
	l.aggregatedOps++

	var dur float64
	if d.pendingBytes >= int64(l.opts.AggregationBuffer) {
		dur = d.Flush()
	}
	return dur
}

// addExtent merges a write into the pending extent set and returns how many
// bytes were not already covered (the rest are absorbed rewrites).
func (d *Dataset) addExtent(off, size int64) int64 {
	end := off + size
	covered := int64(0)
	merged := make([]extent, 0, len(d.pending)+1)
	for _, e := range d.pending {
		if e.end < off || e.off > end {
			merged = append(merged, e)
			continue
		}
		// Overlap: count the covered span, widen the new extent.
		lo := max64(e.off, off)
		hi := min64(e.end, end)
		if hi > lo {
			covered += hi - lo
		}
		off = min64(off, e.off)
		end = max64(end, e.end)
	}
	merged = append(merged, extent{off, end})
	sort.Slice(merged, func(i, j int) bool { return merged[i].off < merged[j].off })
	d.pending = merged
	return size - covered
}

// Read fetches size bytes at offset, always from storage (the library does
// not model a read cache). Returns the modeled seconds spent.
func (d *Dataset) Read(offset int64, size units.ByteSize) float64 {
	if d.closed {
		panic(fmt.Sprintf("hlio: read from closed dataset %q", d.name))
	}
	return d.transfer(iosim.Read, size, offset)
}

// Flush writes all pending buffered data as large requests and clears the
// buffer. Returns the modeled seconds spent.
func (d *Dataset) Flush() float64 {
	l := d.lib
	if d.pendingBytes == 0 {
		return 0
	}
	var dur float64
	remaining := d.pendingBytes
	var off int64
	if len(d.pending) > 0 {
		off = d.pending[0].off
	}
	for remaining > 0 {
		chunk := int64(l.opts.AggregationBuffer)
		if chunk <= 0 || chunk > remaining {
			chunk = remaining
		}
		dur += d.transfer(iosim.Write, units.ByteSize(chunk), off)
		off += chunk
		remaining -= chunk
	}
	d.pending = nil
	d.pendingBytes = 0
	return dur
}

// transfer issues one storage-level request through the client.
func (d *Dataset) transfer(rw iosim.RW, size units.ByteSize, offset int64) float64 {
	l := d.lib
	iface := darshan.ModulePOSIX
	collective := false
	if d.shared && l.opts.Collective {
		iface = darshan.ModuleMPIIO
		collective = true
	}
	var dur float64
	if d.shared {
		dur = l.client.SharedTransfer(iface, d.path, rw, size, collective)
	} else if rw == iosim.Read {
		dur = l.client.Read(iface, d.path, d.rank, size, offset)
	} else {
		dur = l.client.Write(iface, d.path, d.rank, size, offset)
	}
	l.flushedOps++
	if rw == iosim.Write {
		l.flushedBytes += int64(size)
	}
	l.totalSimSecs += dur
	return dur
}

// Close flushes pending data and closes the dataset. Returns the modeled
// seconds spent. Closing twice panics — a double close is an application
// bug the real libraries also reject.
func (d *Dataset) Close() float64 {
	if d.closed {
		panic(fmt.Sprintf("hlio: double close of dataset %q", d.name))
	}
	dur := d.Flush()
	iface := darshan.ModulePOSIX
	if d.shared && d.lib.opts.Collective {
		iface = darshan.ModuleMPIIO
	}
	if d.shared {
		d.lib.client.SharedClose(iface, d.path)
	} else {
		d.lib.client.Close(iface, d.path, d.rank)
	}
	d.closed = true
	delete(d.lib.openDatasets, d.name)
	return dur
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
