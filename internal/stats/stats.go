// Package stats provides the small set of descriptive statistics the study
// needs: empirical quantiles, five-number boxplot summaries, binned
// histograms, and cumulative distribution functions over ordered bins.
//
// All functions are deterministic and allocate only what they return, so
// they are safe to call from concurrent analysis workers on disjoint data.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-th empirical quantile (0 ≤ q ≤ 1) of values using
// linear interpolation between closest ranks (the "R-7" rule used by most
// statistics packages). The input need not be sorted; it is not modified.
// Quantile panics if values is empty or q is outside [0, 1].
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the R-7 quantile of an ascending-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	// Convex combination rather than lo + frac*(hi-lo): the difference of
	// two finite float64s can overflow to ±Inf even when the interpolated
	// value is representable.
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number boxplot summary plus mean and count. It is the
// per-bin statistic behind the paper's Figures 11 and 12.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of values. It returns a zero Summary (N=0)
// for empty input, which callers should render as a missing boxplot — the
// paper's figures likewise omit boxes for empty size bins.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
	}
}

// String renders the summary as "n=… min=… q1=… med=… q3=… max=…".
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0 (empty)"
	}
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Histogram is a set of counts over a fixed number of ordered bins. The bin
// semantics (edges, labels) are owned by the caller; Histogram only tracks
// counts. The zero value of a Histogram with Counts pre-sized is not useful;
// construct with NewHistogram.
type Histogram struct {
	Counts []uint64
}

// NewHistogram returns a histogram with n zeroed bins. It panics if n <= 0.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram(%d): need at least one bin", n))
	}
	return &Histogram{Counts: make([]uint64, n)}
}

// Add increments bin i by delta. It panics on an out-of-range bin.
func (h *Histogram) Add(i int, delta uint64) {
	h.Counts[i] += delta
}

// Total returns the sum of all bin counts.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Merge adds other's counts into h. It panics if the bin counts differ —
// merging histograms over different bin taxonomies is always a bug.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.Counts) != len(other.Counts) {
		panic(fmt.Sprintf("stats: merging histograms with %d and %d bins",
			len(h.Counts), len(other.Counts)))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
}

// CDF returns the cumulative fraction (0–1) of mass at or below each bin,
// i.e. cdf[i] = sum(counts[0..i]) / total. An all-zero histogram yields an
// all-zero CDF rather than NaNs, so empty series render as flat lines.
func (h *Histogram) CDF() []float64 {
	cdf := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return cdf
	}
	var running uint64
	for i, c := range h.Counts {
		running += c
		cdf[i] = float64(running) / float64(total)
	}
	return cdf
}

// Fractions returns each bin's share (0–1) of the total. An all-zero
// histogram yields all-zero fractions.
func (h *Histogram) Fractions() []float64 {
	fr := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(total)
	}
	return fr
}
