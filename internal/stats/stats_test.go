package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestQuantileBasics(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
	}
	for _, c := range cases {
		if got := Quantile(v, c.q); !almostEqual(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	v := []float64{10, 20}
	if got := Quantile(v, 0.5); !almostEqual(got, 15) {
		t.Errorf("Quantile(0.5) = %v, want 15", got)
	}
	if got := Quantile([]float64{42}, 0.73); !almostEqual(got, 42) {
		t.Errorf("single-element quantile = %v, want 42", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Errorf("Quantile mutated input: %v", v)
	}
}

func TestQuantilePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { Quantile(nil, 0.5) })
	mustPanic("q<0", func() { Quantile([]float64{1}, -0.1) })
	mustPanic("q>1", func() { Quantile([]float64{1}, 1.1) })
	mustPanic("NaN", func() { Quantile([]float64{1}, math.NaN()) })
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("bad extremes: %+v", s)
	}
	if !almostEqual(s.Median, 3) || !almostEqual(s.Q1, 2) || !almostEqual(s.Q3, 4) {
		t.Errorf("bad quartiles: %+v", s)
	}
	if !almostEqual(s.Mean, 3) {
		t.Errorf("bad mean: %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("Summarize(nil).N = %d, want 0", s.N)
	}
	if s.String() != "n=0 (empty)" {
		t.Errorf("empty summary string = %q", s.String())
	}
}

// Property: a summary's order statistics are weakly ordered and bounded by
// the data extremes for arbitrary inputs.
func TestSummarizeOrderedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return Summarize(vals).N == 0
		}
		s := Summarize(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return s.N == len(vals) &&
			s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0, 1)
	h.Add(1, 2)
	h.Add(3, 7)
	if h.Total() != 10 {
		t.Errorf("Total = %d, want 10", h.Total())
	}
	cdf := h.CDF()
	want := []float64{0.1, 0.3, 0.3, 1.0}
	for i := range want {
		if !almostEqual(cdf[i], want[i]) {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	fr := h.Fractions()
	wantFr := []float64{0.1, 0.2, 0, 0.7}
	for i := range wantFr {
		if !almostEqual(fr[i], wantFr[i]) {
			t.Errorf("Fractions[%d] = %v, want %v", i, fr[i], wantFr[i])
		}
	}
}

func TestHistogramEmptyCDF(t *testing.T) {
	h := NewHistogram(3)
	for i, v := range h.CDF() {
		if v != 0 {
			t.Errorf("empty CDF[%d] = %v, want 0", i, v)
		}
	}
	for i, v := range h.Fractions() {
		if v != 0 {
			t.Errorf("empty Fractions[%d] = %v, want 0", i, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(3)
	b := NewHistogram(3)
	a.Add(0, 5)
	b.Add(0, 1)
	b.Add(2, 4)
	a.Merge(b)
	if a.Counts[0] != 6 || a.Counts[1] != 0 || a.Counts[2] != 4 {
		t.Errorf("merged counts = %v", a.Counts)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched merge")
		}
	}()
	NewHistogram(2).Merge(NewHistogram(3))
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NewHistogram(0)")
		}
	}()
	NewHistogram(0)
}

// Property: a CDF is monotone non-decreasing and ends at 1 for any non-empty
// histogram.
func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(12)
		h := NewHistogram(n)
		nonzero := false
		for i := 0; i < n; i++ {
			c := uint64(rng.IntN(100))
			h.Add(i, c)
			nonzero = nonzero || c > 0
		}
		cdf := h.CDF()
		prev := 0.0
		for i, v := range cdf {
			if v < prev {
				t.Fatalf("trial %d: CDF decreases at %d: %v", trial, i, cdf)
			}
			prev = v
		}
		if nonzero && !almostEqual(cdf[n-1], 1.0) {
			t.Fatalf("trial %d: CDF ends at %v, want 1", trial, cdf[n-1])
		}
	}
}
