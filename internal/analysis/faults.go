package analysis

import "sort"

// FaultReport summarizes a campaign's encounters with injected faults: how
// many operations failed or retried, the time lost to degraded windows, and
// request-duration tails split by fault state. All counters are exact
// integers and all quantiles come from sorted sample multisets, so the
// report is byte-identical at any worker count.
type FaultReport struct {
	// ScheduleSeed and Windows identify the injected schedule.
	ScheduleSeed uint64
	Windows      int
	// TransientErrorRate is the schedule's baseline per-operation error
	// rate outside explicit windows.
	TransientErrorRate float64

	// OpsFailed counts operations that exhausted their retries and moved
	// no data; OpsRetried counts operations needing at least one retry;
	// RetryAttempts counts individual re-attempts.
	OpsFailed     int64
	OpsRetried    int64
	RetryAttempts int64
	// DegradedOps and CleanOps count operations issued inside and outside
	// fault windows.
	DegradedOps int64
	CleanOps    int64
	// DegradedNanos is wall-clock spent on degraded operations;
	// TimeLostNanos estimates time lost to slowdown excess plus retries.
	DegradedNanos int64
	TimeLostNanos int64

	// JobFailures counts jobs whose generation failed outright (demoted
	// to a report entry instead of crashing the campaign); FailedJobs
	// lists the first few failed job indices in ascending order.
	JobFailures int64
	FailedJobs  []int

	// Degraded and Clean are per-request duration tails split by fault
	// state.
	Degraded DurationTail
	Clean    DurationTail
}

// DurationTail holds tail quantiles of a duration sample set, in seconds.
type DurationTail struct {
	N                  int64
	P50, P90, P99, Max float64
}

// DurationTailOf computes nearest-rank tail quantiles of samples. The input
// is treated as a multiset: it is copied and sorted, so the result does not
// depend on sample arrival order.
func DurationTailOf(samples []float64) DurationTail {
	var t DurationTail
	t.N = int64(len(samples))
	if len(samples) == 0 {
		return t
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(p * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	t.P50 = rank(0.50)
	t.P90 = rank(0.90)
	t.P99 = rank(0.99)
	t.Max = s[len(s)-1]
	return t
}
