package analysis

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

// stateLogs builds a varied mix of logs touching both layers, several
// interfaces, shared files, domains, and tuning signals — enough to
// populate every field a snapshot must carry.
func stateLogs(t *testing.T, sys *iosim.System) []*darshan.Log {
	t.Helper()
	var logs []*darshan.Log
	logs = append(logs, buildLog(t, sys, 100, 2048, "Physics", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/big.h5", 0, 3*units.MiB, 0)
		c.Write(darshan.ModuleSTDIO, "/gpfs/alpine/out.log", 0, 4096, 0)
	}))
	logs = append(logs, buildLog(t, sys, 101, 4, "Chemistry", func(c *iosim.Client) {
		c.Read(darshan.ModulePOSIX, "/gpfs/alpine/in.dat", 0, units.MiB, 0)
		c.Write(darshan.ModulePOSIX, "/mnt/bb/ck.0", 0, 2*units.MiB, 0)
	}))
	logs = append(logs, buildLog(t, sys, 102, 8, "", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/shared.h5", darshan.SharedRank, 8*units.MiB, 0)
	}))
	return logs
}

// TestStateRoundTrip checks the full snapshot path the campaign checkpoint
// relies on: State → gob → NewAggregatorFromState, then further logs folded
// into both the original and the restored aggregator, must yield reports
// that are deeply equal.
func TestStateRoundTrip(t *testing.T) {
	sys := systems.NewSummit()
	orig := NewAggregator(sys)
	logs := stateLogs(t, sys)
	orig.AddLog(logs[0])
	orig.AddLog(logs[1])

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig.State()); err != nil {
		t.Fatalf("encoding state: %v", err)
	}
	var st AggregatorState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatalf("decoding state: %v", err)
	}
	restored, err := NewAggregatorFromState(sys, &st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Both continue with the same remaining log.
	orig.AddLog(logs[2])
	restored.AddLog(logs[2])

	ra, rb := orig.Report(), restored.Report()
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("restored report differs:\n orig %+v\n rest %+v", ra, rb)
	}
}

// TestMergeStateRebuildsFromSegments models the durable lake's recovery
// path: each ingest's contribution is snapshotted as its own
// AggregatorState (a segment), gob round-tripped as the journaled segment
// files are, and an aggregator rebuilt by merging the segments in commit
// order must report exactly what the never-persisted aggregator reports.
func TestMergeStateRebuildsFromSegments(t *testing.T) {
	sys := systems.NewSummit()
	logs := stateLogs(t, sys)

	seq := NewAggregator(sys)
	for _, l := range logs {
		seq.AddLog(l)
	}

	// Segment 1 holds the first log, segment 2 the remaining two — the
	// shared-domain/shared-user overlap across segments is the point.
	seg1, seg2 := NewAggregator(sys), NewAggregator(sys)
	seg1.AddLog(logs[0])
	seg2.AddLog(logs[1])
	seg2.AddLog(logs[2])

	gobTrip := func(st *AggregatorState) *AggregatorState {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatalf("encoding segment: %v", err)
		}
		var out AggregatorState
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decoding segment: %v", err)
		}
		return &out
	}

	rebuilt, err := NewAggregatorFromState(sys, gobTrip(seg1.State()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.MergeState(gobTrip(seg2.State())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Report(), rebuilt.Report()) {
		t.Error("segment-rebuilt report differs from sequential fold")
	}

	// A foreign-system segment must be refused.
	alien := NewAggregator(systems.NewCori())
	if err := rebuilt.MergeState(alien.State()); err == nil {
		t.Error("merging a Cori segment into a Summit aggregator succeeded")
	}
}

// TestStateSnapshotIsolation checks a snapshot is unaffected by later
// AddLog calls on the source aggregator.
func TestStateSnapshotIsolation(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	logs := stateLogs(t, sys)
	a.AddLog(logs[0])
	st := a.State()
	before := st.Layers[0].Files
	a.AddLog(logs[1])
	a.AddLog(logs[2])
	if st.Layers[0].Files != before || st.Logs != 1 {
		t.Error("snapshot mutated by post-snapshot AddLog")
	}
	r1, err := NewAggregatorFromState(sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Report().Summary.Logs; got != 1 {
		t.Errorf("restored snapshot has %d logs, want 1", got)
	}
}

// TestStateSystemMismatch checks restore refuses a foreign snapshot.
func TestStateSystemMismatch(t *testing.T) {
	a := NewAggregator(systems.NewSummit())
	if _, err := NewAggregatorFromState(systems.NewCori(), a.State()); err == nil {
		t.Error("expected error restoring a Summit snapshot onto Cori")
	}
}
