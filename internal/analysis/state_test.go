package analysis

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

// stateLogs builds a varied mix of logs touching both layers, several
// interfaces, shared files, domains, and tuning signals — enough to
// populate every field a snapshot must carry.
func stateLogs(t *testing.T, sys *iosim.System) []*darshan.Log {
	t.Helper()
	var logs []*darshan.Log
	logs = append(logs, buildLog(t, sys, 100, 2048, "Physics", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/big.h5", 0, 3*units.MiB, 0)
		c.Write(darshan.ModuleSTDIO, "/gpfs/alpine/out.log", 0, 4096, 0)
	}))
	logs = append(logs, buildLog(t, sys, 101, 4, "Chemistry", func(c *iosim.Client) {
		c.Read(darshan.ModulePOSIX, "/gpfs/alpine/in.dat", 0, units.MiB, 0)
		c.Write(darshan.ModulePOSIX, "/mnt/bb/ck.0", 0, 2*units.MiB, 0)
	}))
	logs = append(logs, buildLog(t, sys, 102, 8, "", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/shared.h5", darshan.SharedRank, 8*units.MiB, 0)
	}))
	return logs
}

// TestStateRoundTrip checks the full snapshot path the campaign checkpoint
// relies on: State → gob → NewAggregatorFromState, then further logs folded
// into both the original and the restored aggregator, must yield reports
// that are deeply equal.
func TestStateRoundTrip(t *testing.T) {
	sys := systems.NewSummit()
	orig := NewAggregator(sys)
	logs := stateLogs(t, sys)
	orig.AddLog(logs[0])
	orig.AddLog(logs[1])

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig.State()); err != nil {
		t.Fatalf("encoding state: %v", err)
	}
	var st AggregatorState
	if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
		t.Fatalf("decoding state: %v", err)
	}
	restored, err := NewAggregatorFromState(sys, &st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Both continue with the same remaining log.
	orig.AddLog(logs[2])
	restored.AddLog(logs[2])

	ra, rb := orig.Report(), restored.Report()
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("restored report differs:\n orig %+v\n rest %+v", ra, rb)
	}
}

// TestStateSnapshotIsolation checks a snapshot is unaffected by later
// AddLog calls on the source aggregator.
func TestStateSnapshotIsolation(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	logs := stateLogs(t, sys)
	a.AddLog(logs[0])
	st := a.State()
	before := st.Layers[0].Files
	a.AddLog(logs[1])
	a.AddLog(logs[2])
	if st.Layers[0].Files != before || st.Logs != 1 {
		t.Error("snapshot mutated by post-snapshot AddLog")
	}
	r1, err := NewAggregatorFromState(sys, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Report().Summary.Logs; got != 1 {
		t.Errorf("restored snapshot has %d logs, want 1", got)
	}
}

// TestStateSystemMismatch checks restore refuses a foreign snapshot.
func TestStateSystemMismatch(t *testing.T) {
	a := NewAggregator(systems.NewSummit())
	if _, err := NewAggregatorFromState(systems.NewCori(), a.State()); err == nil {
		t.Error("expected error restoring a Summit snapshot onto Cori")
	}
}
