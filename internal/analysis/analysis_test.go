package analysis

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
	"iolayers/internal/workload"
)

// buildLog constructs a small hand-made log on the given system.
func buildLog(t *testing.T, sys *iosim.System, jobID uint64, nprocs int, domain string,
	build func(c *iosim.Client)) *darshan.Log {
	t.Helper()
	meta := map[string]string{}
	if domain != "" {
		meta["domain"] = domain
	}
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: jobID, UserID: 1, NProcs: nprocs,
		StartTime: 1000, EndTime: 4600, Metadata: meta,
	})
	c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(jobID, 1)))
	build(c)
	return rt.Finalize()
}

func TestSummaryCounts(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	// Two logs from the same job, one from another.
	for i, jid := range []uint64{10, 10, 11} {
		log := buildLog(t, sys, jid, 4, "Physics", func(c *iosim.Client) {
			c.Write(darshan.ModulePOSIX, "/gpfs/alpine/p/f"+string(rune('a'+i)), 0, units.MiB, 0)
		})
		a.AddLog(log)
	}
	r := a.Report()
	if r.Summary.Logs != 3 || r.Summary.Jobs != 2 || r.Summary.Files != 3 {
		t.Errorf("summary = %+v", r.Summary)
	}
	if r.Summary.NodeHours <= 0 {
		t.Error("node hours not accumulated")
	}
	if r.Summary.System != "Summit" {
		t.Errorf("system = %q", r.Summary.System)
	}
}

func TestLayerRoutingAndVolumes(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	log := buildLog(t, sys, 20, 2, "", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/p/pfs.dat", 0, 3*units.MiB, 0)
		c.Read(darshan.ModuleSTDIO, "/mnt/bb/u/local.log", 0, units.MiB, 0)
	})
	a.AddLog(log)
	r := a.Report()
	pfs, insys := r.Layers[0].Stats, r.Layers[1].Stats
	if pfs.Files != 1 || insys.Files != 1 {
		t.Fatalf("file counts: pfs=%d insys=%d", pfs.Files, insys.Files)
	}
	if pfs.Bytes[Write] != float64(3*units.MiB) || pfs.Bytes[Read] != 0 {
		t.Errorf("pfs bytes: %v", pfs.Bytes)
	}
	if insys.Bytes[Read] != float64(units.MiB) {
		t.Errorf("insys bytes: %v", insys.Bytes)
	}
}

func TestPosixPreferredAccounting(t *testing.T) {
	// An MPI-IO file must be accounted once, at the POSIX level, and
	// attributed to MPI-IO in the interface table.
	sys := systems.NewCori()
	a := NewAggregator(sys)
	log := buildLog(t, sys, 30, 4, "", func(c *iosim.Client) {
		c.Write(darshan.ModuleMPIIO, "/global/cscratch1/u/sim.nc", 0, 8*units.MiB, 0)
	})
	a.AddLog(log)
	r := a.Report()
	pfs := r.Layers[0].Stats
	if pfs.Files != 1 {
		t.Fatalf("files = %d, want 1 (MPI-IO + POSIX records are one file)", pfs.Files)
	}
	if pfs.Bytes[Write] != float64(8*units.MiB) {
		t.Errorf("bytes = %v, want one accounting of 8MiB", pfs.Bytes[Write])
	}
	if pfs.InterfaceFiles[darshan.ModuleMPIIO] != 1 || pfs.InterfaceFiles[darshan.ModulePOSIX] != 0 {
		t.Errorf("interface attribution: %v", pfs.InterfaceFiles)
	}
}

func TestClassification(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	log := buildLog(t, sys, 40, 2, "", func(c *iosim.Client) {
		c.Read(darshan.ModulePOSIX, "/gpfs/alpine/ro.dat", 0, units.KiB, 0)
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/wo.dat", 0, units.KiB, 0)
		c.Read(darshan.ModulePOSIX, "/gpfs/alpine/rw.dat", 0, units.KiB, 0)
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/rw.dat", 0, units.KiB, 0)
		c.Write(darshan.ModuleSTDIO, "/gpfs/alpine/so.log", 0, 100, 0)
	})
	a.AddLog(log)
	ls := a.Report().Layers[0].Stats
	if ls.ClassFiles[ReadOnly] != 1 || ls.ClassFiles[WriteOnly] != 2 || ls.ClassFiles[ReadWrite] != 1 {
		t.Errorf("classes: %v", ls.ClassFiles)
	}
	// STDIO-only classification sees just the .log file.
	if ls.StdioClassFiles[WriteOnly] != 1 || ls.StdioClassFiles[ReadOnly] != 0 {
		t.Errorf("stdio classes: %v", ls.StdioClassFiles)
	}
}

func TestHugeFileTails(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 50, NProcs: 1, StartTime: 0, EndTime: 10})
	rt.ObserveN(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/huge.bin",
		Rank: 0, Kind: darshan.OpRead, Size: 2 * units.GiB, Offset: 0, Start: 0, End: 5}, 600) // 1.17 TiB
	rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/small.bin",
		Rank: 0, Kind: darshan.OpWrite, Size: units.MiB, Offset: 0, Start: 6, End: 7})
	a.AddLog(rt.Finalize())
	ls := a.Report().Layers[0].Stats
	if ls.HugeFiles[Read] != 1 || ls.HugeFiles[Write] != 0 {
		t.Errorf("huge files: %v", ls.HugeFiles)
	}
	if got := ls.TransferHist[Read].Counts[units.TransferOver1T]; got != 1 {
		t.Errorf("1TB+ transfer bin count = %d", got)
	}
}

func TestExclusivity(t *testing.T) {
	sys := systems.NewCori()
	a := NewAggregator(sys)
	add := func(jid uint64, paths ...string) {
		log := buildLog(t, sys, jid, 2, "", func(c *iosim.Client) {
			for _, p := range paths {
				c.Write(darshan.ModulePOSIX, p, 0, units.KiB, 0)
			}
		})
		a.AddLog(log)
	}
	add(1, "/global/cscratch1/a")
	add(2, "/var/opt/cray/dws/b")
	add(3, "/global/cscratch1/c", "/var/opt/cray/dws/d")
	add(4) // empty job
	r := a.Report()
	e := r.Exclusivity
	if e.PFSOnly != 1 || e.InSystemOnly != 1 || e.Both != 1 || e.Untracked != 1 {
		t.Errorf("exclusivity: %+v", e)
	}
}

func TestRequestHistograms(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 60, NProcs: 2048, StartTime: 0, EndTime: 100})
	rt.ObserveN(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/f",
		Rank: 0, Kind: darshan.OpRead, Size: 50, Offset: 0, Start: 0, End: 1}, 10)
	rt.ObserveN(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/f",
		Rank: 0, Kind: darshan.OpRead, Size: 5 * units.KiB, Offset: 0, Start: 1, End: 2}, 30)
	a.AddLog(rt.Finalize())
	r := a.Report()
	h := r.Layers[0].Stats.RequestHist[Read]
	if h.Counts[units.Bin0To100] != 10 || h.Counts[units.Bin1KTo10K] != 30 {
		t.Errorf("request hist: %v", h.Counts)
	}
	// This was a >1024-proc job, so the large-job histogram matches.
	lh := r.Layers[0].Stats.LargeJobRequestHist[Read]
	if lh.Counts[units.Bin0To100] != 10 {
		t.Errorf("large-job hist missing: %v", lh.Counts)
	}
	cdf := r.RequestCDF(iosim.ParallelFS, Read, false)
	if cdf[units.Bin0To100] != 0.25 || cdf[units.Bin1GPlus] != 1.0 {
		t.Errorf("request CDF: %v", cdf)
	}
}

func TestSmallJobExcludedFromLargeHist(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 61, NProcs: 8, StartTime: 0, EndTime: 100})
	rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/f",
		Rank: 0, Kind: darshan.OpWrite, Size: 50, Offset: 0, Start: 0, End: 1})
	a.AddLog(rt.Finalize())
	lh := a.Report().Layers[0].Stats.LargeJobRequestHist[Write]
	if lh.Total() != 0 {
		t.Errorf("8-proc job leaked into large-job histogram: %v", lh.Counts)
	}
}

func TestSharedFilePerf(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	log := buildLog(t, sys, 70, 64, "", func(c *iosim.Client) {
		c.SharedTransfer(darshan.ModulePOSIX, "/gpfs/alpine/shared.h5", iosim.Read, 200*units.MiB, false)
		c.SharedTransfer(darshan.ModuleSTDIO, "/gpfs/alpine/shared.log", iosim.Read, 200*units.MiB, false)
		// Non-shared file must not contribute to perf.
		c.Read(darshan.ModulePOSIX, "/gpfs/alpine/private.dat", 3, 200*units.MiB, 0)
	})
	a.AddLog(log)
	r := a.Report()
	sums := r.PerfSummaries()
	var posixMedian, stdioMedian float64
	for _, s := range sums {
		if s.Layer != "Alpine" || s.Direction != Read || s.Bin != units.TransferTo1G {
			continue
		}
		switch s.Interface {
		case darshan.ModulePOSIX:
			posixMedian = s.Box.Median
		case darshan.ModuleSTDIO:
			stdioMedian = s.Box.Median
		}
	}
	if posixMedian == 0 || stdioMedian == 0 {
		t.Fatalf("missing perf cells: %+v", sums)
	}
	if posixMedian <= stdioMedian {
		t.Errorf("POSIX %v MB/s not above STDIO %v MB/s", posixMedian, stdioMedian)
	}
	// Exactly one sample per cell: the private file was excluded.
	total := 0
	for _, s := range sums {
		total += s.Box.N
	}
	if total != 2 {
		t.Errorf("perf samples = %d, want 2 (shared files only)", total)
	}
}

func TestDomainAttribution(t *testing.T) {
	sys := systems.NewCori()
	a := NewAggregator(sys)
	log := buildLog(t, sys, 80, 2, "Physics", func(c *iosim.Client) {
		c.Read(darshan.ModulePOSIX, "/var/opt/cray/dws/j/in.dat", 0, 10*units.MiB, 0)
		c.Write(darshan.ModuleSTDIO, "/global/cscratch1/u/out.log", 0, units.MiB, 0)
	})
	a.AddLog(log)
	// A second, uncovered job.
	a.AddLog(buildLog(t, sys, 81, 2, "", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/global/cscratch1/u/x", 0, units.KiB, 0)
	}))
	r := a.Report()
	if len(r.Domains) != 1 || r.Domains[0].Domain != "Physics" {
		t.Fatalf("domains: %+v", r.Domains)
	}
	d := r.Domains[0]
	if d.Jobs != 1 {
		t.Errorf("physics jobs = %d", d.Jobs)
	}
	if d.InSystemBytes[0] != float64(10*units.MiB) || d.InSystemBytes[1] != 0 {
		t.Errorf("in-system bytes: %v", d.InSystemBytes)
	}
	if d.StdioBytes[1] != float64(units.MiB) {
		t.Errorf("stdio bytes: %v", d.StdioBytes)
	}
	if r.DomainCoverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5", r.DomainCoverage)
	}
}

func TestStdioJobFraction(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	a.AddLog(buildLog(t, sys, 90, 1, "", func(c *iosim.Client) {
		c.Write(darshan.ModuleSTDIO, "/gpfs/alpine/a.log", 0, 100, 0)
	}))
	a.AddLog(buildLog(t, sys, 91, 1, "", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/b.dat", 0, 100, 0)
	}))
	if got := a.Report().StdioJobFraction; got != 0.5 {
		t.Errorf("stdio job fraction = %v, want 0.5", got)
	}
}

func TestMergeEquivalentToSequential(t *testing.T) {
	sys := systems.NewSummit()
	gen, err := workload.NewGenerator(workload.Summit(), sys,
		workload.Config{Seed: 21, JobScale: 0.0002, FileScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	seq := NewAggregator(sys)
	a1 := NewAggregator(sys)
	a2 := NewAggregator(sys)
	n := min(gen.Jobs(), 40)
	for i := 0; i < n; i++ {
		for _, log := range gen.GenerateJob(i) {
			seq.AddLog(log)
			if i%2 == 0 {
				a1.AddLog(log)
			} else {
				a2.AddLog(log)
			}
		}
	}
	a1.Merge(a2)
	rs, rm := seq.Report(), a1.Report()
	// Node-hours are floats whose summation order differs across merge
	// topologies; compare with a relative tolerance and the rest exactly.
	if diff := rs.Summary.NodeHours - rm.Summary.NodeHours; diff > 1e-6*rs.Summary.NodeHours ||
		-diff > 1e-6*rs.Summary.NodeHours {
		t.Errorf("node-hours differ: %v vs %v", rs.Summary.NodeHours, rm.Summary.NodeHours)
	}
	rs.Summary.NodeHours, rm.Summary.NodeHours = 0, 0
	if rs.Summary != rm.Summary {
		t.Errorf("summaries differ:\nseq %+v\nmrg %+v", rs.Summary, rm.Summary)
	}
	if rs.Exclusivity != rm.Exclusivity {
		t.Errorf("exclusivity differs: %+v vs %+v", rs.Exclusivity, rm.Exclusivity)
	}
	for li := 0; li < 2; li++ {
		s, m := rs.Layers[li].Stats, rm.Layers[li].Stats
		if s.Files != m.Files || s.Bytes != m.Bytes || s.HugeFiles != m.HugeFiles ||
			s.ClassFiles != m.ClassFiles || s.StdioClassFiles != m.StdioClassFiles {
			t.Errorf("layer %d stats differ", li)
		}
		for d := 0; d < 2; d++ {
			for b, c := range s.TransferHist[d].Counts {
				if m.TransferHist[d].Counts[b] != c {
					t.Errorf("layer %d transfer hist differs at %d/%d", li, d, b)
				}
			}
			for b, c := range s.RequestHist[d].Counts {
				if m.RequestHist[d].Counts[b] != c {
					t.Errorf("layer %d request hist differs at %d/%d", li, d, b)
				}
			}
		}
		for mod, n := range s.InterfaceFiles {
			if m.InterfaceFiles[mod] != n {
				t.Errorf("layer %d interface %v differs: %d vs %d", li, mod, n, m.InterfaceFiles[mod])
			}
		}
	}
}

func TestMergeDifferentSystemsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAggregator(systems.NewSummit()).Merge(NewAggregator(systems.NewCori()))
}

func TestAddLogPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewAggregator(systems.NewSummit()).AddLog(nil)
}

func TestTransferCDFMonotone(t *testing.T) {
	sys := systems.NewCori()
	gen, _ := workload.NewGenerator(workload.Cori(), sys,
		workload.Config{Seed: 23, JobScale: 0.0002, FileScale: 0.05})
	a := NewAggregator(sys)
	for i := 0; i < min(gen.Jobs(), 60); i++ {
		for _, log := range gen.GenerateJob(i) {
			a.AddLog(log)
		}
	}
	r := a.Report()
	for _, kind := range []iosim.LayerKind{iosim.ParallelFS, iosim.InSystem} {
		for _, d := range []Direction{Read, Write} {
			cdf := r.TransferCDF(kind, d)
			prev := 0.0
			for i, v := range cdf {
				if v < prev {
					t.Errorf("%v/%v CDF not monotone at %d: %v", kind, d, i, cdf)
				}
				prev = v
			}
		}
	}
}

func TestDirectionAndClassStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("direction strings")
	}
	if ReadOnly.String() != "read-only" || ReadWrite.String() != "read-write" ||
		WriteOnly.String() != "write-only" {
		t.Error("class strings")
	}
}
