// Package analysis is the darshan-util-equivalent aggregation pipeline: it
// consumes Darshan-format logs and computes every statistic the paper's
// evaluation reports — campaign summaries (Table 2), per-layer file counts
// and volumes (Table 3), >1 TB tail files (Table 4), per-job layer
// exclusivity (Table 5), per-layer interface usage (Table 6), per-file
// transfer-size CDFs (Figures 3 and 9), per-process request-size CDFs
// (Figures 4 and 5), file classification (Figures 6 and 8), science-domain
// attribution (Figures 7 and 10), and shared-file performance distributions
// (Figures 11 and 12).
//
// An Aggregator accumulates logs one at a time and is mergeable, so
// campaigns can be analyzed by parallel workers that each own a private
// Aggregator; merging preserves exact counts. Transfer accounting follows
// the paper's §3.1 convention: a file touched through MPI-IO or POSIX is
// accounted at the POSIX level (MPI-IO issues POSIX calls underneath);
// a file managed only by STDIO is accounted at the STDIO level.
package analysis

import (
	"fmt"
	"time"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

// Direction distinguishes read and write statistics.
type Direction int

// Directions.
const (
	Read Direction = iota
	Write
	numDirections
)

// String names the direction.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// layerIndex maps a LayerKind to a dense array index.
func layerIndex(k iosim.LayerKind) int {
	if k == iosim.ParallelFS {
		return 0
	}
	return 1
}

// Class is a file's read/write classification (§3.2.2).
type Class int

// File classes, in the order the paper's figures list them.
const (
	ReadOnly Class = iota
	ReadWrite
	WriteOnly
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	case WriteOnly:
		return "write-only"
	default:
		return "class(?)"
	}
}

// LayerStats accumulates the per-layer statistics behind Tables 3, 4, and 6
// and Figures 3, 4, 5, 6, 8, and 9.
type LayerStats struct {
	// Files is the number of files accounted on this layer (POSIX-preferred
	// accounting; an MPI-IO file counts once).
	Files int64
	// Bytes[d] is the total transferred volume per direction.
	Bytes [numDirections]float64
	// HugeFiles[d] counts files whose per-direction transfer exceeds 1 TB
	// (Table 4).
	HugeFiles [numDirections]int64
	// InterfaceFiles counts files per managing interface (Table 6): a file
	// with MPI-IO records counts as MPI-IO; otherwise POSIX or STDIO.
	InterfaceFiles map[darshan.ModuleID]int64
	// TransferHist[d] bins files by per-direction transfer size (Figure 3).
	TransferHist [numDirections]*stats.Histogram
	// InterfaceTransferHist[m][d] is the per-interface variant (Figure 9).
	InterfaceTransferHist map[darshan.ModuleID]*[numDirections]*stats.Histogram
	// RequestHist[d] sums the POSIX access-size histograms (Figure 4).
	RequestHist [numDirections]*stats.Histogram
	// LargeJobRequestHist[d] is RequestHist restricted to logs from jobs
	// with more than LargeJobProcs processes (Figure 5).
	LargeJobRequestHist [numDirections]*stats.Histogram
	// ClassFiles[c] classifies POSIX+STDIO files (Figure 6).
	ClassFiles [numClasses]int64
	// StdioClassFiles[c] classifies STDIO-only files (Figure 8).
	StdioClassFiles [numClasses]int64
	// Perf[m][d][bin] collects shared-file delivered bandwidth in MB/s for
	// interface m (POSIX or STDIO), direction d, per transfer-size bin
	// (Figures 11 and 12).
	Perf map[darshan.ModuleID]*[numDirections][units.NumTransferBins][]float64

	// IOTime[d] sums per-file read/write busy time in seconds — the
	// campaign's aggregate I/O cost, used by the what-if comparisons.
	IOTime [numDirections]float64

	// StdioXRequestHist[d] sums the extended-STDIO access-size histograms —
	// the process-level view of STDIO the paper's Recommendation 4 asks
	// for. Empty unless logs were produced with the STDIOX module enabled.
	StdioXRequestHist [numDirections]*stats.Histogram
	// StdioXRewriteBytes / StdioXUniqueBytes split STDIO write volume into
	// dynamic (rewritten) and static (written-once) data, the quantities
	// governing SSD write amplification on the in-system layers.
	StdioXRewriteBytes float64
	StdioXUniqueBytes  float64
}

func newLayerStats() *LayerStats {
	ls := &LayerStats{
		InterfaceFiles:        map[darshan.ModuleID]int64{},
		InterfaceTransferHist: map[darshan.ModuleID]*[numDirections]*stats.Histogram{},
		Perf:                  map[darshan.ModuleID]*[numDirections][units.NumTransferBins][]float64{},
	}
	for d := 0; d < int(numDirections); d++ {
		ls.TransferHist[d] = stats.NewHistogram(units.NumTransferBins)
		ls.RequestHist[d] = stats.NewHistogram(units.NumRequestBins)
		ls.LargeJobRequestHist[d] = stats.NewHistogram(units.NumRequestBins)
		ls.StdioXRequestHist[d] = stats.NewHistogram(units.NumRequestBins)
	}
	return ls
}

func (ls *LayerStats) interfaceHist(m darshan.ModuleID) *[numDirections]*stats.Histogram {
	h, ok := ls.InterfaceTransferHist[m]
	if !ok {
		h = &[numDirections]*stats.Histogram{}
		for d := 0; d < int(numDirections); d++ {
			h[d] = stats.NewHistogram(units.NumTransferBins)
		}
		ls.InterfaceTransferHist[m] = h
	}
	return h
}

func (ls *LayerStats) perfCell(m darshan.ModuleID) *[numDirections][units.NumTransferBins][]float64 {
	p, ok := ls.Perf[m]
	if !ok {
		p = &[numDirections][units.NumTransferBins][]float64{}
		ls.Perf[m] = p
	}
	return p
}

func (ls *LayerStats) merge(other *LayerStats) {
	ls.Files += other.Files
	for d := 0; d < int(numDirections); d++ {
		ls.Bytes[d] += other.Bytes[d]
		ls.HugeFiles[d] += other.HugeFiles[d]
		ls.TransferHist[d].Merge(other.TransferHist[d])
		ls.RequestHist[d].Merge(other.RequestHist[d])
		ls.LargeJobRequestHist[d].Merge(other.LargeJobRequestHist[d])
	}
	for m, n := range other.InterfaceFiles {
		ls.InterfaceFiles[m] += n
	}
	for m, oh := range other.InterfaceTransferHist {
		h := ls.interfaceHist(m)
		for d := 0; d < int(numDirections); d++ {
			h[d].Merge(oh[d])
		}
	}
	for c := 0; c < int(numClasses); c++ {
		ls.ClassFiles[c] += other.ClassFiles[c]
		ls.StdioClassFiles[c] += other.StdioClassFiles[c]
	}
	for d := 0; d < int(numDirections); d++ {
		ls.IOTime[d] += other.IOTime[d]
		ls.StdioXRequestHist[d].Merge(other.StdioXRequestHist[d])
	}
	ls.StdioXRewriteBytes += other.StdioXRewriteBytes
	ls.StdioXUniqueBytes += other.StdioXUniqueBytes
	for m, op := range other.Perf {
		p := ls.perfCell(m)
		for d := 0; d < int(numDirections); d++ {
			for b := 0; b < units.NumTransferBins; b++ {
				p[d][b] = append(p[d][b], op[d][b]...)
			}
		}
	}
}

// DomainStats accumulates per-science-domain volumes (Figures 7 and 10).
type DomainStats struct {
	// InSystemBytes[d] is the domain's in-system-layer volume (Figure 7).
	InSystemBytes [numDirections]float64
	// StdioBytes[d] is the domain's STDIO volume on any layer (Figure 10).
	StdioBytes [numDirections]float64
}

// jobView tracks everything needed per job for Tables 2 and 5 and §3.3.2.
type jobView struct {
	layers    [2]bool
	usedStdio bool
	domain    string
}

// Aggregator accumulates campaign statistics from logs. Not safe for
// concurrent use; give each worker its own Aggregator and Merge at the end.
type Aggregator struct {
	sys *iosim.System
	// LargeJobProcs is the process-count threshold above which a log's
	// requests feed the large-job histograms (the paper uses 1024).
	LargeJobProcs int

	logs      int64
	nodeHours float64
	jobs      map[uint64]*jobView
	tuning    map[uint64]*userTuning
	// monthly[m] holds per-calendar-month log counts and transferred bytes
	// — the "year in the life" seasonality view ([11], [19]).
	monthlyLogs  [12]int64
	monthlyBytes [12]float64
	// userBytes/userFiles accumulate per-user volumes and file counts — the
	// user-behavior view of Lim et al. [9].
	userBytes map[uint64]float64
	userFiles map[uint64]int64
	layers    [2]*LayerStats
	domains   map[string]*DomainStats
	// domainJobs counts jobs with/without a domain attribution, giving the
	// join coverage of §3.3.2.
	domainCovered, domainUncovered map[uint64]bool
}

// NewAggregator builds an aggregator for logs produced on sys.
func NewAggregator(sys *iosim.System) *Aggregator {
	if sys == nil {
		panic("analysis: nil system")
	}
	return &Aggregator{
		sys:             sys,
		LargeJobProcs:   1024,
		jobs:            map[uint64]*jobView{},
		tuning:          map[uint64]*userTuning{},
		userBytes:       map[uint64]float64{},
		userFiles:       map[uint64]int64{},
		layers:          [2]*LayerStats{newLayerStats(), newLayerStats()},
		domains:         map[string]*DomainStats{},
		domainCovered:   map[uint64]bool{},
		domainUncovered: map[uint64]bool{},
	}
}

// fileView gathers one file's records within one log.
type fileView struct {
	posix, mpiio, stdio *darshan.FileRecord
}

// AddLog folds one log into the aggregate.
func (a *Aggregator) AddLog(log *darshan.Log) {
	if log == nil {
		panic("analysis: nil log")
	}
	a.logs++
	a.nodeHours += log.Job.NodeHours(a.sys.ProcsPerNode)
	a.observeTuning(log)
	month := int(time.Unix(log.Job.StartTime, 0).UTC().Month()) - 1
	a.monthlyLogs[month]++

	jv, ok := a.jobs[log.Job.JobID]
	if !ok {
		jv = &jobView{}
		a.jobs[log.Job.JobID] = jv
	}

	domain := log.Job.Metadata["domain"]
	if domain != "" {
		a.domainCovered[log.Job.JobID] = true
		if jv.domain == "" {
			jv.domain = domain
		}
	} else {
		a.domainUncovered[log.Job.JobID] = true
	}
	var ds *DomainStats
	if domain != "" {
		ds, ok = a.domains[domain]
		if !ok {
			ds = &DomainStats{}
			a.domains[domain] = ds
		}
	}

	large := log.Job.NProcs > a.LargeJobProcs

	// Group records per file.
	files := map[darshan.RecordID]*fileView{}
	order := make([]darshan.RecordID, 0, len(log.Records))
	for _, rec := range log.Records {
		fv, ok := files[rec.Record]
		if !ok {
			fv = &fileView{}
			files[rec.Record] = fv
			order = append(order, rec.Record)
		}
		switch rec.Module {
		case darshan.ModulePOSIX:
			fv.posix = mergeRanks(fv.posix, rec)
		case darshan.ModuleMPIIO:
			fv.mpiio = mergeRanks(fv.mpiio, rec)
		case darshan.ModuleSTDIO:
			fv.stdio = mergeRanks(fv.stdio, rec)
		}
	}

	for _, id := range order {
		fv := files[id]
		if fv.posix == nil && fv.stdio == nil && fv.mpiio == nil {
			continue // Lustre-only entry
		}
		path := log.PathOf(id)
		if path == "" {
			continue // unresolvable record (truncated log)
		}
		layer := a.sys.LayerFor(path)
		li := layerIndex(layer.Kind())
		ls := a.layers[li]
		jv.layers[li] = true
		if fv.stdio != nil {
			jv.usedStdio = true
		}

		before := ls.Bytes[Read] + ls.Bytes[Write]
		a.accountFile(ls, ds, fv, layer.Kind(), large)
		moved := ls.Bytes[Read] + ls.Bytes[Write] - before
		a.monthlyBytes[month] += moved
		a.userBytes[log.Job.UserID] += moved
		a.userFiles[log.Job.UserID]++
	}

	// Extended-STDIO records, when present, feed the Recommendation 4
	// extension statistics.
	for _, rec := range log.RecordsFor(darshan.ModuleStdioX) {
		path := log.PathOf(rec.Record)
		if path == "" {
			continue
		}
		ls := a.layers[layerIndex(a.sys.LayerFor(path).Kind())]
		for b := 0; b < units.NumRequestBins; b++ {
			ls.StdioXRequestHist[Read].Add(b, uint64(rec.Counters[darshan.StdioXSizeRead0To100+b]))
			ls.StdioXRequestHist[Write].Add(b, uint64(rec.Counters[darshan.StdioXSizeWrite0To100+b]))
		}
		ls.StdioXRewriteBytes += float64(rec.Counters[darshan.StdioXRewriteBytes])
		ls.StdioXUniqueBytes += float64(rec.Counters[darshan.StdioXUniqueBytes])
	}

	// Request-size histograms come from the POSIX access-size counters of
	// every POSIX record, layer-routed (Figures 4 and 5).
	for _, rec := range log.RecordsFor(darshan.ModulePOSIX) {
		path := log.PathOf(rec.Record)
		if path == "" {
			continue
		}
		ls := a.layers[layerIndex(a.sys.LayerFor(path).Kind())]
		for b := 0; b < units.NumRequestBins; b++ {
			reads := uint64(rec.Counters[darshan.PosixSizeRead0To100+b])
			writes := uint64(rec.Counters[darshan.PosixSizeWrite0To100+b])
			ls.RequestHist[Read].Add(b, reads)
			ls.RequestHist[Write].Add(b, writes)
			if large {
				ls.LargeJobRequestHist[Read].Add(b, reads)
				ls.LargeJobRequestHist[Write].Add(b, writes)
			}
		}
	}
}

// mergeRanks combines multiple per-rank records of the same file and module
// into a byte-total view (partial rank sets are not reduced by the runtime;
// the analysis only needs totals).
func mergeRanks(acc, rec *darshan.FileRecord) *darshan.FileRecord {
	if acc == nil {
		return rec
	}
	merged := acc.Clone()
	for i, v := range rec.Counters {
		merged.Counters[i] += v
	}
	for i, v := range rec.FCounters {
		merged.FCounters[i] += v
	}
	// A merged partial-rank view is never a shared record.
	merged.Rank = 0
	return merged
}

// accountFile applies the paper's accounting rules to one file.
func (a *Aggregator) accountFile(ls *LayerStats, ds *DomainStats, fv *fileView,
	kind iosim.LayerKind, large bool) {

	// POSIX-preferred byte accounting (§3.1).
	var readB, writeB float64
	var readTime, writeTime float64
	var shared bool
	var perfIface darshan.ModuleID
	switch {
	case fv.posix != nil:
		readB = float64(fv.posix.Counters[darshan.PosixBytesRead])
		writeB = float64(fv.posix.Counters[darshan.PosixBytesWritten])
		readTime = fv.posix.FCounters[darshan.PosixFReadTime]
		writeTime = fv.posix.FCounters[darshan.PosixFWriteTime]
		shared = fv.posix.Rank == darshan.SharedRank
		perfIface = darshan.ModulePOSIX
	case fv.stdio != nil:
		readB = float64(fv.stdio.Counters[darshan.StdioBytesRead])
		writeB = float64(fv.stdio.Counters[darshan.StdioBytesWritten])
		readTime = fv.stdio.FCounters[darshan.StdioFReadTime]
		writeTime = fv.stdio.FCounters[darshan.StdioFWriteTime]
		shared = fv.stdio.Rank == darshan.SharedRank
		perfIface = darshan.ModuleSTDIO
	default:
		// MPI-IO record without a POSIX record underneath: account at the
		// MPI-IO level (does not occur with our runtime but may with
		// foreign logs).
		readB = float64(fv.mpiio.Counters[darshan.MpiioBytesRead])
		writeB = float64(fv.mpiio.Counters[darshan.MpiioBytesWritten])
		readTime = fv.mpiio.FCounters[darshan.MpiioFReadTime]
		writeTime = fv.mpiio.FCounters[darshan.MpiioFWriteTime]
		shared = fv.mpiio.Rank == darshan.SharedRank
		perfIface = darshan.ModuleMPIIO
	}

	ls.Files++
	ls.Bytes[Read] += readB
	ls.Bytes[Write] += writeB
	ls.IOTime[Read] += readTime
	ls.IOTime[Write] += writeTime

	// Interface attribution (Table 6): MPI-IO wins over its POSIX
	// substrate; STDIO files are those with STDIO records.
	var iface darshan.ModuleID
	switch {
	case fv.mpiio != nil:
		iface = darshan.ModuleMPIIO
	case fv.posix != nil:
		iface = darshan.ModulePOSIX
	default:
		iface = darshan.ModuleSTDIO
	}
	ls.InterfaceFiles[iface]++

	// Per-direction transfer bins and >1 TB tails.
	ih := ls.interfaceHist(iface)
	if readB > 0 {
		bin := units.TransferBinFor(units.ByteSize(readB))
		ls.TransferHist[Read].Add(int(bin), 1)
		ih[Read].Add(int(bin), 1)
		if units.ByteSize(readB) > units.TiB {
			ls.HugeFiles[Read]++
		}
	}
	if writeB > 0 {
		bin := units.TransferBinFor(units.ByteSize(writeB))
		ls.TransferHist[Write].Add(int(bin), 1)
		ih[Write].Add(int(bin), 1)
		if units.ByteSize(writeB) > units.TiB {
			ls.HugeFiles[Write]++
		}
	}

	// Classification (Figures 6 and 8).
	if readB > 0 || writeB > 0 {
		class := classify(readB, writeB)
		ls.ClassFiles[class]++
		if fv.posix == nil && fv.mpiio == nil && fv.stdio != nil {
			ls.StdioClassFiles[class]++
		}
	}

	// Domain attribution (Figures 7 and 10).
	if ds != nil {
		if kind == iosim.InSystem {
			ds.InSystemBytes[Read] += readB
			ds.InSystemBytes[Write] += writeB
		}
		if fv.stdio != nil {
			ds.StdioBytes[Read] += float64(fv.stdio.Counters[darshan.StdioBytesRead])
			ds.StdioBytes[Write] += float64(fv.stdio.Counters[darshan.StdioBytesWritten])
		}
	}

	// Shared-file performance (Figures 11 and 12): single-shared files only
	// (§3.4), POSIX and STDIO interfaces, MB/s per direction.
	if shared && (perfIface == darshan.ModulePOSIX || perfIface == darshan.ModuleSTDIO) {
		p := ls.perfCell(perfIface)
		if readB > 0 && readTime > 0 {
			bin := units.TransferBinFor(units.ByteSize(readB))
			p[Read][bin] = append(p[Read][bin], readB/readTime/1e6)
		}
		if writeB > 0 && writeTime > 0 {
			bin := units.TransferBinFor(units.ByteSize(writeB))
			p[Write][bin] = append(p[Write][bin], writeB/writeTime/1e6)
		}
	}
	_ = large
}

func classify(readB, writeB float64) Class {
	switch {
	case readB > 0 && writeB > 0:
		return ReadWrite
	case readB > 0:
		return ReadOnly
	default:
		return WriteOnly
	}
}

// Merge folds another aggregator (built over disjoint logs, same system)
// into this one.
func (a *Aggregator) Merge(other *Aggregator) {
	if other.sys.Name != a.sys.Name {
		panic(fmt.Sprintf("analysis: merging %s aggregator into %s", other.sys.Name, a.sys.Name))
	}
	a.logs += other.logs
	a.nodeHours += other.nodeHours
	for id, ov := range other.jobs {
		jv, ok := a.jobs[id]
		if !ok {
			a.jobs[id] = ov
			continue
		}
		jv.layers[0] = jv.layers[0] || ov.layers[0]
		jv.layers[1] = jv.layers[1] || ov.layers[1]
		jv.usedStdio = jv.usedStdio || ov.usedStdio
		if jv.domain == "" {
			jv.domain = ov.domain
		}
	}
	for i := range a.layers {
		a.layers[i].merge(other.layers[i])
	}
	for d, ods := range other.domains {
		ds, ok := a.domains[d]
		if !ok {
			a.domains[d] = ods
			continue
		}
		for dir := 0; dir < int(numDirections); dir++ {
			ds.InSystemBytes[dir] += ods.InSystemBytes[dir]
			ds.StdioBytes[dir] += ods.StdioBytes[dir]
		}
	}
	for id := range other.domainCovered {
		a.domainCovered[id] = true
	}
	for id := range other.domainUncovered {
		a.domainUncovered[id] = true
	}
	for m := 0; m < 12; m++ {
		a.monthlyLogs[m] += other.monthlyLogs[m]
		a.monthlyBytes[m] += other.monthlyBytes[m]
	}
	for uid, v := range other.userBytes {
		a.userBytes[uid] += v
	}
	for uid, n := range other.userFiles {
		a.userFiles[uid] += n
	}
	a.mergeTuning(other)
}
