// Package analysis is the darshan-util-equivalent aggregation pipeline: it
// consumes Darshan-format logs and computes every statistic the paper's
// evaluation reports — campaign summaries (Table 2), per-layer file counts
// and volumes (Table 3), >1 TB tail files (Table 4), per-job layer
// exclusivity (Table 5), per-layer interface usage (Table 6), per-file
// transfer-size CDFs (Figures 3 and 9), per-process request-size CDFs
// (Figures 4 and 5), file classification (Figures 6 and 8), science-domain
// attribution (Figures 7 and 10), and shared-file performance distributions
// (Figures 11 and 12).
//
// An Aggregator accumulates logs one at a time and is mergeable, so
// campaigns can be analyzed by parallel workers that each own a private
// Aggregator; merging preserves exact counts. Transfer accounting follows
// the paper's §3.1 convention: a file touched through MPI-IO or POSIX is
// accounted at the POSIX level (MPI-IO issues POSIX calls underneath);
// a file managed only by STDIO is accounted at the STDIO level.
package analysis

import (
	"fmt"
	"time"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

// Direction distinguishes read and write statistics.
type Direction int

// Directions.
const (
	Read Direction = iota
	Write
	numDirections
)

// String names the direction.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// layerIndex maps a LayerKind to a dense array index.
func layerIndex(k iosim.LayerKind) int {
	if k == iosim.ParallelFS {
		return 0
	}
	return 1
}

// Class is a file's read/write classification (§3.2.2).
type Class int

// File classes, in the order the paper's figures list them.
const (
	ReadOnly Class = iota
	ReadWrite
	WriteOnly
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	case WriteOnly:
		return "write-only"
	default:
		return "class(?)"
	}
}

// LayerStats accumulates the per-layer statistics behind Tables 3, 4, and 6
// and Figures 3, 4, 5, 6, 8, and 9.
type LayerStats struct {
	// Files is the number of files accounted on this layer (POSIX-preferred
	// accounting; an MPI-IO file counts once).
	Files int64
	// Bytes[d] is the total transferred volume per direction.
	Bytes [numDirections]float64
	// HugeFiles[d] counts files whose per-direction transfer exceeds 1 TB
	// (Table 4).
	HugeFiles [numDirections]int64
	// InterfaceFiles counts files per managing interface (Table 6): a file
	// with MPI-IO records counts as MPI-IO; otherwise POSIX or STDIO.
	InterfaceFiles map[darshan.ModuleID]int64
	// TransferHist[d] bins files by per-direction transfer size (Figure 3).
	TransferHist [numDirections]*stats.Histogram
	// InterfaceTransferHist[m][d] is the per-interface variant (Figure 9).
	InterfaceTransferHist map[darshan.ModuleID]*[numDirections]*stats.Histogram
	// RequestHist[d] sums the POSIX access-size histograms (Figure 4).
	RequestHist [numDirections]*stats.Histogram
	// LargeJobRequestHist[d] is RequestHist restricted to logs from jobs
	// with more than LargeJobProcs processes (Figure 5).
	LargeJobRequestHist [numDirections]*stats.Histogram
	// ClassFiles[c] classifies POSIX+STDIO files (Figure 6).
	ClassFiles [numClasses]int64
	// StdioClassFiles[c] classifies STDIO-only files (Figure 8).
	StdioClassFiles [numClasses]int64
	// Perf[m][d][bin] collects shared-file delivered bandwidth in MB/s for
	// interface m (POSIX or STDIO), direction d, per transfer-size bin
	// (Figures 11 and 12).
	Perf map[darshan.ModuleID]*[numDirections][units.NumTransferBins][]float64

	// IOTime[d] sums per-file read/write busy time in seconds — the
	// campaign's aggregate I/O cost, used by the what-if comparisons.
	IOTime [numDirections]float64

	// StdioXRequestHist[d] sums the extended-STDIO access-size histograms —
	// the process-level view of STDIO the paper's Recommendation 4 asks
	// for. Empty unless logs were produced with the STDIOX module enabled.
	StdioXRequestHist [numDirections]*stats.Histogram
	// StdioXRewriteBytes / StdioXUniqueBytes split STDIO write volume into
	// dynamic (rewritten) and static (written-once) data, the quantities
	// governing SSD write amplification on the in-system layers.
	StdioXRewriteBytes float64
	StdioXUniqueBytes  float64
}

func newLayerStats() *LayerStats {
	ls := &LayerStats{
		InterfaceFiles:        map[darshan.ModuleID]int64{},
		InterfaceTransferHist: map[darshan.ModuleID]*[numDirections]*stats.Histogram{},
		Perf:                  map[darshan.ModuleID]*[numDirections][units.NumTransferBins][]float64{},
	}
	for d := 0; d < int(numDirections); d++ {
		ls.TransferHist[d] = stats.NewHistogram(units.NumTransferBins)
		ls.RequestHist[d] = stats.NewHistogram(units.NumRequestBins)
		ls.LargeJobRequestHist[d] = stats.NewHistogram(units.NumRequestBins)
		ls.StdioXRequestHist[d] = stats.NewHistogram(units.NumRequestBins)
	}
	return ls
}

func (ls *LayerStats) interfaceHist(m darshan.ModuleID) *[numDirections]*stats.Histogram {
	h, ok := ls.InterfaceTransferHist[m]
	if !ok {
		h = &[numDirections]*stats.Histogram{}
		for d := 0; d < int(numDirections); d++ {
			h[d] = stats.NewHistogram(units.NumTransferBins)
		}
		ls.InterfaceTransferHist[m] = h
	}
	return h
}

func (ls *LayerStats) perfCell(m darshan.ModuleID) *[numDirections][units.NumTransferBins][]float64 {
	p, ok := ls.Perf[m]
	if !ok {
		p = &[numDirections][units.NumTransferBins][]float64{}
		ls.Perf[m] = p
	}
	return p
}

func (ls *LayerStats) merge(other *LayerStats) {
	ls.Files += other.Files
	for d := 0; d < int(numDirections); d++ {
		ls.Bytes[d] += other.Bytes[d]
		ls.HugeFiles[d] += other.HugeFiles[d]
		ls.TransferHist[d].Merge(other.TransferHist[d])
		ls.RequestHist[d].Merge(other.RequestHist[d])
		ls.LargeJobRequestHist[d].Merge(other.LargeJobRequestHist[d])
	}
	for m, n := range other.InterfaceFiles {
		ls.InterfaceFiles[m] += n
	}
	for m, oh := range other.InterfaceTransferHist {
		h := ls.interfaceHist(m)
		for d := 0; d < int(numDirections); d++ {
			h[d].Merge(oh[d])
		}
	}
	for c := 0; c < int(numClasses); c++ {
		ls.ClassFiles[c] += other.ClassFiles[c]
		ls.StdioClassFiles[c] += other.StdioClassFiles[c]
	}
	for d := 0; d < int(numDirections); d++ {
		ls.IOTime[d] += other.IOTime[d]
		ls.StdioXRequestHist[d].Merge(other.StdioXRequestHist[d])
	}
	ls.StdioXRewriteBytes += other.StdioXRewriteBytes
	ls.StdioXUniqueBytes += other.StdioXUniqueBytes
	for m, op := range other.Perf {
		p := ls.perfCell(m)
		for d := 0; d < int(numDirections); d++ {
			for b := 0; b < units.NumTransferBins; b++ {
				p[d][b] = append(p[d][b], op[d][b]...)
			}
		}
	}
}

// DomainStats accumulates per-science-domain volumes (Figures 7 and 10).
type DomainStats struct {
	// InSystemBytes[d] is the domain's in-system-layer volume (Figure 7).
	InSystemBytes [numDirections]float64
	// StdioBytes[d] is the domain's STDIO volume on any layer (Figure 10).
	StdioBytes [numDirections]float64
}

// jobView tracks everything needed per job for Tables 2 and 5 and §3.3.2.
type jobView struct {
	layers    [2]bool
	usedStdio bool
	domain    string
}

// Aggregator accumulates campaign statistics from logs. Not safe for
// concurrent use; give each worker its own Aggregator and Merge at the end.
type Aggregator struct {
	sys *iosim.System
	// LargeJobProcs is the process-count threshold above which a log's
	// requests feed the large-job histograms (the paper uses 1024).
	LargeJobProcs int

	logs      int64
	nodeHours float64
	jobs      map[uint64]*jobView
	tuning    map[uint64]*userTuning
	// monthly[m] holds per-calendar-month log counts and transferred bytes
	// — the "year in the life" seasonality view ([11], [19]).
	monthlyLogs  [12]int64
	monthlyBytes [12]float64
	// userBytes/userFiles accumulate per-user volumes and file counts — the
	// user-behavior view of Lim et al. [9].
	userBytes map[uint64]float64
	userFiles map[uint64]int64
	layers    [2]*LayerStats
	domains   map[string]*DomainStats
	// domainJobs counts jobs with/without a domain attribution, giving the
	// join coverage of §3.3.2.
	domainCovered, domainUncovered map[uint64]bool

	// Per-AddLog scratch, reused across calls so the per-file grouping pass
	// allocates nothing steady-state. Valid because Aggregator is
	// single-goroutine by contract.
	scratchIdx   map[darshan.RecordID]int32
	scratchOrder []darshan.RecordID
	scratchViews []fileView
}

// NewAggregator builds an aggregator for logs produced on sys.
func NewAggregator(sys *iosim.System) *Aggregator {
	if sys == nil {
		panic("analysis: nil system")
	}
	return &Aggregator{
		sys:             sys,
		LargeJobProcs:   1024,
		jobs:            map[uint64]*jobView{},
		tuning:          map[uint64]*userTuning{},
		userBytes:       map[uint64]float64{},
		userFiles:       map[uint64]int64{},
		layers:          [2]*LayerStats{newLayerStats(), newLayerStats()},
		domains:         map[string]*DomainStats{},
		domainCovered:   map[uint64]bool{},
		domainUncovered: map[uint64]bool{},
		scratchIdx:      map[darshan.RecordID]int32{},
	}
}

// TotalBytes returns the transferred volume folded in so far, summed over
// both layers and both directions. Exact while totals stay below 2^53 (the
// per-layer tallies are integer-valued float64 sums).
func (a *Aggregator) TotalBytes() float64 {
	var t float64
	for _, ls := range a.layers {
		for d := range ls.Bytes {
			t += ls.Bytes[d]
		}
	}
	return t
}

// modView folds the per-rank records of one (file, module) pair down to the
// few quantities the accounting rules consume — byte totals, busy time, and
// sharedness — without materializing a merged FileRecord (the old
// mergeRanks+Clone path allocated two counter slices per extra rank).
type modView struct {
	n             int   // records folded in
	rank          int32 // the single record's rank; 0 once ranks are merged
	readB, writeB int64
	readT, writeT float64
}

// add folds one record. A merged partial-rank view is never a shared
// record, so rank collapses to 0 on the second fold — matching the old
// mergeRanks semantics.
func (mv *modView) add(rec *darshan.FileRecord, cRead, cWrite, fRead, fWrite int) {
	mv.n++
	if mv.n == 1 {
		mv.rank = rec.Rank
	} else {
		mv.rank = 0
	}
	mv.readB += rec.Counters[cRead]
	mv.writeB += rec.Counters[cWrite]
	mv.readT += rec.FCounters[fRead]
	mv.writeT += rec.FCounters[fWrite]
}

func (mv *modView) present() bool { return mv.n > 0 }
func (mv *modView) shared() bool  { return mv.rank == darshan.SharedRank }

// fileView gathers one file's per-module accounting views within one log.
type fileView struct {
	posix, mpiio, stdio modView
}

// logContext carries the per-log state that the per-file fold consumes. It
// is produced by beginLog and threaded through foldFile — the shared spine
// of the row-oriented AddLog path and the columnar FoldBatch path, which
// must stay arithmetically identical (reports are byte-diffed across the
// two).
type logContext struct {
	jv     *jobView
	ds     *DomainStats
	month  int
	large  bool
	userID uint64
}

// beginLog folds one log's job-level statistics — log count, node-hours,
// seasonality, job view, domain attribution — and returns the context the
// per-file accounting needs.
func (a *Aggregator) beginLog(job darshan.JobHeader, domain string) logContext {
	a.logs++
	a.nodeHours += job.NodeHours(a.sys.ProcsPerNode)
	month := int(time.Unix(job.StartTime, 0).UTC().Month()) - 1
	a.monthlyLogs[month]++

	jv, ok := a.jobs[job.JobID]
	if !ok {
		jv = &jobView{}
		a.jobs[job.JobID] = jv
	}

	if domain != "" {
		a.domainCovered[job.JobID] = true
		if jv.domain == "" {
			jv.domain = domain
		}
	} else {
		a.domainUncovered[job.JobID] = true
	}
	var ds *DomainStats
	if domain != "" {
		ds, ok = a.domains[domain]
		if !ok {
			ds = &DomainStats{}
			a.domains[domain] = ds
		}
	}

	return logContext{
		jv:     jv,
		ds:     ds,
		month:  month,
		large:  job.NProcs > a.LargeJobProcs,
		userID: job.UserID,
	}
}

// foldFile folds one accounted file into the per-layer, per-job, per-month,
// and per-user statistics. The before/after volume delta is computed with
// the exact float operations both fold paths share, so the monthly and
// per-user tallies are bit-identical however the file arrived.
func (a *Aggregator) foldFile(lc logContext, fv *fileView, kind iosim.LayerKind) {
	li := layerIndex(kind)
	ls := a.layers[li]
	lc.jv.layers[li] = true
	if fv.stdio.present() {
		lc.jv.usedStdio = true
	}

	before := ls.Bytes[Read] + ls.Bytes[Write]
	a.accountFile(ls, lc.ds, fv, kind, lc.large)
	moved := ls.Bytes[Read] + ls.Bytes[Write] - before
	a.monthlyBytes[lc.month] += moved
	a.userBytes[lc.userID] += moved
	a.userFiles[lc.userID]++
}

// AddLog folds one log into the aggregate.
func (a *Aggregator) AddLog(log *darshan.Log) {
	if log == nil {
		panic("analysis: nil log")
	}
	lc := a.beginLog(log.Job, log.Job.Metadata["domain"])
	a.observeTuning(log)

	// Group records per file, into scratch reused across AddLog calls.
	clear(a.scratchIdx)
	order := a.scratchOrder[:0]
	views := a.scratchViews[:0]
	for _, rec := range log.Records {
		idx, ok := a.scratchIdx[rec.Record]
		if !ok {
			views = append(views, fileView{})
			idx = int32(len(views) - 1)
			a.scratchIdx[rec.Record] = idx
			order = append(order, rec.Record)
		}
		fv := &views[idx]
		switch rec.Module {
		case darshan.ModulePOSIX:
			fv.posix.add(rec, darshan.PosixBytesRead, darshan.PosixBytesWritten,
				darshan.PosixFReadTime, darshan.PosixFWriteTime)
		case darshan.ModuleMPIIO:
			fv.mpiio.add(rec, darshan.MpiioBytesRead, darshan.MpiioBytesWritten,
				darshan.MpiioFReadTime, darshan.MpiioFWriteTime)
		case darshan.ModuleSTDIO:
			fv.stdio.add(rec, darshan.StdioBytesRead, darshan.StdioBytesWritten,
				darshan.StdioFReadTime, darshan.StdioFWriteTime)
		}
	}
	a.scratchOrder = order
	a.scratchViews = views

	for i, id := range order {
		fv := &views[i]
		if !fv.posix.present() && !fv.stdio.present() && !fv.mpiio.present() {
			continue // Lustre-only entry
		}
		path := log.PathOf(id)
		if path == "" {
			continue // unresolvable record (truncated log)
		}
		a.foldFile(lc, fv, a.sys.LayerFor(path).Kind())
	}

	// Extended-STDIO records, when present, feed the Recommendation 4
	// extension statistics; POSIX records feed the request-size histograms
	// (Figures 4 and 5), layer-routed. One pass over log.Records, filtering
	// by module inline — RecordsFor would allocate a fresh slice per call.
	for _, rec := range log.Records {
		switch rec.Module {
		case darshan.ModuleStdioX:
			path := log.PathOf(rec.Record)
			if path == "" {
				continue
			}
			ls := a.layers[layerIndex(a.sys.LayerFor(path).Kind())]
			for b := 0; b < units.NumRequestBins; b++ {
				ls.StdioXRequestHist[Read].Add(b, uint64(rec.Counters[darshan.StdioXSizeRead0To100+b]))
				ls.StdioXRequestHist[Write].Add(b, uint64(rec.Counters[darshan.StdioXSizeWrite0To100+b]))
			}
			ls.StdioXRewriteBytes += float64(rec.Counters[darshan.StdioXRewriteBytes])
			ls.StdioXUniqueBytes += float64(rec.Counters[darshan.StdioXUniqueBytes])
		case darshan.ModulePOSIX:
			path := log.PathOf(rec.Record)
			if path == "" {
				continue
			}
			ls := a.layers[layerIndex(a.sys.LayerFor(path).Kind())]
			for b := 0; b < units.NumRequestBins; b++ {
				reads := uint64(rec.Counters[darshan.PosixSizeRead0To100+b])
				writes := uint64(rec.Counters[darshan.PosixSizeWrite0To100+b])
				ls.RequestHist[Read].Add(b, reads)
				ls.RequestHist[Write].Add(b, writes)
				if lc.large {
					ls.LargeJobRequestHist[Read].Add(b, reads)
					ls.LargeJobRequestHist[Write].Add(b, writes)
				}
			}
		}
	}
}

// accountFile applies the paper's accounting rules to one file.
func (a *Aggregator) accountFile(ls *LayerStats, ds *DomainStats, fv *fileView,
	kind iosim.LayerKind, large bool) {

	// POSIX-preferred byte accounting (§3.1).
	var acct *modView
	var perfIface darshan.ModuleID
	switch {
	case fv.posix.present():
		acct = &fv.posix
		perfIface = darshan.ModulePOSIX
	case fv.stdio.present():
		acct = &fv.stdio
		perfIface = darshan.ModuleSTDIO
	default:
		// MPI-IO record without a POSIX record underneath: account at the
		// MPI-IO level (does not occur with our runtime but may with
		// foreign logs).
		acct = &fv.mpiio
		perfIface = darshan.ModuleMPIIO
	}
	readB := float64(acct.readB)
	writeB := float64(acct.writeB)
	readTime := acct.readT
	writeTime := acct.writeT
	shared := acct.shared()

	ls.Files++
	ls.Bytes[Read] += readB
	ls.Bytes[Write] += writeB
	ls.IOTime[Read] += readTime
	ls.IOTime[Write] += writeTime

	// Interface attribution (Table 6): MPI-IO wins over its POSIX
	// substrate; STDIO files are those with STDIO records.
	var iface darshan.ModuleID
	switch {
	case fv.mpiio.present():
		iface = darshan.ModuleMPIIO
	case fv.posix.present():
		iface = darshan.ModulePOSIX
	default:
		iface = darshan.ModuleSTDIO
	}
	ls.InterfaceFiles[iface]++

	// Per-direction transfer bins and >1 TB tails.
	ih := ls.interfaceHist(iface)
	if readB > 0 {
		bin := units.TransferBinFor(units.ByteSize(readB))
		ls.TransferHist[Read].Add(int(bin), 1)
		ih[Read].Add(int(bin), 1)
		if units.ByteSize(readB) > units.TiB {
			ls.HugeFiles[Read]++
		}
	}
	if writeB > 0 {
		bin := units.TransferBinFor(units.ByteSize(writeB))
		ls.TransferHist[Write].Add(int(bin), 1)
		ih[Write].Add(int(bin), 1)
		if units.ByteSize(writeB) > units.TiB {
			ls.HugeFiles[Write]++
		}
	}

	// Classification (Figures 6 and 8).
	if readB > 0 || writeB > 0 {
		class := classify(readB, writeB)
		ls.ClassFiles[class]++
		if !fv.posix.present() && !fv.mpiio.present() && fv.stdio.present() {
			ls.StdioClassFiles[class]++
		}
	}

	// Domain attribution (Figures 7 and 10).
	if ds != nil {
		if kind == iosim.InSystem {
			ds.InSystemBytes[Read] += readB
			ds.InSystemBytes[Write] += writeB
		}
		if fv.stdio.present() {
			ds.StdioBytes[Read] += float64(fv.stdio.readB)
			ds.StdioBytes[Write] += float64(fv.stdio.writeB)
		}
	}

	// Shared-file performance (Figures 11 and 12): single-shared files only
	// (§3.4), POSIX and STDIO interfaces, MB/s per direction.
	if shared && (perfIface == darshan.ModulePOSIX || perfIface == darshan.ModuleSTDIO) {
		p := ls.perfCell(perfIface)
		if readB > 0 && readTime > 0 {
			bin := units.TransferBinFor(units.ByteSize(readB))
			p[Read][bin] = append(p[Read][bin], readB/readTime/1e6)
		}
		if writeB > 0 && writeTime > 0 {
			bin := units.TransferBinFor(units.ByteSize(writeB))
			p[Write][bin] = append(p[Write][bin], writeB/writeTime/1e6)
		}
	}
	_ = large
}

func classify(readB, writeB float64) Class {
	switch {
	case readB > 0 && writeB > 0:
		return ReadWrite
	case readB > 0:
		return ReadOnly
	default:
		return WriteOnly
	}
}

// Merge folds another aggregator (built over disjoint logs, same system)
// into this one.
func (a *Aggregator) Merge(other *Aggregator) {
	if other.sys.Name != a.sys.Name {
		panic(fmt.Sprintf("analysis: merging %s aggregator into %s", other.sys.Name, a.sys.Name))
	}
	a.logs += other.logs
	a.nodeHours += other.nodeHours
	for id, ov := range other.jobs {
		jv, ok := a.jobs[id]
		if !ok {
			a.jobs[id] = ov
			continue
		}
		jv.layers[0] = jv.layers[0] || ov.layers[0]
		jv.layers[1] = jv.layers[1] || ov.layers[1]
		jv.usedStdio = jv.usedStdio || ov.usedStdio
		if jv.domain == "" {
			jv.domain = ov.domain
		}
	}
	for i := range a.layers {
		a.layers[i].merge(other.layers[i])
	}
	for d, ods := range other.domains {
		ds, ok := a.domains[d]
		if !ok {
			a.domains[d] = ods
			continue
		}
		for dir := 0; dir < int(numDirections); dir++ {
			ds.InSystemBytes[dir] += ods.InSystemBytes[dir]
			ds.StdioBytes[dir] += ods.StdioBytes[dir]
		}
	}
	for id := range other.domainCovered {
		a.domainCovered[id] = true
	}
	for id := range other.domainUncovered {
		a.domainUncovered[id] = true
	}
	for m := 0; m < 12; m++ {
		a.monthlyLogs[m] += other.monthlyLogs[m]
		a.monthlyBytes[m] += other.monthlyBytes[m]
	}
	for uid, v := range other.userBytes {
		a.userBytes[uid] += v
	}
	for uid, n := range other.userFiles {
		a.userFiles[uid] += n
	}
	a.mergeTuning(other)
}
