package analysis

import (
	"sort"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

// Summary reproduces Table 2's per-system row.
type Summary struct {
	System    string
	Logs      int64
	Jobs      int64
	Files     int64
	NodeHours float64
}

// Exclusivity reproduces Table 5's per-system row.
type Exclusivity struct {
	InSystemOnly int64
	Both         int64
	PFSOnly      int64
	// Untracked counts jobs whose logs contained no file records at all;
	// the paper's Table 5 likewise sums to fewer jobs than Table 2.
	Untracked int64
}

// LayerReport is the per-layer slice of the final report.
type LayerReport struct {
	// Layer is the layer's display name (e.g. "Alpine", "SCNL").
	Layer string
	// Kind is PFS or in-system.
	Kind iosim.LayerKind
	// Stats is the full per-layer aggregate.
	Stats *LayerStats
}

// PerfSummary is one boxplot of Figures 11–12: delivered MB/s for one
// (layer, interface, direction, transfer bin) cell.
type PerfSummary struct {
	Layer     string
	Interface darshan.ModuleID
	Direction Direction
	Bin       units.TransferBin
	Box       stats.Summary
}

// DomainReport is one domain's row of Figures 7 and 10.
type DomainReport struct {
	Domain        string
	Jobs          int64
	InSystemBytes [2]float64 // read, write (Figure 7)
	StdioBytes    [2]float64 // read, write (Figure 10)
}

// Report is the complete analysis output for one campaign.
type Report struct {
	Summary Summary
	// Layers lists the PFS first, then the in-system layer.
	Layers [2]LayerReport
	// Exclusivity is the Table 5 row.
	Exclusivity Exclusivity
	// Domains is sorted by name.
	Domains []DomainReport
	// DomainCoverage is the fraction of jobs joinable to a science domain
	// (§3.3.2 reports 90.02% on Cori).
	DomainCoverage float64
	// StdioJobFraction is the fraction of jobs that used STDIO at all
	// (§3.3.2 reports over 62% on Summit).
	StdioJobFraction float64
	// Tuning answers the paper's §5 future-work question: how many users
	// show evidence of tuning their I/O in later executions.
	Tuning TuningAdoption
	// MonthlyLogs and MonthlyBytes are per-calendar-month activity series
	// (January first) — the temporal dimension of [11] and [19].
	MonthlyLogs  [12]int64
	MonthlyBytes [12]float64
	// TopUsers lists the heaviest users by transferred volume, and
	// UserVolumeTop10Share the fraction of all traffic they move — the
	// concentration Lim et al. [9] report on production file systems.
	TopUsers             []UserReport
	UserVolumeTop10Share float64
	// Faults summarizes injected-fault impact; nil when the campaign ran
	// without a fault schedule and saw no job failures.
	Faults *FaultReport
}

// UserReport is one user's row in the top-users view.
type UserReport struct {
	UserID uint64
	Bytes  float64
	Files  int64
}

// Report derives the final report. The aggregator remains usable; Report
// may be called repeatedly as logs accumulate.
func (a *Aggregator) Report() *Report {
	r := &Report{}
	r.Summary = Summary{
		System:    a.sys.Name,
		Logs:      a.logs,
		Jobs:      int64(len(a.jobs)),
		Files:     a.layers[0].Files + a.layers[1].Files,
		NodeHours: a.nodeHours,
	}
	r.Layers[0] = LayerReport{Layer: a.sys.PFS.Name(), Kind: iosim.ParallelFS, Stats: a.layers[0]}
	r.Layers[1] = LayerReport{Layer: a.sys.InSystem.Name(), Kind: iosim.InSystem, Stats: a.layers[1]}

	stdioJobs := int64(0)
	domainJobs := map[string]int64{}
	for _, jv := range a.jobs {
		if jv.domain != "" {
			domainJobs[jv.domain]++
		}
		switch {
		case jv.layers[0] && jv.layers[1]:
			r.Exclusivity.Both++
		case jv.layers[0]:
			r.Exclusivity.PFSOnly++
		case jv.layers[1]:
			r.Exclusivity.InSystemOnly++
		default:
			r.Exclusivity.Untracked++
		}
		if jv.usedStdio {
			stdioJobs++
		}
	}
	if len(a.jobs) > 0 {
		r.StdioJobFraction = float64(stdioJobs) / float64(len(a.jobs))
	}

	names := make([]string, 0, len(a.domains))
	for d := range a.domains {
		names = append(names, d)
	}
	sort.Strings(names)
	for _, d := range names {
		ds := a.domains[d]
		r.Domains = append(r.Domains, DomainReport{
			Domain:        d,
			Jobs:          domainJobs[d],
			InSystemBytes: [2]float64{ds.InSystemBytes[Read], ds.InSystemBytes[Write]},
			StdioBytes:    [2]float64{ds.StdioBytes[Read], ds.StdioBytes[Write]},
		})
	}

	r.Tuning = a.tuningAdoption()
	r.MonthlyLogs = a.monthlyLogs
	r.MonthlyBytes = a.monthlyBytes

	users := make([]UserReport, 0, len(a.userBytes))
	var totalUserBytes float64
	for uid, v := range a.userBytes {
		users = append(users, UserReport{UserID: uid, Bytes: v, Files: a.userFiles[uid]})
		totalUserBytes += v
	}
	sort.Slice(users, func(i, j int) bool {
		if users[i].Bytes != users[j].Bytes {
			return users[i].Bytes > users[j].Bytes
		}
		return users[i].UserID < users[j].UserID
	})
	var top10 float64
	for i, u := range users {
		if i >= 10 {
			break
		}
		top10 += u.Bytes
	}
	if totalUserBytes > 0 {
		r.UserVolumeTop10Share = top10 / totalUserBytes
	}
	if len(users) > 10 {
		users = users[:10]
	}
	r.TopUsers = users

	covered := int64(len(a.domainCovered))
	total := covered
	for id := range a.domainUncovered {
		if !a.domainCovered[id] {
			total++
		}
	}
	if total > 0 {
		r.DomainCoverage = float64(covered) / float64(total)
	}
	return r
}

// PerfSummaries derives the Figure 11/12 boxplots from the report: one
// summary per non-empty (layer, interface, direction, bin) cell, in a
// stable order.
func (r *Report) PerfSummaries() []PerfSummary {
	var out []PerfSummary
	for _, lr := range r.Layers {
		for _, m := range []darshan.ModuleID{darshan.ModulePOSIX, darshan.ModuleSTDIO} {
			cell, ok := lr.Stats.Perf[m]
			if !ok {
				continue
			}
			for d := 0; d < int(numDirections); d++ {
				for b := 0; b < units.NumTransferBins; b++ {
					vals := cell[d][b]
					if len(vals) == 0 {
						continue
					}
					out = append(out, PerfSummary{
						Layer:     lr.Layer,
						Interface: m,
						Direction: Direction(d),
						Bin:       units.TransferBin(b),
						Box:       stats.Summarize(vals),
					})
				}
			}
		}
	}
	return out
}

// TransferCDF returns Figure 3's series for one layer and direction: the
// cumulative fraction of files at or below each transfer bin.
func (r *Report) TransferCDF(kind iosim.LayerKind, d Direction) []float64 {
	return r.Layers[layerIndex(kind)].Stats.TransferHist[d].CDF()
}

// RequestCDF returns Figure 4's series for one layer and direction; with
// largeOnly it returns Figure 5's variant.
func (r *Report) RequestCDF(kind iosim.LayerKind, d Direction, largeOnly bool) []float64 {
	ls := r.Layers[layerIndex(kind)].Stats
	if largeOnly {
		return ls.LargeJobRequestHist[d].CDF()
	}
	return ls.RequestHist[d].CDF()
}

// InterfaceTransferCDF returns Figure 9's series: the per-interface
// transfer-size CDF for one layer and direction, or nil if the interface
// never appeared on the layer.
func (r *Report) InterfaceTransferCDF(kind iosim.LayerKind, m darshan.ModuleID, d Direction) []float64 {
	h, ok := r.Layers[layerIndex(kind)].Stats.InterfaceTransferHist[m]
	if !ok {
		return nil
	}
	return h[d].CDF()
}
