package analysis

import (
	"fmt"
	"sync"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	for i := 0; i < 5; i++ {
		a.AddLog(buildLog(t, sys, uint64(100+i), 8, "Physics", func(c *iosim.Client) {
			c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/p/f%d", i), 0, units.MiB, 0)
			c.Read(darshan.ModuleSTDIO, "/mnt/bb/p/scratch.log", 0, 64*units.KiB, 0)
		}))
	}
	clone := a.Clone()
	if clone.SystemName() != a.SystemName() {
		t.Fatalf("clone system = %q, want %q", clone.SystemName(), a.SystemName())
	}
	before := report2string(t, a)
	if got := report2string(t, clone); got != before {
		t.Error("clone renders a different report than its source")
	}

	// Diverge the clone; the source must not move.
	clone.AddLog(buildLog(t, sys, 999, 4, "Biology", func(c *iosim.Client) {
		c.Write(darshan.ModulePOSIX, "/gpfs/alpine/b/new.h5", 0, 10*units.MiB, 0)
	}))
	if got := report2string(t, a); got != before {
		t.Error("mutating the clone altered the source aggregator")
	}
	if clone.Logs() != a.Logs()+1 {
		t.Errorf("clone logs = %d, source = %d", clone.Logs(), a.Logs())
	}
}

// TestConcurrentCloneMergeAndRead exercises the copy-on-write discipline
// ioserved relies on: readers render reports from a frozen aggregator while
// a writer clones it, folds new logs into the clone, and publishes the
// clone — all concurrently. Run under -race this proves snapshot reads
// never share mutable state with the in-progress merge.
func TestConcurrentCloneMergeAndRead(t *testing.T) {
	sys := systems.NewSummit()
	base := NewAggregator(sys)
	for i := 0; i < 3; i++ {
		base.AddLog(buildLog(t, sys, uint64(i+1), 8, "Physics", func(c *iosim.Client) {
			c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/p/base%d", i), 0, units.MiB, 0)
		}))
	}

	const readers = 8
	const generations = 4
	var frozen sync.Map // generation counter → *Aggregator, published frozen
	frozen.Store(0, base)
	latest := func() *Aggregator {
		var a *Aggregator
		frozen.Range(func(_, v any) bool { a = v.(*Aggregator); return true })
		return a
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := latest().Report()
				if rep.Summary.Logs == 0 {
					t.Error("reader saw an empty report")
					return
				}
			}
		}()
	}

	// Writer: clone → fold → publish, never touching a published aggregator.
	cur := base
	for g := 1; g <= generations; g++ {
		next := cur.Clone()
		for i := 0; i < 3; i++ {
			next.AddLog(buildLog(t, sys, uint64(100*g+i), 8, "Chemistry", func(c *iosim.Client) {
				c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/c/g%d_%d", g, i), 0, units.MiB, 0)
			}))
		}
		// Merge path too: fold a worker-private aggregator into the clone,
		// as a parallel ingest pass would.
		worker := NewAggregator(sys)
		worker.AddLog(buildLog(t, sys, uint64(1000+g), 4, "Physics", func(c *iosim.Client) {
			c.Read(darshan.ModulePOSIX, "/gpfs/alpine/p/shared.h5", 0, units.MiB, 0)
		}))
		next.Merge(worker)
		frozen.Store(g, next)
		cur = next
	}
	close(stop)
	wg.Wait()

	if want := int64(3 + generations*4); cur.Logs() != want {
		t.Errorf("final generation has %d logs, want %d", cur.Logs(), want)
	}
}

func report2string(t *testing.T, a *Aggregator) string {
	t.Helper()
	r := a.Report()
	return fmt.Sprintf("%+v|%+v|%v|%v", r.Summary, r.Exclusivity, r.MonthlyLogs, len(r.Domains))
}
