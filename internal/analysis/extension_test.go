package analysis

import (
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestStdioXFeedsExtensionStats(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 1, NProcs: 1, StartTime: 0, EndTime: 100})
	rt.EnableExtendedStdio()
	// 3 writes of 4 KiB, the second a rewrite; on the in-system layer.
	p := "/mnt/bb/u/out.rst"
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: p, Rank: 0,
		Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 0, End: 0.1})
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: p, Rank: 0,
		Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 0.2, End: 0.3})
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: p, Rank: 0,
		Kind: darshan.OpRead, Size: 100, Offset: 0, Start: 0.4, End: 0.5})
	a.AddLog(rt.Finalize())

	ls := a.Report().Layers[1].Stats // in-system layer
	if got := ls.StdioXRequestHist[Write].Counts[units.Bin1KTo10K]; got != 2 {
		t.Errorf("write hist bin 1K_10K = %d, want 2", got)
	}
	if got := ls.StdioXRequestHist[Read].Counts[units.Bin0To100]; got != 1 {
		t.Errorf("read hist bin 0_100 = %d, want 1", got)
	}
	if ls.StdioXRewriteBytes != 4096 || ls.StdioXUniqueBytes != 4096 {
		t.Errorf("rewrite/unique = %v/%v, want 4096/4096",
			ls.StdioXRewriteBytes, ls.StdioXUniqueBytes)
	}
	// The extension must not leak into the baseline statistics: the file is
	// still one STDIO file with its plain counters.
	if ls.Files != 1 || ls.InterfaceFiles[darshan.ModuleSTDIO] != 1 {
		t.Errorf("baseline stats disturbed: files=%d ifaces=%v", ls.Files, ls.InterfaceFiles)
	}
}

func TestStdioXAbsentWithoutExtension(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	rt := darshan.NewRuntime(darshan.JobHeader{JobID: 2, NProcs: 1, StartTime: 0, EndTime: 100})
	rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: "/gpfs/alpine/x.log", Rank: 0,
		Kind: darshan.OpWrite, Size: 4096, Offset: 0, Start: 0, End: 0.1})
	a.AddLog(rt.Finalize())
	for _, lr := range a.Report().Layers {
		for d := 0; d < 2; d++ {
			if lr.Stats.StdioXRequestHist[d].Total() != 0 {
				t.Errorf("%s: extension stats without STDIOX module", lr.Layer)
			}
		}
	}
}

func TestStdioXMergePreservesExtension(t *testing.T) {
	sys := systems.NewSummit()
	build := func(jobID uint64) *Aggregator {
		a := NewAggregator(sys)
		rt := darshan.NewRuntime(darshan.JobHeader{JobID: jobID, NProcs: 1, StartTime: 0, EndTime: 100})
		rt.EnableExtendedStdio()
		rt.Observe(darshan.Op{Module: darshan.ModuleSTDIO, Path: "/mnt/bb/u/a.rst", Rank: 0,
			Kind: darshan.OpWrite, Size: 2048, Offset: 0, Start: 0, End: 0.1})
		a.AddLog(rt.Finalize())
		return a
	}
	a, b := build(1), build(2)
	a.Merge(b)
	ls := a.Report().Layers[1].Stats
	if got := ls.StdioXRequestHist[Write].Total(); got != 2 {
		t.Errorf("merged extension hist total = %d, want 2", got)
	}
	if ls.StdioXUniqueBytes != 4096 {
		t.Errorf("merged unique bytes = %v, want 4096", ls.StdioXUniqueBytes)
	}
	_ = iosim.InSystem
}

func TestTopUsersConcentration(t *testing.T) {
	sys := systems.NewSummit()
	a := NewAggregator(sys)
	// User 500 moves 10 GiB; users 501..520 move 1 MiB each.
	mkLog := func(uid uint64, size units.ByteSize) {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: uid * 7, UserID: uid, NProcs: 1, StartTime: 0, EndTime: 100,
		})
		rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: "/gpfs/alpine/u.dat",
			Rank: 0, Kind: darshan.OpWrite, Size: size, Offset: 0, Start: 0, End: 1})
		a.AddLog(rt.Finalize())
	}
	mkLog(500, 10*units.GiB)
	for uid := uint64(501); uid <= 520; uid++ {
		mkLog(uid, units.MiB)
	}
	r := a.Report()
	if len(r.TopUsers) != 10 {
		t.Fatalf("top users = %d, want 10", len(r.TopUsers))
	}
	if r.TopUsers[0].UserID != 500 {
		t.Errorf("heaviest user = %d, want 500", r.TopUsers[0].UserID)
	}
	if r.UserVolumeTop10Share < 0.99 {
		t.Errorf("top-10 share = %.3f, want ≈1 (one user dominates)", r.UserVolumeTop10Share)
	}
	if r.TopUsers[0].Files != 1 {
		t.Errorf("top user files = %d", r.TopUsers[0].Files)
	}
}
