package analysis_test

import (
	"sync"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/fidelity"
	"iolayers/internal/workload"
)

// The reference campaigns are the expensive part (a few seconds per
// system), so both fidelity tests share one run.
var (
	refOnce  sync.Once
	refSuite *fidelity.Suite
	refErr   error
)

func referenceSuite(t *testing.T) *fidelity.Suite {
	t.Helper()
	refOnce.Do(func() {
		cfg := workload.Config{
			Seed:      fidelity.RefSeed,
			JobScale:  fidelity.RefJobScale,
			FileScale: fidelity.RefFileScale,
		}
		refSuite = &fidelity.Suite{}
		for _, name := range []string{"Summit", "Cori"} {
			c, err := core.NewCampaign(name, cfg)
			if err != nil {
				refErr = err
				return
			}
			rep, err := c.Run(nil)
			if err != nil {
				refErr = err
				return
			}
			if name == "Summit" {
				refSuite.Summit = rep
			} else {
				refSuite.Cori = rep
			}
		}
	})
	if refErr != nil {
		t.Fatalf("building reference suite: %v", refErr)
	}
	return refSuite
}

// TestFidelityReferenceRun is the paper-fidelity regression suite: the
// seeded reference campaign (the EXPERIMENTS.md run at 0.5% scale) must
// land inside every enforced verdict band. A failure here means a model or
// calibration change broke a finding EXPERIMENTS.md claims to reproduce —
// fix the regression or re-justify the row (and its verdict) there.
func TestFidelityReferenceRun(t *testing.T) {
	if testing.Short() {
		t.Skip("reference campaign in -short mode")
	}
	s := referenceSuite(t)
	results := fidelity.Evaluate(s)
	if len(results) < 15 {
		t.Fatalf("only %d checks evaluated", len(results))
	}
	for _, r := range results {
		if r.OK {
			t.Log(r.String())
			continue
		}
		t.Error(r.String())
	}
}

// TestFidelityDetectsPerturbation demonstrates the suite's power: an
// injected calibration drift — the kind of silent change the suite exists
// to catch — must trip at least the check watching that quantity.
func TestFidelityDetectsPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("reference campaign in -short mode")
	}
	s := referenceSuite(t)

	failsWith := func(wantName string) {
		t.Helper()
		bad := fidelity.Failures(fidelity.Evaluate(s))
		for _, r := range bad {
			if r.Check.Name == wantName {
				return
			}
		}
		t.Errorf("perturbation not caught: no failure named %q in %v", wantName, bad)
	}

	// Log inflation: doubles Summit's logs-per-job ratio.
	orig := s.Summit.Summary.Logs
	s.Summit.Summary.Logs *= 2
	failsWith("Summit logs per job")
	s.Summit.Summary.Logs = orig

	// Burst-buffer file-count drift: collapses Cori's PFS/CBB file ratio.
	origFiles := s.Cori.Layers[1].Stats.Files
	s.Cori.Layers[1].Stats.Files *= 5
	failsWith("Cori PFS/CBB file ratio")
	s.Cori.Layers[1].Stats.Files = origFiles

	// Interface-mix drift: shifts Summit's PFS POSIX share out of band.
	ls := s.Summit.Layers[0].Stats
	origPosix := ls.InterfaceFiles[darshan.ModulePOSIX]
	ls.InterfaceFiles[darshan.ModulePOSIX] = origPosix * 3
	failsWith("Summit PFS POSIX file share")
	ls.InterfaceFiles[darshan.ModulePOSIX] = origPosix

	// After restoring, the suite must be green again (guards against the
	// perturbations leaking into other tests via the shared suite).
	if bad := fidelity.Failures(fidelity.Evaluate(s)); len(bad) != 0 {
		t.Fatalf("suite still failing after restore: %v", bad)
	}
}
