package analysis

import (
	"fmt"

	"iolayers/internal/darshan"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

// FoldBatch folds one decoded columnar segment into the aggregate — the
// vectorized sibling of AddLog. Each of the batch's pre-folded accounting
// rows goes through exactly the arithmetic AddLog applies to a freshly
// grouped log (the shared beginLog/foldFile/observeTuningRaw spine plus
// integer histogram adds), so a report rendered from a converted campaign
// is byte-identical to one rendered from the row-oriented original.
//
// The caller chooses via Projection which columns were decoded; a full
// fold requires colfmt.ProjectAll. Layer routing runs once per dictionary
// entry, not once per row. Like AddLog, FoldBatch panics on paths foreign
// to the aggregator's system; structural defects in the batch itself
// (row-end columns out of range, dictionary references past the table)
// return an error instead, since batches come from files.
func (a *Aggregator) FoldBatch(b *colfmt.Batch) error {
	if b == nil {
		panic("analysis: nil batch")
	}

	// Layer-kind cache, one slot per dictionary entry. Rows with empty
	// paths are skipped (skip=true), matching AddLog's treatment of
	// unresolvable records.
	kinds := make([]iosim.LayerKind, len(b.Dict))
	known := make([]bool, len(b.Dict))
	pathKind := func(id int64) (kind iosim.LayerKind, skip bool, err error) {
		if id < 0 || id >= int64(len(b.Dict)) {
			return 0, false, fmt.Errorf("analysis: dictionary reference %d outside table of %d", id, len(b.Dict))
		}
		if b.Dict[id] == "" {
			return 0, true, nil
		}
		if !known[id] {
			kinds[id] = a.sys.LayerFor(b.Dict[id]).Kind()
			known[id] = true
		}
		return kinds[id], false, nil
	}
	rowEnd := func(c []int64, i, start, rows int, name string) (int, error) {
		end := int(colfmt.At(c, i))
		if end < start || end > rows {
			return 0, fmt.Errorf("analysis: log %d %s row end %d outside [%d, %d]", i, name, end, start, rows)
		}
		return end, nil
	}

	fileStart, posixStart, sxStart := 0, 0, 0
	for i := 0; i < b.NumLogs; i++ {
		job := darshan.JobHeader{
			JobID:     uint64(colfmt.At(b.JobID, i)),
			UserID:    uint64(colfmt.At(b.UserID, i)),
			NProcs:    int(colfmt.At(b.NProcs, i)),
			StartTime: colfmt.At(b.StartTime, i),
			EndTime:   colfmt.At(b.EndTime, i),
		}
		domID := colfmt.At(b.Domain, i)
		if domID < 0 || domID >= int64(len(b.Dict)) {
			return fmt.Errorf("analysis: log %d domain reference %d outside table of %d", i, domID, len(b.Dict))
		}
		lc := a.beginLog(job, b.Dict[domID])
		a.observeTuningRaw(job.UserID, job.StartTime,
			colfmt.At(b.TuneStripe, i), colfmt.At(b.TuneColl, i), colfmt.At(b.TuneIndep, i))

		fileEnd, err := rowEnd(b.FileEnd, i, fileStart, b.FileRows, "file")
		if err != nil {
			return err
		}
		for r := fileStart; r < fileEnd; r++ {
			kind, skip, err := pathKind(colfmt.At(b.FilePath, r))
			if err != nil {
				return err
			}
			if skip {
				continue
			}
			var fv fileView
			flags := colfmt.At(b.FileFlags, r)
			if flags&colfmt.FlagPosix != 0 {
				fv.posix = viewAt(flags&colfmt.FlagPosixShared != 0,
					colfmt.At(b.PosixReadB, r), colfmt.At(b.PosixWriteB, r),
					colfmt.FAt(b.PosixReadT, r), colfmt.FAt(b.PosixWriteT, r))
			}
			if flags&colfmt.FlagMpiio != 0 {
				fv.mpiio = viewAt(flags&colfmt.FlagMpiioShared != 0,
					colfmt.At(b.MpiioReadB, r), colfmt.At(b.MpiioWriteB, r),
					colfmt.FAt(b.MpiioReadT, r), colfmt.FAt(b.MpiioWriteT, r))
			}
			if flags&colfmt.FlagStdio != 0 {
				fv.stdio = viewAt(flags&colfmt.FlagStdioShared != 0,
					colfmt.At(b.StdioReadB, r), colfmt.At(b.StdioWriteB, r),
					colfmt.FAt(b.StdioReadT, r), colfmt.FAt(b.StdioWriteT, r))
			}
			a.foldFile(lc, &fv, kind)
		}
		fileStart = fileEnd

		posixEnd, err := rowEnd(b.PosixEnd, i, posixStart, b.PosixRows, "posix")
		if err != nil {
			return err
		}
		for r := posixStart; r < posixEnd; r++ {
			kind, skip, err := pathKind(colfmt.At(b.PosixHistPath, r))
			if err != nil {
				return err
			}
			if skip {
				continue
			}
			ls := a.layers[layerIndex(kind)]
			for bin := 0; bin < units.NumRequestBins; bin++ {
				reads := uint64(colfmt.At(b.PosixBins[bin], r))
				writes := uint64(colfmt.At(b.PosixBins[units.NumRequestBins+bin], r))
				ls.RequestHist[Read].Add(bin, reads)
				ls.RequestHist[Write].Add(bin, writes)
				if lc.large {
					ls.LargeJobRequestHist[Read].Add(bin, reads)
					ls.LargeJobRequestHist[Write].Add(bin, writes)
				}
			}
		}
		posixStart = posixEnd

		sxEnd, err := rowEnd(b.StdioXEnd, i, sxStart, b.StdioXRows, "stdiox")
		if err != nil {
			return err
		}
		for r := sxStart; r < sxEnd; r++ {
			kind, skip, err := pathKind(colfmt.At(b.StdioXPath, r))
			if err != nil {
				return err
			}
			if skip {
				continue
			}
			ls := a.layers[layerIndex(kind)]
			for bin := 0; bin < units.NumRequestBins; bin++ {
				ls.StdioXRequestHist[Read].Add(bin, uint64(colfmt.At(b.StdioXBins[bin], r)))
				ls.StdioXRequestHist[Write].Add(bin, uint64(colfmt.At(b.StdioXBins[units.NumRequestBins+bin], r)))
			}
			ls.StdioXRewriteBytes += float64(colfmt.At(b.StdioXRewrite, r))
			ls.StdioXUniqueBytes += float64(colfmt.At(b.StdioXUnique, r))
		}
		sxStart = sxEnd
	}
	return nil
}

// viewAt reconstructs the modView a converted file row was folded down
// from: a present view with the row's byte and busy-time totals, shared iff
// the original was a single rank −1 record.
func viewAt(shared bool, readB, writeB int64, readT, writeT float64) modView {
	mv := modView{n: 1, readB: readB, writeB: writeB, readT: readT, writeT: writeT}
	if shared {
		mv.rank = darshan.SharedRank
	}
	return mv
}
