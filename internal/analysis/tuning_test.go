package analysis

import (
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
	"iolayers/internal/workload"
)

// logAt builds a minimal log for one user at a given month, optionally
// carrying tuned signals (wide stripes, collective MPI-IO).
func logAt(uid uint64, month int, stripeWidth int, collective bool) *darshan.Log {
	// 2019-01-01 UTC.
	start := int64(1546300800) + int64(month-1)*30*86400
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: uid*100 + uint64(month), UserID: uid, NProcs: 8,
		StartTime: start, EndTime: start + 600,
	})
	p := "/global/cscratch1/u/f.nc"
	rt.Observe(darshan.Op{Module: darshan.ModuleMPIIO, Path: p, Rank: 0,
		Kind: darshan.OpWrite, Collective: collective, Size: units.MiB, Start: 1, End: 2})
	rt.SetLustreStriping(p, 248, 1, 0, units.MiB, stripeWidth)
	return rt.Finalize()
}

func TestTuningAdoptionDetection(t *testing.T) {
	a := NewAggregator(systems.NewCori())
	// User 1: tunes (stripe 1→16, independent→collective).
	a.AddLog(logAt(1, 2, 1, false))
	a.AddLog(logAt(1, 10, 16, true))
	// User 2: never tunes.
	a.AddLog(logAt(2, 3, 1, false))
	a.AddLog(logAt(2, 11, 1, false))
	// User 3: only active in the first half — not part of the population.
	a.AddLog(logAt(3, 4, 1, false))
	r := a.Report()
	if r.Tuning.UsersBothHalves != 2 {
		t.Errorf("users in both halves = %d, want 2", r.Tuning.UsersBothHalves)
	}
	if r.Tuning.AdoptedStriping != 1 || r.Tuning.AdoptedCollective != 1 || r.Tuning.AdoptedAny != 1 {
		t.Errorf("tuning detection: %+v", r.Tuning)
	}
}

// End-to-end ground truth: the Cori generator marks ~25% of users as
// tuners; the detection pipeline should recover a nonzero adopted share and
// never exceed the population.
func TestTuningGroundTruthRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	sys := systems.NewCori()
	gen, err := workload.NewGenerator(workload.Cori(), sys,
		workload.Config{Seed: 31, JobScale: 0.002, FileScale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAggregator(sys)
	for i := 0; i < gen.Jobs(); i++ {
		for _, log := range gen.GenerateJob(i) {
			a.AddLog(log)
		}
	}
	tu := a.Report().Tuning
	if tu.UsersBothHalves < 20 {
		t.Fatalf("too few two-half users to assess: %d", tu.UsersBothHalves)
	}
	frac := float64(tu.AdoptedAny) / float64(tu.UsersBothHalves)
	// Ground truth is 25% tuners; detection needs both halves observed with
	// the right file kinds, so recovered share is a bit below.
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("adopted share %.3f outside [0.08,0.45] (ground truth 0.25): %+v", frac, tu)
	}
	if tu.AdoptedStriping == 0 {
		t.Error("no striping adoption detected despite ground-truth tuners")
	}
}
