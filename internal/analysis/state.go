package analysis

import (
	"fmt"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/stats"
	"iolayers/internal/units"
)

// Checkpoint support: an Aggregator's accumulated statistics, exported as a
// plain serializable value. A campaign checkpoint persists the merged
// AggregatorState of all completed work; resume reconstructs an equivalent
// Aggregator and continues folding logs into it. Because every statistic is
// an exact sum, count, or sample multiset — and gob round-trips float64
// bit-exactly — an aggregator rebuilt from its state is indistinguishable
// from one that never stopped: the final report is byte-identical.

// JobViewState is the serializable per-job state (layer exclusivity, STDIO
// usage, domain attribution).
type JobViewState struct {
	Layers    [2]bool
	UsedStdio bool
	Domain    string
}

// UserTuningState is the serializable per-user tuning-adoption state.
type UserTuningState struct {
	Seen       [2]bool
	MaxStripe  [2]int64
	CollOps    [2]int64
	IndepOps   [2]int64
	JobsInHalf [2]int64
}

// AggregatorState is a deep snapshot of an Aggregator, safe to serialize
// (all fields exported, gob-friendly) and independent of the aggregator it
// came from: mutating the source after State() does not alter the snapshot.
type AggregatorState struct {
	// System names the system profile the statistics were computed for;
	// restore refuses a mismatch.
	System        string
	LargeJobProcs int

	Logs         int64
	NodeHours    float64
	Jobs         map[uint64]JobViewState
	Tuning       map[uint64]UserTuningState
	MonthlyLogs  [12]int64
	MonthlyBytes [12]float64
	UserBytes    map[uint64]float64
	UserFiles    map[uint64]int64
	Layers       [2]*LayerStats
	Domains      map[string]*DomainStats

	DomainCovered   map[uint64]bool
	DomainUncovered map[uint64]bool
}

// State returns a deep snapshot of the aggregator's accumulated statistics.
// The aggregator may keep accumulating afterwards; the snapshot is
// unaffected.
func (a *Aggregator) State() *AggregatorState {
	st := &AggregatorState{
		System:          a.sys.Name,
		LargeJobProcs:   a.LargeJobProcs,
		Logs:            a.logs,
		NodeHours:       a.nodeHours,
		Jobs:            make(map[uint64]JobViewState, len(a.jobs)),
		Tuning:          make(map[uint64]UserTuningState, len(a.tuning)),
		MonthlyLogs:     a.monthlyLogs,
		MonthlyBytes:    a.monthlyBytes,
		UserBytes:       make(map[uint64]float64, len(a.userBytes)),
		UserFiles:       make(map[uint64]int64, len(a.userFiles)),
		Domains:         make(map[string]*DomainStats, len(a.domains)),
		DomainCovered:   make(map[uint64]bool, len(a.domainCovered)),
		DomainUncovered: make(map[uint64]bool, len(a.domainUncovered)),
	}
	for id, jv := range a.jobs {
		st.Jobs[id] = JobViewState{Layers: jv.layers, UsedStdio: jv.usedStdio, Domain: jv.domain}
	}
	for uid, ut := range a.tuning {
		st.Tuning[uid] = UserTuningState{Seen: ut.seen, MaxStripe: ut.maxStripe,
			CollOps: ut.collOps, IndepOps: ut.indepOps, JobsInHalf: ut.jobsInHalf}
	}
	for uid, v := range a.userBytes {
		st.UserBytes[uid] = v
	}
	for uid, n := range a.userFiles {
		st.UserFiles[uid] = n
	}
	for i := range a.layers {
		// merge into a fresh LayerStats deep-copies every map, histogram,
		// and perf-sample slice.
		ls := newLayerStats()
		ls.merge(a.layers[i])
		st.Layers[i] = ls
	}
	for d, ds := range a.domains {
		c := *ds
		st.Domains[d] = &c
	}
	for id := range a.domainCovered {
		st.DomainCovered[id] = true
	}
	for id := range a.domainUncovered {
		st.DomainUncovered[id] = true
	}
	return st
}

// sanitizeLayer fills any nil maps or histograms a serialization round trip
// may have left behind (gob omits zero-value fields), so merging the layer
// cannot panic. Histograms with unexpected bin counts are rejected.
func sanitizeLayer(ls *LayerStats) error {
	if ls.InterfaceFiles == nil {
		ls.InterfaceFiles = map[darshan.ModuleID]int64{}
	}
	if ls.InterfaceTransferHist == nil {
		ls.InterfaceTransferHist = map[darshan.ModuleID]*[numDirections]*stats.Histogram{}
	}
	if ls.Perf == nil {
		ls.Perf = map[darshan.ModuleID]*[numDirections][units.NumTransferBins][]float64{}
	}
	fix := func(h **stats.Histogram, bins int) error {
		if *h == nil {
			*h = stats.NewHistogram(bins)
			return nil
		}
		if len((*h).Counts) != bins {
			return fmt.Errorf("analysis: restored histogram has %d bins, want %d", len((*h).Counts), bins)
		}
		return nil
	}
	for d := 0; d < int(numDirections); d++ {
		if err := fix(&ls.TransferHist[d], units.NumTransferBins); err != nil {
			return err
		}
		if err := fix(&ls.RequestHist[d], units.NumRequestBins); err != nil {
			return err
		}
		if err := fix(&ls.LargeJobRequestHist[d], units.NumRequestBins); err != nil {
			return err
		}
		if err := fix(&ls.StdioXRequestHist[d], units.NumRequestBins); err != nil {
			return err
		}
	}
	for _, h := range ls.InterfaceTransferHist {
		for d := 0; d < int(numDirections); d++ {
			if err := fix(&h[d], units.NumTransferBins); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewAggregatorFromState reconstructs an aggregator equivalent to the one
// State was called on. sys must be the same system profile the snapshot was
// computed for.
func NewAggregatorFromState(sys *iosim.System, st *AggregatorState) (*Aggregator, error) {
	if sys == nil {
		return nil, fmt.Errorf("analysis: nil system")
	}
	if st == nil {
		return nil, fmt.Errorf("analysis: nil state")
	}
	if st.System != sys.Name {
		return nil, fmt.Errorf("analysis: state is for system %q, not %q", st.System, sys.Name)
	}
	a := NewAggregator(sys)
	if st.LargeJobProcs > 0 {
		a.LargeJobProcs = st.LargeJobProcs
	}
	a.logs = st.Logs
	a.nodeHours = st.NodeHours
	a.monthlyLogs = st.MonthlyLogs
	a.monthlyBytes = st.MonthlyBytes
	for id, jv := range st.Jobs {
		a.jobs[id] = &jobView{layers: jv.Layers, usedStdio: jv.UsedStdio, domain: jv.Domain}
	}
	for uid, ut := range st.Tuning {
		a.tuning[uid] = &userTuning{seen: ut.Seen, maxStripe: ut.MaxStripe,
			collOps: ut.CollOps, indepOps: ut.IndepOps, jobsInHalf: ut.JobsInHalf}
	}
	for uid, v := range st.UserBytes {
		a.userBytes[uid] = v
	}
	for uid, n := range st.UserFiles {
		a.userFiles[uid] = n
	}
	for i := range a.layers {
		if st.Layers[i] == nil {
			continue
		}
		if err := sanitizeLayer(st.Layers[i]); err != nil {
			return nil, err
		}
		a.layers[i].merge(st.Layers[i])
	}
	for d, ds := range st.Domains {
		if ds == nil {
			continue
		}
		c := *ds
		a.domains[d] = &c
	}
	for id := range st.DomainCovered {
		a.domainCovered[id] = true
	}
	for id := range st.DomainUncovered {
		a.domainUncovered[id] = true
	}
	return a, nil
}

// MergeState folds a serialized AggregatorState — a lake segment, a
// checkpoint, any gob round trip of State() — into the aggregator, as if
// the logs behind the snapshot had been folded in directly. The state must
// be for the same system profile. Because gob round-trips float64
// bit-exactly and Merge is the same operation the parallel worker pool
// uses on its partials, an aggregator rebuilt by merging persisted
// segments renders the identical report to one that never left memory.
func (a *Aggregator) MergeState(st *AggregatorState) error {
	other, err := NewAggregatorFromState(a.sys, st)
	if err != nil {
		return err
	}
	a.Merge(other)
	return nil
}

// SystemName returns the name of the system profile this aggregator
// accumulates statistics for ("Summit", "Cori").
func (a *Aggregator) SystemName() string { return a.sys.Name }

// System returns the system profile this aggregator was built over.
func (a *Aggregator) System() *iosim.System { return a.sys }

// Logs returns the number of logs folded in so far.
func (a *Aggregator) Logs() int64 { return a.logs }

// Clone returns a deep copy of the aggregator: folding logs into (or
// merging into) either copy never alters the other. It is the basis of
// copy-on-write re-ingestion — a service can keep serving reports from the
// original while new logs fold into the clone.
func (a *Aggregator) Clone() *Aggregator {
	c, err := NewAggregatorFromState(a.sys, a.State())
	if err != nil {
		// State() came from this very aggregator; a mismatch is impossible.
		panic(fmt.Sprintf("analysis: clone rejected own state: %v", err))
	}
	return c
}
