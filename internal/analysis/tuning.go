package analysis

import (
	"time"

	"iolayers/internal/darshan"
)

// userTuning accumulates one user's observable I/O tuning signals per
// calendar half-year: the widest Lustre stripe layout their files carried
// and their collective-vs-independent MPI-IO operation mix.
type userTuning struct {
	seen       [2]bool
	maxStripe  [2]int64
	collOps    [2]int64
	indepOps   [2]int64
	jobsInHalf [2]int64
}

// observeTuning folds one log's tuning signals into the per-user state.
func (a *Aggregator) observeTuning(log *darshan.Log) {
	var maxStripe, collOps, indepOps int64
	for _, rec := range log.Records {
		switch rec.Module {
		case darshan.ModuleLustre:
			if w := rec.Counters[darshan.LustreStripeWidth]; w > maxStripe {
				maxStripe = w
			}
		case darshan.ModuleMPIIO:
			collOps += rec.Counters[darshan.MpiioCollReads] +
				rec.Counters[darshan.MpiioCollWrites] + rec.Counters[darshan.MpiioCollOpens]
			indepOps += rec.Counters[darshan.MpiioIndepReads] +
				rec.Counters[darshan.MpiioIndepWrites] + rec.Counters[darshan.MpiioIndepOpens]
		}
	}
	a.observeTuningRaw(log.Job.UserID, log.Job.StartTime, maxStripe, collOps, indepOps)
}

// observeTuningRaw folds one log's already-reduced tuning signals — the max
// Lustre stripe width over its records and its MPI-IO collective/independent
// operation sums. This is the entry point the columnar fold shares with
// observeTuning: max and sum are associative, so per-log pre-reduction
// changes nothing.
func (a *Aggregator) observeTuningRaw(userID uint64, startTime int64, maxStripe, collOps, indepOps int64) {
	half := 0
	if time.Unix(startTime, 0).UTC().Month() >= time.July {
		half = 1
	}
	ut, ok := a.tuning[userID]
	if !ok {
		ut = &userTuning{}
		a.tuning[userID] = ut
	}
	ut.seen[half] = true
	ut.jobsInHalf[half]++
	if maxStripe > ut.maxStripe[half] {
		ut.maxStripe[half] = maxStripe
	}
	ut.collOps[half] += collOps
	ut.indepOps[half] += indepOps
}

// TuningAdoption answers the paper's §5 future-work question from the logs
// alone: of the users active in both halves of the year, how many show
// evidence of having tuned their I/O in later executions?
type TuningAdoption struct {
	// UsersBothHalves is the population the question is well-posed for.
	UsersBothHalves int
	// AdoptedStriping counts users whose second-half files carry a wider
	// maximum Lustre stripe layout than any of their first-half files.
	AdoptedStriping int
	// AdoptedCollective counts users whose second-half MPI-IO collective
	// share rose by more than 0.2 over their first half.
	AdoptedCollective int
	// AdoptedAny counts users matching either signal.
	AdoptedAny int
}

// tuningAdoption derives the report from the per-user state.
func (a *Aggregator) tuningAdoption() TuningAdoption {
	var out TuningAdoption
	for _, ut := range a.tuning {
		if !ut.seen[0] || !ut.seen[1] {
			continue
		}
		out.UsersBothHalves++
		striping := ut.maxStripe[1] > ut.maxStripe[0] && ut.maxStripe[0] > 0
		collective := false
		if d0, d1 := ut.collOps[0]+ut.indepOps[0], ut.collOps[1]+ut.indepOps[1]; d0 > 0 && d1 > 0 {
			f0 := float64(ut.collOps[0]) / float64(d0)
			f1 := float64(ut.collOps[1]) / float64(d1)
			collective = f1-f0 > 0.2
		}
		if striping {
			out.AdoptedStriping++
		}
		if collective {
			out.AdoptedCollective++
		}
		if striping || collective {
			out.AdoptedAny++
		}
	}
	return out
}

// mergeTuning folds another aggregator's per-user tuning state into this one.
func (a *Aggregator) mergeTuning(other *Aggregator) {
	for uid, o := range other.tuning {
		ut, ok := a.tuning[uid]
		if !ok {
			a.tuning[uid] = o
			continue
		}
		for h := 0; h < 2; h++ {
			ut.seen[h] = ut.seen[h] || o.seen[h]
			if o.maxStripe[h] > ut.maxStripe[h] {
				ut.maxStripe[h] = o.maxStripe[h]
			}
			ut.collOps[h] += o.collOps[h]
			ut.indepOps[h] += o.indepOps[h]
			ut.jobsInHalf[h] += o.jobsInHalf[h]
		}
	}
}
