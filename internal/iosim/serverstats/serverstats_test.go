package serverstats

import (
	"math"
	"sync"
	"testing"

	"iolayers/internal/obsv"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewCollectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero servers")
		}
	}()
	NewCollector("x", 0)
}

func TestRecordSingleServer(t *testing.T) {
	c := NewCollector("Alpine", 4)
	c.Record(1, 1, 1000, 0.5)
	c.Record(1, 1, 500, 0.25)
	snaps := c.Snapshots()
	if snaps[1].Requests != 2 || snaps[1].Bytes != 1500 {
		t.Errorf("server 1: %+v", snaps[1])
	}
	if !almost(snaps[1].BusySecs, 0.75) {
		t.Errorf("busy = %v", snaps[1].BusySecs)
	}
	for _, i := range []int{0, 2, 3} {
		if snaps[i].Requests != 0 {
			t.Errorf("server %d unexpectedly loaded", i)
		}
	}
}

func TestRecordSpanWraps(t *testing.T) {
	c := NewCollector("OSTs", 4)
	// Start at server 3, span 2 → servers 3 and 0.
	c.Record(3, 2, 1000, 1.0)
	snaps := c.Snapshots()
	if snaps[3].Bytes != 500 || snaps[0].Bytes != 500 {
		t.Errorf("wrap: %+v", snaps)
	}
	if snaps[1].Bytes != 0 || snaps[2].Bytes != 0 {
		t.Errorf("span leaked: %+v", snaps)
	}
}

func TestRecordClampsInputs(t *testing.T) {
	c := NewCollector("x", 3)
	c.Record(-7, 0, 300, 0.3)  // negative start, zero span
	c.Record(100, 100, 300, 0) // oversized start and span
	total := int64(0)
	for _, s := range c.Snapshots() {
		total += s.Bytes
	}
	if total != 600 {
		t.Errorf("total bytes = %d, want 600", total)
	}
}

func TestImbalancePerfectBalance(t *testing.T) {
	c := NewCollector("x", 4)
	for i := 0; i < 4; i++ {
		c.Record(i, 1, 100, 0.1)
	}
	im := c.ByteImbalance()
	if !almost(im.PeakRatio, 1.0) || !almost(im.Gini, 0) || im.IdleServers != 0 {
		t.Errorf("balanced load: %+v", im)
	}
}

func TestImbalanceOneHot(t *testing.T) {
	n := 8
	c := NewCollector("x", n)
	c.Record(2, 1, 800, 1)
	im := c.ByteImbalance()
	if !almost(im.PeakRatio, float64(n)) {
		t.Errorf("peak ratio = %v, want %d", im.PeakRatio, n)
	}
	// Gini of a one-hot distribution over n servers is (n-1)/n.
	if !almost(im.Gini, float64(n-1)/float64(n)) {
		t.Errorf("gini = %v, want %v", im.Gini, float64(n-1)/float64(n))
	}
	if im.IdleServers != n-1 {
		t.Errorf("idle = %d", im.IdleServers)
	}
}

func TestImbalanceEmpty(t *testing.T) {
	c := NewCollector("x", 5)
	im := c.RequestImbalance()
	if im.Mean != 0 || im.PeakRatio != 0 || im.Gini != 0 || im.IdleServers != 5 {
		t.Errorf("empty collector: %+v", im)
	}
}

func TestBusySummary(t *testing.T) {
	c := NewCollector("x", 3)
	c.Record(0, 1, 10, 1.0)
	c.Record(1, 1, 10, 2.0)
	c.Record(2, 1, 10, 3.0)
	s := c.BusySummary()
	if s.N != 3 || !almost(s.Median, 2.0) {
		t.Errorf("busy summary: %+v", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	c := NewCollector("x", 16)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Record(w+i, 2, 128, 0.001)
			}
		}(w)
	}
	wg.Wait()
	var reqs, bytes int64
	for _, s := range c.Snapshots() {
		reqs += s.Requests
		bytes += s.Bytes
	}
	if reqs != workers*perWorker*2 {
		t.Errorf("requests = %d, want %d", reqs, workers*perWorker*2)
	}
	if bytes != workers*perWorker*128 {
		t.Errorf("bytes = %d, want %d", bytes, workers*perWorker*128)
	}
}

func TestName(t *testing.T) {
	if NewCollector("Alpine", 2).Name() != "Alpine" {
		t.Error("name lost")
	}
}

func TestRecordDegradedTracksTime(t *testing.T) {
	c := NewCollector("x", 4)
	// Two degraded requests on server 1, one clean one elsewhere.
	c.Record(1, 1, 1000, 0.5)
	c.RecordDegraded(1, 1, 0.5)
	c.Record(1, 1, 500, 0.25)
	c.RecordDegraded(1, 1, 0.25)
	c.Record(3, 1, 100, 2.0)
	if got := c.DegradedRequests(); got != 2 {
		t.Errorf("degraded requests = %d, want 2", got)
	}
	if !almost(c.DegradedBusySecs(), 0.75) {
		t.Errorf("degraded busy = %v, want 0.75", c.DegradedBusySecs())
	}
	snaps := c.Snapshots()
	if !almost(snaps[1].DegradedSecs, 0.75) || snaps[1].Degraded != 2 {
		t.Errorf("server 1 snapshot: %+v", snaps[1])
	}
	if snaps[3].DegradedSecs != 0 {
		t.Errorf("clean server has degraded time: %+v", snaps[3])
	}
}

func TestRecordDegradedSplitsAcrossSpan(t *testing.T) {
	c := NewCollector("x", 4)
	c.Record(3, 2, 1000, 1.0) // wraps: servers 3 and 0
	c.RecordDegraded(3, 2, 1.0)
	snaps := c.Snapshots()
	if !almost(snaps[3].DegradedSecs, 0.5) || !almost(snaps[0].DegradedSecs, 0.5) {
		t.Errorf("degraded time did not split across span: %+v", snaps)
	}
	if !almost(c.DegradedBusySecs(), 1.0) {
		t.Errorf("total degraded = %v", c.DegradedBusySecs())
	}
}

func TestPublish(t *testing.T) {
	c := NewCollector("Alpine", 4)
	c.Record(0, 2, 1000, 0.5)
	c.RecordDegraded(0, 2, 0.5)
	c.Publish(nil) // nil registry must be a no-op

	r := obsv.New()
	c.Publish(r)
	if got := r.Counter("iosim.Alpine.requests").Value(); got != 2 {
		t.Errorf("requests counter = %d, want 2", got)
	}
	if got := r.Counter("iosim.Alpine.bytes").Value(); got != 1000 {
		t.Errorf("bytes counter = %d, want 1000", got)
	}
	if got := r.Gauge("iosim.Alpine.degraded_secs").Value(); !almost(got, 0.5) {
		t.Errorf("degraded gauge = %v, want 0.5", got)
	}
	// Publishing again must not double-count.
	c.Record(0, 1, 24, 0.1)
	c.Publish(r)
	if got := r.Counter("iosim.Alpine.requests").Value(); got != 3 {
		t.Errorf("republished requests counter = %d, want 3", got)
	}
	if got := r.Counter("iosim.Alpine.bytes").Value(); got != 1024 {
		t.Errorf("republished bytes counter = %d, want 1024", got)
	}
}
