// Package serverstats adds server-side observability to the simulated
// storage layers: per-server request counts, bytes served, and busy time,
// the counters a production Lustre LMT or GPFS mmpmon deployment exposes.
//
// The paper's Table 1 taxonomy distinguishes application-level logs (what
// Darshan sees) from system-level logs; several of the related studies it
// surveys ([10], [19], [22]) work purely from the server side, and [22] in
// particular reports server imbalance as a performance problem. This
// package supplies that second vantage point for the simulated systems, so
// the repository can compare the two views the way Table 1 contrasts them.
//
// A Collector is safe for concurrent use: layers record into it from
// parallel campaign workers via atomic counters.
package serverstats

import (
	"fmt"
	"sort"
	"sync/atomic"

	"iolayers/internal/obsv"
	"iolayers/internal/stats"
)

// Collector accumulates per-server load for one storage layer.
type Collector struct {
	name     string
	requests []atomic.Int64
	bytes    []atomic.Int64
	// busyNanos accumulates service time in nanoseconds (atomic-friendly).
	busyNanos []atomic.Int64
	// degraded counts requests served while the server sat inside an
	// injected fault window — the server-side footprint of degraded
	// intervals (outages, slowdowns, metadata storms).
	degraded []atomic.Int64
	// degradedNanos accumulates the service time of those degraded
	// requests. A monitoring deployment reports degraded *time*, not a
	// request tally: a thousand sub-millisecond requests in a fault window
	// matter less than one multi-minute stalled transfer.
	degradedNanos []atomic.Int64
}

// NewCollector builds a collector for a layer with the given number of
// servers (NSD servers, OSSes, burst-buffer nodes, or compute nodes).
func NewCollector(name string, servers int) *Collector {
	if servers <= 0 {
		panic(fmt.Sprintf("serverstats: collector %q needs at least one server, got %d", name, servers))
	}
	return &Collector{
		name:          name,
		requests:      make([]atomic.Int64, servers),
		bytes:         make([]atomic.Int64, servers),
		busyNanos:     make([]atomic.Int64, servers),
		degraded:      make([]atomic.Int64, servers),
		degradedNanos: make([]atomic.Int64, servers),
	}
}

// Name returns the layer name the collector was built for.
func (c *Collector) Name() string { return c.name }

// Servers returns the server count.
func (c *Collector) Servers() int { return len(c.requests) }

// Record notes one request striped over `span` servers starting at server
// `start` (wrapping round-robin), moving `size` bytes in `seconds` of
// service time. The bytes and busy time divide evenly across the span.
func (c *Collector) Record(start, span int, size int64, seconds float64) {
	n := len(c.requests)
	if span <= 0 {
		span = 1
	}
	if span > n {
		span = n
	}
	if start < 0 {
		start = -start
	}
	start %= n
	perBytes := size / int64(span)
	perNanos := int64(seconds * 1e9 / float64(span))
	for i := 0; i < span; i++ {
		s := (start + i) % n
		c.requests[s].Add(1)
		c.bytes[s].Add(perBytes)
		c.busyNanos[s].Add(perNanos)
	}
}

// RecordDegraded notes that one request's span [start, start+span) was
// served inside an injected fault window, spending `seconds` of service
// time there (the same duration passed to Record; it divides evenly
// across the span). Call alongside Record when the fault injector reports
// a degraded effect.
func (c *Collector) RecordDegraded(start, span int, seconds float64) {
	n := len(c.degraded)
	if span <= 0 {
		span = 1
	}
	if span > n {
		span = n
	}
	if start < 0 {
		start = -start
	}
	start %= n
	perNanos := int64(seconds * 1e9 / float64(span))
	for i := 0; i < span; i++ {
		s := (start + i) % n
		c.degraded[s].Add(1)
		c.degradedNanos[s].Add(perNanos)
	}
}

// DegradedRequests sums requests served inside fault windows across all
// servers.
func (c *Collector) DegradedRequests() int64 {
	var total int64
	for i := range c.degraded {
		total += c.degraded[i].Load()
	}
	return total
}

// DegradedBusySecs sums the service time spent inside fault windows
// across all servers — the observed degraded time, as opposed to the
// scheduled fault-window duration, which counts wall time whether or not
// any request was actually in flight.
func (c *Collector) DegradedBusySecs() float64 {
	var total int64
	for i := range c.degradedNanos {
		total += c.degradedNanos[i].Load()
	}
	return float64(total) / 1e9
}

// Snapshot is a point-in-time copy of one server's counters.
type Snapshot struct {
	Server   int
	Requests int64
	Bytes    int64
	BusySecs float64
	// Degraded counts requests this server served inside fault windows;
	// DegradedSecs is the service time those requests spent there.
	Degraded     int64
	DegradedSecs float64
}

// Snapshots returns every server's counters.
func (c *Collector) Snapshots() []Snapshot {
	out := make([]Snapshot, len(c.requests))
	for i := range out {
		out[i] = Snapshot{
			Server:       i,
			Requests:     c.requests[i].Load(),
			Bytes:        c.bytes[i].Load(),
			BusySecs:     float64(c.busyNanos[i].Load()) / 1e9,
			Degraded:     c.degraded[i].Load(),
			DegradedSecs: float64(c.degradedNanos[i].Load()) / 1e9,
		}
	}
	return out
}

// Imbalance summarizes the load distribution across servers for one metric.
type Imbalance struct {
	// Mean and Max of the per-server metric.
	Mean, Max float64
	// PeakRatio is Max/Mean — 1.0 is perfectly balanced; [22] reports
	// values well above 1 on production metadata servers.
	PeakRatio float64
	// Gini is the Gini coefficient of the load distribution (0 = equal).
	Gini float64
	// IdleServers counts servers that saw no traffic at all.
	IdleServers int
}

// ByteImbalance computes the imbalance of served bytes.
func (c *Collector) ByteImbalance() Imbalance {
	vals := make([]float64, len(c.bytes))
	for i := range c.bytes {
		vals[i] = float64(c.bytes[i].Load())
	}
	return imbalance(vals)
}

// RequestImbalance computes the imbalance of request counts.
func (c *Collector) RequestImbalance() Imbalance {
	vals := make([]float64, len(c.requests))
	for i := range c.requests {
		vals[i] = float64(c.requests[i].Load())
	}
	return imbalance(vals)
}

func imbalance(vals []float64) Imbalance {
	var im Imbalance
	if len(vals) == 0 {
		return im
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v > im.Max {
			im.Max = v
		}
		if v == 0 {
			im.IdleServers++
		}
	}
	im.Mean = sum / float64(len(vals))
	if im.Mean > 0 {
		im.PeakRatio = im.Max / im.Mean
	}
	im.Gini = gini(vals, sum)
	return im
}

// gini computes the Gini coefficient of non-negative values.
func gini(vals []float64, sum float64) float64 {
	if sum <= 0 || len(vals) < 2 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var cum float64
	for i, v := range sorted {
		cum += v * (2*float64(i+1) - n - 1)
	}
	return cum / (n * sum)
}

// Publish copies the collector's totals into the registry under
// "iosim.<layer>.*". Request and byte tallies are deterministic (each
// request is a pure function of its job, and integer sums are
// order-independent), so they go in as counters; the simulated-time
// totals are float-valued and go in as gauges. A nil registry is a no-op.
func (c *Collector) Publish(r *obsv.Registry) {
	if r == nil {
		return
	}
	var reqs, bytes int64
	var busy, degr int64
	for i := range c.requests {
		reqs += c.requests[i].Load()
		bytes += c.bytes[i].Load()
		busy += c.busyNanos[i].Load()
		degr += c.degradedNanos[i].Load()
	}
	prefix := "iosim." + c.name + "."
	r.Counter(prefix + "requests").Add(reqs - r.Counter(prefix+"requests").Value())
	r.Counter(prefix + "bytes").Add(bytes - r.Counter(prefix+"bytes").Value())
	r.Gauge(prefix + "busy_secs").Set(float64(busy) / 1e9)
	r.Gauge(prefix + "degraded_secs").Set(float64(degr) / 1e9)
	r.Gauge(prefix + "idle_servers").Set(float64(c.ByteImbalance().IdleServers))
}

// BusySummary returns the five-number summary of per-server busy seconds.
func (c *Collector) BusySummary() stats.Summary {
	vals := make([]float64, len(c.busyNanos))
	for i := range c.busyNanos {
		vals[i] = float64(c.busyNanos[i].Load()) / 1e9
	}
	return stats.Summarize(vals)
}
