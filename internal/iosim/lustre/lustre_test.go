package lustre

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

func idealScratch() *FS {
	cfg := CoriScratch()
	cfg.Variability = iosim.Variability{}
	return New(cfg)
}

func TestCoriScratchConfigMatchesPaper(t *testing.T) {
	cfg := CoriScratch()
	if cfg.OSTs != 248 || cfg.MDSes != 5 {
		t.Errorf("OSTs/MDSes = %d/%d, want 248/5", cfg.OSTs, cfg.MDSes)
	}
	if cfg.DefaultStripeSize != units.MiB || cfg.DefaultStripeCount != 1 {
		t.Errorf("default striping %v/%d, want 1MiB/1", cfg.DefaultStripeSize, cfg.DefaultStripeCount)
	}
	if cfg.PeakBandwidth != 700e9 {
		t.Errorf("peak %v, want 700e9", cfg.PeakBandwidth)
	}
}

func TestDefaultLayoutDeterministicPerPath(t *testing.T) {
	fs := idealScratch()
	a := fs.LayoutOf("/global/cscratch1/u/f1")
	b := fs.LayoutOf("/global/cscratch1/u/f1")
	if a != b {
		t.Error("layout for the same path differs between calls")
	}
	if a.StripeCount != 1 || a.StripeSize != units.MiB {
		t.Errorf("default layout = %+v", a)
	}
	if a.StartOST < 0 || a.StartOST >= fs.OSTCount() {
		t.Errorf("start OST %d out of range", a.StartOST)
	}
}

func TestSetLayoutOverrides(t *testing.T) {
	fs := idealScratch()
	want := Layout{StripeSize: 4 * units.MiB, StripeCount: 16, StartOST: 7}
	fs.SetLayout("/global/cscratch1/u/wide", want)
	if got := fs.LayoutOf("/global/cscratch1/u/wide"); got != want {
		t.Errorf("LayoutOf = %+v, want %+v", got, want)
	}
}

func TestSetLayoutValidation(t *testing.T) {
	fs := idealScratch()
	bad := []Layout{
		{StripeSize: units.MiB, StripeCount: 0, StartOST: 0},
		{StripeSize: units.MiB, StripeCount: 249, StartOST: 0},
		{StripeSize: 0, StripeCount: 1, StartOST: 0},
		{StripeSize: units.MiB, StripeCount: 1, StartOST: -1},
		{StripeSize: units.MiB, StripeCount: 1, StartOST: 248},
	}
	for i, l := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layout %d: expected panic for %+v", i, l)
				}
			}()
			fs.SetLayout("/p", l)
		}()
	}
}

// Wider striping must speed up large shared transfers — the tuning effect
// the paper's §5 future work targets (and ablation A1 measures).
func TestStripingSpeedsUpLargeTransfers(t *testing.T) {
	fs := idealScratch()
	r := rand.New(rand.NewPCG(1, 1))
	size := 10 * units.GiB
	narrow := "/global/cscratch1/narrow"
	wide := "/global/cscratch1/wide"
	fs.SetLayout(narrow, Layout{StripeSize: units.MiB, StripeCount: 1, StartOST: 0})
	fs.SetLayout(wide, Layout{StripeSize: units.MiB, StripeCount: 32, StartOST: 0})
	tNarrow := fs.Transfer(narrow, iosim.Write, size, 128, r)
	tWide := fs.Transfer(wide, iosim.Write, size, 128, r)
	if tWide >= tNarrow/4 {
		t.Errorf("32-stripe transfer %v not ≫4× faster than 1-stripe %v", tWide, tNarrow)
	}
}

func TestSmallRequestTouchesOneOST(t *testing.T) {
	fs := idealScratch()
	r := rand.New(rand.NewPCG(2, 2))
	wide := "/global/cscratch1/wide2"
	fs.SetLayout(wide, Layout{StripeSize: units.MiB, StripeCount: 32, StartOST: 0})
	// A 100 KiB request covers one stripe: one OST's bandwidth bounds it,
	// so it should take about as long as on a 1-stripe file.
	tWide := fs.Transfer(wide, iosim.Read, 100*units.KiB, 1, r)
	tNarrow := fs.Transfer("/global/cscratch1/n2", iosim.Read, 100*units.KiB, 1, r)
	ratio := tWide / tNarrow
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("small-request times differ too much: wide %v vs narrow %v", tWide, tNarrow)
	}
}

func TestLayerInterfaceCompliance(t *testing.T) {
	var _ iosim.Layer = idealScratch()
	fs := idealScratch()
	if fs.Kind() != iosim.ParallelFS || fs.Mount() != "/global/cscratch1" {
		t.Errorf("kind/mount = %v/%q", fs.Kind(), fs.Mount())
	}
	if fs.MDSCount() != 5 {
		t.Errorf("MDSCount = %d", fs.MDSCount())
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cfg := CoriScratch()
	cfg.DefaultStripeCount = 300 // exceeds OSTs
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg)
}
