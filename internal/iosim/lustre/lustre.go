// Package lustre models a Lustre parallel file system in the style of Cori
// Scratch (paper §2.1.2): five metadata servers, 248 object storage servers
// each managing one object storage target, and user-configurable striping
// (stripe size, stripe count, starting OST) with Cori's defaults of 1 MiB
// and a stripe count of 1.
package lustre

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// Config describes a Lustre deployment.
type Config struct {
	// Name of the file system, e.g. "Cori Scratch".
	Name string
	// MountPrefix under which files live, e.g. "/global/cscratch1".
	MountPrefix string
	// OSTs is the number of object storage targets (248 on Cori).
	OSTs int
	// MDSes is the number of metadata servers (5 on Cori).
	MDSes int
	// DefaultStripeSize is the default stripe size (1 MiB on Cori).
	DefaultStripeSize units.ByteSize
	// DefaultStripeCount is the default stripe count (1 on Cori).
	DefaultStripeCount int
	// PeakBandwidth is the aggregate peak in bytes/s (700 GB/s on Cori).
	PeakBandwidth float64
	// PerProcessBandwidth caps one client process's injection rate.
	PerProcessBandwidth float64
	// MetadataLatency is the per-operation MDS latency in seconds.
	MetadataLatency float64
	// Variability models production-load contention and noise.
	Variability iosim.Variability
}

// CoriScratch returns the configuration of Cori's Lustre scratch system as
// published in the paper: 30 PB usable, 700 GB/s peak, 248 OSTs, 5 MDSes,
// default stripe size 1 MiB and stripe count 1.
func CoriScratch() Config {
	return Config{
		Name:                "Cori Scratch",
		MountPrefix:         "/global/cscratch1",
		OSTs:                248,
		MDSes:               5,
		DefaultStripeSize:   units.MiB,
		DefaultStripeCount:  1,
		PeakBandwidth:       700e9,
		PerProcessBandwidth: 1.5e9,
		MetadataLatency:     600e-6,
		Variability: iosim.Variability{
			UtilizationMean:   0.45,
			UtilizationSpread: 0.30,
			Sigma:             0.55,
		},
	}
}

// Layout is the striping layout of one file: the three user-configurable
// Lustre parameters from §2.1.2.
type Layout struct {
	StripeSize  units.ByteSize
	StripeCount int
	StartOST    int
}

// FS is a Lustre layer instance. It implements iosim.Layer.
type FS struct {
	cfg    Config
	perOST float64

	mu      sync.RWMutex
	layouts map[string]Layout // per-file overrides via SetLayout

	// collector, when non-nil, receives server-side OST load records. Set
	// it before issuing traffic; it is read concurrently afterwards.
	collector *serverstats.Collector
	// faults, when non-nil, degrades transfers inside scheduled fault
	// windows. Attach before issuing traffic.
	faults *faults.Injector
}

// SetFaultSchedule binds a fault schedule to the OST pool; nil detaches
// fault injection. Call before the layer serves traffic.
func (f *FS) SetFaultSchedule(s *faults.Schedule) {
	f.faults = faults.NewInjector(s, f.cfg.Name, f.cfg.OSTs)
}

// FaultInjector returns the bound fault injector (nil when faults are off).
func (f *FS) FaultInjector() *faults.Injector { return f.faults }

// SetCollector attaches a server-side statistics collector sized to the OST
// pool. Call before the layer serves traffic.
func (f *FS) SetCollector(c *serverstats.Collector) { f.collector = c }

// NewCollector builds a collector sized for this deployment's OSTs.
func (f *FS) NewCollector() *serverstats.Collector {
	return serverstats.NewCollector(f.cfg.Name, f.cfg.OSTs)
}

// New validates cfg and builds the layer.
func New(cfg Config) *FS {
	if cfg.OSTs <= 0 || cfg.MDSes <= 0 || cfg.DefaultStripeSize <= 0 ||
		cfg.DefaultStripeCount <= 0 || cfg.PeakBandwidth <= 0 ||
		cfg.PerProcessBandwidth <= 0 || cfg.MountPrefix == "" {
		panic(fmt.Sprintf("lustre: invalid config %+v", cfg))
	}
	if cfg.DefaultStripeCount > cfg.OSTs {
		panic(fmt.Sprintf("lustre: default stripe count %d exceeds %d OSTs",
			cfg.DefaultStripeCount, cfg.OSTs))
	}
	return &FS{
		cfg:     cfg,
		perOST:  cfg.PeakBandwidth / float64(cfg.OSTs),
		layouts: make(map[string]Layout),
	}
}

// Name returns the file-system name.
func (f *FS) Name() string { return f.cfg.Name }

// Kind reports ParallelFS.
func (f *FS) Kind() iosim.LayerKind { return iosim.ParallelFS }

// Mount returns the mount prefix.
func (f *FS) Mount() string { return f.cfg.MountPrefix }

// Peak returns the aggregate peak bandwidth.
func (f *FS) Peak(iosim.RW) float64 { return f.cfg.PeakBandwidth }

// MetaLatency returns the per-operation MDS latency.
func (f *FS) MetaLatency() float64 { return f.cfg.MetadataLatency }

// OSTCount exposes the number of OSTs.
func (f *FS) OSTCount() int { return f.cfg.OSTs }

// MDSCount exposes the number of metadata servers.
func (f *FS) MDSCount() int { return f.cfg.MDSes }

// SetLayout overrides the striping layout for one file, the way `lfs
// setstripe` would. Invalid layouts panic: a stripe count outside [1, OSTs]
// cannot exist on the real system either.
func (f *FS) SetLayout(path string, l Layout) {
	if l.StripeCount < 1 || l.StripeCount > f.cfg.OSTs {
		panic(fmt.Sprintf("lustre: stripe count %d outside [1,%d]", l.StripeCount, f.cfg.OSTs))
	}
	if l.StripeSize <= 0 {
		panic(fmt.Sprintf("lustre: stripe size %d must be positive", l.StripeSize))
	}
	if l.StartOST < 0 || l.StartOST >= f.cfg.OSTs {
		panic(fmt.Sprintf("lustre: start OST %d outside [0,%d)", l.StartOST, f.cfg.OSTs))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.layouts[path] = l
}

// LayoutOf returns the file's striping layout: the explicit override if one
// was set, otherwise the system default with a path-determined starting OST
// (round-robin assignment is deterministic per path, as Lustre's is per
// creation).
func (f *FS) LayoutOf(path string) Layout {
	f.mu.RLock()
	l, ok := f.layouts[path]
	f.mu.RUnlock()
	if ok {
		return l
	}
	return Layout{
		StripeSize:  f.cfg.DefaultStripeSize,
		StripeCount: f.cfg.DefaultStripeCount,
		StartOST:    int(hashString(path) % uint64(f.cfg.OSTs)),
	}
}

// ostSpan returns the striping span a request covers: only the OSTs
// actually touched count — a 100 KiB read from a stripe-count-8 file still
// touches one OST.
func (f *FS) ostSpan(layout Layout, size units.ByteSize) int {
	stripesTouched := int((size + layout.StripeSize - 1) / layout.StripeSize)
	if stripesTouched < 1 {
		stripesTouched = 1
	}
	return min(layout.StripeCount, stripesTouched)
}

// Transfer implements iosim.Layer with no campaign-time context (injected
// fault windows never apply).
func (f *FS) Transfer(path string, rw iosim.RW, size units.ByteSize, procs int, r *rand.Rand) float64 {
	return f.TransferAt(path, rw, size, procs, math.NaN(), r)
}

// TransferAt implements iosim.TimedLayer. Delivered bandwidth is capped by
// the stripe count — a file striped over one OST cannot exceed one OST's
// bandwidth no matter how many clients participate, which is the behavior
// that makes Lustre striping an important tuning parameter (paper §5) —
// and degraded by any fault window active at campaign time t.
func (f *FS) TransferAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64, r *rand.Rand) float64 {
	if procs < 1 {
		procs = 1
	}
	layout := f.LayoutOf(path)
	osts := f.ostSpan(layout, size)
	clientBW := math.Min(f.cfg.PerProcessBandwidth*float64(procs), f.cfg.PeakBandwidth)
	serverBW := f.perOST * float64(osts)
	_ = rw
	eff := f.faults.Effect(t, layout.StartOST, osts)
	dur := iosim.TransferTimeFaulty(size, f.cfg.MetadataLatency, clientBW, serverBW, f.cfg.Variability, eff, r)
	if f.collector != nil {
		f.collector.Record(layout.StartOST, osts, int64(size), dur)
		if eff.Degraded {
			f.collector.RecordDegraded(layout.StartOST, osts, dur)
		}
	}
	return dur
}

// FaultEffectAt implements iosim.Faulted: the effect a request of this
// shape would see at campaign time t.
func (f *FS) FaultEffectAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64) faults.Effect {
	layout := f.LayoutOf(path)
	return f.faults.Effect(t, layout.StartOST, f.ostSpan(layout, size))
}

// hashString is FNV-1a, used for deterministic OST placement.
func hashString(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
