// Package nodelocal models a compute-node-local NVMe in-system storage
// layer in the style of Summit's SCNL (paper §2.1.1): every compute node
// carries its own NVMe device, jobs see a job-private namespace (via
// software such as Spectral or UnifyFS), and aggregate bandwidth scales with
// the number of nodes in the job rather than with a shared server pool.
package nodelocal

import (
	"fmt"
	"math"
	"math/rand/v2"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// Config describes a node-local NVMe deployment.
type Config struct {
	// Name of the layer, e.g. "SCNL".
	Name string
	// MountPrefix under which files live, e.g. "/mnt/bb".
	MountPrefix string
	// Nodes is the number of compute nodes carrying a device (4608 on
	// Summit).
	Nodes int
	// ProcsPerNode converts a job's process count into the node count whose
	// devices it can drive.
	ProcsPerNode int
	// PerNodeReadBandwidth and PerNodeWriteBandwidth are one device's
	// envelopes in bytes/s. Summit's aggregates (26.7 TB/s read, 9.7 TB/s
	// write over 4608 nodes) give ≈5.8 GB/s and ≈2.1 GB/s per node.
	PerNodeReadBandwidth  float64
	PerNodeWriteBandwidth float64
	// Latency is the per-operation latency in seconds; NVMe plus a thin
	// file-system layer, orders of magnitude below PFS metadata latency.
	Latency float64
	// Variability is small: the device is not shared across jobs, so only
	// local effects (GC pauses, thermal) remain.
	Variability iosim.Variability
}

// SummitSCNL returns the configuration of Summit's node-local layer with
// the paper's figures: 7.4 PB raw across 4608 nodes, 26.7/9.7 TB/s peak
// read/write.
func SummitSCNL() Config {
	return Config{
		Name:                  "SCNL",
		MountPrefix:           "/mnt/bb",
		Nodes:                 4608,
		ProcsPerNode:          42,
		PerNodeReadBandwidth:  26.7e12 / 4608,
		PerNodeWriteBandwidth: 9.7e12 / 4608,
		Latency:               40e-6,
		Variability: iosim.Variability{
			UtilizationMean:   0.05,
			UtilizationSpread: 0.05,
			Sigma:             0.25,
		},
	}
}

// FS is a node-local layer instance. It implements iosim.Layer.
type FS struct {
	cfg Config
	// collector, when non-nil, receives per-node device load records. Set
	// it before issuing traffic; it is read concurrently afterwards.
	collector *serverstats.Collector
	// faults, when non-nil, degrades transfers inside scheduled fault
	// windows (device GC storms, dead NVMe drives). Attach before traffic.
	faults *faults.Injector
}

// SetFaultSchedule binds a fault schedule to the node pool; nil detaches
// fault injection. Call before the layer serves traffic.
func (f *FS) SetFaultSchedule(s *faults.Schedule) {
	f.faults = faults.NewInjector(s, f.cfg.Name, f.cfg.Nodes)
}

// FaultInjector returns the bound fault injector (nil when faults are off).
func (f *FS) FaultInjector() *faults.Injector { return f.faults }

// SetCollector attaches a statistics collector sized to the node count.
// Call before the layer serves traffic.
func (f *FS) SetCollector(c *serverstats.Collector) { f.collector = c }

// NewCollector builds a collector with one slot per compute node.
func (f *FS) NewCollector() *serverstats.Collector {
	return serverstats.NewCollector(f.cfg.Name, f.cfg.Nodes)
}

// New validates cfg and builds the layer.
func New(cfg Config) *FS {
	if cfg.Nodes <= 0 || cfg.ProcsPerNode <= 0 || cfg.PerNodeReadBandwidth <= 0 ||
		cfg.PerNodeWriteBandwidth <= 0 || cfg.MountPrefix == "" {
		panic(fmt.Sprintf("nodelocal: invalid config %+v", cfg))
	}
	return &FS{cfg: cfg}
}

// Name returns the layer name.
func (f *FS) Name() string { return f.cfg.Name }

// Kind reports InSystem.
func (f *FS) Kind() iosim.LayerKind { return iosim.InSystem }

// Mount returns the mount prefix.
func (f *FS) Mount() string { return f.cfg.MountPrefix }

// Peak returns the whole machine's aggregate peak for the direction.
func (f *FS) Peak(rw iosim.RW) float64 {
	if rw == iosim.Read {
		return f.cfg.PerNodeReadBandwidth * float64(f.cfg.Nodes)
	}
	return f.cfg.PerNodeWriteBandwidth * float64(f.cfg.Nodes)
}

// MetaLatency returns the per-operation latency.
func (f *FS) MetaLatency() float64 { return f.cfg.Latency }

// NodesFor returns the number of node-local devices a job with the given
// process count can drive, capped at the machine size.
func (f *FS) NodesFor(procs int) int {
	if procs < 1 {
		procs = 1
	}
	nodes := (procs + f.cfg.ProcsPerNode - 1) / f.cfg.ProcsPerNode
	return min(nodes, f.cfg.Nodes)
}

// startNode derives a job's allocation start from the file path, so
// different jobs' allocations land on different device spans.
func startNode(path string) int {
	start := 0
	for i := 0; i < len(path); i++ {
		start = start*31 + int(path[i])
	}
	if start < 0 {
		start = -start
	}
	return start
}

// Transfer implements iosim.Layer with no campaign-time context (injected
// fault windows never apply).
func (f *FS) Transfer(path string, rw iosim.RW, size units.ByteSize, procs int, r *rand.Rand) float64 {
	return f.TransferAt(path, rw, size, procs, math.NaN(), r)
}

// TransferAt implements iosim.TimedLayer. Bandwidth scales with the job's
// node count — the defining property of a node-local layer — and is never
// shared with other jobs, but the devices themselves can sit inside fault
// windows (GC storms, dead drives) at campaign time t.
func (f *FS) TransferAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64, r *rand.Rand) float64 {
	nodes := f.NodesFor(procs)
	perNode := f.cfg.PerNodeWriteBandwidth
	if rw == iosim.Read {
		perNode = f.cfg.PerNodeReadBandwidth
	}
	bw := perNode * float64(nodes)
	start := startNode(path)
	eff := f.faults.Effect(t, start, nodes)
	dur := iosim.TransferTimeFaulty(size, f.cfg.Latency, bw, bw, f.cfg.Variability, eff, r)
	if f.collector != nil {
		// A job's devices are its own nodes; spread the span from a
		// path-derived start so different jobs' allocations differ.
		f.collector.Record(start, nodes, int64(size), dur)
		if eff.Degraded {
			f.collector.RecordDegraded(start, nodes, dur)
		}
	}
	return dur
}

// FaultEffectAt implements iosim.Faulted: the effect a request of this
// shape would see at campaign time t.
func (f *FS) FaultEffectAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64) faults.Effect {
	return f.faults.Effect(t, startNode(path), f.NodesFor(procs))
}
