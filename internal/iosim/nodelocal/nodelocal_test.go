package nodelocal

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

func idealSCNL() *FS {
	cfg := SummitSCNL()
	cfg.Variability = iosim.Variability{}
	return New(cfg)
}

func TestSummitSCNLConfigMatchesPaper(t *testing.T) {
	cfg := SummitSCNL()
	if cfg.Nodes != 4608 {
		t.Errorf("nodes = %d, want 4608", cfg.Nodes)
	}
	fs := New(cfg)
	// Aggregate peaks from §2.1.1: 26.7 TB/s read, 9.7 TB/s write.
	if got := fs.Peak(iosim.Read); got < 26.6e12 || got > 26.8e12 {
		t.Errorf("aggregate read peak %.4g, want ≈26.7e12", got)
	}
	if got := fs.Peak(iosim.Write); got < 9.6e12 || got > 9.8e12 {
		t.Errorf("aggregate write peak %.4g, want ≈9.7e12", got)
	}
}

func TestReadFasterThanWrite(t *testing.T) {
	fs := idealSCNL()
	r := rand.New(rand.NewPCG(1, 1))
	size := units.GiB
	tr := fs.Transfer("/mnt/bb/f", iosim.Read, size, 42, r)
	tw := fs.Transfer("/mnt/bb/f", iosim.Write, size, 42, r)
	if tr >= tw {
		t.Errorf("NVMe read (%v) should beat write (%v)", tr, tw)
	}
}

func TestNodesFor(t *testing.T) {
	fs := idealSCNL()
	cases := []struct{ procs, want int }{
		{0, 1},
		{1, 1},
		{42, 1},
		{43, 2},
		{84, 2},
		{42 * 4608, 4608},
		{42*4608 + 1, 4608}, // capped at the machine
	}
	for _, c := range cases {
		if got := fs.NodesFor(c.procs); got != c.want {
			t.Errorf("NodesFor(%d) = %d, want %d", c.procs, got, c.want)
		}
	}
}

func TestBandwidthScalesWithNodes(t *testing.T) {
	fs := idealSCNL()
	r := rand.New(rand.NewPCG(2, 2))
	size := 10 * units.GiB
	t1 := fs.Transfer("/mnt/bb/f", iosim.Write, size, 42, r)     // 1 node
	t16 := fs.Transfer("/mnt/bb/f", iosim.Write, size, 42*16, r) // 16 nodes
	if t16 >= t1/8 {
		t.Errorf("16-node transfer %v not ≫8× faster than 1-node %v", t16, t1)
	}
}

func TestLowLatency(t *testing.T) {
	fs := idealSCNL()
	if fs.MetaLatency() >= 1e-3 {
		t.Errorf("node-local latency %v should be far below 1ms", fs.MetaLatency())
	}
}

func TestLayerInterfaceCompliance(t *testing.T) {
	var _ iosim.Layer = idealSCNL()
	fs := idealSCNL()
	if fs.Kind() != iosim.InSystem || fs.Mount() != "/mnt/bb" || fs.Name() != "SCNL" {
		t.Errorf("identity: %v %q %q", fs.Kind(), fs.Mount(), fs.Name())
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cfg := SummitSCNL()
	cfg.ProcsPerNode = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg)
}
