package gpfs

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/units"
)

func idealAlpine() *FS {
	cfg := Alpine()
	cfg.Variability = iosim.Variability{} // deterministic for physics tests
	return New(cfg)
}

func TestAlpineConfigMatchesPaper(t *testing.T) {
	cfg := Alpine()
	if cfg.BlockSize != 16*units.MiB {
		t.Errorf("block size %v, want 16MiB", cfg.BlockSize)
	}
	if cfg.NSDServers != 154 {
		t.Errorf("NSD servers %d, want 154", cfg.NSDServers)
	}
	if cfg.PeakBandwidth != 2.5e12 {
		t.Errorf("peak %v, want 2.5e12", cfg.PeakBandwidth)
	}
}

func TestServersForBlockSpan(t *testing.T) {
	fs := idealAlpine()
	cases := []struct {
		size units.ByteSize
		want int
	}{
		{0, 1},
		{1, 1},
		{16 * units.MiB, 1},
		{16*units.MiB + 1, 2},
		{160 * units.MiB, 10},
		{100 * units.GiB, 154}, // 6400 blocks saturate the 154-server pool
	}
	for _, c := range cases {
		if got := fs.ServersFor(c.size); got != c.want {
			t.Errorf("ServersFor(%v) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestLargeFilesEngageMoreServers(t *testing.T) {
	fs := idealAlpine()
	r := rand.New(rand.NewPCG(1, 1))
	// With many clients, a 1-block file is server-bound while a 64-block
	// file spreads over 64 NSDs: bandwidth should scale accordingly.
	oneBlock := fs.Transfer("/gpfs/alpine/a", iosim.Read, 16*units.MiB, 512, r)
	manyBlocks := fs.Transfer("/gpfs/alpine/b", iosim.Read, 64*16*units.MiB, 512, r)
	bwOne := float64(16*units.MiB) / oneBlock
	bwMany := float64(64*16*units.MiB) / manyBlocks
	if bwMany < 10*bwOne {
		t.Errorf("64-block bandwidth %.3g not ≫ 1-block bandwidth %.3g", bwMany, bwOne)
	}
}

func TestClientBoundSmallJobs(t *testing.T) {
	fs := idealAlpine()
	r := rand.New(rand.NewPCG(2, 2))
	size := units.GiB
	t1 := fs.Transfer("/gpfs/alpine/f", iosim.Write, size, 1, r)
	t8 := fs.Transfer("/gpfs/alpine/f", iosim.Write, size, 8, r)
	if t8 >= t1 {
		t.Errorf("8-process transfer (%v) not faster than 1-process (%v)", t8, t1)
	}
}

func TestTransferNeverExceedsPeak(t *testing.T) {
	fs := idealAlpine()
	r := rand.New(rand.NewPCG(3, 3))
	size := 10 * units.GiB
	dur := fs.Transfer("/gpfs/alpine/f", iosim.Read, size, 1<<20, r)
	bw := float64(size) / dur
	if bw > 2.5e12 {
		t.Errorf("delivered bandwidth %.3g exceeds machine peak", bw)
	}
}

func TestLayerInterfaceCompliance(t *testing.T) {
	var _ iosim.Layer = idealAlpine()
	fs := idealAlpine()
	if fs.Kind() != iosim.ParallelFS {
		t.Error("GPFS must report ParallelFS")
	}
	if fs.Mount() != "/gpfs/alpine" {
		t.Errorf("mount = %q", fs.Mount())
	}
	if fs.Peak(iosim.Read) != fs.Peak(iosim.Write) {
		t.Error("GPFS model is read/write symmetric")
	}
	if fs.MetaLatency() <= 0 {
		t.Error("metadata latency must be positive")
	}
	if fs.BlockSize() != 16*units.MiB {
		t.Errorf("BlockSize() = %v", fs.BlockSize())
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cfg := Alpine()
	cfg.NSDServers = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg)
}

// TestDegradedTimeIsObservedNotScheduled pins the fix for the server-stats
// Degraded column: it must report the service time actually spent inside
// fault windows (what a monitoring deployment observes), not the scheduled
// wall-clock length of the windows. A mostly-idle campaign that issues only
// a few short requests during a long outage window used to be charged the
// whole window.
func TestDegradedTimeIsObservedNotScheduled(t *testing.T) {
	fs := idealAlpine()
	const winStart, winEnd = 100.0, 700.0 // 600 s scheduled degradation
	fs.SetFaultSchedule(&faults.Schedule{
		Seed: 7,
		Windows: []faults.Window{{
			Kind: faults.Slowdown, Start: winStart, End: winEnd,
			ServerFrac: 1.0, Severity: 0.5,
		}},
	})
	c := fs.NewCollector()
	fs.SetCollector(c)

	r := rand.New(rand.NewPCG(42, 0))
	var inWindow, total float64
	for i := 0; i < 20; i++ {
		at := float64(i) * 50 // requests at t = 0, 50, ..., 950
		dur := fs.TransferAt("/gpfs/alpine/f", iosim.Read, 16*units.MiB, 8, at, r)
		total += dur
		if at >= winStart && at < winEnd {
			inWindow += dur
		}
	}

	got := c.DegradedBusySecs()
	if diff := got - inWindow; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("observed degraded time %.6f s, want in-window service time %.6f s", got, inWindow)
	}
	// The two paths must genuinely disagree for this schedule: the window
	// is hundreds of seconds of wall time, the requests inside it only
	// fractions of a second of service time.
	if scheduled := winEnd - winStart; got > scheduled/100 {
		t.Errorf("observed degraded time %.3f s suspiciously close to scheduled window %v s — is the column back on the schedule path?", got, scheduled)
	}
	if got <= 0 || got > total {
		t.Errorf("degraded time %.6f s outside (0, total=%.6f]", got, total)
	}
}
