// Package gpfs models a center-wide IBM Spectrum Scale (GPFS) parallel file
// system in the style of Summit's Alpine (paper §2.1.1): a single POSIX
// namespace whose file data is partitioned into fixed-size GPFS blocks and
// distributed round-robin across Network Shared Disk (NSD) servers, starting
// from a randomly chosen server.
package gpfs

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// Config describes a GPFS deployment.
type Config struct {
	// Name of the file system, e.g. "Alpine".
	Name string
	// MountPrefix under which files live, e.g. "/gpfs/alpine".
	MountPrefix string
	// BlockSize is the GPFS block size (16 MiB on Alpine).
	BlockSize units.ByteSize
	// NSDServers is the number of NSD data servers (154 on Alpine).
	NSDServers int
	// PeakBandwidth is the aggregate peak in bytes/s (2.5 TB/s on Alpine).
	PeakBandwidth float64
	// PerProcessBandwidth caps one client process's injection rate.
	PerProcessBandwidth float64
	// MetadataLatency is the per-operation latency floor in seconds.
	MetadataLatency float64
	// Variability models production-load contention and noise.
	Variability iosim.Variability
}

// Alpine returns the configuration of Summit's center-wide GPFS deployment
// with the figures published in the paper: 250 PB usable, 2.5 TB/s peak,
// 154 NSD servers, 16 MiB blocks.
func Alpine() Config {
	return Config{
		Name:                "Alpine",
		MountPrefix:         "/gpfs/alpine",
		BlockSize:           16 * units.MiB,
		NSDServers:          154,
		PeakBandwidth:       2.5e12,
		PerProcessBandwidth: 2.0e9,
		MetadataLatency:     400e-6,
		Variability: iosim.Variability{
			UtilizationMean:   0.45,
			UtilizationSpread: 0.30,
			Sigma:             0.55,
		},
	}
}

// FS is a GPFS layer instance. It implements iosim.Layer.
type FS struct {
	cfg    Config
	perNSD float64
	// collector, when non-nil, receives server-side load records. Set it
	// before issuing traffic; it is read concurrently afterwards.
	collector *serverstats.Collector
	// faults, when non-nil, degrades transfers inside scheduled fault
	// windows. Attach before issuing traffic.
	faults *faults.Injector
}

// SetFaultSchedule binds a fault schedule to the NSD server pool; nil
// detaches fault injection. Call before the layer serves traffic.
func (f *FS) SetFaultSchedule(s *faults.Schedule) {
	f.faults = faults.NewInjector(s, f.cfg.Name, f.cfg.NSDServers)
}

// FaultInjector returns the bound fault injector (nil when faults are off).
func (f *FS) FaultInjector() *faults.Injector { return f.faults }

// SetCollector attaches a server-side statistics collector sized to the NSD
// pool. Call before the layer serves traffic.
func (f *FS) SetCollector(c *serverstats.Collector) { f.collector = c }

// NewCollector builds a collector sized for this deployment's NSD servers.
func (f *FS) NewCollector() *serverstats.Collector {
	return serverstats.NewCollector(f.cfg.Name, f.cfg.NSDServers)
}

// New validates cfg and builds the layer.
func New(cfg Config) *FS {
	if cfg.BlockSize <= 0 || cfg.NSDServers <= 0 || cfg.PeakBandwidth <= 0 ||
		cfg.PerProcessBandwidth <= 0 || cfg.MountPrefix == "" {
		panic(fmt.Sprintf("gpfs: invalid config %+v", cfg))
	}
	return &FS{cfg: cfg, perNSD: cfg.PeakBandwidth / float64(cfg.NSDServers)}
}

// Name returns the file-system name.
func (f *FS) Name() string { return f.cfg.Name }

// Kind reports ParallelFS.
func (f *FS) Kind() iosim.LayerKind { return iosim.ParallelFS }

// Mount returns the mount prefix.
func (f *FS) Mount() string { return f.cfg.MountPrefix }

// Peak returns the aggregate peak bandwidth; GPFS is symmetric for reads
// and writes at this level of abstraction.
func (f *FS) Peak(iosim.RW) float64 { return f.cfg.PeakBandwidth }

// MetaLatency returns the per-operation latency floor.
func (f *FS) MetaLatency() float64 { return f.cfg.MetadataLatency }

// BlockSize exposes the configured GPFS block size.
func (f *FS) BlockSize() units.ByteSize { return f.cfg.BlockSize }

// ServersFor returns how many distinct NSD servers serve a request of the
// given size: one per GPFS block touched, saturating at the server pool.
// The round-robin start server is random, so the count does not depend on
// the starting position.
func (f *FS) ServersFor(size units.ByteSize) int {
	if size <= 0 {
		return 1
	}
	blocks := int((size + f.cfg.BlockSize - 1) / f.cfg.BlockSize)
	return min(blocks, f.cfg.NSDServers)
}

// startServer derives the file's starting NSD from its path: GPFS picks the
// starting server randomly per file, so a path-stable hash makes repeated
// accesses hit the same server sequence.
func (f *FS) startServer(path string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	return int(h.Sum64() % uint64(f.cfg.NSDServers))
}

// Transfer implements iosim.Layer with no campaign-time context (injected
// fault windows never apply).
func (f *FS) Transfer(path string, rw iosim.RW, size units.ByteSize, procs int, r *rand.Rand) float64 {
	return f.TransferAt(path, rw, size, procs, math.NaN(), r)
}

// TransferAt implements iosim.TimedLayer. Delivered bandwidth is the lesser
// of the clients' injection capability and the NSD servers engaged by the
// block span, degraded by production contention and by any fault window
// active at campaign time t.
func (f *FS) TransferAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64, r *rand.Rand) float64 {
	if procs < 1 {
		procs = 1
	}
	clientBW := math.Min(f.cfg.PerProcessBandwidth*float64(procs), f.cfg.PeakBandwidth)
	span := f.ServersFor(size)
	serverBW := f.perNSD * float64(span)
	_ = rw
	start := f.startServer(path)
	eff := f.faults.Effect(t, start, span)
	dur := iosim.TransferTimeFaulty(size, f.cfg.MetadataLatency, clientBW, serverBW, f.cfg.Variability, eff, r)
	if f.collector != nil {
		f.collector.Record(start, span, int64(size), dur)
		if eff.Degraded {
			f.collector.RecordDegraded(start, span, dur)
		}
	}
	return dur
}

// FaultEffectAt implements iosim.Faulted: the effect a request of this
// shape would see at campaign time t.
func (f *FS) FaultEffectAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64) faults.Effect {
	return f.faults.Effect(t, f.startServer(path), f.ServersFor(size))
}
