package systems

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

func TestNewSummitShape(t *testing.T) {
	s := NewSummit()
	if s.Name != "Summit" || s.ProcsPerNode != 42 {
		t.Errorf("summit header: %q %d", s.Name, s.ProcsPerNode)
	}
	if s.PFS.Kind() != iosim.ParallelFS || s.PFS.Name() != "Alpine" {
		t.Errorf("summit PFS: %v %q", s.PFS.Kind(), s.PFS.Name())
	}
	if s.InSystem.Kind() != iosim.InSystem || s.InSystem.Name() != "SCNL" {
		t.Errorf("summit in-system: %v %q", s.InSystem.Kind(), s.InSystem.Name())
	}
	// Paper §2.1.1: SCNL peak read 26.7 TB/s dwarfs Alpine's 2.5 TB/s.
	if s.InSystem.Peak(iosim.Read) <= s.PFS.Peak(iosim.Read) {
		t.Error("SCNL aggregate read peak should exceed Alpine's")
	}
}

func TestNewCoriShape(t *testing.T) {
	s := NewCori()
	if s.Name != "Cori" || s.ProcsPerNode != 64 {
		t.Errorf("cori header: %q %d", s.Name, s.ProcsPerNode)
	}
	if s.PFS.Name() != "Cori Scratch" || s.InSystem.Name() != "CBB" {
		t.Errorf("cori layers: %q %q", s.PFS.Name(), s.InSystem.Name())
	}
	// Paper §2.1.2: CBB 1.7 TB/s vs scratch 700 GB/s.
	if s.InSystem.Peak(iosim.Write) <= s.PFS.Peak(iosim.Write) {
		t.Error("CBB peak should exceed Cori scratch's")
	}
}

func TestLayerForRouting(t *testing.T) {
	s := NewSummit()
	if got := s.LayerFor("/gpfs/alpine/proj/x.h5"); got != s.PFS {
		t.Errorf("alpine path routed to %v", got.Name())
	}
	if got := s.LayerFor("/mnt/bb/user/tmp.dat"); got != s.InSystem {
		t.Errorf("bb path routed to %v", got.Name())
	}
}

func TestLayerForPanicsOnUnknownMount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unroutable path")
		}
	}()
	NewSummit().LayerFor("/home/user/file")
}

func TestByName(t *testing.T) {
	for _, n := range []string{"Summit", "summit", "Cori", "cori"} {
		if ByName(n) == nil {
			t.Errorf("ByName(%q) = nil", n)
		}
	}
	if ByName("Frontier") != nil {
		t.Error("ByName(Frontier) should be nil")
	}
}

// The in-system layers must beat the PFS for same-shape requests — the
// premise of the paper's Recommendation 3 (stage data to the fast layer).
func TestInSystemFasterThanPFS(t *testing.T) {
	for _, sys := range []*iosim.System{NewSummit(), NewCori()} {
		r := rand.New(rand.NewPCG(1, 1))
		const trials = 200
		var pfsTotal, insysTotal float64
		for i := 0; i < trials; i++ {
			pfsTotal += sys.PFS.Transfer(sys.PFS.Mount()+"/f", iosim.Read, 100*units.MiB, 4, r)
			insysTotal += sys.InSystem.Transfer(sys.InSystem.Mount()+"/f", iosim.Read, 100*units.MiB, 4, r)
		}
		if insysTotal >= pfsTotal {
			t.Errorf("%s: in-system mean %v not faster than PFS mean %v",
				sys.Name, insysTotal/trials, pfsTotal/trials)
		}
	}
}

// Larger requests must achieve higher delivered bandwidth on every layer:
// the motivation for aggregation (Recommendation 2).
func TestBandwidthImprovesWithRequestSize(t *testing.T) {
	for _, sys := range []*iosim.System{NewSummit(), NewCori()} {
		for _, layer := range sys.Layers() {
			r := rand.New(rand.NewPCG(7, 7))
			mb := func(size units.ByteSize) float64 {
				var total float64
				const trials = 300
				for i := 0; i < trials; i++ {
					total += layer.Transfer(layer.Mount()+"/f", iosim.Write, size, 1, r)
				}
				return float64(size) * trials / total
			}
			small := mb(4 * units.KiB)
			large := mb(64 * units.MiB)
			if large < 5*small {
				t.Errorf("%s/%s: 64MiB bandwidth %.3g not ≫ 4KiB bandwidth %.3g",
					sys.Name, layer.Name(), large, small)
			}
		}
	}
}
