// Package systems assembles the two supercomputer I/O subsystems the paper
// studies from the layer models in the sibling packages: Summit (Alpine
// GPFS + SCNL node-local NVMe) and Cori (Lustre scratch + CBB DataWarp
// burst buffer).
package systems

import (
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/datawarp"
	"iolayers/internal/iosim/gpfs"
	"iolayers/internal/iosim/lustre"
	"iolayers/internal/iosim/nodelocal"
)

// NewSummit builds the Summit I/O subsystem of paper §2.1.1: the Alpine
// center-wide GPFS deployment and the SCNL compute-node-local NVMe layer.
// Summit nodes run 2 × 21-core POWER9, giving 42 hardware cores per node.
func NewSummit() *iosim.System {
	return &iosim.System{
		Name:         "Summit",
		PFS:          gpfs.New(gpfs.Alpine()),
		InSystem:     nodelocal.New(nodelocal.SummitSCNL()),
		ProcsPerNode: 42,
	}
}

// NewCori builds the Cori I/O subsystem of paper §2.1.2: the Lustre scratch
// file system and the CBB DataWarp burst buffer. Cori KNL nodes have 68
// cores; the conventional scheduling density is 64 processes per node.
func NewCori() *iosim.System {
	return &iosim.System{
		Name:         "Cori",
		PFS:          lustre.New(lustre.CoriScratch()),
		InSystem:     datawarp.New(datawarp.CoriCBB()),
		ProcsPerNode: 64,
	}
}

// ByName returns the system with the given name ("summit" or "cori",
// case-sensitive on the canonical capitalization or all-lower), or nil.
func ByName(name string) *iosim.System {
	switch name {
	case "Summit", "summit":
		return NewSummit()
	case "Cori", "cori":
		return NewCori()
	default:
		return nil
	}
}
