package iosim_test

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/lustre"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestAttachCollectorsCoversBothLayers(t *testing.T) {
	for _, name := range []string{"Summit", "Cori"} {
		sys := systems.ByName(name)
		collectors := iosim.AttachCollectors(sys)
		if len(collectors) != 2 {
			t.Fatalf("%s: %d collectors, want 2 (every layer is instrumented)", name, len(collectors))
		}
		r := rand.New(rand.NewPCG(1, 1))
		for _, layer := range sys.Layers() {
			layer.Transfer(layer.Mount()+"/f", iosim.Write, units.MiB, 4, r)
			c := collectors[layer.Name()]
			if c.ByteImbalance().Mean == 0 {
				t.Errorf("%s/%s: collector saw no traffic", name, layer.Name())
			}
		}
	}
}

// Striping spreads server-side load: stripe-count-1 traffic concentrates on
// single OSTs (high Gini), wide striping flattens it — the imbalance
// mechanism Shantharam et al. [22] diagnosed from the server side.
func TestStripingReducesServerImbalance(t *testing.T) {
	run := func(stripes int) float64 {
		cfg := lustre.CoriScratch()
		cfg.Variability = iosim.Variability{}
		fs := lustre.New(cfg)
		c := fs.NewCollector()
		fs.SetCollector(c)
		r := rand.New(rand.NewPCG(7, 7))
		for i := 0; i < 40; i++ {
			path := cfg.MountPrefix + "/f" + string(rune('a'+i%26)) + string(rune('a'+i/26))
			fs.SetLayout(path, lustre.Layout{
				StripeSize: units.MiB, StripeCount: stripes, StartOST: (i * 37) % cfg.OSTs,
			})
			fs.Transfer(path, iosim.Write, 256*units.MiB, 8, r)
		}
		return c.ByteImbalance().Gini
	}
	narrow := run(1)
	wide := run(64)
	if wide >= narrow {
		t.Errorf("64-stripe Gini %.3f not below 1-stripe Gini %.3f", wide, narrow)
	}
	if narrow < 0.5 {
		t.Errorf("stripe-1 traffic should be strongly imbalanced, Gini %.3f", narrow)
	}
}

func TestCollectorRecordsActualDurations(t *testing.T) {
	sys := systems.NewSummit()
	collectors := iosim.AttachCollectors(sys)
	r := rand.New(rand.NewPCG(2, 2))
	sys.PFS.Transfer("/gpfs/alpine/big.bin", iosim.Read, units.GiB, 8, r)
	busy := collectors["Alpine"].BusySummary()
	if busy.N == 0 || busy.Max <= 0 {
		t.Errorf("busy time not recorded: %+v", busy)
	}
}
