package faults

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
)

// GenConfig parameterizes random schedule synthesis: how many windows of
// each kind to scatter over the period, how wide and how severe they are on
// average, and the background transient error rate. Zero-valued duration
// and shape fields fall back to the production defaults below.
type GenConfig struct {
	// Seed drives both window placement and per-server membership.
	Seed uint64
	// PeriodSeconds is the campaign span windows are scattered over.
	PeriodSeconds float64
	// Slowdowns, Outages, and Storms count the windows of each kind.
	Slowdowns, Outages, Storms int
	// ServerFrac is the mean fraction of servers a window touches.
	ServerFrac float64
	// Severity is the mean bandwidth fraction a slowdown removes.
	Severity float64
	// LatencyFactor is the mean metadata-storm latency multiplier.
	LatencyFactor float64
	// MeanDurationSeconds is the mean window length.
	MeanDurationSeconds float64
	// TransientErrorRate is the background per-op error probability.
	TransientErrorRate float64
	// OutageErrorRate is the extra per-op error probability inside outage
	// windows (span-fraction scaled).
	OutageErrorRate float64
}

// Production returns the default production-load fault mix for a campaign
// of the given period: roughly two slowdowns, one storm, and half an outage
// per month of simulated time, in the spirit of the degraded intervals the
// IO500 submission study observes on long-lived deployments.
func Production(seed uint64, periodSeconds float64) GenConfig {
	months := periodSeconds / (30.4 * 86400)
	if months < 1 {
		months = 1
	}
	return GenConfig{
		Seed:                seed,
		PeriodSeconds:       periodSeconds,
		Slowdowns:           int(math.Round(2 * months)),
		Outages:             int(math.Round(0.5 * months)),
		Storms:              int(math.Round(1 * months)),
		ServerFrac:          0.08,
		Severity:            0.6,
		LatencyFactor:       8,
		MeanDurationSeconds: 6 * 3600,
		TransientErrorRate:  2e-5,
		OutageErrorRate:     0.3,
	}
}

// Generate synthesizes a schedule from the config, deterministically from
// its seed: the same config always yields the same windows.
func Generate(cfg GenConfig) *Schedule {
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = 365 * 86400
	}
	if cfg.ServerFrac <= 0 || cfg.ServerFrac > 1 {
		cfg.ServerFrac = 0.08
	}
	if cfg.Severity <= 0 || cfg.Severity >= 1 {
		cfg.Severity = 0.6
	}
	if cfg.LatencyFactor < 1 {
		cfg.LatencyFactor = 8
	}
	if cfg.MeanDurationSeconds <= 0 {
		cfg.MeanDurationSeconds = 6 * 3600
	}
	r := rand.New(rand.NewPCG(cfg.Seed, 0xFA01755EED))
	s := &Schedule{Seed: cfg.Seed, TransientErrorRate: cfg.TransientErrorRate}
	emit := func(n int, kind Kind, build func(w *Window, r *rand.Rand)) {
		for i := 0; i < n; i++ {
			dur := cfg.MeanDurationSeconds * math.Exp(0.6*r.NormFloat64())
			if dur < 60 {
				dur = 60
			}
			start := r.Float64() * cfg.PeriodSeconds
			frac := clamp(cfg.ServerFrac*math.Exp(0.5*r.NormFloat64()), 0.005, 1)
			w := Window{Kind: kind, Start: start, End: start + dur, ServerFrac: frac}
			build(&w, r)
			s.Windows = append(s.Windows, w)
		}
	}
	emit(cfg.Slowdowns, Slowdown, func(w *Window, r *rand.Rand) {
		w.Severity = clamp(cfg.Severity*(0.6+0.8*r.Float64()), 0.05, 0.95)
	})
	emit(cfg.Outages, Outage, func(w *Window, r *rand.Rand) {
		// Outages are shorter and narrower than slowdowns: whole-pool
		// blackouts are rare; a few dark servers for an hour or two is not.
		w.End = w.Start + (w.End-w.Start)*0.3
		w.ServerFrac = clamp(w.ServerFrac*0.5, 0.002, 1)
		w.ErrorRate = cfg.OutageErrorRate
	})
	emit(cfg.Storms, MetaStorm, func(w *Window, r *rand.Rand) {
		w.LatencyFactor = 1 + (cfg.LatencyFactor-1)*(0.5+r.Float64())
	})
	return s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ParseSpec parses a fault-schedule specification string into a GenConfig.
// The spec is either the word "production" (the default mix) or a
// comma-separated key=value list overriding it:
//
//	slowdowns=N   outages=N   storms=N      window counts
//	frac=F        mean affected-server fraction (0,1]
//	severity=F    mean slowdown bandwidth loss (0,1)
//	latfactor=F   mean meta-storm latency multiplier (≥1)
//	duration=F    mean window length in hours
//	errrate=F     background transient-error probability per op
//
// e.g. "slowdowns=12,outages=3,errrate=1e-4". Unlisted keys keep their
// production defaults. Seed and period are supplied by the caller.
func ParseSpec(spec string, seed uint64, periodSeconds float64) (GenConfig, error) {
	cfg := Production(seed, periodSeconds)
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "production") {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec term %q (want key=value)", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "slowdowns", "outages", "storms":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("faults: %s=%q is not a non-negative integer", k, v)
			}
			switch k {
			case "slowdowns":
				cfg.Slowdowns = n
			case "outages":
				cfg.Outages = n
			case "storms":
				cfg.Storms = n
			}
		case "frac", "severity", "latfactor", "duration", "errrate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: %s=%q is not a number", k, v)
			}
			switch {
			case k == "frac" && (f <= 0 || f > 1):
				return cfg, fmt.Errorf("faults: frac=%v outside (0,1]", f)
			case k == "severity" && (f <= 0 || f >= 1):
				return cfg, fmt.Errorf("faults: severity=%v outside (0,1)", f)
			case k == "latfactor" && f < 1:
				return cfg, fmt.Errorf("faults: latfactor=%v below 1", f)
			case k == "duration" && f <= 0:
				return cfg, fmt.Errorf("faults: duration=%v must be positive hours", f)
			case k == "errrate" && (f < 0 || f > 1):
				return cfg, fmt.Errorf("faults: errrate=%v outside [0,1]", f)
			}
			switch k {
			case "frac":
				cfg.ServerFrac = f
			case "severity":
				cfg.Severity = f
			case "latfactor":
				cfg.LatencyFactor = f
			case "duration":
				cfg.MeanDurationSeconds = f * 3600
			case "errrate":
				cfg.TransientErrorRate = f
			}
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	return cfg, nil
}
