// Package faults models the degraded-server reality of production I/O
// subsystems: the paper's core finding is that contended, partially broken
// deployments shape delivered per-file performance far more than peak
// hardware numbers (§6, Figures 11–12), and related production studies
// (IO500 submissions, Darshan burst surveys) show heavy-tailed,
// regime-switching variability that a single well-behaved noise term cannot
// express.
//
// A Schedule is a seed-reproducible set of fault windows — per-server
// slowdowns, server outages, metadata storms — plus a background transient
// I/O error rate. An Injector binds a schedule to one storage layer's server
// pool and answers, as a pure function of (time, server span), how degraded
// a request is. Everything is deterministic: the same seed and schedule
// produce the same faults for any worker count, because no mutable state is
// consulted at request time.
package faults

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
)

// Kind classifies one fault window.
type Kind int

// The three window kinds.
const (
	// Slowdown: affected servers deliver (1 − Severity) of their bandwidth.
	Slowdown Kind = iota
	// Outage: affected servers deliver nothing; requests spanning them run
	// on the surviving span (degrade-to-slow) and error more often.
	Outage
	// MetaStorm: a metadata storm multiplies per-operation latency on the
	// affected servers by LatencyFactor.
	MetaStorm
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case Outage:
		return "outage"
	case MetaStorm:
		return "meta-storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Window is one degraded interval on a subset of a layer's servers.
type Window struct {
	// Kind selects the degradation mode.
	Kind Kind
	// Start and End bound the window in campaign seconds.
	Start, End float64
	// ServerFrac is the fraction (0, 1] of the layer's servers affected.
	// Which servers fall inside is derived per (schedule seed, layer,
	// window, server), so the same schedule degrades the same servers in
	// every run.
	ServerFrac float64
	// Severity is the fraction of bandwidth lost on affected servers
	// (Slowdown windows only), in (0, 1).
	Severity float64
	// LatencyFactor multiplies per-operation latency on affected servers
	// (MetaStorm windows only), ≥ 1.
	LatencyFactor float64
	// ErrorRate is the additional per-operation transient-error probability
	// while the window is active, scaled by the affected share of the
	// request's span.
	ErrorRate float64
}

// Schedule is a campaign-wide fault plan shared by every layer of a system.
type Schedule struct {
	// Seed drives per-server window membership (and nothing else: the
	// windows themselves are explicit data).
	Seed uint64
	// Windows lists every fault interval, in no particular order.
	Windows []Window
	// TransientErrorRate is the background per-operation probability of a
	// transient I/O error, active at all times.
	TransientErrorRate float64
}

// Describe renders a short human-readable summary for report headers.
func (s *Schedule) Describe() string {
	if s == nil {
		return "none"
	}
	var slow, out, storm int
	for _, w := range s.Windows {
		switch w.Kind {
		case Slowdown:
			slow++
		case Outage:
			out++
		case MetaStorm:
			storm++
		}
	}
	return fmt.Sprintf("%d slowdowns, %d outages, %d meta-storms, err rate %.2g, seed %d",
		slow, out, storm, s.TransientErrorRate, s.Seed)
}

// SlowdownAt returns the machine-wide aggregate bandwidth scale at time t,
// treating ServerFrac as a capacity weight (no per-server resolution). The
// batch scheduler uses it to inflate runtimes of jobs that execute through
// degraded periods.
func (s *Schedule) SlowdownAt(t float64) float64 {
	if s == nil || math.IsNaN(t) {
		return 1
	}
	scale := 1.0
	for _, w := range s.Windows {
		if t < w.Start || t >= w.End {
			continue
		}
		switch w.Kind {
		case Slowdown:
			scale *= 1 - w.ServerFrac*w.Severity
		case Outage:
			scale *= 1 - w.ServerFrac
		}
	}
	if scale < 0.01 {
		scale = 0.01
	}
	return scale
}

// ActiveAt reports whether any window is active at time t.
func (s *Schedule) ActiveAt(t float64) bool {
	if s == nil || math.IsNaN(t) {
		return false
	}
	for _, w := range s.Windows {
		if t >= w.Start && t < w.End {
			return true
		}
	}
	return false
}

// Effect is the resolved degradation of one request: multiplicative scales
// the layer's transfer-time skeleton applies on top of ordinary
// production-load variability.
type Effect struct {
	// BWScale multiplies server-side bandwidth, in (0, 1].
	BWScale float64
	// LatencyScale multiplies per-operation latency, ≥ 1.
	LatencyScale float64
	// ErrorRate is the per-operation transient-error probability for this
	// request (background rate plus active-window contributions).
	ErrorRate float64
	// Degraded reports whether any fault window touched the request.
	Degraded bool
	// Down reports that every server in the request's span was in an
	// outage: the request limps along at the floor bandwidth instead of
	// panicking, and errors are near-certain.
	Down bool
}

// ZeroEffect is the no-fault effect.
func ZeroEffect() Effect { return Effect{BWScale: 1, LatencyScale: 1} }

// bwFloor keeps degraded requests finite: even a fully-dark span serves at
// 1% of nominal bandwidth (the request stalls and crawls, it does not hang
// forever), mirroring the degrade-to-slow policy of the client retry path.
const bwFloor = 0.01

// Injector binds a Schedule to one layer's server pool. The zero-size
// methods are nil-receiver safe so layers can call them unconditionally.
// An Injector is immutable and safe for concurrent use.
type Injector struct {
	sched   *Schedule
	layer   string
	servers int
	salt    uint64
}

// NewInjector builds the injector for a layer with the given server count.
func NewInjector(s *Schedule, layer string, servers int) *Injector {
	if s == nil {
		return nil
	}
	if servers <= 0 {
		panic(fmt.Sprintf("faults: injector for %q needs at least one server, got %d", layer, servers))
	}
	return &Injector{sched: s, layer: layer, servers: servers, salt: splitmix(s.Seed ^ hashString(layer))}
}

// Schedule returns the schedule the injector was built from (nil for a nil
// injector).
func (in *Injector) Schedule() *Schedule {
	if in == nil {
		return nil
	}
	return in.sched
}

// Affected reports whether one server participates in window wi — a pure
// function of (schedule seed, layer, window, server).
func (in *Injector) Affected(wi, server int) bool {
	w := in.sched.Windows[wi]
	if w.ServerFrac >= 1 {
		return true
	}
	if w.ServerFrac <= 0 {
		return false
	}
	h := splitmix(in.salt ^ (uint64(wi)*0x9E3779B97F4A7C15 + uint64(server) + 1))
	return float64(h>>11)/(1<<53) < w.ServerFrac
}

// affectedInSpan counts affected servers among [start, start+span) modulo
// the pool. Wide spans use the expectation directly: at span ≫ 1 the
// hypergeometric draw concentrates there anyway, and it keeps request-time
// cost independent of pool size.
func (in *Injector) affectedInSpan(wi int, start, span int) int {
	w := in.sched.Windows[wi]
	if w.ServerFrac >= 1 {
		return span
	}
	if w.ServerFrac <= 0 {
		return 0
	}
	if span > 64 {
		return int(math.Round(w.ServerFrac * float64(span)))
	}
	n := 0
	for i := 0; i < span; i++ {
		if in.Affected(wi, (start+i)%in.servers) {
			n++
		}
	}
	return n
}

// Effect resolves the degradation of one request issued at campaign time t
// against span servers starting at start (wrapping round-robin). A NaN t —
// a caller with no notion of campaign time — sees no faults.
func (in *Injector) Effect(t float64, start, span int) Effect {
	eff := ZeroEffect()
	if in == nil || math.IsNaN(t) {
		return eff
	}
	eff.ErrorRate = in.sched.TransientErrorRate
	if span < 1 {
		span = 1
	}
	if span > in.servers {
		span = in.servers
	}
	if start < 0 {
		start = -start
	}
	start %= in.servers
	outageAll := false
	for wi, w := range in.sched.Windows {
		if t < w.Start || t >= w.End {
			continue
		}
		aff := in.affectedInSpan(wi, start, span)
		if aff == 0 {
			continue
		}
		frac := float64(aff) / float64(span)
		eff.Degraded = true
		switch w.Kind {
		case Slowdown:
			eff.BWScale *= 1 - frac*w.Severity
		case Outage:
			eff.BWScale *= 1 - frac
			if aff == span {
				outageAll = true
			}
		case MetaStorm:
			lf := w.LatencyFactor
			if lf < 1 {
				lf = 1
			}
			if scaled := 1 + frac*(lf-1); scaled > eff.LatencyScale {
				eff.LatencyScale = scaled
			}
		}
		eff.ErrorRate += frac * w.ErrorRate
	}
	if eff.BWScale < bwFloor {
		eff.BWScale = bwFloor
	}
	if outageAll {
		eff.Down = true
		if eff.ErrorRate < 0.9 {
			eff.ErrorRate = 0.9
		}
	}
	if eff.ErrorRate > 1 {
		eff.ErrorRate = 1
	}
	return eff
}

// ErrorRateAt is the per-operation transient-error probability for a
// request at time t over the given span.
func (in *Injector) ErrorRateAt(t float64, start, span int) float64 {
	if in == nil || math.IsNaN(t) {
		return 0
	}
	return in.Effect(t, start, span).ErrorRate
}

// DrawError draws one transient-error outcome for an operation at time t
// over the given span, consuming exactly one uniform variate from r when
// the rate is positive.
func (in *Injector) DrawError(t float64, start, span int, r *rand.Rand) bool {
	p := in.ErrorRateAt(t, start, span)
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}

// Binomial draws the number of successes in n Bernoulli(p) trials,
// deterministically from r: exact for small n, Poisson for small means,
// normal approximation for large ones. The bulk workload generator uses it
// to resolve per-batch transient errors without looping over a million ops.
func Binomial(r *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 32 {
		// Knuth's Poisson sampler approximates Binomial(n, p) well at
		// small means; cap at n to stay inside the support.
		l := math.Exp(-mean)
		k, prod := 0, r.Float64()
		for prod > l && k < n {
			k++
			prod *= r.Float64()
		}
		return k
	}
	sd := math.Sqrt(float64(n) * p * (1 - p))
	k := int(math.Round(mean + r.NormFloat64()*sd))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Validate checks a schedule's windows for malformed intervals.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	if s.TransientErrorRate < 0 || s.TransientErrorRate > 1 {
		return fmt.Errorf("faults: transient error rate %v outside [0,1]", s.TransientErrorRate)
	}
	for i, w := range s.Windows {
		if w.End <= w.Start {
			return fmt.Errorf("faults: window %d has non-positive span [%v,%v)", i, w.Start, w.End)
		}
		if w.ServerFrac <= 0 || w.ServerFrac > 1 {
			return fmt.Errorf("faults: window %d server fraction %v outside (0,1]", i, w.ServerFrac)
		}
		switch w.Kind {
		case Slowdown:
			if w.Severity <= 0 || w.Severity >= 1 {
				return fmt.Errorf("faults: slowdown window %d severity %v outside (0,1)", i, w.Severity)
			}
		case MetaStorm:
			if w.LatencyFactor < 1 {
				return fmt.Errorf("faults: meta-storm window %d latency factor %v below 1", i, w.LatencyFactor)
			}
		case Outage:
			// nothing beyond the shared fields
		default:
			return fmt.Errorf("faults: window %d has unknown kind %d", i, int(w.Kind))
		}
		if w.ErrorRate < 0 || w.ErrorRate > 1 {
			return fmt.Errorf("faults: window %d error rate %v outside [0,1]", i, w.ErrorRate)
		}
	}
	return nil
}

// sortedWindows returns the windows ordered by start time (for display).
func (s *Schedule) sortedWindows() []Window {
	out := append([]Window(nil), s.Windows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Timeline renders the schedule's windows one per line, for -v style
// debugging output.
func (s *Schedule) Timeline() string {
	if s == nil || len(s.Windows) == 0 {
		return "(no fault windows)"
	}
	var b strings.Builder
	for _, w := range s.sortedWindows() {
		fmt.Fprintf(&b, "%-10s %10.0fs – %10.0fs  servers %4.1f%%",
			w.Kind, w.Start, w.End, 100*w.ServerFrac)
		switch w.Kind {
		case Slowdown:
			fmt.Fprintf(&b, "  severity %.0f%%", 100*w.Severity)
		case MetaStorm:
			fmt.Fprintf(&b, "  latency ×%.1f", w.LatencyFactor)
		}
		if w.ErrorRate > 0 {
			fmt.Fprintf(&b, "  +err %.2g", w.ErrorRate)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// splitmix is the SplitMix64 finalizer, the membership hash behind
// deterministic per-server window assignment.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a over the layer name.
func hashString(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
