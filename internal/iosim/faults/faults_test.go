package faults

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

func testSchedule(seed uint64) *Schedule {
	return &Schedule{
		Seed: seed,
		Windows: []Window{
			{Kind: Slowdown, Start: 100, End: 200, ServerFrac: 0.5, Severity: 0.6},
			{Kind: Outage, Start: 300, End: 400, ServerFrac: 1, ErrorRate: 0.3},
			{Kind: MetaStorm, Start: 500, End: 600, ServerFrac: 1, LatencyFactor: 10},
		},
		TransientErrorRate: 1e-3,
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	eff := in.Effect(150, 0, 4)
	if eff != ZeroEffect() {
		t.Errorf("nil injector effect = %+v", eff)
	}
	if in.ErrorRateAt(150, 0, 4) != 0 {
		t.Error("nil injector error rate must be 0")
	}
	if in.DrawError(150, 0, 4, rand.New(rand.NewPCG(1, 1))) {
		t.Error("nil injector must never draw an error")
	}
	if NewInjector(nil, "x", 10) != nil {
		t.Error("NewInjector(nil schedule) must return nil")
	}
}

func TestEffectOutsideWindowsIsClean(t *testing.T) {
	in := NewInjector(testSchedule(7), "Alpine", 154)
	eff := in.Effect(50, 0, 8)
	if eff.Degraded || eff.BWScale != 1 || eff.LatencyScale != 1 {
		t.Errorf("clean-time effect = %+v", eff)
	}
	if eff.ErrorRate != 1e-3 {
		t.Errorf("background error rate = %v", eff.ErrorRate)
	}
}

func TestEffectNaNTimeSeesNoFaults(t *testing.T) {
	in := NewInjector(testSchedule(7), "Alpine", 154)
	if eff := in.Effect(math.NaN(), 0, 8); eff != ZeroEffect() {
		t.Errorf("NaN-time effect = %+v", eff)
	}
}

func TestFullOutageIsDownWithFloor(t *testing.T) {
	in := NewInjector(testSchedule(7), "Alpine", 154)
	eff := in.Effect(350, 0, 8)
	if !eff.Down || !eff.Degraded {
		t.Fatalf("full outage effect = %+v", eff)
	}
	if eff.BWScale != bwFloor {
		t.Errorf("outage BWScale = %v, want floor %v", eff.BWScale, bwFloor)
	}
	if eff.ErrorRate < 0.9 {
		t.Errorf("outage error rate = %v, want ≥ 0.9", eff.ErrorRate)
	}
}

func TestMetaStormScalesLatencyOnly(t *testing.T) {
	in := NewInjector(testSchedule(7), "Alpine", 154)
	eff := in.Effect(550, 0, 8)
	if eff.LatencyScale != 10 {
		t.Errorf("storm LatencyScale = %v", eff.LatencyScale)
	}
	if eff.BWScale != 1 {
		t.Errorf("storm BWScale = %v", eff.BWScale)
	}
}

func TestPartialSlowdownScalesWithAffectedShare(t *testing.T) {
	in := NewInjector(testSchedule(7), "Alpine", 154)
	eff := in.Effect(150, 0, 16)
	if !eff.Degraded {
		t.Fatal("in-window request not degraded")
	}
	if eff.BWScale >= 1 || eff.BWScale < 1-0.6 {
		t.Errorf("slowdown BWScale = %v, want in [0.4, 1)", eff.BWScale)
	}
}

func TestMembershipDeterministic(t *testing.T) {
	a := NewInjector(testSchedule(42), "Cori Scratch", 248)
	b := NewInjector(testSchedule(42), "Cori Scratch", 248)
	for s := 0; s < 248; s++ {
		if a.Affected(0, s) != b.Affected(0, s) {
			t.Fatalf("membership differs at server %d", s)
		}
	}
	// A different seed must (with overwhelming probability) pick a
	// different subset.
	c := NewInjector(testSchedule(43), "Cori Scratch", 248)
	same := 0
	for s := 0; s < 248; s++ {
		if a.Affected(0, s) == c.Affected(0, s) {
			same++
		}
	}
	if same == 248 {
		t.Error("seed change did not move window membership")
	}
}

func TestEffectDeterministicAcrossInjectors(t *testing.T) {
	s := testSchedule(9)
	a := NewInjector(s, "SCNL", 4608)
	b := NewInjector(s, "SCNL", 4608)
	for _, tc := range []struct {
		t           float64
		start, span int
	}{{150, 7, 3}, {150, 4000, 200}, {350, 0, 4608}, {550, 99, 1}} {
		if ea, eb := a.Effect(tc.t, tc.start, tc.span), b.Effect(tc.t, tc.start, tc.span); ea != eb {
			t.Errorf("effect at %+v differs: %+v vs %+v", tc, ea, eb)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	for _, tc := range []struct {
		n int
		p float64
	}{
		{0, 0.5}, {10, 0}, {10, 1}, {50, 0.3}, {1000, 0.01}, {1 << 20, 1e-4}, {100000, 0.4},
	} {
		k := Binomial(r, tc.n, tc.p)
		if k < 0 || k > tc.n {
			t.Errorf("Binomial(%d, %v) = %d outside [0, n]", tc.n, tc.p, k)
		}
		if tc.p >= 1 && k != tc.n {
			t.Errorf("Binomial(%d, 1) = %d", tc.n, k)
		}
		if tc.p <= 0 && k != 0 {
			t.Errorf("Binomial(%d, 0) = %d", tc.n, k)
		}
	}
}

func TestBinomialMeanRoughlyRight(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	const n, p, trials = 10000, 0.05, 200
	sum := 0
	for i := 0; i < trials; i++ {
		sum += Binomial(r, n, p)
	}
	mean := float64(sum) / trials
	if mean < 0.9*n*p || mean > 1.1*n*p {
		t.Errorf("mean %v far from np = %v", mean, float64(n)*p)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Production(11, 365*86400)
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("Generate is not deterministic for a fixed config")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	if len(a.Windows) == 0 {
		t.Error("production schedule has no windows")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("slowdowns=3,outages=1,storms=0,errrate=1e-4,frac=0.2,severity=0.8,latfactor=4,duration=2", 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Slowdowns != 3 || cfg.Outages != 1 || cfg.Storms != 0 {
		t.Errorf("counts: %+v", cfg)
	}
	if cfg.TransientErrorRate != 1e-4 || cfg.ServerFrac != 0.2 ||
		cfg.Severity != 0.8 || cfg.LatencyFactor != 4 || cfg.MeanDurationSeconds != 7200 {
		t.Errorf("shape: %+v", cfg)
	}
	if _, err := ParseSpec("production", 5, 1000); err != nil {
		t.Errorf("production preset: %v", err)
	}
	for _, bad := range []string{"nope=1", "slowdowns=x", "frac=2", "severity=1.5", "latfactor=0.5", "slowdowns"} {
		if _, err := ParseSpec(bad, 5, 1000); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestScheduleSlowdownAt(t *testing.T) {
	s := testSchedule(1)
	if got := s.SlowdownAt(50); got != 1 {
		t.Errorf("clean-time machine slowdown = %v", got)
	}
	if got := s.SlowdownAt(150); got != 1-0.5*0.6 {
		t.Errorf("slowdown-window machine scale = %v", got)
	}
	if got := s.SlowdownAt(350); got != 0.01 {
		t.Errorf("full-outage machine scale = %v (want floor)", got)
	}
	var nilSched *Schedule
	if nilSched.SlowdownAt(150) != 1 || nilSched.ActiveAt(150) {
		t.Error("nil schedule must be a no-op")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []*Schedule{
		{Windows: []Window{{Kind: Slowdown, Start: 10, End: 5, ServerFrac: 0.5, Severity: 0.5}}},
		{Windows: []Window{{Kind: Slowdown, Start: 0, End: 5, ServerFrac: 0, Severity: 0.5}}},
		{Windows: []Window{{Kind: Slowdown, Start: 0, End: 5, ServerFrac: 0.5, Severity: 1.5}}},
		{Windows: []Window{{Kind: MetaStorm, Start: 0, End: 5, ServerFrac: 0.5, LatencyFactor: 0.5}}},
		{TransientErrorRate: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated", i)
		}
	}
}
