package iosim

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/units"
)

func TestRWString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("RW strings: %q %q", Read.String(), Write.String())
	}
}

func TestLayerKindString(t *testing.T) {
	if ParallelFS.String() != "PFS" || InSystem.String() != "in-system" {
		t.Errorf("kind strings: %q %q", ParallelFS.String(), InSystem.String())
	}
}

func TestVariabilityZeroValueIsIdeal(t *testing.T) {
	var v Variability
	r := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100; i++ {
		if got := v.Available(r); got != 1 {
			t.Fatalf("ideal availability = %v, want 1", got)
		}
	}
}

func TestVariabilityBounded(t *testing.T) {
	v := Variability{UtilizationMean: 0.9, UtilizationSpread: 0.5, Sigma: 2.0}
	r := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 5000; i++ {
		a := v.Available(r)
		if a < 0.01 || a > 1.5 {
			t.Fatalf("availability %v outside [0.01, 1.5]", a)
		}
	}
}

func TestVariabilityMeanUtilizationReducesBandwidth(t *testing.T) {
	busy := Variability{UtilizationMean: 0.8}
	idle := Variability{UtilizationMean: 0.0}
	r := rand.New(rand.NewPCG(3, 3))
	if b, i := busy.Available(r), idle.Available(r); b >= i {
		t.Errorf("busy availability %v not below idle %v", b, i)
	}
}

func TestTransferTimePhysics(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	var v Variability // deterministic
	// 1 GiB at 1 GB/s with 1 ms latency ≈ 1.0747 s.
	got := TransferTime(units.GiB, 1e-3, 1e9, 2e9, v, r)
	want := 1e-3 + float64(units.GiB)/1e9
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Server-bound case uses the smaller bandwidth.
	got = TransferTime(units.GiB, 0, 10e9, 1e9, v, r)
	want = float64(units.GiB) / 1e9
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("server-bound TransferTime = %v, want %v", got, want)
	}
}

func TestTransferTimeMonotoneInSize(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	var v Variability
	prev := -1.0
	for _, size := range []units.ByteSize{0, units.KiB, units.MiB, units.GiB} {
		got := TransferTime(size, 1e-4, 1e9, 1e9, v, r)
		if got <= prev {
			t.Errorf("TransferTime(%v) = %v not increasing (prev %v)", size, got, prev)
		}
		prev = got
	}
}

func TestTransferTimePanics(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative size", func() { TransferTime(-1, 0, 1, 1, Variability{}, r) })
	mustPanic("zero bandwidth", func() { TransferTime(1, 0, 0, 1, Variability{}, r) })
}
