// Package iosim models multi-layer supercomputer I/O subsystems with
// first-order analytic performance models: enough fidelity to reproduce the
// delivered-bandwidth distributions the paper reports (who wins, by what
// factor, and where size-dependent effects appear), without simulating
// individual disk blocks.
//
// A System couples two Layer implementations — a parallel file system and an
// in-system storage layer — mirroring the architecture in the paper's
// Figure 1. Layer implementations live in the subpackages gpfs, lustre,
// nodelocal, and datawarp. The Client type in this package executes
// application I/O against a System through a chosen interface (POSIX,
// MPI-IO, or STDIO) and feeds every operation to a Darshan runtime, exactly
// as the instrumented production applications did.
package iosim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// RW distinguishes the two data-transfer directions.
type RW int

// Transfer directions.
const (
	Read RW = iota
	Write
)

// String names the direction.
func (rw RW) String() string {
	if rw == Read {
		return "read"
	}
	return "write"
}

// LayerKind classifies a layer's position in the hierarchy.
type LayerKind int

// The two layer positions in the paper's two-layer subsystems.
const (
	ParallelFS LayerKind = iota
	InSystem
)

// String names the layer kind.
func (k LayerKind) String() string {
	if k == ParallelFS {
		return "PFS"
	}
	return "in-system"
}

// Layer is one storage layer of a supercomputer I/O subsystem.
//
// Transfer returns the wall-clock seconds for one request of the given size
// issued against path with procs cooperating client processes. The model
// includes per-layer latency, striping/server parallelism, production-load
// contention, and run-to-run variability; it is deterministic for a given
// *rand.Rand stream.
type Layer interface {
	// Name is a short human-readable identifier, e.g. "Alpine" or "SCNL".
	Name() string
	// Kind reports whether this is the PFS or the in-system layer.
	Kind() LayerKind
	// Mount is the path prefix files on this layer live under.
	Mount() string
	// Peak returns the layer's aggregate peak bandwidth in bytes/second.
	Peak(rw RW) float64
	// MetaLatency returns the per-operation metadata latency in seconds.
	MetaLatency() float64
	// Transfer returns the service time in seconds for one request.
	Transfer(path string, rw RW, size units.ByteSize, procs int, r *rand.Rand) float64
}

// Variability models production-load effects shared by all layer
// implementations: a background utilization that steals a fraction of peak
// bandwidth, plus a lognormal run-to-run noise term. The zero value means a
// perfectly idle, perfectly repeatable system.
type Variability struct {
	// UtilizationMean is the mean fraction (0–1) of the layer's bandwidth
	// consumed by other tenants at any moment.
	UtilizationMean float64
	// UtilizationSpread is the half-width of the uniform band around the
	// mean from which per-request utilization is drawn.
	UtilizationSpread float64
	// Sigma is the lognormal noise on delivered bandwidth (log-space
	// standard deviation).
	Sigma float64
}

// Available draws the fraction of bandwidth available to this request and a
// multiplicative noise factor. The product scales deliverable bandwidth.
func (v Variability) Available(r *rand.Rand) float64 {
	util := v.UtilizationMean
	if v.UtilizationSpread > 0 {
		util += (2*r.Float64() - 1) * v.UtilizationSpread
	}
	if util < 0 {
		util = 0
	}
	if util > 0.98 {
		util = 0.98
	}
	share := 1 - util
	avail := share
	if v.Sigma > 0 {
		avail *= math.Exp(v.Sigma * r.NormFloat64())
	}
	// Clamp: noise never yields more than 1.5× the un-contended share —
	// relative to the share itself, so a 98%-utilized layer cannot draw
	// near-idle bandwidth — nor less than an absolute 1% of peak, keeping
	// the model inside physical plausibility.
	if avail > 1.5*share {
		avail = 1.5 * share
	}
	if avail < 0.01 {
		avail = 0.01
	}
	return avail
}

// System is one supercomputer and its two-layer I/O subsystem.
type System struct {
	// Name is the machine name, e.g. "Summit" or "Cori".
	Name string
	// PFS is the parallel-file-system layer (Alpine, Cori Scratch).
	PFS Layer
	// InSystem is the in-system storage layer (SCNL, CBB).
	InSystem Layer
	// ProcsPerNode converts process counts to node counts for node-hour
	// accounting (42 on Summit's 2 × 21-core POWER9, 64 on Cori KNL).
	ProcsPerNode int
}

// LayerFor routes a path to the layer whose mount prefix it carries. It
// panics on a path outside both mounts — synthetic workloads must always
// place files on a modeled layer, so an unroutable path is a generator bug.
func (s *System) LayerFor(path string) Layer {
	switch {
	case strings.HasPrefix(path, s.PFS.Mount()):
		return s.PFS
	case strings.HasPrefix(path, s.InSystem.Mount()):
		return s.InSystem
	default:
		panic(fmt.Sprintf("iosim: path %q is on neither %q nor %q",
			path, s.PFS.Mount(), s.InSystem.Mount()))
	}
}

// Layers returns the two layers in (PFS, in-system) order.
func (s *System) Layers() []Layer { return []Layer{s.PFS, s.InSystem} }

// Instrumented is implemented by layers that can expose server-side load
// statistics (the system-level vantage point of the paper's Table 1).
// NewCollector returns a collector sized to the layer's server pool;
// SetCollector attaches it so subsequent Transfers record into it.
type Instrumented interface {
	NewCollector() *serverstats.Collector
	SetCollector(*serverstats.Collector)
}

// FaultAware is implemented by layers that accept a fault-injection
// schedule. SetFaultSchedule binds the schedule to the layer's server pool;
// a nil schedule detaches fault injection. Call before generating traffic —
// the binding is not synchronized with concurrent Transfers.
type FaultAware interface {
	SetFaultSchedule(*faults.Schedule)
}

// Faulted is implemented by layers that expose their bound fault injector,
// so the client retry path can draw transient errors and the workload
// generator can classify requests by fault state.
type Faulted interface {
	FaultInjector() *faults.Injector
	// FaultEffectAt resolves the fault effect one request of the given
	// shape would see at campaign time t, without issuing it.
	FaultEffectAt(path string, rw RW, size units.ByteSize, procs int, t float64) faults.Effect
}

// TimedLayer is implemented by layers whose Transfer can be evaluated at an
// absolute campaign time, the hook fault windows need. Layer.Transfer is
// equivalent to TransferAt with a NaN time (no windows apply).
type TimedLayer interface {
	TransferAt(path string, rw RW, size units.ByteSize, procs int, t float64, r *rand.Rand) float64
}

// AttachFaults binds a fault schedule to every fault-aware layer of the
// system. Call before generating traffic. A nil schedule detaches faults.
func AttachFaults(sys *System, s *faults.Schedule) {
	for _, layer := range sys.Layers() {
		if fa, ok := layer.(FaultAware); ok {
			fa.SetFaultSchedule(s)
		}
	}
}

// InjectorOf returns the fault injector bound to a layer, or nil when the
// layer is not fault-aware or has no schedule attached.
func InjectorOf(layer Layer) *faults.Injector {
	if f, ok := layer.(Faulted); ok {
		return f.FaultInjector()
	}
	return nil
}

// EffectAt resolves the fault effect a request would see on a layer, or the
// zero effect for layers without fault awareness.
func EffectAt(layer Layer, path string, rw RW, size units.ByteSize, procs int, t float64) faults.Effect {
	if f, ok := layer.(Faulted); ok {
		return f.FaultEffectAt(path, rw, size, procs, t)
	}
	return faults.ZeroEffect()
}

// AttachCollectors creates and attaches a server-side collector to every
// instrumented layer of the system, returning them keyed by layer name.
// Call before generating traffic.
func AttachCollectors(sys *System) map[string]*serverstats.Collector {
	out := map[string]*serverstats.Collector{}
	for _, layer := range sys.Layers() {
		if inst, ok := layer.(Instrumented); ok {
			c := inst.NewCollector()
			inst.SetCollector(c)
			out[layer.Name()] = c
		}
	}
	return out
}

// TransferTime is the shared service-time skeleton used by the layer
// implementations: latency plus size over delivered bandwidth, where
// delivered bandwidth is the minimum of the clients' injection capability
// and the servers' parallel capability, scaled by contention/noise.
func TransferTime(size units.ByteSize, latency, clientBW, serverBW float64, v Variability, r *rand.Rand) float64 {
	return TransferTimeFaulty(size, latency, clientBW, serverBW, v, faults.ZeroEffect(), r)
}

// TransferTimeFaulty is TransferTime under an injected fault effect: the
// effect's bandwidth scale degrades the server side (slow or dark servers),
// and its latency scale inflates the per-operation latency (metadata
// storms). A zero effect reproduces TransferTime exactly.
func TransferTimeFaulty(size units.ByteSize, latency, clientBW, serverBW float64, v Variability, eff faults.Effect, r *rand.Rand) float64 {
	if size < 0 {
		panic(fmt.Sprintf("iosim: negative transfer size %d", size))
	}
	if eff.BWScale > 0 {
		serverBW *= eff.BWScale
	}
	if eff.LatencyScale > 1 {
		latency *= eff.LatencyScale
	}
	bw := math.Min(clientBW, serverBW)
	if bw <= 0 {
		panic(fmt.Sprintf("iosim: non-positive bandwidth (client %v, server %v)", clientBW, serverBW))
	}
	bw *= v.Available(r)
	return latency + float64(size)/bw
}
