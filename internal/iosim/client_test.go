package iosim_test

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func newTestClient(t *testing.T, sys *iosim.System, nprocs int, opts ...iosim.ClientOption) (*iosim.Client, *darshan.Runtime) {
	t.Helper()
	rt := darshan.NewRuntime(darshan.JobHeader{
		JobID: 1, UserID: 1, NProcs: nprocs, StartTime: 0, EndTime: 3600,
	})
	c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(11, 11)), opts...)
	return c, rt
}

func TestClientRecordsOpsInDarshan(t *testing.T) {
	sys := systems.NewSummit()
	c, rt := newTestClient(t, sys, 1)
	p := "/gpfs/alpine/proj/data.h5"
	c.Open(darshan.ModulePOSIX, p, 0)
	c.Write(darshan.ModulePOSIX, p, 0, units.MiB, 0)
	c.Read(darshan.ModulePOSIX, p, 0, 64*units.KiB, 0)
	c.Close(darshan.ModulePOSIX, p, 0)
	log := rt.Finalize()
	recs := log.RecordsFor(darshan.ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Counters[darshan.PosixOpens] != 1 || r.Counters[darshan.PosixWrites] != 1 ||
		r.Counters[darshan.PosixReads] != 1 {
		t.Errorf("counters: %v", r.Counters[:8])
	}
	if r.FCounters[darshan.PosixFWriteTime] <= 0 || r.FCounters[darshan.PosixFReadTime] <= 0 {
		t.Error("transfer times not recorded")
	}
}

func TestClientClockAdvances(t *testing.T) {
	sys := systems.NewSummit()
	c, _ := newTestClient(t, sys, 1)
	if c.Now(0) != 0 {
		t.Fatalf("fresh clock = %v", c.Now(0))
	}
	p := "/gpfs/alpine/x"
	c.Open(darshan.ModulePOSIX, p, 0)
	after := c.Now(0)
	if after <= 0 {
		t.Errorf("clock did not advance on open: %v", after)
	}
	d := c.Write(darshan.ModulePOSIX, p, 0, units.GiB, 0)
	if got := c.Now(0); got != after+d {
		t.Errorf("clock = %v, want %v", got, after+d)
	}
	c.Advance(0, 10)
	if got := c.Now(0); got != after+d+10 {
		t.Errorf("Advance: clock = %v", got)
	}
}

func TestClientAdvancePanicsOnNegative(t *testing.T) {
	c, _ := newTestClient(t, systems.NewSummit(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Advance(0, -1)
}

func TestMpiioEmitsPosixUnderneath(t *testing.T) {
	sys := systems.NewCori()
	c, rt := newTestClient(t, sys, 4)
	p := "/global/cscratch1/u/f.nc"
	c.Write(darshan.ModuleMPIIO, p, 0, units.MiB, 0)
	log := rt.Finalize()
	if n := len(log.RecordsFor(darshan.ModuleMPIIO)); n != 1 {
		t.Errorf("MPI-IO records = %d", n)
	}
	posix := log.RecordsFor(darshan.ModulePOSIX)
	if len(posix) != 1 {
		t.Fatalf("POSIX records = %d; MPI-IO must surface POSIX ops underneath", len(posix))
	}
	if posix[0].Counters[darshan.PosixBytesWritten] != int64(units.MiB) {
		t.Errorf("POSIX bytes = %d", posix[0].Counters[darshan.PosixBytesWritten])
	}
}

func TestStdioEmitsNoPosix(t *testing.T) {
	sys := systems.NewSummit()
	c, rt := newTestClient(t, sys, 1)
	c.Write(darshan.ModuleSTDIO, "/gpfs/alpine/log.txt", 0, 4096, 0)
	log := rt.Finalize()
	if n := len(log.RecordsFor(darshan.ModulePOSIX)); n != 0 {
		t.Errorf("STDIO op produced %d POSIX records", n)
	}
	if n := len(log.RecordsFor(darshan.ModuleSTDIO)); n != 1 {
		t.Errorf("STDIO records = %d", n)
	}
}

// The central performance finding (Figures 11–12): for the same transfer,
// STDIO delivers less bandwidth than POSIX, on both layers of both systems.
func TestStdioSlowerThanPosix(t *testing.T) {
	for _, sys := range []*iosim.System{systems.NewSummit(), systems.NewCori()} {
		for _, layer := range sys.Layers() {
			var posixTotal, stdioTotal float64
			const trials = 30
			size := 100 * units.MiB
			for i := 0; i < trials; i++ {
				c, _ := newTestClient(t, sys, 16)
				path := layer.Mount() + "/perf.dat"
				posixTotal += c.SharedTransfer(darshan.ModulePOSIX, path, iosim.Read, size, false)
				stdioTotal += c.SharedTransfer(darshan.ModuleSTDIO, path, iosim.Read, size, false)
			}
			if stdioTotal <= posixTotal {
				t.Errorf("%s/%s: STDIO read total %v not slower than POSIX %v",
					sys.Name, layer.Name(), stdioTotal, posixTotal)
			}
		}
	}
}

func TestSharedTransferProducesRankMinusOne(t *testing.T) {
	sys := systems.NewSummit()
	c, rt := newTestClient(t, sys, 8)
	p := "/gpfs/alpine/shared.chk"
	c.SharedOpen(darshan.ModulePOSIX, p, false)
	c.SharedTransfer(darshan.ModulePOSIX, p, iosim.Write, units.GiB, false)
	c.SharedClose(darshan.ModulePOSIX, p)
	log := rt.Finalize()
	recs := log.RecordsFor(darshan.ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Rank != darshan.SharedRank {
		t.Errorf("rank = %d, want %d", recs[0].Rank, darshan.SharedRank)
	}
	if recs[0].FCounters[darshan.PosixFSlowestRankTime] <= 0 {
		t.Error("slowest-rank time missing on shared record")
	}
}

func TestCollectiveAggregationBeatsIndependentSmallOps(t *testing.T) {
	sys := systems.NewCori()
	size := 64 * units.KiB // per-rank request size
	nprocs := 256

	// Independent: every rank issues its own small op, serial per rank but
	// each still pays full layer latency per op across many ops.
	cInd, _ := newTestClient(t, sys, nprocs)
	pInd := "/global/cscratch1/u/ind.nc"
	var indTotal float64
	for i := 0; i < 64; i++ {
		indTotal += cInd.Write(darshan.ModuleMPIIO, pInd, 0, size, int64(i)*int64(size))
	}

	// Collective: the same bytes move as one aggregated request.
	cColl, _ := newTestClient(t, sys, nprocs)
	pColl := "/global/cscratch1/u/coll.nc"
	collTotal := cColl.SharedTransfer(darshan.ModuleMPIIO, pColl, iosim.Write, size*64, true)

	if collTotal >= indTotal {
		t.Errorf("collective aggregate %v not faster than %v of independent small ops",
			collTotal, indTotal)
	}
}

func TestBurstBufferAllocationOption(t *testing.T) {
	sys := systems.NewCori()
	size := 50 * units.GiB
	p := "/var/opt/cray/dws/job/f.dat"
	cSmall, _ := newTestClient(t, sys, 64)
	cBig, _ := newTestClient(t, sys, 64, iosim.WithBurstBufferNodes(64))
	tSmall := cSmall.SharedTransfer(darshan.ModulePOSIX, p, iosim.Write, size, false)
	tBig := cBig.SharedTransfer(darshan.ModulePOSIX, p, iosim.Write, size, false)
	if tBig >= tSmall {
		t.Errorf("64-node BB allocation %v not faster than default %v", tBig, tSmall)
	}
}

func TestWithInterfaceConfigOverride(t *testing.T) {
	sys := systems.NewSummit()
	slow := iosim.DefaultPOSIX()
	slow.PerCallOverhead = 0.5 // absurdly slow syscalls
	cSlow, _ := newTestClient(t, sys, 1, iosim.WithInterfaceConfig(darshan.ModulePOSIX, slow))
	cFast, _ := newTestClient(t, sys, 1)
	p := "/gpfs/alpine/f"
	dSlow := cSlow.Write(darshan.ModulePOSIX, p, 0, 4096, 0)
	dFast := cFast.Write(darshan.ModulePOSIX, p, 0, 4096, 0)
	if dSlow < 0.5 || dSlow <= dFast {
		t.Errorf("override ignored: slow %v fast %v", dSlow, dFast)
	}
}

func TestNewClientPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	iosim.NewClient(nil, nil, nil)
}

func TestDefaultConfigsSane(t *testing.T) {
	posix, stdio, mpiio := iosim.DefaultPOSIX(), iosim.DefaultSTDIO(), iosim.DefaultMPIIO()
	if posix.BufferSize != 0 {
		t.Error("POSIX must be unbuffered")
	}
	if stdio.BufferSize <= 0 || stdio.ParallelCap != 1 {
		t.Errorf("STDIO config: %+v", stdio)
	}
	if mpiio.CollectiveOverhead <= 0 {
		t.Error("MPI-IO needs a collective overhead term")
	}
}
