package iosim_test

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

// flatLayer is a deterministic storage layer: fixed latency plus a pure
// bandwidth term, no contention noise. It isolates the interface cost model
// from the layer simulation in the billing tests below.
type flatLayer struct {
	lat float64 // seconds per request
	bw  float64 // bytes per second
}

func (f flatLayer) Name() string          { return "flat" }
func (f flatLayer) Kind() iosim.LayerKind { return iosim.ParallelFS }
func (f flatLayer) Mount() string         { return "/flat" }
func (f flatLayer) Peak(rw iosim.RW) float64 {
	return f.bw
}
func (f flatLayer) MetaLatency() float64 { return f.lat }
func (f flatLayer) Transfer(path string, rw iosim.RW, size units.ByteSize, procs int, r *rand.Rand) float64 {
	return f.lat + float64(size)/f.bw
}

// TestStdioTailChunkBilling is the regression test for the buffered-transfer
// cost model: the final partial chunk of a buffered STDIO stream must be
// billed at its true remainder, not as a full BufferSize chunk. A 65 KiB
// write through the 64 KiB stdio buffer has a 1 KiB tail; the old model
// charged that tail a full 64 KiB of bandwidth time.
func TestStdioTailChunkBilling(t *testing.T) {
	lay := flatLayer{lat: 1e-3, bw: 1e8}
	cfg := iosim.DefaultSTDIO()
	r := rand.New(rand.NewPCG(1, 1))
	size := 65 * units.KiB

	got := cfg.TransferDuration(lay, "/flat/x", iosim.Write, size, 1, 0, false, r)

	full := lay.lat + float64(cfg.BufferSize)/lay.bw
	perLat := lay.lat * cfg.LatencyDamping
	bwTime := full - lay.lat
	tailFrac := float64(size%cfg.BufferSize) / float64(cfg.BufferSize)
	want := full + perLat + bwTime*tailFrac + cfg.PerCallOverhead + // tail chunk
		cfg.PerCallOverhead // trailing library-call overhead
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("65 KiB buffered duration = %.12g, want %.12g", got, want)
	}

	// The pre-fix model billed the tail as a full chunk. That value must be
	// rejected: the difference is the bandwidth time of the phantom 63 KiB.
	old := full + (perLat + bwTime + cfg.PerCallOverhead) + cfg.PerCallOverhead
	if diff := old - got; diff < 0.9*bwTime*(1-tailFrac) {
		t.Errorf("tail still billed as full chunk: old %.12g vs new %.12g (diff %.3g)",
			old, got, diff)
	}
}

// TestStdioChunkBoundaries pins the unchunked and exact-multiple cases
// around the buffer size.
func TestStdioChunkBoundaries(t *testing.T) {
	lay := flatLayer{lat: 1e-3, bw: 1e8}
	cfg := iosim.DefaultSTDIO()
	r := rand.New(rand.NewPCG(1, 1))

	full := lay.lat + float64(cfg.BufferSize)/lay.bw
	perLat := lay.lat * cfg.LatencyDamping
	bwTime := full - lay.lat
	perChunk := perLat + bwTime + cfg.PerCallOverhead

	cases := []struct {
		name string
		size units.ByteSize
		want float64
	}{
		{"below buffer", 32 * units.KiB,
			lay.lat + float64(32*units.KiB)/lay.bw + cfg.PerCallOverhead},
		{"exactly buffer", cfg.BufferSize, full + cfg.PerCallOverhead},
		{"exact multiple", 2 * cfg.BufferSize, full + perChunk + cfg.PerCallOverhead},
	}
	for _, tc := range cases {
		got := cfg.TransferDuration(lay, "/flat/x", iosim.Write, tc.size, 1, 0, false, r)
		if math.Abs(got-tc.want) > 1e-12*tc.want {
			t.Errorf("%s: duration = %.12g, want %.12g", tc.name, got, tc.want)
		}
	}
}

// TestVariabilityClampRelativeToShare checks the corrected clamp: the noise
// draw never exceeds 1.5× the un-contended share (1-util), and never drops
// below the absolute 1% floor.
func TestVariabilityClampRelativeToShare(t *testing.T) {
	cases := []struct {
		name string
		v    iosim.Variability
	}{
		{"busy", iosim.Variability{UtilizationMean: 0.9, Sigma: 2}},
		{"saturated", iosim.Variability{UtilizationMean: 0.98, Sigma: 3}},
		{"idle", iosim.Variability{UtilizationMean: 0.05, Sigma: 1}},
	}
	for _, tc := range cases {
		r := rand.New(rand.NewPCG(7, 7))
		share := 1 - tc.v.UtilizationMean
		if share < 0.02 {
			share = 0.02 // util is capped at 0.98
		}
		hitHigh, hitLow := false, false
		for i := 0; i < 20000; i++ {
			a := tc.v.Available(r)
			if a > 1.5*share+1e-12 {
				t.Fatalf("%s: Available = %v exceeds 1.5×share %v", tc.name, a, 1.5*share)
			}
			if a < 0.01-1e-12 {
				t.Fatalf("%s: Available = %v below 1%% floor", tc.name, a)
			}
			if a >= 1.5*share-1e-12 {
				hitHigh = true
			}
			if a <= 0.01+1e-12 {
				hitLow = true
			}
		}
		if !hitHigh {
			t.Errorf("%s: upper clamp never engaged over 20k draws", tc.name)
		}
		if tc.v.UtilizationMean > 0.5 && !hitLow {
			t.Errorf("%s: lower floor never engaged over 20k draws", tc.name)
		}
	}
}

// TestTryTransferRetriesAndFails drives the client against a layer whose
// fault schedule makes nearly every op draw a transient error: retries must
// be attempted and exhausted retries must surface as *OpError — never a
// panic — with the elapsed time still charged and the stats accounted.
func TestTryTransferRetriesAndFails(t *testing.T) {
	sys := systems.NewSummit()
	iosim.AttachFaults(sys, &faults.Schedule{Seed: 5, TransientErrorRate: 0.9})
	c, rt := newTestClient(t, sys, 1,
		iosim.WithRetryPolicy(iosim.RetryPolicy{MaxRetries: 2, Backoff: 1e-3, OpTimeout: 300}),
		iosim.WithJobStart(100))
	p := "/gpfs/alpine/faulty/data.bin"
	c.Open(darshan.ModulePOSIX, p, 0)

	var fails, oks int
	for i := 0; i < 40; i++ {
		d, err := c.TryWrite(darshan.ModulePOSIX, p, 0, units.MiB, 0)
		if d <= 0 {
			t.Fatalf("op %d: duration %v not charged", i, d)
		}
		if err != nil {
			var oe *iosim.OpError
			if !errors.As(err, &oe) {
				t.Fatalf("op %d: error %T, want *OpError", i, err)
			}
			if oe.Retries != 2 {
				t.Errorf("op %d: failed after %d retries, want MaxRetries=2", i, oe.Retries)
			}
			fails++
		} else {
			oks++
		}
	}
	st := c.FaultStats()
	if fails == 0 {
		t.Fatal("0.9 error rate over 40 ops produced no failures")
	}
	if st.OpsFailed != int64(fails) {
		t.Errorf("FaultStats.OpsFailed = %d, want %d", st.OpsFailed, fails)
	}
	if st.OpsRetried == 0 || st.RetrySeconds <= 0 {
		t.Errorf("retries not accounted: %+v", st)
	}
	if c.Now(0) <= 0 {
		t.Error("clock did not advance across failed ops")
	}

	// Failed ops moved no data: the Darshan write count matches successes.
	log := rt.Finalize()
	recs := log.RecordsFor(darshan.ModulePOSIX)
	if len(recs) != 1 {
		t.Fatalf("POSIX records = %d", len(recs))
	}
	if got := recs[0].Counters[darshan.PosixWrites]; got != int64(oks) {
		t.Errorf("PosixWrites = %d, want %d successes (of %d ops)", got, oks, fails+oks)
	}
}

// TestWriteDuringOutageDegradesNotHangs: a full-span outage degrades the
// layer to its bandwidth floor; the plain (non-Try) Write path must still
// complete with a finite — if much longer — duration rather than hang or
// panic.
func TestWriteDuringOutageDegradesNotHangs(t *testing.T) {
	clean := systems.NewSummit()
	cc, _ := newTestClient(t, clean, 1)
	p := "/gpfs/alpine/out/data.bin"
	dClean := cc.Write(darshan.ModulePOSIX, p, 0, 16*units.MiB, 0)

	sys := systems.NewSummit()
	sched := &faults.Schedule{Seed: 3, Windows: []faults.Window{
		{Kind: faults.Outage, Start: 0, End: 1e9, ServerFrac: 1, ErrorRate: 1},
	}}
	iosim.AttachFaults(sys, sched)
	c, _ := newTestClient(t, sys, 1, iosim.WithJobStart(1000))
	d := c.Write(darshan.ModulePOSIX, p, 0, 16*units.MiB, 0)
	if math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("outage write duration = %v", d)
	}
	if d < 5*dClean {
		t.Errorf("outage write %.4gs not degraded vs clean %.4gs", d, dClean)
	}
	eff := iosim.EffectAt(sys.LayerFor(p), p, iosim.Write, 16*units.MiB, 1, 1000)
	if !eff.Degraded || !eff.Down {
		t.Errorf("full-span outage effect = %+v, want Degraded and Down", eff)
	}
}

// TestMpiioOpenCloseMirrorsPosix: MPI-IO opens and closes surface the
// matching POSIX operations underneath (paper §3.1), exactly as MPI-IO
// transfers already did.
func TestMpiioOpenCloseMirrorsPosix(t *testing.T) {
	sys := systems.NewCori()
	c, rt := newTestClient(t, sys, 2)
	p := "/global/cscratch1/u/mirror.nc"
	c.Open(darshan.ModuleMPIIO, p, 0)
	c.Close(darshan.ModuleMPIIO, p, 0)

	log := rt.Finalize()
	posix := log.RecordsFor(darshan.ModulePOSIX)
	if len(posix) != 1 {
		t.Fatalf("POSIX records = %d; MPI-IO open/close must surface POSIX underneath", len(posix))
	}
	rec := posix[0]
	if rec.Counters[darshan.PosixOpens] != 1 {
		t.Errorf("PosixOpens = %d, want 1", rec.Counters[darshan.PosixOpens])
	}
	if rec.FCounters[darshan.PosixFCloseEndTimestamp] <= 0 {
		t.Errorf("POSIX close not mirrored: close end = %v",
			rec.FCounters[darshan.PosixFCloseEndTimestamp])
	}
}

// TestMpiioSharedOpenCloseMirrorsPosix covers the shared (all-ranks)
// variants.
func TestMpiioSharedOpenCloseMirrorsPosix(t *testing.T) {
	sys := systems.NewCori()
	c, rt := newTestClient(t, sys, 4)
	p := "/global/cscratch1/u/shared.nc"
	c.SharedOpen(darshan.ModuleMPIIO, p, true)
	c.SharedClose(darshan.ModuleMPIIO, p)

	log := rt.Finalize()
	posix := log.RecordsFor(darshan.ModulePOSIX)
	if len(posix) != 1 {
		t.Fatalf("POSIX records = %d; shared MPI-IO open/close must mirror POSIX", len(posix))
	}
	rec := posix[0]
	if rec.Counters[darshan.PosixOpens] != 1 {
		t.Errorf("PosixOpens = %d, want 1 pre-reduced shared open", rec.Counters[darshan.PosixOpens])
	}
	if rec.FCounters[darshan.PosixFCloseEndTimestamp] <= 0 {
		t.Error("POSIX shared close not mirrored")
	}
	// The mirror drops the Collective flag (POSIX has no collective open);
	// the MPI-IO record keeps its own collective accounting.
	mpiio := log.RecordsFor(darshan.ModuleMPIIO)
	if len(mpiio) != 1 || mpiio[0].Counters[darshan.MpiioCollOpens] != 1 {
		t.Errorf("MPI-IO collective opens miscounted: %+v", mpiio)
	}
}
