package iosim

import (
	"fmt"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

// InterfaceConfig is the cost model of one I/O middleware interface as seen
// by an application process. The three interfaces differ in per-call
// software overhead, user-space buffering, and their ability to exploit
// process parallelism — the properties behind the POSIX-versus-STDIO
// performance gap in the paper's Figures 11 and 12.
type InterfaceConfig struct {
	// PerCallOverhead is the user-space software cost per library call, in
	// seconds (locking, format handling, dispatch).
	PerCallOverhead float64
	// BufferSize, when positive, chunks every data transfer into
	// buffer-size requests to the storage layer, the way a FILE* stream
	// does. Zero means requests pass through at application size.
	BufferSize units.ByteSize
	// LatencyDamping scales the storage layer's per-request latency for
	// buffered chunked streams, modeling kernel readahead and write-back
	// absorbing most per-chunk round trips. 1 = no damping.
	LatencyDamping float64
	// ParallelCap, when positive, caps how many processes' injection
	// bandwidth one transfer can exploit. STDIO streams are effectively
	// serial (cap 1); POSIX and MPI-IO scale with the job.
	ParallelCap int
	// CollectiveOverhead is the per-collective synchronization and shuffle
	// cost for MPI-IO collective operations, in seconds.
	CollectiveOverhead float64
}

// DefaultPOSIX returns the POSIX interface model: thin system-call wrapper,
// no buffering, full parallelism.
func DefaultPOSIX() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead: 1.5e-6,
		LatencyDamping:  1,
	}
}

// DefaultSTDIO returns the STDIO interface model: libc stream with a small
// user-space buffer, per-call locking overhead, chunked transfers with
// readahead-damped latency, and no multi-process scaling. These defaults
// reproduce the paper's observed POSIX/STDIO gap: large on reads
// (the stream cannot use the machine's parallelism), mild on writes at
// small-to-medium sizes (write-back absorbs chunking).
func DefaultSTDIO() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead: 2.5e-6,
		BufferSize:      64 * units.KiB,
		LatencyDamping:  0.12,
		ParallelCap:     1,
	}
}

// DefaultMPIIO returns the MPI-IO interface model: POSIX-like per-call cost
// plus a collective synchronization term; collective transfers aggregate
// into large well-formed requests (collective buffering).
func DefaultMPIIO() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead:    3e-6,
		LatencyDamping:     1,
		CollectiveOverhead: 150e-6,
	}
}

// AllocLayer is implemented by layers whose per-job bandwidth depends on an
// allocation span (DataWarp burst buffers). Clients carrying a positive
// allocation use TransferAlloc instead of Transfer.
type AllocLayer interface {
	TransferAlloc(path string, rw RW, size units.ByteSize, procs, allocNodes int, r *rand.Rand) float64
}

// layerRequest issues one request to layer, honoring a burst-buffer
// allocation span when the layer supports one and bbNodes is positive.
func layerRequest(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, r *rand.Rand) float64 {
	if al, ok := layer.(AllocLayer); ok && bbNodes > 0 {
		return al.TransferAlloc(path, rw, size, procs, bbNodes, r)
	}
	return layer.Transfer(path, rw, size, procs, r)
}

// TransferDuration returns the wall-clock seconds one application-level
// transfer of size bytes takes through this interface, issued against the
// layer owning path by procs cooperating processes. bbNodes carries the
// job's burst-buffer allocation span (0 = layer default); collective adds
// the MPI-IO collective synchronization term. This is the single
// interface-cost model shared by the interactive Client and the bulk
// workload generator.
func (cfg InterfaceConfig) TransferDuration(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, collective bool, r *rand.Rand) float64 {
	if procs < 1 {
		procs = 1
	}
	if cfg.ParallelCap > 0 && procs > cfg.ParallelCap {
		procs = cfg.ParallelCap
	}
	var dur float64
	if cfg.BufferSize > 0 && size > cfg.BufferSize {
		// Buffered stream: the transfer proceeds in buffer-size chunks,
		// each paying damped layer latency plus the library's per-call
		// cost. Bandwidth-wise the chunks stream back to back.
		chunks := int((size + cfg.BufferSize - 1) / cfg.BufferSize)
		// One representative chunk at full latency; the rest damped.
		full := layerRequest(layer, path, rw, cfg.BufferSize, procs, bbNodes, r)
		perChunkLatency := layer.MetaLatency() * cfg.LatencyDamping
		bwTime := full - layer.MetaLatency() // pure transfer component
		if bwTime < 0 {
			bwTime = 0
		}
		dur = full + float64(chunks-1)*(perChunkLatency+bwTime+cfg.PerCallOverhead)
	} else {
		dur = layerRequest(layer, path, rw, size, procs, bbNodes, r)
	}
	dur += cfg.PerCallOverhead
	if collective {
		dur += cfg.CollectiveOverhead
	}
	if dur <= 0 {
		dur = 1e-9
	}
	return dur
}

// Client executes application I/O against a System through the three
// instrumented interfaces, advancing a simulated clock and reporting every
// operation to a Darshan runtime. One Client models one application
// execution (one Darshan log).
//
// Client is not safe for concurrent use; simulate ranks from one goroutine
// or use one Client per goroutine with distinct runtimes.
type Client struct {
	sys    *System
	rt     *darshan.Runtime
	r      *rand.Rand
	nprocs int

	// bbNodes is the DataWarp allocation span for this job (0 = default).
	bbNodes int

	posix, stdio, mpiio InterfaceConfig

	clock map[int32]float64
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithInterfaceConfig overrides one interface's cost model.
func WithInterfaceConfig(m darshan.ModuleID, cfg InterfaceConfig) ClientOption {
	return func(c *Client) {
		switch m {
		case darshan.ModulePOSIX:
			c.posix = cfg
		case darshan.ModuleSTDIO:
			c.stdio = cfg
		case darshan.ModuleMPIIO:
			c.mpiio = cfg
		default:
			panic(fmt.Sprintf("iosim: no interface config for module %v", m))
		}
	}
}

// WithBurstBufferNodes sets the job's burst-buffer allocation span, as a
// DataWarp capacity directive would.
func WithBurstBufferNodes(n int) ClientOption {
	return func(c *Client) { c.bbNodes = n }
}

// NewClient builds a client for one application execution. The runtime's
// job header supplies the process count.
func NewClient(sys *System, rt *darshan.Runtime, r *rand.Rand, opts ...ClientOption) *Client {
	if sys == nil || rt == nil || r == nil {
		panic("iosim: NewClient requires non-nil system, runtime, and rng")
	}
	c := &Client{
		sys:    sys,
		rt:     rt,
		r:      r,
		nprocs: rt.Job().NProcs,
		posix:  DefaultPOSIX(),
		stdio:  DefaultSTDIO(),
		mpiio:  DefaultMPIIO(),
		clock:  make(map[int32]float64),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Now returns rank's current simulated time in seconds since job start.
func (c *Client) Now(rank int32) float64 { return c.clock[rank] }

// Advance moves rank's clock forward by dt seconds of non-I/O work
// (compute phases between I/O phases).
func (c *Client) Advance(rank int32, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("iosim: cannot advance clock by %v", dt))
	}
	c.clock[rank] += dt
}

func (c *Client) config(m darshan.ModuleID) InterfaceConfig {
	switch m {
	case darshan.ModulePOSIX:
		return c.posix
	case darshan.ModuleSTDIO:
		return c.stdio
	case darshan.ModuleMPIIO:
		return c.mpiio
	default:
		panic(fmt.Sprintf("iosim: module %v is not an I/O interface", m))
	}
}

// transferDuration computes the wall-clock duration of one application-level
// transfer of size bytes through interface m by procs cooperating processes.
func (c *Client) transferDuration(m darshan.ModuleID, path string, rw RW, size units.ByteSize, procs int, collective bool) float64 {
	return c.config(m).TransferDuration(c.sys.LayerFor(path), path, rw, size, procs, c.bbNodes, collective, c.r)
}

// Open opens path through interface m on rank, recording the operation.
func (c *Client) Open(m darshan.ModuleID, path string, rank int32) {
	layer := c.sys.LayerFor(path)
	start := c.clock[rank]
	dur := layer.MetaLatency() + c.config(m).PerCallOverhead
	c.clock[rank] = start + dur
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: darshan.OpOpen,
		Start: start, End: start + dur})
}

// Close closes path through interface m on rank, recording the operation.
func (c *Client) Close(m darshan.ModuleID, path string, rank int32) {
	start := c.clock[rank]
	dur := c.config(m).PerCallOverhead
	c.clock[rank] = start + dur
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: darshan.OpClose,
		Start: start, End: start + dur})
}

// Read performs one read of size bytes at offset through interface m on
// rank and returns its duration in seconds.
func (c *Client) Read(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) float64 {
	return c.rankTransfer(m, path, rank, Read, size, offset)
}

// Write performs one write of size bytes at offset through interface m on
// rank and returns its duration in seconds.
func (c *Client) Write(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) float64 {
	return c.rankTransfer(m, path, rank, Write, size, offset)
}

func (c *Client) rankTransfer(m darshan.ModuleID, path string, rank int32, rw RW, size units.ByteSize, offset int64) float64 {
	start := c.clock[rank]
	dur := c.transferDuration(m, path, rw, size, 1, false)
	c.clock[rank] = start + dur
	kind := darshan.OpWrite
	if rw == Read {
		kind = darshan.OpRead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: kind,
		Size: size, Offset: offset, Start: start, End: start + dur})
	// An MPI-IO independent transfer surfaces as a POSIX operation of the
	// same shape underneath (paper §3.1).
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path, Rank: rank,
			Kind: kind, Size: size, Offset: offset, Start: start, End: start + dur})
	}
	return dur
}

// SharedTransfer performs one transfer against a file opened collectively by
// every rank of the job, recording a single pre-reduced rank −1 observation.
// size is the aggregate bytes moved by the whole job in this operation.
// It returns the wall-clock duration (the slowest rank's time).
//
// For MPI-IO with collective=true, collective buffering forms the aggregate
// into large well-formed requests; the matching POSIX-level observation is
// emitted with the aggregated shape, which is how collective aggregation
// turns many small application requests into few large system calls
// (Recommendation 2).
func (c *Client) SharedTransfer(m darshan.ModuleID, path string, rw RW, size units.ByteSize, collective bool) float64 {
	start := c.sharedClock()
	dur := c.transferDuration(m, path, rw, size, c.nprocs, collective)
	end := start + dur
	kind := darshan.OpWrite
	if rw == Read {
		kind = darshan.OpRead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank, Kind: kind,
		Size: size, Offset: -1, Start: start, End: end, Collective: collective})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path,
			Rank: darshan.SharedRank, Kind: kind, Size: size, Offset: -1,
			Start: start, End: end})
	}
	c.setAllClocks(end)
	return dur
}

// SharedOpen opens path on all ranks at once (e.g. MPI_File_open or a
// coordinated POSIX open), recording a pre-reduced rank −1 observation.
func (c *Client) SharedOpen(m darshan.ModuleID, path string, collective bool) {
	layer := c.sys.LayerFor(path)
	start := c.sharedClock()
	dur := layer.MetaLatency() + c.config(m).PerCallOverhead
	if collective {
		dur += c.config(m).CollectiveOverhead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank,
		Kind: darshan.OpOpen, Start: start, End: start + dur, Collective: collective})
	c.setAllClocks(start + dur)
}

// SharedClose closes a shared file on all ranks.
func (c *Client) SharedClose(m darshan.ModuleID, path string) {
	start := c.sharedClock()
	dur := c.config(m).PerCallOverhead
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank,
		Kind: darshan.OpClose, Start: start, End: start + dur})
	c.setAllClocks(start + dur)
}

func (c *Client) sharedClock() float64 {
	var maxT float64
	for _, t := range c.clock {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

func (c *Client) setAllClocks(t float64) {
	for r := int32(0); r < int32(c.nprocs); r++ {
		if c.clock[r] < t {
			c.clock[r] = t
		}
	}
	// Shared-only workloads never touch per-rank clocks; keep a sentinel so
	// sharedClock sees progress even when nprocs clocks were never created.
	if c.clock[darshan.SharedRank] < t {
		c.clock[darshan.SharedRank] = t
	}
}
