package iosim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/units"
)

// InterfaceConfig is the cost model of one I/O middleware interface as seen
// by an application process. The three interfaces differ in per-call
// software overhead, user-space buffering, and their ability to exploit
// process parallelism — the properties behind the POSIX-versus-STDIO
// performance gap in the paper's Figures 11 and 12.
type InterfaceConfig struct {
	// PerCallOverhead is the user-space software cost per library call, in
	// seconds (locking, format handling, dispatch).
	PerCallOverhead float64
	// BufferSize, when positive, chunks every data transfer into
	// buffer-size requests to the storage layer, the way a FILE* stream
	// does. Zero means requests pass through at application size.
	BufferSize units.ByteSize
	// LatencyDamping scales the storage layer's per-request latency for
	// buffered chunked streams, modeling kernel readahead and write-back
	// absorbing most per-chunk round trips. 1 = no damping.
	LatencyDamping float64
	// ParallelCap, when positive, caps how many processes' injection
	// bandwidth one transfer can exploit. STDIO streams are effectively
	// serial (cap 1); POSIX and MPI-IO scale with the job.
	ParallelCap int
	// CollectiveOverhead is the per-collective synchronization and shuffle
	// cost for MPI-IO collective operations, in seconds.
	CollectiveOverhead float64
}

// DefaultPOSIX returns the POSIX interface model: thin system-call wrapper,
// no buffering, full parallelism.
func DefaultPOSIX() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead: 1.5e-6,
		LatencyDamping:  1,
	}
}

// DefaultSTDIO returns the STDIO interface model: libc stream with a small
// user-space buffer, per-call locking overhead, chunked transfers with
// readahead-damped latency, and no multi-process scaling. These defaults
// reproduce the paper's observed POSIX/STDIO gap: large on reads
// (the stream cannot use the machine's parallelism), mild on writes at
// small-to-medium sizes (write-back absorbs chunking).
func DefaultSTDIO() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead: 2.5e-6,
		BufferSize:      64 * units.KiB,
		LatencyDamping:  0.12,
		ParallelCap:     1,
	}
}

// DefaultMPIIO returns the MPI-IO interface model: POSIX-like per-call cost
// plus a collective synchronization term; collective transfers aggregate
// into large well-formed requests (collective buffering).
func DefaultMPIIO() InterfaceConfig {
	return InterfaceConfig{
		PerCallOverhead:    3e-6,
		LatencyDamping:     1,
		CollectiveOverhead: 150e-6,
	}
}

// AllocLayer is implemented by layers whose per-job bandwidth depends on an
// allocation span (DataWarp burst buffers). Clients carrying a positive
// allocation use TransferAlloc instead of Transfer.
type AllocLayer interface {
	TransferAlloc(path string, rw RW, size units.ByteSize, procs, allocNodes int, r *rand.Rand) float64
}

// AllocLayerAt is AllocLayer with campaign-time context, so allocation-aware
// layers can degrade transfers inside fault windows.
type AllocLayerAt interface {
	TransferAllocAt(path string, rw RW, size units.ByteSize, procs, allocNodes int, t float64, r *rand.Rand) float64
}

// layerRequestAt issues one request to layer at campaign time t, honoring a
// burst-buffer allocation span when the layer supports one and bbNodes is
// positive, and preferring the time-aware entry points so fault windows
// apply. NaN t means "no campaign-time context" (fault windows never match).
func layerRequestAt(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, t float64, r *rand.Rand) float64 {
	if bbNodes > 0 {
		if al, ok := layer.(AllocLayerAt); ok {
			return al.TransferAllocAt(path, rw, size, procs, bbNodes, t, r)
		}
		if al, ok := layer.(AllocLayer); ok {
			return al.TransferAlloc(path, rw, size, procs, bbNodes, r)
		}
	}
	if tl, ok := layer.(TimedLayer); ok {
		return tl.TransferAt(path, rw, size, procs, t, r)
	}
	return layer.Transfer(path, rw, size, procs, r)
}

// TransferDuration returns the wall-clock seconds one application-level
// transfer of size bytes takes through this interface, issued against the
// layer owning path by procs cooperating processes. bbNodes carries the
// job's burst-buffer allocation span (0 = layer default); collective adds
// the MPI-IO collective synchronization term. This is the single
// interface-cost model shared by the interactive Client and the bulk
// workload generator.
func (cfg InterfaceConfig) TransferDuration(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, collective bool, r *rand.Rand) float64 {
	return cfg.TransferDurationAt(layer, path, rw, size, procs, bbNodes, collective, math.NaN(), r)
}

// TransferDurationAt is TransferDuration at campaign time t: the layer's
// fault windows (if a schedule is attached) degrade bandwidth and latency
// for requests landing inside them. NaN t disables fault context.
func (cfg InterfaceConfig) TransferDurationAt(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, collective bool, t float64, r *rand.Rand) float64 {
	if procs < 1 {
		procs = 1
	}
	if cfg.ParallelCap > 0 && procs > cfg.ParallelCap {
		procs = cfg.ParallelCap
	}
	var dur float64
	if cfg.BufferSize > 0 && size > cfg.BufferSize {
		// Buffered stream: the transfer proceeds in buffer-size chunks,
		// each paying damped layer latency plus the library's per-call
		// cost. Bandwidth-wise the chunks stream back to back.
		chunks := int((size + cfg.BufferSize - 1) / cfg.BufferSize)
		// One representative chunk at full latency; the rest damped.
		full := layerRequestAt(layer, path, rw, cfg.BufferSize, procs, bbNodes, t, r)
		perChunkLatency := layer.MetaLatency() * cfg.LatencyDamping
		bwTime := full - layer.MetaLatency() // pure transfer component
		if bwTime < 0 {
			bwTime = 0
		}
		perChunk := perChunkLatency + bwTime + cfg.PerCallOverhead
		if tail := size % cfg.BufferSize; tail != 0 {
			// The final chunk moves only the remainder: bill its bandwidth
			// term pro rata instead of charging a full buffer-size chunk.
			dur = full + float64(chunks-2)*perChunk +
				perChunkLatency + bwTime*float64(tail)/float64(cfg.BufferSize) + cfg.PerCallOverhead
		} else {
			dur = full + float64(chunks-1)*perChunk
		}
	} else {
		dur = layerRequestAt(layer, path, rw, size, procs, bbNodes, t, r)
	}
	dur += cfg.PerCallOverhead
	if collective {
		dur += cfg.CollectiveOverhead
	}
	if dur <= 0 {
		dur = 1e-9
	}
	return dur
}

// RetryPolicy bounds how an interface reacts to transient I/O errors and
// stalled operations from injected faults: a bounded number of retries, a
// fixed backoff charged before each retry, and a per-operation timeout after
// which an attempt is abandoned. The zero value never retries and never
// times out.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try.
	MaxRetries int
	// Backoff is the wall-clock pause in seconds charged before each retry.
	Backoff float64
	// OpTimeout is the per-attempt wall-clock bound in seconds; an attempt
	// predicted to exceed it is abandoned and retried (the final attempt
	// runs to completion — degrade to slow rather than fail). Zero or
	// negative disables the timeout.
	OpTimeout float64
}

// DefaultRetryPolicy mirrors production middleware defaults: three retries,
// 10 ms backoff, and a five-minute per-operation bound.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 10e-3, OpTimeout: 300}
}

// TransferOutcome reports what one fault-aware transfer attempt chain did.
type TransferOutcome struct {
	// Duration is the total wall-clock cost in seconds, including abandoned
	// attempts and backoff pauses.
	Duration float64
	// Retries counts re-attempts after the first try.
	Retries int
	// Failed reports that the operation exhausted its retries on a
	// transient error and moved no data.
	Failed bool
	// Degraded reports that at least one attempt ran inside a fault window.
	Degraded bool
	// RetryTime is the share of Duration spent on abandoned attempts and
	// backoff pauses — time lost to faults rather than useful transfer.
	RetryTime float64
}

// TryTransfer is TransferDurationAt with graceful degradation: transient
// errors from the layer's fault schedule trigger bounded retries with
// backoff, attempts exceeding the policy's per-operation timeout are
// abandoned and retried, and the final attempt runs to completion unless an
// error fails it. With no schedule attached the single attempt always
// succeeds and the outcome reduces to TransferDurationAt.
func (cfg InterfaceConfig) TryTransfer(layer Layer, path string, rw RW, size units.ByteSize, procs, bbNodes int, collective bool, t float64, pol RetryPolicy, r *rand.Rand) TransferOutcome {
	var out TransferOutcome
	eff := EffectAt(layer, path, rw, size, procs, t)
	out.Degraded = eff.Degraded
	for attempt := 0; ; attempt++ {
		d := cfg.TransferDurationAt(layer, path, rw, size, procs, bbNodes, collective, t, r)
		errDrawn := eff.ErrorRate > 0 && r.Float64() < eff.ErrorRate
		timedOut := pol.OpTimeout > 0 && d > pol.OpTimeout
		last := attempt >= pol.MaxRetries
		switch {
		case !errDrawn && !timedOut:
			// Clean attempt: the transfer completes.
			out.Duration += d
			return out
		case last && errDrawn:
			// Retries exhausted on a transient error: the operation fails
			// after paying for the doomed attempt.
			charge := d
			if timedOut {
				charge = pol.OpTimeout
			}
			out.Duration += charge
			out.RetryTime += charge
			out.Failed = true
			return out
		case last:
			// Retries exhausted on a slow attempt: degrade to slow — let
			// the attempt run to completion rather than fail the job.
			out.Duration += d
			return out
		case errDrawn:
			// Transient error mid-flight: pay for the failed attempt plus
			// backoff, then retry.
			out.Duration += d + pol.Backoff
			out.RetryTime += d + pol.Backoff
		default:
			// Stalled attempt: abandon at the timeout plus backoff, retry.
			out.Duration += pol.OpTimeout + pol.Backoff
			out.RetryTime += pol.OpTimeout + pol.Backoff
		}
		out.Retries++
	}
}

// Client executes application I/O against a System through the three
// instrumented interfaces, advancing a simulated clock and reporting every
// operation to a Darshan runtime. One Client models one application
// execution (one Darshan log).
//
// Client is not safe for concurrent use; simulate ranks from one goroutine
// or use one Client per goroutine with distinct runtimes.
type Client struct {
	sys    *System
	rt     *darshan.Runtime
	r      *rand.Rand
	nprocs int

	// bbNodes is the DataWarp allocation span for this job (0 = default).
	bbNodes int

	posix, stdio, mpiio InterfaceConfig

	// retry bounds the reaction to injected transient errors and stalls.
	retry RetryPolicy
	// jobStart anchors the client's clock on the campaign timeline, so
	// layer fault windows align with simulated operation times.
	jobStart float64
	// fstats accumulates this execution's fault and retry footprint.
	fstats ClientFaultStats

	clock map[int32]float64
}

// ClientFaultStats summarizes one client execution's encounters with
// injected faults.
type ClientFaultStats struct {
	// OpsFailed counts operations that exhausted their retries and failed.
	OpsFailed int64
	// OpsRetried counts operations that needed at least one retry.
	OpsRetried int64
	// DegradedOps counts operations served inside a fault window.
	DegradedOps int64
	// RetrySeconds is wall-clock time lost to abandoned attempts and
	// backoff pauses.
	RetrySeconds float64
}

// OpError reports a simulated I/O operation that failed after exhausting
// its retries inside a fault window.
type OpError struct {
	Path    string
	RW      RW
	Retries int
}

func (e *OpError) Error() string {
	verb := "write"
	if e.RW == Read {
		verb = "read"
	}
	return fmt.Sprintf("iosim: %s %s failed after %d retries (injected fault)", verb, e.Path, e.Retries)
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithInterfaceConfig overrides one interface's cost model.
func WithInterfaceConfig(m darshan.ModuleID, cfg InterfaceConfig) ClientOption {
	return func(c *Client) {
		switch m {
		case darshan.ModulePOSIX:
			c.posix = cfg
		case darshan.ModuleSTDIO:
			c.stdio = cfg
		case darshan.ModuleMPIIO:
			c.mpiio = cfg
		default:
			panic(fmt.Sprintf("iosim: no interface config for module %v", m))
		}
	}
}

// WithBurstBufferNodes sets the job's burst-buffer allocation span, as a
// DataWarp capacity directive would.
func WithBurstBufferNodes(n int) ClientOption {
	return func(c *Client) { c.bbNodes = n }
}

// WithRetryPolicy overrides the client's reaction to injected transient
// errors and stalled operations.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithJobStart anchors the client's clock at t0 seconds on the campaign
// timeline, aligning its operations with the layers' fault windows.
func WithJobStart(t0 float64) ClientOption {
	return func(c *Client) { c.jobStart = t0 }
}

// NewClient builds a client for one application execution. The runtime's
// job header supplies the process count.
func NewClient(sys *System, rt *darshan.Runtime, r *rand.Rand, opts ...ClientOption) *Client {
	if sys == nil || rt == nil || r == nil {
		panic("iosim: NewClient requires non-nil system, runtime, and rng")
	}
	c := &Client{
		sys:    sys,
		rt:     rt,
		r:      r,
		nprocs: rt.Job().NProcs,
		posix:  DefaultPOSIX(),
		stdio:  DefaultSTDIO(),
		mpiio:  DefaultMPIIO(),
		retry:  DefaultRetryPolicy(),
		clock:  make(map[int32]float64),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Now returns rank's current simulated time in seconds since job start.
func (c *Client) Now(rank int32) float64 { return c.clock[rank] }

// Advance moves rank's clock forward by dt seconds of non-I/O work
// (compute phases between I/O phases).
func (c *Client) Advance(rank int32, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("iosim: cannot advance clock by %v", dt))
	}
	c.clock[rank] += dt
}

func (c *Client) config(m darshan.ModuleID) InterfaceConfig {
	switch m {
	case darshan.ModulePOSIX:
		return c.posix
	case darshan.ModuleSTDIO:
		return c.stdio
	case darshan.ModuleMPIIO:
		return c.mpiio
	default:
		panic(fmt.Sprintf("iosim: module %v is not an I/O interface", m))
	}
}

// transferDuration computes the wall-clock duration of one application-level
// transfer of size bytes through interface m by procs cooperating processes
// starting at local time start (campaign time jobStart+start).
func (c *Client) transferDuration(m darshan.ModuleID, path string, rw RW, size units.ByteSize, procs int, collective bool, start float64) float64 {
	return c.config(m).TransferDurationAt(c.sys.LayerFor(path), path, rw, size, procs, c.bbNodes, collective, c.jobStart+start, c.r)
}

// metaLatencyAt is the layer's per-operation metadata latency at campaign
// time jobStart+start, inflated when a metadata storm window is active.
func (c *Client) metaLatencyAt(layer Layer, path string, start float64) float64 {
	lat := layer.MetaLatency()
	if eff := EffectAt(layer, path, Read, 0, 1, c.jobStart+start); eff.LatencyScale > 1 {
		lat *= eff.LatencyScale
	}
	return lat
}

// Open opens path through interface m on rank, recording the operation.
// An MPI-IO open surfaces as a POSIX open underneath (paper §3.1), the same
// way MPI-IO transfers do.
func (c *Client) Open(m darshan.ModuleID, path string, rank int32) {
	layer := c.sys.LayerFor(path)
	start := c.clock[rank]
	dur := c.metaLatencyAt(layer, path, start) + c.config(m).PerCallOverhead
	c.clock[rank] = start + dur
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: darshan.OpOpen,
		Start: start, End: start + dur})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path, Rank: rank,
			Kind: darshan.OpOpen, Start: start, End: start + dur})
	}
}

// Close closes path through interface m on rank, recording the operation.
// An MPI-IO close emits the matching POSIX close underneath.
func (c *Client) Close(m darshan.ModuleID, path string, rank int32) {
	start := c.clock[rank]
	dur := c.config(m).PerCallOverhead
	c.clock[rank] = start + dur
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: darshan.OpClose,
		Start: start, End: start + dur})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path, Rank: rank,
			Kind: darshan.OpClose, Start: start, End: start + dur})
	}
}

// Read performs one read of size bytes at offset through interface m on
// rank and returns its duration in seconds.
func (c *Client) Read(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) float64 {
	return c.rankTransfer(m, path, rank, Read, size, offset)
}

// Write performs one write of size bytes at offset through interface m on
// rank and returns its duration in seconds.
func (c *Client) Write(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) float64 {
	return c.rankTransfer(m, path, rank, Write, size, offset)
}

// TryRead is Read with graceful degradation: transient errors from the
// layers' fault schedules trigger bounded retries per the client's
// RetryPolicy, and exhausted retries return an *OpError instead of
// panicking. The elapsed time (including retries) is always charged to the
// rank's clock; failed operations are excluded from the Darshan record
// because they moved no data.
func (c *Client) TryRead(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) (float64, error) {
	return c.tryRankTransfer(m, path, rank, Read, size, offset)
}

// TryWrite is Write with graceful degradation; see TryRead.
func (c *Client) TryWrite(m darshan.ModuleID, path string, rank int32, size units.ByteSize, offset int64) (float64, error) {
	return c.tryRankTransfer(m, path, rank, Write, size, offset)
}

// FaultStats returns the execution's accumulated fault and retry footprint.
func (c *Client) FaultStats() ClientFaultStats { return c.fstats }

func (c *Client) tryRankTransfer(m darshan.ModuleID, path string, rank int32, rw RW, size units.ByteSize, offset int64) (float64, error) {
	start := c.clock[rank]
	out := c.config(m).TryTransfer(c.sys.LayerFor(path), path, rw, size, 1, c.bbNodes,
		false, c.jobStart+start, c.retry, c.r)
	c.clock[rank] = start + out.Duration
	if out.Degraded {
		c.fstats.DegradedOps++
	}
	if out.Retries > 0 {
		c.fstats.OpsRetried++
	}
	c.fstats.RetrySeconds += out.RetryTime
	if out.Failed {
		c.fstats.OpsFailed++
		return out.Duration, &OpError{Path: path, RW: rw, Retries: out.Retries}
	}
	kind := darshan.OpWrite
	if rw == Read {
		kind = darshan.OpRead
	}
	end := start + out.Duration
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: kind,
		Size: size, Offset: offset, Start: start, End: end})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path, Rank: rank,
			Kind: kind, Size: size, Offset: offset, Start: start, End: end})
	}
	return out.Duration, nil
}

func (c *Client) rankTransfer(m darshan.ModuleID, path string, rank int32, rw RW, size units.ByteSize, offset int64) float64 {
	start := c.clock[rank]
	dur := c.transferDuration(m, path, rw, size, 1, false, start)
	c.clock[rank] = start + dur
	kind := darshan.OpWrite
	if rw == Read {
		kind = darshan.OpRead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: rank, Kind: kind,
		Size: size, Offset: offset, Start: start, End: start + dur})
	// An MPI-IO independent transfer surfaces as a POSIX operation of the
	// same shape underneath (paper §3.1).
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path, Rank: rank,
			Kind: kind, Size: size, Offset: offset, Start: start, End: start + dur})
	}
	return dur
}

// SharedTransfer performs one transfer against a file opened collectively by
// every rank of the job, recording a single pre-reduced rank −1 observation.
// size is the aggregate bytes moved by the whole job in this operation.
// It returns the wall-clock duration (the slowest rank's time).
//
// For MPI-IO with collective=true, collective buffering forms the aggregate
// into large well-formed requests; the matching POSIX-level observation is
// emitted with the aggregated shape, which is how collective aggregation
// turns many small application requests into few large system calls
// (Recommendation 2).
func (c *Client) SharedTransfer(m darshan.ModuleID, path string, rw RW, size units.ByteSize, collective bool) float64 {
	start := c.sharedClock()
	dur := c.transferDuration(m, path, rw, size, c.nprocs, collective, start)
	end := start + dur
	kind := darshan.OpWrite
	if rw == Read {
		kind = darshan.OpRead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank, Kind: kind,
		Size: size, Offset: -1, Start: start, End: end, Collective: collective})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path,
			Rank: darshan.SharedRank, Kind: kind, Size: size, Offset: -1,
			Start: start, End: end})
	}
	c.setAllClocks(end)
	return dur
}

// SharedOpen opens path on all ranks at once (e.g. MPI_File_open or a
// coordinated POSIX open), recording a pre-reduced rank −1 observation.
func (c *Client) SharedOpen(m darshan.ModuleID, path string, collective bool) {
	layer := c.sys.LayerFor(path)
	start := c.sharedClock()
	dur := c.metaLatencyAt(layer, path, start) + c.config(m).PerCallOverhead
	if collective {
		dur += c.config(m).CollectiveOverhead
	}
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank,
		Kind: darshan.OpOpen, Start: start, End: start + dur, Collective: collective})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path,
			Rank: darshan.SharedRank, Kind: darshan.OpOpen, Start: start, End: start + dur})
	}
	c.setAllClocks(start + dur)
}

// SharedClose closes a shared file on all ranks, emitting the matching
// POSIX close underneath MPI-IO.
func (c *Client) SharedClose(m darshan.ModuleID, path string) {
	start := c.sharedClock()
	dur := c.config(m).PerCallOverhead
	c.rt.Observe(darshan.Op{Module: m, Path: path, Rank: darshan.SharedRank,
		Kind: darshan.OpClose, Start: start, End: start + dur})
	if m == darshan.ModuleMPIIO {
		c.rt.Observe(darshan.Op{Module: darshan.ModulePOSIX, Path: path,
			Rank: darshan.SharedRank, Kind: darshan.OpClose, Start: start, End: start + dur})
	}
	c.setAllClocks(start + dur)
}

func (c *Client) sharedClock() float64 {
	var maxT float64
	for _, t := range c.clock {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

func (c *Client) setAllClocks(t float64) {
	for r := int32(0); r < int32(c.nprocs); r++ {
		if c.clock[r] < t {
			c.clock[r] = t
		}
	}
	// Shared-only workloads never touch per-rank clocks; keep a sentinel so
	// sharedClock sees progress even when nprocs clocks were never created.
	if c.clock[darshan.SharedRank] < t {
		c.clock[darshan.SharedRank] = t
	}
}
