package datawarp

import (
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/lustre"
	"iolayers/internal/units"
)

func idealCBB() *FS {
	cfg := CoriCBB()
	cfg.Variability = iosim.Variability{}
	return New(cfg)
}

func TestCoriCBBConfigMatchesPaper(t *testing.T) {
	fs := New(CoriCBB())
	// §2.1.2: 1.7 TB/s aggregate peak.
	if got := fs.Peak(iosim.Read); got < 1.69e12 || got > 1.71e12 {
		t.Errorf("aggregate peak %.4g, want ≈1.7e12", got)
	}
	if fs.Mount() != "/var/opt/cray/dws" {
		t.Errorf("mount = %q", fs.Mount())
	}
}

func TestAllocationFor(t *testing.T) {
	fs := idealCBB()
	cases := []struct {
		capacity units.ByteSize
		want     int
	}{
		{0, 2},                // default span
		{-5, 2},               // nonsense request falls back to default
		{units.GiB, 1},        // under one grain
		{20 * units.GiB, 1},   // exactly one grain
		{20*units.GiB + 1, 2}, // just over
		{200 * units.GiB, 10}, // ten grains
		{units.PiB, 288},      // capped at the pool
	}
	for _, c := range cases {
		if got := fs.AllocationFor(c.capacity); got != c.want {
			t.Errorf("AllocationFor(%v) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

func TestWiderAllocationIsFaster(t *testing.T) {
	fs := idealCBB()
	r := rand.New(rand.NewPCG(1, 1))
	size := 50 * units.GiB
	t2 := fs.TransferAlloc("/var/opt/cray/dws/f", iosim.Write, size, 256, 2, r)
	t32 := fs.TransferAlloc("/var/opt/cray/dws/f", iosim.Write, size, 256, 32, r)
	if t32 >= t2/4 {
		t.Errorf("32-node allocation %v not ≫4× faster than 2-node %v", t32, t2)
	}
}

func TestTransferUsesDefaultAllocation(t *testing.T) {
	fs := idealCBB()
	ra := rand.New(rand.NewPCG(2, 2))
	rb := rand.New(rand.NewPCG(2, 2))
	size := 10 * units.GiB
	viaDefault := fs.Transfer("/var/opt/cray/dws/f", iosim.Read, size, 64, ra)
	viaExplicit := fs.TransferAlloc("/var/opt/cray/dws/f", iosim.Read, size, 64, 2, rb)
	if viaDefault != viaExplicit {
		t.Errorf("default-span Transfer %v != explicit 2-node %v", viaDefault, viaExplicit)
	}
}

func TestAllocationSpanClamped(t *testing.T) {
	fs := idealCBB()
	r := rand.New(rand.NewPCG(3, 3))
	// Requests with absurd spans must still complete with valid times.
	d1 := fs.TransferAlloc("/var/opt/cray/dws/f", iosim.Read, units.GiB, 1, -5, r)
	d2 := fs.TransferAlloc("/var/opt/cray/dws/f", iosim.Read, units.GiB, 1, 1<<20, r)
	if d1 <= 0 || d2 <= 0 {
		t.Errorf("clamped transfers returned %v, %v", d1, d2)
	}
}

func TestStageMovesDataAtCopyRates(t *testing.T) {
	fs := idealCBB()
	cfg := lustre.CoriScratch()
	cfg.Variability = iosim.Variability{}
	pfs := lustre.New(cfg)
	r := rand.New(rand.NewPCG(4, 4))
	size := 100 * units.GiB
	dur := fs.Stage(pfs, size, 8, r)
	if dur <= 0 {
		t.Fatalf("stage duration %v", dur)
	}
	bw := float64(size) / dur
	// Bounded by 10% of the PFS peak (70 GB/s) and by the BB span.
	if bw > 70e9+1 {
		t.Errorf("stage bandwidth %.3g exceeds the PFS staging share", bw)
	}
	// An 8-node staging copy should still stream at multi-GB/s.
	if bw < 1e9 {
		t.Errorf("stage bandwidth %.3g implausibly low", bw)
	}
}

func TestStagePanicsOnNegativeSize(t *testing.T) {
	fs := idealCBB()
	pfs := lustre.New(lustre.CoriScratch())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fs.Stage(pfs, -1, 1, rand.New(rand.NewPCG(5, 5)))
}

func TestLayerInterfaceCompliance(t *testing.T) {
	var _ iosim.Layer = idealCBB()
	fs := idealCBB()
	if fs.Kind() != iosim.InSystem || fs.Name() != "CBB" {
		t.Errorf("identity: %v %q", fs.Kind(), fs.Name())
	}
	if fs.MetaLatency() <= 0 {
		t.Error("latency must be positive")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	cfg := CoriCBB()
	cfg.Granularity = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(cfg)
}
