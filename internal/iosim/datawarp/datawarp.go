// Package datawarp models a Cray DataWarp burst buffer in the style of
// Cori's CBB (paper §2.1.2): flash devices attached to dedicated service
// (burst-buffer) nodes inside the machine, allocated to jobs in fixed-size
// grains, with scheduler-integrated directives that provision capacity and
// stage directories or files in and out of the parallel file system around
// the job's lifetime without user involvement.
package datawarp

import (
	"fmt"
	"math"
	"math/rand/v2"

	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/serverstats"
	"iolayers/internal/units"
)

// Config describes a DataWarp deployment.
type Config struct {
	// Name of the layer, e.g. "CBB".
	Name string
	// MountPrefix under which job allocations are mounted,
	// e.g. "/var/opt/cray/dws".
	MountPrefix string
	// BBNodes is the number of burst-buffer service nodes (288 on Cori).
	BBNodes int
	// PerBBNodeBandwidth is one burst-buffer node's bandwidth in bytes/s.
	// Cori's 1.7 TB/s aggregate over 288 nodes gives ≈5.9 GB/s.
	PerBBNodeBandwidth float64
	// Granularity is the capacity grain per allocated node (Cori pools used
	// ≈20 GiB grains); a job's capacity request determines its node span.
	Granularity units.ByteSize
	// DefaultNodes is the node span of a job that requests no explicit
	// capacity.
	DefaultNodes int
	// PerProcessBandwidth caps one client process's injection rate.
	PerProcessBandwidth float64
	// Latency is the per-operation latency in seconds (DVS forwarding to
	// the service nodes sits between NVMe and PFS latency).
	Latency float64
	// Variability models sharing of burst-buffer nodes among jobs.
	Variability iosim.Variability
}

// CoriCBB returns the configuration of Cori's burst buffer with the paper's
// figures: 1.8 PB raw, 1.7 TB/s peak.
func CoriCBB() Config {
	return Config{
		Name:                "CBB",
		MountPrefix:         "/var/opt/cray/dws",
		BBNodes:             288,
		PerBBNodeBandwidth:  1.7e12 / 288,
		Granularity:         20 * units.GiB,
		DefaultNodes:        2,
		PerProcessBandwidth: 1.5e9,
		Latency:             120e-6,
		Variability: iosim.Variability{
			UtilizationMean:   0.15,
			UtilizationSpread: 0.15,
			Sigma:             0.35,
		},
	}
}

// Directives mirror the #DW job-script directives of §2.1.2: a capacity
// request plus optional stage-in/stage-out instructions executed by the
// scheduler before the job starts and after it exits.
type Directives struct {
	// Capacity is the requested allocation size; it is rounded up to whole
	// grains and determines how many burst-buffer nodes serve the job.
	Capacity units.ByteSize
	// StageIn lists PFS paths whose contents are copied into the allocation
	// before job start.
	StageIn []string
	// StageOut lists allocation paths copied back to the PFS after exit.
	StageOut []string
}

// FS is a DataWarp layer instance. It implements iosim.Layer. Per-job
// allocations are modeled by AllocationFor, derived from the job's
// directives; Transfer uses the default span, and TransferAlloc lets the
// caller apply a specific allocation.
type FS struct {
	cfg Config
	// collector, when non-nil, receives burst-buffer node load records.
	// Set it before issuing traffic; it is read concurrently afterwards.
	collector *serverstats.Collector
	// faults, when non-nil, degrades transfers inside scheduled fault
	// windows on the burst-buffer service nodes. Attach before traffic.
	faults *faults.Injector
}

// SetFaultSchedule binds a fault schedule to the burst-buffer node pool;
// nil detaches fault injection. Call before the layer serves traffic.
func (f *FS) SetFaultSchedule(s *faults.Schedule) {
	f.faults = faults.NewInjector(s, f.cfg.Name, f.cfg.BBNodes)
}

// FaultInjector returns the bound fault injector (nil when faults are off).
func (f *FS) FaultInjector() *faults.Injector { return f.faults }

// SetCollector attaches a statistics collector sized to the burst-buffer
// node pool. Call before the layer serves traffic.
func (f *FS) SetCollector(c *serverstats.Collector) { f.collector = c }

// NewCollector builds a collector with one slot per burst-buffer node.
func (f *FS) NewCollector() *serverstats.Collector {
	return serverstats.NewCollector(f.cfg.Name, f.cfg.BBNodes)
}

// New validates cfg and builds the layer.
func New(cfg Config) *FS {
	if cfg.BBNodes <= 0 || cfg.PerBBNodeBandwidth <= 0 || cfg.Granularity <= 0 ||
		cfg.DefaultNodes <= 0 || cfg.PerProcessBandwidth <= 0 || cfg.MountPrefix == "" {
		panic(fmt.Sprintf("datawarp: invalid config %+v", cfg))
	}
	return &FS{cfg: cfg}
}

// Name returns the layer name.
func (f *FS) Name() string { return f.cfg.Name }

// Kind reports InSystem.
func (f *FS) Kind() iosim.LayerKind { return iosim.InSystem }

// Mount returns the mount prefix.
func (f *FS) Mount() string { return f.cfg.MountPrefix }

// Peak returns the aggregate peak bandwidth.
func (f *FS) Peak(iosim.RW) float64 {
	return f.cfg.PerBBNodeBandwidth * float64(f.cfg.BBNodes)
}

// MetaLatency returns the per-operation latency.
func (f *FS) MetaLatency() float64 { return f.cfg.Latency }

// AllocationFor returns the burst-buffer node span granted for a capacity
// request: capacity rounded up to grains, one node per grain, at least one,
// at most the pool. Zero capacity yields the default span.
func (f *FS) AllocationFor(capacity units.ByteSize) int {
	if capacity <= 0 {
		return f.cfg.DefaultNodes
	}
	grains := int((capacity + f.cfg.Granularity - 1) / f.cfg.Granularity)
	return min(max(grains, 1), f.cfg.BBNodes)
}

// startNode derives a job allocation's starting burst-buffer node from the
// file path, so different allocations land on different node spans.
func startNode(path string) int {
	start := 0
	for i := 0; i < len(path); i++ {
		start = start*31 + int(path[i])
	}
	if start < 0 {
		start = -start
	}
	return start
}

// Transfer implements iosim.Layer using the default allocation span and no
// campaign-time context (injected fault windows never apply).
func (f *FS) Transfer(path string, rw iosim.RW, size units.ByteSize, procs int, r *rand.Rand) float64 {
	return f.TransferAllocAt(path, rw, size, procs, f.cfg.DefaultNodes, math.NaN(), r)
}

// TransferAt implements iosim.TimedLayer using the default allocation span.
func (f *FS) TransferAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64, r *rand.Rand) float64 {
	return f.TransferAllocAt(path, rw, size, procs, f.cfg.DefaultNodes, t, r)
}

// TransferAlloc is Transfer with an explicit burst-buffer node span, for
// jobs whose directives requested more capacity (and therefore bandwidth).
func (f *FS) TransferAlloc(path string, rw iosim.RW, size units.ByteSize, procs, bbNodes int, r *rand.Rand) float64 {
	return f.TransferAllocAt(path, rw, size, procs, bbNodes, math.NaN(), r)
}

// TransferAllocAt is TransferAlloc at campaign time t: the allocation's
// node span can sit inside a fault window (service-node outage, flash
// slowdown), degrading the delivered bandwidth.
func (f *FS) TransferAllocAt(path string, rw iosim.RW, size units.ByteSize, procs, bbNodes int, t float64, r *rand.Rand) float64 {
	if procs < 1 {
		procs = 1
	}
	if bbNodes < 1 {
		bbNodes = 1
	}
	if bbNodes > f.cfg.BBNodes {
		bbNodes = f.cfg.BBNodes
	}
	clientBW := math.Min(f.cfg.PerProcessBandwidth*float64(procs), f.Peak(rw))
	serverBW := f.cfg.PerBBNodeBandwidth * float64(bbNodes)
	start := startNode(path)
	eff := f.faults.Effect(t, start, bbNodes)
	dur := iosim.TransferTimeFaulty(size, f.cfg.Latency, clientBW, serverBW, f.cfg.Variability, eff, r)
	if f.collector != nil {
		f.collector.Record(start, bbNodes, int64(size), dur)
		if eff.Degraded {
			f.collector.RecordDegraded(start, bbNodes, dur)
		}
	}
	return dur
}

// FaultEffectAt implements iosim.Faulted: the effect a request of this
// shape would see at campaign time t, using the default allocation span.
func (f *FS) FaultEffectAt(path string, rw iosim.RW, size units.ByteSize, procs int, t float64) faults.Effect {
	return f.faults.Effect(t, startNode(path), f.cfg.DefaultNodes)
}

// Stage returns the seconds needed to move size bytes between this burst
// buffer and the given PFS layer, as the scheduler-driven stage-in/out does:
// the slower of the two sides bounds the copy, and the copy runs from the
// service nodes at full allocation width rather than through compute-node
// clients.
func (f *FS) Stage(pfs iosim.Layer, size units.ByteSize, bbNodes int, r *rand.Rand) float64 {
	if size < 0 {
		panic(fmt.Sprintf("datawarp: negative stage size %d", size))
	}
	if bbNodes < 1 {
		bbNodes = f.cfg.DefaultNodes
	}
	if bbNodes > f.cfg.BBNodes {
		bbNodes = f.cfg.BBNodes
	}
	bbBW := f.cfg.PerBBNodeBandwidth * float64(bbNodes)
	// The PFS side of a staging copy behaves like a well-formed large
	// streaming transfer issued by the service nodes.
	pfsBW := pfs.Peak(iosim.Read) * 0.10 // a staging copy cannot monopolize the PFS
	bw := math.Min(bbBW, pfsBW)
	eff := f.cfg.Variability.Available(r)
	return f.cfg.Latency + pfs.MetaLatency() + float64(size)/(bw*eff)
}
