package workload

import (
	"math"
	"math/rand/v2"
	"testing"

	"iolayers/internal/iosim/systems"
)

func TestLowDiscrepancyEquidistributed(t *testing.T) {
	// The Weyl sequence must fill the unit interval evenly: every decile
	// receives 10% ± a small discrepancy at n = 1000.
	var buckets [10]int
	const n = 1000
	for i := 0; i < n; i++ {
		u := lowDiscrepancy(uint64(i), 7)
		if u < 0 || u >= 1 {
			t.Fatalf("u = %v outside [0,1)", u)
		}
		buckets[int(u*10)]++
	}
	for b, c := range buckets {
		if c < 90 || c > 110 {
			t.Errorf("decile %d holds %d of %d (low-discrepancy violated)", b, c, n)
		}
	}
}

func TestLowDiscrepancySeedShifts(t *testing.T) {
	if lowDiscrepancy(5, 1) == lowDiscrepancy(5, 2) {
		t.Error("different seeds should shift the sequence")
	}
	if lowDiscrepancy(5, 1) != lowDiscrepancy(5, 1) {
		t.Error("sequence must be deterministic")
	}
}

func TestSampleStartOffsetSeasonality(t *testing.T) {
	g, err := NewGenerator(Summit(), systems.NewSummit(),
		Config{Seed: 9, JobScale: 0.001, FileScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	r := streamForTest(9)
	var months [12]int
	const n = 20000
	for i := 0; i < n; i++ {
		off := g.sampleStartOffset(r)
		if off < 0 || off > 366*86400 {
			t.Fatalf("offset %d outside the year", off)
		}
		m := int(float64(off) / (30.4 * 86400))
		if m > 11 {
			m = 11
		}
		months[m]++
	}
	// Summit's profile weights December 1.6 vs January 0.5: the ratio must
	// show up in the sampled months.
	ratio := float64(months[11]) / float64(months[0])
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("Dec/Jan activity ratio %.2f, want ≈3.2 (weights 1.6/0.5)", ratio)
	}
}

func TestSampleStartOffsetUniformWithoutWeights(t *testing.T) {
	p := Summit()
	p.MonthlyActivity = [12]float64{}
	g, err := NewGenerator(p, systems.NewSummit(),
		Config{Seed: 9, JobScale: 0.001, FileScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	r := streamForTest(10)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.sampleStartOffset(r))
	}
	mean := sum / n
	mid := 182.0 * 86400
	if math.Abs(mean-mid)/mid > 0.05 {
		t.Errorf("uniform start mean %.0f, want ≈%.0f", mean, mid)
	}
}

func TestScaledCountMeanPreserved(t *testing.T) {
	g, err := NewGenerator(Summit(), systems.NewSummit(),
		Config{Seed: 11, JobScale: 0.001, FileScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r := streamForTest(11)
	const raw = 37.0
	const n = 50000
	var total int
	for i := 0; i < n; i++ {
		total += g.scaledCount(raw, r)
	}
	mean := float64(total) / n
	want := raw * 0.1
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("scaled-count mean %.3f, want ≈%.2f", mean, want)
	}
}

func TestScaledCountCap(t *testing.T) {
	g, err := NewGenerator(Summit(), systems.NewSummit(),
		Config{Seed: 12, JobScale: 0.001, FileScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := streamForTest(12)
	if got := g.scaledCount(1e9, r); got != maxFilesPerLogLayer {
		t.Errorf("monster draw scaled to %d, want cap %d", got, maxFilesPerLogLayer)
	}
}

// streamForTest gives internal tests a deterministic RNG without exporting
// anything.
func streamForTest(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabcd))
}
