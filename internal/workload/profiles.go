package workload

import (
	"iolayers/internal/darshan"
	"iolayers/internal/dist"
	"iolayers/internal/units"
)

// sizeModel builds a per-file transfer-size distribution with the three-part
// structure every layer in the paper exhibits: a lognormal body holding the
// overwhelming majority of files (≥97% below 1 GB, Figure 3), a mid tail of
// gigabyte-to-terabyte files, and a sparse huge tail above 1 TB (Table 4).
func sizeModel(bodyMedian units.ByteSize, sigma float64,
	midWeight float64, midAlpha float64, midLo, midHi units.ByteSize,
	hugeWeight float64, hugeHi units.ByteSize) dist.Sampler {
	body := dist.LogNormal{Median: float64(bodyMedian), Sigma: sigma}
	components := []dist.Component{
		{Weight: 1 - midWeight - hugeWeight, Sampler: body},
	}
	if midWeight > 0 {
		components = append(components, dist.Component{
			Weight: midWeight,
			Sampler: dist.BoundedPareto{
				Alpha: midAlpha,
				Lo:    float64(midLo),
				Hi:    float64(midHi),
			},
		})
	}
	if hugeWeight > 0 {
		components = append(components, dist.Component{
			Weight: hugeWeight,
			Sampler: dist.BoundedPareto{
				Alpha: 0.8,
				Lo:    float64(units.TiB) * 1.001,
				Hi:    float64(hugeHi),
			},
		})
	}
	return dist.NewMixture(components...)
}

func classMix(ro, rw, wo float64) *dist.Categorical[Class] {
	return dist.NewCategorical(
		dist.Weighted[Class]{Value: ReadOnly, Weight: ro},
		dist.Weighted[Class]{Value: ReadWrite, Weight: rw},
		dist.Weighted[Class]{Value: WriteOnly, Weight: wo},
	)
}

func interfaceMix(posix, mpiio, stdio float64) *dist.Categorical[darshan.ModuleID] {
	return dist.NewCategorical(
		dist.Weighted[darshan.ModuleID]{Value: darshan.ModulePOSIX, Weight: posix},
		dist.Weighted[darshan.ModuleID]{Value: darshan.ModuleMPIIO, Weight: mpiio},
		dist.Weighted[darshan.ModuleID]{Value: darshan.ModuleSTDIO, Weight: stdio},
	)
}

func domainMix(pairs ...dist.Weighted[string]) *dist.Categorical[string] {
	return dist.NewCategorical(pairs...)
}

// Summit returns the calibrated profile of the Summit 2020 collection.
//
// Calibration anchors (paper values at full scale):
//   - Table 2: 281.6K jobs, 7.7M logs, 1294M files, 16.4M node-hours.
//   - Table 3: PFS/SCNL file ratio 3.63×; SCNL read-dominated
//     (4.43 PB R / 2.69 PB W), PFS write-dominated (197.75 R / 8278 W).
//   - Table 4: all >1 TB files on the PFS (7232 read / 78 write).
//   - Table 5: 241.5K PFS-only, 0 SCNL-only, 3.42K both.
//   - Table 6: SCNL {POSIX 52M, MPI-IO 6 files, STDIO 227M};
//     PFS {743M, 157M, 404M}.
//   - Figure 4: PFS reads split ≈45%/45% between the 0–100 and 1K–10K
//     bins; SCNL 10K–100K bin holds 83% of reads, 60% of writes.
func Summit() Profile {
	return Profile{
		SystemName:     "Summit",
		Year:           2020,
		DarshanVersion: "3.1.7",
		Jobs:           281600,
		Users:          1100,

		LogsPerJob:    dist.LogNormal{Median: 5, Sigma: 1.9},
		MaxLogsPerJob: 34341,
		NProcs: dist.NewMixture(
			dist.Component{Weight: 0.95, Sampler: dist.LogNormal{Median: 64, Sigma: 1.2}},
			// Explicit capability-class component so Figure 5's >1024-process
			// population is present even in small campaigns.
			dist.Component{Weight: 0.05, Sampler: dist.LogNormal{Median: 2500, Sigma: 0.7}},
		),
		LargeJobProcs: 1024,
		RuntimeSeconds: dist.LogNormal{
			Median: 450, Sigma: 0.9,
		},

		Domains: domainMix(
			dist.Weighted[string]{Value: "Physics", Weight: 0.24},
			dist.Weighted[string]{Value: "Computer Science", Weight: 0.20},
			dist.Weighted[string]{Value: "Materials", Weight: 0.11},
			dist.Weighted[string]{Value: "Chemistry", Weight: 0.09},
			dist.Weighted[string]{Value: "Biology", Weight: 0.07},
			dist.Weighted[string]{Value: "Earth Science", Weight: 0.07},
			dist.Weighted[string]{Value: "Engineering", Weight: 0.06},
			dist.Weighted[string]{Value: "Lattice Theory", Weight: 0.05},
			dist.Weighted[string]{Value: "Medical Science", Weight: 0.04},
			dist.Weighted[string]{Value: "Nuclear", Weight: 0.04},
			dist.Weighted[string]{Value: "Machine Learning", Weight: 0.02},
			dist.Weighted[string]{Value: "Staff", Weight: 0.01},
		),
		DomainCoverage: 1.0, // OLCF scheduler logs record every job's domain
		TunerFraction:  0.20,
		// INCITE allocation-year seasonality: slow January start, a June
		// mid-year review push, and a December use-it-or-lose-it crunch.
		MonthlyActivity: [12]float64{0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.0, 1.0, 1.1, 1.2, 1.3, 1.6},
		DomainVolumeScale: map[string]float64{
			"Physics":          2.0,
			"Machine Learning": 1.5,
		},
		InSystemDomainClass: map[string]Class{
			"Biology":   ReadOnly,
			"Materials": ReadOnly,
			"Chemistry": WriteOnly,
		},

		JobClassMix: dist.NewCategorical(
			dist.Weighted[JobLayerClass]{Value: PFSOnly, Weight: 241.5},
			dist.Weighted[JobLayerClass]{Value: InSystemOnly, Weight: 0},
			dist.Weighted[JobLayerClass]{Value: BothLayers, Weight: 3.42},
		),

		PFS: LayerProfile{
			FilesPerLog:  dist.LogNormal{Median: 40, Sigma: 1.63},
			InterfaceMix: interfaceMix(743, 157, 404),
			Interfaces: map[darshan.ModuleID]InterfaceProfile{
				darshan.ModulePOSIX: {
					ClassMix:  classMix(0.68, 0.04, 0.28),
					ReadSize:  sizeModel(2*units.MiB, 2.2, 0.010, 0.45, units.GiB, units.TiB, 4e-5, 16*units.TiB),
					WriteSize: sizeModel(4*units.MiB, 2.2, 0.060, 0.05, 100*units.GiB, 400*units.GiB, 1.5e-7, 8*units.TiB),
				},
				darshan.ModuleMPIIO: {
					ClassMix:  classMix(0.40, 0.20, 0.40),
					ReadSize:  sizeModel(16*units.MiB, 2.0, 0.006, 0.40, units.GiB, units.TiB, 4e-6, 4*units.TiB),
					WriteSize: sizeModel(16*units.MiB, 2.0, 0.020, 0.05, 100*units.GiB, 400*units.GiB, 0, 0),
				},
				darshan.ModuleSTDIO: {
					ClassMix:  classMix(0.30, 0.05, 0.65),
					ReadSize:  sizeModel(8*units.MiB, 2.0, 0.002, 0.6, units.GiB, 512*units.GiB, 0, 0),
					WriteSize: sizeModel(2*units.MiB, 2.0, 0.002, 0.6, units.GiB, 512*units.GiB, 2e-8, 2*units.TiB),
				},
			},
			ReadReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				45, 2, 45, 3, 2, 1, 1, 0.5, 0.4, 0.1}},
			WriteReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				30, 15, 20, 15, 10, 5, 3, 1.5, 0.4, 0.1}},
			SharedFileFrac: 0.03,
			CollectiveFrac: 0.6,
		},

		InSystem: LayerProfile{
			FilesPerJob:  dist.LogNormal{Median: 54400, Sigma: 0.9},
			InterfaceMix: interfaceMix(52, 0.006, 227),
			Interfaces: map[darshan.ModuleID]InterfaceProfile{
				darshan.ModulePOSIX: {
					ClassMix:  classMix(0.55, 0.15, 0.30),
					ReadSize:  sizeModel(4*units.MiB, 1.8, 0.0003, 0.8, units.GiB, 64*units.GiB, 0, 0),
					WriteSize: sizeModel(4*units.MiB, 1.8, 0.0003, 0.8, units.GiB, 64*units.GiB, 0, 0),
				},
				darshan.ModuleMPIIO: {
					ClassMix:  classMix(0.40, 0.20, 0.40),
					ReadSize:  sizeModel(16*units.MiB, 1.8, 0, 0, 0, 0, 0, 0),
					WriteSize: sizeModel(16*units.MiB, 1.8, 0, 0, 0, 0, 0, 0),
				},
				darshan.ModuleSTDIO: {
					ClassMix:  classMix(0.55, 0.15, 0.30),
					ReadSize:  sizeModel(4*units.MiB, 1.8, 0.0003, 0.8, units.GiB, 64*units.GiB, 0, 0),
					WriteSize: sizeModel(4*units.MiB, 1.8, 0.0003, 0.8, units.GiB, 64*units.GiB, 0, 0),
				},
			},
			ReadReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				5, 3, 4, 83, 2.5, 1, 0.7, 0.5, 0.2, 0.1}},
			WriteReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				10, 8, 10, 60, 6, 3, 1.5, 1, 0.4, 0.1}},
			LargeJobReadReq: &RequestSizes{Weights: [units.NumRequestBins]float64{
				3, 2, 3, 60, 10, 8, 6, 5, 2, 1}},
			LargeJobWriteReq: &RequestSizes{Weights: [units.NumRequestBins]float64{
				5, 4, 6, 45, 12, 10, 8, 6, 3, 1}},
			SharedFileFrac: 0.02,
			CollectiveFrac: 0.5,
		},

		StdioExtensions: domainMix(
			dist.Weighted[string]{Value: "rst", Weight: 0.30},
			dist.Weighted[string]{Value: "dat", Weight: 0.25},
			dist.Weighted[string]{Value: "vol", Weight: 0.15},
			dist.Weighted[string]{Value: "log", Weight: 0.15},
			dist.Weighted[string]{Value: "txt", Weight: 0.10},
			dist.Weighted[string]{Value: "out", Weight: 0.05},
		),
		DataExtensions: domainMix(
			dist.Weighted[string]{Value: "h5", Weight: 0.35},
			dist.Weighted[string]{Value: "nc", Weight: 0.20},
			dist.Weighted[string]{Value: "bin", Weight: 0.20},
			dist.Weighted[string]{Value: "chk", Weight: 0.15},
			dist.Weighted[string]{Value: "dat", Weight: 0.10},
		),
	}
}

// Cori returns the calibrated profile of the Cori 2019 collection.
//
// Calibration anchors (paper values at full scale):
//   - Table 2: 749.5K jobs, 4.3M logs, 416M files, 45.5M node-hours.
//   - Table 3: PFS/CBB file ratio 28.87×; both layers read-dominated
//     (CBB 13.71 R / 4.34 W = 3.16×; PFS 171.64 R / 26.10 W = 6.58×).
//   - Table 4: >1 TB reads concentrate on CBB (513 vs 74); >1 TB writes on
//     the PFS (10045 vs 950).
//   - Table 5: 579.91K PFS-only, 103.46K CBB-only (14.38% of jobs wholly
//     inside the burst buffer, thanks to DataWarp staging), 35.9K both.
//   - Table 6: CBB {POSIX 13M, MPI-IO 13M, STDIO 0.65M};
//     PFS {313M, 207M, 89M}.
func Cori() Profile {
	return Profile{
		SystemName:     "Cori",
		Year:           2019,
		DarshanVersion: "3.0/3.1",
		Jobs:           749500,
		Users:          2300,

		LogsPerJob:    dist.LogNormal{Median: 2, Sigma: 1.45},
		MaxLogsPerJob: 9999,
		NProcs: dist.NewMixture(
			dist.Component{Weight: 0.94, Sampler: dist.LogNormal{Median: 256, Sigma: 1.3}},
			dist.Component{Weight: 0.06, Sampler: dist.LogNormal{Median: 3000, Sigma: 0.7}},
		),
		LargeJobProcs: 1024,
		RuntimeSeconds: dist.LogNormal{
			Median: 1800, Sigma: 0.9,
		},

		Domains: domainMix(
			dist.Weighted[string]{Value: "Physics", Weight: 0.22},
			dist.Weighted[string]{Value: "Materials", Weight: 0.15},
			dist.Weighted[string]{Value: "Chemistry", Weight: 0.12},
			dist.Weighted[string]{Value: "Earth Science", Weight: 0.10},
			dist.Weighted[string]{Value: "Fusion", Weight: 0.08},
			dist.Weighted[string]{Value: "Computer Science", Weight: 0.07},
			dist.Weighted[string]{Value: "Biology", Weight: 0.06},
			dist.Weighted[string]{Value: "Energy Sciences", Weight: 0.06},
			dist.Weighted[string]{Value: "Engineering", Weight: 0.04},
			dist.Weighted[string]{Value: "Machine Learning", Weight: 0.04},
			dist.Weighted[string]{Value: "Nuclear Energy", Weight: 0.03},
			dist.Weighted[string]{Value: "Mathematics", Weight: 0.02},
			dist.Weighted[string]{Value: "Unknown", Weight: 0.01},
		),
		DomainCoverage: 0.9002, // NEWT project join covered 90.02% (§3.3.2)
		TunerFraction:  0.25,
		// ERCAP allocation-year seasonality on the NERSC cycle.
		MonthlyActivity: [12]float64{0.6, 0.8, 1.0, 1.0, 1.1, 1.2, 1.0, 0.9, 1.1, 1.2, 1.3, 1.5},
		DomainVolumeScale: map[string]float64{
			"Physics":          2.0,
			"Earth Science":    1.5,
			"Machine Learning": 1.5,
		},

		JobClassMix: dist.NewCategorical(
			dist.Weighted[JobLayerClass]{Value: PFSOnly, Weight: 579.91},
			dist.Weighted[JobLayerClass]{Value: InSystemOnly, Weight: 103.46},
			dist.Weighted[JobLayerClass]{Value: BothLayers, Weight: 35.9},
		),

		PFS: LayerProfile{
			FilesPerLog:  dist.LogNormal{Median: 30, Sigma: 1.63},
			InterfaceMix: interfaceMix(313, 207, 89),
			Interfaces: map[darshan.ModuleID]InterfaceProfile{
				darshan.ModulePOSIX: {
					ClassMix:  classMix(0.60, 0.10, 0.30),
					ReadSize:  sizeModel(4*units.MiB, 2.2, 0.012, 0.25, units.GiB, 512*units.GiB, 1.8e-7, 4*units.TiB),
					WriteSize: sizeModel(2*units.MiB, 2.2, 0.002, 0.30, units.GiB, 512*units.GiB, 2.5e-5, 8*units.TiB),
				},
				darshan.ModuleMPIIO: {
					ClassMix:  classMix(0.55, 0.15, 0.30),
					ReadSize:  sizeModel(8*units.MiB, 2.0, 0.012, 0.25, units.GiB, 512*units.GiB, 1.8e-7, 4*units.TiB),
					WriteSize: sizeModel(8*units.MiB, 2.0, 0.002, 0.30, units.GiB, 512*units.GiB, 2.5e-5, 8*units.TiB),
				},
				darshan.ModuleSTDIO: {
					ClassMix:  classMix(0.40, 0.10, 0.50),
					ReadSize:  sizeModel(4*units.MiB, 2.0, 0.003, 0.6, units.GiB, 256*units.GiB, 0, 0),
					WriteSize: sizeModel(units.MiB, 2.0, 0.002, 0.6, units.GiB, 256*units.GiB, 0, 0),
				},
			},
			ReadReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				35, 20, 15, 10, 10, 5, 3, 1.5, 0.4, 0.1}},
			WriteReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				25, 20, 15, 15, 12, 7, 3, 2, 0.8, 0.2}},
			SharedFileFrac: 0.04,
			CollectiveFrac: 0.65,
		},

		InSystem: LayerProfile{
			FilesPerLog:  dist.LogNormal{Median: 9, Sigma: 1.23},
			InterfaceMix: interfaceMix(13, 13, 0.65),
			Interfaces: map[darshan.ModuleID]InterfaceProfile{
				darshan.ModulePOSIX: {
					ClassMix:  classMix(0.60, 0.10, 0.30),
					ReadSize:  sizeModel(32*units.MiB, 2.2, 0.059, 0.25, units.GiB, 128*units.GiB, 3.7e-5, 4*units.TiB),
					WriteSize: sizeModel(32*units.MiB, 2.2, 0.024, 0.25, units.GiB, 128*units.GiB, 6.8e-5, 4*units.TiB),
				},
				darshan.ModuleMPIIO: {
					ClassMix:  classMix(0.55, 0.15, 0.30),
					ReadSize:  sizeModel(32*units.MiB, 2.2, 0.059, 0.25, units.GiB, 128*units.GiB, 3.7e-5, 4*units.TiB),
					WriteSize: sizeModel(32*units.MiB, 2.2, 0.024, 0.25, units.GiB, 128*units.GiB, 6.8e-5, 4*units.TiB),
				},
				darshan.ModuleSTDIO: {
					ClassMix:  classMix(0.50, 0.20, 0.30),
					ReadSize:  sizeModel(16*units.MiB, 2.0, 0.010, 0.5, units.GiB, 512*units.GiB, 0, 0),
					WriteSize: sizeModel(8*units.MiB, 2.0, 0.010, 0.5, units.GiB, 512*units.GiB, 0, 0),
				},
			},
			ReadReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				15, 10, 10, 15, 20, 15, 8, 5, 1.5, 0.5}},
			WriteReq: RequestSizes{Weights: [units.NumRequestBins]float64{
				15, 10, 10, 15, 20, 15, 8, 5, 1.5, 0.5}},
			LargeJobReadReq: &RequestSizes{Weights: [units.NumRequestBins]float64{
				8, 5, 6, 12, 20, 18, 14, 10, 5, 2}},
			LargeJobWriteReq: &RequestSizes{Weights: [units.NumRequestBins]float64{
				8, 5, 6, 12, 20, 18, 14, 10, 5, 2}},
			SharedFileFrac: 0.05,
			CollectiveFrac: 0.6,
		},

		StdioExtensions: domainMix(
			dist.Weighted[string]{Value: "rst", Weight: 0.35},
			dist.Weighted[string]{Value: "dat", Weight: 0.22},
			dist.Weighted[string]{Value: "vol", Weight: 0.13},
			dist.Weighted[string]{Value: "log", Weight: 0.15},
			dist.Weighted[string]{Value: "txt", Weight: 0.10},
			dist.Weighted[string]{Value: "out", Weight: 0.05},
		),
		DataExtensions: domainMix(
			dist.Weighted[string]{Value: "h5", Weight: 0.35},
			dist.Weighted[string]{Value: "nc", Weight: 0.25},
			dist.Weighted[string]{Value: "bin", Weight: 0.15},
			dist.Weighted[string]{Value: "chk", Weight: 0.15},
			dist.Weighted[string]{Value: "dat", Weight: 0.10},
		),
	}
}

// Profiles returns the two shipped profiles keyed by system name.
func Profiles() map[string]Profile {
	return map[string]Profile{
		"Summit": Summit(),
		"Cori":   Cori(),
	}
}
