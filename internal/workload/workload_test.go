package workload

import (
	"math/rand/v2"
	"strings"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/dist"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

func TestClassStrings(t *testing.T) {
	if ReadOnly.String() != "read-only" || ReadWrite.String() != "read-write" ||
		WriteOnly.String() != "write-only" {
		t.Error("class strings wrong")
	}
	if PFSOnly.String() != "pfs-only" || InSystemOnly.String() != "in-system-only" ||
		BothLayers.String() != "both" {
		t.Error("job class strings wrong")
	}
}

func TestRequestSizesRespectBins(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	// All weight on one bin: every sample must land in it.
	for bin := 0; bin < units.NumRequestBins; bin++ {
		var rs RequestSizes
		rs.Weights[bin] = 1
		for i := 0; i < 200; i++ {
			size := rs.Sample(r)
			if got := units.RequestBinFor(size); int(got) != bin {
				t.Fatalf("bin %d: sample %d landed in %v", bin, size, got)
			}
		}
	}
}

func TestRequestSizesMixture(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	rs := RequestSizes{}
	rs.Weights[0] = 45
	rs.Weights[2] = 45
	rs.Weights[4] = 10
	counts := map[units.RequestBin]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[units.RequestBinFor(rs.Sample(r))]++
	}
	f0 := float64(counts[units.Bin0To100]) / float64(n)
	f2 := float64(counts[units.Bin1KTo10K]) / float64(n)
	if f0 < 0.42 || f0 > 0.48 || f2 < 0.42 || f2 > 0.48 {
		t.Errorf("bin fractions %.3f/%.3f, want ≈0.45 each", f0, f2)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	sys := systems.NewSummit()
	bad := []Config{
		{Seed: 1, JobScale: 0, FileScale: 0.1},
		{Seed: 1, JobScale: 1.5, FileScale: 0.1},
		{Seed: 1, JobScale: 0.1, FileScale: 0},
		{Seed: 1, JobScale: 0.1, FileScale: 2},
	}
	for _, cfg := range bad {
		if _, err := NewGenerator(Summit(), sys, cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
	if _, err := NewGenerator(Summit(), nil, DefaultConfig()); err == nil {
		t.Error("nil system: expected error")
	}
	g, err := NewGenerator(Summit(), sys, DefaultConfig())
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if g.Jobs() != 282 { // 281600 × 0.001, rounded
		t.Errorf("Jobs() = %d, want 282", g.Jobs())
	}
}

func TestGenerateJobDeterministic(t *testing.T) {
	sys := systems.NewSummit()
	cfg := Config{Seed: 99, JobScale: 0.0001, FileScale: 0.02}
	g1, _ := NewGenerator(Summit(), sys, cfg)
	g2, _ := NewGenerator(Summit(), systems.NewSummit(), cfg)
	for i := 0; i < min(g1.Jobs(), 5); i++ {
		a := g1.GenerateJob(i)
		b := g2.GenerateJob(i)
		if len(a) != len(b) {
			t.Fatalf("job %d: log counts %d vs %d", i, len(a), len(b))
		}
		for li := range a {
			if len(a[li].Records) != len(b[li].Records) {
				t.Fatalf("job %d log %d: record counts differ", i, li)
			}
			for ri := range a[li].Records {
				ra, rb := a[li].Records[ri], b[li].Records[ri]
				if ra.Record != rb.Record || ra.Rank != rb.Rank {
					t.Fatalf("job %d log %d record %d: identity differs", i, li, ri)
				}
				for ci := range ra.Counters {
					if ra.Counters[ci] != rb.Counters[ci] {
						t.Fatalf("job %d log %d record %d counter %d: %d vs %d",
							i, li, ri, ci, ra.Counters[ci], rb.Counters[ci])
					}
				}
			}
		}
	}
}

func TestGenerateJobIndexBounds(t *testing.T) {
	g, _ := NewGenerator(Summit(), systems.NewSummit(), DefaultConfig())
	for _, i := range []int{-1, g.Jobs()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d: expected panic", i)
				}
			}()
			g.GenerateJob(i)
		}()
	}
}

// campaignStats aggregates a small campaign for the calibration-band tests.
type campaignStats struct {
	files       map[iosim.LayerKind]int
	readBytes   map[iosim.LayerKind]float64
	writeBytes  map[iosim.LayerKind]float64
	sub1GReads  map[iosim.LayerKind][2]int // [sub-1G, total]
	sub1GWrites map[iosim.LayerKind][2]int
	iface       map[iosim.LayerKind]map[darshan.ModuleID]int
	jobClasses  map[string]int
	logs        int
	lustreRecs  int
	sharedRecs  int
	badPaths    int
}

// collectCampaign pools the campaigns of every provided seed into one
// statistics bundle: the heavy-tailed per-layer volumes converge too slowly
// for single-seed bands at test scale.
func collectCampaign(t *testing.T, name string, cfg Config, seeds ...uint64) (*campaignStats, *iosim.System) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []uint64{cfg.Seed}
	}
	sys := systems.ByName(name)
	st := &campaignStats{
		files:       map[iosim.LayerKind]int{},
		readBytes:   map[iosim.LayerKind]float64{},
		writeBytes:  map[iosim.LayerKind]float64{},
		sub1GReads:  map[iosim.LayerKind][2]int{},
		sub1GWrites: map[iosim.LayerKind][2]int{},
		iface: map[iosim.LayerKind]map[darshan.ModuleID]int{
			iosim.ParallelFS: {}, iosim.InSystem: {},
		},
		jobClasses: map[string]int{},
	}
	for _, seed := range seeds {
		cfg.Seed = seed
		g, err := NewGenerator(Profiles()[name], sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.addCampaign(t, sys, g)
	}
	return st, sys
}

func (st *campaignStats) addCampaign(t *testing.T, sys *iosim.System, g *Generator) {
	t.Helper()
	for i := 0; i < g.Jobs(); i++ {
		used := map[iosim.LayerKind]bool{}
		for _, log := range g.GenerateJob(i) {
			st.logs++
			for _, rec := range log.Records {
				path := log.PathOf(rec.Record)
				if path == "" {
					st.badPaths++
					continue
				}
				if rec.Module == darshan.ModuleLustre {
					st.lustreRecs++
					continue
				}
				layer := sys.LayerFor(path).Kind()
				used[layer] = true
				st.iface[layer][rec.Module]++
				if rec.Rank == darshan.SharedRank {
					st.sharedRecs++
				}
				var rb, wb int64
				switch rec.Module {
				case darshan.ModulePOSIX:
					rb = rec.Counters[darshan.PosixBytesRead]
					wb = rec.Counters[darshan.PosixBytesWritten]
				case darshan.ModuleSTDIO:
					rb = rec.Counters[darshan.StdioBytesRead]
					wb = rec.Counters[darshan.StdioBytesWritten]
				default:
					continue // MPI-IO volume already counted at POSIX level
				}
				st.files[layer]++
				// Volume-ratio bands are asserted over the sub-1TB body:
				// a single >1TB tail draw can flip a small campaign's
				// layer ratio, which is sampling lumpiness, not a
				// calibration error (EXPERIMENTS.md reports full-volume
				// ratios at larger scale).
				if rb <= int64(units.TiB) {
					st.readBytes[layer] += float64(rb)
				}
				if wb <= int64(units.TiB) {
					st.writeBytes[layer] += float64(wb)
				}
				if rb > 0 {
					c := st.sub1GReads[layer]
					c[1]++
					if rb <= int64(units.GiB) {
						c[0]++
					}
					st.sub1GReads[layer] = c
				}
				if wb > 0 {
					c := st.sub1GWrites[layer]
					c[1]++
					if wb <= int64(units.GiB) {
						c[0]++
					}
					st.sub1GWrites[layer] = c
				}
			}
		}
		switch {
		case used[iosim.ParallelFS] && used[iosim.InSystem]:
			st.jobClasses["both"]++
		case used[iosim.ParallelFS]:
			st.jobClasses["pfs"]++
		case used[iosim.InSystem]:
			st.jobClasses["insys"]++
		default:
			st.jobClasses["none"]++
		}
	}
}

var calibConfig = Config{Seed: 7, JobScale: 0.001, FileScale: 0.05}
var calibSeeds = []uint64{1, 2, 3}

// Summit calibration bands (paper values in comments; bands widened for the
// sampling noise of a 0.1% campaign).
func TestSummitCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	st, _ := collectCampaign(t, "Summit", calibConfig, calibSeeds...)

	if st.badPaths > 0 {
		t.Errorf("%d records with unresolvable paths", st.badPaths)
	}

	// Table 3: PFS holds several times the in-system file count (3.63×).
	ratio := float64(st.files[iosim.ParallelFS]) / float64(max(st.files[iosim.InSystem], 1))
	if ratio < 1.3 || ratio > 9 {
		t.Errorf("PFS/SCNL file ratio %.2f outside [1.3,9] (paper 3.63)", ratio)
	}

	// Table 3: PFS write-dominated (42×), SCNL read-dominated (1.65×).
	pfsWR := st.writeBytes[iosim.ParallelFS] / st.readBytes[iosim.ParallelFS]
	if pfsWR < 3 {
		t.Errorf("Summit PFS write/read volume %.2f, want ≥3 (paper 42)", pfsWR)
	}
	scnlRW := st.readBytes[iosim.InSystem] / st.writeBytes[iosim.InSystem]
	if scnlRW < 1.1 || scnlRW > 4 {
		t.Errorf("Summit SCNL read/write volume %.2f outside [1.1,4] (paper 1.65)", scnlRW)
	}

	// Figure 3: ≥95% of per-file transfers below 1 GB on both layers.
	for _, layer := range []iosim.LayerKind{iosim.ParallelFS, iosim.InSystem} {
		for dir, c := range map[string][2]int{"read": st.sub1GReads[layer], "write": st.sub1GWrites[layer]} {
			if c[1] == 0 {
				continue
			}
			frac := float64(c[0]) / float64(c[1])
			if frac < 0.93 {
				t.Errorf("%v %s: only %.3f of transfers ≤1GB (paper ≥0.97)", layer, dir, frac)
			}
		}
	}

	// Table 6: STDIO dominates SCNL (4.37× POSIX); MPI-IO nearly absent there.
	scnl := st.iface[iosim.InSystem]
	if scnl[darshan.ModuleSTDIO] < 2*scnl[darshan.ModulePOSIX] {
		t.Errorf("SCNL STDIO files %d not ≫ POSIX %d (paper 4.37×)",
			scnl[darshan.ModuleSTDIO], scnl[darshan.ModulePOSIX])
	}
	if scnl[darshan.ModuleMPIIO] > scnl[darshan.ModulePOSIX]/10 {
		t.Errorf("SCNL MPI-IO files %d should be negligible", scnl[darshan.ModuleMPIIO])
	}

	// Table 5: essentially no SCNL-exclusive jobs.
	if frac := float64(st.jobClasses["insys"]) / float64(max(st.jobClasses["pfs"], 1)); frac > 0.05 {
		t.Errorf("SCNL-exclusive job fraction %.3f, want ≈0", frac)
	}

	// Shared (rank −1) records exist for the performance analysis.
	if st.sharedRecs == 0 {
		t.Error("no shared-file records generated")
	}
	// Summit has no Lustre mount: no Lustre records.
	if st.lustreRecs != 0 {
		t.Errorf("Summit campaign has %d Lustre records", st.lustreRecs)
	}
}

func TestCoriCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	st, _ := collectCampaign(t, "Cori", calibConfig, calibSeeds...)

	// Table 3: PFS/CBB file ratio 28.87×.
	ratio := float64(st.files[iosim.ParallelFS]) / float64(max(st.files[iosim.InSystem], 1))
	if ratio < 12 || ratio > 70 {
		t.Errorf("PFS/CBB file ratio %.2f outside [12,70] (paper 28.87)", ratio)
	}

	// Table 3: both layers read-dominated (PFS 6.58×, CBB 3.16×).
	pfsRW := st.readBytes[iosim.ParallelFS] / st.writeBytes[iosim.ParallelFS]
	if pfsRW < 2 || pfsRW > 25 {
		t.Errorf("Cori PFS read/write %.2f outside [2,25] (paper 6.58)", pfsRW)
	}
	cbbRW := st.readBytes[iosim.InSystem] / st.writeBytes[iosim.InSystem]
	if cbbRW < 1.3 || cbbRW > 15 {
		t.Errorf("Cori CBB read/write %.2f outside [1.3,15] (paper 3.16)", cbbRW)
	}

	// Table 5: a substantial CBB-exclusive job population (14.38%).
	insysFrac := float64(st.jobClasses["insys"]) /
		float64(max(st.jobClasses["pfs"]+st.jobClasses["insys"]+st.jobClasses["both"], 1))
	if insysFrac < 0.05 || insysFrac > 0.30 {
		t.Errorf("CBB-exclusive job fraction %.3f outside [0.05,0.30] (paper 0.1438)", insysFrac)
	}

	// Table 6: STDIO is rare on CBB, noticeable on the PFS.
	cbb, pfs := st.iface[iosim.InSystem], st.iface[iosim.ParallelFS]
	if cbb[darshan.ModuleSTDIO] > cbb[darshan.ModulePOSIX]/5 {
		t.Errorf("CBB STDIO files %d not ≪ POSIX %d", cbb[darshan.ModuleSTDIO], cbb[darshan.ModulePOSIX])
	}
	if pfs[darshan.ModuleSTDIO] == 0 {
		t.Error("no STDIO files on Cori PFS")
	}

	// Lustre striping records accompany Cori PFS files.
	if st.lustreRecs == 0 {
		t.Error("no Lustre module records in a Cori campaign")
	}
}

func TestDomainMetadataCoverage(t *testing.T) {
	g, _ := NewGenerator(Cori(), systems.NewCori(), Config{Seed: 3, JobScale: 0.0005, FileScale: 0.02})
	covered, total := 0, 0
	for i := 0; i < g.Jobs(); i++ {
		logs := g.GenerateJob(i)
		if len(logs) == 0 {
			continue
		}
		total++
		if _, ok := logs[0].Job.Metadata["domain"]; ok {
			covered++
		}
	}
	frac := float64(covered) / float64(total)
	// Cori's NEWT join covered 90.02% of jobs.
	if frac < 0.82 || frac > 0.97 {
		t.Errorf("domain coverage %.3f outside [0.82,0.97] (paper 0.9002)", frac)
	}
}

func TestInSystemDomainClassOverrides(t *testing.T) {
	// Summit §3.2.2: biology/materials use SCNL read-only, chemistry
	// write-only. Verify via a profile forced onto the in-system layer.
	p := Summit()
	p.JobClassMix = dist.NewCategorical(
		dist.Weighted[JobLayerClass]{Value: BothLayers, Weight: 1},
	)
	p.Domains = dist.NewCategorical(
		dist.Weighted[string]{Value: "Biology", Weight: 1},
	)
	sys := systems.NewSummit()
	g, err := NewGenerator(p, sys, Config{Seed: 5, JobScale: 0.0002, FileScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < min(g.Jobs(), 20); i++ {
		for _, log := range g.GenerateJob(i) {
			for _, rec := range log.Records {
				path := log.PathOf(rec.Record)
				if !strings.HasPrefix(path, sys.InSystem.Mount()) {
					continue
				}
				var wb int64
				switch rec.Module {
				case darshan.ModulePOSIX:
					wb = rec.Counters[darshan.PosixBytesWritten]
				case darshan.ModuleSTDIO:
					wb = rec.Counters[darshan.StdioBytesWritten]
				}
				if wb > 0 {
					t.Fatalf("biology in-system file %q has %d written bytes; domain is read-only there", path, wb)
				}
			}
		}
	}
}

func TestFilePathsRouteToLayers(t *testing.T) {
	for _, name := range []string{"Summit", "Cori"} {
		sys := systems.ByName(name)
		g, _ := NewGenerator(Profiles()[name], sys, Config{Seed: 11, JobScale: 0.0002, FileScale: 0.02})
		for i := 0; i < min(g.Jobs(), 30); i++ {
			for _, log := range g.GenerateJob(i) {
				for _, rec := range log.Records {
					// Panics inside LayerFor would fail the test; also
					// check both layers appear plausible.
					sys.LayerFor(log.PathOf(rec.Record))
				}
			}
		}
	}
}

func TestVolumeCountersConsistent(t *testing.T) {
	// Bytes must equal request-count × request-size per histogram bin for
	// POSIX records (internal consistency of ObserveN batching).
	g, _ := NewGenerator(Summit(), systems.NewSummit(), Config{Seed: 13, JobScale: 0.0002, FileScale: 0.02})
	checked := 0
	for i := 0; i < min(g.Jobs(), 30); i++ {
		for _, log := range g.GenerateJob(i) {
			for _, rec := range log.RecordsFor(darshan.ModulePOSIX) {
				reads := rec.Counters[darshan.PosixReads]
				var histReads int64
				for b := 0; b < units.NumRequestBins; b++ {
					histReads += rec.Counters[darshan.PosixSizeRead0To100+b]
				}
				if reads != histReads {
					t.Fatalf("record %x: POSIX_READS %d != histogram total %d",
						rec.Record, reads, histReads)
				}
				if reads > 0 && rec.Counters[darshan.PosixBytesRead] <= 0 {
					t.Fatalf("record %x: reads with no bytes", rec.Record)
				}
				if rec.FCounters[darshan.PosixFReadTime] < 0 {
					t.Fatalf("record %x: negative read time", rec.Record)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no POSIX records checked")
	}
}

func TestProfilesComplete(t *testing.T) {
	for name, p := range Profiles() {
		if p.SystemName != name {
			t.Errorf("profile %q has SystemName %q", name, p.SystemName)
		}
		for _, lp := range []LayerProfile{p.PFS, p.InSystem} {
			for _, m := range darshan.InterfaceModules() {
				if _, ok := lp.Interfaces[m]; !ok {
					t.Errorf("%s: layer profile missing interface %v", name, m)
				}
			}
		}
		if p.Jobs <= 0 || p.Users <= 0 || p.LargeJobProcs <= 0 {
			t.Errorf("%s: bad scalar fields", name)
		}
	}
}

// The Recommendation 2 counterfactual must shift the request mixture to
// large well-formed transfers and reduce aggregate I/O time.
func TestWhatIfAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	run := func(whatIf bool) (timePerByte float64, largeShare float64) {
		sys := systems.NewSummit()
		g, err := NewGenerator(Summit(), sys, Config{
			Seed: 42, JobScale: 0.0005, FileScale: 0.03, WhatIfAggregation: whatIf,
		})
		if err != nil {
			t.Fatal(err)
		}
		var hist [units.NumRequestBins]int64
		var ioTime, bytes float64
		for i := 0; i < g.Jobs(); i++ {
			for _, log := range g.GenerateJob(i) {
				for _, rec := range log.RecordsFor(darshan.ModulePOSIX) {
					ioTime += rec.FCounters[darshan.PosixFReadTime] +
						rec.FCounters[darshan.PosixFWriteTime]
					bytes += float64(rec.Counters[darshan.PosixBytesRead] +
						rec.Counters[darshan.PosixBytesWritten])
					for b := 0; b < units.NumRequestBins; b++ {
						hist[b] += rec.Counters[darshan.PosixSizeRead0To100+b] +
							rec.Counters[darshan.PosixSizeWrite0To100+b]
					}
				}
			}
		}
		var total, large int64
		for b, c := range hist {
			total += c
			if b >= int(units.Bin1MTo4M) {
				large += c
			}
		}
		if total > 0 {
			largeShare = float64(large) / float64(total)
		}
		return ioTime / bytes, largeShare
	}
	baseTPB, baseLarge := run(false)
	aggTPB, aggLarge := run(true)
	// The counterfactual's two runs see different volume draws (different
	// RNG consumption), so the robust comparison is time per byte moved.
	if aggTPB >= baseTPB {
		t.Errorf("aggregated time/byte %.3g not below baseline %.3g", aggTPB, baseTPB)
	}
	if baseLarge > 0.2 {
		t.Errorf("baseline large-request share %.3f implausibly high", baseLarge)
	}
	if aggLarge < 0.95 {
		t.Errorf("what-if large-request share %.3f, want ≈1 (all aggregated)", aggLarge)
	}
}
