package workload

// maxFaultSamplesPerJob caps the per-job duration samples kept for the
// fault report's clean/degraded tail quantiles. The cap bounds campaign
// memory; sampling is deterministic (first batches win) so reports stay
// byte-identical at any worker count.
const maxFaultSamplesPerJob = 256

// FaultOutcome accumulates one job's (or one worker's, after merging)
// encounters with injected faults. All counters are exact integers so that
// merging partial outcomes in any order yields identical totals — the
// property behind worker-count-independent fault reports.
type FaultOutcome struct {
	// OpsFailed counts operations that exhausted their retries on a
	// transient error and moved no data.
	OpsFailed int64
	// OpsRetried counts operations that needed at least one retry.
	OpsRetried int64
	// RetryAttempts counts individual re-attempts across all operations.
	RetryAttempts int64
	// DegradedOps and CleanOps count operations issued inside and outside
	// fault windows.
	DegradedOps int64
	CleanOps    int64
	// DegradedNanos is wall-clock time spent on operations inside fault
	// windows, in nanoseconds.
	DegradedNanos int64
	// TimeLostNanos estimates campaign time lost to faults: the slowdown
	// excess of degraded operations plus all retry and backoff time.
	TimeLostNanos int64
	// DegradedDur and CleanDur sample per-request durations (seconds) in
	// and out of fault windows, capped per job, for tail quantiles split
	// by fault state.
	DegradedDur []float64
	CleanDur    []float64
}

// Merge folds o into f. Sample slices concatenate; callers sort the merged
// multiset before computing quantiles, so merge order does not matter.
func (f *FaultOutcome) Merge(o *FaultOutcome) {
	f.OpsFailed += o.OpsFailed
	f.OpsRetried += o.OpsRetried
	f.RetryAttempts += o.RetryAttempts
	f.DegradedOps += o.DegradedOps
	f.CleanOps += o.CleanOps
	f.DegradedNanos += o.DegradedNanos
	f.TimeLostNanos += o.TimeLostNanos
	f.DegradedDur = append(f.DegradedDur, o.DegradedDur...)
	f.CleanDur = append(f.CleanDur, o.CleanDur...)
}

// sample records one per-request duration in the matching fault-state
// bucket, honoring the per-job cap.
func (f *FaultOutcome) sample(degraded bool, d float64) {
	if degraded {
		if len(f.DegradedDur) < maxFaultSamplesPerJob {
			f.DegradedDur = append(f.DegradedDur, d)
		}
		return
	}
	if len(f.CleanDur) < maxFaultSamplesPerJob {
		f.CleanDur = append(f.CleanDur, d)
	}
}
