// Package workload synthesizes production I/O campaigns whose statistical
// shape matches the paper's published year-long Darshan collections: Summit
// 2020 and Cori 2019.
//
// The real traces are closed; this package is the substitution documented in
// DESIGN.md §2. Every published marginal the paper reports — job and log
// populations (Table 2), per-layer file counts and read/write volumes
// (Table 3), >1 TB tail files (Table 4), per-job layer exclusivity
// (Table 5), per-layer interface mix (Table 6), transfer-size CDFs
// (Figures 3, 9), request-size histograms (Figures 4, 5), file
// classification (Figures 6, 8), and domain mixes (Figures 7, 10) — has a
// corresponding knob in Profile, and the two shipped profiles are calibrated
// to those numbers. Generated campaigns run at a configurable scale;
// ratios and distribution shapes are preserved, absolute totals are not.
package workload

import (
	"math"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/dist"
	"iolayers/internal/units"
)

// Class is the paper's per-file I/O classification (§3.2.2): every file in
// a log is read-only, write-only, or read-write.
type Class int

// File classes.
const (
	ReadOnly Class = iota
	ReadWrite
	WriteOnly
)

// String names the class as the paper's figures do.
func (c Class) String() string {
	switch c {
	case ReadOnly:
		return "read-only"
	case ReadWrite:
		return "read-write"
	case WriteOnly:
		return "write-only"
	default:
		return "class(?)"
	}
}

// JobLayerClass is a job's storage-layer footprint (Table 5): files
// exclusively on the PFS, exclusively on the in-system layer, or on both.
type JobLayerClass int

// Job layer classes.
const (
	PFSOnly JobLayerClass = iota
	InSystemOnly
	BothLayers
)

// String names the job layer class.
func (c JobLayerClass) String() string {
	switch c {
	case PFSOnly:
		return "pfs-only"
	case InSystemOnly:
		return "in-system-only"
	case BothLayers:
		return "both"
	default:
		return "jobclass(?)"
	}
}

// RequestSizes is a distribution over the ten Darshan access-size bins:
// Weights[i] is the relative share of requests landing in bin i, and sizes
// within a bin are drawn log-uniformly. This directly encodes the
// request-size CDFs of the paper's Figures 4 and 5.
type RequestSizes struct {
	Weights [units.NumRequestBins]float64
}

// Sample draws one request size.
func (rs RequestSizes) Sample(r *rand.Rand) units.ByteSize {
	total := 0.0
	for _, w := range rs.Weights {
		total += w
	}
	u := r.Float64() * total
	bin := units.RequestBin(0)
	for i, w := range rs.Weights {
		if u < w {
			bin = units.RequestBin(i)
			break
		}
		u -= w
		bin = units.RequestBin(i) // fall through to last on rounding
	}
	return SampleWithinBin(r, bin)
}

// SampleWithinBin draws a request size log-uniformly within one Darshan
// access-size bin. The unbounded top bin is sampled over 1–4 GiB, the range
// real >1 GiB requests occupy.
func SampleWithinBin(r *rand.Rand, bin units.RequestBin) units.ByteSize {
	lo := float64(1)
	if bin > 0 {
		// Bins are (prevEdge, edge]; start just above the previous edge so
		// integer truncation cannot land the sample in the bin below.
		lo = float64(units.RequestBin(bin-1).UpperEdge()) + 1
	}
	hi := float64(bin.UpperEdge())
	if bin == units.Bin1GPlus {
		hi = 4 * float64(units.GiB)
	}
	return logUniform(r, lo, hi)
}

func logUniform(r *rand.Rand, lo, hi float64) units.ByteSize {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return units.ByteSize(lo)
	}
	// exp(U[ln lo, ln hi]) via lo*(hi/lo)^u.
	u := r.Float64()
	v := lo * math.Pow(hi/lo, u)
	return units.ByteSize(v)
}

// InterfaceProfile describes the files one I/O interface manages on one
// storage layer: their class mix and per-direction per-file transfer-size
// distributions (including heavy tails for the >1 TB population).
type InterfaceProfile struct {
	// ClassMix draws read-only / read-write / write-only.
	ClassMix *dist.Categorical[Class]
	// ReadSize and WriteSize draw a file's aggregate transferred bytes in
	// the respective direction (used when the class includes it).
	ReadSize  dist.Sampler
	WriteSize dist.Sampler
}

// LayerProfile describes one storage layer's file population.
type LayerProfile struct {
	// FilesPerLog draws the number of files a log touches on this layer
	// (for jobs that use the layer at all).
	FilesPerLog dist.Sampler
	// FilesPerJob, when non-nil, replaces FilesPerLog: the job's whole
	// file population on this layer is drawn once and spread evenly over
	// its logs — the pattern of campaigns that revisit one dataset on
	// every execution (e.g. ML ingest from node-local NVMe). Besides being
	// realistic for in-system layers, it decouples the layer's totals from
	// the heavy-tailed logs-per-job draw, which matters for the stability
	// of small synthetic campaigns.
	FilesPerJob dist.Sampler
	// InterfaceMix draws the managing interface per file (Table 6).
	InterfaceMix *dist.Categorical[darshan.ModuleID]
	// Interfaces maps each interface to its file population profile.
	Interfaces map[darshan.ModuleID]InterfaceProfile
	// ReadReq and WriteReq are the request-size histograms (Figure 4).
	ReadReq, WriteReq RequestSizes
	// LargeJobReadReq/LargeJobWriteReq, when non-nil, replace the request
	// histograms for jobs with more than LargeJobProcs processes
	// (Figure 5 observes more large requests to the in-system layers).
	LargeJobReadReq, LargeJobWriteReq *RequestSizes
	// SharedFileFrac is the fraction of files opened collectively by all
	// ranks (recorded as rank −1; the population behind Figures 11–12).
	SharedFileFrac float64
	// CollectiveFrac is the fraction of MPI-IO files using collective I/O.
	CollectiveFrac float64
}

// Profile is a complete system campaign description.
type Profile struct {
	// SystemName is "Summit" or "Cori"; it selects the iosim.System.
	SystemName string
	// Year and DarshanVersion reproduce Table 2's provenance columns.
	Year           int
	DarshanVersion string

	// Jobs is the full-scale job count (281.6K for Summit 2020, 749.5K for
	// Cori 2019); campaigns multiply this by their scale factor.
	Jobs int
	// Users is the approximate distinct-user population.
	Users int

	// LogsPerJob draws how many Darshan logs (application executions) one
	// job produces; heavy-tailed (1–34341 on Summit, 1–9999 on Cori).
	LogsPerJob dist.Sampler
	// MaxLogsPerJob caps LogsPerJob (the paper's observed maxima).
	MaxLogsPerJob int
	// NProcs draws a job's process count.
	NProcs dist.Sampler
	// LargeJobProcs is the paper's large-job threshold (1024).
	LargeJobProcs int
	// RuntimeSeconds draws a log's instrumented duration.
	RuntimeSeconds dist.Sampler

	// Domains is the science-domain mix (Figures 7 and 10).
	Domains *dist.Categorical[string]
	// DomainCoverage is the probability that a job can be joined to a
	// domain at all (0.9002 on Cori, where Slurm does not record domains
	// and the NEWT project join has gaps, §3.3.2).
	DomainCoverage float64
	// DomainVolumeScale multiplies a domain's transfer sizes, letting
	// physics dominate data movement as observed on both systems.
	DomainVolumeScale map[string]float64
	// InSystemDomainClass forces the file class for a domain's in-system
	// files (Summit: biology and materials read-only, chemistry
	// write-only, §3.2.2).
	InSystemDomainClass map[string]Class

	// MonthlyActivity weights job submissions by calendar month (January
	// first). A zero array means uniform activity. Production systems show
	// allocation-cycle seasonality: quiet January ramp-up, end-of-allocation
	// crunches.
	MonthlyActivity [12]float64

	// TunerFraction is the share of users who learn to tune their I/O
	// mid-year: their second-half jobs stripe large Lustre files widely and
	// favor collective MPI-IO. The paper's §5 future work asks how many
	// users tune their I/O across executions; the synthetic ground truth
	// here lets the detection analysis be validated end to end.
	TunerFraction float64

	// JobClassMix draws PFS-only / in-system-only / both (Table 5).
	JobClassMix *dist.Categorical[JobLayerClass]

	// PFS and InSystem describe the two layers' file populations.
	PFS, InSystem LayerProfile

	// StdioExtensions weights the file extensions STDIO files carry
	// (≈70% .rst/.dat/.vol on Cori, §3.3.2).
	StdioExtensions *dist.Categorical[string]
	// DataExtensions weights POSIX/MPI-IO file extensions.
	DataExtensions *dist.Categorical[string]
}
