package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"iolayers/internal/darshan"
	"iolayers/internal/dist"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/lustre"
	"iolayers/internal/units"
)

// Config controls a generated campaign's size and determinism.
type Config struct {
	// Seed makes the whole campaign reproducible: job i is a pure function
	// of (Seed, i).
	Seed uint64
	// JobScale multiplies the profile's full-scale job count (e.g. 0.001
	// generates one job per thousand). Values in (0, 1].
	JobScale float64
	// FileScale multiplies the per-log file counts, preserving per-layer
	// ratios while keeping generation tractable. Values in (0, 1].
	FileScale float64
	// ExtendedStdio enables the STDIOX module on every generated runtime —
	// the paper's Recommendation 4 counters, which production Darshan did
	// not collect. Off by default so the baseline reproduction sees exactly
	// what the paper's authors saw.
	ExtendedStdio bool
	// DXTSegments, when positive, enables extended tracing with the given
	// per-record segment cap (disabled by default, as on both studied
	// systems, §2.2).
	DXTSegments int
	// WhatIfAggregation runs the counterfactual campaign of
	// Recommendation 2: middleware-level aggregation applied platform-wide,
	// so every file's data moves in large well-formed requests instead of
	// the observed small-request mixtures. Compare against a baseline run
	// to quantify what the recommendation would have bought.
	WhatIfAggregation bool
	// Faults, when non-nil, injects the schedule's degraded windows and
	// transient errors into the campaign: NewGenerator attaches it to every
	// layer of the system, operations are stamped on the campaign timeline
	// (seconds since Jan 1 of the profile year), and fault-induced
	// failures are reported per job instead of crashing the campaign.
	// With Faults nil the generated logs are byte-identical to earlier
	// versions of this package: the fault path consumes no randomness.
	Faults *faults.Schedule
	// Retry bounds the generated applications' reaction to injected
	// transient errors; the zero value means iosim.DefaultRetryPolicy().
	Retry iosim.RetryPolicy
}

// DefaultConfig returns a campaign configuration sized for tests and
// benchmarks: about 0.1% of the jobs with 5% of the per-log files.
func DefaultConfig() Config {
	return Config{Seed: 1, JobScale: 0.001, FileScale: 0.05}
}

func (c Config) validate() error {
	if c.JobScale <= 0 || c.JobScale > 1 {
		return fmt.Errorf("workload: JobScale %v outside (0,1]", c.JobScale)
	}
	if c.FileScale <= 0 || c.FileScale > 1 {
		return fmt.Errorf("workload: FileScale %v outside (0,1]", c.FileScale)
	}
	return nil
}

// maxRequestsPerFile caps per-file request counts; beyond the cap the
// request size is raised to keep the volume, since terabyte files accessed
// in hundred-byte requests do not occur (and would produce absurd times).
const maxRequestsPerFile = 1 << 20

// Generator synthesizes Darshan logs for one system profile against its
// simulated I/O subsystem. A Generator is immutable after construction and
// safe for concurrent GenerateJob calls.
type Generator struct {
	profile Profile
	sys     *iosim.System
	cfg     Config
	jobs    int

	posixCfg iosim.InterfaceConfig
	stdioCfg iosim.InterfaceConfig
	mpiioCfg iosim.InterfaceConfig

	// faultsOn gates all fault accounting so that fault-free campaigns
	// consume exactly the pre-fault random stream.
	faultsOn bool
	retry    iosim.RetryPolicy

	yearStart int64
}

// NewGenerator builds a generator. It returns an error on a config outside
// its domain, so CLI tools can report bad flags instead of panicking.
func NewGenerator(p Profile, sys *iosim.System, cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sys == nil {
		return nil, fmt.Errorf("workload: nil system")
	}
	jobs := int(math.Round(float64(p.Jobs) * cfg.JobScale))
	if jobs < 1 {
		jobs = 1
	}
	// Unix time of Jan 1 of the profile year (civil arithmetic is overkill
	// for synthetic timestamps; 365.25-day years are fine).
	yearStart := int64(float64(p.Year-1970) * 365.25 * 86400)
	retry := cfg.Retry
	if retry == (iosim.RetryPolicy{}) {
		retry = iosim.DefaultRetryPolicy()
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		iosim.AttachFaults(sys, cfg.Faults)
	}
	return &Generator{
		profile:   p,
		sys:       sys,
		cfg:       cfg,
		jobs:      jobs,
		posixCfg:  iosim.DefaultPOSIX(),
		stdioCfg:  iosim.DefaultSTDIO(),
		mpiioCfg:  iosim.DefaultMPIIO(),
		faultsOn:  cfg.Faults != nil,
		retry:     retry,
		yearStart: yearStart,
	}, nil
}

// Jobs returns the scaled number of jobs in the campaign.
func (g *Generator) Jobs() int { return g.jobs }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// System returns the simulated system the campaign runs against.
func (g *Generator) System() *iosim.System { return g.sys }

// GenerateJob synthesizes every Darshan log of job index i (0 ≤ i < Jobs()).
// The result is deterministic for a given (Config.Seed, i) regardless of
// call order or concurrency.
func (g *Generator) GenerateJob(i int) []*darshan.Log {
	logs, _ := g.GenerateJobFaults(i)
	return logs
}

// GenerateJobSafe is GenerateJobFaults with panics demoted to errors, so a
// campaign driver can report a failed job and keep going instead of
// crashing the whole study.
func (g *Generator) GenerateJobSafe(i int) (logs []*darshan.Log, fo FaultOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			logs, fo = nil, FaultOutcome{}
			err = fmt.Errorf("workload: job %d failed: %v", i, p)
		}
	}()
	logs, fo = g.GenerateJobFaults(i)
	return logs, fo, nil
}

// GenerateJobFaults is GenerateJob plus the job's fault outcome: with a
// fault schedule configured, operations are stamped on the campaign
// timeline, degraded and retried operations are accounted, and operations
// that exhaust their retries are dropped from the log (they moved no data)
// and counted as failed. Without a schedule the outcome is zero.
func (g *Generator) GenerateJobFaults(i int) ([]*darshan.Log, FaultOutcome) {
	if i < 0 || i >= g.jobs {
		panic(fmt.Sprintf("workload: job index %d outside [0,%d)", i, g.jobs))
	}
	var fo FaultOutcome
	r := dist.Stream(g.cfg.Seed, uint64(i))
	p := &g.profile

	jobID := uint64(1_000_000 + i)
	uid := uint64(1000 + r.IntN(p.Users))
	domain := p.Domains.Sample(r)
	covered := dist.Bernoulli(r, p.DomainCoverage)

	nprocs := int(math.Round(p.NProcs.Sample(r)))
	if nprocs < 1 {
		nprocs = 1
	}
	if nprocs > 1<<18 {
		nprocs = 1 << 18
	}
	// Quota-sample the job layer class with a golden-ratio low-discrepancy
	// sequence: the "both layers" class is rare (1.4% on Summit) yet holds
	// every in-system file, so leaving it to independent draws would make
	// small campaigns' layer ratios (Table 3) wildly noisy.
	jobClass := p.JobClassMix.SampleQuantile(lowDiscrepancy(uint64(i), g.cfg.Seed))

	nlogs := int(math.Round(p.LogsPerJob.Sample(r)))
	if nlogs < 1 {
		nlogs = 1
	}
	if nlogs > p.MaxLogsPerJob {
		nlogs = p.MaxLogsPerJob
	}

	// Per-job file populations (see LayerProfile.FilesPerJob) are drawn
	// once and spread across the job's logs.
	pfsPerJob, insysPerJob := -1, -1
	if p.PFS.FilesPerJob != nil && (jobClass == PFSOnly || jobClass == BothLayers) {
		pfsPerJob = g.scaledCount(p.PFS.FilesPerJob.Sample(r), r)
	}
	if p.InSystem.FilesPerJob != nil && (jobClass == InSystemOnly || jobClass == BothLayers) {
		insysPerJob = g.scaledCount(p.InSystem.FilesPerJob.Sample(r), r)
	}
	perLogShare := func(total, li int) int {
		n := total / nlogs
		if li < total%nlogs {
			n++
		}
		if n > maxFilesPerLogLayer {
			n = maxFilesPerLogLayer
		}
		return n
	}

	// A "tuner" user adopts I/O optimizations halfway through the year
	// (the paper's §5 future-work question, with known ground truth).
	tuner := p.TunerFraction > 0 &&
		lowDiscrepancy(uid, g.cfg.Seed+4) < p.TunerFraction
	midYear := g.yearStart + int64(182.5*86400)

	jobStart := g.yearStart + g.sampleStartOffset(r)
	logs := make([]*darshan.Log, 0, nlogs)
	for li := 0; li < nlogs; li++ {
		runtime := p.RuntimeSeconds.Sample(r)
		if runtime < 10 {
			runtime = 10
		}
		meta := map[string]string{"project": fmt.Sprintf("%.3s%03d", domain, uid%997)}
		if covered {
			meta["domain"] = domain
		}
		hdr := darshan.JobHeader{
			JobID:     jobID,
			UserID:    uid,
			NProcs:    nprocs,
			StartTime: jobStart,
			EndTime:   jobStart + int64(runtime),
			Exe:       fmt.Sprintf("/sw/%s/apps/%s/run.x", g.sys.Name, shortDomain(domain)),
			Metadata:  meta,
		}
		rt := darshan.NewRuntime(hdr)
		if g.cfg.ExtendedStdio {
			rt.EnableExtendedStdio()
		}
		if g.cfg.DXTSegments > 0 {
			rt.EnableDXT(g.cfg.DXTSegments)
		}

		tuned := tuner && jobStart >= midYear

		// The log's position on the campaign timeline (seconds since Jan 1
		// of the profile year) aligns its operations with fault windows.
		t0 := float64(jobStart - g.yearStart)

		var clock float64
		if jobClass == PFSOnly || jobClass == BothLayers {
			n := 0
			if pfsPerJob >= 0 {
				n = perLogShare(pfsPerJob, li)
			} else {
				n = g.scaledCount(p.PFS.FilesPerLog.Sample(r), r)
			}
			for f := 0; f < n; f++ {
				clock = g.genFile(rt, r, &p.PFS, g.sys.PFS, domain, nprocs, jobID, li, f, tuned, t0, clock, &fo)
			}
		}
		if jobClass == InSystemOnly || jobClass == BothLayers {
			n := 0
			if insysPerJob >= 0 {
				n = perLogShare(insysPerJob, li)
			} else {
				n = g.scaledCount(p.InSystem.FilesPerLog.Sample(r), r)
			}
			for f := 0; f < n; f++ {
				clock = g.genFile(rt, r, &p.InSystem, g.sys.InSystem, domain, nprocs, jobID, li, f, tuned, t0, clock, &fo)
			}
		}

		log := rt.Finalize()
		// The instrumented window closes when the last I/O completes, even
		// if that overran the nominal runtime draw.
		if end := jobStart + int64(clock) + 1; end > log.Job.EndTime {
			log.Job.EndTime = end
		}
		logs = append(logs, log)
		jobStart = log.Job.EndTime + int64(1+r.IntN(600))
	}
	return logs, fo
}

// sampleStartOffset draws a job's submission offset within the year,
// weighted by the profile's monthly activity (uniform if unset).
func (g *Generator) sampleStartOffset(r *rand.Rand) int64 {
	const monthSecs = 30.4 * 86400
	w := g.profile.MonthlyActivity
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return int64(r.Float64() * 364 * 86400)
	}
	u := r.Float64() * total
	month := 11
	for m, v := range w {
		if u < v {
			month = m
			break
		}
		u -= v
	}
	return int64((float64(month) + r.Float64()) * monthSecs)
}

// maxFilesPerLogLayer bounds one log's file count on one layer. The
// lognormal file-count draws are heavy-tailed; without a cap a single draw
// can dominate a small campaign's totals and runtimes.
const maxFilesPerLogLayer = 5000

// scaledCount applies FileScale to a sampled per-log file count with
// probabilistic rounding, preserving the mean except at the variance cap.
func (g *Generator) scaledCount(raw float64, r *rand.Rand) int {
	v := raw * g.cfg.FileScale
	if v <= 0 {
		return 0
	}
	n := int(v)
	if dist.Bernoulli(r, v-float64(n)) {
		n++
	}
	if n > maxFilesPerLogLayer {
		n = maxFilesPerLogLayer
	}
	return n
}

func (g *Generator) ifaceConfig(m darshan.ModuleID) iosim.InterfaceConfig {
	switch m {
	case darshan.ModulePOSIX:
		return g.posixCfg
	case darshan.ModuleSTDIO:
		return g.stdioCfg
	case darshan.ModuleMPIIO:
		return g.mpiioCfg
	default:
		panic(fmt.Sprintf("workload: no interface config for %v", m))
	}
}

// genFile synthesizes one file's access on one layer and records it in the
// runtime. t0 is the log's start on the campaign timeline; fo accumulates
// the job's fault outcome. It returns the advanced log clock.
func (g *Generator) genFile(rt *darshan.Runtime, r *rand.Rand, lp *LayerProfile,
	layer iosim.Layer, domain string, nprocs int, jobID uint64, logIdx, fileIdx int,
	tuned bool, t0, clock float64, fo *FaultOutcome) float64 {

	p := &g.profile
	iface := lp.InterfaceMix.Sample(r)
	ifp, ok := lp.Interfaces[iface]
	if !ok {
		panic(fmt.Sprintf("workload: %s layer has no profile for %v", layer.Name(), iface))
	}

	class := ifp.ClassMix.Sample(r)
	if layer.Kind() == iosim.InSystem {
		if forced, ok := p.InSystemDomainClass[domain]; ok {
			class = forced
		}
	}

	ext := p.DataExtensions.Sample(r)
	if iface == darshan.ModuleSTDIO {
		ext = p.StdioExtensions.Sample(r)
	}
	path := fmt.Sprintf("%s/%s/job%d/l%d/f%d.%s",
		layer.Mount(), shortDomain(domain), jobID, logIdx, fileIdx, ext)

	shared := nprocs > 1 && dist.Bernoulli(r, lp.SharedFileFrac)
	rank := darshan.SharedRank
	procs := nprocs
	if !shared {
		rank = int32(r.IntN(nprocs))
		procs = 1
	}
	collFrac := lp.CollectiveFrac
	if tuned {
		// Tuned users let the library do collective buffering (§5).
		collFrac = 0.9
	}
	collective := iface == darshan.ModuleMPIIO && dist.Bernoulli(r, collFrac)

	volScale := 1.0
	if s, ok := p.DomainVolumeScale[domain]; ok {
		volScale = s
	}
	large := nprocs > p.LargeJobProcs

	cfg := g.ifaceConfig(iface)

	// Open. A metadata-storm window inflates the per-open latency.
	openLat := layer.MetaLatency()
	if g.faultsOn {
		if eff := iosim.EffectAt(layer, path, iosim.Read, 0, 1, t0+clock); eff.LatencyScale > 1 {
			openLat *= eff.LatencyScale
		}
	}
	openDur := openLat + cfg.PerCallOverhead
	rt.Observe(darshan.Op{Module: iface, Path: path, Rank: rank, Kind: darshan.OpOpen,
		Start: clock, End: clock + openDur, Collective: collective})
	clock += openDur

	if class == ReadOnly || class == ReadWrite {
		reqs := lp.ReadReq
		if large && lp.LargeJobReadReq != nil {
			reqs = *lp.LargeJobReadReq
		}
		clock = g.genTransfer(rt, r, cfg, layer, path, iface, rank, procs, collective,
			iosim.Read, ifp.ReadSize, volScale, reqs, t0, clock, fo)
	}
	if class == WriteOnly || class == ReadWrite {
		reqs := lp.WriteReq
		if large && lp.LargeJobWriteReq != nil {
			reqs = *lp.LargeJobWriteReq
		}
		clock = g.genTransfer(rt, r, cfg, layer, path, iface, rank, procs, collective,
			iosim.Write, ifp.WriteSize, volScale, reqs, t0, clock, fo)
	}

	// Close.
	closeDur := cfg.PerCallOverhead
	rt.Observe(darshan.Op{Module: iface, Path: path, Rank: rank, Kind: darshan.OpClose,
		Start: clock, End: clock + closeDur})
	clock += closeDur

	// Lustre-backed files also get a Lustre module striping record, the way
	// Darshan's Lustre module instruments every file on a Lustre mount.
	// Tuned users `lfs setstripe` their large files to a wide layout.
	if lfs, ok := layer.(*lustre.FS); ok {
		layout := lfs.LayoutOf(path)
		if tuned {
			layout.StripeCount = 16
		}
		rt.SetLustreStriping(path, lfs.OSTCount(), 1, layout.StartOST,
			layout.StripeSize, layout.StripeCount)
	}

	return clock + 1e-3 // small gap before the next file
}

// genTransfer synthesizes one direction's aggregate transfer on one file.
//
// The file's volume is split across the profile's request-size bins so that
// the number of calls landing in bin b is proportional to the bin's weight:
// with per-bin sizes s_b and normalized weights ŵ_b, bin b receives volume
// V·ŵ_b·s_b/Σ(ŵ_j·s_j) and therefore V·ŵ_b/Σ(ŵ_j·s_j) calls. This makes the
// campaign-wide access-size histogram (Figure 4) match the profile exactly,
// and gives every file the realistic mix of bookkeeping-sized and
// bulk-data-sized requests — the bulk requests carry the bytes, the small
// ones dominate the call counts, just as production Darshan data shows.
func (g *Generator) genTransfer(rt *darshan.Runtime, r *rand.Rand,
	cfg iosim.InterfaceConfig, layer iosim.Layer, path string,
	iface darshan.ModuleID, rank int32, procs int, collective bool,
	rw iosim.RW, sizeDist dist.Sampler, volScale float64, reqs RequestSizes,
	t0, clock float64, fo *FaultOutcome) float64 {

	volume := units.ByteSize(sizeDist.Sample(r) * volScale)
	if volume < 1 {
		volume = 1
	}
	kind := darshan.OpWrite
	if rw == iosim.Read {
		kind = darshan.OpRead
	}
	if g.cfg.WhatIfAggregation {
		// Counterfactual: the middleware buffers application requests and
		// issues large aggregated transfers (Recommendation 2).
		reqs = aggregatedRequests
	}

	// Per-bin request sizes and the mean bytes moved per call, over the
	// bins feasible for this file: a request cannot be larger than the
	// file's whole transfer, so oversized bins are excluded rather than
	// letting a rare huge-request draw multiply a small file's volume.
	var sizes [units.NumRequestBins]units.ByteSize
	var feasible [units.NumRequestBins]bool
	var wsum, meanBytes float64
	for b, w := range reqs.Weights {
		if w <= 0 {
			continue
		}
		s := SampleWithinBin(r, units.RequestBin(b))
		if s > volume {
			continue
		}
		sizes[b] = s
		feasible[b] = true
		wsum += w
		meanBytes += w * float64(s)
	}
	if wsum <= 0 {
		// The whole volume is below even the smallest feasible request:
		// one request carries it all.
		return g.emitBatch(rt, r, cfg, layer, path, iface, rank, procs,
			collective, rw, kind, volume, 1, 0, t0, clock, fo)
	}
	meanBytes /= wsum

	totalCalls := float64(volume) / meanBytes
	if totalCalls > maxRequestsPerFile {
		totalCalls = maxRequestsPerFile
	}

	// Batches append sequentially by default; STDIO writes rewind to the
	// start of the file with probability stdioRewriteFrac, modeling the
	// rewrite-heavy dynamic data (logs, restart files) whose write
	// amplification on flash the paper's Recommendation 4 worries about.
	var offset int64
	emitted := 0
	for b, w := range reqs.Weights {
		if !feasible[b] {
			continue
		}
		// Probabilistic rounding preserves the expected per-bin call count
		// even when a small file cannot populate every bin.
		exact := totalCalls * w / wsum
		n := int(exact)
		if dist.Bernoulli(r, exact-float64(n)) {
			n++
		}
		if n == 0 {
			continue
		}
		if iface == darshan.ModuleSTDIO && rw == iosim.Write &&
			dist.Bernoulli(r, stdioRewriteFrac) {
			offset = 0
		}
		clock = g.emitBatch(rt, r, cfg, layer, path, iface, rank, procs,
			collective, rw, kind, sizes[b], n, offset, t0, clock, fo)
		offset += int64(n) * int64(sizes[b])
		emitted += n
	}
	if emitted == 0 {
		// Rounding produced no calls at all: a single request of the whole
		// volume keeps the file's bytes on the books.
		clock = g.emitBatch(rt, r, cfg, layer, path, iface, rank, procs,
			collective, rw, kind, volume, 1, 0, t0, clock, fo)
	}
	return clock
}

// aggregatedRequests is the request mixture a buffering middleware would
// issue: everything lands in the 4–10 MiB bin.
var aggregatedRequests = func() RequestSizes {
	var rs RequestSizes
	rs.Weights[units.Bin10MTo100M] = 1
	return rs
}()

// stdioRewriteFrac is the probability that an STDIO write batch rewinds to
// offset zero instead of appending — the dynamic-data share of STDIO files.
const stdioRewriteFrac = 0.3

// emitBatch records n back-to-back requests of one size starting at offset,
// with the MPI-IO POSIX mirror when applicable. With faults configured,
// the batch is stamped at campaign time t0+clock: requests landing inside a
// fault window run degraded, draw transient errors per the schedule's error
// rate, retry with bounded backoff, and — when retries run dry — fail and
// drop out of the observed counts (a failed request moved no data).
func (g *Generator) emitBatch(rt *darshan.Runtime, r *rand.Rand,
	cfg iosim.InterfaceConfig, layer iosim.Layer, path string,
	iface darshan.ModuleID, rank int32, procs int, collective bool,
	rw iosim.RW, kind darshan.OpKind, reqSize units.ByteSize, n int,
	offset int64, t0, clock float64, fo *FaultOutcome) float64 {

	if reqSize < 1 {
		reqSize = 1
	}
	t := t0 + clock
	// One representative per-rank request duration from the shared
	// interface cost model. On a shared file the batch's calls are spread
	// across the participating ranks and run concurrently, so wall time is
	// the per-rank call chain, not the serialized total — this concurrency
	// is exactly why POSIX outruns the inherently serial STDIO stream on
	// shared files (Figures 11–12). STDIO's ParallelCap pins it to one.
	d := cfg.TransferDurationAt(layer, path, rw, reqSize, 1, 0, collective, t, r)
	parallel := procs
	if cfg.ParallelCap > 0 && parallel > cfg.ParallelCap {
		parallel = cfg.ParallelCap
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	total := d * float64(n) / float64(parallel)

	nOK := n
	if g.faultsOn {
		eff := iosim.EffectAt(layer, path, rw, reqSize, 1, t)
		if eff.Degraded {
			fo.DegradedOps += int64(n)
			fo.DegradedNanos += int64(total * 1e9)
			if eff.BWScale > 0 && eff.BWScale < 1 {
				// Slowdown excess over the clean duration, bandwidth-term
				// estimate: a degraded request would have taken ≈ d·BWScale.
				fo.TimeLostNanos += int64(d * (1 - eff.BWScale) * float64(n) / float64(parallel) * 1e9)
			}
		} else {
			fo.CleanOps += int64(n)
		}
		fo.sample(eff.Degraded, d)
		if eff.ErrorRate > 0 {
			// Batch-level retry chain: Binomial(k, p) of the k attempts
			// error and re-attempt, up to the policy's retry bound; the
			// survivors of the final round fail outright.
			pol := g.retry
			retrying := faults.Binomial(r, n, eff.ErrorRate)
			if retrying > 0 {
				if pol.MaxRetries > 0 {
					fo.OpsRetried += int64(retrying)
				}
				extra := 0
				for k := 0; k < pol.MaxRetries && retrying > 0; k++ {
					extra += retrying
					retrying = faults.Binomial(r, retrying, eff.ErrorRate)
				}
				failed := retrying
				retryTime := (d + pol.Backoff) * float64(extra) / float64(parallel)
				total += retryTime
				fo.RetryAttempts += int64(extra)
				fo.TimeLostNanos += int64(retryTime * 1e9)
				fo.OpsFailed += int64(failed)
				nOK = n - failed
			}
		}
	}

	if nOK > 0 {
		rt.ObserveN(darshan.Op{
			Module: iface, Path: path, Rank: rank, Kind: kind,
			Size: reqSize, Offset: offset, Start: clock, End: clock + total,
			Collective: collective,
		}, nOK)
	}

	if iface == darshan.ModuleMPIIO && nOK > 0 {
		// The POSIX system calls underneath: collective buffering merges
		// the application requests into larger well-formed ones.
		posixSize := reqSize
		posixN := nOK
		if collective {
			agg := units.ByteSize(min(procs, 32))
			posixSize = reqSize * agg
			if maxReq := 64 * units.MiB; posixSize > maxReq {
				posixSize = maxReq
			}
			posixN = int((units.ByteSize(nOK)*reqSize + posixSize - 1) / posixSize)
			if posixN < 1 {
				posixN = 1
			}
		}
		rt.ObserveN(darshan.Op{
			Module: darshan.ModulePOSIX, Path: path, Rank: rank, Kind: kind,
			Size: posixSize, Offset: offset, Start: clock, End: clock + total,
		}, posixN)
	}
	return clock + total
}

// lowDiscrepancy maps (index, seed) onto [0,1) with a golden-ratio Weyl
// sequence: consecutive indexes spread evenly over the unit interval, so
// categorical quotas are met almost exactly at every prefix length.
func lowDiscrepancy(i, seed uint64) float64 {
	const phi = 0.6180339887498949
	v := (float64(i)+0.5)*phi + float64(seed%997)/997.0
	return v - float64(uint64(v))
}

// shortDomain compresses a domain name into a path component.
func shortDomain(domain string) string {
	out := make([]byte, 0, len(domain))
	for i := 0; i < len(domain); i++ {
		c := domain[i]
		switch {
		case c >= 'a' && c <= 'z':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+('a'-'A'))
		}
	}
	if len(out) == 0 {
		return "misc"
	}
	return string(out)
}
