package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

// stripped renders the deterministic slice of a registry: the exact bytes
// the determinism contract pins across worker counts and kill/resume.
func stripped(r *obsv.Registry) string {
	return string(r.Snapshot().StripVolatile().JSON())
}

// TestCampaignMetricsDeterministicAcrossWorkers pins the metrics half of
// the §7 determinism contract: the stripped metrics snapshot — counters,
// deterministic histograms, span bytes/ops — is byte-identical for any
// worker count, alongside the report itself.
func TestCampaignMetricsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	var want string
	var wantReport string
	for _, workers := range []int{1, 4, 16} {
		c, err := NewCampaign("Summit", resumeCfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Workers = workers
		m := obsv.New()
		rep, err := c.RunCheckpointed(context.Background(), RunOptions{Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		got := stripped(m)
		if want == "" {
			want, wantReport = got, report.Everything(rep)
			continue
		}
		if got != want {
			t.Errorf("workers=%d: stripped metrics differ from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
		if r := report.Everything(rep); r != wantReport {
			t.Errorf("workers=%d: report differs from workers=1", workers)
		}
	}
}

// TestCampaignMetricsContent checks the run.* counters and the generate
// span carry the campaign's actual event counts.
func TestCampaignMetricsContent(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	c, err := NewCampaign("Summit", resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Workers = 2
	m := obsv.New()
	var logs atomic.Int64
	rep, err := c.RunCheckpointed(context.Background(), RunOptions{
		Metrics: m,
		Sink:    func(_, _ int, _ *darshan.Log) error { logs.Add(1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Counter("run.logs_generated").Value(), logs.Load(); got != want {
		t.Errorf("run.logs_generated = %d, sink saw %d", got, want)
	}
	if got, want := m.Counter("run.jobs_done").Value(), rep.Summary.Jobs; got != want {
		t.Errorf("run.jobs_done = %d, report says %d jobs", got, want)
	}
	sp := m.Span("generate")
	if sp.Ops() != m.Counter("run.jobs_done").Value() {
		t.Errorf("generate span ops = %d, want %d", sp.Ops(), m.Counter("run.jobs_done").Value())
	}
	if sp.Bytes() <= 0 {
		t.Errorf("generate span bytes = %d, want > 0", sp.Bytes())
	}
	if sp.WallNanos() <= 0 {
		t.Errorf("generate span wall = %d, want > 0", sp.WallNanos())
	}
}

// TestCampaignMetricsKillAndResume extends the crash-safety property to
// metrics: a campaign cancelled at several points and resumed (with a
// different worker count) must end with a stripped metrics snapshot
// byte-identical to the uninterrupted run's.
func TestCampaignMetricsKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	base, err := NewCampaign("Summit", resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalLogs atomic.Int64
	mBase := obsv.New()
	_, err = base.RunCheckpointed(context.Background(), RunOptions{
		Metrics: mBase,
		Sink:    func(_, _ int, _ *darshan.Log) error { totalLogs.Add(1); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := stripped(mBase)
	n := totalLogs.Load()

	for _, tc := range []struct {
		name        string
		cancelAfter int64
		workers     int
		resumeWith  int
	}{
		{"early", 1, 1, 4},
		{"mid", n / 2, 4, 2},
		{"late", n - 2, 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ckPath := filepath.Join(t.TempDir(), "campaign.ckpt")
			c, err := NewCampaign("Summit", resumeCfg)
			if err != nil {
				t.Fatal(err)
			}
			c.Workers = tc.workers
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			m1 := obsv.New()
			var seen atomic.Int64
			_, err = c.RunCheckpointed(ctx, RunOptions{
				Metrics: m1,
				Sink: func(_, _ int, _ *darshan.Log) error {
					if seen.Add(1) == tc.cancelAfter {
						cancel()
					}
					return nil
				},
				CheckpointPath:  ckPath,
				CheckpointEvery: 2,
			})
			if err == nil {
				if got := stripped(m1); got != baseline {
					t.Error("completed-despite-cancel metrics differ from baseline")
				}
				return
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: %v", err)
			}

			ck, err := LoadCampaignCheckpoint(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Metrics == nil {
				t.Fatal("checkpoint carries no metrics state")
			}
			c2, err := ResumeCampaign(ck)
			if err != nil {
				t.Fatal(err)
			}
			c2.Workers = tc.resumeWith
			m2 := obsv.New() // fresh registry: resume restores from the checkpoint
			if _, err := c2.RunCheckpointed(context.Background(), RunOptions{
				Metrics:        m2,
				CheckpointPath: ckPath, CheckpointEvery: 2, Resume: ck,
			}); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if got := stripped(m2); got != baseline {
				t.Errorf("resumed metrics differ from uninterrupted baseline:\n%s\nvs\n%s", got, baseline)
			}
		})
	}
}

// TestIngestMetricsDeterministicAcrossWorkers pins ingestion metrics across
// worker counts, and checks the ingest.* counters match the pass result.
func TestIngestMetricsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	_, archive, count := buildCorpus(t)
	sys := systems.NewSummit()

	var want string
	for _, workers := range []int{1, 4, 16} {
		m := obsv.New()
		_, res, err := IngestArchive(context.Background(), sys, archive, IngestOptions{
			Workers: workers, Metrics: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Parsed != count {
			t.Fatalf("workers=%d: parsed %d of %d", workers, res.Parsed, count)
		}
		if got := m.Counter("ingest.logs_parsed").Value(); got != int64(count) {
			t.Errorf("workers=%d: ingest.logs_parsed = %d, want %d", workers, got, count)
		}
		if got := m.Histogram("ingest.entry_bytes").Count(); got != int64(count) {
			t.Errorf("workers=%d: entry_bytes count = %d, want %d", workers, got, count)
		}
		if got := m.Span("ingest").Bytes(); got <= 0 {
			t.Errorf("workers=%d: ingest span bytes = %d", workers, got)
		}
		got := stripped(m)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d: stripped metrics differ from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestIngestMetricsKillAndResume is the ingestion half: a cancelled pass
// resumed from its checkpoint (metrics restored from the checkpoint into a
// fresh registry) ends byte-identical to the uninterrupted pass.
func TestIngestMetricsKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, archive, count := buildCorpus(t)
	sys := systems.NewSummit()

	for _, mode := range []string{"dir", "archive"} {
		t.Run(mode, func(t *testing.T) {
			baseM := obsv.New()
			ingest := func(ctx context.Context, m *obsv.Registry, resume *IngestCheckpoint, ckPath string, workers int) error {
				opts := IngestOptions{Workers: workers, Metrics: m,
					CheckpointPath: ckPath, CheckpointEvery: 3, Resume: resume}
				var err error
				if mode == "dir" {
					_, _, err = IngestDir(ctx, sys, dir, opts)
				} else {
					_, _, err = IngestArchive(ctx, sys, archive, opts)
				}
				return err
			}
			if err := ingest(context.Background(), baseM, nil, "", 2); err != nil {
				t.Fatal(err)
			}
			baseline := stripped(baseM)
			if got := baseM.Counter("ingest.logs_parsed").Value(); got != int64(count) {
				t.Fatalf("baseline parsed counter = %d, want %d", got, count)
			}

			ckPath := filepath.Join(t.TempDir(), "ingest.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stop := make(chan struct{})
			go cancelOnCheckpoint(ckPath, cancel, stop)
			m1 := obsv.New()
			err := ingest(ctx, m1, nil, ckPath, 4)
			close(stop)
			if err == nil {
				t.Skip("pass completed before cancellation landed")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted ingest: %v", err)
			}
			ck, err := LoadIngestCheckpoint(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			m2 := obsv.New()
			if err := ingest(context.Background(), m2, ck, ckPath, 1); err != nil {
				t.Fatalf("resumed ingest: %v", err)
			}
			if got := stripped(m2); got != baseline {
				t.Errorf("resumed metrics differ from uninterrupted baseline:\n%s\nvs\n%s", got, baseline)
			}
		})
	}
}
