package core

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/workload"
)

var testCfg = workload.Config{Seed: 3, JobScale: 0.0002, FileScale: 0.02}

func TestNewCampaignUnknownSystem(t *testing.T) {
	if _, err := NewCampaign("Frontier", testCfg); err == nil {
		t.Error("expected error for unknown system")
	}
}

func TestNewCampaignCaseInsensitive(t *testing.T) {
	for _, name := range []string{"summit", "Summit", "cori", "Cori"} {
		if _, err := NewCampaign(name, testCfg); err != nil {
			t.Errorf("NewCampaign(%q): %v", name, err)
		}
	}
}

func TestRunProducesReport(t *testing.T) {
	c, err := NewCampaign("Summit", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.System != "Summit" {
		t.Errorf("system = %q", rep.Summary.System)
	}
	if rep.Summary.Jobs == 0 || rep.Summary.Logs == 0 || rep.Summary.Files == 0 {
		t.Errorf("empty summary: %+v", rep.Summary)
	}
}

// The defining property of the engine: the report is identical for any
// worker count (per-job RNG streams + mergeable aggregators).
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	var base *struct {
		jobs, logs, files int64
		pfsFiles          int64
	}
	for _, workers := range []int{1, 4, 13} {
		c, err := NewCampaign("Cori", testCfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Workers = workers
		rep, err := c.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		cur := &struct {
			jobs, logs, files int64
			pfsFiles          int64
		}{rep.Summary.Jobs, rep.Summary.Logs, rep.Summary.Files, rep.Layers[0].Stats.Files}
		if base == nil {
			base = cur
			continue
		}
		if *cur != *base {
			t.Errorf("workers=%d: results differ: %+v vs %+v", workers, cur, base)
		}
	}
}

func TestRunInvokesSinkForEveryLog(t *testing.T) {
	c, err := NewCampaign("Summit", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	rep, err := c.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		if log == nil {
			t.Error("nil log in sink")
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != rep.Summary.Logs {
		t.Errorf("sink saw %d logs, report says %d", count.Load(), rep.Summary.Logs)
	}
}

func TestRunSinkErrorAborts(t *testing.T) {
	c, err := NewCampaign("Summit", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	_, err = c.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped sink error", err)
	}
}

func TestRunStudyBothSystems(t *testing.T) {
	reports, err := RunStudy(workload.Config{Seed: 5, JobScale: 0.0001, FileScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, name := range []string{"Summit", "Cori"} {
		rep, ok := reports[name]
		if !ok {
			t.Fatalf("missing %s report", name)
		}
		if rep.Summary.System != name {
			t.Errorf("report %s labeled %s", name, rep.Summary.System)
		}
		if math.IsNaN(rep.Summary.NodeHours) || rep.Summary.NodeHours <= 0 {
			t.Errorf("%s node hours = %v", name, rep.Summary.NodeHours)
		}
	}
}

func TestBadConfigSurfacesError(t *testing.T) {
	c, err := NewCampaign("Summit", workload.Config{Seed: 1, JobScale: -1, FileScale: 0.1})
	if err != nil {
		t.Fatal(err) // NewCampaign doesn't validate the workload config
	}
	if _, err := c.Run(nil); err == nil {
		t.Error("expected error from invalid workload config")
	}
}
