package core

import (
	"context"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/iosim/systems"
)

// Folding a second pass into a caller-owned aggregator must accumulate: the
// Into report after ingesting the corpus twice carries double the counts of
// one pass, and matches ingesting into a clone of a one-pass aggregator.
func TestIngestIntoAccumulates(t *testing.T) {
	dir, _, n := buildCorpus(t)
	sys := systems.NewSummit()

	// One plain pass, for the baseline counts.
	rep1, res1, err := IngestDir(context.Background(), sys, dir, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Parsed != n {
		t.Fatalf("parsed %d of %d", res1.Parsed, n)
	}

	// Two passes folding into the same aggregator.
	agg := analysis.NewAggregator(sys)
	if _, _, err := IngestDir(context.Background(), sys, dir, IngestOptions{Into: agg}); err != nil {
		t.Fatal(err)
	}
	rep2, _, err := IngestDir(context.Background(), sys, dir, IngestOptions{Into: agg})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Summary.Logs != 2*rep1.Summary.Logs {
		t.Errorf("after two Into passes logs = %d, want %d", rep2.Summary.Logs, 2*rep1.Summary.Logs)
	}
	if rep2.Summary.Jobs != rep1.Summary.Jobs {
		t.Errorf("re-ingesting the same jobs changed the job count: %d vs %d",
			rep2.Summary.Jobs, rep1.Summary.Jobs)
	}
	if agg.Logs() != 2*rep1.Summary.Logs {
		t.Errorf("aggregator holds %d logs, want %d", agg.Logs(), 2*rep1.Summary.Logs)
	}
}

// The copy-on-write path ioserved uses: ingest into a clone, and the frozen
// original must not move.
func TestIngestIntoCloneLeavesSourceFrozen(t *testing.T) {
	dir, _, _ := buildCorpus(t)
	sys := systems.NewSummit()

	base := analysis.NewAggregator(sys)
	if _, _, err := IngestDir(context.Background(), sys, dir, IngestOptions{Into: base}); err != nil {
		t.Fatal(err)
	}
	before := base.Logs()
	clone := base.Clone()
	if _, _, err := IngestDir(context.Background(), sys, dir, IngestOptions{Into: clone}); err != nil {
		t.Fatal(err)
	}
	if base.Logs() != before {
		t.Errorf("ingesting into the clone moved the frozen base: %d -> %d", before, base.Logs())
	}
	if clone.Logs() != 2*before {
		t.Errorf("clone logs = %d, want %d", clone.Logs(), 2*before)
	}
}

func TestIngestIntoRejectsMisuse(t *testing.T) {
	dir, _, _ := buildCorpus(t)
	summit := systems.NewSummit()
	cori := systems.NewCori()

	wrong := analysis.NewAggregator(cori)
	if _, _, err := IngestDir(context.Background(), summit, dir, IngestOptions{Into: wrong}); err == nil {
		t.Error("system-mismatched Into aggregator was accepted")
	}

	agg := analysis.NewAggregator(summit)
	opts := IngestOptions{Into: agg, Resume: &IngestCheckpoint{System: "Summit", Mode: "dir", Source: dir}}
	if _, _, err := IngestDir(context.Background(), summit, dir, opts); err == nil {
		t.Error("Into combined with Resume was accepted")
	}
}
