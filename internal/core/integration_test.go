package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/workload"
)

// The persistence detour must be lossless: a campaign streamed into an
// archive, read back, and re-analyzed produces the same report as the
// campaign analyzed in memory.
func TestArchiveDetourMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	cfg := workload.Config{Seed: 8, JobScale: 0.0002, FileScale: 0.02}

	campaign, err := NewCampaign("Summit", cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.dgar")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	direct, err := campaign.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		mu.Lock()
		defer mu.Unlock()
		return aw.Append(log)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	logs, err := logfmt.ReadArchiveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	agg := analysis.NewAggregator(systems.NewSummit())
	for _, log := range logs {
		agg.AddLog(log)
	}
	detour := agg.Report()

	if direct.Summary.Logs != detour.Summary.Logs ||
		direct.Summary.Jobs != detour.Summary.Jobs ||
		direct.Summary.Files != detour.Summary.Files {
		t.Errorf("summaries differ:\ndirect %+v\ndetour %+v", direct.Summary, detour.Summary)
	}
	if direct.Exclusivity != detour.Exclusivity {
		t.Errorf("exclusivity differs: %+v vs %+v", direct.Exclusivity, detour.Exclusivity)
	}
	for li := 0; li < 2; li++ {
		d, g := direct.Layers[li].Stats, detour.Layers[li].Stats
		if d.Files != g.Files || d.Bytes != g.Bytes || d.ClassFiles != g.ClassFiles ||
			d.HugeFiles != g.HugeFiles {
			t.Errorf("layer %d stats differ after the archive detour", li)
		}
		for m, n := range d.InterfaceFiles {
			if g.InterfaceFiles[m] != n {
				t.Errorf("layer %d interface %v: %d vs %d", li, m, n, g.InterfaceFiles[m])
			}
		}
	}
	if direct.Tuning != detour.Tuning {
		t.Errorf("tuning differs: %+v vs %+v", direct.Tuning, detour.Tuning)
	}
	if direct.MonthlyLogs != detour.MonthlyLogs {
		t.Errorf("monthly series differ")
	}
}
