package core

import (
	"testing"

	"iolayers/internal/iosim/faults"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

// faultyCfg builds a campaign config whose fault schedule is aggressive
// enough that a tiny campaign sees degraded windows, retries, and failures.
func faultyCfg() workload.Config {
	const yearSeconds = 365.25 * 86400
	sched := faults.Generate(faults.Production(7, yearSeconds))
	// Crank the transient error rate so retries and failures show up even
	// at the small test scale.
	sched.TransientErrorRate = 0.02
	return workload.Config{Seed: 3, JobScale: 0.0004, FileScale: 0.02, Faults: sched}
}

// TestFaultReportDeterministicAcrossWorkerCounts is the acceptance property
// for the fault subsystem: the rendered fault section — counters, quantiles,
// failed-job list — is byte-identical for any worker count.
func TestFaultReportDeterministicAcrossWorkerCounts(t *testing.T) {
	var base string
	for _, workers := range []int{1, 4, 13} {
		c, err := NewCampaign("Summit", faultyCfg())
		if err != nil {
			t.Fatal(err)
		}
		c.Workers = workers
		rep, err := c.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Faults == nil {
			t.Fatal("campaign with a fault schedule produced no fault report")
		}
		sec := report.Faults(rep)
		if sec == "" {
			t.Fatal("empty fault section")
		}
		if base == "" {
			base = sec
			continue
		}
		if sec != base {
			t.Errorf("workers=%d: fault section differs\n--- base ---\n%s\n--- got ---\n%s",
				workers, base, sec)
		}
	}
}

// TestFaultyCampaignCompletesWithFailures: a campaign under an aggressive
// fault schedule finishes — per-op failures are absorbed by the retry model
// and reported, never panicking the study.
func TestFaultyCampaignCompletesWithFailures(t *testing.T) {
	c, err := NewCampaign("Summit", faultyCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil {
		t.Fatal("no fault report")
	}
	if fr.OpsFailed == 0 {
		t.Error("2% transient error rate produced no failed ops")
	}
	if fr.OpsRetried == 0 || fr.RetryAttempts < fr.OpsRetried {
		t.Errorf("retry accounting inconsistent: retried=%d attempts=%d",
			fr.OpsRetried, fr.RetryAttempts)
	}
	if fr.DegradedOps == 0 {
		t.Error("production schedule produced no degraded ops")
	}
	if fr.CleanOps == 0 {
		t.Error("no clean ops — schedule should not cover the whole year")
	}
	if fr.Degraded.N == 0 || fr.Clean.N == 0 {
		t.Errorf("duration tails missing samples: degraded=%d clean=%d",
			fr.Degraded.N, fr.Clean.N)
	}
	if fr.Windows == 0 || fr.ScheduleSeed != 7 {
		t.Errorf("schedule metadata not threaded: %+v", fr)
	}
}

// TestNoFaultConfigOmitsFaultReport: without a schedule and without job
// failures the report section stays nil, keeping legacy output unchanged.
func TestNoFaultConfigOmitsFaultReport(t *testing.T) {
	c, err := NewCampaign("Summit", workload.Config{Seed: 3, JobScale: 0.0002, FileScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != nil {
		t.Errorf("fault-free campaign grew a fault section: %+v", rep.Faults)
	}
	if s := report.Faults(rep); s != "" {
		t.Errorf("fault-free campaign rendered a fault section:\n%s", s)
	}
}
