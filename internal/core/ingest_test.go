package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

// buildCorpus synthesizes a small Summit campaign and persists it twice:
// as a directory of loose .darshan logs and as one .dgar archive. Returns
// (dir, archivePath, number of logs).
func buildCorpus(t *testing.T) (string, string, int) {
	t.Helper()
	cfg := workload.Config{Seed: 8, JobScale: 0.0002, FileScale: 0.02}
	campaign, err := NewCampaign("Summit", cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	archive := filepath.Join(t.TempDir(), "campaign.dgar")
	f, err := os.Create(archive)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	_, err = campaign.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		mu.Lock()
		defer mu.Unlock()
		count++
		name := filepath.Join(dir, fmt.Sprintf("job%05d_%05d.darshan", jobIdx, logIdx))
		if err := logfmt.WriteFile(name, log); err != nil {
			return err
		}
		return aw.Append(log)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("corpus is empty")
	}
	return dir, archive, count
}

// The ingestion determinism guarantee: the same corpus analyzed with 1, 2,
// and 8 workers renders byte-identical reports, for both directory and
// archive sources (static index-mod-workers sharding + ordered merges; the
// merge-preserves-exact-counts property of analysis.Aggregator).
func TestIngestDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, archive, count := buildCorpus(t)
	sys := systems.NewSummit()

	var baseDir, baseArchive string
	for _, workers := range []int{1, 2, 8} {
		rep, res, err := IngestDir(context.Background(), sys, dir, IngestOptions{Workers: workers})
		if err != nil {
			t.Fatalf("IngestDir workers=%d: %v", workers, err)
		}
		if res.Parsed != count || res.Failed != 0 {
			t.Fatalf("IngestDir workers=%d: parsed %d failed %d, want %d/0",
				workers, res.Parsed, res.Failed, count)
		}
		out := report.Everything(rep)
		if baseDir == "" {
			baseDir = out
		} else if out != baseDir {
			t.Errorf("IngestDir workers=%d: report differs from workers=1", workers)
		}

		rep, res, err = IngestArchive(context.Background(), sys, archive, IngestOptions{Workers: workers})
		if err != nil {
			t.Fatalf("IngestArchive workers=%d: %v", workers, err)
		}
		if res.Parsed != count || res.Failed != 0 {
			t.Fatalf("IngestArchive workers=%d: parsed %d failed %d, want %d/0",
				workers, res.Parsed, res.Failed, count)
		}
		out = report.Everything(rep)
		if baseArchive == "" {
			baseArchive = out
		} else if out != baseArchive {
			t.Errorf("IngestArchive workers=%d: report differs from workers=1", workers)
		}
	}
	if baseDir != baseArchive {
		t.Error("directory and archive ingestion render different reports for the same corpus")
	}
}

// A corrupt log in a directory is skipped, counted, and reported — the rest
// of the corpus still aggregates.
func TestIngestDirReportsFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, _, count := buildCorpus(t)
	bad := filepath.Join(dir, "aaa_bad.darshan")
	if err := os.WriteFile(bad, []byte("not a darshan log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, res, err := IngestDir(context.Background(), systems.NewSummit(), dir, IngestOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != count || res.Failed != 1 {
		t.Fatalf("parsed %d failed %d, want %d/1", res.Parsed, res.Failed, count)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0].Source, "aaa_bad") {
		t.Fatalf("failures = %+v", res.Failures)
	}
	if rep.Summary.Logs != int64(count) {
		t.Errorf("report logs = %d, want %d", rep.Summary.Logs, count)
	}
}

// Analyzing a campaign against the wrong system must fail log by log, not
// panic the pass: iosim.System.LayerFor panics on unroutable paths (a
// generator-bug invariant for synthesis), and ingestion demotes that to a
// per-log failure since its input is external.
func TestIngestWrongSystemFailsPerLogInsteadOfPanicking(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, _, count := buildCorpus(t)
	_, res, err := IngestDir(context.Background(), systems.NewCori(), dir, IngestOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Logs whose records route onto Summit-only mounts fail; logs without
	// routed file records still parse. The guarantee is no panic, full
	// accounting, and the iosim invariant surfaced as a per-log error.
	if res.Parsed+res.Failed != count || res.Failed == 0 {
		t.Fatalf("parsed %d failed %d, want them to sum to %d with failures", res.Parsed, res.Failed, count)
	}
	if len(res.Failures) == 0 || !strings.Contains(res.Failures[0].Err.Error(), "is on neither") {
		t.Fatalf("failures = %+v", res.Failures)
	}
}

// A corrupt entry inside an archive is skipped without losing the entries
// after it — entry framing is independent of entry contents.
func TestIngestArchiveContinuesPastCorruptEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	_, archive, count := buildCorpus(t)
	if count < 3 {
		t.Skipf("need ≥3 entries, have %d", count)
	}
	raw, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the framing to the second entry and flip a byte in the middle of
	// its embedded log (past the entry's length prefix).
	off := 6 // archive magic + version
	entryLen := func(o int) int {
		return int(uint32(raw[o]) | uint32(raw[o+1])<<8 | uint32(raw[o+2])<<16 | uint32(raw[o+3])<<24)
	}
	first := entryLen(off)
	off += 4 + first
	second := entryLen(off)
	raw[off+4+second/2] ^= 0x5A
	mutated := filepath.Join(t.TempDir(), "damaged.dgar")
	if err := os.WriteFile(mutated, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, res, err := IngestArchive(context.Background(), systems.NewSummit(), mutated, IngestOptions{Workers: 4})
	if err != nil {
		t.Fatalf("framing is intact, ingest should not fail terminally: %v", err)
	}
	if res.Failed != 1 || res.Parsed != count-1 {
		t.Fatalf("parsed %d failed %d, want %d/1", res.Parsed, res.Failed, count-1)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0].Source, "entry 1") {
		t.Fatalf("failures = %+v", res.Failures)
	}
	if rep.Summary.Logs != int64(count-1) {
		t.Errorf("report logs = %d, want %d", rep.Summary.Logs, count-1)
	}
}

// A truncated archive is a framing-level failure: everything before the
// damage is ingested and the error is surfaced.
func TestIngestArchiveTruncatedSurfacesError(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	_, archive, count := buildCorpus(t)
	raw, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.dgar")
	if err := os.WriteFile(cut, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, res, err := IngestArchive(context.Background(), systems.NewSummit(), cut, IngestOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected a framing error for a truncated archive")
	}
	if res.Parsed != count-1 {
		t.Errorf("parsed %d logs before the damage, want %d", res.Parsed, count-1)
	}
}
