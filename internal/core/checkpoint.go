// Campaign checkpointing. A campaign is resumable because job i is a pure
// function of (Config.Seed, i): no RNG cursor needs saving, only the set of
// completed jobs and the statistics accumulated from them. The checkpoint
// therefore captures (a) the campaign identity (system + full workload
// config, so resume needs no flags), (b) the done-job set, (c) the merged
// AggregatorState, fault outcome, and failed-job list, and (d) the durable
// byte offset of the -save archive, if any. All statistics are exact sums,
// counts, or sample multisets, and gob round-trips float64 bit-exactly, so
// a resumed campaign's final report is byte-identical to an uninterrupted
// run at any worker count.
//
// Execution is batched: jobs run through the worker pool CheckpointEvery at
// a time, with a checkpoint written at each batch boundary while every
// worker is quiescent. On context cancellation workers finish their current
// job and stop; because each worker records exactly which jobs it
// completed, the cancellation checkpoint captures the precise mid-batch
// done set rather than rounding down to the last boundary.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"iolayers/internal/analysis"
	"iolayers/internal/checkpoint"
	"iolayers/internal/obsv"
	"iolayers/internal/workload"
)

// CampaignMeta identifies a campaign well enough to rebuild it: resume
// reconstructs the Campaign from the checkpoint alone, so -resume needs no
// accompanying flags (and cannot silently disagree with them).
type CampaignMeta struct {
	SystemName string
	Config     workload.Config
	// Workers records the original pool size, informational only: the
	// report does not depend on it, and resume may use any worker count.
	Workers int
}

// CampaignCheckpoint is the persisted state of a partially-run campaign.
type CampaignCheckpoint struct {
	Meta CampaignMeta
	// Done[i] reports whether job i is fully accounted (its logs sunk and
	// aggregated, or its failure recorded).
	Done []bool
	// FailedJobs lists jobs whose generation failed, sorted.
	FailedJobs []int
	// Fault is the merged fault outcome over completed jobs.
	Fault workload.FaultOutcome
	// Agg is the merged aggregator state over completed jobs.
	Agg *analysis.AggregatorState
	// ArchiveBytes and ArchiveEntries record the -save archive's durable
	// size at checkpoint time; resume truncates the archive to this offset
	// before appending (jobs after it are not in Done and regenerate).
	ArchiveBytes   int64
	ArchiveEntries int
	// Metrics is the deterministic slice of the run's obsv registry, so a
	// resumed run's stripped metrics snapshot is byte-identical to an
	// uninterrupted one. Nil when the run carried no registry.
	Metrics *obsv.State
}

// JobsDone counts completed jobs.
func (ck *CampaignCheckpoint) JobsDone() int {
	n := 0
	for _, d := range ck.Done {
		if d {
			n++
		}
	}
	return n
}

// LoadCampaignCheckpoint reads a campaign checkpoint written by a prior
// RunCheckpointed.
func LoadCampaignCheckpoint(path string) (*CampaignCheckpoint, error) {
	var ck CampaignCheckpoint
	if err := checkpoint.Load(path, &ck); err != nil {
		return nil, err
	}
	if ck.Meta.SystemName == "" || len(ck.Done) == 0 {
		return nil, fmt.Errorf("core: %s is not a campaign checkpoint", path)
	}
	return &ck, nil
}

// ResumeCampaign rebuilds the campaign a checkpoint belongs to. The caller
// may adjust Workers on the result; everything else must come from the
// checkpoint for the resumed report to match.
func ResumeCampaign(ck *CampaignCheckpoint) (*Campaign, error) {
	c, err := NewCampaign(ck.Meta.SystemName, ck.Meta.Config)
	if err != nil {
		return nil, err
	}
	c.Workers = ck.Meta.Workers
	return c, nil
}

// RunOptions configures a checkpointed campaign run.
type RunOptions struct {
	// Sink receives every generated log (may be nil).
	Sink LogSink
	// CheckpointPath enables checkpointing: the file is atomically
	// rewritten at every batch boundary and on cancellation, and removed
	// when the campaign completes.
	CheckpointPath string
	// CheckpointEvery is the batch size in jobs between checkpoints
	// (default 512 when checkpointing is enabled).
	CheckpointEvery int
	// Resume continues from a prior checkpoint's state instead of starting
	// fresh. The campaign must match the checkpoint (use ResumeCampaign).
	Resume *CampaignCheckpoint
	// SyncSink, when set, is called before each checkpoint write to flush
	// the sink to durable storage; the returned byte offset and entry
	// count are recorded in the checkpoint (see ArchiveBytes).
	SyncSink func() (bytes int64, entries int, err error)
	// Metrics receives the run's self-instrumentation: the "generate" stage
	// span plus run.* counters, folded in at batch boundaries from
	// per-worker tallies (never from inside worker loops). Nil disables
	// metrics at zero cost.
	Metrics *obsv.Registry
}

// defaultCheckpointEvery is the batch size when the caller enables
// checkpointing without choosing one.
const defaultCheckpointEvery = 512

// RunCheckpointed runs the campaign under ctx with optional checkpointing
// and resume. On cancellation it returns the partial report alongside
// ctx's error — the statistics over every job completed before the stop —
// after persisting a resumable checkpoint (when CheckpointPath is set).
func (c *Campaign) RunCheckpointed(ctx context.Context, opts RunOptions) (*analysis.Report, error) {
	gen, err := workload.NewGenerator(c.Profile, c.System, c.Config)
	if err != nil {
		return nil, err
	}
	n := gen.Jobs()

	done := make([]bool, n)
	var failedJobs []int
	var foTotal workload.FaultOutcome
	total := analysis.NewAggregator(c.System)
	total.LargeJobProcs = c.Profile.LargeJobProcs
	if ck := opts.Resume; ck != nil {
		if ck.Meta.SystemName != c.System.Name {
			return nil, fmt.Errorf("core: checkpoint is for system %q, campaign is %q",
				ck.Meta.SystemName, c.System.Name)
		}
		if len(ck.Done) != n {
			return nil, fmt.Errorf("core: checkpoint covers %d jobs, campaign has %d (config mismatch)",
				len(ck.Done), n)
		}
		copy(done, ck.Done)
		failedJobs = append(failedJobs, ck.FailedJobs...)
		foTotal = ck.Fault
		if ck.Agg != nil {
			if total, err = analysis.NewAggregatorFromState(c.System, ck.Agg); err != nil {
				return nil, err
			}
		}
		opts.Metrics.RestoreState(ck.Metrics)
	}
	var pending []int
	for i := 0; i < n; i++ {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Stage instrumentation: nil Metrics makes every call below a no-op.
	genSpan := opts.Metrics.Span("generate")
	genTimer := genSpan.Begin()
	defer genTimer.End()
	genSpan.SetWorkers(workers)

	writeCk := func() error {
		if opts.CheckpointPath == "" {
			return nil
		}
		ck := &CampaignCheckpoint{
			Meta:       CampaignMeta{SystemName: c.System.Name, Config: c.Config, Workers: c.Workers},
			Done:       append([]bool(nil), done...),
			FailedJobs: append([]int(nil), failedJobs...),
			Fault:      foTotal,
			Agg:        total.State(),
			Metrics:    opts.Metrics.State(),
		}
		if opts.SyncSink != nil {
			b, e, err := opts.SyncSink()
			if err != nil {
				return fmt.Errorf("core: syncing sink for checkpoint: %w", err)
			}
			ck.ArchiveBytes, ck.ArchiveEntries = b, e
		}
		return checkpoint.Save(opts.CheckpointPath, ck)
	}

	batch := opts.CheckpointEvery
	if opts.CheckpointPath == "" {
		batch = len(pending) // no checkpoints: one batch
	} else if batch <= 0 {
		batch = defaultCheckpointEvery
	}

	for start := 0; start < len(pending); start += batch {
		end := start + batch
		if end > len(pending) {
			end = len(pending)
		}
		slice := pending[start:end]

		w := workers
		if w > len(slice) {
			w = len(slice)
		}
		jobs := make(chan int, len(slice))
		for _, i := range slice {
			jobs <- i
		}
		close(jobs)

		aggs := make([]*analysis.Aggregator, w)
		fouts := make([]workload.FaultOutcome, w)
		errsW := make([]error, w)
		doneBy := make([][]int, w)
		failBy := make([][]int, w)
		logsBy := make([]int64, w) // plain per-worker tallies, folded below
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			aggs[wi] = analysis.NewAggregator(c.System)
			aggs[wi].LargeJobProcs = c.Profile.LargeJobProcs
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for i := range jobs {
					// Cancellation: stop picking up jobs; the ones already
					// recorded in doneBy stay accounted.
					if ctx.Err() != nil {
						return
					}
					// A job whose generation dies (e.g. under an injected
					// fault it cannot absorb) is demoted to a reported
					// failure; the campaign keeps going.
					logs, fo, jobErr := gen.GenerateJobSafe(i)
					if jobErr != nil {
						failBy[wi] = append(failBy[wi], i)
						continue
					}
					fouts[wi].Merge(&fo)
					logsBy[wi] += int64(len(logs))
					for li, log := range logs {
						if opts.Sink != nil {
							if err := opts.Sink(i, li, log); err != nil {
								errsW[wi] = fmt.Errorf("core: sink failed on job %d log %d: %w", i, li, err)
								return
							}
						}
						aggs[wi].AddLog(log)
					}
					doneBy[wi] = append(doneBy[wi], i)
				}
			}(wi)
		}
		wg.Wait()

		// Fold the batch in worker-index order. The report does not depend
		// on this order (all statistics are partition-invariant); the fixed
		// order keeps the fold itself deterministic.
		var batchJobs, batchFails, batchLogs int64
		var batchRetried, batchAttempts int64
		var batchBytes float64
		for wi := 0; wi < w; wi++ {
			batchBytes += aggs[wi].TotalBytes()
			batchRetried += fouts[wi].OpsRetried
			batchAttempts += fouts[wi].RetryAttempts
			total.Merge(aggs[wi])
			foTotal.Merge(&fouts[wi])
			batchLogs += logsBy[wi]
			for _, i := range doneBy[wi] {
				done[i] = true
			}
			batchJobs += int64(len(doneBy[wi]))
			for _, i := range failBy[wi] {
				done[i] = true
				failedJobs = append(failedJobs, i)
			}
			batchFails += int64(len(failBy[wi]))
		}
		sort.Ints(failedJobs)
		if m := opts.Metrics; m != nil {
			m.Counter("run.jobs_done").Add(batchJobs)
			m.Counter("run.jobs_failed").Add(batchFails)
			m.Counter("run.logs_generated").Add(batchLogs)
			m.Counter("run.ops_retried").Add(batchRetried)
			m.Counter("run.retry_attempts").Add(batchAttempts)
			genSpan.AddOps(batchJobs)
			genSpan.AddBytes(int64(batchBytes))
		}
		for wi := 0; wi < w; wi++ {
			if errsW[wi] != nil {
				// A sink failure poisons the persisted campaign; do not
				// checkpoint over it.
				return nil, errsW[wi]
			}
		}

		if err := ctx.Err(); err != nil {
			// Graceful shutdown: persist exactly what completed, then hand
			// back a valid partial report alongside the cancellation error.
			if ckErr := writeCk(); ckErr != nil {
				return nil, errors.Join(err, ckErr)
			}
			return c.finishReport(total, &foTotal, failedJobs), err
		}
		if end < len(pending) {
			if err := writeCk(); err != nil {
				return nil, err
			}
		}
	}

	rep := c.finishReport(total, &foTotal, failedJobs)
	if opts.CheckpointPath != "" {
		// The campaign is complete; a stale checkpoint would invite
		// resuming into a finished run.
		removeCheckpoint(opts.CheckpointPath)
	}
	return rep, nil
}

// removeCheckpoint deletes a completed campaign's checkpoint, best effort.
func removeCheckpoint(path string) { os.Remove(path) }

// finishReport renders the aggregate and attaches the fault section.
func (c *Campaign) finishReport(total *analysis.Aggregator, fo *workload.FaultOutcome, failedJobs []int) *analysis.Report {
	rep := total.Report()
	if c.Config.Faults != nil || len(failedJobs) > 0 {
		rep.Faults = buildFaultReport(c.Config.Faults, fo, failedJobs)
	}
	return rep
}
