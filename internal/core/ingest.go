// Parallel log ingestion: the darshan-util half of the pipeline at campaign
// scale. IngestDir and IngestArchive fan logs out to a fixed worker pool in
// which each worker owns a private analysis.Aggregator; the partials merge
// via Aggregator.Merge — the same deterministic model Run uses for
// synthesis (DESIGN.md §7).
//
// Determinism: within a batch, item k is assigned to worker k mod workers
// (static sharding, one channel per worker), and partial aggregates merge
// in worker-index order. The result for a given worker count is therefore
// independent of goroutine scheduling, and the rendered report is identical
// across worker counts (all discrete statistics are exact integer sums; see
// TestIngestDeterministicAcrossWorkerCounts).
//
// Robustness (DESIGN.md §9): ingestion treats its input as untrusted.
// Decoding runs under logfmt.DecodeLimits, undecodable logs can be
// quarantined aside with a manifest instead of silently skipped, progress
// checkpoints atomically every CheckpointEvery entries (resume re-processes
// nothing and reproduces the uninterrupted report byte-for-byte), and
// context cancellation stops the pass at a batch boundary with a valid
// partial report.
//
// Memory: archives are streamed entry by entry — the dispatcher walks the
// length-prefixed framing sequentially (cheap) and hands raw entries to the
// workers, which pay the expensive inflate+decode in parallel. Per-worker
// channels are shallow, so at any moment the process holds O(workers)
// undecoded entries plus one decoded log per worker, never the whole
// archive.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"iolayers/internal/analysis"
	"iolayers/internal/checkpoint"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/obsv"
)

// IngestOptions configures a parallel ingestion pass.
type IngestOptions struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// LargeJobProcs overrides the large-job threshold (0 keeps the
	// aggregator default of 1024).
	LargeJobProcs int
	// Limits bounds what the decoder will allocate on behalf of each log;
	// zero fields take logfmt.DefaultLimits.
	Limits logfmt.DecodeLimits
	// QuarantineDir, when non-empty, receives every undecodable log —
	// moved aside in directory mode, extracted in archive mode — plus an
	// appended MANIFEST.tsv line per log (see quarantine).
	QuarantineDir string
	// CheckpointPath enables checkpointing: progress is atomically
	// persisted every CheckpointEvery entries, and the file is removed when
	// the pass completes.
	CheckpointPath string
	// CheckpointEvery is the batch size in entries between checkpoints
	// (default 4096 when checkpointing is enabled).
	CheckpointEvery int
	// Resume continues a prior pass from its checkpoint.
	Resume *IngestCheckpoint
	// Metrics receives the pass's self-instrumentation: the "ingest" stage
	// span plus ingest.* counters and histograms, folded in at batch
	// boundaries from per-worker tallies. Nil disables metrics at zero cost.
	Metrics *obsv.Registry
	// Into, when non-nil, receives the pass: logs fold into this
	// caller-owned aggregator instead of a fresh one, and the returned
	// report covers everything the aggregator has ever accumulated — the
	// basis of live re-ingestion into an existing dataset. The aggregator
	// must be built for the same system, the caller must not touch it until
	// the pass returns, and Into is incompatible with Resume (a checkpoint
	// reconstructs its own aggregator).
	Into *analysis.Aggregator
}

// defaultIngestBatch is the checkpoint batch size when the caller enables
// checkpointing without choosing one.
const defaultIngestBatch = 4096

// IngestFailure records one log that could not be parsed.
type IngestFailure struct {
	// Source identifies the log: a file path (directory mode) or
	// "entry N" (archive mode).
	Source string
	Err    error
}

// MaxRecordedFailures bounds the per-pass failure detail kept in an
// IngestResult; Failed always counts every failure.
const MaxRecordedFailures = 20

// IngestResult summarizes what an ingestion pass consumed.
type IngestResult struct {
	Parsed int
	Failed int
	// Quarantined counts logs moved to QuarantineDir.
	Quarantined int
	// Failures holds the first MaxRecordedFailures failures in input order.
	Failures []IngestFailure
}

// IngestFailureRecord is the serializable form of an IngestFailure.
type IngestFailureRecord struct {
	Source string
	Err    string
}

// IngestCheckpoint is the persisted state of a partially-complete
// ingestion pass. EntriesDone is a strict prefix: every input with index
// < EntriesDone is fully accounted (parsed, failed, or quarantined), and
// none at or beyond it are.
type IngestCheckpoint struct {
	System string
	// Mode is "dir" or "archive".
	Mode   string
	Source string
	// Paths freezes directory mode's sorted input list: quarantined files
	// are gone from the directory, so resume must not re-glob.
	Paths         []string
	EntriesDone   int
	Parsed        int
	Failed        int
	Quarantined   int
	Failures      []IngestFailureRecord
	LargeJobProcs int
	Agg           *analysis.AggregatorState
	// Metrics is the deterministic slice of the pass's obsv registry (see
	// CampaignCheckpoint.Metrics). Nil when the pass carried no registry.
	Metrics *obsv.State
}

// LoadIngestCheckpoint reads an ingestion checkpoint written by a prior
// IngestDir or IngestArchive pass.
func LoadIngestCheckpoint(path string) (*IngestCheckpoint, error) {
	var ck IngestCheckpoint
	if err := checkpoint.Load(path, &ck); err != nil {
		return nil, err
	}
	if ck.Mode != "dir" && ck.Mode != "archive" && ck.Mode != "columnar" {
		return nil, fmt.Errorf("core: %s is not an ingestion checkpoint", path)
	}
	return &ck, nil
}

// ingestItem is one unit of work: a path to open (directory mode), a raw
// undecoded archive entry (archive mode), or a raw undecoded columnar
// segment (columnar mode).
type ingestItem struct {
	index    int
	path     string
	raw      []byte
	source   string
	columnar bool
}

// indexedFailure keeps input order across workers for deterministic
// reporting and carries the failed item for quarantining.
type indexedFailure struct {
	index int
	f     IngestFailure
	item  ingestItem
}

// quarantine moves undecodable logs aside and records each in a
// tab-separated manifest (source, quarantined path, error kind, detail).
// All writes happen on the coordinator goroutine, between batches.
type quarantine struct {
	dir      string
	manifest *os.File
}

func newQuarantine(dir string) (*quarantine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating quarantine dir: %w", err)
	}
	m, err := os.OpenFile(filepath.Join(dir, "MANIFEST.tsv"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: opening quarantine manifest: %w", err)
	}
	return &quarantine{dir: dir, manifest: m}, nil
}

// errKind names the failure class for the manifest: the logfmt taxonomy
// when available, "error" otherwise.
func errKind(err error) string {
	var de *logfmt.DecodeError
	if errors.As(err, &de) {
		return de.Kind.String()
	}
	return "error"
}

// add quarantines one failed item: directory-mode items are moved (their
// path leaves the input directory), archive-mode items are extracted from
// the raw entry bytes.
func (q *quarantine) add(fail indexedFailure) error {
	var dst string
	if fail.item.path != "" {
		dst = filepath.Join(q.dir, filepath.Base(fail.item.path))
		if _, err := os.Lstat(dst); err == nil {
			dst = filepath.Join(q.dir, fmt.Sprintf("%06d-%s", fail.index, filepath.Base(fail.item.path)))
		}
		if err := os.Rename(fail.item.path, dst); err != nil {
			return fmt.Errorf("core: quarantining %s: %w", fail.item.path, err)
		}
	} else {
		name := fmt.Sprintf("entry-%06d.darshan", fail.index)
		if fail.item.columnar {
			name = fmt.Sprintf("segment-%06d.dgcseg", fail.index)
		}
		dst = filepath.Join(q.dir, name)
		if err := os.WriteFile(dst, fail.item.raw, 0o644); err != nil {
			return fmt.Errorf("core: quarantining %s: %w", fail.f.Source, err)
		}
	}
	_, err := fmt.Fprintf(q.manifest, "%s\t%s\t%s\t%s\n",
		fail.f.Source, dst, errKind(fail.f.Err), fail.f.Err)
	if err != nil {
		return fmt.Errorf("core: appending quarantine manifest: %w", err)
	}
	return nil
}

// sync flushes the manifest before a checkpoint is written, so a resumed
// pass never re-quarantines an already-manifested log.
func (q *quarantine) sync() error { return q.manifest.Sync() }

func (q *quarantine) close() { q.manifest.Close() }

// consumeItem parses one item under lim and folds it into agg. Unlike
// synthesis, ingestion consumes external files, so invariant panics from
// aggregation — iosim.System.LayerFor on a path outside the system's
// mounts, as happens when a log is analyzed against the wrong -system — are
// demoted to per-log errors rather than crashing the pass. A log that fails
// partway through AddLog may leave a partial contribution in agg; callers
// already treat a report with failures as best-effort, and the common
// wrong-system case fails every log, which IngestDir/IngestArchive callers
// reject outright (Parsed == 0).
// It returns how many logs the item contributed (1 for a log, the segment's
// log count for a columnar segment) plus the columns the segment's stats
// block let the decoder skip.
func consumeItem(br *bytes.Reader, agg *analysis.Aggregator, lim logfmt.DecodeLimits, item ingestItem) (logs int, colsPruned int, err error) {
	defer func() {
		if r := recover(); r != nil {
			logs, colsPruned = 0, 0
			err = fmt.Errorf("core: analyzing log: %v", r)
		}
	}()
	if item.columnar {
		batch, err := colfmt.DecodeSegment(item.raw, colfmt.ProjectAll, lim)
		if err != nil {
			return 0, 0, err
		}
		if err := agg.FoldBatch(batch); err != nil {
			return 0, 0, err
		}
		return batch.NumLogs, batch.ColumnsPruned, nil
	}
	var log *darshan.Log
	if item.path != "" {
		log, err = logfmt.ReadFileWithLimits(item.path, lim)
	} else {
		br.Reset(item.raw)
		log, err = logfmt.ReadWithLimits(br, lim)
	}
	if err != nil {
		return 0, 0, err
	}
	agg.AddLog(log)
	return 1, 0, nil
}

// numErrClasses is the metric fan-out for decode failures: the five
// logfmt.ErrorKind values plus one "other" class for non-decode errors
// (I/O failures, aggregation panics).
const numErrClasses = int(logfmt.KindBadVersion) + 2

// errClassName names a decode-error metric class.
func errClassName(k int) string {
	if k <= int(logfmt.KindBadVersion) {
		return logfmt.ErrorKind(k).String()
	}
	return "other"
}

// batchResult carries one batch's outcome back to the coordinator.
type batchResult struct {
	aggs      []*analysis.Aggregator
	parsed    int
	failures  []indexedFailure // all of the batch's failures, index-sorted
	failed    int
	count     int // items dispatched
	cancelled bool
	streamErr error // framing error from the item source
	// Metric tallies, merged from per-worker shards after the pool drains.
	errClasses [numErrClasses]int64
	rawBytes   int64
	rawHist    [obsv.NumBuckets]uint64
	rawHistSum int64
	colsPruned int64
}

// ingestCoordinator accumulates a pass's running state across batches.
type ingestCoordinator struct {
	sys  *iosim.System
	opts IngestOptions
	lim  logfmt.DecodeLimits

	mode   string
	source string
	paths  []string // dir mode only

	total       *analysis.Aggregator
	parsed      int
	failed      int
	quarantined int
	failures    []IngestFailure
	entriesDone int
	quar        *quarantine
	span        *obsv.Span // "ingest" stage span; nil when metrics are off
}

func newIngestCoordinator(sys *iosim.System, opts IngestOptions, mode, source string) (*ingestCoordinator, error) {
	spanName := "ingest"
	if mode == "columnar" {
		spanName = "fold" // the columnar pass is a pure batch fold, no inflate/decode of logs
	}
	ic := &ingestCoordinator{
		sys: sys, opts: opts, lim: opts.Limits,
		mode: mode, source: source,
		total: analysis.NewAggregator(sys),
		span:  opts.Metrics.Span(spanName),
	}
	if opts.Into != nil {
		if opts.Resume != nil {
			return nil, fmt.Errorf("core: IngestOptions.Into cannot be combined with Resume")
		}
		if opts.Into.SystemName() != sys.Name {
			return nil, fmt.Errorf("core: Into aggregator is for system %q, pass is %q",
				opts.Into.SystemName(), sys.Name)
		}
		ic.total = opts.Into
	}
	if opts.LargeJobProcs > 0 {
		ic.total.LargeJobProcs = opts.LargeJobProcs
	}
	if ck := opts.Resume; ck != nil {
		if ck.System != sys.Name {
			return nil, fmt.Errorf("core: checkpoint is for system %q, pass is %q", ck.System, sys.Name)
		}
		if ck.Mode != mode {
			return nil, fmt.Errorf("core: checkpoint is a %q pass, not %q", ck.Mode, mode)
		}
		ic.paths = ck.Paths
		ic.entriesDone = ck.EntriesDone
		ic.parsed = ck.Parsed
		ic.failed = ck.Failed
		ic.quarantined = ck.Quarantined
		for _, f := range ck.Failures {
			ic.failures = append(ic.failures, IngestFailure{Source: f.Source, Err: errors.New(f.Err)})
		}
		if ck.Agg != nil {
			var err error
			if ic.total, err = analysis.NewAggregatorFromState(sys, ck.Agg); err != nil {
				return nil, err
			}
		}
		opts.Metrics.RestoreState(ck.Metrics)
	}
	if opts.QuarantineDir != "" {
		var err error
		if ic.quar, err = newQuarantine(opts.QuarantineDir); err != nil {
			return nil, err
		}
	}
	return ic, nil
}

func (ic *ingestCoordinator) workers() int {
	if ic.opts.Workers > 0 {
		return ic.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (ic *ingestCoordinator) batchSize() int {
	if ic.opts.CheckpointPath == "" {
		return 0 // unbatched: single pass over everything
	}
	if ic.opts.CheckpointEvery > 0 {
		return ic.opts.CheckpointEvery
	}
	return defaultIngestBatch
}

// writeCheckpoint persists the coordinator's current (batch-boundary)
// state. The quarantine manifest is synced first so the on-disk checkpoint
// never claims more progress than the manifest records.
func (ic *ingestCoordinator) writeCheckpoint() error {
	if ic.opts.CheckpointPath == "" {
		return nil
	}
	if ic.quar != nil {
		if err := ic.quar.sync(); err != nil {
			return fmt.Errorf("core: syncing quarantine manifest: %w", err)
		}
	}
	ck := &IngestCheckpoint{
		System: ic.sys.Name, Mode: ic.mode, Source: ic.source,
		Paths: ic.paths, EntriesDone: ic.entriesDone,
		Parsed: ic.parsed, Failed: ic.failed, Quarantined: ic.quarantined,
		LargeJobProcs: ic.opts.LargeJobProcs,
		Agg:           ic.total.State(),
		Metrics:       ic.opts.Metrics.State(),
	}
	for _, f := range ic.failures {
		ck.Failures = append(ck.Failures, IngestFailureRecord{Source: f.Source, Err: f.Err.Error()})
	}
	return checkpoint.Save(ic.opts.CheckpointPath, ck)
}

// runBatch pulls up to max items (0 = unlimited) from next and runs them
// through a fresh worker pool. next returns ok=false at end of input and a
// non-nil error on a stream-level failure (archive framing damage).
func (ic *ingestCoordinator) runBatch(ctx context.Context, max int,
	next func() (ingestItem, bool, error)) batchResult {

	w := ic.workers()
	if max > 0 && w > max {
		w = max
	}
	work := make([]chan ingestItem, w)
	for i := range work {
		// A shallow buffer keeps workers fed without queueing unbounded
		// undecoded entries.
		work[i] = make(chan ingestItem, 4)
	}

	keepAll := ic.quar != nil
	res := batchResult{aggs: make([]*analysis.Aggregator, w)}
	parsedW := make([]int, w)
	failedW := make([]int, w)
	failsW := make([][]indexedFailure, w)
	// Per-worker metric shards: plain memory, no atomics, no sharing —
	// merged into res after the pool drains (DESIGN.md §10).
	type workerMetrics struct {
		errClasses [numErrClasses]int64
		rawBytes   int64
		rawHist    [obsv.NumBuckets]uint64
		colsPruned int64
	}
	var metricsW []workerMetrics
	if ic.opts.Metrics != nil {
		metricsW = make([]workerMetrics, w)
	}
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		res.aggs[wi] = analysis.NewAggregator(ic.sys)
		if ic.opts.LargeJobProcs > 0 {
			res.aggs[wi].LargeJobProcs = ic.opts.LargeJobProcs
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var br bytes.Reader
			for item := range work[wi] {
				if ctx.Err() != nil {
					continue // cancelled: drain without processing
				}
				if metricsW != nil && item.raw != nil {
					n := int64(len(item.raw))
					metricsW[wi].rawBytes += n
					metricsW[wi].rawHist[obsv.BucketOf(n)]++
				}
				logs, pruned, err := consumeItem(&br, res.aggs[wi], ic.lim, item)
				if err != nil {
					failedW[wi]++
					if metricsW != nil {
						class := numErrClasses - 1
						if k, ok := logfmt.KindOf(err); ok {
							class = int(k)
						}
						metricsW[wi].errClasses[class]++
					}
					if keepAll || len(failsW[wi]) < MaxRecordedFailures {
						failsW[wi] = append(failsW[wi], indexedFailure{
							index: item.index,
							f:     IngestFailure{Source: item.source, Err: err},
							item:  item,
						})
					}
					continue
				}
				parsedW[wi] += logs
				if metricsW != nil {
					metricsW[wi].colsPruned += int64(pruned)
				}
			}
		}(wi)
	}

dispatch:
	for max <= 0 || res.count < max {
		if ctx.Err() != nil {
			res.cancelled = true
			break
		}
		item, ok, err := next()
		if err != nil {
			res.streamErr = err
			break
		}
		if !ok {
			break
		}
		select {
		case work[res.count%w] <- item:
			res.count++
		case <-ctx.Done():
			res.cancelled = true
			break dispatch
		}
	}
	for _, ch := range work {
		close(ch)
	}
	wg.Wait()
	if ctx.Err() != nil {
		res.cancelled = true
	}

	for wi := 0; wi < w; wi++ {
		res.parsed += parsedW[wi]
		res.failed += failedW[wi]
		res.failures = append(res.failures, failsW[wi]...)
		if metricsW != nil {
			for k, n := range metricsW[wi].errClasses {
				res.errClasses[k] += n
			}
			res.rawBytes += metricsW[wi].rawBytes
			res.rawHistSum += metricsW[wi].rawBytes
			for i, n := range metricsW[wi].rawHist {
				res.rawHist[i] += n
			}
			res.colsPruned += metricsW[wi].colsPruned
		}
	}
	sort.Slice(res.failures, func(i, j int) bool { return res.failures[i].index < res.failures[j].index })
	return res
}

// fold merges a completed (non-cancelled) batch into the running state:
// aggregates, counts, recorded failures, quarantine actions, and metrics.
// The cancelled path deliberately skips the metric fold (see cancel): the
// checkpoint keeps pre-batch metrics, so resume reproduces them exactly.
func (ic *ingestCoordinator) fold(res *batchResult) error {
	if m := ic.opts.Metrics; m != nil {
		m.Counter("ingest.logs_parsed").Add(int64(res.parsed))
		m.Counter("ingest.logs_failed").Add(int64(res.failed))
		for k, n := range res.errClasses {
			if n > 0 {
				m.Counter("ingest.decode_errors." + errClassName(k)).Add(n)
			}
		}
		if res.rawBytes > 0 {
			m.Counter("ingest.bytes_raw").Add(res.rawBytes)
			h := m.Histogram("ingest.entry_bytes")
			for i, n := range res.rawHist {
				if n > 0 {
					h.AddBucket(i, n)
				}
			}
			h.AddSum(res.rawHistSum)
		}
		ic.span.AddOps(int64(res.count))
		ic.span.AddBytes(res.rawBytes)
		logfmt.PublishMetrics(m) // refresh the (volatile) codec-pool gauges
		if ic.mode == "columnar" {
			m.Counter("colfmt.columns_pruned").Add(res.colsPruned)
			// Registered even when zero so /metrics always carries the
			// pruning counters for a columnar dataset.
			m.Counter("colfmt.segments_pruned").Add(0)
			colfmt.PublishMetrics(m)
		}
	}
	for _, a := range res.aggs {
		ic.total.Merge(a)
	}
	ic.parsed += res.parsed
	ic.failed += res.failed
	for _, fail := range res.failures {
		if len(ic.failures) < MaxRecordedFailures {
			ic.failures = append(ic.failures, fail.f)
		}
		if ic.quar != nil {
			if err := ic.quar.add(fail); err != nil {
				return err
			}
			ic.quarantined++
		}
	}
	ic.entriesDone += res.count
	return nil
}

// result renders the final (or partial) report and result.
func (ic *ingestCoordinator) result() (*analysis.Report, IngestResult) {
	return ic.total.Report(), IngestResult{
		Parsed: ic.parsed, Failed: ic.failed,
		Quarantined: ic.quarantined,
		Failures:    ic.failures,
	}
}

// cancel handles a batch interrupted by context cancellation: the
// checkpoint keeps the pre-batch state (the partial batch re-processes on
// resume — nothing from it is quarantined or counted as done), while the
// returned report folds the partial batch in so the shutdown still flushes
// everything that was actually analyzed.
func (ic *ingestCoordinator) cancel(ctx context.Context, res *batchResult) (*analysis.Report, IngestResult, error) {
	if err := ic.writeCheckpoint(); err != nil {
		return nil, IngestResult{}, errors.Join(ctx.Err(), err)
	}
	for _, a := range res.aggs {
		ic.total.Merge(a)
	}
	ic.parsed += res.parsed
	ic.failed += res.failed
	for _, fail := range res.failures {
		if len(ic.failures) < MaxRecordedFailures {
			ic.failures = append(ic.failures, fail.f)
		}
	}
	rep, ir := ic.result()
	return rep, ir, ctx.Err()
}

// finish completes a pass: final fold already done, remove the checkpoint
// (nothing left to resume) and close the quarantine.
func (ic *ingestCoordinator) finish() {
	if ic.opts.CheckpointPath != "" {
		removeCheckpoint(ic.opts.CheckpointPath)
	}
	if ic.quar != nil {
		ic.quar.close()
	}
}

// IngestDir parses every *.darshan log under dir in parallel and returns
// the aggregate report. Unparseable logs are counted, reported in the
// result, and (with QuarantineDir) moved aside — not fatal. A directory
// with no matching logs yields a zero result and no error; callers decide
// whether that is fatal. Cancellation returns the partial report alongside
// ctx's error; with CheckpointPath set the pass is resumable.
func IngestDir(ctx context.Context, sys *iosim.System, dir string, opts IngestOptions) (*analysis.Report, IngestResult, error) {
	if sys == nil {
		return nil, IngestResult{}, fmt.Errorf("core: nil system")
	}
	ic, err := newIngestCoordinator(sys, opts, "dir", dir)
	if err != nil {
		return nil, IngestResult{}, err
	}
	ingestTimer := ic.span.Begin()
	defer ingestTimer.End()
	ic.span.SetWorkers(ic.workers())
	if ic.paths == nil { // fresh pass (resume freezes the list in the checkpoint)
		paths, err := filepath.Glob(filepath.Join(dir, "*.darshan"))
		if err != nil {
			return nil, IngestResult{}, fmt.Errorf("core: listing %s: %w", dir, err)
		}
		sort.Strings(paths) // Glob sorts, but the determinism contract should not rest on that
		ic.paths = paths
	}

	for ic.entriesDone < len(ic.paths) {
		pos := ic.entriesDone
		max := ic.batchSize()
		if rem := len(ic.paths) - pos; max <= 0 || max > rem {
			max = rem
		}
		res := ic.runBatch(ctx, max, func() (ingestItem, bool, error) {
			if pos >= len(ic.paths) {
				return ingestItem{}, false, nil
			}
			p := ic.paths[pos]
			item := ingestItem{index: pos, path: p, source: p}
			pos++
			return item, true, nil
		})
		if res.cancelled {
			return ic.cancel(ctx, &res)
		}
		if err := ic.fold(&res); err != nil {
			return nil, IngestResult{}, err
		}
		if ic.entriesDone < len(ic.paths) {
			if err := ic.writeCheckpoint(); err != nil {
				return nil, IngestResult{}, err
			}
		}
	}
	ic.finish()
	rep, ir := ic.result()
	return rep, ir, nil
}

// IngestArchive streams the campaign archive at path through the worker
// pool and returns the aggregate report. Entries that fail to parse are
// counted, reported in the result, and (with QuarantineDir) extracted
// aside; ingestion continues with the next entry (archive framing is
// independent of entry contents). A framing-level error — truncation, a
// corrupt entry length — ends the stream: everything ingested up to that
// point is still reported, alongside the non-nil error. Cancellation
// returns the partial report alongside ctx's error; with CheckpointPath
// set the pass is resumable.
func IngestArchive(ctx context.Context, sys *iosim.System, path string, opts IngestOptions) (*analysis.Report, IngestResult, error) {
	if sys == nil {
		return nil, IngestResult{}, fmt.Errorf("core: nil system")
	}
	ic, err := newIngestCoordinator(sys, opts, "archive", path)
	if err != nil {
		return nil, IngestResult{}, err
	}
	ingestTimer := ic.span.Begin()
	defer ingestTimer.End()
	ic.span.SetWorkers(ic.workers())
	f, err := os.Open(path)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	ar, err := logfmt.NewArchiveReaderWithLimits(f, ic.lim)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: %s: %w", path, err)
	}
	// Resume: skip the completed prefix with the cheap framing walk — no
	// inflation, no decoding.
	for skip := 0; skip < ic.entriesDone; skip++ {
		if _, err := ar.NextRaw(); err != nil {
			return nil, IngestResult{}, fmt.Errorf("core: %s: skipping to entry %d: %w", path, ic.entriesDone, err)
		}
	}

	idx := ic.entriesDone
	eof := false
	nextEntry := func() (ingestItem, bool, error) {
		raw, err := ar.NextRaw()
		if errors.Is(err, io.EOF) {
			eof = true
			return ingestItem{}, false, nil
		}
		if err != nil {
			return ingestItem{}, false, fmt.Errorf("core: %s entry %d: %w", path, idx, err)
		}
		// NextRaw's slice is scratch; hand the worker its own copy.
		item := ingestItem{
			index: idx, raw: append([]byte(nil), raw...),
			source: fmt.Sprintf("%s entry %d", path, idx),
		}
		idx++
		return item, true, nil
	}

	for !eof {
		res := ic.runBatch(ctx, ic.batchSize(), nextEntry)
		if res.cancelled {
			return ic.cancel(ctx, &res)
		}
		if err := ic.fold(&res); err != nil {
			return nil, IngestResult{}, err
		}
		if res.streamErr != nil {
			// Framing damage: the processed prefix is complete and
			// checkpointable, but nothing beyond it is reachable.
			if err := ic.writeCheckpoint(); err != nil {
				return nil, IngestResult{}, errors.Join(res.streamErr, err)
			}
			if ic.quar != nil {
				ic.quar.close()
			}
			rep, ir := ic.result()
			return rep, ir, res.streamErr
		}
		if !eof {
			if err := ic.writeCheckpoint(); err != nil {
				return nil, IngestResult{}, err
			}
		}
	}
	ic.finish()
	rep, ir := ic.result()
	return rep, ir, nil
}
