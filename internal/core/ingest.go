// Parallel log ingestion: the darshan-util half of the pipeline at campaign
// scale. IngestDir and IngestArchive fan logs out to a fixed worker pool in
// which each worker owns a private analysis.Aggregator; the partials merge
// via Aggregator.Merge after the pool drains — the same deterministic model
// Run uses for synthesis (DESIGN.md §7).
//
// Determinism: log i is assigned to worker i mod workers (static sharding,
// one channel per worker), and partial aggregates merge in worker-index
// order. The result for a given worker count is therefore independent of
// goroutine scheduling, and the rendered report is identical across worker
// counts (all discrete statistics are exact integer sums; see
// TestIngestDeterministicAcrossWorkerCounts).
//
// Memory: archives are streamed entry by entry — the dispatcher walks the
// length-prefixed framing sequentially (cheap) and hands raw entries to the
// workers, which pay the expensive inflate+decode in parallel. Per-worker
// channels are shallow, so at any moment the process holds O(workers)
// undecoded entries plus one decoded log per worker, never the whole
// archive.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
)

// IngestOptions configures a parallel ingestion pass.
type IngestOptions struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// LargeJobProcs overrides the large-job threshold (0 keeps the
	// aggregator default of 1024).
	LargeJobProcs int
}

// IngestFailure records one log that could not be parsed.
type IngestFailure struct {
	// Source identifies the log: a file path (directory mode) or
	// "entry N" (archive mode).
	Source string
	Err    error
}

// MaxRecordedFailures bounds the per-pass failure detail kept in an
// IngestResult; Failed always counts every failure.
const MaxRecordedFailures = 20

// IngestResult summarizes what an ingestion pass consumed.
type IngestResult struct {
	Parsed int
	Failed int
	// Failures holds the first MaxRecordedFailures failures in input order.
	Failures []IngestFailure
}

// ingestItem is one unit of work: either a path to open (directory mode) or
// a raw undecoded archive entry (archive mode).
type ingestItem struct {
	index  int
	path   string
	raw    []byte
	source string
}

// indexedFailure keeps input order across workers for deterministic
// reporting.
type indexedFailure struct {
	index int
	f     IngestFailure
}

// ingestPool runs the worker pool over a stream of items produced by
// dispatch. dispatch must send item i to work[i%len(work)] and close every
// channel when done (or on its own error).
func ingestPool(sys *iosim.System, opts IngestOptions,
	dispatch func(work []chan ingestItem) error) (*analysis.Report, IngestResult, error) {

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	work := make([]chan ingestItem, workers)
	for w := range work {
		// A shallow buffer keeps workers fed without queueing unbounded
		// undecoded entries.
		work[w] = make(chan ingestItem, 4)
	}

	aggs := make([]*analysis.Aggregator, workers)
	parsed := make([]int, workers)
	failures := make([][]indexedFailure, workers)
	failed := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		aggs[w] = analysis.NewAggregator(sys)
		if opts.LargeJobProcs > 0 {
			aggs[w].LargeJobProcs = opts.LargeJobProcs
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var br bytes.Reader
			for item := range work[w] {
				if err := consumeItem(&br, aggs[w], item); err != nil {
					failed[w]++
					if len(failures[w]) < MaxRecordedFailures {
						failures[w] = append(failures[w], indexedFailure{
							index: item.index,
							f:     IngestFailure{Source: item.source, Err: err},
						})
					}
					continue
				}
				parsed[w]++
			}
		}(w)
	}

	dispatchErr := dispatch(work)
	wg.Wait()

	var res IngestResult
	total := aggs[0]
	for w, a := range aggs {
		if w > 0 {
			total.Merge(a)
		}
		res.Parsed += parsed[w]
		res.Failed += failed[w]
	}
	var all []indexedFailure
	for _, fs := range failures {
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].index < all[j].index })
	if len(all) > MaxRecordedFailures {
		all = all[:MaxRecordedFailures]
	}
	for _, f := range all {
		res.Failures = append(res.Failures, f.f)
	}
	return total.Report(), res, dispatchErr
}

// consumeItem parses one item and folds it into agg. Unlike synthesis,
// ingestion consumes external files, so invariant panics from aggregation —
// iosim.System.LayerFor on a path outside the system's mounts, as happens
// when a log is analyzed against the wrong -system — are demoted to
// per-log errors rather than crashing the pass. A log that fails partway
// through AddLog may leave a partial contribution in agg; callers already
// treat a report with failures as best-effort, and the common wrong-system
// case fails every log, which IngestDir/IngestArchive callers reject
// outright (Parsed == 0).
func consumeItem(br *bytes.Reader, agg *analysis.Aggregator, item ingestItem) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: analyzing log: %v", r)
		}
	}()
	var log *darshan.Log
	if item.path != "" {
		log, err = logfmt.ReadFile(item.path)
	} else {
		br.Reset(item.raw)
		log, err = logfmt.Read(br)
	}
	if err != nil {
		return err
	}
	agg.AddLog(log)
	return nil
}

// IngestDir parses every *.darshan log under dir in parallel and returns
// the aggregate report. Unparseable logs are counted and reported in the
// result, not fatal. A directory with no matching logs yields a zero
// result and no error; callers decide whether that is fatal.
func IngestDir(sys *iosim.System, dir string, opts IngestOptions) (*analysis.Report, IngestResult, error) {
	if sys == nil {
		return nil, IngestResult{}, fmt.Errorf("core: nil system")
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.darshan"))
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: listing %s: %w", dir, err)
	}
	sort.Strings(paths) // Glob sorts, but the determinism contract should not rest on that
	return ingestPool(sys, opts, func(work []chan ingestItem) error {
		for i, p := range paths {
			work[i%len(work)] <- ingestItem{index: i, path: p, source: p}
		}
		for _, ch := range work {
			close(ch)
		}
		return nil
	})
}

// IngestArchive streams the campaign archive at path through the worker
// pool and returns the aggregate report. Entries that fail to parse are
// counted and reported in the result, and ingestion continues with the next
// entry (archive framing is independent of entry contents). A framing-level
// error — truncation, a corrupt entry length — ends the stream: everything
// ingested up to that point is still reported, alongside the non-nil error.
func IngestArchive(sys *iosim.System, path string, opts IngestOptions) (*analysis.Report, IngestResult, error) {
	if sys == nil {
		return nil, IngestResult{}, fmt.Errorf("core: nil system")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	ar, err := logfmt.NewArchiveReader(f)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: %s: %w", path, err)
	}
	return ingestPool(sys, opts, func(work []chan ingestItem) error {
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
		for i := 0; ; i++ {
			raw, err := ar.NextRaw()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("core: %s entry %d: %w", path, i, err)
			}
			// NextRaw's slice is scratch; hand the worker its own copy.
			entry := make([]byte, len(raw))
			copy(entry, raw)
			work[i%len(work)] <- ingestItem{
				index: i, raw: entry, source: fmt.Sprintf("%s entry %d", path, i),
			}
		}
	})
}
