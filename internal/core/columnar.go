// Columnar campaign storage: converting row-oriented logfmt archives into
// colfmt files and folding/querying them at batch granularity.
//
// ConvertArchive/ConvertDir stream a campaign through a colfmt.Writer —
// one log in memory at a time — and commit the output atomically (temp
// file + rename). IngestColumnar is the vectorized sibling of
// IngestArchive: the unit of work handed to the worker pool is a raw
// segment (a few hundred pre-folded logs) instead of one zlib'd log, and
// each worker folds decoded column batches straight into its private
// aggregator via analysis.FoldBatch. Determinism carries over unchanged —
// segment k goes to worker k mod workers and partials merge in worker
// order — so the rendered report is byte-identical to the logfmt path at
// any worker count, and the "columnar" checkpoint mode gives the same
// kill/resume guarantees as the row path.
//
// QueryColumnarTotals is the narrow-query fast path: it decodes only the
// per-file byte columns (flags, path, six counters) and, when a volume
// predicate is set, skips whole segments whose stats block proves no file
// can match — the Table 4 >1 TiB tail scan without touching histogram or
// time columns.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/obsv"
	"iolayers/internal/units"
)

// ConvertOptions configures a logfmt → colfmt conversion.
type ConvertOptions struct {
	// SegmentLogs is the number of logs per columnar segment
	// (0 = colfmt.DefaultSegmentLogs).
	SegmentLogs int
	// Limits bounds what the log decoder will allocate; zero fields take
	// logfmt.DefaultLimits.
	Limits logfmt.DecodeLimits
	// Metrics receives the "convert" stage span plus convert.* counters.
	// Nil disables metrics at zero cost.
	Metrics *obsv.Registry
}

// ConvertResult summarizes a conversion.
type ConvertResult struct {
	Logs     int
	Segments int
	// BytesIn is the raw input consumed; BytesOut the columnar file size
	// produced.
	BytesIn  int64
	BytesOut int64
}

// convertInto runs feed against a fresh colfmt.Writer on a temp file and
// commits dst atomically on success. Conversion is strict: any undecodable
// log aborts it — a columnar file must be a faithful image of its source,
// so damaged campaigns should be ingested with a QuarantineDir first and
// the cleaned archive converted. On error (including cancellation) dst is
// untouched.
func convertInto(ctx context.Context, dst string, opts ConvertOptions,
	feed func(w *colfmt.Writer) (int64, error)) (ConvertResult, error) {

	span := opts.Metrics.Span("convert")
	timer := span.Begin()
	defer timer.End()

	tmp, err := os.CreateTemp(filepath.Dir(dst), ".convert-*")
	if err != nil {
		return ConvertResult{}, fmt.Errorf("core: creating temp output: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w, err := colfmt.NewWriter(tmp, opts.SegmentLogs)
	if err != nil {
		return ConvertResult{}, err
	}
	bytesIn, err := feed(w)
	if err != nil {
		return ConvertResult{}, err
	}
	if err := w.Close(); err != nil {
		return ConvertResult{}, err
	}
	res := ConvertResult{Logs: w.Count(), Segments: w.Segments(), BytesIn: bytesIn}
	if fi, err := tmp.Stat(); err == nil {
		res.BytesOut = fi.Size()
	}
	if err := tmp.Sync(); err != nil {
		return ConvertResult{}, fmt.Errorf("core: syncing temp output: %w", err)
	}
	// CreateTemp opens 0600; the committed campaign should be as readable
	// as any other generated artifact.
	if err := tmp.Chmod(0o644); err != nil {
		return ConvertResult{}, fmt.Errorf("core: chmod temp output: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return ConvertResult{}, fmt.Errorf("core: closing %s: %w", dst, err)
	}
	tmp = nil
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return ConvertResult{}, fmt.Errorf("core: committing %s: %w", dst, err)
	}
	if m := opts.Metrics; m != nil {
		m.Counter("convert.logs").Add(int64(res.Logs))
		m.Counter("convert.segments").Add(int64(res.Segments))
		span.AddOps(int64(res.Logs))
		span.AddBytes(res.BytesIn)
		logfmt.PublishMetrics(m)
		colfmt.PublishMetrics(m)
	}
	return res, nil
}

// ConvertArchive converts the logfmt campaign archive at src into a
// columnar file at dst, streaming entry by entry.
func ConvertArchive(ctx context.Context, src, dst string, opts ConvertOptions) (ConvertResult, error) {
	f, err := os.Open(src)
	if err != nil {
		return ConvertResult{}, fmt.Errorf("core: opening %s: %w", src, err)
	}
	defer f.Close()
	ar, err := logfmt.NewArchiveReaderWithLimits(f, opts.Limits)
	if err != nil {
		return ConvertResult{}, fmt.Errorf("core: %s: %w", src, err)
	}
	return convertInto(ctx, dst, opts, func(w *colfmt.Writer) (int64, error) {
		var br bytes.Reader
		var bytesIn int64
		for idx := 0; ; idx++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			raw, err := ar.NextRaw()
			if errors.Is(err, io.EOF) {
				return bytesIn, nil
			}
			if err != nil {
				return 0, fmt.Errorf("core: %s entry %d: %w", src, idx, err)
			}
			br.Reset(raw)
			log, err := logfmt.ReadWithLimits(&br, opts.Limits)
			if err != nil {
				return 0, fmt.Errorf("core: %s entry %d: %w", src, idx, err)
			}
			if err := w.Append(log); err != nil {
				return 0, err
			}
			bytesIn += int64(len(raw))
		}
	})
}

// ConvertDir converts every *.darshan log under dir (in sorted order, the
// same order IngestDir consumes them) into a columnar file at dst.
func ConvertDir(ctx context.Context, dir, dst string, opts ConvertOptions) (ConvertResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.darshan"))
	if err != nil {
		return ConvertResult{}, fmt.Errorf("core: listing %s: %w", dir, err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return ConvertResult{}, fmt.Errorf("core: no .darshan logs in %s", dir)
	}
	return convertInto(ctx, dst, opts, func(w *colfmt.Writer) (int64, error) {
		var bytesIn int64
		for _, p := range paths {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			log, err := logfmt.ReadFileWithLimits(p, opts.Limits)
			if err != nil {
				return 0, fmt.Errorf("core: %s: %w", p, err)
			}
			if err := w.Append(log); err != nil {
				return 0, err
			}
			if fi, err := os.Stat(p); err == nil {
				bytesIn += fi.Size()
			}
		}
		return bytesIn, nil
	})
}

// IngestColumnar folds the columnar campaign file at path into an
// aggregate report through the standard worker pool: raw segments are
// dispatched segment k → worker k mod workers and each worker decodes and
// batch-folds privately, so the report is byte-identical to the logfmt
// path at any worker count. Parsed counts logs (not segments); a segment
// that fails to decode or fold counts as one failure. Checkpointing,
// resume, quarantine, and cancellation behave exactly as IngestArchive,
// under checkpoint mode "columnar".
func IngestColumnar(ctx context.Context, sys *iosim.System, path string, opts IngestOptions) (*analysis.Report, IngestResult, error) {
	if sys == nil {
		return nil, IngestResult{}, fmt.Errorf("core: nil system")
	}
	ic, err := newIngestCoordinator(sys, opts, "columnar", path)
	if err != nil {
		return nil, IngestResult{}, err
	}
	foldTimer := ic.span.Begin()
	defer foldTimer.End()
	ic.span.SetWorkers(ic.workers())
	f, err := os.Open(path)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	cr, err := colfmt.NewReaderWithLimits(f, ic.lim)
	if err != nil {
		return nil, IngestResult{}, fmt.Errorf("core: %s: %w", path, err)
	}
	// Resume: skip the completed prefix with the cheap framing walk — no
	// checksum is verified beyond the frame CRC, no column is decoded.
	for skip := 0; skip < ic.entriesDone; skip++ {
		if _, err := cr.NextRaw(); err != nil {
			return nil, IngestResult{}, fmt.Errorf("core: %s: skipping to segment %d: %w", path, ic.entriesDone, err)
		}
	}

	idx := ic.entriesDone
	eof := false
	nextSegment := func() (ingestItem, bool, error) {
		raw, err := cr.NextRaw()
		if errors.Is(err, io.EOF) {
			eof = true
			return ingestItem{}, false, nil
		}
		if err != nil {
			return ingestItem{}, false, fmt.Errorf("core: %s segment %d: %w", path, idx, err)
		}
		// NextRaw's slice is scratch; hand the worker its own copy.
		item := ingestItem{
			index: idx, raw: append([]byte(nil), raw...),
			source:   fmt.Sprintf("%s segment %d", path, idx),
			columnar: true,
		}
		idx++
		return item, true, nil
	}

	for !eof {
		res := ic.runBatch(ctx, ic.batchSize(), nextSegment)
		if res.cancelled {
			return ic.cancel(ctx, &res)
		}
		if err := ic.fold(&res); err != nil {
			return nil, IngestResult{}, err
		}
		if res.streamErr != nil {
			// Framing damage: the processed prefix is complete and
			// checkpointable, but nothing beyond it is reachable.
			if err := ic.writeCheckpoint(); err != nil {
				return nil, IngestResult{}, errors.Join(res.streamErr, err)
			}
			if ic.quar != nil {
				ic.quar.close()
			}
			rep, ir := ic.result()
			return rep, ir, res.streamErr
		}
		if !eof {
			if err := ic.writeCheckpoint(); err != nil {
				return nil, IngestResult{}, err
			}
		}
	}
	ic.finish()
	rep, ir := ic.result()
	return rep, ir, nil
}

// ColumnarQuery selects what QueryColumnarTotals scans.
type ColumnarQuery struct {
	// MinFileBytes, when positive, restricts the scan to files whose
	// larger per-direction POSIX-preferred volume is at least this many
	// bytes — and lets the stats block skip whole segments that cannot
	// contain one (the >1 TiB tail query of Table 4 sets units.TiB + 1).
	MinFileBytes int64
	// Limits bounds decoder allocations; zero fields take defaults.
	Limits logfmt.DecodeLimits
	// Metrics receives the "prune" stage span and the colfmt.segments_*
	// counters. Nil disables metrics.
	Metrics *obsv.Registry
}

// ColumnarTotals is a narrow per-file volume scan over a columnar file.
type ColumnarTotals struct {
	// Files counts accounted file rows that met the query's threshold;
	// ReadBytes/WriteBytes sum their POSIX-preferred per-direction
	// volumes.
	Files      int64
	ReadBytes  int64
	WriteBytes int64
	// HugeRead/HugeWrite count matching files whose per-direction volume
	// exceeds 1 TiB (Table 4's tail).
	HugeRead  int64
	HugeWrite int64
	// SegmentsScanned and SegmentsPruned split the file's segments into
	// decoded versus skipped-by-stats.
	SegmentsScanned int64
	SegmentsPruned  int64
}

// QueryColumnarTotals scans the columnar file at path and returns
// POSIX-preferred per-file volume totals, decoding only the GroupFiles
// columns. With MinFileBytes set, segments whose stats prove every file is
// below the threshold are skipped without decoding a single column.
func QueryColumnarTotals(ctx context.Context, path string, q ColumnarQuery) (ColumnarTotals, error) {
	span := q.Metrics.Span("prune")
	timer := span.Begin()
	defer timer.End()

	f, err := os.Open(path)
	if err != nil {
		return ColumnarTotals{}, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	cr, err := colfmt.NewReaderWithLimits(f, q.Limits)
	if err != nil {
		return ColumnarTotals{}, fmt.Errorf("core: %s: %w", path, err)
	}

	var tot ColumnarTotals
	for seg := 0; ; seg++ {
		if err := ctx.Err(); err != nil {
			return ColumnarTotals{}, err
		}
		raw, err := cr.NextRaw()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return ColumnarTotals{}, fmt.Errorf("core: %s segment %d: %w", path, seg, err)
		}
		if q.MinFileBytes > 0 {
			info, err := colfmt.PeekSegment(raw, q.Limits)
			if err != nil {
				return ColumnarTotals{}, fmt.Errorf("core: %s segment %d: %w", path, seg, err)
			}
			if info.MaxFileBytes() < q.MinFileBytes {
				tot.SegmentsPruned++
				continue
			}
		}
		b, err := colfmt.DecodeSegment(raw, colfmt.GroupFiles, q.Limits)
		if err != nil {
			return ColumnarTotals{}, fmt.Errorf("core: %s segment %d: %w", path, seg, err)
		}
		tot.SegmentsScanned++
		for r := 0; r < b.FileRows; r++ {
			flags := colfmt.At(b.FileFlags, r)
			var readB, writeB int64
			switch {
			case flags&colfmt.FlagPosix != 0:
				readB, writeB = colfmt.At(b.PosixReadB, r), colfmt.At(b.PosixWriteB, r)
			case flags&colfmt.FlagStdio != 0:
				readB, writeB = colfmt.At(b.StdioReadB, r), colfmt.At(b.StdioWriteB, r)
			default:
				readB, writeB = colfmt.At(b.MpiioReadB, r), colfmt.At(b.MpiioWriteB, r)
			}
			if q.MinFileBytes > 0 && readB < q.MinFileBytes && writeB < q.MinFileBytes {
				continue
			}
			tot.Files++
			tot.ReadBytes += readB
			tot.WriteBytes += writeB
			if units.ByteSize(readB) > units.TiB {
				tot.HugeRead++
			}
			if units.ByteSize(writeB) > units.TiB {
				tot.HugeWrite++
			}
		}
	}
	if m := q.Metrics; m != nil {
		m.Counter("colfmt.segments_scanned").Add(tot.SegmentsScanned)
		m.Counter("colfmt.segments_pruned").Add(tot.SegmentsPruned)
		span.AddOps(tot.SegmentsScanned + tot.SegmentsPruned)
	}
	return tot, nil
}
