package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
	"iolayers/internal/workload"
)

// resumeCfg is a campaign small enough to run many times in a test but
// large enough to span several checkpoint batches.
var resumeCfg = workload.Config{Seed: 8, JobScale: 0.0002, FileScale: 0.02}

// runToCompletion resumes a campaign from its on-disk checkpoint and runs
// it to the end, returning the rendered report.
func runToCompletion(t *testing.T, ckPath string, workers int) string {
	t.Helper()
	ck, err := LoadCampaignCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	c, err := ResumeCampaign(ck)
	if err != nil {
		t.Fatalf("rebuilding campaign: %v", err)
	}
	c.Workers = workers
	rep, err := c.RunCheckpointed(context.Background(), RunOptions{
		CheckpointPath: ckPath, CheckpointEvery: 2, Resume: ck,
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return report.Everything(rep)
}

// TestCampaignKillAndResume is the crash-safety property test: a campaign
// cancelled at an arbitrary point, then resumed from its checkpoint —
// possibly with a different worker count — must render a report
// byte-identical to the uninterrupted run.
func TestCampaignKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	baselineCamp, err := NewCampaign("Summit", resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	var totalLogs atomic.Int64
	baseRep, err := baselineCamp.Run(func(jobIdx, logIdx int, log *darshan.Log) error {
		totalLogs.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := report.Everything(baseRep)
	n := totalLogs.Load()
	if n < 6 {
		t.Fatalf("corpus too small to interrupt meaningfully: %d logs", n)
	}

	for _, tc := range []struct {
		name        string
		cancelAfter int64
		workers     int // interrupted run
		resumeWith  int // resumed run
	}{
		{"early-1worker", 1, 1, 4},
		{"mid-4workers", n / 2, 4, 1},
		{"late-2workers", n - 2, 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ckPath := filepath.Join(t.TempDir(), "campaign.ckpt")
			c, err := NewCampaign("Summit", resumeCfg)
			if err != nil {
				t.Fatal(err)
			}
			c.Workers = tc.workers
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Int64
			partial, err := c.RunCheckpointed(ctx, RunOptions{
				Sink: func(jobIdx, logIdx int, log *darshan.Log) error {
					if seen.Add(1) == tc.cancelAfter {
						cancel()
					}
					return nil
				},
				CheckpointPath:  ckPath,
				CheckpointEvery: 2,
			})
			if err == nil {
				// The cancel landed after the final batch: the run completed,
				// removed its checkpoint, and must already match.
				if got := report.Everything(partial); got != baseline {
					t.Error("completed-despite-cancel report differs from baseline")
				}
				return
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: %v", err)
			}
			if partial == nil {
				t.Fatal("cancelled run returned no partial report")
			}
			got := runToCompletion(t, ckPath, tc.resumeWith)
			if got != baseline {
				t.Errorf("resumed report differs from uninterrupted baseline")
			}
			if _, err := os.Stat(ckPath); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("checkpoint not removed after completion: %v", err)
			}
		})
	}
}

// archiveSink is the test double for iostudy's -save path: an archive
// writer behind a mutex, with the Flush+fsync SyncSink the checkpoint
// machinery calls at every batch boundary.
type archiveSink struct {
	mu sync.Mutex
	f  *os.File
	aw *logfmt.ArchiveWriter
}

func (s *archiveSink) sink(jobIdx, logIdx int, log *darshan.Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aw.Append(log)
}

func (s *archiveSink) sync() (int64, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.aw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := s.f.Sync(); err != nil {
		return 0, 0, err
	}
	return s.aw.Offset(), s.aw.Count(), nil
}

func (s *archiveSink) close(t *testing.T) {
	t.Helper()
	if err := s.aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignResumeWithArchiveSink interrupts a campaign that is saving
// its logs to an archive, resumes with the archive truncated to the
// checkpoint's durable offset, and checks the final archive is complete:
// same entry count as an uninterrupted save, and ingesting it reproduces
// the baseline analysis byte for byte.
func TestCampaignResumeWithArchiveSink(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	sys := systems.NewSummit()

	// Uninterrupted save: the reference archive.
	refPath := filepath.Join(t.TempDir(), "ref.dgar")
	ref := &archiveSink{}
	var err error
	if ref.f, err = os.Create(refPath); err != nil {
		t.Fatal(err)
	}
	if ref.aw, err = logfmt.NewArchiveWriter(ref.f); err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign("Summit", resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ref.sink); err != nil {
		t.Fatal(err)
	}
	wantEntries := ref.aw.Count()
	ref.close(t)
	baseRep, baseRes, err := IngestArchive(context.Background(), sys, refPath, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Parsed != wantEntries {
		t.Fatalf("reference archive: parsed %d of %d", baseRes.Parsed, wantEntries)
	}
	baseline := report.Everything(baseRep)

	// Interrupted save.
	dir := t.TempDir()
	savePath := filepath.Join(dir, "save.dgar")
	ckPath := filepath.Join(dir, "campaign.ckpt")
	s := &archiveSink{}
	if s.f, err = os.Create(savePath); err != nil {
		t.Fatal(err)
	}
	if s.aw, err = logfmt.NewArchiveWriter(s.f); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCampaign("Summit", resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	c2.Workers = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	cancelAt := int64(wantEntries / 2)
	_, err = c2.RunCheckpointed(ctx, RunOptions{
		Sink: func(jobIdx, logIdx int, log *darshan.Log) error {
			if seen.Add(1) == cancelAt {
				cancel()
			}
			return s.sink(jobIdx, logIdx, log)
		},
		SyncSink:        s.sync,
		CheckpointPath:  ckPath,
		CheckpointEvery: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	// Simulate the crash: the writer is abandoned (tail past the durable
	// offset may be torn), only the checkpoint knows the safe length.
	s.f.Close()

	ck, err := LoadCampaignCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	aw2, f2, err := logfmt.OpenArchiveAppend(savePath, ck.ArchiveBytes, ck.ArchiveEntries)
	if err != nil {
		t.Fatal(err)
	}
	s2 := &archiveSink{f: f2, aw: aw2}
	c3, err := ResumeCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	c3.Workers = 2
	if _, err := c3.RunCheckpointed(context.Background(), RunOptions{
		Sink: s2.sink, SyncSink: s2.sync,
		CheckpointPath: ckPath, CheckpointEvery: 2, Resume: ck,
	}); err != nil {
		t.Fatal(err)
	}
	gotEntries := s2.aw.Count()
	s2.close(t)
	if gotEntries != wantEntries {
		t.Fatalf("resumed archive has %d entries, want %d", gotEntries, wantEntries)
	}
	rep, res, err := IngestArchive(context.Background(), sys, savePath, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != wantEntries || res.Failed != 0 {
		t.Fatalf("resumed archive: parsed %d failed %d, want %d/0", res.Parsed, res.Failed, wantEntries)
	}
	if report.Everything(rep) != baseline {
		t.Error("analysis of resumed archive differs from uninterrupted archive")
	}
}

// cancelOnCheckpoint cancels ctx once the checkpoint file first appears, so
// the cancellation lands at an arbitrary point mid-pass. The exact point is
// scheduling-dependent by design — resume must be exact wherever it lands.
func cancelOnCheckpoint(ckPath string, cancel context.CancelFunc, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(200 * time.Microsecond):
		}
		if _, err := os.Stat(ckPath); err == nil {
			cancel()
			return
		}
	}
}

// TestIngestKillAndResume is the ingestion half of the crash-safety
// property: an ingestion pass (directory and archive mode) cancelled
// mid-run and resumed from its checkpoint renders the identical report,
// across differing worker counts.
func TestIngestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, archive, count := buildCorpus(t)
	sys := systems.NewSummit()

	baseRep, baseRes, err := IngestDir(context.Background(), sys, dir, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Parsed != count {
		t.Fatalf("baseline parsed %d of %d", baseRes.Parsed, count)
	}
	baseline := report.Everything(baseRep)

	for _, mode := range []string{"dir", "archive"} {
		t.Run(mode, func(t *testing.T) {
			ckPath := filepath.Join(t.TempDir(), "ingest.ckpt")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stop := make(chan struct{})
			go cancelOnCheckpoint(ckPath, cancel, stop)
			ingest := func(ctx context.Context, resume *IngestCheckpoint, workers int) (*analysis.Report, IngestResult, error) {
				opts := IngestOptions{Workers: workers, CheckpointPath: ckPath, CheckpointEvery: 3, Resume: resume}
				if mode == "dir" {
					return IngestDir(ctx, sys, dir, opts)
				}
				return IngestArchive(ctx, sys, archive, opts)
			}
			_, _, err := ingest(ctx, nil, 4)
			close(stop)
			if err == nil {
				// Pass finished before the watcher saw a checkpoint (tiny
				// corpus): nothing to resume, determinism is covered elsewhere.
				t.Skip("pass completed before cancellation landed")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted ingest: %v", err)
			}
			ck, err := LoadIngestCheckpoint(ckPath)
			if err != nil {
				t.Fatalf("loading ingest checkpoint: %v", err)
			}
			if ck.EntriesDone == 0 && mode == "dir" && len(ck.Paths) != count {
				t.Fatalf("checkpoint froze %d paths, want %d", len(ck.Paths), count)
			}
			rep, res, err := ingest(context.Background(), ck, 1)
			if err != nil {
				t.Fatalf("resumed ingest: %v", err)
			}
			if res.Parsed != count || res.Failed != 0 {
				t.Fatalf("resumed: parsed %d failed %d, want %d/0", res.Parsed, res.Failed, count)
			}
			if report.Everything(rep) != baseline {
				t.Error("resumed ingest report differs from uninterrupted baseline")
			}
			if _, err := os.Stat(ckPath); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("ingest checkpoint not removed after completion: %v", err)
			}
		})
	}
}

// TestIngestDirQuarantine is the acceptance test for hardened ingestion: a
// truncated log and a zlib bomb dropped into the corpus must be rejected
// with typed errors, moved to the quarantine directory, and recorded in the
// manifest — while the healthy corpus analyzes exactly as before.
func TestIngestDirQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	dir, _, count := buildCorpus(t)
	sys := systems.NewSummit()
	baseRep, _, err := IngestDir(context.Background(), sys, dir, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline := report.Everything(baseRep)

	// A healthy log to mutilate.
	paths, err := filepath.Glob(filepath.Join(dir, "*.darshan"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus listing: %v (%d)", err, len(paths))
	}
	good, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Truncated: cut inside the first section's payload.
	trunc := append([]byte(nil), good[:len(good)/2]...)
	if err := os.WriteFile(filepath.Join(dir, "aaa_trunc.darshan"), trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	// Zlib bomb: the first section claims a 4 GiB uncompressed size. The
	// decoder must reject it before inflating anything.
	bomb := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bomb[10:], 0xFFFFFFFF)
	if err := os.WriteFile(filepath.Join(dir, "aab_bomb.darshan"), bomb, 0o644); err != nil {
		t.Fatal(err)
	}

	qdir := filepath.Join(t.TempDir(), "quarantine")
	rep, res, err := IngestDir(context.Background(), sys, dir, IngestOptions{
		Workers: 4, QuarantineDir: qdir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != count || res.Failed != 2 || res.Quarantined != 2 {
		t.Fatalf("parsed %d failed %d quarantined %d, want %d/2/2",
			res.Parsed, res.Failed, res.Quarantined, count)
	}
	if report.Everything(rep) != baseline {
		t.Error("report over quarantined corpus differs from clean baseline")
	}
	// The bad files left the corpus and arrived in quarantine.
	for _, name := range []string{"aaa_trunc.darshan", "aab_bomb.darshan"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s still in corpus dir: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Errorf("%s not in quarantine: %v", name, err)
		}
	}
	manifest, err := os.ReadFile(filepath.Join(qdir, "MANIFEST.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(manifest), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("manifest has %d lines, want 2:\n%s", len(lines), manifest)
	}
	if !strings.Contains(lines[0], "aaa_trunc") || !strings.Contains(lines[0], "\ttruncated\t") {
		t.Errorf("manifest line 0 = %q, want truncated aaa_trunc entry", lines[0])
	}
	if !strings.Contains(lines[1], "aab_bomb") || !strings.Contains(lines[1], "\tlimit-exceeded\t") {
		t.Errorf("manifest line 1 = %q, want limit-exceeded aab_bomb entry", lines[1])
	}
	// A second pass over the cleaned corpus is failure-free.
	_, res2, err := IngestDir(context.Background(), sys, dir, IngestOptions{Workers: 2})
	if err != nil || res2.Failed != 0 || res2.Parsed != count {
		t.Fatalf("post-quarantine pass: parsed %d failed %d err %v", res2.Parsed, res2.Failed, err)
	}
}

// TestIngestArchiveQuarantine checks archive mode extracts undecodable
// entries into the quarantine directory: a well-framed garbage entry is
// skipped, extracted byte-for-byte, and manifested; the rest of the
// archive ingests normally.
func TestIngestArchiveQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	_, archive, count := buildCorpus(t)
	sys := systems.NewSummit()
	raw, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	// Splice a well-framed garbage entry in front of the terminator.
	garbage := []byte("XXXX this is not a darshan log, framing intact")
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(garbage)))
	mutated := append([]byte(nil), raw[:len(raw)-4]...)
	mutated = append(mutated, frame[:]...)
	mutated = append(mutated, garbage...)
	mutated = append(mutated, raw[len(raw)-4:]...)
	path := filepath.Join(t.TempDir(), "mixed.dgar")
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	qdir := filepath.Join(t.TempDir(), "quarantine")
	_, res, err := IngestArchive(context.Background(), sys, path, IngestOptions{
		Workers: 3, QuarantineDir: qdir,
	})
	if err != nil {
		t.Fatalf("framing is intact, ingest should not fail terminally: %v", err)
	}
	if res.Parsed != count || res.Failed != 1 || res.Quarantined != 1 {
		t.Fatalf("parsed %d failed %d quarantined %d, want %d/1/1",
			res.Parsed, res.Failed, res.Quarantined, count)
	}
	extracted, err := os.ReadFile(filepath.Join(qdir, fmt.Sprintf("entry-%06d.darshan", count)))
	if err != nil {
		t.Fatalf("quarantined entry missing: %v", err)
	}
	if string(extracted) != string(garbage) {
		t.Error("quarantined entry does not match the original bytes")
	}
	manifest, err := os.ReadFile(filepath.Join(qdir, "MANIFEST.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "\tbad-magic\t") {
		t.Errorf("manifest = %q, want a bad-magic entry", manifest)
	}
}
