// Package core is the study engine: it orchestrates end-to-end campaigns —
// synthesize a system's production workload, run it through the Darshan
// runtime against the simulated I/O subsystem, and analyze the resulting
// logs — with deterministic parallelism.
//
// Concurrency model (DESIGN.md §7): a fixed worker pool consumes job
// indices; each worker owns a private analysis.Aggregator, and the partial
// aggregates merge after the pool drains. Per-job randomness derives from
// (seed, job index), so the report is identical for any worker count.
package core

import (
	"context"
	"fmt"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/workload"
)

// LogSink receives every generated log. Implementations must be safe for
// concurrent calls from multiple workers; jobIdx/logIdx identify the log
// uniquely. Returning an error aborts the campaign.
type LogSink func(jobIdx, logIdx int, log *darshan.Log) error

// Campaign couples a workload profile with its simulated system and a
// generation configuration.
type Campaign struct {
	Profile workload.Profile
	System  *iosim.System
	Config  workload.Config
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
}

// NewCampaign builds a campaign for one of the shipped systems ("Summit" or
// "Cori", case-insensitive first letter).
func NewCampaign(systemName string, cfg workload.Config) (*Campaign, error) {
	sys := systems.ByName(systemName)
	if sys == nil {
		return nil, fmt.Errorf("core: unknown system %q (want Summit or Cori)", systemName)
	}
	profile, ok := workload.Profiles()[sys.Name]
	if !ok {
		return nil, fmt.Errorf("core: no workload profile for %q", sys.Name)
	}
	return &Campaign{Profile: profile, System: sys, Config: cfg}, nil
}

// Run synthesizes and analyzes the whole campaign. If sink is non-nil it is
// invoked for every log (e.g. to persist it); the analysis runs regardless.
func (c *Campaign) Run(sink LogSink) (*analysis.Report, error) {
	return c.RunContext(context.Background(), sink)
}

// RunContext is Run under a context: cancellation stops the workers at the
// next job boundary and returns the partial report over completed jobs
// alongside ctx's error. For checkpointing and resume, use RunCheckpointed.
func (c *Campaign) RunContext(ctx context.Context, sink LogSink) (*analysis.Report, error) {
	return c.RunCheckpointed(ctx, RunOptions{Sink: sink})
}

// maxReportedFailedJobs caps how many failed job indices the report lists.
const maxReportedFailedJobs = 8

// buildFaultReport folds the merged fault outcome into the report section.
// Quantiles come from the sorted sample multiset, so the section is
// byte-identical regardless of how jobs were partitioned across workers.
func buildFaultReport(sched *faults.Schedule, fo *workload.FaultOutcome, failedJobs []int) *analysis.FaultReport {
	fr := &analysis.FaultReport{
		OpsFailed:     fo.OpsFailed,
		OpsRetried:    fo.OpsRetried,
		RetryAttempts: fo.RetryAttempts,
		DegradedOps:   fo.DegradedOps,
		CleanOps:      fo.CleanOps,
		DegradedNanos: fo.DegradedNanos,
		TimeLostNanos: fo.TimeLostNanos,
		JobFailures:   int64(len(failedJobs)),
		Degraded:      analysis.DurationTailOf(fo.DegradedDur),
		Clean:         analysis.DurationTailOf(fo.CleanDur),
	}
	if sched != nil {
		fr.ScheduleSeed = sched.Seed
		fr.Windows = len(sched.Windows)
		fr.TransientErrorRate = sched.TransientErrorRate
	}
	if len(failedJobs) > maxReportedFailedJobs {
		failedJobs = failedJobs[:maxReportedFailedJobs]
	}
	fr.FailedJobs = append([]int(nil), failedJobs...)
	return fr
}

// RunStudy runs the standard two-system study (Summit and Cori) at the
// given configuration and returns the reports keyed by system name.
func RunStudy(cfg workload.Config) (map[string]*analysis.Report, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext is RunStudy under a context. Cancellation aborts between
// (or within) campaigns; partial per-system reports are not returned — a
// study is only meaningful complete.
func RunStudyContext(ctx context.Context, cfg workload.Config) (map[string]*analysis.Report, error) {
	out := make(map[string]*analysis.Report, 2)
	for _, name := range []string{"Summit", "Cori"} {
		campaign, err := NewCampaign(name, cfg)
		if err != nil {
			return nil, err
		}
		report, err := campaign.RunContext(ctx, nil)
		if err != nil {
			return nil, fmt.Errorf("core: %s campaign: %w", name, err)
		}
		out[name] = report
	}
	return out, nil
}
