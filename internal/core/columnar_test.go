package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iolayers/internal/analysis"
	"iolayers/internal/darshan/colfmt"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
	"iolayers/internal/units"
)

// convertCorpus builds the shared test corpus and converts its archive to
// a columnar file with small segments (so worker distribution, pruning,
// and checkpointing all see multiple segments).
func convertCorpus(t *testing.T) (archive, columnar string, count int) {
	t.Helper()
	_, archive, count = buildCorpus(t)
	columnar = filepath.Join(t.TempDir(), "campaign.dgc")
	res, err := ConvertArchive(context.Background(), archive, columnar, ConvertOptions{SegmentLogs: 8})
	if err != nil {
		t.Fatalf("converting: %v", err)
	}
	if res.Logs != count {
		t.Fatalf("converted %d of %d logs", res.Logs, count)
	}
	if want := (count + 7) / 8; res.Segments != want {
		t.Fatalf("converted into %d segments, want %d", res.Segments, want)
	}
	return archive, columnar, count
}

// TestColumnarRoundTripByteIdentical is the tentpole property: a campaign
// converted to columnar form and batch-folded renders a report
// byte-identical to the row-oriented ingest, at every worker count.
func TestColumnarRoundTripByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	archive, columnar, count := convertCorpus(t)
	sys := systems.NewSummit()

	baseRep, baseRes, err := IngestArchive(context.Background(), sys, archive, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Parsed != count {
		t.Fatalf("baseline parsed %d of %d", baseRes.Parsed, count)
	}
	baseline := report.Everything(baseRep)

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rep, res, err := IngestColumnar(context.Background(), sys, columnar, IngestOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Parsed != count {
				t.Fatalf("columnar fold parsed %d logs of %d", res.Parsed, count)
			}
			if got := report.Everything(rep); got != baseline {
				t.Errorf("columnar report differs from logfmt report (workers=%d)", workers)
			}
		})
	}
}

// TestColumnarKillAndResume extends the crash-safety property to the
// columnar path: a fold cancelled at its first checkpoint and resumed —
// with a different worker count — renders the identical report.
func TestColumnarKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	_, columnar, count := convertCorpus(t)
	sys := systems.NewSummit()

	baseRep, _, err := IngestColumnar(context.Background(), sys, columnar, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline := report.Everything(baseRep)

	ckPath := filepath.Join(t.TempDir(), "columnar.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	go cancelOnCheckpoint(ckPath, cancel, stop)
	partial, _, err := IngestColumnar(ctx, sys, columnar, IngestOptions{
		Workers: 3, CheckpointPath: ckPath, CheckpointEvery: 2,
	})
	close(stop)
	if err == nil {
		// The cancel landed after the final batch; the completed report
		// must already match.
		if got := report.Everything(partial); got != baseline {
			t.Error("completed-despite-cancel report differs from baseline")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted fold: %v", err)
	}
	if partial == nil {
		t.Fatal("cancelled fold returned no partial report")
	}

	ck, err := LoadIngestCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	if ck.Mode != "columnar" {
		t.Fatalf("checkpoint mode %q, want columnar", ck.Mode)
	}
	rep, res, err := IngestColumnar(context.Background(), sys, columnar, IngestOptions{
		Workers: 1, CheckpointPath: ckPath, CheckpointEvery: 2, Resume: ck,
	})
	if err != nil {
		t.Fatalf("resumed fold: %v", err)
	}
	if res.Parsed != count {
		// Parsed is cumulative across the resume (the coordinator seeds it
		// from the checkpoint).
		t.Fatalf("resumed pass accounts %d logs (%d at checkpoint); corpus has %d",
			res.Parsed, ck.Parsed, count)
	}
	if got := report.Everything(rep); got != baseline {
		t.Error("resumed columnar report differs from uninterrupted baseline")
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion: %v", err)
	}
}

// TestQueryColumnarTotals cross-checks the narrow scan against the full
// aggregation pipeline: unfiltered totals must equal the report's
// per-layer sums, and a volume threshold must prune segments while
// keeping the matching rows.
func TestQueryColumnarTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	archive, columnar, _ := convertCorpus(t)
	sys := systems.NewSummit()

	rep, _, err := IngestArchive(context.Background(), sys, archive, IngestOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantFiles, wantHugeR, wantHugeW int64
	var wantReadB, wantWriteB float64
	for _, lr := range rep.Layers {
		wantFiles += lr.Stats.Files
		wantReadB += lr.Stats.Bytes[analysis.Read]
		wantWriteB += lr.Stats.Bytes[analysis.Write]
		wantHugeR += lr.Stats.HugeFiles[analysis.Read]
		wantHugeW += lr.Stats.HugeFiles[analysis.Write]
	}

	reg := obsv.New()
	tot, err := QueryColumnarTotals(context.Background(), columnar, ColumnarQuery{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if tot.Files != wantFiles {
		t.Errorf("Files = %d, report says %d", tot.Files, wantFiles)
	}
	if float64(tot.ReadBytes) != wantReadB || float64(tot.WriteBytes) != wantWriteB {
		t.Errorf("bytes = (%d, %d), report says (%.0f, %.0f)",
			tot.ReadBytes, tot.WriteBytes, wantReadB, wantWriteB)
	}
	if tot.HugeRead != wantHugeR || tot.HugeWrite != wantHugeW {
		t.Errorf("huge = (%d, %d), report says (%d, %d)",
			tot.HugeRead, tot.HugeWrite, wantHugeR, wantHugeW)
	}
	if tot.SegmentsPruned != 0 {
		t.Errorf("unfiltered scan pruned %d segments", tot.SegmentsPruned)
	}

	// The >1 TiB tail query: every returned file exceeds the threshold in
	// at least one direction, and pruning must not change the answer.
	thr := int64(units.TiB) + 1
	tail, err := QueryColumnarTotals(context.Background(), columnar, ColumnarQuery{MinFileBytes: thr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if tail.Files < tail.HugeRead || tail.Files < tail.HugeWrite {
		t.Errorf("tail query inconsistent: %+v", tail)
	}
	if tail.HugeRead != wantHugeR || tail.HugeWrite != wantHugeW {
		t.Errorf("tail huge counts = (%d, %d), report says (%d, %d)",
			tail.HugeRead, tail.HugeWrite, wantHugeR, wantHugeW)
	}
	if tail.SegmentsPruned == 0 {
		t.Log("no segments pruned by the TiB threshold (corpus may be uniformly huge)")
	}
	if tail.SegmentsScanned+tail.SegmentsPruned != tot.SegmentsScanned {
		t.Errorf("scanned %d + pruned %d != total %d",
			tail.SegmentsScanned, tail.SegmentsPruned, tot.SegmentsScanned)
	}
}

// TestIngestColumnarRejectsWrongFile verifies the sniff-and-fail paths: a
// logfmt archive handed to the columnar reader fails with a structured
// bad-magic error, and a truncated columnar file fails rather than
// silently shortening the campaign.
func TestIngestColumnarRejectsWrongFile(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign generation in -short mode")
	}
	archive, columnar, _ := convertCorpus(t)
	sys := systems.NewSummit()

	if _, _, err := IngestColumnar(context.Background(), sys, archive, IngestOptions{}); err == nil {
		t.Error("columnar ingest of a logfmt archive succeeded")
	}
	if !colfmt.SniffFile(columnar) {
		t.Error("SniffFile rejects a real columnar file")
	}
	if colfmt.SniffFile(archive) {
		t.Error("SniffFile accepts a logfmt archive")
	}

	raw, err := os.ReadFile(columnar)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.dgc")
	if err := os.WriteFile(trunc, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := IngestColumnar(context.Background(), sys, trunc, IngestOptions{}); err == nil {
		t.Error("columnar ingest of a truncated file succeeded")
	}
}
