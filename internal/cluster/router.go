package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"iolayers/internal/httpapi"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
	"iolayers/internal/serve"
)

// Router defaults.
const (
	// DefaultReplication is the replication factor: every dataset lives
	// on (and is queryable from) this many replicas.
	DefaultReplication = 2
	// DefaultAttemptTimeout bounds one query attempt against one backend;
	// a stalled replica costs this long, then the router fails over.
	DefaultAttemptTimeout = 10 * time.Second
	// DefaultIngestTimeout bounds one ingest attempt — folding a year of
	// logs is legitimately slow.
	DefaultIngestTimeout = 5 * time.Minute
	// DefaultFailoverBackoff is the base jittered pause before trying the
	// next owner, giving a blipping replica one beat to come back before
	// the cluster piles onto its siblings.
	DefaultFailoverBackoff = 25 * time.Millisecond
	// maxRelayBody caps how much of an upstream response the router will
	// buffer for relay.
	maxRelayBody = 64 << 20
)

// Config configures a Router.
type Config struct {
	// Replicas lists the ioserved backends as URLs or host:port strings.
	// Required, at least one.
	Replicas []string
	// Replication is how many replicas own each dataset (0 means
	// DefaultReplication; clamped to the replica count).
	Replication int
	// VirtualNodes per replica on the hash ring (0 means
	// DefaultVirtualNodes).
	VirtualNodes int
	// MaxInFlightPerBackend bounds concurrent requests held open against
	// one replica (0 means DefaultMaxInFlightPerBackend); a saturated
	// backend is skipped in favor of the next owner.
	MaxInFlightPerBackend int
	// AttemptTimeout bounds one query attempt against one backend
	// (0 means DefaultAttemptTimeout).
	AttemptTimeout time.Duration
	// IngestTimeout bounds one ingest attempt (0 means
	// DefaultIngestTimeout).
	IngestTimeout time.Duration
	// FailoverBackoff is the base for the jittered pause between owner
	// attempts (0 means DefaultFailoverBackoff, negative disables).
	FailoverBackoff time.Duration
	// Breaker configures each backend's circuit breaker.
	Breaker BreakerConfig
	// ProbeInterval and ProbeTimeout drive the active health prober
	// (zeros mean defaults); ProbePath overrides the /readyz probe URL.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbePath     string
	// Keyring, when non-empty, turns on the auth edge: every /v1 request
	// must carry a registered API key (X-API-Key or Authorization:
	// Bearer) with tokens left in its tenant bucket.
	Keyring *Keyring
	// Metrics receives router counters and latency histograms. Nil
	// disables instrumentation.
	Metrics *obsv.Registry
	// Transport overrides the upstream HTTP transport (tests).
	Transport http.RoundTripper
	// Jitter returns a uniform [0, 1) for failover backoff spreading
	// (nil means math/rand/v2).
	Jitter func() float64
}

// Router is the cluster's front door: it owns the ring, the backends,
// the breakers, and the prober, and exposes the same /v1 API a single
// ioserved does — byte-identical bodies, sourced from whichever owner of
// each dataset is answering.
type Router struct {
	backends []*Backend
	ring     *Ring
	rf       int

	client      *http.Client
	attemptTO   time.Duration
	ingestTO    time.Duration
	backoffBase time.Duration
	jitter      func() float64
	keyring     *Keyring
	metrics     *obsv.Registry
	prober      *prober
	mux         *http.ServeMux
	startOnce   sync.Once
	closeOnce   sync.Once
	started     bool

	// resolved counters (nil-safe when metrics are off)
	cFailover    *obsv.Counter
	cExhausted   *obsv.Counter
	cSkipDark    *obsv.Counter
	cSkipBreaker *obsv.Counter
	cSkipFull    *obsv.Counter
	cLimited     *obsv.Counter
	cUnauthed    *obsv.Counter
}

// NewRouter builds a router over cfg.Replicas. Call Start to begin
// health probing and Close to stop it.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	rf := cfg.Replication
	if rf <= 0 {
		rf = DefaultReplication
	}
	if rf > len(cfg.Replicas) {
		rf = len(cfg.Replicas)
	}
	backends := make([]*Backend, 0, len(cfg.Replicas))
	names := make([]string, 0, len(cfg.Replicas))
	for _, raw := range cfg.Replicas {
		be, err := newBackend(raw, cfg.Breaker, cfg.MaxInFlightPerBackend)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %q: %w", raw, err)
		}
		backends = append(backends, be)
		names = append(names, be.Name)
	}
	ring, err := NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	attemptTO := cfg.AttemptTimeout
	if attemptTO <= 0 {
		attemptTO = DefaultAttemptTimeout
	}
	ingestTO := cfg.IngestTimeout
	if ingestTO <= 0 {
		ingestTO = DefaultIngestTimeout
	}
	backoff := cfg.FailoverBackoff
	if backoff == 0 {
		backoff = DefaultFailoverBackoff
	}
	jitter := cfg.Jitter
	if jitter == nil {
		jitter = rand.Float64
	}
	keyring := cfg.Keyring
	if keyring != nil && keyring.Len() == 0 {
		keyring = nil
	}
	r := &Router{
		backends:     backends,
		ring:         ring,
		rf:           rf,
		client:       &http.Client{Transport: cfg.Transport},
		attemptTO:    attemptTO,
		ingestTO:     ingestTO,
		backoffBase:  backoff,
		jitter:       jitter,
		keyring:      keyring,
		metrics:      cfg.Metrics,
		cFailover:    cfg.Metrics.Counter("cluster.failovers"),
		cExhausted:   cfg.Metrics.Counter("cluster.owners_exhausted"),
		cSkipDark:    cfg.Metrics.Counter("cluster.skip.unhealthy"),
		cSkipBreaker: cfg.Metrics.Counter("cluster.skip.breaker_open"),
		cSkipFull:    cfg.Metrics.Counter("cluster.skip.saturated"),
		cLimited:     cfg.Metrics.Counter("cluster.ratelimited"),
		cUnauthed:    cfg.Metrics.Counter("cluster.unauthorized"),
	}
	r.prober = newProber(backends, cfg.ProbeTimeout, cfg.ProbeInterval, cfg.ProbePath, probeMetrics{
		ok:   cfg.Metrics.Counter("cluster.probe.ok"),
		fail: cfg.Metrics.Counter("cluster.probe.fail"),
	})

	r.mux = http.NewServeMux()
	r.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	r.mux.HandleFunc("GET /readyz", r.handleReady)
	r.mux.HandleFunc("GET /v1", r.authed(r.instrumented("index", r.handleIndex)))
	r.mux.HandleFunc("GET /v1/cluster", r.authed(r.instrumented("cluster", r.handleCluster)))
	r.mux.HandleFunc("GET /v1/datasets", r.authed(r.instrumented("datasets", r.handleDatasets)))
	r.mux.HandleFunc("GET /v1/report/{dataset}", r.authed(r.instrumented("report", r.handleReport)))
	r.mux.HandleFunc("GET /v1/compare/{a}/{b}", r.authed(r.instrumented("compare", r.handleCompare)))
	r.mux.HandleFunc("GET /v1/predict/{dataset}", r.authed(r.instrumented("predict", r.handlePredict)))
	r.mux.HandleFunc("POST /v1/ingest", r.authed(r.instrumented("ingest", r.handleIngest)))
	if cfg.Metrics != nil {
		r.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, cfg.Metrics.Snapshot().Text())
		})
		r.mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(cfg.Metrics.Snapshot().JSON())
		})
	}
	return r, nil
}

// Handler returns the router's root handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Start launches the active health prober.
func (r *Router) Start() {
	r.startOnce.Do(func() {
		r.started = true
		go r.prober.run()
	})
}

// Close stops the prober (if Start ran) and waits for it to finish.
func (r *Router) Close() {
	r.startOnce.Do(func() {}) // neutralize a Start issued after Close
	r.closeOnce.Do(func() {
		if r.started {
			r.prober.close()
		}
	})
}

// Owners returns the backends owning a dataset, primary first.
func (r *Router) Owners(dataset string) []*Backend {
	idxs := r.ring.Owners(dataset, r.rf)
	owners := make([]*Backend, len(idxs))
	for i, idx := range idxs {
		owners[i] = r.backends[idx]
	}
	return owners
}

// handleReady: the router is ready when at least one replica is.
func (r *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	healthy := 0
	for _, be := range r.backends {
		if be.Healthy() {
			healthy++
		}
	}
	if healthy == 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "not ready: no healthy replicas\n")
		return
	}
	io.WriteString(w, fmt.Sprintf("ready (%d/%d replicas healthy)\n", healthy, len(r.backends)))
}

// Routes is the router's machine-readable route index: everything a
// single ioserved advertises (the router fronts the same API), plus the
// cluster-status route only the router has.
func (r *Router) Routes() []httpapi.Route {
	routes := serve.Routes()
	routes = append(routes, httpapi.Route{
		Path: "/v1/cluster", Methods: []string{"GET"}, Params: []string{"dataset"}, SchemaVersion: report.SchemaVersion,
	})
	return routes
}

func (r *Router) handleIndex(w http.ResponseWriter, req *http.Request) {
	if _, err := httpapi.Query(req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	data, err := serve.MarshalDoc(httpapi.BuildIndex("iorouter", r.Routes()))
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// authed enforces the API-key + token-bucket edge when a keyring is
// configured; with no keyring the cluster is open, like a bare ioserved.
func (r *Router) authed(fn http.HandlerFunc) http.HandlerFunc {
	if r.keyring == nil {
		return fn
	}
	return func(w http.ResponseWriter, req *http.Request) {
		key := req.Header.Get("X-API-Key")
		if key == "" {
			if auth := req.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
				key = auth[7:]
			}
		}
		if key == "" {
			r.cUnauthed.Add(1)
			httpapi.WriteError(w, http.StatusUnauthorized, httpapi.CodeUnauthorized,
				"missing API key (X-API-Key or Authorization: Bearer)")
			return
		}
		tenant, wait, err := r.keyring.Check(key)
		if err != nil {
			r.cUnauthed.Add(1)
			httpapi.WriteError(w, http.StatusUnauthorized, httpapi.CodeUnauthorized, "unknown API key")
			return
		}
		if wait > 0 {
			r.cLimited.Add(1)
			httpapi.WriteErrorRetry(w, http.StatusTooManyRequests, httpapi.CodeRateLimited,
				fmt.Sprintf("tenant %q over its request rate, retry shortly", tenant), wait)
			return
		}
		fn(w, req)
	}
}

// instrumented records per-endpoint request counts and wall latency.
func (r *Router) instrumented(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		fn(w, req)
		r.metrics.Counter("cluster." + name + ".requests").Add(1)
		r.metrics.TimeHistogram("cluster." + name + ".latency_us").Observe(time.Since(start).Microseconds())
	}
}

// upstream is one backend's buffered answer.
type upstream struct {
	backend string
	status  int
	header  http.Header
	body    []byte
}

// retryAfterOf reads an upstream Retry-After (whole seconds only).
func (u *upstream) retryAfterOf() int {
	if u == nil {
		return 0
	}
	n, err := strconv.Atoi(u.header.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// attemptError explains why one backend did not produce a relayable
// answer and whether a request was actually sent (gated attempts cost the
// backend nothing and feed no accounting).
type attemptError struct {
	gated      bool
	busy       bool // upstream 429
	retryAfter int
	err        error
}

func (e *attemptError) Error() string { return e.err.Error() }

var (
	errDark      = errors.New("replica marked unhealthy")
	errBreaker   = errors.New("circuit breaker open")
	errSaturated = errors.New("replica at in-flight capacity")
)

// attempt sends one request to one backend and classifies the outcome.
// A nil error means the answer is definitive and should be relayed (2xx
// and deterministic 4xx alike); an *attemptError means fail over.
func (r *Router) attempt(ctx context.Context, be *Backend, method, pathQ string, body []byte, timeout time.Duration) (*upstream, *attemptError) {
	if !be.Healthy() {
		r.cSkipDark.Add(1)
		return nil, &attemptError{gated: true, err: errDark}
	}
	// Slot before breaker: a true Allow from an open breaker claims its
	// single trial, so the claim must only happen once we know the
	// request can actually be sent.
	if !be.acquire() {
		r.cSkipFull.Add(1)
		return nil, &attemptError{gated: true, err: errSaturated}
	}
	if !be.breaker.Allow() {
		be.release()
		r.cSkipBreaker.Add(1)
		return nil, &attemptError{gated: true, err: errBreaker}
	}
	defer be.release()

	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, be.URL(pathQ), rd)
	if err != nil {
		return nil, &attemptError{gated: true, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		be.reportOutcome(outcomeNetErr)
		return nil, &attemptError{err: fmt.Errorf("replica %s: %w", be.Name, err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBody+1))
	if err != nil || len(data) > maxRelayBody {
		be.reportOutcome(outcomeNetErr)
		if err == nil {
			err = fmt.Errorf("response exceeds %d bytes", int64(maxRelayBody))
		}
		return nil, &attemptError{err: fmt.Errorf("replica %s: reading response: %w", be.Name, err)}
	}
	up := &upstream{backend: be.Name, status: resp.StatusCode, header: resp.Header, body: data}
	switch classifyStatus(resp.StatusCode) {
	case outcomeBusy:
		be.reportOutcome(outcomeBusy)
		return nil, &attemptError{busy: true, retryAfter: up.retryAfterOf(),
			err: fmt.Errorf("replica %s: at capacity", be.Name)}
	case outcomeServerErr:
		be.reportOutcome(outcomeServerErr)
		return nil, &attemptError{retryAfter: up.retryAfterOf(),
			err: fmt.Errorf("replica %s: %s", be.Name, resp.Status)}
	default:
		be.reportOutcome(outcomeOK)
		return up, nil
	}
}

// backoffBeforeRetry pauses a jittered interval scaled by the attempt
// number before the next owner is tried, honoring cancellation.
func (r *Router) backoffBeforeRetry(ctx context.Context, attempt int) {
	if r.backoffBase <= 0 {
		return
	}
	d := time.Duration(float64(r.backoffBase) * float64(attempt) * (0.5 + r.jitter()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// relay writes an upstream answer through, preserving the byte-identical
// body and the headers that matter, and stamping which replica answered.
func relay(w http.ResponseWriter, up *upstream, attempts int) {
	for _, h := range []string{"Content-Type", "X-Cache", "X-Dataset-Generation", "Retry-After"} {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Io-Backend", up.backend)
	w.Header().Set("X-Io-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(up.status)
	w.Write(up.body)
}

// queryOwners walks a dataset's owners, failing over until one produces
// a definitive answer. A 404 is deferred rather than relayed immediately:
// an owner that lost its copy (restarted without its lake) must not mask
// a sibling that still has the dataset. Exhausting every owner
// synthesizes 503 — or 429 when every answering owner was shedding load —
// with a Retry-After honoring the largest upstream hint.
func (r *Router) queryOwners(req *http.Request, w http.ResponseWriter, dataset, pathQ string) {
	owners := r.Owners(dataset)
	var notFound *upstream
	sawAnswer, allBusy := false, true
	retryAfter := 1
	for i, be := range owners {
		if i > 0 {
			r.backoffBeforeRetry(req.Context(), i)
		}
		up, aerr := r.attempt(req.Context(), be, http.MethodGet, pathQ, nil, r.attemptTO)
		if aerr == nil {
			if up.status == http.StatusNotFound {
				notFound = up
				continue
			}
			if i > 0 {
				r.cFailover.Add(1)
			}
			relay(w, up, i+1)
			return
		}
		if !aerr.gated {
			sawAnswer = true
			if !aerr.busy {
				allBusy = false
			}
			if aerr.retryAfter > retryAfter {
				retryAfter = aerr.retryAfter
			}
		}
	}
	if notFound != nil {
		relay(w, notFound, len(owners))
		return
	}
	r.cExhausted.Add(1)
	status, code := http.StatusServiceUnavailable, httpapi.CodeUnavailable
	if sawAnswer && allBusy {
		status, code = http.StatusTooManyRequests, httpapi.CodeOverCapacity
	}
	httpapi.WriteErrorRetry(w, status, code,
		fmt.Sprintf("all %d owners of dataset %q are unavailable, retry shortly", len(owners), dataset),
		time.Duration(retryAfter)*time.Second)
}

func (r *Router) handleReport(w http.ResponseWriter, req *http.Request) {
	dataset := req.PathValue("dataset")
	if !serve.ValidDatasetName(dataset) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", dataset))
		return
	}
	pathQ := "/v1/report/" + dataset
	if q := req.URL.RawQuery; q != "" {
		pathQ += "?" + q
	}
	r.queryOwners(req, w, dataset, pathQ)
}

// handlePredict relays the predictive-analytics document from whichever
// owner of the dataset answers. The query string is forwarded untouched so
// an upstream parameter rejection comes back as that replica's envelope,
// byte-identical — the router never rewrites upstream error bodies.
func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	dataset := req.PathValue("dataset")
	if !serve.ValidDatasetName(dataset) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", dataset))
		return
	}
	pathQ := "/v1/predict/" + dataset
	if q := req.URL.RawQuery; q != "" {
		pathQ += "?" + q
	}
	r.queryOwners(req, w, dataset, pathQ)
}

// fetchRow gathers one dataset's listing row from its owners (for the
// scatter/gather compare). Returns the row, or an HTTP status to report.
func (r *Router) fetchRow(req *http.Request, dataset string) (serve.DatasetRow, int, error) {
	owners := r.Owners(dataset)
	found := false
	for i, be := range owners {
		if i > 0 {
			r.backoffBeforeRetry(req.Context(), i)
		}
		up, aerr := r.attempt(req.Context(), be, http.MethodGet, "/v1/datasets", nil, r.attemptTO)
		if aerr != nil {
			continue
		}
		if up.status != http.StatusOK {
			continue
		}
		var doc serve.DatasetsDoc
		if err := json.Unmarshal(up.body, &doc); err != nil {
			continue
		}
		found = true
		for _, row := range doc.Datasets {
			if row.Name == dataset {
				if i > 0 {
					r.cFailover.Add(1)
				}
				return row, http.StatusOK, nil
			}
		}
	}
	if found {
		return serve.DatasetRow{}, http.StatusNotFound, fmt.Errorf("no dataset %q", dataset)
	}
	r.cExhausted.Add(1)
	return serve.DatasetRow{}, http.StatusServiceUnavailable,
		fmt.Errorf("all owners of dataset %q are unavailable, retry shortly", dataset)
}

// writeFetchError maps a fetchRow failure onto the envelope: a confirmed
// missing dataset is not_found, exhausted owners are unavailable with a
// retry hint.
func writeFetchError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		httpapi.WriteErrorRetry(w, status, httpapi.CodeUnavailable, err.Error(), time.Second)
		return
	}
	httpapi.WriteError(w, status, httpapi.CodeNotFound, err.Error())
}

// handleCompare scatter/gathers: each side's summary row comes from the
// shard owning that dataset, and the comparison document is assembled by
// the same serve code a single node renders with — byte-identical output
// even when a and b live on disjoint replicas.
func (r *Router) handleCompare(w http.ResponseWriter, req *http.Request) {
	nameA, nameB := req.PathValue("a"), req.PathValue("b")
	for _, n := range []string{nameA, nameB} {
		if !serve.ValidDatasetName(n) {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", n))
			return
		}
	}
	rowA, status, err := r.fetchRow(req, nameA)
	if err != nil {
		writeFetchError(w, status, err)
		return
	}
	rowB, status, err := r.fetchRow(req, nameB)
	if err != nil {
		writeFetchError(w, status, err)
		return
	}
	data, err := serve.CompareDocument(rowA, rowB)
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleDatasets scatters to every backend and gathers the union of
// their listings, keeping each dataset's highest generation.
func (r *Router) handleDatasets(w http.ResponseWriter, req *http.Request) {
	type result struct {
		doc serve.DatasetsDoc
		ok  bool
	}
	results := make([]result, len(r.backends))
	var wg sync.WaitGroup
	for i, be := range r.backends {
		wg.Add(1)
		go func(i int, be *Backend) {
			defer wg.Done()
			up, aerr := r.attempt(req.Context(), be, http.MethodGet, "/v1/datasets", nil, r.attemptTO)
			if aerr != nil || up.status != http.StatusOK {
				return
			}
			if json.Unmarshal(up.body, &results[i].doc) == nil {
				results[i].ok = true
			}
		}(i, be)
	}
	wg.Wait()
	rows := map[string]serve.DatasetRow{}
	answered := 0
	for _, res := range results {
		if !res.ok {
			continue
		}
		answered++
		for _, row := range res.doc.Datasets {
			if cur, ok := rows[row.Name]; !ok || row.Generation > cur.Generation {
				rows[row.Name] = row
			}
		}
	}
	if answered == 0 {
		httpapi.WriteErrorRetry(w, http.StatusServiceUnavailable, httpapi.CodeUnavailable,
			"no replicas are answering, retry shortly", time.Second)
		return
	}
	doc := serve.DatasetsDoc{SchemaVersion: report.SchemaVersion, Datasets: []serve.DatasetRow{}}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.Datasets = append(doc.Datasets, rows[name])
	}
	data, err := serve.MarshalDoc(doc)
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// ingestReplicaResult is one owner's slice of a fanned-out ingest.
type ingestReplicaResult struct {
	Replica    string `json:"replica"`
	Generation uint64 `json:"generation"`
	Parsed     int    `json:"parsed"`
	Failed     int    `json:"failed"`
}

// ingestFanoutDoc is the router's POST /v1/ingest response.
type ingestFanoutDoc struct {
	SchemaVersion int                   `json:"schema_version"`
	Dataset       string                `json:"dataset"`
	Replicas      []ingestReplicaResult `json:"replicas"`
}

// handleIngest fans one ingest out to every owner of the dataset, in
// owner order, so a dataset is queryable through any of its rf replicas.
// All owners must accept: a deterministic rejection (4xx) from the first
// owner is relayed as-is before any sibling is touched, while a failure
// partway through reports 502 with what landed — the operator retries,
// and the replicas that already ingested simply advance a generation.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20+1))
	if err != nil || len(body) > 1<<20 {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "bad ingest request body")
		return
	}
	var head struct {
		Dataset string `json:"dataset"`
	}
	if err := json.Unmarshal(body, &head); err != nil || !serve.ValidDatasetName(head.Dataset) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			fmt.Sprintf("bad ingest request: invalid dataset name %q", head.Dataset))
		return
	}
	owners := r.Owners(head.Dataset)
	doc := ingestFanoutDoc{SchemaVersion: report.SchemaVersion, Dataset: head.Dataset}
	for _, be := range owners {
		up, aerr := r.attempt(req.Context(), be, http.MethodPost, "/v1/ingest", body, r.ingestTO)
		if aerr != nil {
			httpapi.WriteError(w, http.StatusBadGateway, httpapi.CodeUpstreamFailed, fmt.Sprintf(
				"ingest into %s failed after %d of %d owners landed: %v (retry to converge)",
				be.Name, len(doc.Replicas), len(owners), aerr.err))
			return
		}
		if up.status != http.StatusOK {
			if len(doc.Replicas) == 0 {
				relay(w, up, 1) // deterministic rejection, nothing landed
				return
			}
			httpapi.WriteError(w, http.StatusBadGateway, httpapi.CodeUpstreamFailed, fmt.Sprintf(
				"replica %s rejected the ingest (%d) after %d of %d owners landed: %s",
				be.Name, up.status, len(doc.Replicas), len(owners), string(up.body)))
			return
		}
		var res struct {
			Generation uint64 `json:"generation"`
			Parsed     int    `json:"parsed"`
			Failed     int    `json:"failed"`
		}
		if err := json.Unmarshal(up.body, &res); err != nil {
			httpapi.WriteError(w, http.StatusBadGateway, httpapi.CodeUpstreamFailed,
				fmt.Sprintf("replica %s: undecodable ingest response", be.Name))
			return
		}
		doc.Replicas = append(doc.Replicas, ingestReplicaResult{
			Replica: be.Name, Generation: res.Generation, Parsed: res.Parsed, Failed: res.Failed,
		})
	}
	data, err := serve.MarshalDoc(doc)
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// clusterReplicaDoc is one replica's row in the /v1/cluster status view.
type clusterReplicaDoc struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

// clusterDoc is the /v1/cluster response: the router's live view of its
// replicas, plus — with ?dataset= — the owner list for one dataset.
type clusterDoc struct {
	SchemaVersion int                 `json:"schema_version"`
	Replication   int                 `json:"replication"`
	Replicas      []clusterReplicaDoc `json:"replicas"`
	Dataset       string              `json:"dataset,omitempty"`
	Owners        []string            `json:"owners,omitempty"`
}

func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	params, err := httpapi.Query(req, "dataset")
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	doc := clusterDoc{SchemaVersion: report.SchemaVersion, Replication: r.rf}
	for _, be := range r.backends {
		doc.Replicas = append(doc.Replicas, clusterReplicaDoc{
			Name: be.Name, Healthy: be.Healthy(), Breaker: be.BreakerState().String(),
		})
	}
	if ds := params["dataset"]; ds != "" {
		if !serve.ValidDatasetName(ds) {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", ds))
			return
		}
		doc.Dataset = ds
		for _, be := range r.Owners(ds) {
			doc.Owners = append(doc.Owners, be.Name)
		}
	}
	data, err := serve.MarshalDoc(doc)
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
