package cluster

import (
	"fmt"
	"math"
	"testing"
)

func TestRingRejectsBadNames(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	names := []string{"r0:8080", "r1:8080", "r2:8080"}
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		owners := ring.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("key %q: %d owners, want 2", key, len(owners))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %q: duplicate owner %d", key, owners[0])
		}
		// Stability: asking again gives the same answer.
		again := ring.Owners(key, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("key %q: owners not stable: %v then %v", key, owners, again)
		}
	}
}

func TestRingOwnersClamped(t *testing.T) {
	ring, err := NewRing([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Owners("k", 5); len(got) != 2 {
		t.Errorf("rf=5 over 2 replicas gave %d owners", len(got))
	}
	if got := ring.Owners("k", 0); len(got) != 1 {
		t.Errorf("rf=0 gave %d owners, want 1", len(got))
	}
}

// Ownership is a function of the name set, not the order replicas were
// listed in — two routers configured with the same fleet in different
// orders must agree on every dataset's owners.
func TestRingOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"r2", "r0", "r1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("ds-%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		for j := range oa {
			if nameOf(a, oa[j]) != nameOf(b, ob[j]) {
				t.Fatalf("key %q: owner %d differs by listing order: %s vs %s",
					key, j, nameOf(a, oa[j]), nameOf(b, ob[j]))
			}
		}
	}
}

func nameOf(r *Ring, idx int) string { return r.names[idx] }

// Removing one replica must only move the keys it owned: every key whose
// primary survives keeps that primary.
func TestRingMinimalReshuffle(t *testing.T) {
	full, err := NewRing([]string{"r0", "r1", "r2", "r3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing([]string{"r0", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("ds-%d", i)
		before := nameOf(full, full.Owners(key, 1)[0])
		after := nameOf(smaller, smaller.Owners(key, 1)[0])
		if before == "r3" {
			continue // its keys had to move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d/%d keys with a surviving primary still moved", moved, n)
	}
}

// The ring spreads primaries roughly evenly: no replica should own a
// wildly disproportionate share of the keyspace.
func TestRingBalance(t *testing.T) {
	names := []string{"r0", "r1", "r2", "r3", "r4"}
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(names))
	const n = 5000
	for i := 0; i < n; i++ {
		counts[ring.Owners(fmt.Sprintf("ds-%d", i), 1)[0]]++
	}
	want := float64(n) / float64(len(names))
	for i, c := range counts {
		if ratio := float64(c) / want; math.Abs(ratio-1) > 0.5 {
			t.Errorf("replica %s owns %d/%d primaries (%.0f%% of fair share)",
				names[i], c, n, ratio*100)
		}
	}
}
