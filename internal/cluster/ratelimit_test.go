package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestKeyringValidation(t *testing.T) {
	k := NewKeyring(nil)
	if err := k.Add("", Tenant{Name: "t", Rate: 1}); err == nil {
		t.Error("empty key accepted")
	}
	if err := k.Add("k", Tenant{Rate: 1}); err == nil {
		t.Error("empty tenant accepted")
	}
	if err := k.Add("k", Tenant{Name: "t", Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if err := k.Add("k", Tenant{Name: "t", Rate: 5}); err != nil {
		t.Fatal(err)
	}
	if err := k.Add("k", Tenant{Name: "t2", Rate: 5}); err == nil {
		t.Error("duplicate key accepted")
	}
	if k.Len() != 1 {
		t.Errorf("Len = %d, want 1", k.Len())
	}
	var nilRing *Keyring
	if nilRing.Len() != 0 {
		t.Error("nil keyring Len != 0")
	}
}

func TestKeyringTokenBucket(t *testing.T) {
	clock := newFakeClock()
	k := NewKeyring(clock.now)
	// 2 req/s, burst of 3.
	if err := k.Add("secret", Tenant{Name: "acme", Rate: 2, Burst: 3}); err != nil {
		t.Fatal(err)
	}

	if _, _, err := k.Check("nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key error = %v", err)
	}

	// The bucket starts full: burst requests pass back to back.
	for i := 0; i < 3; i++ {
		tenant, wait, err := k.Check("secret")
		if err != nil || wait != 0 {
			t.Fatalf("burst request %d: tenant=%q wait=%v err=%v", i, tenant, wait, err)
		}
		if tenant != "acme" {
			t.Fatalf("tenant = %q", tenant)
		}
	}
	// Empty: the fourth is limited, with a sensible Retry-After (1 token
	// at 2/s = 500ms).
	_, wait, err := k.Check("secret")
	if err != nil || wait <= 0 {
		t.Fatalf("drained bucket: wait=%v err=%v", wait, err)
	}
	if wait > time.Second {
		t.Errorf("retry-after %v too pessimistic for rate 2/s", wait)
	}

	// Refill at the rate: after 1s, 2 tokens are back.
	clock.advance(time.Second)
	for i := 0; i < 2; i++ {
		if _, wait, _ := k.Check("secret"); wait != 0 {
			t.Fatalf("refilled request %d still limited (wait %v)", i, wait)
		}
	}
	if _, wait, _ := k.Check("secret"); wait == 0 {
		t.Fatal("third request after 1s refill at 2/s passed")
	}

	// Refill caps at burst, not unbounded.
	clock.advance(time.Hour)
	passed := 0
	for i := 0; i < 10; i++ {
		if _, wait, _ := k.Check("secret"); wait == 0 {
			passed++
		}
	}
	if passed != 3 {
		t.Errorf("after a long idle, %d requests passed, want burst=3", passed)
	}
}

func TestParseKeySpec(t *testing.T) {
	key, tenant, err := ParseKeySpec("s3cr3t=acme:2.5:10")
	if err != nil {
		t.Fatal(err)
	}
	if key != "s3cr3t" || tenant.Name != "acme" || tenant.Rate != 2.5 || tenant.Burst != 10 {
		t.Errorf("parsed %q / %+v", key, tenant)
	}
	// Burst defaults to max(rate, 1).
	_, tenant, err = ParseKeySpec("k=t:4")
	if err != nil || tenant.Burst != 4 {
		t.Errorf("default burst = %v (err %v), want 4", tenant.Burst, err)
	}
	_, tenant, err = ParseKeySpec("k=t:0.5")
	if err != nil || tenant.Burst != 1 {
		t.Errorf("default burst for slow tenant = %v (err %v), want 1", tenant.Burst, err)
	}
	for _, bad := range []string{"", "noequals", "=t:1", "k=", "k=t", "k=t:abc", "k=t:1:x", "k=t:1:2:3"} {
		if _, _, err := ParseKeySpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestLoadKeyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	content := "# production keys\n\nalpha=acme:10\nbeta=globex:2:5\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	k := NewKeyring(nil)
	if err := k.LoadKeyFile(path); err != nil {
		t.Fatal(err)
	}
	if k.Len() != 2 {
		t.Fatalf("loaded %d keys, want 2", k.Len())
	}
	if tenant, _, err := k.Check("beta"); err != nil || tenant != "globex" {
		t.Errorf("beta → %q, %v", tenant, err)
	}
	// A bad line reports its position.
	bad := filepath.Join(t.TempDir(), "badkeys")
	os.WriteFile(bad, []byte("ok=t:1\nbroken\n"), 0o600)
	if err := k.LoadKeyFile(bad); err == nil {
		t.Error("bad key file accepted")
	}
}
