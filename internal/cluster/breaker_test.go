package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// zeroJitter pins every open interval to exactly d/2.
func zeroJitter() float64 { return 0 }

func testBreaker(clock *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Threshold: 3,
		OpenBase:  time.Second,
		OpenMax:   8 * time.Second,
		Jitter:    zeroJitter,
		Now:       clock.now,
	})
}

// The full transition cycle: closed → (threshold failures) → open →
// (interval elapses) → half-open → (trial succeeds) → closed.
func TestBreakerFullCycle(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	// Two failures: still closed (threshold is 3).
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// Third trips it. Open interval = jittered(1s) = 500ms with zero jitter.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	// Interval not yet elapsed.
	clock.advance(499 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker allowed before its interval elapsed")
	}
	// Elapsed: the next Allow promotes to half-open and claims the trial.
	clock.advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("elapsed breaker refused the trial request")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during trial = %v, want half-open", b.State())
	}
	// Only one trial at a time.
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent trial")
	}
	// Trial succeeds: closed again, backoff reset.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}

// A failed half-open trial re-opens with doubled backoff, capped at
// OpenMax.
func TestBreakerBackoffDoublesAndCaps(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)

	trip := func() {
		for b.State() != BreakerOpen {
			b.Failure()
		}
	}
	trip()
	// Expected jittered intervals with zero jitter: d/2 where d doubles
	// 1s, 2s, 4s, 8s, 8s (capped) → 500ms, 1s, 2s, 4s, 4s.
	for i, want := range []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second} {
		clock.advance(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("trip %d: allowed %v early", i, time.Millisecond)
		}
		clock.advance(2 * time.Millisecond)
		if !b.Allow() {
			t.Fatalf("trip %d: refused after interval %v elapsed", i, want)
		}
		b.Failure() // failed trial: re-open, doubled
	}
	// A success anywhere resets the whole ladder.
	clock.advance(4 * time.Second)
	if !b.Allow() {
		t.Fatal("refused after final interval")
	}
	b.Success()
	trip()
	clock.advance(501 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("backoff ladder did not reset after success: first re-open interval is not base again")
	}
}

// A failure reported while already open (a straggler whose request was in
// flight when the breaker tripped) must not extend the interval.
func TestBreakerAbsorbsStragglerFailures(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	until := b.openUntil
	b.Failure()
	b.Failure()
	if !b.openUntil.Equal(until) {
		t.Error("straggler failures moved the open deadline")
	}
}

// Hammer one breaker from many goroutines while the clock advances: the
// race detector referees the locking, and the breaker must end usable
// (this is the concurrent health-flap test — probes and live traffic
// report outcomes simultaneously).
func TestBreakerConcurrentFlaps(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (i+g)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if i%50 == 0 {
					clock.advance(100 * time.Millisecond)
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
	// Settle: one success must always close it.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("breaker unusable after concurrent flaps")
	}
}
