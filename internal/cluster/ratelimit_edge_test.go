package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A tenant configured with zero (or negative) burst must still be able
// to make progress: the bucket clamps to depth 1, admitting exactly one
// request per 1/rate interval instead of deadlocking at "always empty".
func TestKeyringZeroBurstClamps(t *testing.T) {
	clock := newFakeClock()
	k := NewKeyring(clock.now)
	if err := k.Add("k0", Tenant{Name: "t", Rate: 2, Burst: 0}); err != nil {
		t.Fatal(err)
	}
	if err := k.Add("kneg", Tenant{Name: "t2", Rate: 2, Burst: -3}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"k0", "kneg"} {
		if _, wait, err := k.Check(key); err != nil || wait != 0 {
			t.Fatalf("%s: first request wait=%v err=%v, want immediate pass", key, wait, err)
		}
		if _, wait, _ := k.Check(key); wait <= 0 {
			t.Fatalf("%s: second request passed a depth-1 bucket", key)
		}
	}
	// The clamp also applies through the flag-spec path.
	_, tenant, err := ParseKeySpec("k=t:4:0")
	if err != nil {
		t.Fatal(err)
	}
	k2 := NewKeyring(clock.now)
	if err := k2.Add("k", tenant); err != nil {
		t.Fatal(err)
	}
	if _, wait, err := k2.Check("k"); err != nil || wait != 0 {
		t.Fatalf("explicit zero burst: first request wait=%v err=%v", wait, err)
	}
}

// Retry-After must be exact at exact exhaustion: with the bucket at
// precisely zero tokens, the wait is precisely one token's refill time —
// not zero (which would invite a tight retry loop) and not padded.
func TestKeyringRetryAfterAtExactExhaustion(t *testing.T) {
	clock := newFakeClock()
	k := NewKeyring(clock.now)
	if err := k.Add("key", Tenant{Name: "acme", Rate: 2, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	// Drain the full burst back to back: tokens land on exactly 0.
	for i := 0; i < 2; i++ {
		if _, wait, _ := k.Check("key"); wait != 0 {
			t.Fatalf("drain request %d limited early (wait %v)", i, wait)
		}
	}
	if _, wait, _ := k.Check("key"); wait != 500*time.Millisecond {
		t.Fatalf("wait at exact exhaustion = %v, want exactly 500ms (1 token at 2/s)", wait)
	}
	// A partial refill shrinks the wait by exactly the refilled fraction:
	// 250ms at 2/s restores 0.5 tokens, leaving 0.5 to wait for = 250ms.
	clock.advance(250 * time.Millisecond)
	if _, wait, _ := k.Check("key"); wait != 250*time.Millisecond {
		t.Fatalf("wait after 250ms refill = %v, want exactly 250ms", wait)
	}
	// Note the limited Checks above must not themselves consume tokens:
	// after the remaining 250ms the bucket holds the full token and passes.
	clock.advance(250 * time.Millisecond)
	if _, wait, _ := k.Check("key"); wait != 0 {
		t.Fatalf("request after full refill limited (wait %v) — a limited request consumed tokens", wait)
	}
}

// Two tenants behind one router (and therefore one backend pool) must
// throttle independently: tenant A exhausting its bucket yields 429s for
// A only, B keeps flowing, and A's rejected requests never reach the
// backend (the edge sheds them before any replica is dialed).
func TestTenantsDoNotCrossThrottle(t *testing.T) {
	var backendHits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"schema_version":1,"datasets":[]}`)
	}))
	defer backend.Close()

	keyring := NewKeyring(nil)
	if err := keyring.Add("key-a", Tenant{Name: "alpha", Rate: 0.001, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	if err := keyring.Add("key-b", Tenant{Name: "beta", Rate: 1000, Burst: 1000}); err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(Config{
		Replicas: []string{backend.URL},
		Keyring:  keyring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ts := httptest.NewServer(router.Handler())
	defer ts.Close()

	get := func(key string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets", nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	// Exhaust alpha's burst of 2.
	for i := 0; i < 2; i++ {
		if code, _ := get("key-a"); code != http.StatusOK {
			t.Fatalf("alpha request %d: %d", i, code)
		}
	}
	hitsBefore := backendHits.Load()
	code, retryAfter := get("key-a")
	if code != http.StatusTooManyRequests {
		t.Fatalf("exhausted alpha got %d, want 429", code)
	}
	if retryAfter == "" || retryAfter == "0" {
		t.Errorf("throttled response Retry-After = %q, want a positive hint", retryAfter)
	}
	if got := backendHits.Load(); got != hitsBefore {
		t.Errorf("throttled request reached the backend (%d hits, want %d)", got, hitsBefore)
	}

	// Beta is untouched by alpha's exhaustion — across many requests.
	for i := 0; i < 50; i++ {
		if code, _ := get("key-b"); code != http.StatusOK {
			t.Fatalf("beta request %d cross-throttled: %d", i, code)
		}
	}
	// And alpha is still limited (beta's traffic refilled nothing for it).
	if code, _ := get("key-a"); code != http.StatusTooManyRequests {
		t.Errorf("alpha recovered from beta's traffic: %d", code)
	}
}
