// Package cluster is the scale-out serving layer: a thin router in front
// of N ioserved replicas that keeps answering queries byte-identically
// while individual replicas go slow or dark — the serving-side mirror of
// the degraded-server behavior the paper measured on production I/O
// subsystems (individual servers flap, the aggregate keeps delivering).
//
// The pieces, bottom up:
//
//   - Ring: a consistent-hash ring assigning each dataset to a stable,
//     ordered set of owner replicas (replication factor ≥ 2), so losing a
//     replica moves only that replica's share of the keyspace.
//   - Breaker: a closed/open/half-open circuit breaker with jittered
//     exponential backoff, one per backend, fed by both live traffic and
//     active health probes.
//   - Backend: one replica as the router sees it — base URL, breaker,
//     bounded in-flight slots, and a health bit maintained by the prober.
//   - Router: the HTTP front door. Reports route to the dataset's owners
//     with failover; /v1/compare scatter/gathers across the shards that
//     own each side; ingests fan out to every owner; per-tenant API keys
//     and token-bucket rate limits are enforced at the edge.
//
// Everything upstream-visible stays byte-identical to a single ioserved:
// the router never rewrites report bodies, and the gathered compare
// document is built by the same serve code that renders it single-node.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-replica virtual-node count when the
// caller does not choose: high enough that ownership splits evenly across
// a handful of replicas, cheap enough to rebuild instantly.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over replica names. Keys
// (dataset names) hash onto the ring and are owned by the next distinct
// replicas clockwise — so each key has a stable owner order, and removing
// a replica only reassigns the keys it owned.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into names
}

// NewRing builds a ring over the given replica names with vnodes virtual
// nodes per replica (0 means DefaultVirtualNodes). Names must be non-empty
// and unique — ownership is a pure function of the name set, independent
// of order.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty replica name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", name)
		}
		seen[name] = true
		h := hash64(name)
		for v := 0; v < vnodes; v++ {
			// Derive each virtual point from the replica's own hash so the
			// point set — and therefore ownership — does not depend on the
			// order replicas were listed in.
			r.points = append(r.points, ringPoint{hash: splitmix(h ^ uint64(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.names[r.points[a].idx] < r.names[r.points[b].idx]
	})
	return r, nil
}

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return len(r.names) }

// Owners returns the indices (into the name list NewRing was given) of
// the rf distinct replicas owning key, primary first. rf is clamped to
// the replica count.
func (r *Ring) Owners(key string, rf int) []int {
	if rf <= 0 {
		rf = 1
	}
	if rf > len(r.names) {
		rf = len(r.names)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, rf)
	taken := make(map[int]bool, rf)
	for i := 0; i < len(r.points) && len(owners) < rf; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.idx] {
			taken[p.idx] = true
			owners = append(owners, p.idx)
		}
	}
	return owners
}

// hash64 is FNV-1a finished with a SplitMix64 avalanche — FNV alone mixes
// short keys poorly in the high bits the ring search keys on.
func hash64(s string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return splitmix(h)
}

// splitmix is the SplitMix64 finalizer (the same mixer the fault injector
// uses for deterministic membership).
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
