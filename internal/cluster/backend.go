package cluster

import (
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
)

// DefaultMaxInFlightPerBackend bounds concurrent requests the router
// holds open against one replica when the caller does not choose. The
// point is isolation: one stalled replica may absorb at most this many
// router slots before further traffic fails over, instead of soaking up
// the router's whole capacity one hung request at a time.
const DefaultMaxInFlightPerBackend = 32

// Backend is one ioserved replica as the router sees it: the base URL,
// the circuit breaker guarding it, a bounded in-flight slot pool, and the
// health bit the active prober maintains.
type Backend struct {
	// Name labels the replica in headers, errors, and metrics: the URL's
	// host:port.
	Name string

	base    *url.URL
	breaker *Breaker
	slots   chan struct{}

	// healthy is the prober's verdict (true until the first probe says
	// otherwise — a new backend is assumed good so the cluster serves
	// before the first probe cycle completes). Passive accounting also
	// clears it on hard network errors, so routing reacts a probe period
	// earlier.
	healthy atomic.Bool
	// probing serializes active probes so a stalled backend cannot pile
	// up probe goroutines.
	probing atomic.Bool
}

func newBackend(raw string, breakerCfg BreakerConfig, maxInFlight int) (*Backend, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, err
	}
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlightPerBackend
	}
	b := &Backend{
		Name:    u.Host,
		base:    u,
		breaker: NewBreaker(breakerCfg),
		slots:   make(chan struct{}, maxInFlight),
	}
	b.healthy.Store(true)
	return b, nil
}

// URL resolves a path-and-query against the backend's base URL.
func (b *Backend) URL(pathAndQuery string) string {
	return strings.TrimSuffix(b.base.String(), "/") + pathAndQuery
}

// Healthy reports the prober's current verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// BreakerState reports the guarding breaker's position.
func (b *Backend) BreakerState() BreakerState { return b.breaker.State() }

// acquire claims an in-flight slot without blocking; the router fails
// over rather than queue behind a saturated replica.
func (b *Backend) acquire() bool {
	select {
	case b.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *Backend) release() { <-b.slots }

// reportOutcome feeds passive failure accounting from live traffic into
// the breaker and the health bit: hard failures (network errors, 5xx)
// count against the breaker and immediately mark the backend unhealthy
// on network-level errors, successes restore both.
func (b *Backend) reportOutcome(class outcomeClass) {
	switch class {
	case outcomeOK:
		b.breaker.Success()
		b.healthy.Store(true)
	case outcomeNetErr:
		b.breaker.Failure()
		b.healthy.Store(false)
	case outcomeServerErr:
		b.breaker.Failure()
	case outcomeBusy:
		// 429 from the replica's own load shedding: the replica is alive
		// and answering — not a breaker failure, just "go elsewhere".
		b.breaker.Success()
	}
}

// outcomeClass buckets one upstream attempt for accounting and failover.
type outcomeClass int

const (
	outcomeOK outcomeClass = iota
	outcomeNetErr
	outcomeServerErr
	outcomeBusy
)

func classifyStatus(status int) outcomeClass {
	switch {
	case status == http.StatusTooManyRequests:
		return outcomeBusy
	case status >= 500:
		return outcomeServerErr
	default:
		return outcomeOK
	}
}
