package cluster

import (
	"context"
	"io"
	"net/http"
	"time"

	"iolayers/internal/obsv"
)

// Prober defaults: fast enough that a flapped replica is benched within a
// second, slow enough to be free.
const (
	DefaultProbeInterval = 1 * time.Second
	DefaultProbeTimeout  = 1 * time.Second
	// DefaultProbePath is what the prober GETs: readiness, not liveness —
	// a replica that is alive but still replaying its lake must not
	// receive traffic yet.
	DefaultProbePath = "/readyz"
)

// prober actively health-checks every backend on a fixed cadence. Probe
// results flow into the same accounting live traffic uses (the health bit
// and the breaker), so a replica with no traffic still recovers: the
// probe is the trial request its breaker is waiting for.
type prober struct {
	backends []*Backend
	client   *http.Client
	path     string
	interval time.Duration
	metrics  probeMetrics

	stop chan struct{}
	done chan struct{}
}

// probeMetrics are the prober's counters; nil handles are the disabled
// state, per the obsv convention.
type probeMetrics struct {
	ok   *obsv.Counter
	fail *obsv.Counter
}

func newProber(backends []*Backend, timeout, interval time.Duration, path string, m probeMetrics) *prober {
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if path == "" {
		path = DefaultProbePath
	}
	return &prober{
		backends: backends,
		client:   &http.Client{Timeout: timeout},
		path:     path,
		interval: interval,
		metrics:  m,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (p *prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	p.sweep()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.sweep()
		}
	}
}

// sweep fires one probe per backend, each in its own goroutine so one
// stalled replica does not delay the others' probes. A backend whose
// previous probe is still in flight is skipped — its timeout will settle
// the verdict.
func (p *prober) sweep() {
	for _, be := range p.backends {
		if !be.probing.CompareAndSwap(false, true) {
			continue
		}
		go func(be *Backend) {
			defer be.probing.Store(false)
			p.probe(be)
		}(be)
	}
}

func (p *prober) probe(be *Backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.URL(p.path), nil)
	if err != nil {
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.metrics.fail.Add(1)
		be.healthy.Store(false)
		be.breaker.Failure()
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Not-ready (503 during lake replay/compaction) or any other
		// surprise: bench the replica but leave the breaker alone — the
		// process is alive and answering, it just asked not to be routed
		// to.
		p.metrics.fail.Add(1)
		be.healthy.Store(false)
		return
	}
	p.metrics.ok.Add(1)
	be.healthy.Store(true)
	be.breaker.Success()
}

func (p *prober) close() {
	close(p.stop)
	<-p.done
}
