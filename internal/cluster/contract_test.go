package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iolayers/internal/core"
	"iolayers/internal/httpapi"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/serve"
)

// decodeEnvelope asserts a response body is the structured error envelope
// and returns it.
func decodeEnvelope(t *testing.T, where, body string) httpapi.ErrorEnvelope {
	t.Helper()
	env, ok := httpapi.DecodeError([]byte(body))
	if !ok {
		t.Fatalf("%s: body is not an error envelope: %s", where, body)
	}
	return env
}

// TestRouterErrorEnvelopes sweeps every error the router synthesizes
// itself (as opposed to relaying) and requires the structured envelope
// with the right code on each.
func TestRouterErrorEnvelopes(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})

	resp, body := routerGet(t, r, "/v1/predict/bad%20name", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid name status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, "invalid name", body); env.Error.Code != httpapi.CodeBadRequest {
		t.Errorf("invalid name code = %q", env.Error.Code)
	}

	resp, body = routerGet(t, r, "/v1/cluster?verbose=1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown param status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, "unknown param", body); env.Error.Code != httpapi.CodeBadParam ||
		!strings.Contains(env.Error.Message, "verbose") {
		t.Errorf("unknown param envelope = %+v", env.Error)
	}

	for _, f := range reps {
		f.mode.Store("error")
	}
	resp, body = routerGet(t, r, "/v1/predict/alpha", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("owners exhausted status = %d", resp.StatusCode)
	}
	env := decodeEnvelope(t, "owners exhausted", body)
	if env.Error.Code != httpapi.CodeUnavailable || env.Error.RetryAfterMS < 1000 {
		t.Errorf("owners-exhausted envelope = %+v", env.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}

	for _, f := range reps {
		f.mode.Store("busy")
	}
	resp, body = routerGet(t, r, "/v1/predict/alpha", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-busy status = %d", resp.StatusCode)
	}
	env = decodeEnvelope(t, "all busy", body)
	if env.Error.Code != httpapi.CodeOverCapacity || env.Error.RetryAfterMS != 7000 {
		t.Errorf("all-busy envelope = %+v, want over_capacity honoring the upstream's 7s hint", env.Error)
	}

	for _, f := range reps {
		f.mode.Store("error")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest",
		strings.NewReader(`{"dataset":"alpha","source":"/x","system":"summit"}`))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("fanout failure status = %d", rec.Code)
	}
	if env := decodeEnvelope(t, "ingest fanout", rec.Body.String()); env.Error.Code != httpapi.CodeUpstreamFailed {
		t.Errorf("fanout envelope code = %q", env.Error.Code)
	}
}

// TestAuthEnvelopes pins the auth edge's error contract: unauthorized and
// rate_limited, the latter carrying the bucket's actual wait.
func TestAuthEnvelopes(t *testing.T) {
	keys := NewKeyring(nil)
	if err := keys.Add("k1", Tenant{Name: "acme", Rate: 0.001, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	r, _ := testCluster(t, 2, Config{Keyring: keys})

	resp, body := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing key status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, "missing key", body); env.Error.Code != httpapi.CodeUnauthorized {
		t.Errorf("missing key code = %q", env.Error.Code)
	}

	// Drain the bucket, then the envelope must say rate_limited with a
	// positive wait in both the header and the body.
	routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "k1"})
	resp, body = routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "k1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained tenant status = %d", resp.StatusCode)
	}
	env := decodeEnvelope(t, "rate limited", body)
	if env.Error.Code != httpapi.CodeRateLimited || env.Error.RetryAfterMS < 1000 {
		t.Errorf("rate-limit envelope = %+v", env.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 without Retry-After header")
	}
}

// TestUpstreamEnvelopeRelayedVerbatim: the router never rewrites an
// upstream error body — a replica's envelope passes through byte for
// byte, headers included.
func TestUpstreamEnvelopeRelayedVerbatim(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})
	for _, f := range reps {
		f.mode.Store("notfound")
	}
	resp, body := routerGet(t, r, "/v1/predict/alpha", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want the upstream 404", resp.StatusCode)
	}
	rec := httptest.NewRecorder()
	httpapi.WriteError(rec, http.StatusNotFound, httpapi.CodeNotFound, `no dataset "alpha"`)
	if body != rec.Body.String() {
		t.Errorf("upstream envelope rewritten:\n got: %q\nwant: %q", body, rec.Body.String())
	}
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if resp.Header.Get("X-Io-Backend") == "" {
		t.Error("relay without X-Io-Backend attribution")
	}
}

// TestRouterIndex pins GET /v1 on the router: the ioserved surface plus
// the cluster-status route.
func TestRouterIndex(t *testing.T) {
	r, _ := testCluster(t, 2, Config{})
	resp, body := routerGet(t, r, "/v1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc httpapi.IndexDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Service != "iorouter" || doc.SchemaVersion != httpapi.IndexSchemaVersion {
		t.Errorf("index header = v%d %q", doc.SchemaVersion, doc.Service)
	}
	seen := map[string]bool{}
	for _, rt := range doc.Routes {
		seen[rt.Path] = true
	}
	for _, want := range []string{"/v1/cluster", "/v1/predict/{dataset}", "/v1/report/{dataset}"} {
		if !seen[want] {
			t.Errorf("index missing %s (got %v)", want, doc.Routes)
		}
	}
}

// TestAPIDocCoversSurface is the doc-drift gate: every route the
// cluster mounts (the full ioserved surface plus the router's own) and
// every error code in the taxonomy must appear in docs/api.md. Adding
// an endpoint or a code without documenting it fails the build.
func TestAPIDocCoversSurface(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "api.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	r, _ := testCluster(t, 1, Config{})
	for _, rt := range r.Routes() {
		if !strings.Contains(text, "`"+rt.Path+"`") {
			t.Errorf("docs/api.md does not document route %s", rt.Path)
		}
	}
	for _, code := range httpapi.Codes() {
		if !strings.Contains(text, "`"+string(code)+"`") {
			t.Errorf("docs/api.md does not document error code %q", code)
		}
	}
}

// TestPredictFailover: the predict route rides the same owner-walk as
// reports — a dead primary fails over to the sibling's byte-identical
// answer.
func TestPredictFailover(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})
	owners := r.Owners("alpha")
	primary, secondary := replicaByName(reps, owners[0].Name), replicaByName(reps, owners[1].Name)
	primary.ts.Close()

	resp, body := routerGet(t, r, "/v1/predict/alpha", nil)
	if resp.StatusCode != http.StatusOK || body != "predict alpha from "+secondary.name {
		t.Fatalf("predict failover: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Io-Backend") != secondary.name {
		t.Errorf("X-Io-Backend = %q, want %q", resp.Header.Get("X-Io-Backend"), secondary.name)
	}
}

// TestPredictByteIdentityThroughCluster is the end-to-end acceptance
// check: three real ioserved replicas ingest the same fixture corpus at
// different worker counts; the predict document is byte-identical from
// every replica directly and through a 3-replica router.
func TestPredictByteIdentityThroughCluster(t *testing.T) {
	dir := t.TempDir()
	sys := systems.NewSummit()
	if err := serve.WriteFixture(dir, sys, 24, 7); err != nil {
		t.Fatal(err)
	}
	var urls []string
	var direct []string
	for _, workers := range []int{1, 2, 4} {
		store := serve.NewStore()
		if _, _, err := store.Ingest(context.Background(), "prod", sys, dir,
			core.IngestOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(serve.New(serve.Config{Store: store}).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		resp, err := http.Get(ts.URL + "/v1/predict/prod")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, string(b))
	}
	for i := 1; i < len(direct); i++ {
		if direct[i] != direct[0] {
			t.Fatalf("replica %d predict document differs from replica 0", i)
		}
	}

	r, err := NewRouter(Config{Replicas: urls, Replication: 3, AttemptTimeout: 5 * time.Second, FailoverBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	resp, body := routerGet(t, r, "/v1/predict/prod", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("through-router status %d: %s", resp.StatusCode, body)
	}
	if body != direct[0] {
		t.Error("predict document through the router differs from a direct fetch")
	}
	if resp.Header.Get("X-Dataset-Generation") != "1" {
		t.Errorf("generation header not relayed: %q", resp.Header.Get("X-Dataset-Generation"))
	}
}
