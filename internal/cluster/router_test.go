package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iolayers/internal/httpapi"
	"iolayers/internal/serve"
)

// fakeReplica is a scriptable stand-in for one ioserved: a mode switch
// picks how it answers, and every body is distinct per replica so relay
// byte-identity is checkable.
type fakeReplica struct {
	ts   *httptest.Server
	name string // host:port
	// mode: "ok", "error" (500), "busy" (429 + Retry-After), "notfound",
	// "down" (connection refused)
	mode  atomic.Value
	stall chan struct{} // non-nil: /v1/report blocks on it in ok mode
	hits  atomic.Int64
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.mode.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/report/{dataset}", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		switch f.mode.Load().(string) {
		case "error":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "busy":
			w.Header().Set("Retry-After", "7")
			http.Error(w, "shedding", http.StatusTooManyRequests)
		case "notfound":
			http.Error(w, "no dataset", http.StatusNotFound)
		default:
			if f.stall != nil {
				select {
				case <-f.stall:
				case <-r.Context().Done():
					return
				}
			}
			fmt.Fprintf(w, "report %s from %s", r.PathValue("dataset"), f.name)
		}
	})
	mux.HandleFunc("GET /v1/predict/{dataset}", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		switch f.mode.Load().(string) {
		case "error":
			httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, "boom")
		case "busy":
			httpapi.WriteErrorRetry(w, http.StatusTooManyRequests, httpapi.CodeOverCapacity, "shedding", 7*time.Second)
		case "notfound":
			httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound,
				fmt.Sprintf("no dataset %q", r.PathValue("dataset")))
		default:
			fmt.Fprintf(w, "predict %s from %s", r.PathValue("dataset"), f.name)
		}
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, _ *http.Request) {
		doc := serve.DatasetsDoc{SchemaVersion: 1, Datasets: []serve.DatasetRow{
			{Name: "alpha", System: "summit", Generation: 3,
				Summary: serve.SummaryDoc{System: "summit", Logs: 10, Jobs: 5, Files: 100, NodeHours: 7}},
			{Name: "beta", System: "cori", Generation: 1,
				Summary: serve.SummaryDoc{System: "cori", Logs: 4, Jobs: 2, Files: 40, NodeHours: 3}},
		}}
		data, _ := serve.MarshalDoc(doc)
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if f.mode.Load().(string) == "error" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, `{"schema_version":1,"dataset":"x","generation":2,"parsed":3,"failed":0}`)
	})
	f.ts = httptest.NewServer(mux)
	u, _ := url.Parse(f.ts.URL)
	f.name = u.Host
	t.Cleanup(f.ts.Close)
	return f
}

// testCluster builds a router over n fake replicas with failover-friendly
// timings. The prober is NOT started: health stays at its optimistic
// initial true, so tests exercise the passive path deterministically.
func testCluster(t *testing.T, n int, cfg Config) (*Router, []*fakeReplica) {
	t.Helper()
	reps := make([]*fakeReplica, n)
	for i := range reps {
		reps[i] = newFakeReplica(t)
		cfg.Replicas = append(cfg.Replicas, reps[i].ts.URL)
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.FailoverBackoff == 0 {
		cfg.FailoverBackoff = -1 // no sleeping in tests
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reps
}

func replicaByName(reps []*fakeReplica, name string) *fakeReplica {
	for _, f := range reps {
		if f.name == name {
			return f
		}
	}
	return nil
}

func routerGet(t *testing.T, r *Router, path string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	resp := rec.Result()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

// The satellite failover test: with replication 2, a dataset stays
// queryable when one of its two owners is down — and the relayed body is
// byte-identical to what the surviving owner serves.
func TestFailoverWithOneOwnerDown(t *testing.T) {
	r, reps := testCluster(t, 3, Config{Replication: 2})
	owners := r.Owners("alpha")
	if len(owners) != 2 {
		t.Fatalf("%d owners, want 2", len(owners))
	}
	primary, secondary := replicaByName(reps, owners[0].Name), replicaByName(reps, owners[1].Name)

	// Healthy primary answers.
	resp, body := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusOK || body != "report alpha from "+primary.name {
		t.Fatalf("healthy path: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Io-Backend") != primary.name {
		t.Errorf("X-Io-Backend = %q, want primary %s", resp.Header.Get("X-Io-Backend"), primary.name)
	}

	// Kill the primary: connection refused → passive netErr → failover.
	primary.ts.Close()
	for i := 0; i < 5; i++ {
		resp, body = routerGet(t, r, "/v1/report/alpha", nil)
		if resp.StatusCode != http.StatusOK || body != "report alpha from "+secondary.name {
			t.Fatalf("failover request %d: %d %q", i, resp.StatusCode, body)
		}
	}
	if resp.Header.Get("X-Io-Backend") != secondary.name {
		t.Errorf("failover X-Io-Backend = %q, want %s", resp.Header.Get("X-Io-Backend"), secondary.name)
	}
	// The first refusal benched the primary (passive netErr → unhealthy):
	// later requests skip it without dialing, leaving recovery to the
	// prober's trial probes.
	if owners[0].Healthy() {
		t.Error("dead primary still marked healthy after a connection refusal")
	}
}

// 5xx from the primary fails over too, and the primary's hit count shows
// the request actually reached it before the router moved on.
func TestFailoverOn5xx(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})
	owners := r.Owners("alpha")
	primary, secondary := replicaByName(reps, owners[0].Name), replicaByName(reps, owners[1].Name)
	primary.mode.Store("error")
	resp, body := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusOK || body != "report alpha from "+secondary.name {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if primary.hits.Load() == 0 {
		t.Error("primary was never tried")
	}
	if resp.Header.Get("X-Io-Attempts") != "2" {
		t.Errorf("X-Io-Attempts = %q, want 2", resp.Header.Get("X-Io-Attempts"))
	}
}

// All owners down → 503 with a Retry-After; all owners shedding (429) →
// 429, honoring the largest upstream Retry-After.
func TestOwnersExhausted(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})
	for _, f := range reps {
		f.mode.Store("error")
	}
	resp, _ := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-5xx status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	for _, f := range reps {
		f.mode.Store("busy")
	}
	resp, _ = routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-429 status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Errorf("Retry-After = %q, want the upstream's 7", resp.Header.Get("Retry-After"))
	}
}

// A 404 from the first owner must not mask a sibling that has the
// dataset; only when every owner says 404 is 404 relayed.
func TestNotFoundDefersToSiblings(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2})
	owners := r.Owners("alpha")
	primary, secondary := replicaByName(reps, owners[0].Name), replicaByName(reps, owners[1].Name)

	primary.mode.Store("notfound")
	resp, body := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusOK || body != "report alpha from "+secondary.name {
		t.Fatalf("sibling with the dataset masked: %d %q", resp.StatusCode, body)
	}

	secondary.mode.Store("notfound")
	resp, _ = routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unanimous 404 relayed as %d", resp.StatusCode)
	}
}

// A saturated backend (in-flight cap reached) is skipped, not queued
// behind: with the primary wedged, a concurrent request lands on the
// secondary immediately.
func TestSaturatedBackendSkipped(t *testing.T) {
	r, reps := testCluster(t, 2, Config{Replication: 2, MaxInFlightPerBackend: 1, AttemptTimeout: 5 * time.Second})
	owners := r.Owners("alpha")
	primary, secondary := replicaByName(reps, owners[0].Name), replicaByName(reps, owners[1].Name)
	primary.stall = make(chan struct{})
	defer close(primary.stall)

	wedged := make(chan struct{})
	go func() {
		close(wedged)
		routerGet(t, r, "/v1/report/alpha", nil) // occupies primary's only slot
	}()
	<-wedged
	// Wait for the wedged request to actually hit the primary.
	deadline := time.Now().Add(2 * time.Second)
	for primary.hits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if primary.hits.Load() == 0 {
		t.Fatal("wedged request never reached the primary")
	}

	start := time.Now()
	resp, body := routerGet(t, r, "/v1/report/alpha", nil)
	if resp.StatusCode != http.StatusOK || body != "report alpha from "+secondary.name {
		t.Fatalf("saturated failover: %d %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("saturated failover took %v — queued instead of skipping", elapsed)
	}
}

// The gathered compare document is built by the same serve code a single
// node uses — assert byte-identity against serve.CompareDocument.
func TestCompareScatterGather(t *testing.T) {
	r, _ := testCluster(t, 3, Config{Replication: 2})
	resp, body := routerGet(t, r, "/v1/compare/alpha/beta", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status %d: %s", resp.StatusCode, body)
	}
	rowA := serve.DatasetRow{Name: "alpha", System: "summit", Generation: 3,
		Summary: serve.SummaryDoc{System: "summit", Logs: 10, Jobs: 5, Files: 100, NodeHours: 7}}
	rowB := serve.DatasetRow{Name: "beta", System: "cori", Generation: 1,
		Summary: serve.SummaryDoc{System: "cori", Logs: 4, Jobs: 2, Files: 40, NodeHours: 3}}
	want, err := serve.CompareDocument(rowA, rowB)
	if err != nil {
		t.Fatal(err)
	}
	if body != string(want) {
		t.Errorf("gathered compare differs from single-node render:\n got: %s\nwant: %s", body, want)
	}
}

// /v1/datasets unions every replica's listing.
func TestDatasetsUnion(t *testing.T) {
	r, _ := testCluster(t, 3, Config{})
	resp, body := routerGet(t, r, "/v1/datasets", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var doc serve.DatasetsDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Datasets) != 2 || doc.Datasets[0].Name != "alpha" || doc.Datasets[1].Name != "beta" {
		t.Errorf("union = %+v", doc.Datasets)
	}
}

// Ingest fans out to every owner of the dataset, in owner order.
func TestIngestFanout(t *testing.T) {
	r, reps := testCluster(t, 3, Config{Replication: 2})
	owners := r.Owners("mydata")

	req := httptest.NewRequest(http.MethodPost, "/v1/ingest",
		strings.NewReader(`{"dataset":"mydata","system":"summit","source":"/tmp/x"}`))
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var doc struct {
		Dataset  string `json:"dataset"`
		Replicas []struct {
			Replica string `json:"replica"`
			Parsed  int    `json:"parsed"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Dataset != "mydata" || len(doc.Replicas) != 2 {
		t.Fatalf("fanout doc = %+v", doc)
	}
	for i, res := range doc.Replicas {
		if res.Replica != owners[i].Name {
			t.Errorf("replica %d = %s, want owner %s", i, res.Replica, owners[i].Name)
		}
		if res.Parsed != 3 {
			t.Errorf("replica %d parsed = %d", i, res.Parsed)
		}
	}

	// A failed owner partway through → 502, not silent partial success.
	replicaByName(reps, owners[1].Name).mode.Store("error")
	req = httptest.NewRequest(http.MethodPost, "/v1/ingest",
		strings.NewReader(`{"dataset":"mydata","system":"summit","source":"/tmp/x"}`))
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("partial-failure ingest status %d, want 502", rec.Code)
	}
}

// The auth edge: unknown and missing keys are 401, a registered key
// passes, and a drained tenant bucket is 429 with Retry-After — while
// /healthz stays open.
func TestAuthAndRateLimit(t *testing.T) {
	clock := newFakeClock()
	keys := NewKeyring(clock.now)
	if err := keys.Add("s3cr3t", Tenant{Name: "acme", Rate: 1, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	r, _ := testCluster(t, 2, Config{Keyring: keys})

	if resp, _ := routerGet(t, r, "/v1/report/alpha", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("missing key status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "wrong"}); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown key status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := routerGet(t, r, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz behind auth: %d", resp.StatusCode)
	}

	// Burst of 2 passes (one via Bearer), then 429.
	if resp, _ := routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "s3cr3t"}); resp.StatusCode != http.StatusOK {
		t.Errorf("valid key status = %d", resp.StatusCode)
	}
	if resp, _ := routerGet(t, r, "/v1/report/alpha", map[string]string{"Authorization": "Bearer s3cr3t"}); resp.StatusCode != http.StatusOK {
		t.Errorf("bearer key status = %d", resp.StatusCode)
	}
	resp, _ := routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "s3cr3t"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained tenant status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 without Retry-After")
	}
	// Refill restores service.
	clock.advance(2 * time.Second)
	if resp, _ := routerGet(t, r, "/v1/report/alpha", map[string]string{"X-API-Key": "s3cr3t"}); resp.StatusCode != http.StatusOK {
		t.Errorf("refilled tenant status = %d", resp.StatusCode)
	}
}

// /v1/cluster reports replica health and per-dataset ownership.
func TestClusterStatus(t *testing.T) {
	r, _ := testCluster(t, 3, Config{Replication: 2})
	resp, body := routerGet(t, r, "/v1/cluster?dataset=alpha", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status %d", resp.StatusCode)
	}
	var doc struct {
		Replication int `json:"replication"`
		Replicas    []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
			Breaker string `json:"breaker"`
		} `json:"replicas"`
		Owners []string `json:"owners"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Replication != 2 || len(doc.Replicas) != 3 || len(doc.Owners) != 2 {
		t.Fatalf("cluster doc = %+v", doc)
	}
	for _, rep := range doc.Replicas {
		if !rep.Healthy || rep.Breaker != "closed" {
			t.Errorf("replica %s: healthy=%v breaker=%s", rep.Name, rep.Healthy, rep.Breaker)
		}
	}
}

// The active prober bens a dead replica and restores it when it returns:
// end to end through Start/Close.
func TestProberBenchesAndRestores(t *testing.T) {
	// One real readyz-answering backend, probed fast.
	var ready atomic.Bool
	ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r, err := NewRouter(Config{
		Replicas:      []string{ts.URL},
		Replication:   1,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()

	be := r.Owners("anything")[0]
	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for be.Healthy() != want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if be.Healthy() != want {
			t.Fatalf("backend never became %s", what)
		}
	}
	waitFor(true, "healthy")
	ready.Store(false)
	waitFor(false, "benched after readyz went 503")
	ready.Store(true)
	waitFor(true, "restored after readyz recovered")
}
