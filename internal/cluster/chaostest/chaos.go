// Package chaostest is the cluster's referee: a deterministic chaos
// harness that stands up in-process ioserved replicas behind a router,
// then kills, stalls, and restores them on a seeded schedule while
// concurrent clients verify every answer. It reuses the fault-schedule
// discipline of internal/iosim/faults — explicit windows, seed-derived
// membership — so a failing run reproduces from its seed.
//
// The correctness contract it referees is absolute: a router response
// with status 200 must be byte-identical to the single-node rendering of
// the same dataset, no matter which replicas were dark when it was
// served. Errors are allowed while faults are active (bounded below by a
// liveness floor), and after the schedule ends the cluster must return
// to sustained zero-error service.
package chaostest

import (
	"net/http"
	"sync/atomic"
	"time"

	"iolayers/internal/iosim/faults"
)

// ValveMode is what a valve does to traffic passing through it.
type ValveMode int32

// The three valve positions.
const (
	// Pass: traffic flows to the replica untouched.
	Pass ValveMode = iota
	// Down: every connection is aborted immediately — the replica looks
	// killed (connection reset) without tearing down the listener.
	Down
	// Stall: requests hang until the client gives up — the replica looks
	// wedged (accepting connections, answering nothing).
	Stall
)

// Valve sits between the router and one replica and simulates that
// replica's death or wedging on command. Aborting via http.ErrAbortHandler
// resets the connection mid-request, which is exactly what a kill -9
// looks like from the client side.
type Valve struct {
	mode atomic.Int32
}

// Set moves the valve.
func (v *Valve) Set(m ValveMode) { v.mode.Store(int32(m)) }

// Mode reads the valve's position.
func (v *Valve) Mode() ValveMode { return ValveMode(v.mode.Load()) }

// Wrap interposes the valve in front of a replica's handler.
func (v *Valve) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch v.Mode() {
		case Down:
			panic(http.ErrAbortHandler)
		case Stall:
			<-r.Context().Done() // hang until the client abandons us
			panic(http.ErrAbortHandler)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// Controller drives a set of valves from a faults.Schedule: window times
// are interpreted as wall-clock seconds from Start, and per-replica
// membership in each window comes from the schedule's seed via
// faults.Injector.Affected — the same deterministic membership the
// simulator uses. Outage windows slam the valve to Down; Slowdown and
// MetaStorm windows set Stall (a chaos valve cannot serve "slower", so
// every degradation that is not an outage manifests as a wedge).
type Controller struct {
	sched  *faults.Schedule
	inj    *faults.Injector
	valves []*Valve
	tick   time.Duration

	stop chan struct{}
	done chan struct{}
}

// NewController binds a schedule to the valves. tick is the scan cadence
// (how quickly a window edge takes effect); 0 means 5ms.
func NewController(sched *faults.Schedule, valves []*Valve, tick time.Duration) *Controller {
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	return &Controller{
		sched:  sched,
		inj:    faults.NewInjector(sched, "cluster", len(valves)),
		valves: valves,
		tick:   tick,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Affected reports whether replica i participates in window wi — exposed
// so the referee can precompute the fault plan it is about to enforce.
func (c *Controller) Affected(wi, i int) bool { return c.inj.Affected(wi, i) }

// Start begins enforcing the schedule, with window time zero = now.
// Returns the time used as zero.
func (c *Controller) Start() time.Time {
	start := time.Now()
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.tick)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case now := <-ticker.C:
				c.apply(now.Sub(start).Seconds())
			}
		}
	}()
	return start
}

// apply resolves every valve's position at schedule time t.
func (c *Controller) apply(t float64) {
	for i, v := range c.valves {
		mode := Pass
		for wi, w := range c.sched.Windows {
			if t < w.Start || t >= w.End || !c.inj.Affected(wi, i) {
				continue
			}
			if w.Kind == faults.Outage {
				mode = Down
				break // Down dominates
			}
			mode = Stall
		}
		v.Set(mode)
	}
}

// Stop ends enforcement and restores every valve to Pass.
func (c *Controller) Stop() {
	close(c.stop)
	<-c.done
	for _, v := range c.valves {
		v.Set(Pass)
	}
}

// After reports whether the schedule has no window active or pending at
// time t (seconds from Start) — i.e. the chaos is over.
func (c *Controller) After(t float64) bool {
	for _, w := range c.sched.Windows {
		if t < w.End {
			return false
		}
	}
	return true
}

// FindSeed searches for a schedule seed under which every window affects
// exactly one of n replicas — the harness's "at most one replica down at
// a time (per window)" guarantee — and at least two distinct replicas are
// hit across the schedule, so failover is actually exercised in both
// directions. Membership is a pure function of (seed, layer, window,
// replica), so the returned seed reproduces the same fault plan forever.
func FindSeed(sched faults.Schedule, n int) (uint64, bool) {
	for seed := uint64(1); seed < 10_000; seed++ {
		sched.Seed = seed
		inj := faults.NewInjector(&sched, "cluster", n)
		hit := map[int]bool{}
		ok := true
		for wi := range sched.Windows {
			count, who := 0, -1
			for i := 0; i < n; i++ {
				if inj.Affected(wi, i) {
					count++
					who = i
				}
			}
			if count != 1 {
				ok = false
				break
			}
			hit[who] = true
		}
		if ok && len(hit) >= 2 {
			return seed, true
		}
	}
	return 0, false
}
