package chaostest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iolayers/internal/cluster"
	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/faults"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/serve"
	"iolayers/internal/units"
)

// corpusDir writes n small hand-built Summit logs into a temp directory,
// seeded by salt so each dataset's corpus is distinct.
func corpusDir(t *testing.T, n, salt int) string {
	t.Helper()
	dir := t.TempDir()
	sys := systems.NewSummit()
	for i := 0; i < n; i++ {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: uint64(1000 + salt*100 + i), UserID: uint64(1 + i%3), NProcs: 8,
			StartTime: int64(i) * 3600, EndTime: int64(i)*3600 + 1800,
			Metadata: map[string]string{"domain": "Physics"},
		})
		c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(uint64(salt*1000+i), 7)))
		c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/phys/out%d_%d.h5", salt, i), 0, units.MiB, 0)
		c.Read(darshan.ModuleSTDIO, "/mnt/bb/phys/run.log", 0, 64*units.KiB, 0)
		path := filepath.Join(dir, fmt.Sprintf("job%05d.darshan", i))
		if err := logfmt.WriteFile(path, rt.Finalize()); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// replica is one in-process ioserved: a store, a server, and the valve
// the chaos controller kills it through.
type replica struct {
	store *serve.Store
	ts    *httptest.Server
	valve *Valve
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	store := serve.NewStore()
	srv := serve.New(serve.Config{Store: store})
	valve := &Valve{}
	ts := httptest.NewServer(valve.Wrap(srv.Handler()))
	t.Cleanup(ts.Close)
	return &replica{store: store, ts: ts, valve: valve}
}

// The referee. Three in-process replicas behind a router, datasets
// ingested through the router's fan-out, then a seeded fault schedule
// kills and stalls replicas while concurrent clients hammer the query
// API. The verdict:
//
//  1. Zero wrong answers, ever: every 200 body is byte-identical to the
//     single-node rendering of that dataset.
//  2. Bounded errors during faults: with replication 2 and one replica
//     at a time faulted, most queries still succeed via failover.
//  3. Full recovery: once the schedule ends and the valves reopen, the
//     cluster returns to sustained error-free service.
func TestClusterSurvivesSeededChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is a multi-second soak")
	}
	const nReplicas = 3
	datasets := map[string]string{
		"alpha": corpusDir(t, 4, 1),
		"beta":  corpusDir(t, 3, 2),
		"gamma": corpusDir(t, 5, 3),
	}

	// Single-node truth: one store holding every dataset, rendered by the
	// same code paths the replicas use.
	truth := serve.NewStore()
	sys := systems.NewSummit()
	for name, dir := range datasets {
		if _, _, err := truth.Ingest(context.Background(), name, sys, dir, core.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	truthSrv := httptest.NewServer(serve.New(serve.Config{Store: truth}).Handler())
	defer truthSrv.Close()
	want := map[string]string{} // URL path → expected body
	paths := []string{}
	for name := range datasets {
		paths = append(paths, "/v1/report/"+name+"?format=json")
	}
	paths = append(paths, "/v1/compare/alpha/beta", "/v1/compare/beta/gamma")
	client := &http.Client{Timeout: 5 * time.Second}
	for _, p := range paths {
		resp, err := client.Get(truthSrv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("truth %s: %d %s", p, resp.StatusCode, body)
		}
		want[p] = string(body)
	}

	// The cluster under test: fast failover timings so the whole soak
	// fits in a few seconds.
	replicas := make([]*replica, nReplicas)
	valves := make([]*Valve, nReplicas)
	var urls []string
	for i := range replicas {
		replicas[i] = newReplica(t)
		valves[i] = replicas[i].valve
		urls = append(urls, replicas[i].ts.URL)
	}
	router, err := cluster.NewRouter(cluster.Config{
		Replicas:              urls,
		Replication:           2,
		AttemptTimeout:        200 * time.Millisecond,
		IngestTimeout:         30 * time.Second,
		FailoverBackoff:       2 * time.Millisecond,
		ProbeInterval:         25 * time.Millisecond,
		ProbeTimeout:          50 * time.Millisecond,
		MaxInFlightPerBackend: 16,
		Breaker: cluster.BreakerConfig{
			Threshold: 2,
			OpenBase:  50 * time.Millisecond,
			OpenMax:   400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Close()
	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()

	// Ingest every dataset through the router: the fan-out must land each
	// one on both of its owners.
	for name, dir := range datasets {
		body := fmt.Sprintf(`{"dataset":%q,"system":"summit","source":%q}`, name, dir)
		resp, err := client.Post(routerTS.URL+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s through router: %d %s", name, resp.StatusCode, out)
		}
		if got := strings.Count(string(out), `"replica"`); got != 2 {
			t.Fatalf("ingest %s landed on %d replicas, want 2: %s", name, got, out)
		}
	}

	fetch := func(p string) (int, string, error) {
		resp, err := client.Get(routerTS.URL + p)
		if err != nil {
			return 0, "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), err
	}

	// Phase 1 — calm before: everything answers and matches truth.
	for _, p := range paths {
		status, body, err := fetch(p)
		if err != nil || status != http.StatusOK {
			t.Fatalf("pre-chaos %s: status %d err %v", p, status, err)
		}
		if body != want[p] {
			t.Fatalf("pre-chaos %s: body differs from single-node truth", p)
		}
	}

	// Phase 2 — chaos. The schedule: three windows over ~1.5s of wall
	// time — outage, stall (a wedged replica, via a MetaStorm window),
	// outage — each hitting exactly one replica (FindSeed guarantees it),
	// with at least two distinct replicas hit across the run.
	sched := faults.Schedule{
		Windows: []faults.Window{
			{Kind: faults.Outage, Start: 0.10, End: 0.55, ServerFrac: 0.34},
			{Kind: faults.MetaStorm, Start: 0.65, End: 1.05, ServerFrac: 0.34, LatencyFactor: 10},
			{Kind: faults.Outage, Start: 1.10, End: 1.50, ServerFrac: 0.34},
		},
	}
	seed, ok := FindSeed(sched, nReplicas)
	if !ok {
		t.Fatal("no seed gives one-replica-per-window membership")
	}
	sched.Seed = seed
	ctrl := NewController(&sched, valves, 5*time.Millisecond)
	t.Logf("chaos seed %d", seed)
	for wi, w := range sched.Windows {
		for i := 0; i < nReplicas; i++ {
			if ctrl.Affected(wi, i) {
				t.Logf("window %d (%v %.2fs–%.2fs) hits replica %d", wi, w.Kind, w.Start, w.End, i)
			}
		}
	}

	var attempts, successes, wrong atomic.Int64
	ctrl.Start()
	var wg sync.WaitGroup
	stopClients := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopClients:
					return
				default:
				}
				p := paths[(g+i)%len(paths)]
				status, body, err := fetch(p)
				attempts.Add(1)
				if err != nil || status != http.StatusOK {
					continue // an error during chaos is allowed, a lie is not
				}
				successes.Add(1)
				if body != want[p] {
					wrong.Add(1)
					t.Errorf("chaos answer for %s differs from truth (status 200)", p)
				}
			}
		}(g)
	}
	time.Sleep(1700 * time.Millisecond) // past the last window's end
	close(stopClients)
	wg.Wait()
	ctrl.Stop()

	t.Logf("chaos phase: %d attempts, %d successes, %d wrong",
		attempts.Load(), successes.Load(), wrong.Load())
	if wrong.Load() != 0 {
		t.Fatalf("%d byte-divergent 200s during chaos", wrong.Load())
	}
	if a, s := attempts.Load(), successes.Load(); s*4 < a {
		t.Errorf("only %d/%d queries succeeded during chaos — failover is not carrying the load", s, a)
	}

	// Phase 3 — recovery: with the valves open, the cluster must settle
	// back to sustained zero-error, byte-identical service. Three full
	// clean sweeps in a row, within a deadline generous enough for the
	// prober and breakers to re-admit everyone.
	deadline := time.Now().Add(15 * time.Second)
	clean := 0
	for clean < 3 {
		if time.Now().After(deadline) {
			t.Fatal("cluster did not recover to error-free service in time")
		}
		ok := true
		for _, p := range paths {
			status, body, err := fetch(p)
			if err != nil || status != http.StatusOK || body != want[p] {
				ok = false
				break
			}
		}
		if ok {
			clean++
		} else {
			clean = 0
			time.Sleep(50 * time.Millisecond)
		}
	}

	// And the listing is whole again: every dataset present.
	status, body, err := fetch("/v1/datasets")
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-chaos datasets: %d %v", status, err)
	}
	for name := range datasets {
		if !bytes.Contains([]byte(body), []byte(`"name": "`+name+`"`)) {
			t.Errorf("post-chaos listing is missing %q", name)
		}
	}
}

// The valve itself: Down aborts, Stall hangs until the client quits,
// Pass restores — the mechanics every chaos window is built from.
func TestValveMechanics(t *testing.T) {
	valve := &Valve{}
	ts := httptest.NewServer(valve.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "alive")
	})))
	defer ts.Close()
	client := &http.Client{Timeout: 300 * time.Millisecond}

	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("pass mode: %v", err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "alive" {
			t.Fatalf("pass body %q", body)
		}
	}

	valve.Set(Down)
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("down valve served a response")
	}

	valve.Set(Stall)
	start := time.Now()
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("stalled valve served a response")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("stall gave up after %v — it aborted instead of hanging", elapsed)
	}

	valve.Set(Pass)
	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("restored valve: %v", err)
	} else {
		resp.Body.Close()
	}
}
