package cluster

import (
	"math/rand/v2"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The three breaker states.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the open interval elapses.
	BreakerOpen
	// BreakerHalfOpen: one trial request at a time probes the backend;
	// success closes the breaker, failure re-opens it with a longer
	// interval.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker defaults, chosen for a router fronting query replicas: trip
// fast (a dark replica fails instantly and repeatedly), retry soon (most
// flaps are restarts measured in seconds), and cap the backoff so a
// recovered replica is never benched for long.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerOpenBase  = 500 * time.Millisecond
	DefaultBreakerOpenMax   = 15 * time.Second
)

// BreakerConfig configures a Breaker. The zero value means defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip a closed breaker
	// (0 means DefaultBreakerThreshold).
	Threshold int
	// OpenBase is the first open interval; each consecutive re-open
	// doubles it (0 means DefaultBreakerOpenBase).
	OpenBase time.Duration
	// OpenMax caps the doubling (0 means DefaultBreakerOpenMax).
	OpenMax time.Duration
	// Jitter returns a uniform value in [0, 1) used to spread open
	// intervals over [1/2, 1) of the nominal duration, so a fleet of
	// breakers tripped by the same outage does not retry in lockstep.
	// Nil means math/rand/v2; tests inject a deterministic source.
	Jitter func() float64
	// Now is the clock (nil means time.Now); tests inject a fake.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.OpenBase <= 0 {
		c.OpenBase = DefaultBreakerOpenBase
	}
	if c.OpenMax <= 0 {
		c.OpenMax = DefaultBreakerOpenMax
	}
	if c.Jitter == nil {
		c.Jitter = rand.Float64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker: Allow gates each request, Success and
// Failure report outcomes. Safe for concurrent use. The state machine is
// the classic three-state one; the only liberty taken is that a Success
// reported from any state closes the breaker immediately — a request (or
// active health probe) that genuinely reached the backend is the
// strongest evidence available, stronger than waiting out the interval.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int       // consecutive failures while closed
	trips     int       // consecutive opens without an intervening close
	openUntil time.Time // when an open breaker admits its next trial
	probing   bool      // a half-open trial is in flight
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed now. A true return from an
// open or half-open breaker claims the single trial slot: the caller must
// report the outcome with Success or Failure, which releases it.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a request that reached the backend and got a coherent
// answer. Closes the breaker from any state and resets the backoff.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails = 0
	b.trips = 0
	b.state = BreakerClosed
}

// Failure reports a request that could not get an answer (network error,
// timeout, 5xx). Trips a closed breaker at the threshold and re-opens a
// half-open one with doubled backoff; a failure reported while already
// open (a straggler from before the trip) is absorbed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	}
}

// trip opens the breaker for a jittered interval in [d/2, d), where d
// doubles with each consecutive open up to OpenMax. Called with mu held.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.fails = 0
	d := b.cfg.OpenBase
	for i := 0; i < b.trips && d < b.cfg.OpenMax; i++ {
		d *= 2
	}
	if d > b.cfg.OpenMax {
		d = b.cfg.OpenMax
	}
	b.trips++
	jittered := d/2 + time.Duration(b.cfg.Jitter()*float64(d/2))
	b.openUntil = b.cfg.Now().Add(jittered)
}

// State returns the breaker's current position (an open breaker whose
// interval has elapsed still reports open until an Allow promotes it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
