package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrUnknownKey is returned by Keyring.Check for a key no tenant owns.
var ErrUnknownKey = errors.New("cluster: unknown API key")

// Tenant is one paying (or at least accounted) consumer of the cluster:
// a name plus a token-bucket rate limit applied at the router's edge.
type Tenant struct {
	// Name identifies the tenant in metrics and errors.
	Name string
	// Rate is the sustained request rate in requests/second.
	Rate float64
	// Burst is the bucket depth — how many requests may land at once
	// after an idle period.
	Burst float64
}

// bucket is one tenant's live token bucket.
type bucket struct {
	Tenant
	tokens float64
	last   time.Time
}

// Keyring maps API keys to tenants and enforces each tenant's token
// bucket. A nil or empty Keyring means open access (the router skips the
// auth edge entirely). Safe for concurrent use.
type Keyring struct {
	now func() time.Time

	mu   sync.Mutex
	keys map[string]*bucket
}

// NewKeyring builds an empty keyring. now is the clock (nil means
// time.Now); tests inject a fake for deterministic refill.
func NewKeyring(now func() time.Time) *Keyring {
	if now == nil {
		now = time.Now
	}
	return &Keyring{now: now, keys: map[string]*bucket{}}
}

// Add registers key for tenant t. Multiple keys may share a tenant name
// but each key gets its own bucket (a leaked key can be revoked without
// re-keying the tenant).
func (k *Keyring) Add(key string, t Tenant) error {
	if key == "" {
		return fmt.Errorf("cluster: empty API key")
	}
	if t.Name == "" {
		return fmt.Errorf("cluster: API key needs a tenant name")
	}
	if t.Rate <= 0 || math.IsNaN(t.Rate) || math.IsInf(t.Rate, 0) {
		return fmt.Errorf("cluster: tenant %q rate %v must be a positive rate/s", t.Name, t.Rate)
	}
	if t.Burst < 1 {
		t.Burst = 1
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.keys[key]; dup {
		return fmt.Errorf("cluster: duplicate API key")
	}
	k.keys[key] = &bucket{Tenant: t, tokens: t.Burst, last: k.now()}
	return nil
}

// Len returns the number of registered keys.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.keys)
}

// Check spends one token from key's bucket. It returns the tenant name
// and, when the bucket is empty, how long until the next token (the
// Retry-After the caller should surface with its 429). ErrUnknownKey
// means the key is not registered at all.
func (k *Keyring) Check(key string) (tenant string, retryAfter time.Duration, err error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	b, ok := k.keys[key]
	if !ok {
		return "", 0, ErrUnknownKey
	}
	now := k.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.Burst, b.tokens+dt*b.Rate)
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / b.Rate * float64(time.Second))
		return b.Name, wait, nil
	}
	b.tokens--
	return b.Name, 0, nil
}

// ParseKeySpec parses one "key=tenant:rate:burst" spec (the -apikey
// flag). rate is requests/second; burst defaults to max(rate, 1) when the
// third field is omitted.
func ParseKeySpec(spec string) (string, Tenant, error) {
	key, rest, ok := strings.Cut(spec, "=")
	if !ok || key == "" || rest == "" {
		return "", Tenant{}, fmt.Errorf("cluster: bad key spec %q, want key=tenant:rate[:burst]", spec)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", Tenant{}, fmt.Errorf("cluster: bad key spec %q, want key=tenant:rate[:burst]", spec)
	}
	t := Tenant{Name: parts[0]}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return "", Tenant{}, fmt.Errorf("cluster: bad rate in key spec %q: %v", spec, err)
	}
	t.Rate = rate
	t.Burst = math.Max(rate, 1)
	if len(parts) == 3 {
		burst, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return "", Tenant{}, fmt.Errorf("cluster: bad burst in key spec %q: %v", spec, err)
		}
		t.Burst = burst
	}
	return key, t, nil
}

// LoadKeyFile reads key specs into the keyring from path: one
// "key=tenant:rate[:burst]" per line, blank lines and #-comments ignored.
func (k *Keyring) LoadKeyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cluster: opening key file: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, t, err := ParseKeySpec(text)
		if err != nil {
			return fmt.Errorf("cluster: %s:%d: %w", path, line, err)
		}
		if err := k.Add(key, t); err != nil {
			return fmt.Errorf("cluster: %s:%d: %w", path, line, err)
		}
	}
	return sc.Err()
}
