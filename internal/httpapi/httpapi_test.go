package httpapi

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeNotFound, `no dataset "x"`)
	if rec.Code != 404 || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("status %d, content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	env, ok := DecodeError(rec.Body.Bytes())
	if !ok || env.Error.Code != CodeNotFound || env.Error.RetryAfterMS != 0 {
		t.Errorf("decoded %+v, ok=%v", env, ok)
	}
	if !strings.HasSuffix(rec.Body.String(), "\n") {
		t.Error("envelope body missing trailing newline")
	}
}

func TestWriteErrorRetryFloorsAndRounds(t *testing.T) {
	// Sub-second hints floor to 1s in both the header and the body.
	rec := httptest.NewRecorder()
	WriteErrorRetry(rec, 429, CodeOverCapacity, "shed", 200*time.Millisecond)
	env, _ := DecodeError(rec.Body.Bytes())
	if rec.Header().Get("Retry-After") != "1" || env.Error.RetryAfterMS != 1000 {
		t.Errorf("floor: header %q, body %d", rec.Header().Get("Retry-After"), env.Error.RetryAfterMS)
	}
	// Fractional seconds round the header up; the body keeps the ms.
	rec = httptest.NewRecorder()
	WriteErrorRetry(rec, 429, CodeRateLimited, "wait", 1500*time.Millisecond)
	env, _ = DecodeError(rec.Body.Bytes())
	if rec.Header().Get("Retry-After") != "2" || env.Error.RetryAfterMS != 1500 {
		t.Errorf("round: header %q, body %d", rec.Header().Get("Retry-After"), env.Error.RetryAfterMS)
	}
}

func TestDecodeErrorRejectsNonEnvelopes(t *testing.T) {
	for _, body := range []string{
		``, `not json`, `{}`, `{"error":"flat legacy string"}`,
		`{"error":{"message":"code missing"}}`, `<html>proxy page</html>`,
	} {
		if _, ok := DecodeError([]byte(body)); ok {
			t.Errorf("%q decoded as an envelope", body)
		}
	}
}

func TestQueryTaxonomy(t *testing.T) {
	r := httptest.NewRequest("GET", "/x?format=json&section=table2", nil)
	params, err := Query(r, "format", "section")
	if err != nil || params["format"] != "json" || params["section"] != "table2" {
		t.Errorf("params %v, err %v", params, err)
	}
	// The first unknown (sorted) is named, along with the allowed set.
	r = httptest.NewRequest("GET", "/x?zz=1&aa=2&format=json", nil)
	if _, err := Query(r, "format"); err == nil ||
		!strings.Contains(err.Error(), `"aa"`) || !strings.Contains(err.Error(), "format") {
		t.Errorf("unknown-param error = %v", err)
	}
	// No allowed params at all says so.
	r = httptest.NewRequest("GET", "/x?any=1", nil)
	if _, err := Query(r, nil...); err == nil || !strings.Contains(err.Error(), "none") {
		t.Errorf("param-free error = %v", err)
	}
}

func TestBuildIndexSorts(t *testing.T) {
	doc := BuildIndex("svc", []Route{
		{Path: "/v1/z", Methods: []string{"GET"}},
		{Path: "/v1/a", Methods: []string{"POST"}},
		{Path: "/v1/a", Methods: []string{"GET"}},
	})
	if doc.SchemaVersion != IndexSchemaVersion || doc.Service != "svc" {
		t.Errorf("header %+v", doc)
	}
	got := make([]string, len(doc.Routes))
	for i, r := range doc.Routes {
		got[i] = r.Path + ":" + r.Methods[0]
	}
	want := "/v1/a:GET,/v1/a:POST,/v1/z:GET"
	if strings.Join(got, ",") != want {
		t.Errorf("sorted %v, want %s", got, want)
	}
}

func TestCodesEnumerationComplete(t *testing.T) {
	seen := map[Code]bool{}
	for _, c := range Codes() {
		if seen[c] {
			t.Errorf("code %q listed twice", c)
		}
		seen[c] = true
	}
	if len(seen) != 11 {
		t.Errorf("Codes() lists %d codes; update it (and docs/api.md) when the taxonomy grows", len(seen))
	}
}
