// Package httpapi is the HTTP contract shared by ioserved and the
// iorouter cluster: the structured JSON error envelope every non-200
// carries, the query-parameter taxonomy (unknown parameters are
// rejected, not ignored), and the machine-readable route index served at
// GET /v1. Keeping the contract in one package means a client that can
// parse one service's errors can parse the other's — including the
// router itself, which classifies upstream envelopes when failing over.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Code classifies an error for machine consumption. Codes are coarser
// than messages and stable across releases: clients branch on the code,
// humans read the message.
type Code string

// The error-code taxonomy. Every non-200 from serve or cluster carries
// exactly one of these.
const (
	// CodeBadRequest: the request itself is malformed — bad dataset name,
	// undecodable body, missing required field.
	CodeBadRequest Code = "bad_request"
	// CodeBadParam: a query parameter is unknown or has an invalid value.
	CodeBadParam Code = "bad_param"
	// CodeNotFound: the named dataset does not exist.
	CodeNotFound Code = "not_found"
	// CodeUnauthorized: missing or unknown API key.
	CodeUnauthorized Code = "unauthorized"
	// CodeRateLimited: the tenant exhausted its token bucket (429).
	CodeRateLimited Code = "rate_limited"
	// CodeOverCapacity: the service is shedding load — a full concurrency
	// gate or every owner answering 429.
	CodeOverCapacity Code = "over_capacity"
	// CodeTimeout: the query exceeded the server-side deadline (the
	// 408-class failure, reported as 503 + Retry-After).
	CodeTimeout Code = "timeout"
	// CodeUnavailable: the service (or every owner of the dataset) is not
	// ready to answer; retry later.
	CodeUnavailable Code = "unavailable"
	// CodeUpstreamFailed: the router could not complete a fan-out against
	// its replicas (502).
	CodeUpstreamFailed Code = "upstream_failed"
	// CodeIngestFailed: the ingest source was readable as a request but
	// could not be folded (422).
	CodeIngestFailed Code = "ingest_failed"
	// CodeInternal: a bug — marshal failures and other should-not-happen
	// paths.
	CodeInternal Code = "internal"
)

// Codes enumerates the complete error-code taxonomy, in the order the
// constants are declared. Documentation drift tests iterate this — a
// code added above without a docs/api.md row fails the build.
func Codes() []Code {
	return []Code{
		CodeBadRequest, CodeBadParam, CodeNotFound, CodeUnauthorized,
		CodeRateLimited, CodeOverCapacity, CodeTimeout, CodeUnavailable,
		CodeUpstreamFailed, CodeIngestFailed, CodeInternal,
	}
}

// ErrorDetail is the inner object of the error envelope.
type ErrorDetail struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header in milliseconds; zero
	// means the client gains nothing by retrying on a schedule.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the body of every non-200 response:
//
//	{"error":{"code":"not_found","message":"no dataset \"x\""}}
//
// compactly marshaled with a trailing newline.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// WriteError writes the envelope for an error with no retry hint.
func WriteError(w http.ResponseWriter, status int, code Code, msg string) {
	writeEnvelope(w, status, ErrorDetail{Code: code, Message: msg})
}

// WriteErrorRetry writes the envelope for a retryable error, setting the
// Retry-After header (whole seconds, rounded up, at least 1) and the
// envelope's retry_after_ms from the same duration.
func WriteErrorRetry(w http.ResponseWriter, status int, code Code, msg string, retryAfter time.Duration) {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeEnvelope(w, status, ErrorDetail{Code: code, Message: msg, RetryAfterMS: retryAfter.Milliseconds()})
}

func writeEnvelope(w http.ResponseWriter, status int, d ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, _ := json.Marshal(ErrorEnvelope{Error: d})
	w.Write(append(data, '\n'))
}

// DecodeError parses a response body as the error envelope. ok reports
// whether the body really is one — a code is required, so flat legacy
// bodies and HTML proxy pages both fail the decode.
func DecodeError(body []byte) (ErrorEnvelope, bool) {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return ErrorEnvelope{}, false
	}
	if env.Error.Code == "" {
		return ErrorEnvelope{}, false
	}
	return env, true
}

// Query returns a request's query parameters after enforcing the
// parameter taxonomy: any parameter outside allowed is an error (the
// caller turns it into a 400 CodeBadParam). Unknown-parameter rejection
// is deliberate — a typoed ?fromat= silently ignored is a client bug
// allowed to ship.
func Query(r *http.Request, allowed ...string) (map[string]string, error) {
	q := r.URL.Query()
	var unknown []string
	for k := range q {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		allowedDesc := "none"
		if len(allowed) > 0 {
			allowedDesc = strings.Join(allowed, ", ")
		}
		return nil, fmt.Errorf("unknown query parameter %q (allowed: %s)", unknown[0], allowedDesc)
	}
	out := make(map[string]string, len(q))
	for k, vs := range q {
		if len(vs) > 0 {
			out[k] = vs[0]
		}
	}
	return out, nil
}

// Route describes one endpoint in the GET /v1 index.
type Route struct {
	Path    string   `json:"path"`
	Methods []string `json:"methods"`
	// Params lists the accepted query parameters; anything else is
	// rejected with a bad_param envelope.
	Params []string `json:"params,omitempty"`
	// SchemaVersion is the schema of the endpoint's JSON document; zero
	// for plain-text endpoints.
	SchemaVersion int `json:"schema_version,omitempty"`
}

// IndexDoc is the GET /v1 response: the service's discoverable surface.
type IndexDoc struct {
	SchemaVersion int     `json:"schema_version"`
	Service       string  `json:"service"`
	Routes        []Route `json:"routes"`
}

// IndexSchemaVersion stamps the route-index document itself.
const IndexSchemaVersion = 1

// BuildIndex assembles the route index with routes sorted by path (then
// first method), so the document is deterministic regardless of
// registration order.
func BuildIndex(service string, routes []Route) IndexDoc {
	sorted := append([]Route(nil), routes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Path != sorted[j].Path {
			return sorted[i].Path < sorted[j].Path
		}
		return sorted[i].Methods[0] < sorted[j].Methods[0]
	})
	return IndexDoc{SchemaVersion: IndexSchemaVersion, Service: service, Routes: sorted}
}
