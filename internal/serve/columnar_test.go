package serve

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
	"iolayers/internal/units"
)

// corpusArchive writes n small Summit logs into a campaign archive and
// returns its path (inside a fresh temp dir, so tests can plant siblings).
func corpusArchive(t *testing.T, dir string, n int) string {
	t.Helper()
	sys := systems.NewSummit()
	path := filepath.Join(dir, "campaign.dgar")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := logfmt.NewArchiveWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: uint64(2000 + i), UserID: uint64(1 + i%3), NProcs: 8,
			StartTime: int64(i) * 3600, EndTime: int64(i)*3600 + 1800,
			Metadata: map[string]string{"domain": "Chemistry"},
		})
		c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(uint64(i), 11)))
		c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/chem/out%d.h5", i), 0, units.MiB, 0)
		c.Read(darshan.ModuleSTDIO, "/mnt/bb/chem/run.log", 0, 64*units.KiB, 0)
		if err := aw.Append(rt.Finalize()); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStoreIngestColumnar checks a .dgc source routes through the columnar
// fold and publishes a report byte-identical to the row-oriented archive.
func TestStoreIngestColumnar(t *testing.T) {
	dir := t.TempDir()
	archive := corpusArchive(t, dir, 4)
	columnar := filepath.Join(dir, "other.dgc")
	if _, err := core.ConvertArchive(context.Background(), archive, columnar, core.ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	sys := systems.NewSummit()
	st := NewStore()

	row, rowRes, err := st.Ingest(context.Background(), "row", sys, archive, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	col, colRes, err := st.Ingest(context.Background(), "col", sys, columnar, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rowRes.Parsed != 4 || colRes.Parsed != 4 {
		t.Fatalf("parsed row=%d col=%d, want 4", rowRes.Parsed, colRes.Parsed)
	}
	if report.Everything(row.Report) != report.Everything(col.Report) {
		t.Error("columnar ingest rendered a different report than the archive")
	}
}

// TestStoreArchivePrefersColumnarSibling checks the sibling rule: an
// archive with an up-to-date .dgc twin ingests through the twin, while a
// stale twin (older than the archive) is ignored.
func TestStoreArchivePrefersColumnarSibling(t *testing.T) {
	dir := t.TempDir()
	archive := corpusArchive(t, dir, 3)
	// The sibling deliberately holds fewer logs than the archive so the
	// published Summary.Logs reveals which file was actually read.
	shortDir := t.TempDir()
	short := corpusArchive(t, shortDir, 1)
	sibling := filepath.Join(dir, "campaign.dgc")
	if _, err := core.ConvertArchive(context.Background(), short, sibling, core.ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	sys := systems.NewSummit()

	fresh := time.Now().Add(time.Hour)
	if err := os.Chtimes(sibling, fresh, fresh); err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	snap, _, err := st.Ingest(context.Background(), "ds", sys, archive, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Report.Summary.Logs != 1 {
		t.Errorf("fresh sibling ignored: %d logs folded, want the sibling's 1", snap.Report.Summary.Logs)
	}

	stale := time.Now().Add(-time.Hour)
	if err := os.Chtimes(sibling, stale, stale); err != nil {
		t.Fatal(err)
	}
	st = NewStore()
	snap, _, err = st.Ingest(context.Background(), "ds", sys, archive, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Report.Summary.Logs != 3 {
		t.Errorf("stale sibling used: %d logs folded, want the archive's 3", snap.Report.Summary.Logs)
	}

	// Regression: equal mtimes mean doubt, and doubt means the archive.
	// On a coarse-mtime filesystem a regenerated archive can land in the
	// same second as its outdated .dgc twin; an at-least-as-new rule would
	// silently serve the stale conversion.
	afi, err := os.Stat(archive)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(sibling, afi.ModTime(), afi.ModTime()); err != nil {
		t.Fatal(err)
	}
	st = NewStore()
	snap, _, err = st.Ingest(context.Background(), "ds", sys, archive, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Report.Summary.Logs != 3 {
		t.Errorf("equal-mtime sibling shadowed the archive: %d logs folded, want 3", snap.Report.Summary.Logs)
	}
}
