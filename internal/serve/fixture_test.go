package serve

import (
	"context"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/report"
)

// corpusHash digests every log in dir, in name order.
func corpusHash(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(name))
		h.Write(data)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// The fixture contract: same (system, n, seed) → byte-identical corpus →
// byte-identical report, on any host, in any process. This is what lets
// N replicas boot the same fixture independently and still satisfy the
// router's byte-identity contract.
func TestWriteFixtureDeterministic(t *testing.T) {
	sys := systems.NewSummit()
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := WriteFixture(dirA, sys, 10, 42); err != nil {
		t.Fatal(err)
	}
	if err := WriteFixture(dirB, sys, 10, 42); err != nil {
		t.Fatal(err)
	}
	if corpusHash(t, dirA) != corpusHash(t, dirB) {
		t.Fatal("two fixture runs with the same seed produced different bytes")
	}

	// A different seed must actually change the corpus.
	dirC := t.TempDir()
	if err := WriteFixture(dirC, sys, 10, 43); err != nil {
		t.Fatal(err)
	}
	if corpusHash(t, dirA) == corpusHash(t, dirC) {
		t.Fatal("seed 42 and 43 produced identical corpora")
	}

	// The corpus ingests cleanly and renders a report touching both layers.
	store := NewStore()
	snap, res, err := store.Ingest(context.Background(), "fx", sys, dirA, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != 10 || res.Failed != 0 {
		t.Fatalf("parsed %d failed %d, want 10/0", res.Parsed, res.Failed)
	}
	bodyA, err := report.RenderString(snap.Report, report.Options{Format: report.FormatJSON})
	if err != nil {
		t.Fatal(err)
	}

	storeB := NewStore()
	snapB, _, err := storeB.Ingest(context.Background(), "fx", sys, dirB, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bodyB, err := report.RenderString(snapB.Report, report.Options{Format: report.FormatJSON})
	if err != nil {
		t.Fatal(err)
	}
	if bodyA != bodyB {
		t.Fatal("reports from two same-seed fixtures differ")
	}

	// Cori fixtures must route onto Cori mounts without panicking.
	dirCori := t.TempDir()
	if err := WriteFixture(dirCori, systems.NewCori(), 4, 7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewStore().Ingest(context.Background(), "cx", systems.NewCori(), dirCori, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFixtureValidation(t *testing.T) {
	if err := WriteFixture(t.TempDir(), nil, 1, 1); err == nil {
		t.Error("nil system accepted")
	}
	if err := WriteFixture(t.TempDir(), systems.NewSummit(), 0, 1); err == nil {
		t.Error("zero logs accepted")
	}
}

func TestParseFixtureSpec(t *testing.T) {
	f, err := ParseFixtureSpec("golden:16:9")
	if err != nil || f.Name != "golden" || f.Logs != 16 || f.Seed != 9 {
		t.Errorf("parsed %+v (err %v)", f, err)
	}
	f, err = ParseFixtureSpec("ds-1:4")
	if err != nil || f.Name != "ds-1" || f.Logs != 4 || f.Seed != 1 {
		t.Errorf("default seed: %+v (err %v)", f, err)
	}
	for _, bad := range []string{"", "noseparator", ":4", "name:", "name:0", "name:-2", "name:x", "name:4:x", "bad name:4"} {
		if _, err := ParseFixtureSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
