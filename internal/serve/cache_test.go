package serve

import (
	"fmt"
	"testing"
)

func TestCachePutGetAndEviction(t *testing.T) {
	c := NewCache(100)
	c.Put("a", "text/plain", make([]byte, 40))
	c.Put("b", "text/plain", make([]byte, 40))
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// a is now MRU; adding c must evict b.
	c.Put("c", "text/plain", make([]byte, 40))
	if _, _, ok := c.Get("b"); ok {
		t.Error("b survived eviction though it was LRU")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Error("a evicted though it was MRU")
	}
	if c.Size() > 100 {
		t.Errorf("size %d exceeds bound", c.Size())
	}
}

func TestCacheOversizedBodyNotCached(t *testing.T) {
	c := NewCache(10)
	c.Put("big", "text/plain", make([]byte, 11))
	if c.Len() != 0 {
		t.Error("oversized body was cached")
	}
}

func TestCacheReplaceAdjustsSize(t *testing.T) {
	c := NewCache(100)
	c.Put("k", "text/plain", make([]byte, 80))
	c.Put("k", "application/json", make([]byte, 10))
	if c.Size() != 10 || c.Len() != 1 {
		t.Errorf("size=%d len=%d after replace", c.Size(), c.Len())
	}
	if _, ctype, _ := c.Get("k"); ctype != "application/json" {
		t.Errorf("content type not replaced: %s", ctype)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 10)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				c.Put(key, "t", []byte{byte(g)})
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
