package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/httpapi"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/predict"
)

// TestRouteIndex pins the GET /v1 contract: a versioned, sorted,
// machine-readable index of everything the service mounts.
func TestRouteIndex(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc httpapi.IndexDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != httpapi.IndexSchemaVersion || doc.Service != "ioserved" {
		t.Errorf("index header = v%d %q", doc.SchemaVersion, doc.Service)
	}
	paths := map[string]httpapi.Route{}
	for i, r := range doc.Routes {
		paths[r.Path] = r
		if i > 0 && doc.Routes[i-1].Path > r.Path {
			t.Errorf("routes not sorted: %q after %q", r.Path, doc.Routes[i-1].Path)
		}
	}
	pr, ok := paths["/v1/predict/{dataset}"]
	if !ok || pr.SchemaVersion != predict.SchemaVersion {
		t.Errorf("predict route = %+v, ok=%v", pr, ok)
	}
	rr, ok := paths["/v1/report/{dataset}"]
	if !ok || strings.Join(rr.Params, ",") != "format,section" {
		t.Errorf("report route params = %v", rr.Params)
	}
	// The index is itself parameter-free.
	resp, body = get(t, ts.URL+"/v1?verbose=1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("index with unknown param: %d %s", resp.StatusCode, body)
	}
}

// TestUnknownParamsRejected pins the shared query-param taxonomy: every
// query surface rejects parameters it does not understand with the same
// bad_param envelope, naming the offender.
func TestUnknownParamsRejected(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	cases := []struct {
		url     string
		offends string
	}{
		{"/v1/report/prod?frmt=json", "frmt"},
		{"/v1/report/prod?format=json&debug=1", "debug"},
		{"/v1/predict/prod?section=all", "section"},
		{"/v1/datasets?sort=name", "sort"},
		{"/v1/compare/prod/prod?format=json", "format"},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+c.url)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.url, resp.StatusCode)
			continue
		}
		env, ok := httpapi.DecodeError(body)
		if !ok || env.Error.Code != httpapi.CodeBadParam {
			t.Errorf("%s: body not a bad_param envelope: %s", c.url, body)
			continue
		}
		if !strings.Contains(env.Error.Message, c.offends) {
			t.Errorf("%s: message %q does not name %q", c.url, env.Error.Message, c.offends)
		}
	}
}

// TestErrorsAreEnvelopes sweeps the service's non-200 surfaces and
// requires every one to speak the structured envelope with the right code.
func TestErrorsAreEnvelopes(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	cases := []struct {
		method, url, body string
		status            int
		code              httpapi.Code
	}{
		{"GET", "/v1/report/bad%20name", "", 400, httpapi.CodeBadRequest},
		{"GET", "/v1/report/prod?format=yaml", "", 400, httpapi.CodeBadParam},
		{"GET", "/v1/report/nosuch", "", 404, httpapi.CodeNotFound},
		{"GET", "/v1/predict/bad%20name", "", 400, httpapi.CodeBadRequest},
		{"GET", "/v1/predict/nosuch", "", 404, httpapi.CodeNotFound},
		{"POST", "/v1/ingest", `not json`, 400, httpapi.CodeBadRequest},
		{"POST", "/v1/ingest", `{"dataset":"ok","source":"/nope","system":"mars"}`, 400, httpapi.CodeBadRequest},
		{"POST", "/v1/ingest", `{"dataset":"ok","source":"/definitely/not/here","system":"summit"}`, 422, httpapi.CodeIngestFailed},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.url, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.status {
			t.Errorf("%s %s: status %d, want %d (%s)", c.method, c.url, resp.StatusCode, c.status, data)
			continue
		}
		env, ok := httpapi.DecodeError(data)
		if !ok {
			t.Errorf("%s %s: not an envelope: %s", c.method, c.url, data)
			continue
		}
		if env.Error.Code != c.code {
			t.Errorf("%s %s: code %q, want %q", c.method, c.url, env.Error.Code, c.code)
		}
	}
}

// TestPredictEndpoint pins the /v1/predict contract: a schema-versioned
// JSON document, cached by generation, byte-identical across fetches and
// across ingest worker counts.
func TestPredictEndpoint(t *testing.T) {
	ts, _, dir := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/v1/predict/prod")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "miss" || resp.Header.Get("X-Dataset-Generation") != "1" {
		t.Errorf("headers: X-Cache=%q gen=%q", resp.Header.Get("X-Cache"), resp.Header.Get("X-Dataset-Generation"))
	}
	var doc predict.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != predict.SchemaVersion || doc.Dataset != "prod" || doc.Generation != 1 {
		t.Errorf("document header = %+v", doc)
	}
	if doc.Profile == nil || doc.Profile.Replay == nil {
		t.Fatal("profile or replay missing: the fixture system has a model")
	}
	if doc.Profile.Replay.RecommendedSec > doc.Profile.Replay.BaselineSec {
		t.Errorf("replay worse than baseline: %+v", doc.Profile.Replay)
	}

	resp2, body2 := get(t, ts.URL+"/v1/predict/prod")
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second fetch X-Cache = %q", resp2.Header.Get("X-Cache"))
	}
	if string(body) != string(body2) {
		t.Error("predict document differs across fetches")
	}

	// Worker-count independence: re-ingest the same corpus at different
	// parallelism; the predict document must not move a byte.
	for _, workers := range []int{1, 4} {
		store := NewStore()
		if _, _, err := store.Ingest(context.Background(), "prod", systems.NewSummit(), dir,
			core.IngestOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(New(Config{Store: store}).Handler())
		t.Cleanup(ts2.Close)
		_, bodyW := get(t, ts2.URL+"/v1/predict/prod")
		if string(bodyW) != string(body) {
			t.Errorf("predict document differs at %d ingest workers", workers)
		}
	}
}
