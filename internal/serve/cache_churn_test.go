package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

// The render cache under generation churn: while one goroutine repeatedly
// re-ingests (bumping the dataset generation), steady readers must (a)
// actually get served from the cache between churns — a hit rate of zero
// would mean every query re-renders — and (b) never see a stale
// generation: a 200 whose X-Dataset-Generation is older than the newest
// generation committed before that request started, or whose body doesn't
// match the report of the generation it claims. Snapshot isolation makes
// old-generation reads legal only for requests already in flight when the
// churn landed; the capture-before-request discipline below encodes that.
func TestCacheUnderGenerationChurn(t *testing.T) {
	metrics := obsv.New()
	store := NewStore()
	dir := corpusDir(t, 3)
	sys := systems.NewSummit()

	var committed atomic.Uint64 // newest generation the store has published
	var mu sync.Mutex
	expected := map[uint64]string{} // generation → exact JSON body

	ingest := func() {
		snap, _, err := store.Ingest(context.Background(), "prod", sys, dir, core.IngestOptions{})
		if err != nil {
			t.Errorf("churn ingest: %v", err)
			return
		}
		body, err := report.RenderString(snap.Report, report.Options{Format: report.FormatJSON})
		if err != nil {
			t.Errorf("rendering gen %d: %v", snap.Gen, err)
			return
		}
		mu.Lock()
		expected[snap.Gen] = body
		mu.Unlock()
		committed.Store(snap.Gen)
	}
	ingest() // gen 1 before the server opens

	s := New(Config{Store: store, Metrics: metrics, MaxInFlight: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/report/prod?format=json"

	const (
		readers        = 4
		readsPerReader = 60
		churns         = 8
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader && !stop.Load(); i++ {
				// Capture the floor before issuing the request: any
				// generation at or above it is fresh, anything below is a
				// stale read the cache failed to invalidate.
				floor := committed.Load()
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				body := make([]byte, 0, 1<<16)
				buf := make([]byte, 4096)
				for {
					n, rerr := resp.Body.Read(buf)
					body = append(body, buf[:n]...)
					if rerr != nil {
						break
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("read status %d", resp.StatusCode)
					return
				}
				gen, err := strconv.ParseUint(resp.Header.Get("X-Dataset-Generation"), 10, 64)
				if err != nil {
					t.Errorf("bad generation header %q", resp.Header.Get("X-Dataset-Generation"))
					return
				}
				if gen < floor {
					t.Errorf("stale 200: generation %d served after generation %d committed", gen, floor)
					return
				}
				mu.Lock()
				want, known := expected[gen]
				mu.Unlock()
				// The handler can publish a generation a beat before the
				// churner records its body; only verify the ones we know.
				if known && string(body) != want {
					t.Errorf("generation %d served a body that is not generation %d's report", gen, gen)
					return
				}
			}
		}()
	}
	for c := 0; c < churns; c++ {
		ingest()
	}
	wg.Wait()
	stop.Store(true)

	hits := metrics.Counter("serve.cache.hits").Value()
	if hits == 0 {
		t.Error("zero cache hits across steady queries — the cache never served")
	}

	// Quiescent check: the final fetch is the final generation, and a
	// repeat is a cache hit at that same generation (full invalidation of
	// older entries happened; no resurrection of a stale body).
	final := committed.Load()
	resp, _ := get(t, url)
	if gen := resp.Header.Get("X-Dataset-Generation"); gen != strconv.FormatUint(final, 10) {
		t.Errorf("quiescent generation = %s, want %d", gen, final)
	}
	resp2, body2 := get(t, url)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("quiescent repeat X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	mu.Lock()
	want := expected[final]
	mu.Unlock()
	if string(body2) != want {
		t.Error("quiescent cached body differs from the final generation's report")
	}
}
