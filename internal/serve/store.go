// Package serve is the query side of the pipeline: a long-running service
// that holds the merged analysis state of one or more ingested campaigns
// ("datasets") in memory and renders the study's reports on demand.
//
// The concurrency discipline is copy-on-write. Each dataset publishes an
// immutable Snapshot — a frozen aggregator plus its derived report — and
// readers render from whatever snapshot they load, with no locks held
// while rendering. Re-ingestion clones the frozen aggregator, folds the
// new logs into the clone off to the side, and atomically publishes the
// clone as the next generation. Readers mid-render keep their old
// snapshot; the generation counter feeds the response cache key, so a
// publish naturally invalidates every cached rendering of the dataset.
package serve

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
)

// datasetNameRE bounds what a dataset may be called: names appear in URL
// paths and cache keys, so they are kept to a filename-safe alphabet.
var datasetNameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// ValidDatasetName reports whether name is usable as a dataset name.
func ValidDatasetName(name string) bool { return datasetNameRE.MatchString(name) }

// Snapshot is one published generation of a dataset. It is immutable:
// every field is frozen at publish time, and the aggregator behind it is
// never folded into again (re-ingestion works on a clone).
type Snapshot struct {
	Name   string
	System string
	// Gen increments on every successful ingest into the dataset; it is
	// the cache-invalidation token for everything rendered from this
	// snapshot.
	Gen     uint64
	Report  *analysis.Report
	Sources []string

	agg *analysis.Aggregator // frozen; clone base for the next generation
}

// entry is the mutable cell a dataset lives in. Readers load cur without
// any lock; writers serialize on ingestMu. dead marks an entry that was
// garbage-collected after a failed first ingest — it is only ever set
// under ingestMu, and a writer that acquires the lock on a dead entry must
// drop it and re-create the dataset cell.
type entry struct {
	ingestMu sync.Mutex
	dead     bool
	cur      atomic.Pointer[Snapshot]
}

// Store maps dataset names to their current snapshots.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*entry
	// lake, when non-nil, makes generations durable: each ingest commits a
	// segment + journal record before publishing (see lake.go).
	lake *Lake
	// maint counts maintenance passes in flight — lake replay and
	// compaction — the phases during which the server's /readyz reports
	// not-ready so routers stop sending traffic here.
	maint atomic.Int32
}

// NewStore builds an empty, memory-only store.
func NewStore() *Store {
	return &Store{datasets: map[string]*entry{}}
}

// NewStoreWithLake builds a store backed by the lake: every committed
// dataset is recovered and republished at its last committed generation
// before the store is returned, and every subsequent ingest is made
// durable before it is visible.
func NewStoreWithLake(l *Lake) (*Store, error) {
	s := NewStoreAttached(l)
	if err := s.RecoverLake(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewStoreAttached builds a store wired to the lake without recovering
// it — for servers that want to start answering health checks first and
// replay the journal behind a not-ready /readyz (call RecoverLake before
// accepting query traffic for the recovered datasets).
func NewStoreAttached(l *Lake) *Store {
	s := NewStore()
	s.lake = l
	return s
}

// RecoverLake replays the attached lake's journal, republishing every
// committed dataset at its last committed generation. The store counts
// as in maintenance for the duration. No-op without a lake.
func (s *Store) RecoverLake() error {
	if s.lake == nil {
		return nil
	}
	s.maint.Add(1)
	defer s.maint.Add(-1)
	return s.lake.Recover(s)
}

// InMaintenance reports whether a maintenance pass — lake replay or
// compaction — is in flight. Readiness, not liveness: queries still
// answer from whatever is published, but routers should prefer replicas
// that are not mid-maintenance.
func (s *Store) InMaintenance() bool {
	return s.maint.Load() > 0 || (s.lake != nil && s.lake.Compacting())
}

// publishRecovered installs a lake-recovered snapshot. Recovery runs
// before the store serves traffic, so there is no generation to race.
func (s *Store) publishRecovered(snap *Snapshot) {
	s.getOrCreate(snap.Name).cur.Store(snap)
}

// Get returns the current snapshot of the named dataset.
func (s *Store) Get(name string) (*Snapshot, bool) {
	s.mu.RLock()
	e := s.datasets[name]
	s.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	snap := e.cur.Load()
	if snap == nil {
		return nil, false // created but first ingest hasn't published yet
	}
	return snap, true
}

// List returns the current snapshot of every dataset, sorted by name.
func (s *Store) List() []*Snapshot {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]*Snapshot, 0, len(entries))
	for _, e := range entries {
		if snap := e.cur.Load(); snap != nil {
			out = append(out, snap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Store) getOrCreate(name string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.datasets[name]
	if !ok {
		e = &entry{}
		s.datasets[name] = e
	}
	return e
}

// lockEntry returns the dataset's entry with its ingest lock held,
// re-fetching if the entry was garbage-collected between the map lookup
// and the lock acquisition (a concurrent first ingest that failed).
func (s *Store) lockEntry(name string) *entry {
	for {
		e := s.getOrCreate(name)
		e.ingestMu.Lock()
		if !e.dead {
			return e
		}
		e.ingestMu.Unlock()
	}
}

// gcIfEmpty reclaims an entry whose first ingest failed before anything
// was published: left in place it would be a permanent phantom —
// invisible to Get and List (nil snapshot) yet growing Store.datasets on
// every repeated bad upload. Called with e.ingestMu held.
func (s *Store) gcIfEmpty(name string, e *entry) {
	if e.cur.Load() != nil {
		return // an earlier generation exists; the dataset stays
	}
	e.dead = true
	s.mu.Lock()
	if s.datasets[name] == e {
		delete(s.datasets, name)
	}
	s.mu.Unlock()
}

// Ingest folds the logs at source (a directory of .darshan logs, a .dgar
// archive, a .dgc columnar campaign, or a single .darshan file) into the
// named dataset and publishes the result as its next generation.
// Concurrent ingests into the same dataset serialize; concurrent readers
// keep rendering from the previous generation until the new one is
// published. On error nothing is published (and nothing is committed to
// the lake) and the dataset keeps its current generation.
//
// The source always folds into a fresh aggregator — the ingest's *delta* —
// which then merges into a clone of the current generation. Merging
// partial aggregates is the worker pool's own accumulation step, already
// proven byte-identical to a sequential fold at any partitioning, and the
// delta is exactly what a lake-backed store persists as the generation's
// segment.
func (s *Store) Ingest(ctx context.Context, name string, sys *iosim.System, source string, opts core.IngestOptions) (*Snapshot, core.IngestResult, error) {
	if !ValidDatasetName(name) {
		return nil, core.IngestResult{}, fmt.Errorf("serve: invalid dataset name %q", name)
	}
	if sys == nil {
		return nil, core.IngestResult{}, fmt.Errorf("serve: nil system")
	}
	e := s.lockEntry(name)
	defer e.ingestMu.Unlock()

	cur := e.cur.Load()
	var sources []string
	if cur != nil {
		if cur.System != sys.Name {
			return nil, core.IngestResult{}, fmt.Errorf("serve: dataset %q is %s data, cannot ingest %s logs",
				name, cur.System, sys.Name)
		}
		sources = append(append([]string(nil), cur.Sources...), source)
	} else {
		sources = []string{source}
	}
	delta := analysis.NewAggregator(sys)
	opts.Into = delta
	opts.Resume = nil

	_, res, err := ingestSource(ctx, sys, source, opts)
	if err != nil {
		s.gcIfEmpty(name, e)
		return nil, res, err
	}
	gen := genAfter(cur)
	if s.lake != nil {
		if err := s.lake.commit(name, sys.Name, gen, sources, delta.State()); err != nil {
			s.gcIfEmpty(name, e)
			return nil, res, err
		}
	}
	base := delta
	if cur != nil {
		base = cur.agg.Clone()
		base.Merge(delta)
	}
	next := &Snapshot{
		Name:    name,
		System:  sys.Name,
		Gen:     gen,
		Report:  base.Report(),
		Sources: sources,
		agg:     base,
	}
	e.cur.Store(next)
	if s.lake != nil {
		s.lake.maybeCompact(next)
	}
	return next, res, nil
}

func genAfter(cur *Snapshot) uint64 {
	if cur == nil {
		return 1
	}
	return cur.Gen + 1
}

// ingestSource dispatches on what the path is: directory, columnar
// campaign, campaign archive, or a single log file. An archive with an
// up-to-date columnar sibling (same path with .dgc for .dgar, at least as
// new) is ingested through the sibling instead — the reports are
// byte-identical, and the columnar fold is an order of magnitude faster.
func ingestSource(ctx context.Context, sys *iosim.System, source string, opts core.IngestOptions) (*analysis.Report, core.IngestResult, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return nil, core.IngestResult{}, fmt.Errorf("serve: %w", err)
	}
	switch {
	case fi.IsDir():
		rep, res, err := core.IngestDir(ctx, sys, source, opts)
		if err == nil && res.Parsed == 0 && res.Failed == 0 {
			return nil, res, fmt.Errorf("serve: no .darshan logs in %s", source)
		}
		return rep, res, err
	case strings.HasSuffix(source, ".dgc"):
		return core.IngestColumnar(ctx, sys, source, opts)
	case strings.HasSuffix(source, ".dgar"):
		if sib := columnarSibling(source, fi); sib != "" {
			return core.IngestColumnar(ctx, sys, sib, opts)
		}
		return core.IngestArchive(ctx, sys, source, opts)
	default:
		// A single log: decode it under the same limits the pool would use
		// and fold it straight into the Into aggregator. The pooled paths
		// honor cancellation at batch boundaries; this path must honor it
		// too — a drained server must not keep decoding and folding.
		if err := ctx.Err(); err != nil {
			return nil, core.IngestResult{}, err
		}
		log, err := logfmt.ReadFileWithLimits(source, opts.Limits)
		if err != nil {
			return nil, core.IngestResult{Failed: 1}, err
		}
		if err := ctx.Err(); err != nil {
			return nil, core.IngestResult{}, err
		}
		opts.Into.AddLog(log)
		return opts.Into.Report(), core.IngestResult{Parsed: 1}, nil
	}
}

// columnarSibling returns the path of an archive's columnar twin when one
// exists and is strictly newer than the archive itself; any doubt falls
// back to the archive. Strictly newer matters: filesystems with coarse
// mtime granularity can stamp a regenerated archive with the *same*
// second as its stale .dgc twin, and an equal-mtime rule would silently
// shadow the new archive with the outdated conversion.
func columnarSibling(archive string, fi os.FileInfo) string {
	sib := strings.TrimSuffix(archive, ".dgar") + ".dgc"
	sfi, err := os.Stat(sib)
	if err != nil || sfi.IsDir() || !sfi.ModTime().After(fi.ModTime()) {
		return ""
	}
	return sib
}
