// Package serve is the query side of the pipeline: a long-running service
// that holds the merged analysis state of one or more ingested campaigns
// ("datasets") in memory and renders the study's reports on demand.
//
// The concurrency discipline is copy-on-write. Each dataset publishes an
// immutable Snapshot — a frozen aggregator plus its derived report — and
// readers render from whatever snapshot they load, with no locks held
// while rendering. Re-ingestion clones the frozen aggregator, folds the
// new logs into the clone off to the side, and atomically publishes the
// clone as the next generation. Readers mid-render keep their old
// snapshot; the generation counter feeds the response cache key, so a
// publish naturally invalidates every cached rendering of the dataset.
package serve

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"iolayers/internal/analysis"
	"iolayers/internal/core"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
)

// datasetNameRE bounds what a dataset may be called: names appear in URL
// paths and cache keys, so they are kept to a filename-safe alphabet.
var datasetNameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// ValidDatasetName reports whether name is usable as a dataset name.
func ValidDatasetName(name string) bool { return datasetNameRE.MatchString(name) }

// Snapshot is one published generation of a dataset. It is immutable:
// every field is frozen at publish time, and the aggregator behind it is
// never folded into again (re-ingestion works on a clone).
type Snapshot struct {
	Name   string
	System string
	// Gen increments on every successful ingest into the dataset; it is
	// the cache-invalidation token for everything rendered from this
	// snapshot.
	Gen     uint64
	Report  *analysis.Report
	Sources []string

	agg *analysis.Aggregator // frozen; clone base for the next generation
}

// entry is the mutable cell a dataset lives in. Readers load cur without
// any lock; writers serialize on ingestMu.
type entry struct {
	ingestMu sync.Mutex
	cur      atomic.Pointer[Snapshot]
}

// Store maps dataset names to their current snapshots.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*entry
}

// NewStore builds an empty store.
func NewStore() *Store {
	return &Store{datasets: map[string]*entry{}}
}

// Get returns the current snapshot of the named dataset.
func (s *Store) Get(name string) (*Snapshot, bool) {
	s.mu.RLock()
	e := s.datasets[name]
	s.mu.RUnlock()
	if e == nil {
		return nil, false
	}
	snap := e.cur.Load()
	if snap == nil {
		return nil, false // created but first ingest hasn't published yet
	}
	return snap, true
}

// List returns the current snapshot of every dataset, sorted by name.
func (s *Store) List() []*Snapshot {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.datasets))
	for _, e := range s.datasets {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]*Snapshot, 0, len(entries))
	for _, e := range entries {
		if snap := e.cur.Load(); snap != nil {
			out = append(out, snap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Store) getOrCreate(name string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.datasets[name]
	if !ok {
		e = &entry{}
		s.datasets[name] = e
	}
	return e
}

// Ingest folds the logs at source (a directory of .darshan logs, a .dgar
// archive, a .dgc columnar campaign, or a single .darshan file) into the
// named dataset and publishes the result as its next generation. Concurrent ingests into the same
// dataset serialize; concurrent readers keep rendering from the previous
// generation until the new one is published. On error nothing is
// published and the dataset keeps its current generation.
func (s *Store) Ingest(ctx context.Context, name string, sys *iosim.System, source string, opts core.IngestOptions) (*Snapshot, core.IngestResult, error) {
	if !ValidDatasetName(name) {
		return nil, core.IngestResult{}, fmt.Errorf("serve: invalid dataset name %q", name)
	}
	if sys == nil {
		return nil, core.IngestResult{}, fmt.Errorf("serve: nil system")
	}
	e := s.getOrCreate(name)
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()

	cur := e.cur.Load()
	var base *analysis.Aggregator
	var sources []string
	if cur != nil {
		if cur.System != sys.Name {
			return nil, core.IngestResult{}, fmt.Errorf("serve: dataset %q is %s data, cannot ingest %s logs",
				name, cur.System, sys.Name)
		}
		base = cur.agg.Clone()
		sources = append(append([]string(nil), cur.Sources...), source)
	} else {
		base = analysis.NewAggregator(sys)
		sources = []string{source}
	}
	opts.Into = base
	opts.Resume = nil

	rep, res, err := ingestSource(ctx, sys, source, opts)
	if err != nil {
		return nil, res, err
	}
	next := &Snapshot{
		Name:    name,
		System:  sys.Name,
		Gen:     genAfter(cur),
		Report:  rep,
		Sources: sources,
		agg:     base,
	}
	e.cur.Store(next)
	return next, res, nil
}

func genAfter(cur *Snapshot) uint64 {
	if cur == nil {
		return 1
	}
	return cur.Gen + 1
}

// ingestSource dispatches on what the path is: directory, columnar
// campaign, campaign archive, or a single log file. An archive with an
// up-to-date columnar sibling (same path with .dgc for .dgar, at least as
// new) is ingested through the sibling instead — the reports are
// byte-identical, and the columnar fold is an order of magnitude faster.
func ingestSource(ctx context.Context, sys *iosim.System, source string, opts core.IngestOptions) (*analysis.Report, core.IngestResult, error) {
	fi, err := os.Stat(source)
	if err != nil {
		return nil, core.IngestResult{}, fmt.Errorf("serve: %w", err)
	}
	switch {
	case fi.IsDir():
		rep, res, err := core.IngestDir(ctx, sys, source, opts)
		if err == nil && res.Parsed == 0 && res.Failed == 0 {
			return nil, res, fmt.Errorf("serve: no .darshan logs in %s", source)
		}
		return rep, res, err
	case strings.HasSuffix(source, ".dgc"):
		return core.IngestColumnar(ctx, sys, source, opts)
	case strings.HasSuffix(source, ".dgar"):
		if sib := columnarSibling(source, fi); sib != "" {
			return core.IngestColumnar(ctx, sys, sib, opts)
		}
		return core.IngestArchive(ctx, sys, source, opts)
	default:
		// A single log: decode it under the same limits the pool would use
		// and fold it straight into the Into aggregator.
		log, err := logfmt.ReadFileWithLimits(source, opts.Limits)
		if err != nil {
			return nil, core.IngestResult{Failed: 1}, err
		}
		opts.Into.AddLog(log)
		return opts.Into.Report(), core.IngestResult{Parsed: 1}, nil
	}
}

// columnarSibling returns the path of an archive's columnar twin when one
// exists and is at least as new as the archive itself; a stale sibling
// (older than the archive it mirrors) is ignored so a regenerated archive
// is never shadowed by an outdated conversion.
func columnarSibling(archive string, fi os.FileInfo) string {
	sib := strings.TrimSuffix(archive, ".dgar") + ".dgc"
	sfi, err := os.Stat(sib)
	if err != nil || sfi.IsDir() || sfi.ModTime().Before(fi.ModTime()) {
		return ""
	}
	return sib
}
