package serve

// wire.go is the service's JSON vocabulary, exported so other layers —
// the cluster router above all — can parse replica responses and rebuild
// documents byte-identically to a single-node render. Everything here is
// shape: field order, tags, and the MarshalDoc framing are the contract.

import (
	"encoding/json"

	"iolayers/internal/report"
)

// SummaryDoc mirrors analysis.Summary with stable JSON names (the same
// shape report.Document uses).
type SummaryDoc struct {
	System    string  `json:"system"`
	Logs      int64   `json:"logs"`
	Jobs      int64   `json:"jobs"`
	Files     int64   `json:"files"`
	NodeHours float64 `json:"node_hours"`
}

// DatasetRow is one dataset in the /v1/datasets listing.
type DatasetRow struct {
	Name       string     `json:"name"`
	System     string     `json:"system"`
	Generation uint64     `json:"generation"`
	Summary    SummaryDoc `json:"summary"`
	Sources    []string   `json:"sources"`
}

// DatasetsDoc is the /v1/datasets response body.
type DatasetsDoc struct {
	SchemaVersion int          `json:"schema_version"`
	Datasets      []DatasetRow `json:"datasets"`
}

// CompareSideDoc is one dataset's half of a /v1/compare response.
type CompareSideDoc struct {
	Name       string     `json:"name"`
	System     string     `json:"system"`
	Generation uint64     `json:"generation"`
	Summary    SummaryDoc `json:"summary"`
}

// SummaryDeltaDoc is b minus a, fieldwise.
type SummaryDeltaDoc struct {
	Logs      int64   `json:"logs"`
	Jobs      int64   `json:"jobs"`
	Files     int64   `json:"files"`
	NodeHours float64 `json:"node_hours"`
}

// CompareDoc sets two datasets' campaign summaries side by side — the
// cross-system reading the paper's Tables 2–6 are built around.
type CompareDoc struct {
	SchemaVersion int            `json:"schema_version"`
	A             CompareSideDoc `json:"a"`
	B             CompareSideDoc `json:"b"`
	// Delta is b minus a, fieldwise.
	Delta SummaryDeltaDoc `json:"delta"`
}

// summaryOf freezes a snapshot's campaign summary into wire shape.
func summaryOf(snap *Snapshot) SummaryDoc {
	sum := snap.Report.Summary
	return SummaryDoc{
		System: sum.System, Logs: sum.Logs, Jobs: sum.Jobs,
		// Canonicalized for the same reason report.Document does it: the
		// raw sum's last bits are partition-order noise.
		Files: sum.Files, NodeHours: report.CanonicalNodeHours(sum.NodeHours),
	}
}

// RowOf renders one snapshot as its /v1/datasets listing row.
func RowOf(snap *Snapshot) DatasetRow {
	return DatasetRow{
		Name: snap.Name, System: snap.System, Generation: snap.Gen,
		Summary: summaryOf(snap), Sources: snap.Sources,
	}
}

// MarshalDoc frames a wire document exactly as the service writes it:
// two-space indented JSON plus a trailing newline.
func MarshalDoc(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// CompareDocument builds the /v1/compare body for two dataset rows —
// the single function both the single-node handler and the cluster
// router's scatter/gather path render through, so a gathered compare is
// byte-identical to a single-node one.
func CompareDocument(a, b DatasetRow) ([]byte, error) {
	return MarshalDoc(CompareDoc{
		SchemaVersion: report.SchemaVersion,
		A:             CompareSideDoc{Name: a.Name, System: a.System, Generation: a.Generation, Summary: a.Summary},
		B:             CompareSideDoc{Name: b.Name, System: b.System, Generation: b.Generation, Summary: b.Summary},
		Delta: SummaryDeltaDoc{
			Logs: b.Summary.Logs - a.Summary.Logs, Jobs: b.Summary.Jobs - a.Summary.Jobs,
			Files: b.Summary.Files - a.Summary.Files, NodeHours: b.Summary.NodeHours - a.Summary.NodeHours,
		},
	})
}
