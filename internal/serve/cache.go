package serve

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes bounds the rendered-report cache when the caller does
// not choose a size. Full-report JSON documents run tens of kilobytes, so
// this holds hundreds of renderings.
const DefaultCacheBytes = 32 << 20

// cacheItem is one rendered response body.
type cacheItem struct {
	key         string
	contentType string
	body        []byte
}

// Cache is a byte-bounded LRU of rendered report bodies. Keys embed the
// dataset generation, so stale entries are never served — they simply age
// out once their generation stops being requested.
type Cache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element whose Value is *cacheItem
}

// NewCache builds a cache bounded to maxBytes of body data (0 or negative
// means DefaultCacheBytes).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached body and content type for key, marking it most
// recently used. The returned slice is shared: callers must not modify it.
func (c *Cache) Get(key string) ([]byte, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	it := el.Value.(*cacheItem)
	return it.body, it.contentType, true
}

// Put stores a rendered body under key, evicting least-recently-used
// entries until the cache fits its byte bound. Bodies larger than the
// whole bound are not cached at all.
func (c *Cache) Put(key, contentType string, body []byte) {
	n := int64(len(body))
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.size += n - int64(len(it.body))
		it.body, it.contentType = body, contentType
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, contentType: contentType, body: body})
		c.size += n
	}
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.size -= int64(len(it.body))
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Size returns the cached body bytes.
func (c *Cache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
