package serve

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/units"
)

// fixtureDomains rotate through the synthetic jobs so the report's
// science-domain sections are non-trivial.
var fixtureDomains = []string{"Physics", "Chemistry", "Biology", "Materials"}

// WriteFixture writes n deterministic synthetic .darshan logs for sys
// into dir, creating it if needed. The corpus is a pure function of
// (sys, n, seed): every byte of every log — and therefore every report
// rendered from an ingest of the directory — reproduces exactly, which
// is what makes it a load-test fixture. Replicas booted with the same
// fixture spec hold byte-identical datasets, so a router answering from
// any of them must produce identical 200s, and a load harness can treat
// any divergence as a correctness failure rather than a data skew.
//
// The jobs mix both modeled layers (PFS and in-system), several
// interfaces (POSIX, STDIO, MPI-IO), per-rank and shared files, and a
// spread of transfer sizes, so rendering the report exercises every
// section the real campaigns do.
func WriteFixture(dir string, sys *iosim.System, n int, seed uint64) error {
	if sys == nil {
		return fmt.Errorf("serve: fixture needs a system")
	}
	if n <= 0 {
		return fmt.Errorf("serve: fixture size %d must be positive", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: fixture dir: %w", err)
	}
	pfs, bb := sys.PFS.Mount(), sys.InSystem.Mount()
	for i := 0; i < n; i++ {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID:     seed*1_000_000 + uint64(i),
			UserID:    uint64(1 + i%7),
			NProcs:    8 << (i % 3),
			StartTime: int64(i) * 3600,
			EndTime:   int64(i)*3600 + 1800,
			Metadata:  map[string]string{"domain": fixtureDomains[i%len(fixtureDomains)]},
		})
		c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(seed, uint64(i))))
		size := units.ByteSize(64<<(i%5)) * units.KiB
		c.Write(darshan.ModulePOSIX, fmt.Sprintf("%s/fx/out%d_%d.h5", pfs, seed, i), 0, size, 0)
		c.Read(darshan.ModuleSTDIO, fmt.Sprintf("%s/fx/run%d.log", bb, i%3), 0, 64*units.KiB, 0)
		if i%2 == 0 {
			c.SharedOpen(darshan.ModuleMPIIO, fmt.Sprintf("%s/fx/shared%d.h5", pfs, i%4), true)
			c.SharedTransfer(darshan.ModuleMPIIO, fmt.Sprintf("%s/fx/shared%d.h5", pfs, i%4),
				iosim.Write, units.MiB, true)
			c.SharedClose(darshan.ModuleMPIIO, fmt.Sprintf("%s/fx/shared%d.h5", pfs, i%4))
		}
		path := filepath.Join(dir, fmt.Sprintf("fixture%05d.darshan", i))
		if err := logfmt.WriteFile(path, rt.Finalize()); err != nil {
			return fmt.Errorf("serve: fixture log %s: %w", path, err)
		}
	}
	return nil
}

// FixtureSpec is one parsed -fixture flag: synthesize Logs deterministic
// logs under Seed and ingest them as dataset Name at boot.
type FixtureSpec struct {
	Name string
	Logs int
	Seed uint64
}

// ParseFixtureSpec parses "name:logs[:seed]" (the ioserved -fixture
// flag). Seed defaults to 1 so a bare "name:logs" is still fully
// deterministic.
func ParseFixtureSpec(spec string) (FixtureSpec, error) {
	bad := func() (FixtureSpec, error) {
		return FixtureSpec{}, fmt.Errorf("serve: bad fixture spec %q, want name:logs[:seed]", spec)
	}
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || !ValidDatasetName(name) {
		return bad()
	}
	f := FixtureSpec{Name: name, Seed: 1}
	logsStr, seedStr, hasSeed := strings.Cut(rest, ":")
	logs, err := strconv.Atoi(logsStr)
	if err != nil || logs <= 0 {
		return bad()
	}
	f.Logs = logs
	if hasSeed {
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return bad()
		}
		f.Seed = seed
	}
	return f, nil
}
