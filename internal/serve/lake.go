package serve

// The dataset lake is what makes ioserved's datasets survive the process.
// Every successful ingest appends an immutable *segment* — the ingested
// source folded into a fresh aggregator and persisted as a gob-framed
// analysis.AggregatorState via the checkpoint package — under the lake
// directory, then records the commit in an fsync'd append-only journal.
// The journal append is the commit point: a generation whose record is
// durable will be recovered byte-identically after any crash; a crash
// before the append loses only the in-flight ingest (the orphaned segment
// file is swept on the next recovery).
//
// On-disk layout:
//
//	<lake>/journal                       — commit journal (checkpoint.Journal)
//	<lake>/datasets/<name>/seg-<gen>.ckpt          — one ingest's delta state
//	<lake>/datasets/<name>/seg-<gen>-compact.ckpt  — a compaction's frozen fold
//
// Recovery replays the journal, rebuilds each dataset's aggregator by
// merging its committed segments in commit order (analysis.MergeState —
// the same merge the parallel worker pool is already proven byte-exact
// on), and republishes the last committed generation. Compaction bounds
// that cost: once a dataset accumulates CompactEvery segments, the current
// frozen aggregator state — by construction the fold of every committed
// segment — is written as a single compact segment and the journal is
// atomically rewritten to start from it, after which the superseded
// segment files are deleted. Every crash window leaves either the old
// journal with the old segments intact, or the new journal with the
// compact segment; orphans from the windows in between are swept at
// recovery.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"iolayers/internal/analysis"
	"iolayers/internal/checkpoint"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
)

// DefaultCompactEvery is how many committed segments a dataset accumulates
// before compaction folds them into one, when the caller does not choose.
const DefaultCompactEvery = 16

// lakeJournalName is the commit journal's filename inside the lake dir.
const lakeJournalName = "journal"

// LakeConfig configures OpenLake.
type LakeConfig struct {
	// Dir is the lake directory; created if absent. Required.
	Dir string
	// CompactEvery is the per-dataset segment count that triggers
	// compaction after a commit (0 means DefaultCompactEvery, negative
	// disables compaction).
	CompactEvery int
	// Metrics receives lake counters and recovery/compaction spans. Nil
	// disables instrumentation at zero cost.
	Metrics *obsv.Registry
}

// lakeRecord is one journal entry: the durable fact that generation Gen of
// Dataset is the fold of the previous generation plus the state in
// Segment. A Compact record instead asserts Segment alone reconstructs
// generation Gen, superseding every earlier record for the dataset.
type lakeRecord struct {
	Dataset string
	System  string
	Gen     uint64
	// Segment is the state file's path relative to the lake directory.
	Segment string
	// Sources is the dataset's cumulative source list as of Gen.
	Sources []string
	Compact bool
}

// Lake is the disk half of a Store: a commit journal plus the segment
// files it references. All methods are safe for concurrent use; commits
// for different datasets interleave in journal order.
type Lake struct {
	dir          string
	compactEvery int
	metrics      *obsv.Registry

	// compacting counts compaction passes in flight, feeding the store's
	// maintenance view of readiness.
	compacting atomic.Int32

	mu      sync.Mutex
	journal *checkpoint.Journal
	// commits holds each dataset's live records in commit order — the
	// replay view, maintained incrementally as commits land.
	commits map[string][]lakeRecord
}

// OpenLake opens (creating if needed) the lake at cfg.Dir and loads its
// commit history: after OpenLake, Recover rebuilds the datasets. A torn
// journal tail from a crash mid-commit is truncated; the half-committed
// generation it described is gone, exactly as if the ingest never ran.
func OpenLake(cfg LakeConfig) (*Lake, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: lake directory is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "datasets"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating lake: %w", err)
	}
	compactEvery := cfg.CompactEvery
	if compactEvery == 0 {
		compactEvery = DefaultCompactEvery
	}
	l := &Lake{
		dir:          cfg.Dir,
		compactEvery: compactEvery,
		metrics:      cfg.Metrics,
		commits:      map[string][]lakeRecord{},
	}
	jpath := filepath.Join(cfg.Dir, lakeJournalName)
	err := checkpoint.ReplayJournal(jpath, func(dec *gob.Decoder) error {
		var rec lakeRecord
		if err := dec.Decode(&rec); err != nil {
			return err
		}
		if rec.Compact {
			l.commits[rec.Dataset] = l.commits[rec.Dataset][:0]
		}
		l.commits[rec.Dataset] = append(l.commits[rec.Dataset], rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if l.journal, err = checkpoint.OpenJournal(jpath); err != nil {
		return nil, err
	}
	return l, nil
}

// Close releases the lake's journal handle.
func (l *Lake) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journal.Close()
}

// Dir returns the lake directory.
func (l *Lake) Dir() string { return l.dir }

func (l *Lake) segmentPath(rel string) string { return filepath.Join(l.dir, rel) }

// commit persists one ingest: the delta state as a segment file, then the
// journal record. Only when Append returns — the record fsync'd — is the
// generation committed; an error at any earlier point leaves the journal
// untouched and at worst an orphan segment file for recovery to sweep.
func (l *Lake) commit(dataset, system string, gen uint64, sources []string, delta *analysis.AggregatorState) error {
	rel := filepath.Join("datasets", dataset, fmt.Sprintf("seg-%08d.ckpt", gen))
	abs := l.segmentPath(rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return fmt.Errorf("serve: lake dataset dir: %w", err)
	}
	if err := checkpoint.Save(abs, delta); err != nil {
		return fmt.Errorf("serve: writing lake segment: %w", err)
	}
	rec := lakeRecord{Dataset: dataset, System: system, Gen: gen, Segment: rel, Sources: sources}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.journal.Append(&rec); err != nil {
		os.Remove(abs) // roll the orphan segment back eagerly
		return err
	}
	l.commits[dataset] = append(l.commits[dataset], rec)
	l.metrics.Counter("serve.lake.segments_written").Add(1)
	return nil
}

// maybeCompact folds the dataset's committed segments into one frozen
// segment once enough have accumulated. snap must be the just-published
// generation — its frozen aggregator *is* the fold of every committed
// segment, so compaction costs one State() walk and one atomic journal
// rewrite, never a re-fold. Runs after the commit that tripped the
// threshold; a failure is recorded but does not fail the ingest (the
// un-compacted history is still fully recoverable).
func (l *Lake) maybeCompact(snap *Snapshot) {
	l.mu.Lock()
	live := len(l.commits[snap.Name])
	l.mu.Unlock()
	if l.compactEvery < 0 || live < l.compactEvery {
		return
	}
	l.compacting.Add(1)
	defer l.compacting.Add(-1)
	if err := l.compact(snap); err != nil {
		l.metrics.Counter("serve.lake.compact_errors").Add(1)
		return
	}
	l.metrics.Counter("serve.lake.compactions").Add(1)
}

// Compacting reports whether a compaction pass is in flight.
func (l *Lake) Compacting() bool { return l.compacting.Load() > 0 }

func (l *Lake) compact(snap *Snapshot) error {
	timer := l.metrics.Span("lake-compact").Begin()
	defer timer.End()
	rel := filepath.Join("datasets", snap.Name, fmt.Sprintf("seg-%08d-compact.ckpt", snap.Gen))
	if err := checkpoint.Save(l.segmentPath(rel), snap.agg.State()); err != nil {
		return fmt.Errorf("serve: writing compact segment: %w", err)
	}
	rec := lakeRecord{Dataset: snap.Name, System: snap.System, Gen: snap.Gen,
		Segment: rel, Sources: snap.Sources, Compact: true}

	l.mu.Lock()
	defer l.mu.Unlock()
	superseded := append([]lakeRecord(nil), l.commits[snap.Name]...)
	next := map[string][]lakeRecord{}
	for ds, recs := range l.commits {
		if ds == snap.Name {
			next[ds] = []lakeRecord{rec}
		} else {
			next[ds] = append([]lakeRecord(nil), recs...)
		}
	}
	// Atomically swap the journal for one that starts from the compact
	// record. The live handle must be closed across the rename.
	if err := l.journal.Close(); err != nil {
		return fmt.Errorf("serve: closing journal for compaction: %w", err)
	}
	jpath := filepath.Join(l.dir, lakeJournalName)
	err := checkpoint.RewriteJournal(jpath, func(app func(v any) error) error {
		for _, ds := range sortedKeys(next) {
			for i := range next[ds] {
				if err := app(&next[ds][i]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err == nil {
		l.commits = next
		// The old delta segments are unreferenced now; losing this cleanup
		// to a crash only leaves orphans recovery will sweep.
		for _, old := range superseded {
			os.Remove(l.segmentPath(old.Segment))
		}
	}
	// Reopen whichever journal the rewrite left in place — the new one on
	// success, the old (still valid) one on failure.
	j, jerr := checkpoint.OpenJournal(jpath)
	if jerr != nil {
		if err == nil {
			err = jerr
		}
		return err
	}
	l.journal = j
	return err
}

// Recover rebuilds every committed dataset into store and publishes each
// at its last committed generation. It also sweeps debris from crash
// windows: segment files no journal record references and stale
// checkpoint temp files. Recover is called once, before the store serves
// traffic.
func (l *Lake) Recover(store *Store) error {
	timer := l.metrics.Span("lake-recover").Begin()
	defer timer.End()
	l.mu.Lock()
	commits := make(map[string][]lakeRecord, len(l.commits))
	for ds, recs := range l.commits {
		commits[ds] = append([]lakeRecord(nil), recs...)
	}
	l.mu.Unlock()

	for _, ds := range sortedKeys(commits) {
		recs := commits[ds]
		last := recs[len(recs)-1]
		sys := systems.ByName(last.System)
		if sys == nil {
			return fmt.Errorf("serve: lake dataset %q is for unknown system %q", ds, last.System)
		}
		var agg *analysis.Aggregator
		for _, rec := range recs {
			var st analysis.AggregatorState
			if err := checkpoint.Load(l.segmentPath(rec.Segment), &st); err != nil {
				return fmt.Errorf("serve: lake segment for %s gen %d: %w", ds, rec.Gen, err)
			}
			if agg == nil {
				a, err := analysis.NewAggregatorFromState(sys, &st)
				if err != nil {
					return fmt.Errorf("serve: lake segment for %s gen %d: %w", ds, rec.Gen, err)
				}
				agg = a
			} else if err := agg.MergeState(&st); err != nil {
				return fmt.Errorf("serve: lake segment for %s gen %d: %w", ds, rec.Gen, err)
			}
			l.metrics.Counter("serve.lake.recovered_segments").Add(1)
		}
		store.publishRecovered(&Snapshot{
			Name:    ds,
			System:  sys.Name,
			Gen:     last.Gen,
			Report:  agg.Report(),
			Sources: last.Sources,
			agg:     agg,
		})
		l.metrics.Counter("serve.lake.recovered_datasets").Add(1)
	}
	l.sweep(commits)
	return nil
}

// sweep deletes files under datasets/ that no live journal record
// references — segments whose commit never became durable, delta segments
// a compaction superseded before crashing, and abandoned checkpoint
// temps. Only ever called from Recover, before any ingest can race with
// it.
func (l *Lake) sweep(commits map[string][]lakeRecord) {
	live := map[string]bool{}
	for _, recs := range commits {
		for _, rec := range recs {
			live[l.segmentPath(rec.Segment)] = true
		}
	}
	root := filepath.Join(l.dir, "datasets")
	dirs, err := os.ReadDir(root)
	if err != nil {
		return
	}
	swept := 0
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		dsDir := filepath.Join(root, d.Name())
		swept += checkpoint.SweepTemps(dsDir, "", 0)
		files, err := os.ReadDir(dsDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			p := filepath.Join(dsDir, f.Name())
			if f.IsDir() || live[p] {
				continue
			}
			if os.Remove(p) == nil {
				swept++
			}
		}
	}
	swept += checkpoint.SweepTemps(l.dir, lakeJournalName, 0)
	if swept > 0 {
		l.metrics.Counter("serve.lake.orphans_swept").Add(int64(swept))
	}
}

func sortedKeys(m map[string][]lakeRecord) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
