package serve

import (
	"net/http"
	"testing"
	"time"
)

// Regression: a query that exceeds the server-side deadline gets 503 and
// — the part that matters — releases its concurrency slot immediately.
// With MaxInFlight=1, a wedged render followed by a normal query proves
// the slot came back; before the deadline existed the second query would
// 429 forever behind the stuck one.
func TestQueryTimeoutFreesSlot(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts, s, _ := newTestServer(t, Config{
		MaxInFlight:  1,
		QueryTimeout: 100 * time.Millisecond,
	})
	stalled := make(chan struct{}, 8)
	s.testStall = func(endpoint string, r *http.Request) {
		if r.URL.Query().Get("wedge") == "1" {
			stalled <- struct{}{}
			<-release // wedged until the test ends
		}
	}

	resp, body := get(t, ts.URL+"/v1/report/prod?wedge=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wedged query status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("timeout 503 without Retry-After")
	}
	<-stalled // the render really was in flight when the deadline hit

	// The slot must be free: an ordinary query succeeds, not 429.
	resp, body = get(t, ts.URL+"/v1/report/prod")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after timeout = %d (%s) — the slot leaked", resp.StatusCode, body)
	}
}

// A generous deadline leaves fast queries untouched, and a negative
// QueryTimeout disables the deadline machinery entirely.
func TestQueryTimeoutDisabledAndGenerous(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{QueryTimeout: -1})
	if resp, body := get(t, ts.URL+"/v1/report/prod"); resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled-timeout query = %d (%s)", resp.StatusCode, body)
	}
	ts2, _, _ := newTestServer(t, Config{QueryTimeout: time.Minute})
	if resp, body := get(t, ts2.URL+"/v1/report/prod"); resp.StatusCode != http.StatusOK {
		t.Fatalf("generous-timeout query = %d (%s)", resp.StatusCode, body)
	}
}

// Liveness and readiness are distinct: /healthz stays 200 while /readyz
// tracks SetReady and store maintenance.
func TestReadinessSplitFromLiveness(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{})

	for _, path := range []string{"/healthz", "/readyz"} {
		if resp, body := get(t, ts.URL+path); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d (%s)", path, resp.StatusCode, body)
		}
	}

	// Not ready (boot recovery in progress): readyz 503, healthz still 200,
	// and queries still answer — readiness is advertisement, not a gate.
	s.SetReady(false)
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready /readyz = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready /readyz without Retry-After")
	}
	if string(body) != "not ready: recovering\n" {
		t.Errorf("not-ready body = %q", body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("liveness went down with readiness")
	}
	if resp, _ := get(t, ts.URL+"/v1/report/prod"); resp.StatusCode != http.StatusOK {
		t.Error("not-ready server refused a query")
	}
	if s.Ready() {
		t.Error("Ready() true while gate is down")
	}

	// Maintenance (simulated via the store's counter, the same path lake
	// replay and compaction take): readyz flips on its own.
	s.SetReady(true)
	s.store.maint.Add(1)
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || string(body) != "not ready: maintenance\n" {
		t.Errorf("maintenance /readyz = %d %q", resp.StatusCode, body)
	}
	s.store.maint.Add(-1)
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Error("readyz did not recover after maintenance")
	}
}
