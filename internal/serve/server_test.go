package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/httpapi"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

// newTestServer ingests a small corpus into dataset "prod" and returns the
// httptest server plus the source dir and the Server for white-box checks.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, string) {
	t.Helper()
	dir := corpusDir(t, 4)
	if cfg.Store == nil {
		cfg.Store = NewStore()
	}
	if _, _, err := cfg.Store.Ingest(context.Background(), "prod", systems.NewSummit(), dir, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, dir
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// The core API contract: the served JSON report is byte-identical to what
// ioanalyze -format json renders over the same logs.
func TestReportMatchesDirectRendering(t *testing.T) {
	ts, _, dir := newTestServer(t, Config{})

	rep, _, err := core.IngestDir(context.Background(), systems.NewSummit(), dir, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := report.RenderString(rep, report.Options{Format: report.FormatJSON})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/v1/report/prod?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != want {
		t.Error("served JSON report differs from direct rendering")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}

	// Per-section and text/csv formats render through the same path.
	resp, body = get(t, ts.URL+"/v1/report/prod?section=table2")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Table 2") {
		t.Errorf("section fetch: status %d body %.80s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/v1/report/prod?format=csv")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("csv fetch: status %d", resp.StatusCode)
	}
}

func TestReportCacheHitMissAndInvalidation(t *testing.T) {
	metrics := obsv.New()
	ts, _, dir := newTestServer(t, Config{Metrics: metrics})

	url := ts.URL + "/v1/report/prod?format=json"
	resp1, body1 := get(t, url)
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first fetch X-Cache = %q, want miss", got)
	}
	resp2, body2 := get(t, url)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second fetch X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached body differs from rendered body")
	}
	if hits := metrics.Counter("serve.cache.hits").Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// Re-ingest: the generation bumps, so the same URL is a miss again and
	// the report now covers twice the logs.
	ingestBody, _ := json.Marshal(map[string]string{"dataset": "prod", "source": dir})
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(ingestBody))
	if err != nil {
		t.Fatal(err)
	}
	ir, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, ir)
	}
	var ingested ingestResponse
	if err := json.Unmarshal(ir, &ingested); err != nil {
		t.Fatal(err)
	}
	if ingested.Generation != 2 {
		t.Errorf("generation after re-ingest = %d, want 2", ingested.Generation)
	}

	resp3, body3 := get(t, url)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("post-ingest fetch X-Cache = %q, want miss", got)
	}
	if gen := resp3.Header.Get("X-Dataset-Generation"); gen != "2" {
		t.Errorf("generation header = %q", gen)
	}
	var before, after report.Document
	if err := json.Unmarshal(body1, &before); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body3, &after); err != nil {
		t.Fatal(err)
	}
	if after.Summary.Logs != 2*before.Summary.Logs {
		t.Errorf("after re-ingest logs = %d, want %d", after.Summary.Logs, 2*before.Summary.Logs)
	}
}

func TestBackpressure429(t *testing.T) {
	metrics := obsv.New()
	ts, s, _ := newTestServer(t, Config{Metrics: metrics, MaxInFlight: 2})

	// Occupy every slot, as slow in-flight requests would.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, body := get(t, ts.URL+"/v1/report/prod")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q", ra)
	}
	env, ok := httpapi.DecodeError(body)
	if !ok || env.Error.Code != httpapi.CodeOverCapacity {
		t.Errorf("429 body not an over_capacity envelope: %s", body)
	}
	if env.Error.RetryAfterMS != 1000 {
		t.Errorf("429 retry_after_ms = %d, want 1000", env.Error.RetryAfterMS)
	}
	if metrics.Counter("serve.throttled").Value() != 1 {
		t.Error("throttle counter not bumped")
	}

	// Release one slot; queries flow again.
	<-s.sem
	resp, _ = get(t, ts.URL+"/v1/report/prod")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release status %d", resp.StatusCode)
	}
	<-s.sem
}

func TestMalformedRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/report/" + strings.Repeat("a", 65), http.StatusBadRequest},
		{"/v1/report/bad%20name", http.StatusBadRequest},
		{"/v1/report/prod?format=yaml", http.StatusBadRequest},
		{"/v1/report/prod?section=table99", http.StatusBadRequest},
		{"/v1/report/prod?format=csv&section=table2", http.StatusBadRequest},
		{"/v1/report/nosuch", http.StatusNotFound},
		{"/v1/compare/prod/nosuch", http.StatusNotFound},
		{"/v1/compare/prod/" + strings.Repeat("b", 65), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+c.url)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%.80s)", c.url, resp.StatusCode, c.want, body)
			continue
		}
		if env, ok := httpapi.DecodeError(body); !ok || env.Error.Message == "" {
			t.Errorf("%s: error body not an envelope: %s", c.url, body)
		}
	}

	// Ingest validation.
	for _, payload := range []string{
		`{"dataset":"x y","source":"/tmp"}`,
		`{"dataset":"ok"}`,
		`{"dataset":"ok","source":"/nope","system":"mars"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ingest %q: status %d, want 400", payload, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json",
		strings.NewReader(`{"dataset":"ok","source":"/definitely/not/here","system":"summit"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("missing source: status %d, want 422", resp.StatusCode)
	}
}

func TestDatasetsAndCompare(t *testing.T) {
	store := NewStore()
	ts, _, dir := newTestServer(t, Config{Store: store})
	if _, _, err := store.Ingest(context.Background(), "other", systems.NewSummit(), dir, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var dsResp DatasetsDoc
	if err := json.Unmarshal(body, &dsResp); err != nil {
		t.Fatal(err)
	}
	if dsResp.SchemaVersion != report.SchemaVersion || len(dsResp.Datasets) != 2 {
		t.Fatalf("schema=%d datasets=%d", dsResp.SchemaVersion, len(dsResp.Datasets))
	}
	if dsResp.Datasets[0].Name != "other" || dsResp.Datasets[1].Name != "prod" {
		t.Errorf("dataset order: %s, %s", dsResp.Datasets[0].Name, dsResp.Datasets[1].Name)
	}

	resp, body = get(t, ts.URL+"/v1/compare/prod/other")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status %d: %s", resp.StatusCode, body)
	}
	var cmp CompareDoc
	if err := json.Unmarshal(body, &cmp); err != nil {
		t.Fatal(err)
	}
	if cmp.A.Name != "prod" || cmp.B.Name != "other" || cmp.SchemaVersion != report.SchemaVersion {
		t.Errorf("compare envelope: %+v", cmp)
	}
	if cmp.Delta.Logs != cmp.B.Summary.Logs-cmp.A.Summary.Logs {
		t.Error("delta.logs inconsistent")
	}
	// Same corpus both sides: everything cancels.
	if cmp.Delta.Logs != 0 || cmp.Delta.Files != 0 {
		t.Errorf("delta = %+v, want zero", cmp.Delta)
	}
	if resp2, _ := get(t, ts.URL+"/v1/compare/prod/other"); resp2.Header.Get("X-Cache") != "hit" {
		t.Error("compare not cached")
	}
}

// The acceptance-criteria load test: ≥64 concurrent in-flight queries
// against a live re-ingest. Under -race this proves the copy-on-write
// publish discipline end to end: every 200 body is a complete, valid
// document from some published generation, never a torn intermediate.
func TestConcurrentQueriesDuringLiveReingest(t *testing.T) {
	store := NewStore()
	ts, _, dir := newTestServer(t, Config{Store: store, MaxInFlight: 256})

	sections := []string{"", "table2", "figure7", "users"}
	formats := []string{"json", "text"}
	validLogs := map[int64]bool{4: true, 8: true, 12: true, 16: true}

	const workers = 64
	var served atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	client := &http.Client{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/v1/report/prod?section=%s&format=%s",
					ts.URL, sections[(w+i)%len(sections)], formats[w%len(formats)])
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					if formats[w%len(formats)] == "json" {
						var doc report.Document
						if err := json.Unmarshal(body, &doc); err != nil {
							t.Errorf("torn JSON body: %v", err)
							return
						}
						if doc.SchemaVersion != report.SchemaVersion || !validLogs[doc.Summary.Logs] {
							t.Errorf("impossible document: schema=%d logs=%d", doc.SchemaVersion, doc.Summary.Logs)
							return
						}
					}
				case http.StatusTooManyRequests:
					// Load shedding is a valid answer under this hammering.
				default:
					t.Errorf("status %d: %.120s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}

	// Live re-ingests while the readers hammer: 4 → 8 → 12 → 16 logs.
	for gen := 2; gen <= 4; gen++ {
		payload, _ := json.Marshal(map[string]string{"dataset": "prod", "source": dir})
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("re-ingest %d: status %d: %s", gen, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no queries were served during the re-ingest window")
	}
	if snap, _ := store.Get("prod"); snap.Gen != 4 || snap.Report.Summary.Logs != 16 {
		t.Errorf("final gen=%d logs=%d, want 4/16", snap.Gen, snap.Report.Summary.Logs)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	metrics := obsv.New()
	ts, _, _ := newTestServer(t, Config{Metrics: metrics})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	get(t, ts.URL+"/v1/report/prod")
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "serve.report.requests") {
		t.Errorf("metrics missing request counter:\n%s", body)
	}
	resp, body = get(t, ts.URL+"/metrics.json")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Error("metrics.json not valid JSON")
	}
}
