package serve

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iolayers/internal/checkpoint"
	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

func openLake(t *testing.T, dir string, compactEvery int) *Lake {
	t.Helper()
	l, err := OpenLake(LakeConfig{Dir: dir, CompactEvery: compactEvery, Metrics: obsv.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func lakeStore(t *testing.T, l *Lake) *Store {
	t.Helper()
	st, err := NewStoreWithLake(l)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// renderedGen renders one snapshot the way /v1/report does at format=text,
// whole-report — the byte-identity token the lake must preserve.
func renderedGen(snap *Snapshot) string { return report.Everything(snap.Report) }

// TestLakeRestartRecoversGenerations is the basic durability contract:
// ingest several generations from mixed source kinds, reopen the lake in
// a fresh store (a restart), and require every dataset back at its last
// committed generation with a byte-identical report — at more than one
// worker count.
func TestLakeRestartRecoversGenerations(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := corpusDir(t, 4)
			adir := t.TempDir()
			archive := corpusArchive(t, adir, 3)
			columnar := filepath.Join(adir, "campaign.dgc")
			if _, err := core.ConvertArchive(context.Background(), archive, columnar, core.ConvertOptions{}); err != nil {
				t.Fatal(err)
			}
			sys := systems.NewSummit()
			opts := core.IngestOptions{Workers: workers}

			lakeDir := t.TempDir()
			st := lakeStore(t, openLake(t, lakeDir, 0))
			want := map[string]string{}
			wantGen := map[string]uint64{}
			for _, ing := range []struct{ ds, src string }{
				{"prod", dir}, {"prod", archive}, {"prod", columnar},
				{"other", dir},
			} {
				snap, _, err := st.Ingest(context.Background(), ing.ds, sys, ing.src, opts)
				if err != nil {
					t.Fatalf("ingest %s <- %s: %v", ing.ds, ing.src, err)
				}
				want[ing.ds] = renderedGen(snap)
				wantGen[ing.ds] = snap.Gen
			}

			// "Restart": a brand-new lake handle and store over the same dir.
			// The old handles are simply abandoned, as a kill -9 would leave
			// them.
			st2 := lakeStore(t, openLake(t, lakeDir, 0))
			for ds, wantRep := range want {
				snap, ok := st2.Get(ds)
				if !ok {
					t.Fatalf("dataset %s lost across restart", ds)
				}
				if snap.Gen != wantGen[ds] {
					t.Errorf("%s recovered at gen %d, want %d", ds, snap.Gen, wantGen[ds])
				}
				if got := renderedGen(snap); got != wantRep {
					t.Errorf("%s gen %d report differs after recovery", ds, snap.Gen)
				}
				if len(snap.Sources) != int(wantGen[ds]) {
					t.Errorf("%s recovered %d sources, want %d", ds, len(snap.Sources), wantGen[ds])
				}
			}
			// Ingest continues cleanly after recovery, extending the history.
			snap, _, err := st2.Ingest(context.Background(), "prod", sys, dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Gen != wantGen["prod"]+1 {
				t.Errorf("post-recovery ingest published gen %d, want %d", snap.Gen, wantGen["prod"]+1)
			}
		})
	}
}

// TestLakeMatchesMemoryStore pins the delta+merge ingestion path to the
// in-memory behavior: the same sequence of ingests through a lake-backed
// store, a plain store, and recovery must all render byte-identical
// reports. This is the referee for the claim that merging persisted
// segments equals folding straight in.
func TestLakeMatchesMemoryStore(t *testing.T) {
	dir := corpusDir(t, 5)
	sys := systems.NewSummit()
	opts := core.IngestOptions{Workers: 2}

	mem := NewStore()
	var memRep string
	for i := 0; i < 3; i++ {
		snap, _, err := mem.Ingest(context.Background(), "ds", sys, dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		memRep = renderedGen(snap)
	}

	lakeDir := t.TempDir()
	st := lakeStore(t, openLake(t, lakeDir, 0))
	var lakeRep string
	for i := 0; i < 3; i++ {
		snap, _, err := st.Ingest(context.Background(), "ds", sys, dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		lakeRep = renderedGen(snap)
	}
	if lakeRep != memRep {
		t.Error("lake-backed store rendered a different report than the memory store")
	}

	rec, ok := lakeStore(t, openLake(t, lakeDir, 0)).Get("ds")
	if !ok || renderedGen(rec) != memRep {
		t.Error("recovered report differs from the memory store's")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, p)
		out := filepath.Join(dst, rel)
		if fi.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		o, err := os.Create(out)
		if err != nil {
			return err
		}
		defer o.Close()
		_, err = io.Copy(o, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLakeKillAtEveryJournalByte is the crash-recovery property test, in
// the spirit of internal/core/resume_test.go but exhaustive rather than
// sampled: truncating the commit journal at byte N is exactly the disk
// state a kill -9 at instant N of the commit sequence leaves behind. For
// every truncation point, recovery must come up with each dataset at the
// generation whose record is still fully durable — never a torn or
// half-applied one — rendering the byte-identical report captured when
// that generation was first published, across worker counts.
func TestLakeKillAtEveryJournalByte(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive journal sweep in -short mode")
	}
	dir := corpusDir(t, 3)
	adir := t.TempDir()
	archive := corpusArchive(t, adir, 2)
	sys := systems.NewSummit()

	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			lakeDir := t.TempDir()
			st := lakeStore(t, openLake(t, lakeDir, 0))
			// rendered[ds][gen] is the report served when gen was published.
			rendered := map[string]map[uint64]string{}
			for _, ing := range []struct{ ds, src string }{
				{"alpha", dir}, {"beta", archive}, {"alpha", archive}, {"beta", dir},
			} {
				snap, _, err := st.Ingest(context.Background(), ing.ds, sys, ing.src,
					core.IngestOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if rendered[ing.ds] == nil {
					rendered[ing.ds] = map[uint64]string{}
				}
				rendered[ing.ds][snap.Gen] = renderedGen(snap)
			}

			journal, err := os.ReadFile(filepath.Join(lakeDir, lakeJournalName))
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n <= len(journal); n++ {
				crashDir := filepath.Join(t.TempDir(), "lake")
				copyTree(t, lakeDir, crashDir)
				if err := os.WriteFile(filepath.Join(crashDir, lakeJournalName), journal[:n], 0o644); err != nil {
					t.Fatal(err)
				}

				// What the truncated journal still commits, per dataset.
				committed := map[string]uint64{}
				err := checkpoint.ReplayJournal(filepath.Join(crashDir, lakeJournalName), func(dec *gob.Decoder) error {
					var rec lakeRecord
					if err := dec.Decode(&rec); err != nil {
						return err
					}
					committed[rec.Dataset] = rec.Gen
					return nil
				})
				if err != nil && !errors.Is(err, checkpoint.ErrNotJournal) {
					t.Fatalf("cut at %d: replay: %v", n, err)
				}

				l, err := OpenLake(LakeConfig{Dir: crashDir})
				if err != nil {
					t.Fatalf("cut at %d: reopening lake: %v", n, err)
				}
				rec, err := NewStoreWithLake(l)
				if err != nil {
					l.Close()
					t.Fatalf("cut at %d: recovery: %v", n, err)
				}
				for ds, gens := range rendered {
					snap, ok := rec.Get(ds)
					wantGen, wantOK := committed[ds]
					if ok != wantOK {
						t.Fatalf("cut at %d: dataset %s present=%v, want %v", n, ds, ok, wantOK)
					}
					if !ok {
						continue
					}
					if snap.Gen != wantGen {
						t.Fatalf("cut at %d: %s at gen %d, want last committed %d", n, ds, snap.Gen, wantGen)
					}
					if renderedGen(snap) != gens[wantGen] {
						t.Fatalf("cut at %d: %s gen %d report differs from pre-kill rendering", n, ds, wantGen)
					}
				}
				l.Close()
			}
		})
	}
}

// TestLakeIgnoresUncommittedSegment covers the crash window between the
// segment write and the journal append: the orphan segment must not
// surface a generation, and recovery sweeps it (and any stale checkpoint
// temps) from the dataset directory.
func TestLakeIgnoresUncommittedSegment(t *testing.T) {
	dir := corpusDir(t, 2)
	sys := systems.NewSummit()
	lakeDir := t.TempDir()
	st := lakeStore(t, openLake(t, lakeDir, 0))
	snap, _, err := st.Ingest(context.Background(), "ds", sys, dir, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderedGen(snap)

	dsDir := filepath.Join(lakeDir, "datasets", "ds")
	orphan := filepath.Join(dsDir, "seg-00000002.ckpt")
	if err := checkpoint.Save(orphan, snap.agg.State()); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dsDir, "seg-00000003.ckpt.tmp42")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	metrics := obsv.New()
	l, err := OpenLake(LakeConfig{Dir: lakeDir, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := lakeStore(t, l)
	got, ok := rec.Get("ds")
	if !ok || got.Gen != 1 || renderedGen(got) != want {
		t.Fatalf("recovery surfaced the uncommitted segment: gen %d", got.Gen)
	}
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("recovery left crash debris %s: %v", filepath.Base(p), err)
		}
	}
	if metrics.Counter("serve.lake.orphans_swept").Value() < 2 {
		t.Error("orphan sweep not counted")
	}
}

// TestLakeCompaction checks the bounded-recovery invariant: past the
// threshold, a dataset's segments fold into one compact segment, the
// journal is truncated to start from it, superseded segment files are
// deleted — and recovery from the compacted lake is byte-identical.
func TestLakeCompaction(t *testing.T) {
	dir := corpusDir(t, 3)
	sys := systems.NewSummit()
	lakeDir := t.TempDir()
	metrics := obsv.New()
	l, err := OpenLake(LakeConfig{Dir: lakeDir, CompactEvery: 3, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := lakeStore(t, l)

	var last *Snapshot
	for i := 0; i < 4; i++ {
		if last, _, err = st.Ingest(context.Background(), "ds", sys, dir, core.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := metrics.Counter("serve.lake.compactions").Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1 (threshold 3, 4 ingests)", got)
	}
	dsDir := filepath.Join(lakeDir, "datasets", "ds")
	entries, err := os.ReadDir(dsDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	// Gen 1-3 folded into seg-00000003-compact; gen 4's delta follows it.
	if len(names) != 2 {
		t.Fatalf("dataset dir after compaction holds %v, want compact segment + gen-4 delta", names)
	}
	for _, n := range names {
		if !strings.Contains(n, "compact") && n != "seg-00000004.ckpt" {
			t.Errorf("unexpected surviving segment %s", n)
		}
	}

	recMetrics := obsv.New()
	l2, err := OpenLake(LakeConfig{Dir: lakeDir, Metrics: recMetrics})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := lakeStore(t, l2)
	snap, ok := rec.Get("ds")
	if !ok || snap.Gen != 4 {
		t.Fatalf("recovered gen %d, want 4", snap.Gen)
	}
	if renderedGen(snap) != renderedGen(last) {
		t.Error("report after compacted recovery differs from pre-compaction rendering")
	}
	if got := recMetrics.Counter("serve.lake.recovered_segments").Value(); got != 2 {
		t.Errorf("recovery merged %d segments, want 2 (compact + one delta)", got)
	}
}

// TestLakeCommitFailureKeepsGeneration: a dataset whose lake commit fails
// (journal unwritable) must keep serving its current generation and must
// not advance, mirroring the no-publish-on-error contract.
func TestLakeCommitFailureKeepsGeneration(t *testing.T) {
	dir := corpusDir(t, 2)
	sys := systems.NewSummit()
	lakeDir := t.TempDir()
	l := openLake(t, lakeDir, 0)
	st := lakeStore(t, l)
	if _, _, err := st.Ingest(context.Background(), "ds", sys, dir, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the journal handle: further appends must fail.
	l.journal.Close()
	if _, _, err := st.Ingest(context.Background(), "ds", sys, dir, core.IngestOptions{}); err == nil {
		t.Fatal("ingest succeeded with a dead journal")
	}
	snap, ok := st.Get("ds")
	if !ok || snap.Gen != 1 {
		t.Fatalf("failed commit moved the dataset to gen %d, want 1", snap.Gen)
	}
}
