package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"iolayers/internal/core"
	"iolayers/internal/httpapi"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/predict"
	"iolayers/internal/report"
)

// DefaultMaxInFlight bounds concurrently-executing query requests when the
// caller does not choose a bound.
const DefaultMaxInFlight = 64

// DefaultQueryTimeout bounds one query handler's execution when the caller
// does not choose: long enough for any honest render, short enough that a
// wedged one cannot hold a concurrency slot for the life of the process.
const DefaultQueryTimeout = 30 * time.Second

// Config configures a Server.
type Config struct {
	// Store holds the datasets; required.
	Store *Store
	// Metrics receives request counters, latency histograms, cache
	// hit/miss counters, and the in-flight gauge. Nil disables
	// instrumentation at zero cost.
	Metrics *obsv.Registry
	// MaxInFlight bounds concurrently-executing query requests; excess
	// requests are rejected immediately with 429 and Retry-After rather
	// than queued (0 means DefaultMaxInFlight).
	MaxInFlight int
	// QueryTimeout bounds each query handler's execution: a request still
	// running at the deadline gets 503 + Retry-After and releases its
	// concurrency slot immediately, so a stuck render can never pin the
	// server's capacity (0 means DefaultQueryTimeout, negative disables).
	QueryTimeout time.Duration
	// CacheBytes bounds the rendered-report LRU (0 means
	// DefaultCacheBytes).
	CacheBytes int64
	// IngestWorkers is the worker-pool size for ingest passes (0 means
	// GOMAXPROCS).
	IngestWorkers int
}

// Server answers report queries over HTTP. Create with New, mount with
// Handler.
//
// Liveness and readiness are distinct surfaces: /healthz answers "the
// process is up" unconditionally, while /readyz answers "route traffic
// here" — false while the caller holds readiness down (SetReady, e.g.
// before the initial lake replay and ingests finish) and while the store
// is inside a maintenance pass such as lake compaction.
type Server struct {
	store         *Store
	cache         *Cache
	sem           chan struct{}
	metrics       *obsv.Registry
	ingestWorkers int
	queryTimeout  time.Duration
	ready         atomic.Bool
	mux           *http.ServeMux

	// testStall, when set by tests, runs inside the deadline-bounded
	// goroutine before the handler — the hook for simulating a wedged
	// render.
	testStall func(endpoint string, r *http.Request)
}

// New builds a Server over cfg.Store. The server starts ready; callers
// that recover state before serving flip readiness with SetReady.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = NewStore()
	}
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}
	timeout := cfg.QueryTimeout
	if timeout == 0 {
		timeout = DefaultQueryTimeout
	}
	s := &Server{
		store:         cfg.Store,
		cache:         NewCache(cfg.CacheBytes),
		sem:           make(chan struct{}, inflight),
		metrics:       cfg.Metrics,
		ingestWorkers: cfg.IngestWorkers,
		queryTimeout:  timeout,
	}
	s.ready.Store(true)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1", s.instrumented("index", s.handleIndex))
	s.mux.HandleFunc("GET /v1/datasets", s.bounded("datasets", s.handleDatasets))
	s.mux.HandleFunc("GET /v1/report/{dataset}", s.bounded("report", s.handleReport))
	s.mux.HandleFunc("GET /v1/compare/{a}/{b}", s.bounded("compare", s.handleCompare))
	s.mux.HandleFunc("GET /v1/predict/{dataset}", s.bounded("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/ingest", s.instrumented("ingest", s.handleIngest))
	if cfg.Metrics != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, cfg.Metrics.Snapshot().Text())
		})
		s.mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(cfg.Metrics.Snapshot().JSON())
		})
	}
	return s
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the readiness gate /readyz reports. It does not affect
// query handling — a not-ready server still answers whatever it has —
// only what the server advertises to routers and load balancers.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the server currently advertises readiness:
// the gate is up and the store is not inside a maintenance pass.
func (s *Server) Ready() bool { return s.ready.Load() && !s.store.InMaintenance() }

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case !s.ready.Load():
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "not ready: recovering\n")
	case s.store.InMaintenance():
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "not ready: maintenance\n")
	default:
		io.WriteString(w, "ready\n")
	}
}

// bounded wraps a query handler with the concurrency gate: acquire a slot
// or reject immediately with 429 + Retry-After (load-shedding beats
// queueing for a service whose responses are cheap once cached), then
// record latency and in-flight depth. Inside the slot the handler runs
// under the query deadline.
func (s *Server) bounded(name string, fn http.HandlerFunc) http.HandlerFunc {
	timed := s.deadlined(name, fn)
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.Counter("serve.throttled").Add(1)
			httpapi.WriteErrorRetry(w, http.StatusTooManyRequests, httpapi.CodeOverCapacity,
				"server at capacity, retry shortly", time.Second)
			return
		}
		s.metrics.Gauge("serve.inflight").Set(float64(len(s.sem)))
		defer func() {
			<-s.sem
			s.metrics.Gauge("serve.inflight").Set(float64(len(s.sem)))
		}()
		s.instrumented(name, timed)(w, r)
	}
}

// deadlined bounds one query handler's execution with the server's query
// timeout. The handler runs in its own goroutine against a buffered
// response; if it beats the deadline the buffer is flushed verbatim, and
// if not the caller gets 503 + Retry-After while the stuck goroutine is
// abandoned to finish against the buffer — crucially *after* the
// concurrency slot is released, so a wedged render costs one goroutine,
// not a semaphore slot forever.
func (s *Server) deadlined(name string, fn http.HandlerFunc) http.HandlerFunc {
	if s.queryTimeout <= 0 {
		return fn
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		buf := &bufferedResponse{header: http.Header{}, code: http.StatusOK}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if s.testStall != nil {
				s.testStall(name, r)
			}
			fn(buf, r)
		}()
		select {
		case <-done:
			buf.flush(w)
		case <-ctx.Done():
			s.metrics.Counter("serve.query_timeouts").Add(1)
			httpapi.WriteErrorRetry(w, http.StatusServiceUnavailable, httpapi.CodeTimeout,
				fmt.Sprintf("query exceeded the %v server-side deadline", s.queryTimeout), time.Second)
		}
	}
}

// bufferedResponse is the in-memory ResponseWriter a deadlined handler
// renders into, so a timed-out handler can never race the real connection.
type bufferedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) { b.code = code }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) flush(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes())
}

// instrumented records per-endpoint request counts and wall latency.
func (s *Server) instrumented(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		s.metrics.Counter("serve." + name + ".requests").Add(1)
		s.metrics.TimeHistogram("serve." + name + ".latency_us").Observe(time.Since(start).Microseconds())
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	data, err := MarshalDoc(v)
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// Routes is the machine-readable index of every route ioserved mounts,
// served at GET /v1 and reused by iorouter (which adds its own cluster
// routes). Kept here, next to the mux registrations, so the two cannot
// drift apart silently — the doc-sync test cross-checks docs/api.md
// against this list.
func Routes() []httpapi.Route {
	return []httpapi.Route{
		{Path: "/healthz", Methods: []string{"GET"}},
		{Path: "/readyz", Methods: []string{"GET"}},
		{Path: "/v1", Methods: []string{"GET"}, SchemaVersion: httpapi.IndexSchemaVersion},
		{Path: "/v1/datasets", Methods: []string{"GET"}, SchemaVersion: report.SchemaVersion},
		{Path: "/v1/report/{dataset}", Methods: []string{"GET"}, Params: []string{"format", "section"}, SchemaVersion: report.SchemaVersion},
		{Path: "/v1/compare/{a}/{b}", Methods: []string{"GET"}, SchemaVersion: report.SchemaVersion},
		{Path: "/v1/predict/{dataset}", Methods: []string{"GET"}, SchemaVersion: predict.SchemaVersion},
		{Path: "/v1/ingest", Methods: []string{"POST"}, SchemaVersion: report.SchemaVersion},
		{Path: "/metrics", Methods: []string{"GET"}},
		{Path: "/metrics.json", Methods: []string{"GET"}},
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if _, err := httpapi.Query(r); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	s.writeJSON(w, httpapi.BuildIndex("ioserved", Routes()))
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if _, err := httpapi.Query(r); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	resp := DatasetsDoc{SchemaVersion: report.SchemaVersion, Datasets: []DatasetRow{}}
	for _, snap := range s.store.List() {
		resp.Datasets = append(resp.Datasets, RowOf(snap))
	}
	s.writeJSON(w, resp)
}

func contentTypeFor(f report.Format) string {
	switch f {
	case report.FormatJSON:
		return "application/json"
	case report.FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("dataset")
	if !ValidDatasetName(name) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", name))
		return
	}
	params, err := httpapi.Query(r, "format", "section")
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	format, err := report.ParseFormat(params["format"])
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	section := report.CanonicalSection(params["section"])
	snap, ok := s.store.Get(name)
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, fmt.Sprintf("no dataset %q", name))
		return
	}

	key := fmt.Sprintf("report|%s|%d|%s|%s", snap.Name, snap.Gen, section, format)
	w.Header().Set("X-Dataset-Generation", fmt.Sprint(snap.Gen))
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.Counter("serve.cache.hits").Add(1)
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.Counter("serve.cache.misses").Add(1)
	body, err := report.RenderString(snap.Report, report.Options{Format: format, Section: section})
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	ctype := contentTypeFor(format)
	s.cache.Put(key, ctype, []byte(body))
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Cache", "miss")
	io.WriteString(w, body)
}

// handlePredict serves the predictive-analytics document for one dataset:
// the burst model and forecast mined from the frozen aggregate state, the
// per-app placement hints, and — when the dataset's system has a
// simulation model — the closed-loop replay of those hints. The document
// is a pure function of (dataset, generation), so it caches under the
// generation key exactly like reports and is byte-identical from any
// replica at any ingest worker count.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("dataset")
	if !ValidDatasetName(name) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", name))
		return
	}
	if _, err := httpapi.Query(r); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	snap, ok := s.store.Get(name)
	if !ok {
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, fmt.Sprintf("no dataset %q", name))
		return
	}

	key := fmt.Sprintf("predict|%s|%d", snap.Name, snap.Gen)
	w.Header().Set("X-Dataset-Generation", fmt.Sprint(snap.Gen))
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.Counter("serve.cache.hits").Add(1)
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.Counter("serve.cache.misses").Add(1)
	p := predict.FromReport(snap.Report)
	if sys := systems.ByName(snap.System); sys != nil {
		p = p.WithReplay(sys, snap.Report)
	}
	data, err := MarshalDoc(predict.NewDocument(snap.Name, snap.Gen, p))
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	s.cache.Put(key, "application/json", data)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Write(data)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	nameA, nameB := r.PathValue("a"), r.PathValue("b")
	for _, n := range []string{nameA, nameB} {
		if !ValidDatasetName(n) {
			httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", n))
			return
		}
	}
	if _, err := httpapi.Query(r); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadParam, err.Error())
		return
	}
	snapA, okA := s.store.Get(nameA)
	snapB, okB := s.store.Get(nameB)
	if !okA || !okB {
		missing := nameA
		if okA {
			missing = nameB
		}
		httpapi.WriteError(w, http.StatusNotFound, httpapi.CodeNotFound, fmt.Sprintf("no dataset %q", missing))
		return
	}

	key := fmt.Sprintf("compare|%s|%d|%s|%d", snapA.Name, snapA.Gen, snapB.Name, snapB.Gen)
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.Counter("serve.cache.hits").Add(1)
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.Counter("serve.cache.misses").Add(1)
	data, err := CompareDocument(RowOf(snapA), RowOf(snapB))
	if err != nil {
		httpapi.WriteError(w, http.StatusInternalServerError, httpapi.CodeInternal, err.Error())
		return
	}
	s.cache.Put(key, "application/json", data)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Write(data)
}

// ingestRequest is the POST /v1/ingest body.
type ingestRequest struct {
	// Dataset names the dataset to create or extend.
	Dataset string `json:"dataset"`
	// System is the system profile ("summit" or "cori"); required when
	// the dataset does not exist yet, must match when it does.
	System string `json:"system"`
	// Source is a directory of .darshan logs, a .dgar archive, or a
	// single .darshan file on the server's filesystem.
	Source string `json:"source"`
}

type ingestResponse struct {
	SchemaVersion int        `json:"schema_version"`
	Dataset       string     `json:"dataset"`
	System        string     `json:"system"`
	Generation    uint64     `json:"generation"`
	Parsed        int        `json:"parsed"`
	Failed        int        `json:"failed"`
	Summary       SummaryDoc `json:"summary"`
}

// maxIngestBody bounds the ingest request document.
const maxIngestBody = 1 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("bad ingest request: %v", err))
		return
	}
	if !ValidDatasetName(req.Dataset) {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("invalid dataset name %q", req.Dataset))
		return
	}
	if req.Source == "" {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, "source is required")
		return
	}
	systemName := req.System
	if cur, ok := s.store.Get(req.Dataset); ok && systemName == "" {
		systemName = cur.System
	}
	sys := systems.ByName(systemName)
	if sys == nil {
		httpapi.WriteError(w, http.StatusBadRequest, httpapi.CodeBadRequest, fmt.Sprintf("unknown system %q", systemName))
		return
	}

	snap, res, err := s.store.Ingest(r.Context(), req.Dataset, sys, req.Source, core.IngestOptions{
		Workers: s.ingestWorkers,
		Metrics: s.metrics,
	})
	if err != nil {
		s.metrics.Counter("serve.ingest.errors").Add(1)
		httpapi.WriteError(w, http.StatusUnprocessableEntity, httpapi.CodeIngestFailed, err.Error())
		return
	}
	s.metrics.Counter("serve.ingest.published").Add(1)
	s.writeJSON(w, ingestResponse{
		SchemaVersion: report.SchemaVersion,
		Dataset:       snap.Name,
		System:        snap.System,
		Generation:    snap.Gen,
		Parsed:        res.Parsed,
		Failed:        res.Failed,
		Summary:       summaryOf(snap),
	})
}
