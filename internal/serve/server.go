package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"iolayers/internal/core"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/obsv"
	"iolayers/internal/report"
)

// DefaultMaxInFlight bounds concurrently-executing query requests when the
// caller does not choose a bound.
const DefaultMaxInFlight = 64

// Config configures a Server.
type Config struct {
	// Store holds the datasets; required.
	Store *Store
	// Metrics receives request counters, latency histograms, cache
	// hit/miss counters, and the in-flight gauge. Nil disables
	// instrumentation at zero cost.
	Metrics *obsv.Registry
	// MaxInFlight bounds concurrently-executing query requests; excess
	// requests are rejected immediately with 429 and Retry-After rather
	// than queued (0 means DefaultMaxInFlight).
	MaxInFlight int
	// CacheBytes bounds the rendered-report LRU (0 means
	// DefaultCacheBytes).
	CacheBytes int64
	// IngestWorkers is the worker-pool size for ingest passes (0 means
	// GOMAXPROCS).
	IngestWorkers int
}

// Server answers report queries over HTTP. Create with New, mount with
// Handler.
type Server struct {
	store         *Store
	cache         *Cache
	sem           chan struct{}
	metrics       *obsv.Registry
	ingestWorkers int
	mux           *http.ServeMux
}

// New builds a Server over cfg.Store.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = NewStore()
	}
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = DefaultMaxInFlight
	}
	s := &Server{
		store:         cfg.Store,
		cache:         NewCache(cfg.CacheBytes),
		sem:           make(chan struct{}, inflight),
		metrics:       cfg.Metrics,
		ingestWorkers: cfg.IngestWorkers,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/datasets", s.bounded("datasets", s.handleDatasets))
	s.mux.HandleFunc("GET /v1/report/{dataset}", s.bounded("report", s.handleReport))
	s.mux.HandleFunc("GET /v1/compare/{a}/{b}", s.bounded("compare", s.handleCompare))
	s.mux.HandleFunc("POST /v1/ingest", s.instrumented("ingest", s.handleIngest))
	if cfg.Metrics != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, cfg.Metrics.Snapshot().Text())
		})
		s.mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(cfg.Metrics.Snapshot().JSON())
		})
	}
	return s
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// bounded wraps a query handler with the concurrency gate: acquire a slot
// or reject immediately with 429 + Retry-After (load-shedding beats
// queueing for a service whose responses are cheap once cached), then
// record latency and in-flight depth.
func (s *Server) bounded(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.Counter("serve.throttled").Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, "server at capacity, retry shortly")
			return
		}
		s.metrics.Gauge("serve.inflight").Set(float64(len(s.sem)))
		defer func() {
			<-s.sem
			s.metrics.Gauge("serve.inflight").Set(float64(len(s.sem)))
		}()
		s.instrumented(name, fn)(w, r)
	}
}

// instrumented records per-endpoint request counts and wall latency.
func (s *Server) instrumented(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		s.metrics.Counter("serve." + name + ".requests").Add(1)
		s.metrics.TimeHistogram("serve." + name + ".latency_us").Observe(time.Since(start).Microseconds())
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorBody{Error: msg})
	w.Write(append(data, '\n'))
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// summaryJSON mirrors analysis.Summary with stable JSON names (the same
// shape report.Document uses).
type summaryJSON struct {
	System    string  `json:"system"`
	Logs      int64   `json:"logs"`
	Jobs      int64   `json:"jobs"`
	Files     int64   `json:"files"`
	NodeHours float64 `json:"node_hours"`
}

func summaryOf(snap *Snapshot) summaryJSON {
	sum := snap.Report.Summary
	return summaryJSON{
		System: sum.System, Logs: sum.Logs, Jobs: sum.Jobs,
		// Canonicalized for the same reason report.Document does it: the
		// raw sum's last bits are partition-order noise.
		Files: sum.Files, NodeHours: report.CanonicalNodeHours(sum.NodeHours),
	}
}

// datasetInfo is one row of the /v1/datasets listing.
type datasetInfo struct {
	Name       string      `json:"name"`
	System     string      `json:"system"`
	Generation uint64      `json:"generation"`
	Summary    summaryJSON `json:"summary"`
	Sources    []string    `json:"sources"`
}

type datasetsResponse struct {
	SchemaVersion int           `json:"schema_version"`
	Datasets      []datasetInfo `json:"datasets"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	resp := datasetsResponse{SchemaVersion: report.SchemaVersion, Datasets: []datasetInfo{}}
	for _, snap := range s.store.List() {
		resp.Datasets = append(resp.Datasets, datasetInfo{
			Name: snap.Name, System: snap.System, Generation: snap.Gen,
			Summary: summaryOf(snap), Sources: snap.Sources,
		})
	}
	s.writeJSON(w, resp)
}

func contentTypeFor(f report.Format) string {
	switch f {
	case report.FormatJSON:
		return "application/json"
	case report.FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("dataset")
	if !ValidDatasetName(name) {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid dataset name %q", name))
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	section := report.CanonicalSection(r.URL.Query().Get("section"))
	snap, ok := s.store.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no dataset %q", name))
		return
	}

	key := fmt.Sprintf("report|%s|%d|%s|%s", snap.Name, snap.Gen, section, format)
	w.Header().Set("X-Dataset-Generation", fmt.Sprint(snap.Gen))
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.Counter("serve.cache.hits").Add(1)
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.Counter("serve.cache.misses").Add(1)
	body, err := report.RenderString(snap.Report, report.Options{Format: format, Section: section})
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctype := contentTypeFor(format)
	s.cache.Put(key, ctype, []byte(body))
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Cache", "miss")
	fmt.Fprint(w, body)
}

// compareSide is one dataset's half of a /v1/compare response.
type compareSide struct {
	Name       string      `json:"name"`
	System     string      `json:"system"`
	Generation uint64      `json:"generation"`
	Summary    summaryJSON `json:"summary"`
}

// compareResponse sets two datasets' campaign summaries side by side —
// the cross-system reading the paper's Tables 2–6 are built around.
type compareResponse struct {
	SchemaVersion int         `json:"schema_version"`
	A             compareSide `json:"a"`
	B             compareSide `json:"b"`
	// Delta is b minus a, fieldwise.
	Delta summaryDelta `json:"delta"`
}

type summaryDelta struct {
	Logs      int64   `json:"logs"`
	Jobs      int64   `json:"jobs"`
	Files     int64   `json:"files"`
	NodeHours float64 `json:"node_hours"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	nameA, nameB := r.PathValue("a"), r.PathValue("b")
	for _, n := range []string{nameA, nameB} {
		if !ValidDatasetName(n) {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid dataset name %q", n))
			return
		}
	}
	snapA, okA := s.store.Get(nameA)
	snapB, okB := s.store.Get(nameB)
	if !okA || !okB {
		missing := nameA
		if okA {
			missing = nameB
		}
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no dataset %q", missing))
		return
	}

	key := fmt.Sprintf("compare|%s|%d|%s|%d", snapA.Name, snapA.Gen, snapB.Name, snapB.Gen)
	if body, ctype, ok := s.cache.Get(key); ok {
		s.metrics.Counter("serve.cache.hits").Add(1)
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.metrics.Counter("serve.cache.misses").Add(1)
	a, b := summaryOf(snapA), summaryOf(snapB)
	resp := compareResponse{
		SchemaVersion: report.SchemaVersion,
		A:             compareSide{Name: snapA.Name, System: snapA.System, Generation: snapA.Gen, Summary: a},
		B:             compareSide{Name: snapB.Name, System: snapB.System, Generation: snapB.Gen, Summary: b},
		Delta: summaryDelta{
			Logs: b.Logs - a.Logs, Jobs: b.Jobs - a.Jobs,
			Files: b.Files - a.Files, NodeHours: b.NodeHours - a.NodeHours,
		},
	}
	data, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	data = append(data, '\n')
	s.cache.Put(key, "application/json", data)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Write(data)
}

// ingestRequest is the POST /v1/ingest body.
type ingestRequest struct {
	// Dataset names the dataset to create or extend.
	Dataset string `json:"dataset"`
	// System is the system profile ("summit" or "cori"); required when
	// the dataset does not exist yet, must match when it does.
	System string `json:"system"`
	// Source is a directory of .darshan logs, a .dgar archive, or a
	// single .darshan file on the server's filesystem.
	Source string `json:"source"`
}

type ingestResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Dataset       string      `json:"dataset"`
	System        string      `json:"system"`
	Generation    uint64      `json:"generation"`
	Parsed        int         `json:"parsed"`
	Failed        int         `json:"failed"`
	Summary       summaryJSON `json:"summary"`
}

// maxIngestBody bounds the ingest request document.
const maxIngestBody = 1 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad ingest request: %v", err))
		return
	}
	if !ValidDatasetName(req.Dataset) {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid dataset name %q", req.Dataset))
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "source is required")
		return
	}
	systemName := req.System
	if cur, ok := s.store.Get(req.Dataset); ok && systemName == "" {
		systemName = cur.System
	}
	sys := systems.ByName(systemName)
	if sys == nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown system %q", systemName))
		return
	}

	snap, res, err := s.store.Ingest(r.Context(), req.Dataset, sys, req.Source, core.IngestOptions{
		Workers: s.ingestWorkers,
		Metrics: s.metrics,
	})
	if err != nil {
		s.metrics.Counter("serve.ingest.errors").Add(1)
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.Counter("serve.ingest.published").Add(1)
	s.writeJSON(w, ingestResponse{
		SchemaVersion: report.SchemaVersion,
		Dataset:       snap.Name,
		System:        snap.System,
		Generation:    snap.Gen,
		Parsed:        res.Parsed,
		Failed:        res.Failed,
		Summary:       summaryOf(snap),
	})
}
