package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"testing"

	"iolayers/internal/core"
	"iolayers/internal/darshan"
	"iolayers/internal/darshan/logfmt"
	"iolayers/internal/iosim"
	"iolayers/internal/iosim/systems"
	"iolayers/internal/units"
)

// corpusDir writes n small hand-built Summit logs into a temp directory.
func corpusDir(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	sys := systems.NewSummit()
	for i := 0; i < n; i++ {
		rt := darshan.NewRuntime(darshan.JobHeader{
			JobID: uint64(1000 + i), UserID: uint64(1 + i%3), NProcs: 8,
			StartTime: int64(i) * 3600, EndTime: int64(i)*3600 + 1800,
			Metadata: map[string]string{"domain": "Physics"},
		})
		c := iosim.NewClient(sys, rt, rand.New(rand.NewPCG(uint64(i), 7)))
		c.Write(darshan.ModulePOSIX, fmt.Sprintf("/gpfs/alpine/phys/out%d.h5", i), 0, units.MiB, 0)
		c.Read(darshan.ModuleSTDIO, "/mnt/bb/phys/run.log", 0, 64*units.KiB, 0)
		path := filepath.Join(dir, fmt.Sprintf("job%05d.darshan", i))
		if err := logfmt.WriteFile(path, rt.Finalize()); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStoreIngestPublishesGenerations(t *testing.T) {
	dir := corpusDir(t, 4)
	sys := systems.NewSummit()
	st := NewStore()

	snap1, res, err := st.Ingest(context.Background(), "prod", sys, dir, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Gen != 1 || res.Parsed != 4 {
		t.Fatalf("gen=%d parsed=%d", snap1.Gen, res.Parsed)
	}
	got, ok := st.Get("prod")
	if !ok || got != snap1 {
		t.Fatal("Get did not return the published snapshot")
	}

	// Second ingest: new generation, old snapshot untouched.
	snap2, _, err := st.Ingest(context.Background(), "prod", sys, dir, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Gen != 2 {
		t.Errorf("gen = %d, want 2", snap2.Gen)
	}
	if snap2.Report.Summary.Logs != 2*snap1.Report.Summary.Logs {
		t.Errorf("gen2 logs = %d, want %d", snap2.Report.Summary.Logs, 2*snap1.Report.Summary.Logs)
	}
	if snap1.Report.Summary.Logs != 4 {
		t.Error("re-ingest mutated the frozen generation-1 snapshot")
	}
	if len(snap2.Sources) != 2 {
		t.Errorf("sources = %v", snap2.Sources)
	}
}

func TestStoreIngestSingleFileAndMissingSource(t *testing.T) {
	dir := corpusDir(t, 2)
	sys := systems.NewSummit()
	st := NewStore()

	one := filepath.Join(dir, "job00000.darshan")
	snap, res, err := st.Ingest(context.Background(), "single", sys, one, core.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parsed != 1 || snap.Report.Summary.Logs != 1 {
		t.Errorf("parsed=%d logs=%d", res.Parsed, snap.Report.Summary.Logs)
	}

	if _, _, err := st.Ingest(context.Background(), "single", sys, filepath.Join(dir, "nope"), core.IngestOptions{}); err == nil {
		t.Error("missing source accepted")
	}
	// The failed ingest must not have published.
	if got, _ := st.Get("single"); got.Gen != 1 {
		t.Errorf("failed ingest bumped generation to %d", got.Gen)
	}
}

// TestStoreFailedFirstIngestLeavesNoPhantom is the regression test for
// the phantom-entry leak: Ingest used to create the dataset's entry
// before ingesting, so a failed *first* ingest left a permanent cell in
// Store.datasets — invisible to Get and List, never reclaimed, growing
// the map on every repeated bad upload.
func TestStoreFailedFirstIngestLeavesNoPhantom(t *testing.T) {
	dir := corpusDir(t, 1)
	sys := systems.NewSummit()
	st := NewStore()

	entryCount := func() int {
		st.mu.RLock()
		defer st.mu.RUnlock()
		return len(st.datasets)
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("bad%d", i)
		if _, _, err := st.Ingest(context.Background(), name, sys, filepath.Join(dir, "missing"), core.IngestOptions{}); err == nil {
			t.Fatal("missing source accepted")
		}
	}
	if n := entryCount(); n != 0 {
		t.Errorf("5 failed first ingests left %d phantom entries", n)
	}

	// A failed re-ingest into an existing dataset must NOT reclaim it.
	if _, _, err := st.Ingest(context.Background(), "ok", sys, dir, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Ingest(context.Background(), "ok", sys, filepath.Join(dir, "missing"), core.IngestOptions{}); err == nil {
		t.Fatal("missing source accepted")
	}
	if n := entryCount(); n != 1 {
		t.Errorf("failed re-ingest changed the entry count to %d", n)
	}
	if snap, ok := st.Get("ok"); !ok || snap.Gen != 1 {
		t.Error("failed re-ingest disturbed the published generation")
	}

	// And the garbage-collected name is fully reusable.
	if snap, _, err := st.Ingest(context.Background(), "bad0", sys, dir, core.IngestOptions{}); err != nil || snap.Gen != 1 {
		t.Errorf("reusing a GC'd name: gen=%v err=%v", snap, err)
	}
}

// TestStoreIngestCancelledContext is the regression test for the
// single-log path ignoring ctx: a cancelled (drained) server must refuse
// the ingest without decoding or folding, for every source kind.
func TestStoreIngestCancelledContext(t *testing.T) {
	dir := corpusDir(t, 2)
	one := filepath.Join(dir, "job00000.darshan")
	sys := systems.NewSummit()
	st := NewStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, src := range []string{one, dir} {
		if _, _, err := st.Ingest(ctx, "ds", sys, src, core.IngestOptions{}); !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled ingest of %s returned %v, want context.Canceled", src, err)
		}
	}
	if _, ok := st.Get("ds"); ok {
		t.Error("cancelled ingest published a snapshot")
	}
}

func TestStoreRejectsBadNamesAndSystemMismatch(t *testing.T) {
	dir := corpusDir(t, 1)
	st := NewStore()
	summit, cori := systems.NewSummit(), systems.NewCori()

	for _, bad := range []string{"", "a b", "x/y", "née", string(make([]byte, 65))} {
		if _, _, err := st.Ingest(context.Background(), bad, summit, dir, core.IngestOptions{}); err == nil {
			t.Errorf("dataset name %q accepted", bad)
		}
	}
	if !ValidDatasetName("prod-2020.v1_x") {
		t.Error("legitimate name rejected")
	}

	if _, _, err := st.Ingest(context.Background(), "ds", summit, dir, core.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Ingest(context.Background(), "ds", cori, dir, core.IngestOptions{}); err == nil {
		t.Error("cross-system ingest into an existing dataset accepted")
	}
}

func TestStoreListSorted(t *testing.T) {
	dir := corpusDir(t, 1)
	sys := systems.NewSummit()
	st := NewStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, _, err := st.Ingest(context.Background(), name, sys, dir, core.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	list := st.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[1].Name != "mid" || list[2].Name != "zeta" {
		names := make([]string, len(list))
		for i, s := range list {
			names[i] = s.Name
		}
		t.Errorf("list order = %v", names)
	}
}
