package darshan

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"iolayers/internal/units"
)

// Property: ObserveN(op, n) produces exactly the same record as n
// consecutive Observe calls on a contiguous run of requests.
func TestObserveNEquivalence(t *testing.T) {
	f := func(rawSize uint32, rawN uint8, isRead bool) bool {
		size := units.ByteSize(rawSize%(8<<20) + 1)
		n := int(rawN%32) + 1
		kind := OpWrite
		if isRead {
			kind = OpRead
		}

		// Batched.
		rtA := NewRuntime(JobHeader{JobID: 1, NProcs: 1, StartTime: 0, EndTime: 100})
		rtA.ObserveN(Op{Module: ModulePOSIX, Path: "/p/f", Rank: 0, Kind: kind,
			Size: size, Offset: 0, Start: 1, End: 2}, n)
		recA := rtA.Finalize().RecordsFor(ModulePOSIX)[0]

		// One at a time, contiguous, with the same total time window.
		rtB := NewRuntime(JobHeader{JobID: 1, NProcs: 1, StartTime: 0, EndTime: 100})
		per := 1.0 / float64(n)
		for i := 0; i < n; i++ {
			rtB.Observe(Op{Module: ModulePOSIX, Path: "/p/f", Rank: 0, Kind: kind,
				Size: size, Offset: int64(i) * int64(size),
				Start: 1 + float64(i)*per, End: 1 + float64(i+1)*per})
		}
		recB := rtB.Finalize().RecordsFor(ModulePOSIX)[0]

		if !reflect.DeepEqual(recA.Counters, recB.Counters) {
			t.Logf("size=%d n=%d kind=%v\nA=%v\nB=%v", size, n, kind, recA.Counters, recB.Counters)
			return false
		}
		// Accumulated times match up to float noise.
		for _, idx := range []int{PosixFReadTime, PosixFWriteTime} {
			if d := recA.FCounters[idx] - recB.FCounters[idx]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the shared-file reduction preserves byte and operation totals
// regardless of how the work was distributed across ranks.
func TestReductionPreservesTotals(t *testing.T) {
	f := func(seed uint64, rawProcs uint8) bool {
		nprocs := int(rawProcs%16) + 2
		r := rand.New(rand.NewPCG(seed, 42))
		rt := NewRuntime(JobHeader{JobID: 2, NProcs: nprocs, StartTime: 0, EndTime: 100})
		var wantBytes, wantOps int64
		for rank := 0; rank < nprocs; rank++ {
			ops := 1 + r.IntN(5)
			for i := 0; i < ops; i++ {
				size := units.ByteSize(1 + r.IntN(1<<20))
				rt.Observe(Op{Module: ModulePOSIX, Path: "/shared", Rank: int32(rank),
					Kind: OpWrite, Size: size, Offset: int64(rank) << 24,
					Start: float64(i), End: float64(i) + 0.5})
				wantBytes += int64(size)
				wantOps++
			}
		}
		log := rt.Finalize()
		recs := log.RecordsFor(ModulePOSIX)
		if len(recs) != 1 || recs[0].Rank != SharedRank {
			return false
		}
		return recs[0].Counters[PosixBytesWritten] == wantBytes &&
			recs[0].Counters[PosixWrites] == wantOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: within one record, the access-size histogram always sums to the
// operation count, for any interleaving of reads and writes.
func TestHistogramMatchesOpCounts(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		rt := NewRuntime(JobHeader{JobID: 3, NProcs: 1, StartTime: 0, EndTime: 100})
		for i := 0; i < 50; i++ {
			kind := OpRead
			if r.IntN(2) == 0 {
				kind = OpWrite
			}
			rt.ObserveN(Op{Module: ModulePOSIX, Path: "/f", Rank: 0, Kind: kind,
				Size: units.ByteSize(1 + r.IntN(1<<26)), Offset: -1,
				Start: float64(i), End: float64(i) + 0.1}, 1+r.IntN(9))
		}
		rec := rt.Finalize().RecordsFor(ModulePOSIX)[0]
		var histR, histW int64
		for b := 0; b < units.NumRequestBins; b++ {
			histR += rec.Counters[PosixSizeRead0To100+b]
			histW += rec.Counters[PosixSizeWrite0To100+b]
		}
		return histR == rec.Counters[PosixReads] && histW == rec.Counters[PosixWrites]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: STDIOX mirrors STDIO volume exactly — unique + rewrite bytes
// equal the STDIO module's total written bytes for offset-tracked writes.
func TestStdioXVolumeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		rt := NewRuntime(JobHeader{JobID: 4, NProcs: 1, StartTime: 0, EndTime: 100})
		rt.EnableExtendedStdio()
		var off int64
		for i := 0; i < 30; i++ {
			size := units.ByteSize(1 + r.IntN(1<<16))
			if r.IntN(4) == 0 {
				off = 0 // rewind: rewrite
			}
			rt.Observe(Op{Module: ModuleSTDIO, Path: "/log", Rank: 0, Kind: OpWrite,
				Size: size, Offset: off, Start: float64(i), End: float64(i) + 0.1})
			off += int64(size)
		}
		log := rt.Finalize()
		stdio := log.RecordsFor(ModuleSTDIO)[0]
		sx := log.RecordsFor(ModuleStdioX)[0]
		total := sx.Counters[StdioXRewriteBytes] + sx.Counters[StdioXUniqueBytes]
		return total == stdio.Counters[StdioBytesWritten]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
