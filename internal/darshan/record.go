package darshan

import (
	"fmt"
	"hash/fnv"
)

// SharedRank is the rank value of a record that describes a file accessed
// collectively by every process of the job; Darshan reduces such records to
// a single entry with rank −1 (paper §3.4).
const SharedRank int32 = -1

// RecordID is the stable 64-bit identity of a file path within a log,
// computed by hashing the path. Paths are also stored in the log's name
// table so records can be resolved back to paths.
type RecordID uint64

// HashPath computes the RecordID for a path (FNV-1a, as a stand-in for
// Darshan's path hashing).
func HashPath(path string) RecordID {
	h := fnv.New64a()
	// fnv.Write never fails.
	_, _ = h.Write([]byte(path))
	return RecordID(h.Sum64())
}

// JobHeader carries the per-job execution metadata Darshan records at the
// log level: job identity, process count, and the instrumented time window
// (paper §2.2).
type JobHeader struct {
	JobID     uint64
	UserID    uint64
	NProcs    int
	StartTime int64 // Unix seconds at MPI_Init
	EndTime   int64 // Unix seconds at MPI_Finalize
	Exe       string
	// Metadata carries free-form key/value annotations. The synthetic
	// scheduler join uses "project" to attribute jobs to science domains,
	// mirroring the OLCF scheduler-log / NERSC NEWT joins in §3.3.2.
	Metadata map[string]string
}

// Runtime returns the instrumented wall-clock duration in seconds.
func (j JobHeader) Runtime() float64 {
	if j.EndTime < j.StartTime {
		return 0
	}
	return float64(j.EndTime - j.StartTime)
}

// NodeHours returns the node-hours consumed, assuming the conventional
// processes-per-node density for the system (supplied by the caller since it
// is a machine property, not a log property).
func (j JobHeader) NodeHours(procsPerNode int) float64 {
	if procsPerNode <= 0 {
		panic(fmt.Sprintf("darshan: procsPerNode %d must be positive", procsPerNode))
	}
	nodes := (j.NProcs + procsPerNode - 1) / procsPerNode
	if nodes < 1 {
		nodes = 1
	}
	return float64(nodes) * j.Runtime() / 3600
}

// FileRecord is one module's counter record for one (file, rank) pair. A
// rank of SharedRank marks a reduced record covering all ranks.
type FileRecord struct {
	Module    ModuleID
	Record    RecordID
	Rank      int32
	Counters  []int64
	FCounters []float64
}

// NewFileRecord allocates a zeroed record with the module's counter widths.
func NewFileRecord(m ModuleID, id RecordID, rank int32) *FileRecord {
	return &FileRecord{
		Module:    m,
		Record:    id,
		Rank:      rank,
		Counters:  make([]int64, NumCounters(m)),
		FCounters: make([]float64, NumFCounters(m)),
	}
}

// Clone returns a deep copy of the record.
func (r *FileRecord) Clone() *FileRecord {
	c := &FileRecord{
		Module:    r.Module,
		Record:    r.Record,
		Rank:      r.Rank,
		Counters:  append([]int64(nil), r.Counters...),
		FCounters: append([]float64(nil), r.FCounters...),
	}
	return c
}

// Log is a fully parsed Darshan-equivalent log: the job header, the
// path-name table, every module record, and (when extended tracing was
// enabled) the DXT traces.
type Log struct {
	Job     JobHeader
	Names   map[RecordID]string
	Records []*FileRecord
	// DXT holds extended-tracing records; empty unless the producing
	// runtime had EnableDXT set (as on the paper's systems, where DXT was
	// disabled by default, §2.2).
	DXT []DXTTrace
}

// PathOf resolves a record's path from the name table, or "" if the record
// id is not present (possible when a log was truncated).
func (l *Log) PathOf(id RecordID) string { return l.Names[id] }

// RecordsFor returns the records belonging to one module, in log order.
func (l *Log) RecordsFor(m ModuleID) []*FileRecord {
	var out []*FileRecord
	for _, r := range l.Records {
		if r.Module == m {
			out = append(out, r)
		}
	}
	return out
}
