package darshan

// POSIX module integer counters. The layout mirrors the Darshan 3.x POSIX
// module: operation counts, byte totals, sequentiality counters, and the
// ten-bin access-size histograms for reads and writes (paper §2.2).
const (
	PosixOpens = iota
	PosixReads
	PosixWrites
	PosixSeeks
	PosixStats
	PosixFsyncs
	PosixBytesRead
	PosixBytesWritten
	PosixMaxByteRead
	PosixMaxByteWritten
	PosixConsecReads
	PosixConsecWrites
	PosixSeqReads
	PosixSeqWrites
	PosixSizeRead0To100  // first of 10 read-size histogram bins
	posixSizeReadEnd     = PosixSizeRead0To100 + 9
	PosixSizeWrite0To100 = posixSizeReadEnd + 1 // first of 10 write-size bins
	posixSizeWriteEnd    = PosixSizeWrite0To100 + 9

	// NumPosixCounters is the POSIX integer-record width.
	NumPosixCounters = posixSizeWriteEnd + 1
)

// POSIX module float counters (seconds since job start, or durations).
const (
	PosixFOpenStartTimestamp = iota
	PosixFReadStartTimestamp
	PosixFWriteStartTimestamp
	PosixFOpenEndTimestamp
	PosixFReadEndTimestamp
	PosixFWriteEndTimestamp
	PosixFCloseEndTimestamp
	PosixFReadTime
	PosixFWriteTime
	PosixFMetaTime
	PosixFSlowestRankTime

	// NumPosixFCounters is the POSIX float-record width.
	NumPosixFCounters = PosixFSlowestRankTime + 1
)

// MPI-IO module integer counters: independent vs collective operation
// counts, byte totals, and the access-size histograms.
const (
	MpiioIndepOpens = iota
	MpiioCollOpens
	MpiioIndepReads
	MpiioIndepWrites
	MpiioCollReads
	MpiioCollWrites
	MpiioBytesRead
	MpiioBytesWritten
	MpiioSizeRead0To100
	mpiioSizeReadEnd     = MpiioSizeRead0To100 + 9
	MpiioSizeWrite0To100 = mpiioSizeReadEnd + 1
	mpiioSizeWriteEnd    = MpiioSizeWrite0To100 + 9

	// NumMpiioCounters is the MPI-IO integer-record width.
	NumMpiioCounters = mpiioSizeWriteEnd + 1
)

// MPI-IO module float counters.
const (
	MpiioFOpenStartTimestamp = iota
	MpiioFReadStartTimestamp
	MpiioFWriteStartTimestamp
	MpiioFOpenEndTimestamp
	MpiioFReadEndTimestamp
	MpiioFWriteEndTimestamp
	MpiioFCloseEndTimestamp
	MpiioFReadTime
	MpiioFWriteTime
	MpiioFMetaTime
	MpiioFSlowestRankTime

	// NumMpiioFCounters is the MPI-IO float-record width.
	NumMpiioFCounters = MpiioFSlowestRankTime + 1
)

// STDIO module integer counters. Deliberately narrower than POSIX: Darshan's
// STDIO module records no access-size histogram and no process-level request
// detail — a limitation the paper's Recommendations 4–6 are about.
const (
	StdioOpens = iota
	StdioReads
	StdioWrites
	StdioSeeks
	StdioFlushes
	StdioBytesRead
	StdioBytesWritten
	StdioMaxByteRead
	StdioMaxByteWritten

	// NumStdioCounters is the STDIO integer-record width.
	NumStdioCounters = StdioMaxByteWritten + 1
)

// STDIO module float counters.
const (
	StdioFOpenStartTimestamp = iota
	StdioFReadStartTimestamp
	StdioFWriteStartTimestamp
	StdioFOpenEndTimestamp
	StdioFReadEndTimestamp
	StdioFWriteEndTimestamp
	StdioFCloseEndTimestamp
	StdioFReadTime
	StdioFWriteTime
	StdioFMetaTime
	StdioFSlowestRankTime

	// NumStdioFCounters is the STDIO float-record width.
	NumStdioFCounters = StdioFSlowestRankTime + 1
)

// Lustre module integer counters: the striping metadata the Lustre Darshan
// module captures for each file on a Lustre mount (paper §2.1.2).
const (
	LustreOSTs = iota
	LustreMDTs
	LustreStripeOffset
	LustreStripeSize
	LustreStripeWidth

	// NumLustreCounters is the Lustre integer-record width.
	NumLustreCounters = LustreStripeWidth + 1
)

var posixCounterNames = func() [NumPosixCounters]string {
	var names [NumPosixCounters]string
	base := map[int]string{
		PosixOpens:          "POSIX_OPENS",
		PosixReads:          "POSIX_READS",
		PosixWrites:         "POSIX_WRITES",
		PosixSeeks:          "POSIX_SEEKS",
		PosixStats:          "POSIX_STATS",
		PosixFsyncs:         "POSIX_FSYNCS",
		PosixBytesRead:      "POSIX_BYTES_READ",
		PosixBytesWritten:   "POSIX_BYTES_WRITTEN",
		PosixMaxByteRead:    "POSIX_MAX_BYTE_READ",
		PosixMaxByteWritten: "POSIX_MAX_BYTE_WRITTEN",
		PosixConsecReads:    "POSIX_CONSEC_READS",
		PosixConsecWrites:   "POSIX_CONSEC_WRITES",
		PosixSeqReads:       "POSIX_SEQ_READS",
		PosixSeqWrites:      "POSIX_SEQ_WRITES",
	}
	for i, n := range base {
		names[i] = n
	}
	fillSizeBins(names[:], PosixSizeRead0To100, "POSIX_SIZE_READ_")
	fillSizeBins(names[:], PosixSizeWrite0To100, "POSIX_SIZE_WRITE_")
	return names
}()

var mpiioCounterNames = func() [NumMpiioCounters]string {
	var names [NumMpiioCounters]string
	base := map[int]string{
		MpiioIndepOpens:   "MPIIO_INDEP_OPENS",
		MpiioCollOpens:    "MPIIO_COLL_OPENS",
		MpiioIndepReads:   "MPIIO_INDEP_READS",
		MpiioIndepWrites:  "MPIIO_INDEP_WRITES",
		MpiioCollReads:    "MPIIO_COLL_READS",
		MpiioCollWrites:   "MPIIO_COLL_WRITES",
		MpiioBytesRead:    "MPIIO_BYTES_READ",
		MpiioBytesWritten: "MPIIO_BYTES_WRITTEN",
	}
	for i, n := range base {
		names[i] = n
	}
	fillSizeBins(names[:], MpiioSizeRead0To100, "MPIIO_SIZE_READ_AGG_")
	fillSizeBins(names[:], MpiioSizeWrite0To100, "MPIIO_SIZE_WRITE_AGG_")
	return names
}()

var stdioCounterNames = [NumStdioCounters]string{
	StdioOpens:          "STDIO_OPENS",
	StdioReads:          "STDIO_READS",
	StdioWrites:         "STDIO_WRITES",
	StdioSeeks:          "STDIO_SEEKS",
	StdioFlushes:        "STDIO_FLUSHES",
	StdioBytesRead:      "STDIO_BYTES_READ",
	StdioBytesWritten:   "STDIO_BYTES_WRITTEN",
	StdioMaxByteRead:    "STDIO_MAX_BYTE_READ",
	StdioMaxByteWritten: "STDIO_MAX_BYTE_WRITTEN",
}

var lustreCounterNames = [NumLustreCounters]string{
	LustreOSTs:         "LUSTRE_OSTS",
	LustreMDTs:         "LUSTRE_MDTS",
	LustreStripeOffset: "LUSTRE_STRIPE_OFFSET",
	LustreStripeSize:   "LUSTRE_STRIPE_SIZE",
	LustreStripeWidth:  "LUSTRE_STRIPE_WIDTH",
}

var sizeBinSuffixes = [10]string{
	"0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
	"1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
}

func fillSizeBins(names []string, start int, prefix string) {
	for i, suffix := range sizeBinSuffixes {
		names[start+i] = prefix + suffix
	}
}

var posixFCounterNames = [NumPosixFCounters]string{
	PosixFOpenStartTimestamp:  "POSIX_F_OPEN_START_TIMESTAMP",
	PosixFReadStartTimestamp:  "POSIX_F_READ_START_TIMESTAMP",
	PosixFWriteStartTimestamp: "POSIX_F_WRITE_START_TIMESTAMP",
	PosixFOpenEndTimestamp:    "POSIX_F_OPEN_END_TIMESTAMP",
	PosixFReadEndTimestamp:    "POSIX_F_READ_END_TIMESTAMP",
	PosixFWriteEndTimestamp:   "POSIX_F_WRITE_END_TIMESTAMP",
	PosixFCloseEndTimestamp:   "POSIX_F_CLOSE_END_TIMESTAMP",
	PosixFReadTime:            "POSIX_F_READ_TIME",
	PosixFWriteTime:           "POSIX_F_WRITE_TIME",
	PosixFMetaTime:            "POSIX_F_META_TIME",
	PosixFSlowestRankTime:     "POSIX_F_SLOWEST_RANK_TIME",
}

var mpiioFCounterNames = [NumMpiioFCounters]string{
	MpiioFOpenStartTimestamp:  "MPIIO_F_OPEN_START_TIMESTAMP",
	MpiioFReadStartTimestamp:  "MPIIO_F_READ_START_TIMESTAMP",
	MpiioFWriteStartTimestamp: "MPIIO_F_WRITE_START_TIMESTAMP",
	MpiioFOpenEndTimestamp:    "MPIIO_F_OPEN_END_TIMESTAMP",
	MpiioFReadEndTimestamp:    "MPIIO_F_READ_END_TIMESTAMP",
	MpiioFWriteEndTimestamp:   "MPIIO_F_WRITE_END_TIMESTAMP",
	MpiioFCloseEndTimestamp:   "MPIIO_F_CLOSE_END_TIMESTAMP",
	MpiioFReadTime:            "MPIIO_F_READ_TIME",
	MpiioFWriteTime:           "MPIIO_F_WRITE_TIME",
	MpiioFMetaTime:            "MPIIO_F_META_TIME",
	MpiioFSlowestRankTime:     "MPIIO_F_SLOWEST_RANK_TIME",
}

var stdioFCounterNames = [NumStdioFCounters]string{
	StdioFOpenStartTimestamp:  "STDIO_F_OPEN_START_TIMESTAMP",
	StdioFReadStartTimestamp:  "STDIO_F_READ_START_TIMESTAMP",
	StdioFWriteStartTimestamp: "STDIO_F_WRITE_START_TIMESTAMP",
	StdioFOpenEndTimestamp:    "STDIO_F_OPEN_END_TIMESTAMP",
	StdioFReadEndTimestamp:    "STDIO_F_READ_END_TIMESTAMP",
	StdioFWriteEndTimestamp:   "STDIO_F_WRITE_END_TIMESTAMP",
	StdioFCloseEndTimestamp:   "STDIO_F_CLOSE_END_TIMESTAMP",
	StdioFReadTime:            "STDIO_F_READ_TIME",
	StdioFWriteTime:           "STDIO_F_WRITE_TIME",
	StdioFMetaTime:            "STDIO_F_META_TIME",
	StdioFSlowestRankTime:     "STDIO_F_SLOWEST_RANK_TIME",
}
