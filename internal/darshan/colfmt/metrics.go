package colfmt

import (
	"bytes"
	"sync"
	"sync/atomic"

	"iolayers/internal/obsv"
)

// Codec pooling, mirroring logfmt's discipline: segment encode and decode
// both need large scratch buffers (a segment body is hundreds of KiB), and
// a campaign-scale convert or fold touches thousands of segments. The
// scratch is Reset-able, so it is shared through a pool and the per-segment
// cost amortizes to (almost) zero steady-state allocations.

// maxPooledBuf caps the scratch capacity the pool will retain. A one-off
// giant segment should not pin its buffer forever.
const maxPooledBuf = 8 << 20

var (
	bufGets atomic.Int64
	bufNews atomic.Int64
)

// bufPool holds scratch byte buffers shared by segment framing and
// column encoding.
var bufPool = sync.Pool{New: func() any { bufNews.Add(1); return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	bufGets.Add(1)
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

// PublishMetrics copies the codec-pool tallies into the registry as
// "colfmt.pool.*" gauges: raw get counts plus the steady-state hit rate
// (1 − news/gets). The tallies are package globals, monotone, and
// scheduling-dependent — whether a Get hits pooled state depends on GC
// timing — so they are published as gauges, never as deterministic
// counters. A nil registry is a no-op.
func PublishMetrics(r *obsv.Registry) {
	if r == nil {
		return
	}
	gets, news := bufGets.Load(), bufNews.Load()
	r.Gauge("colfmt.pool.buf.gets").Set(float64(gets))
	hit := 0.0
	if gets > 0 {
		hit = 1 - float64(news)/float64(gets)
	}
	r.Gauge("colfmt.pool.buf.hit_rate").Set(hit)
}
