package colfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"iolayers/internal/darshan/logfmt"
)

// fuzzLimits bounds what a crafted input can make the harness allocate,
// while staying loose enough that the seed files decode cleanly.
func fuzzLimits() logfmt.DecodeLimits {
	return logfmt.DecodeLimits{
		MaxRecords:      1 << 12,
		MaxNames:        1 << 12,
		MaxStringLen:    1 << 12,
		MaxArchiveEntry: 1 << 20,
	}
}

// FuzzColumnRead feeds arbitrary bytes through the whole columnar read
// pipeline: header, frame walk, header peek, and full-projection decode.
// Properties: no panic, no unbounded allocation (every count the input
// controls is capped by fuzzLimits), iteration always terminates, and
// every failure is a structured *logfmt.DecodeError carrying exactly one
// sentinel — the same taxonomy contract logfmt's FuzzRead enforces.
func FuzzColumnRead(f *testing.F) {
	valid := encodeFile(f, 5, 2)
	f.Add(valid)
	// A truncated and a bit-flipped variant steer coverage into the error
	// paths from the start.
	f.Add(valid[:len(valid)-7])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	hdr := []byte(Magic)
	hdr = binary.LittleEndian.AppendUint16(hdr, Version)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0) // terminator, no segments
	f.Add(hdr)

	lim := fuzzLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReaderWithLimits(bytes.NewReader(data), lim)
		if err != nil {
			checkDecodeErr(t, err)
			return
		}
		lastOff := r.InputOffset()
		for {
			raw, err := r.NextRaw()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				checkDecodeErr(t, err)
				return
			}
			if off := r.InputOffset(); off <= lastOff {
				t.Fatalf("no forward progress: offset %d after %d", off, lastOff)
			} else {
				lastOff = off
			}
			info, perr := PeekSegment(raw, lim)
			b, derr := DecodeSegment(raw, ProjectAll, lim)
			if derr != nil {
				checkDecodeErr(t, derr)
				continue
			}
			// A decodable segment must also peek, and the two must agree on
			// shape — pruning decisions rest on that agreement.
			if perr != nil {
				t.Fatalf("decodable segment failed PeekSegment: %v", perr)
			}
			if info.NumLogs != b.NumLogs || info.FileRows != b.FileRows ||
				info.PosixRows != b.PosixRows || info.StdioXRows != b.StdioXRows {
				t.Fatalf("peek shape (%d,%d,%d,%d) != decode shape (%d,%d,%d,%d)",
					info.NumLogs, info.FileRows, info.PosixRows, info.StdioXRows,
					b.NumLogs, b.FileRows, b.PosixRows, b.StdioXRows)
			}
		}
	})
}
